/// Routing ablation (§II-A): the MEDEA deflection ("hot-potato") router
/// against a conventional input-buffered dimension-ordered (XY) router on
/// identical traffic.
///
/// The paper's argument for deflection routing:
///  * minimal storage (one flit per input channel, no packet buffers) —
///    compare `peak_buffered`,
///  * no back-pressure mechanism, no head-of-line blocking on long
///    packets,
///  * the price: out-of-order delivery (handled by sequence numbers).
///
/// Run on a 4x4 fabric under the standard synthetic patterns at a sweep
/// of injection rates; both fabrics deliver everything, the comparison is
/// latency and buffering.

#include <benchmark/benchmark.h>

#include "noc/network.h"
#include "noc/traffic.h"
#include "noc/xy_network.h"

using namespace medea;

namespace {

noc::TrafficConfig traffic_cfg(int pattern, int rate_pct) {
  noc::TrafficConfig cfg;
  cfg.pattern = static_cast<noc::TrafficPattern>(pattern);
  cfg.injection_rate = rate_pct / 100.0;
  cfg.flits_per_node = 400;
  cfg.hotspot_node = 5;
  cfg.seed = 99;
  return cfg;
}

void BM_Deflection(benchmark::State& state) {
  const auto cfg = traffic_cfg(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  double lat = 0, defl = 0;
  int delivered = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    noc::Network net(sched, noc::TorusGeometry(4, 4));
    delivered = noc::run_traffic(sched, net, cfg);
    lat = net.stats().acc("noc.latency").mean();
    defl = static_cast<double>(net.stats().get("noc.deflections_total"));
  }
  state.SetLabel(std::string("deflection/") + noc::to_string(cfg.pattern));
  state.counters["mean_latency"] = lat;
  state.counters["deflections"] = defl;
  state.counters["delivered"] = delivered;
  state.counters["peak_buffered"] = 0;  // hot potato stores nothing
}

void BM_BufferedXy(benchmark::State& state) {
  const auto cfg = traffic_cfg(static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(1)));
  double lat = 0, peak = 0;
  int delivered = 0;
  for (auto _ : state) {
    sim::Scheduler sched;
    // Mesh geometry: dimension-ordered routing's deadlock-free home.
    noc::XyNetwork net(sched, noc::TorusGeometry(4, 4));
    delivered = noc::run_traffic(sched, net, cfg);
    lat = net.stats().acc("xynoc.latency").mean();
    peak = static_cast<double>(net.stats().get("xynoc.peak_buffered"));
  }
  state.SetLabel(std::string("buffered-xy/") + noc::to_string(cfg.pattern));
  state.counters["mean_latency"] = lat;
  state.counters["deflections"] = 0;
  state.counters["delivered"] = delivered;
  state.counters["peak_buffered"] = peak;
}

}  // namespace

BENCHMARK(BM_Deflection)
    ->ArgsProduct({{static_cast<int>(noc::TrafficPattern::kUniformRandom),
                    static_cast<int>(noc::TrafficPattern::kHotspot),
                    static_cast<int>(noc::TrafficPattern::kTranspose),
                    static_cast<int>(noc::TrafficPattern::kNeighbor)},
                   {10, 40}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BufferedXy)
    ->ArgsProduct({{static_cast<int>(noc::TrafficPattern::kUniformRandom),
                    static_cast<int>(noc::TrafficPattern::kHotspot),
                    static_cast<int>(noc::TrafficPattern::kTranspose),
                    static_cast<int>(noc::TrafficPattern::kNeighbor)},
                   {10, 40}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
