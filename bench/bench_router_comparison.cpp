/// Routing ablation (§II-A): the MEDEA deflection ("hot-potato") router
/// against a conventional input-buffered dimension-ordered (XY) router on
/// identical traffic.
///
/// The paper's argument for deflection routing:
///  * minimal storage (one flit per input channel, no packet buffers) —
///    compare `peak_buffered`,
///  * no back-pressure mechanism, no head-of-line blocking on long
///    packets,
///  * the price: out-of-order delivery (handled by sequence numbers).
///
/// Run on a 4x4 fabric under the standard synthetic patterns at a sweep
/// of injection rates; both fabrics deliver everything, the comparison is
/// latency and buffering.

#include <cstdint>
#include <string>

#include "harness.h"
#include "noc/network.h"
#include "noc/traffic.h"
#include "noc/xy_network.h"

using namespace medea;

namespace {

noc::TrafficConfig traffic_cfg(noc::TrafficPattern pattern, int rate_pct) {
  noc::TrafficConfig cfg;
  cfg.pattern = pattern;
  cfg.injection_rate = rate_pct / 100.0;
  cfg.flits_per_node = 400;
  cfg.hotspot_node = 5;
  cfg.seed = 99;
  return cfg;
}

std::string case_config(const noc::TrafficConfig& cfg, int rate_pct) {
  return std::string("pattern=") + noc::to_string(cfg.pattern) +
         " inj_rate_pct=" + std::to_string(rate_pct) +
         " torus=4x4 flits_per_node=400";
}

bench::Measurement deflection(const bench::RunOptions& opt,
                              noc::TrafficPattern pattern, int rate_pct) {
  const auto cfg = traffic_cfg(pattern, rate_pct);
  double lat = 0.0, defl = 0.0;
  int delivered = 0;
  auto m = bench::run_case(
      std::string("deflection/") + noc::to_string(pattern) + "/" +
          std::to_string(rate_pct) + "pct",
      case_config(cfg, rate_pct), opt, [&] {
        sim::Scheduler sched;
        noc::Network net(sched, noc::TorusGeometry(4, 4));
        delivered = noc::run_traffic(sched, net, cfg);
        lat = net.stats().acc("noc.latency").mean();
        defl = static_cast<double>(net.stats().get("noc.deflections_total"));
        return sched.now();
      });
  m.metric("mean_latency", lat);
  m.metric("deflections", defl);
  m.metric("delivered", delivered);
  m.metric("peak_buffered", 0.0);  // hot potato stores nothing
  return m;
}

bench::Measurement buffered_xy(const bench::RunOptions& opt,
                               noc::TrafficPattern pattern, int rate_pct) {
  const auto cfg = traffic_cfg(pattern, rate_pct);
  double lat = 0.0, peak = 0.0;
  int delivered = 0;
  auto m = bench::run_case(
      std::string("buffered-xy/") + noc::to_string(pattern) + "/" +
          std::to_string(rate_pct) + "pct",
      case_config(cfg, rate_pct), opt, [&] {
        sim::Scheduler sched;
        // Mesh geometry: dimension-ordered routing's deadlock-free home.
        noc::XyNetwork net(sched, noc::TorusGeometry(4, 4));
        delivered = noc::run_traffic(sched, net, cfg);
        lat = net.stats().acc("xynoc.latency").mean();
        peak = static_cast<double>(net.stats().get("xynoc.peak_buffered"));
        return sched.now();
      });
  m.metric("mean_latency", lat);
  m.metric("deflections", 0.0);
  m.metric("delivered", delivered);
  m.metric("peak_buffered", peak);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("router_comparison", argc, argv);
  const noc::TrafficPattern patterns[] = {
      noc::TrafficPattern::kUniformRandom, noc::TrafficPattern::kHotspot,
      noc::TrafficPattern::kTranspose, noc::TrafficPattern::kNeighbor};
  for (auto pattern : patterns) {
    for (int rate_pct : {10, 40}) {
      report.add(deflection(report.options(), pattern, rate_pct));
    }
  }
  for (auto pattern : patterns) {
    for (int rate_pct : {10, 40}) {
      report.add(buffered_xy(report.options(), pattern, rate_pct));
    }
  }
  return report.finish();
}
