/// bench_trace_xform — throughput of the trace toolkit's transform
/// passes plus the cost profile of scaled replays.
///
/// Transform cases time one pass over a recorded uniform-random trace;
/// their callable returns the event count, so the harness's
/// cycles/sim_speed columns read as events and events/second (the
/// natural throughput unit for a pure trace-to-trace pass — noted in
/// each case's config string).  Replay cases return real simulated
/// cycles, so their sim_speed is comparable with bench_trace_replay;
/// each emits the event-heap pressure counters (wake requests vs
/// push-time dedup hits) on this deliberately hot-FIFO configuration —
/// the ROADMAP "event-heap pressure" item made measurable.

#include <string>

#include "harness.h"
#include "noc/network.h"
#include "sim/scheduler.h"
#include "workload/replay.h"
#include "workload/workload.h"
#include "workload/xform/inspect.h"
#include "workload/xform/transform.h"

using namespace medea;
namespace xform = medea::workload::xform;

int main(int argc, char** argv) {
  bench::Report report("trace_xform", argc, argv);

  // One hot recording shared by every case: 4x4 uniform at high load.
  workload::RunRequest req;
  req.synthetic = workload::SyntheticParams{};
  req.synthetic->flits_per_node = 4000;
  req.synthetic->injection_rate = 0.35;
  const workload::Trace trace = workload::record_workload("uniform", req);
  const std::string cfg =
      "uniform 4x4 r=0.35, " + std::to_string(trace.events.size()) +
      " events; cycles column = events processed";
  const double n_events = static_cast<double>(trace.events.size());

  auto xform_case = [&](const char* name, auto&& fn) {
    auto m = bench::run_case(name, cfg, report.options(), fn);
    m.metric("trace_events", n_events);
    report.add(std::move(m));
  };

  xform_case("xform/scale2x", [&] {
    return xform::RateScale(2.0).apply(trace).events.size();
  });
  xform_case("xform/remap8x8", [&] {
    return xform::RemapNodes(8, 8).apply(trace).events.size();
  });
  xform_case("xform/tile8x8", [&] {
    return xform::RemapNodes(8, 8, xform::RemapMode::kTiled)
        .apply(trace)
        .events.size();
  });
  xform_case("xform/merge_self", [&] {
    return xform::merge_traces(trace, trace).events.size();
  });
  xform_case("xform/validate", [&] {
    workload::validate_trace(trace);
    return trace.events.size();
  });
  xform_case("xform/inspect", [&] {
    return xform::inspect_trace(trace).num_events;
  });

  // Scaled replays: the rate-sweep fast path.  1x replays the recorded
  // schedule; 0.5x stretches it (longer sim, lighter load); 2x
  // compresses it (shorter sim, saturated queues).
  for (double scale : {1.0, 0.5, 2.0}) {
    const workload::Trace t =
        scale == 1.0 ? trace : xform::RateScale(scale).apply(trace);
    std::uint64_t wake_requests = 0;
    std::uint64_t wakes_deduped = 0;
    std::uint64_t bucket_pushes = 0;
    std::uint64_t overflow_pushes = 0;
    auto m = bench::run_case(
        "replay/x" + std::string(scale == 1.0   ? "1"
                                 : scale == 0.5 ? "0.5"
                                                : "2"),
        cfg, report.options(), [&] {
          sim::Scheduler sched;
          noc::Network net(sched, noc::TorusGeometry(4, 4),
                           req.machine.router, t.meta.seed);
          const auto r = workload::run_replay(sched, net, t, 50'000'000,
                                              /*allow_config_mismatch=*/true);
          wake_requests = sched.wake_requests();
          wakes_deduped = sched.wakes_deduped();
          bucket_pushes = sched.bucket_pushes();
          overflow_pushes = sched.overflow_pushes();
          return r.cycles;
        });
    // Event-queue pressure on a hot fabric: how many wakes the push-time
    // dedup absorbed before they could reach either queue tier, and how
    // the survivors split between the O(1) calendar buckets and the
    // overflow binary heap (far-future wakes only — near zero here).
    m.metric("heap_wake_requests", static_cast<double>(wake_requests));
    m.metric("heap_wakes_deduped", static_cast<double>(wakes_deduped));
    m.metric("heap_dedup_ratio",
             wake_requests > 0 ? static_cast<double>(wakes_deduped) /
                                     static_cast<double>(wake_requests)
                               : 0.0);
    m.metric("sched_bucket_pushes", static_cast<double>(bucket_pushes));
    m.metric("sched_overflow_pushes", static_cast<double>(overflow_pushes));
    report.add(std::move(m));
  }

  return report.finish();
}
