/// Fig. 7 harness: optimal speedup versus chip area for the 60x60 array.
///
/// Reproduces the paper's method: run the full design space (cores 2..15,
/// cache 2..64 kB, WB+WT), attach the 65 nm area model, prune
/// Pareto-dominated points, and walk the frontier with the Kill rule.
/// Labels follow the paper's "NP_Mk$" style.
///
/// Expected shape (paper): a lower knee where the per-core data block
/// first fits in L1 (speedup jumps), and an upper knee around 8-11 cores
/// with 16 kB caches beyond which extra area stops paying (Kill rule).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dse/pareto.h"
#include "dse/report.h"
#include "dse/sweep.h"
#include "harness.h"
#include "sweep_case.h"

using namespace medea;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 60;
  if (n < 4) n = 60;  // ignore non-numeric argv (e.g. harness flags)
  std::printf("# Fig. 7 — optimal speedup vs chip area, %dx%d array\n", n, n);

  dse::SweepSpec spec;
  spec.n = n;

  bench::Report report("fig7_speedup_area_" + std::to_string(n) + "x" +
                           std::to_string(n),
                       argc, argv,
                       bench::RunOptions{.warmup = 0, .repetitions = 1});

  std::vector<dse::SweepPoint> points;
  auto m = bench::sweep_case(
      "sweep/" + std::to_string(n) + "x" + std::to_string(n),
      "n=" + std::to_string(n) + " full design space, Pareto + Kill rule",
      report.options(), spec, points);

  auto design = dse::to_design_points(points);
  const auto frontier = dse::pareto_frontier(design);

  // The paper normalises against the smallest-area configuration.
  const double baseline = frontier.front().exec_cycles;
  const auto curve = dse::speedup_curve(frontier, baseline);
  const std::size_t knee = dse::kill_rule_knee(frontier);

  std::printf("%-10s %-10s %-14s %s\n", "area_mm2", "speedup", "config",
              "note");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("%-10.2f %-10.2f %-14s %s\n", curve[i].area_mm2,
                curve[i].speedup, curve[i].label.c_str(),
                i == knee ? "<- Kill-rule knee" : "");
  }
  std::printf("\n# Kill-rule optimum: %s at %.2f mm2 (speedup %.1f)\n",
              frontier[knee].label.c_str(), frontier[knee].area_mm2,
              baseline / frontier[knee].exec_cycles);

  m.metric("frontier_points", static_cast<double>(frontier.size()));
  m.metric("knee_area_mm2", frontier[knee].area_mm2);
  m.metric("knee_speedup", baseline / frontier[knee].exec_cycles);
  report.add(std::move(m));

  // Single-threaded bench startup; no concurrent env access.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* dir = std::getenv("MEDEA_REPORT_DIR")) {
    const std::string base = std::string(dir) + "/fig7_" + std::to_string(n);
    dse::write_file(base + ".dat", dse::speedup_dat(curve));
    dse::write_file(base + ".gp",
                    dse::speedup_gp(base + ".dat",
                                    "Optimal speedup vs chip area, " +
                                        std::to_string(n) + "x" +
                                        std::to_string(n)));
    std::printf("# artifacts written to %s.{dat,gp}\n", base.c_str());
  }
  return report.finish();
}
