/// bench_trace_replay — how much faster is trace replay than the full
/// simulation it was recorded from?
///
/// For each scenario the bench (1) records a flit trace from one full
/// run, then (2) times the full simulation and the bare-NoC replay of
/// that trace over the harness repetitions.  Replay advances (almost)
/// the same simulated cycles without PEs, caches, MPMMU or coroutines,
/// so its sim_speed should be a multiple of the full run's — that ratio
/// is the payoff of trace-driven NoC/DSE studies and is emitted as the
/// `speedup_vs_full` metric (the workload-engine acceptance bar is
/// >= 2x for the full-PE jacobi scenario).

#include <string>

#include "harness.h"
#include "noc/network.h"
#include "sim/scheduler.h"
#include "workload/replay.h"
#include "workload/workload.h"

using namespace medea;

namespace {

struct Scenario {
  const char* name;      // workload registry name
  const char* tag;       // case-name prefix
  workload::RunRequest req;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("trace_replay", argc, argv);

  Scenario scenarios[2];
  scenarios[0].name = "jacobi";
  scenarios[0].tag = "jacobi/8c_30x30";
  scenarios[0].req.machine.num_compute_cores = 8;
  scenarios[0].req.app = workload::AppParams{};
  scenarios[0].req.app->size = 30;
  scenarios[0].req.app->iterations = 2;

  scenarios[1].name = "uniform";
  scenarios[1].tag = "uniform/16n_r0.1";
  scenarios[1].req.synthetic = workload::SyntheticParams{};
  scenarios[1].req.synthetic->flits_per_node = 2000;
  scenarios[1].req.synthetic->injection_rate = 0.1;

  for (const Scenario& sc : scenarios) {
    // Record once (not timed); replay repetitions reuse the in-memory
    // trace so file I/O stays out of the measurement.
    const workload::Trace trace = workload::record_workload(sc.name, sc.req);
    const std::string cfg = std::string(sc.name) + " trace: " +
                            std::to_string(trace.events.size()) + " events";

    auto full = bench::run_case(
        std::string(sc.tag) + "/full", cfg, report.options(), [&] {
          return workload::run_by_name(sc.name, sc.req).cycles;
        });
    const double full_speed = full.sim_speed;
    full.metric("trace_events", static_cast<double>(trace.events.size()));
    report.add(std::move(full));

    auto replay = bench::run_case(
        std::string(sc.tag) + "/replay", cfg, report.options(), [&] {
          sim::Scheduler sched;
          noc::Network net(
              sched,
              noc::TorusGeometry(trace.meta.width, trace.meta.height),
              sc.req.machine.router, trace.meta.seed);
          return workload::run_replay(sched, net, trace).cycles;
        });
    const double speedup =
        full_speed > 0.0 ? replay.sim_speed / full_speed : 0.0;
    replay.metric("speedup_vs_full", speedup);
    replay.metric("trace_bytes",
                  static_cast<double>(workload::serialize_trace(trace).size()));
    report.add(std::move(replay));
  }

  return report.finish();
}
