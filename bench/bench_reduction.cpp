/// Reduction (all-reduce dot product) benchmark — §IV future work
/// ("porting and execution of standard parallel benchmarks"): the
/// message-passing combine versus the lock-protected shared-memory
/// accumulator, across core counts and problem sizes.

#include <cstdint>
#include <cstdio>
#include <string>

#include "apps/reduction.h"
#include "core/medea.h"
#include "dse/sweep.h"
#include "harness.h"

using namespace medea;

namespace {

bench::Measurement reduction_case(const bench::RunOptions& opt,
                                  apps::ReductionVariant variant, int cores,
                                  int elements, bool& numerics_ok) {
  double cycles_per_round = 0.0;
  numerics_ok = true;
  auto m = bench::run_case(
      std::string(apps::to_string(variant)) + "/" + std::to_string(cores) +
          "c_" + std::to_string(elements) + "e",
      std::string("variant=") + apps::to_string(variant) +
          " cores=" + std::to_string(cores) +
          " elements=" + std::to_string(elements) + " l1_kb=16 policy=WB",
      opt, [&] {
        core::MedeaSystem sys(
            dse::make_design_config(cores, 16, mem::WritePolicy::kWriteBack));
        apps::ReductionParams p;
        p.elements = elements;
        p.repeats = 2;
        p.variant = variant;
        const auto res = apps::run_reduction(sys, p);
        cycles_per_round = res.cycles_per_round;
        if (res.abs_error > 1e-9) numerics_ok = false;
        return res.total_cycles;
      });
  if (!numerics_ok) {
    std::fprintf(stderr, "bench_reduction: numerical mismatch in %s\n",
                 m.name.c_str());
  }
  m.metric("cycles_per_round", cycles_per_round);
  m.metric("numerics_ok", numerics_ok ? 1.0 : 0.0);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("reduction", argc, argv);
  bool all_ok = true;
  for (auto variant : {apps::ReductionVariant::kMessagePassing,
                       apps::ReductionVariant::kSharedMemory}) {
    for (int cores : {2, 4, 8, 15}) {
      for (int elements : {256, 4096}) {
        bool numerics_ok = true;
        report.add(reduction_case(report.options(), variant, cores, elements,
                                  numerics_ok));
        all_ok = all_ok && numerics_ok;
      }
    }
  }
  const int rc = report.finish();
  return all_ok ? rc : 1;
}
