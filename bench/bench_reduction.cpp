/// Reduction (all-reduce dot product) benchmark — §IV future work
/// ("porting and execution of standard parallel benchmarks"): the
/// message-passing combine versus the lock-protected shared-memory
/// accumulator, across core counts and problem sizes.

#include <benchmark/benchmark.h>

#include "apps/reduction.h"
#include "core/medea.h"
#include "dse/sweep.h"

using namespace medea;

namespace {

void BM_Reduction(benchmark::State& state) {
  const auto variant = static_cast<apps::ReductionVariant>(state.range(0));
  const int cores = static_cast<int>(state.range(1));
  const int elements = static_cast<int>(state.range(2));
  double cycles = 0.0;
  for (auto _ : state) {
    core::MedeaSystem sys(
        dse::make_design_config(cores, 16, mem::WritePolicy::kWriteBack));
    apps::ReductionParams p;
    p.elements = elements;
    p.repeats = 2;
    p.variant = variant;
    const auto res = apps::run_reduction(sys, p);
    cycles = res.cycles_per_round;
    if (res.abs_error > 1e-9) state.SkipWithError("numerical mismatch");
  }
  state.SetLabel(apps::to_string(variant));
  state.counters["cycles_per_round"] = cycles;
  state.counters["cores"] = cores;
  state.counters["elements"] = elements;
}

}  // namespace

BENCHMARK(BM_Reduction)
    ->ArgsProduct({{static_cast<int>(apps::ReductionVariant::kMessagePassing),
                    static_cast<int>(apps::ReductionVariant::kSharedMemory)},
                   {2, 4, 8, 15},
                   {256, 4096}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
