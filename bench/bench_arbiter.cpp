/// Arbiter ablation (§II-B, Fig. 3): the three NoC-access arbiter
/// configurations — bare mux, single shared FIFO, dual HP/BE FIFO —
/// under a workload that mixes shared-memory and message-passing traffic
/// (the hybrid Jacobi run, which exercises both interfaces).

#include <cstdint>
#include <string>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"
#include "harness.h"

using namespace medea;

namespace {

bench::Measurement arbiter_case(const bench::RunOptions& opt,
                                pe::ArbiterKind kind, int cores) {
  double cycles_per_iter = 0.0;
  double contention = 0.0;
  auto m = bench::run_case(
      std::string(pe::to_string(kind)) + "/" + std::to_string(cores) + "c",
      "arbiter=" + std::string(pe::to_string(kind)) +
          " cores=" + std::to_string(cores) +
          " l1_kb=4 policy=WB variant=hybrid_mp n=30",
      opt, [&] {
        core::MedeaConfig cfg =
            dse::make_design_config(cores, 4, mem::WritePolicy::kWriteBack);
        cfg.arbiter.kind = kind;
        core::MedeaSystem sys(cfg);
        apps::JacobiParams p;
        p.n = 30;  // 4 kB caches + 30x30: real miss traffic alongside MP
        p.variant = apps::JacobiVariant::kHybridMp;
        const auto res = apps::run_jacobi(sys, p);
        cycles_per_iter = res.cycles_per_iteration;
        contention =
            static_cast<double>(sys.aggregate_stats().get("arb.contention"));
        return res.total_cycles;
      });
  m.metric("cycles_per_iter", cycles_per_iter);
  m.metric("arb_contention", contention);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("arbiter", argc, argv);
  for (auto kind : {pe::ArbiterKind::kMux, pe::ArbiterKind::kSingleFifo,
                    pe::ArbiterKind::kDualFifo}) {
    for (int cores : {4, 10}) {
      report.add(arbiter_case(report.options(), kind, cores));
    }
  }
  return report.finish();
}
