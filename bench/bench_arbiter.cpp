/// Arbiter ablation (§II-B, Fig. 3): the three NoC-access arbiter
/// configurations — bare mux, single shared FIFO, dual HP/BE FIFO —
/// under a workload that mixes shared-memory and message-passing traffic
/// (the hybrid Jacobi run, which exercises both interfaces).

#include <benchmark/benchmark.h>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"

using namespace medea;

namespace {

void BM_ArbiterKind(benchmark::State& state) {
  const auto kind = static_cast<pe::ArbiterKind>(state.range(0));
  const int cores = static_cast<int>(state.range(1));
  double cycles = 0.0;
  std::uint64_t contention = 0;
  for (auto _ : state) {
    core::MedeaConfig cfg =
        dse::make_design_config(cores, 4, mem::WritePolicy::kWriteBack);
    cfg.arbiter.kind = kind;
    core::MedeaSystem sys(cfg);
    apps::JacobiParams p;
    p.n = 30;  // 4 kB caches + 30x30: real miss traffic alongside MP
    p.variant = apps::JacobiVariant::kHybridMp;
    const auto res = apps::run_jacobi(sys, p);
    cycles = res.cycles_per_iteration;
    contention = sys.aggregate_stats().get("arb.contention");
    benchmark::DoNotOptimize(res.checksum);
  }
  state.SetLabel(pe::to_string(kind));
  state.counters["cycles_per_iter"] = cycles;
  state.counters["arb_contention"] = static_cast<double>(contention);
}

}  // namespace

BENCHMARK(BM_ArbiterKind)
    ->ArgsProduct({{static_cast<int>(pe::ArbiterKind::kMux),
                    static_cast<int>(pe::ArbiterKind::kSingleFifo),
                    static_cast<int>(pe::ArbiterKind::kDualFifo)},
                   {4, 10}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
