/// Micro-benchmark of the deflection-routed folded-torus NoC: latency,
/// throughput and deflection behaviour under uniform-random traffic at
/// increasing injection rates (ablation for the §II-A routing choice).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "noc/network.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace {

using namespace medea;

/// Injects uniform-random traffic at a fixed rate and sinks everything.
class TrafficNode : public sim::Component {
 public:
  TrafficNode(sim::Scheduler& s, noc::Network& net, int node, double rate,
              int flits_to_send, std::uint64_t seed)
      : sim::Component(s, "traffic" + std::to_string(node)),
        net_(net),
        node_(node),
        rate_(rate),
        remaining_(flits_to_send),
        rng_(seed) {
    net.eject(node).set_consumer(this);
    s.wake_at(*this, 1);
  }

  void tick(sim::Cycle now) override {
    (void)now;
    auto& ej = net_.eject(node_);
    while (!ej.empty()) {
      ej.pop();
      ++received;
    }
    if (remaining_ > 0 && rng_.next_bool(rate_)) {
      auto& inj = net_.inject(node_);
      if (inj.can_push()) {
        noc::Flit f;
        f.valid = true;
        int dst = node_;
        while (dst == node_) {
          dst = static_cast<int>(
              rng_.next_below(static_cast<std::uint32_t>(net_.num_nodes())));
        }
        f.dst = net_.geometry().coord_of(dst);
        f.type = noc::FlitType::kMessage;
        f.subtype = noc::kMpData;
        f.src_id = static_cast<std::uint8_t>(node_);
        f.uid = net_.next_flit_uid();
        inj.push(f);
        --remaining_;
      }
    }
    if (remaining_ > 0) wake();
  }

  int received = 0;

 private:
  noc::Network& net_;
  int node_;
  double rate_;
  int remaining_;
  sim::Xoshiro256 rng_;
};

bench::Measurement uniform_random(const bench::RunOptions& opt, int rate_pct) {
  const double rate = rate_pct / 100.0;
  double mean_latency = 0.0;
  double mean_hops = 0.0;
  double deflections = 0.0;
  double delivered = 0.0;
  auto m = bench::run_case(
      "uniform_random/" + std::to_string(rate_pct) + "pct",
      "pattern=uniform_random inj_rate=" + std::to_string(rate) +
          " torus=4x4 flits_per_node=500",
      opt, [&] {
        sim::Scheduler sched;
        noc::Network net(sched, noc::TorusGeometry(4, 4));
        std::vector<std::unique_ptr<TrafficNode>> nodes;
        for (int i = 0; i < net.num_nodes(); ++i) {
          nodes.push_back(std::make_unique<TrafficNode>(
              sched, net, i, rate, 500, 42 + static_cast<std::uint64_t>(i)));
        }
        sched.run(10'000'000);
        mean_latency = net.stats().acc("noc.latency").mean();
        mean_hops = net.stats().acc("noc.hops").mean();
        deflections =
            static_cast<double>(net.stats().get("noc.deflections_total"));
        delivered =
            static_cast<double>(net.stats().get("noc.flits_delivered"));
        return sched.now();
      });
  m.metric("mean_latency_cyc", mean_latency);
  m.metric("mean_hops", mean_hops);
  m.metric("deflections", deflections);
  m.metric("delivered", delivered);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("noc_deflection", argc, argv);
  for (int rate_pct : {5, 10, 20, 40, 80}) {
    report.add(uniform_random(report.options(), rate_pct));
  }
  return report.finish();
}
