#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dse/sweep.h"
#include "harness.h"

/// \file sweep_case.h
/// Shared glue for the figure harnesses (fig6-fig9): run a DSE sweep as
/// one bench case.  The returned cycle count is the sum of per-iteration
/// cycles over all design points — a deterministic simulated-work proxy
/// that makes sim_speed comparable across sweeps.

namespace medea::bench {

inline Measurement sweep_case(std::string name, std::string config,
                              const RunOptions& opt,
                              const dse::SweepSpec& spec,
                              std::vector<dse::SweepPoint>& points) {
  auto m = run_case(std::move(name), std::move(config), opt, [&] {
    points = dse::run_sweep(spec);
    double total = 0.0;
    for (const auto& p : points) total += p.cycles_per_iteration;
    return static_cast<std::uint64_t>(total);
  });
  m.metric("design_points", static_cast<double>(points.size()));
  return m;
}

}  // namespace medea::bench
