/// §III data-size study: the paper runs 16x16, 30x30 and 60x60 arrays to
/// cover "small, moderate and large amount of data per core": the
/// smallest case is dominated by communication costs, the largest by
/// computation (for a properly designed system).  This harness prints
/// execution time and parallel efficiency for all three sizes.

#include <cstdint>
#include <cstdio>
#include <string>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"
#include "harness.h"

using namespace medea;

int main(int argc, char** argv) {
  std::printf("# Data-size scaling, hybrid MP, 16 kB WB caches\n");
  std::printf("# (speedup vs 1 core at the same size; >P-fold speedup is\n");
  std::printf("#  real cache aggregation: P cores bring P x 16 kB of L1,\n");
  std::printf("#  the same effect behind the paper's superlinear Fig. 7)\n");
  std::printf("%-6s %12s %8s %12s %8s %12s %8s\n", "cores", "16x16", "spdup",
              "30x30", "spdup", "60x60", "spdup");

  bench::Report report("size_scaling", argc, argv,
                       bench::RunOptions{.warmup = 0, .repetitions = 1});

  double base[3] = {0, 0, 0};
  for (int cores : {1, 2, 4, 6, 8, 10, 12, 15}) {
    double t[3];
    auto m = bench::run_case(
        "jacobi/" + std::to_string(cores) + "c",
        "cores=" + std::to_string(cores) +
            " l1_kb=16 policy=WB variant=hybrid_mp n=16,30,60",
        report.options(), [&] {
          std::uint64_t total = 0;
          int i = 0;
          for (int n : {16, 30, 60}) {
            core::MedeaSystem sys(dse::make_design_config(
                cores, 16, mem::WritePolicy::kWriteBack));
            apps::JacobiParams p;
            p.n = n;
            p.variant = apps::JacobiVariant::kHybridMp;
            const auto res = apps::run_jacobi(sys, p);
            t[i++] = res.cycles_per_iteration;
            total += res.total_cycles;
          }
          return total;
        });
    if (cores == 1) {
      base[0] = t[0];
      base[1] = t[1];
      base[2] = t[2];
    }
    std::printf("%-6d %12.0f %7.1fx %12.0f %7.1fx %12.0f %7.1fx\n", cores,
                t[0], base[0] / t[0], t[1], base[1] / t[1], t[2],
                base[2] / t[2]);
    m.metric("cycles_16x16", t[0]);
    m.metric("cycles_30x30", t[1]);
    m.metric("cycles_60x60", t[2]);
    m.metric("speedup_16x16", base[0] / t[0]);
    m.metric("speedup_30x30", base[1] / t[1]);
    m.metric("speedup_60x60", base[2] / t[2]);
    report.add(std::move(m));
  }
  std::printf("\n# expectation: relative to ideal P-fold scaling, the\n"
              "# 16x16 case falls off first (communication-dominated), the\n"
              "# 60x60 case last (computation-dominated), per §III.\n");
  return report.finish();
}
