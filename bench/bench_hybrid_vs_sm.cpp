/// §III comparison harness: the paper's programming-model ablation on the
/// 60x60 array.
///
///  * hybrid full message passing (Medea)          — data + sync over MP
///  * hybrid sync-only                              — data via shared
///    memory, barriers over MP
///  * pure shared memory                            — lock-based barrier,
///    everything through the MPMMU
///
/// Paper's numbers to compare against:
///  * Medea vs pure SM: ~2x below the lower knee, growing from 2x at 6
///    cores to >5x at 10 cores (16 kB caches).
///  * sync-only within 2-20% of full MP where miss rate matters; 2x-2.8x
///    (vs 2x-5x) where the miss rate is negligible.
///  * => at least 100*2.8/5 = 56% of the peak 5x gain comes from
///    synchronization alone.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"
#include "harness.h"

using namespace medea;

namespace {

double run_variant(int n, int cores, std::uint32_t cache_kb,
                   apps::JacobiVariant v, std::uint64_t* total_cycles) {
  core::MedeaSystem sys(
      dse::make_design_config(cores, cache_kb, mem::WritePolicy::kWriteBack));
  apps::JacobiParams p;
  p.n = n;
  p.variant = v;
  p.warmup_iterations = 1;
  p.timed_iterations = 1;
  const auto res = apps::run_jacobi(sys, p);
  *total_cycles += res.total_cycles;
  return res.cycles_per_iteration;
}

}  // namespace

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 60;
  if (n < 4) n = 60;  // ignore non-numeric argv (e.g. harness flags)
  std::printf("# Hybrid vs shared memory, %dx%d array, write-back\n", n, n);
  std::printf("%-5s %-6s %10s %12s %10s %9s %9s %12s\n", "cores", "L1",
              "hybridMP", "sync-only", "pureSM", "mp/sm", "sync/sm",
              "sync_share");

  bench::Report report("hybrid_vs_sm", argc, argv,
                       bench::RunOptions{.warmup = 0, .repetitions = 1});

  for (std::uint32_t kb : {4u, 16u}) {
    for (int cores : {2, 4, 6, 8, 10, 12, 15}) {
      double mp = 0.0, so = 0.0, sm = 0.0;
      auto m = bench::run_case(
          std::to_string(cores) + "c_" + std::to_string(kb) + "kB",
          "cores=" + std::to_string(cores) + " l1_kb=" + std::to_string(kb) +
              " policy=WB n=" + std::to_string(n) +
              " variants=hybrid_mp,sync_only,pure_sm",
          report.options(), [&] {
            std::uint64_t total = 0;
            mp = run_variant(n, cores, kb, apps::JacobiVariant::kHybridMp,
                             &total);
            so = run_variant(n, cores, kb,
                             apps::JacobiVariant::kHybridSyncOnly, &total);
            sm = run_variant(n, cores, kb,
                             apps::JacobiVariant::kPureSharedMemory, &total);
            return total;
          });
      // Fraction of the full-MP gain attributable to synchronization
      // alone (paper: >= 56% at the 5x peak, up to 100% in the 2x cases).
      // Only meaningful where the hybrid actually gains.
      const double gain_mp = sm / mp - 1.0;
      const double gain_so = sm / so - 1.0;
      char share[16] = "-";
      if (gain_mp > 0.05) {
        std::snprintf(share, sizeof share, "%.0f%%",
                      100.0 * gain_so / gain_mp);
      }
      std::printf("%-5d %-6s %10.0f %12.0f %10.0f %8.2fx %8.2fx %11s\n",
                  cores, (std::to_string(kb) + "kB").c_str(), mp, so, sm,
                  sm / mp, sm / so, share);
      m.metric("cycles_hybrid_mp", mp);
      m.metric("cycles_sync_only", so);
      m.metric("cycles_pure_sm", sm);
      m.metric("speedup_mp_vs_sm", sm / mp);
      m.metric("speedup_sync_vs_sm", sm / so);
      report.add(std::move(m));
    }
  }
  return report.finish();
}
