/// Fig. 9 harness: optimal speedup versus chip area for the 30x30 array.
///
/// Expected shape (paper): the lower knee occurs at a 4x smaller cache
/// than the 60x60 case (the array is 4x smaller) and at a larger core
/// count; the Kill-rule knee falls at or beyond 15 cores.

#include <cstdio>
#include <vector>

#include "dse/pareto.h"
#include "dse/sweep.h"
#include "harness.h"
#include "sweep_case.h"

using namespace medea;

int main(int argc, char** argv) {
  std::printf("# Fig. 9 — optimal speedup vs chip area, 30x30 array\n");

  dse::SweepSpec spec;
  spec.n = 30;

  bench::Report report("fig9_speedup_area_30x30", argc, argv,
                       bench::RunOptions{.warmup = 0, .repetitions = 1});

  std::vector<dse::SweepPoint> points;
  auto m = bench::sweep_case("sweep/30x30",
                             "n=30 full design space, Pareto + Kill rule",
                             report.options(), spec, points);

  auto design = dse::to_design_points(points);
  const auto frontier = dse::pareto_frontier(design);
  const double baseline = frontier.front().exec_cycles;
  const auto curve = dse::speedup_curve(frontier, baseline);
  const std::size_t knee = dse::kill_rule_knee(frontier);

  std::printf("%-10s %-10s %-14s %s\n", "area_mm2", "speedup", "config",
              "note");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("%-10.2f %-10.2f %-14s %s\n", curve[i].area_mm2,
                curve[i].speedup, curve[i].label.c_str(),
                i == knee ? "<- Kill-rule knee" : "");
  }
  std::printf("\n# Kill-rule optimum: %s at %.2f mm2 (speedup %.1f)\n",
              frontier[knee].label.c_str(), frontier[knee].area_mm2,
              baseline / frontier[knee].exec_cycles);

  m.metric("frontier_points", static_cast<double>(frontier.size()));
  m.metric("knee_area_mm2", frontier[knee].area_mm2);
  m.metric("knee_speedup", baseline / frontier[knee].exec_cycles);
  report.add(std::move(m));
  return report.finish();
}
