/// Fig. 9 harness: optimal speedup versus chip area for the 30x30 array.
///
/// Expected shape (paper): the lower knee occurs at a 4x smaller cache
/// than the 60x60 case (the array is 4x smaller) and at a larger core
/// count; the Kill-rule knee falls at or beyond 15 cores.

#include <cstdio>

#include "dse/pareto.h"
#include "dse/sweep.h"

using namespace medea;

int main() {
  std::printf("# Fig. 9 — optimal speedup vs chip area, 30x30 array\n");

  dse::SweepSpec spec;
  spec.n = 30;
  const auto points = dse::run_sweep(spec);
  auto design = dse::to_design_points(points);
  const auto frontier = dse::pareto_frontier(design);
  const double baseline = frontier.front().exec_cycles;
  const auto curve = dse::speedup_curve(frontier, baseline);
  const std::size_t knee = dse::kill_rule_knee(frontier);

  std::printf("%-10s %-10s %-14s %s\n", "area_mm2", "speedup", "config",
              "note");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("%-10.2f %-10.2f %-14s %s\n", curve[i].area_mm2,
                curve[i].speedup, curve[i].label.c_str(),
                i == knee ? "<- Kill-rule knee" : "");
  }
  std::printf("\n# Kill-rule optimum: %s at %.2f mm2 (speedup %.1f)\n",
              frontier[knee].label.c_str(), frontier[knee].area_mm2,
              baseline / frontier[knee].exec_cycles);
  return 0;
}
