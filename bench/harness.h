#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

/// \file harness.h
/// Shared benchmark harness for every bench_* binary.
///
/// Responsibilities:
///  * wall-clock timing with warm-up and repetitions,
///  * robust summary statistics (median across reps, sample stddev),
///  * machine-readable output: each binary writes BENCH_<name>.json so CI
///    can archive the perf trajectory PR over PR.
///
/// Usage pattern:
///
///   bench::Report report("sim_speed", argc, argv);
///   report.add(bench::run_case("jacobi/8c", "cores=8 l1=16kB",
///                              report.options(), [&] {
///     core::MedeaSystem sys(make_config(...));
///     ...
///     return res.total_cycles;   // simulated cycles of this invocation
///   }));
///   return report.finish();      // prints a table, writes the JSON
///
/// The measured callable returns the number of *simulated* cycles it
/// advanced, so the harness can derive sim_speed = cycles / wall_seconds,
/// the headline throughput metric of the DSE methodology (§III).

namespace medea::bench {

// ---------------------------------------------------------------------
// Summary statistics
// ---------------------------------------------------------------------

/// Median (by value; averages the middle pair for even sizes).
inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 != 0) return hi;
  const double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

// ---------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// ---------------------------------------------------------------------
// Measurements
// ---------------------------------------------------------------------

struct RunOptions {
  int warmup = 1;       ///< untimed invocations before measuring
  int repetitions = 5;  ///< timed invocations summarised into one row
};

struct Measurement {
  std::string name;    ///< case label, e.g. "jacobi/8c_16kB"
  std::string config;  ///< free-form config description
  double cycles = 0.0;       ///< simulated cycles per invocation (median)
  double wall_ns = 0.0;      ///< wall time per invocation (median, ns)
  double wall_ns_stddev = 0.0;
  double sim_speed = 0.0;    ///< simulated cycles per wall-clock second
  int repetitions = 0;
  /// Domain metrics (miss rate, deflections, cycles/iteration, ...),
  /// serialized as a nested "metrics" object.
  std::vector<std::pair<std::string, double>> metrics;

  Measurement& metric(std::string key, double value) {
    metrics.emplace_back(std::move(key), value);
    return *this;
  }
};

/// Time `fn` (a callable returning the simulated-cycle count of one
/// invocation, or any integer; return 0 if cycles are meaningless).
template <typename F>
Measurement run_case(std::string name, std::string config,
                     const RunOptions& opt, F&& fn) {
  for (int i = 0; i < opt.warmup; ++i) {
    (void)fn();
  }
  std::vector<double> wall;
  std::vector<double> cycles;
  const int reps = opt.repetitions > 0 ? opt.repetitions : 1;
  wall.reserve(static_cast<std::size_t>(reps));
  cycles.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Timer t;
    const auto c = fn();
    wall.push_back(t.elapsed_ns());
    cycles.push_back(static_cast<double>(c));
  }
  Measurement m;
  m.name = std::move(name);
  m.config = std::move(config);
  m.cycles = median(cycles);
  m.wall_ns = median(wall);
  m.wall_ns_stddev = stddev(wall);
  m.sim_speed = m.wall_ns > 0.0 ? m.cycles / (m.wall_ns * 1e-9) : 0.0;
  m.repetitions = reps;
  return m;
}

// ---------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double as JSON (no NaN/Inf in JSON; clamp to null).
/// Integral values (e.g. deterministic simulated-cycle counts) are
/// emitted exactly as integers; everything else round-trips via %.17g
/// so PR-over-PR comparisons never lose a regression to rounding.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

/// Collects Measurements and writes BENCH_<name>.json on finish().
class Report {
 public:
  /// `name` is the bench's short name: binary bench_foo => name "foo",
  /// output file BENCH_foo.json.  `defaults` seeds the run options
  /// (e.g. single-repetition for deterministic sweeps) and argv is then
  /// scanned for harness flags, so user flags always win:
  ///   --reps=N       override repetitions
  ///   --warmup=N     override warm-up invocations
  ///   --json-dir=D   directory for the JSON file (default ".")
  explicit Report(std::string name, int argc = 0, char** argv = nullptr,
                  RunOptions defaults = {})
      : name_(std::move(name)), opt_(defaults) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--reps=", 0) == 0) {
        opt_.repetitions = std::atoi(a.c_str() + 7);
      } else if (a.rfind("--warmup=", 0) == 0) {
        opt_.warmup = std::atoi(a.c_str() + 9);
      } else if (a.rfind("--json-dir=", 0) == 0) {
        json_dir_ = a.substr(11);
      }
    }
  }

  const std::string& name() const { return name_; }
  const RunOptions& options() const { return opt_; }
  const std::vector<Measurement>& measurements() const { return cases_; }

  void add(Measurement m) {
    std::printf("%-40s %14.0f cyc %12.3f ms %10.2f Mcyc/s (±%.1f%%, n=%d)\n",
                m.name.c_str(), m.cycles, m.wall_ns / 1e6, m.sim_speed / 1e6,
                m.wall_ns > 0.0 ? 100.0 * m.wall_ns_stddev / m.wall_ns : 0.0,
                m.repetitions);
    std::fflush(stdout);
    cases_.push_back(std::move(m));
  }

  std::string to_json() const {
    // Append-only string building: GCC 12's -O3 -Wrestrict fires a false
    // positive on `const char* + string&&` chains.
    std::string j = "{\n  \"bench\": \"";
    j += json_escape(name_);
    j += "\",\n";
    j += "  \"schema_version\": 1,\n";
    j += "  \"cases\": [";
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      const Measurement& m = cases_[i];
      j += i == 0 ? "\n" : ",\n";
      auto field = [&j](const std::string& key, const std::string& value,
                        bool quoted) {
        j += '"';
        j += key;
        j += quoted ? "\": \"" : "\": ";
        j += value;
        if (quoted) j += '"';
      };
      j += "    {";
      field("name", json_escape(m.name), true);
      j += ", ";
      field("config", json_escape(m.config), true);
      j += ", ";
      field("cycles", json_number(m.cycles), false);
      j += ", ";
      field("wall_ns", json_number(m.wall_ns), false);
      j += ", ";
      field("wall_ns_stddev", json_number(m.wall_ns_stddev), false);
      j += ", ";
      field("sim_speed", json_number(m.sim_speed), false);
      j += ", ";
      field("repetitions", std::to_string(m.repetitions), false);
      j += ", \"metrics\": {";
      for (std::size_t k = 0; k < m.metrics.size(); ++k) {
        if (k != 0) j += ", ";
        field(json_escape(m.metrics[k].first),
              json_number(m.metrics[k].second), false);
      }
      j += "}}";
    }
    j += "\n  ]\n}\n";
    return j;
  }

  /// Write BENCH_<name>.json; returns 0 on success (use as exit status).
  int finish() const {
    const std::string path = json_dir_ + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return 1;
    }
    const std::string j = to_json();
    const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok ? 0 : 1;
  }

 private:
  std::string name_;
  std::string json_dir_ = ".";
  RunOptions opt_;
  std::vector<Measurement> cases_;
};

}  // namespace medea::bench
