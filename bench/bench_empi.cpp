/// eMPI micro-benchmarks (§II-E): point-to-point latency/throughput of
/// the TIE message-passing path and barrier cost versus core count — the
/// low-latency synchronization the paper's hybrid model is built on.

#include <benchmark/benchmark.h>

#include "core/medea.h"

using namespace medea;

namespace {

sim::Task<> pingpong_a(pe::ProcessingElement& pe, int peer, int rounds,
                       int words, sim::Cycle* cycles) {
  std::vector<std::uint32_t> payload(static_cast<std::size_t>(words), 7u);
  const sim::Cycle t0 = pe.now();
  for (int r = 0; r < rounds; ++r) {
    co_await empi::send(pe, peer, payload);
    co_await empi::receive(pe, peer, words);
  }
  *cycles = pe.now() - t0;
}

sim::Task<> pingpong_b(pe::ProcessingElement& pe, int peer, int rounds,
                       int words) {
  std::vector<std::uint32_t> payload(static_cast<std::size_t>(words), 9u);
  for (int r = 0; r < rounds; ++r) {
    co_await empi::receive(pe, peer, words);
    co_await empi::send(pe, peer, payload);
  }
}

void BM_PingPong(benchmark::State& state) {
  const int words = static_cast<int>(state.range(0));
  const int rounds = 50;
  sim::Cycle cycles = 0;
  for (auto _ : state) {
    core::MedeaConfig cfg;
    cfg.num_compute_cores = 2;
    core::MedeaSystem sys(cfg);
    sys.set_program(0, pingpong_a(sys.core(0), sys.node_of_rank(1), rounds,
                                  words, &cycles));
    sys.set_program(1,
                    pingpong_b(sys.core(1), sys.node_of_rank(0), rounds, words));
    sys.run();
  }
  state.counters["cycles_per_roundtrip"] =
      static_cast<double>(cycles) / rounds;
  state.counters["payload_words"] = words;
}

sim::Task<> barrier_loop(pe::ProcessingElement& pe, std::vector<int> members,
                         int rounds, sim::Cycle* cycles) {
  const sim::Cycle t0 = pe.now();
  for (int r = 0; r < rounds; ++r) co_await empi::barrier(pe, members);
  if (cycles != nullptr) *cycles = pe.now() - t0;
}

void BM_Barrier(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const int rounds = 20;
  sim::Cycle cycles = 0;
  for (auto _ : state) {
    core::MedeaConfig cfg;
    cfg.num_compute_cores = cores;
    core::MedeaSystem sys(cfg);
    for (int r = 0; r < cores; ++r) {
      sys.set_program(r, barrier_loop(sys.core(r), sys.core_nodes(), rounds,
                                      r == 0 ? &cycles : nullptr));
    }
    sys.run();
  }
  state.counters["cycles_per_barrier"] = static_cast<double>(cycles) / rounds;
  state.counters["cores"] = cores;
}

}  // namespace

BENCHMARK(BM_PingPong)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->Arg(15)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
