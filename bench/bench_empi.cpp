/// eMPI micro-benchmarks (§II-E): point-to-point latency/throughput of
/// the TIE message-passing path and barrier cost versus core count — the
/// low-latency synchronization the paper's hybrid model is built on.

#include <cstdint>
#include <string>
#include <vector>

#include "core/medea.h"
#include "harness.h"

using namespace medea;

namespace {

sim::Task<> pingpong_a(pe::ProcessingElement& pe, int peer, int rounds,
                       int words, sim::Cycle* cycles) {
  std::vector<std::uint32_t> payload(static_cast<std::size_t>(words), 7u);
  const sim::Cycle t0 = pe.now();
  for (int r = 0; r < rounds; ++r) {
    co_await empi::send(pe, peer, payload);
    co_await empi::receive(pe, peer, words);
  }
  *cycles = pe.now() - t0;
}

sim::Task<> pingpong_b(pe::ProcessingElement& pe, int peer, int rounds,
                       int words) {
  std::vector<std::uint32_t> payload(static_cast<std::size_t>(words), 9u);
  for (int r = 0; r < rounds; ++r) {
    co_await empi::receive(pe, peer, words);
    co_await empi::send(pe, peer, payload);
  }
}

bench::Measurement pingpong(const bench::RunOptions& opt, int words) {
  const int rounds = 50;
  sim::Cycle cycles = 0;
  auto m = bench::run_case(
      "pingpong/" + std::to_string(words) + "w",
      "payload_words=" + std::to_string(words) +
          " rounds=" + std::to_string(rounds) + " cores=2",
      opt, [&] {
        core::MedeaConfig cfg;
        cfg.num_compute_cores = 2;
        core::MedeaSystem sys(cfg);
        sys.set_program(0, pingpong_a(sys.core(0), sys.node_of_rank(1), rounds,
                                      words, &cycles));
        sys.set_program(
            1, pingpong_b(sys.core(1), sys.node_of_rank(0), rounds, words));
        return sys.run();
      });
  m.metric("cycles_per_roundtrip", static_cast<double>(cycles) / rounds);
  return m;
}

sim::Task<> barrier_loop(pe::ProcessingElement& pe, std::vector<int> members,
                         int rounds, sim::Cycle* cycles) {
  const sim::Cycle t0 = pe.now();
  for (int r = 0; r < rounds; ++r) co_await empi::barrier(pe, members);
  if (cycles != nullptr) *cycles = pe.now() - t0;
}

bench::Measurement barrier(const bench::RunOptions& opt, int cores) {
  const int rounds = 20;
  sim::Cycle cycles = 0;
  auto m = bench::run_case(
      "barrier/" + std::to_string(cores) + "c",
      "cores=" + std::to_string(cores) + " rounds=" + std::to_string(rounds),
      opt, [&] {
        core::MedeaConfig cfg;
        cfg.num_compute_cores = cores;
        core::MedeaSystem sys(cfg);
        for (int r = 0; r < cores; ++r) {
          sys.set_program(r, barrier_loop(sys.core(r), sys.core_nodes(),
                                          rounds, r == 0 ? &cycles : nullptr));
        }
        return sys.run();
      });
  m.metric("cycles_per_barrier", static_cast<double>(cycles) / rounds);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("empi", argc, argv);
  for (int words : {1, 4, 16, 64}) {
    report.add(pingpong(report.options(), words));
  }
  for (int cores : {2, 4, 8, 15}) {
    report.add(barrier(report.options(), cores));
  }
  return report.finish();
}
