/// bench_saturation — latency-vs-load saturation curves for uniform
/// random traffic on both fabrics, via the phased measurement engine.
///
/// Two kinds of cases per network:
///  * one timed case per load point (`uniform/<net>/l<load>`), emitting
///    the measured latency percentiles (p50/p99/p999), mean, and
///    offered/accepted throughput as metrics — these are the numbers
///    bench_trend.py trends PR over PR;
///  * one `curve` case running the full `sweep_load()` twice: phased
///    runs are deterministic, so the two curves — including the detected
///    saturation point — must match exactly.  The `saturation_stable`
///    metric records the comparison and an unstable curve fails the
///    binary.
///
/// Phase lengths are deliberately short (warmup 512, measure 2048 on a
/// 4x4 torus): this is a trend bench, not a paper-grade study.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness.h"
#include "workload/saturation.h"
#include "workload/timeline.h"
#include "workload/workload.h"

using namespace medea;

int main(int argc, char** argv) {
  bench::RunOptions defaults;
  defaults.warmup = 0;
  defaults.repetitions = 1;  // phased runs are deterministic
  bench::Report report("saturation", argc, argv, defaults);

  bool all_stable = true;
  for (const char* net : {"deflection", "xy"}) {
    workload::LoadSweepSpec spec;
    spec.workload = "uniform";
    spec.loads = {0.10, 0.25, 0.40, 0.55, 0.70, 0.85};
    spec.base.synthetic = workload::SyntheticParams{};
    spec.base.synthetic->network = net;
    spec.base.measurement.warmup_cycles = 512;
    spec.base.measurement.measure_cycles = 2048;
    const std::string cfg =
        "uniform 4x4 " + std::string(net) + ", warmup 512, measure 2048";

    // Per-point latency/throughput rows.
    for (double load : spec.loads) {
      workload::RunRequest req = spec.base;
      req.synthetic->injection_rate = load;
      req.measurement.phased = true;
      workload::MeasurementResult m;
      sim::StatSet stats;
      char label[64];
      std::snprintf(label, sizeof(label), "uniform/%s/l%.2f", net, load);
      auto row =
          bench::run_case(label, cfg, report.options(), [&] {
            workload::RunResult r = workload::run_by_name("uniform", req);
            m = r.measurement;
            stats = std::move(r.stats);
            return r.cycles;
          });
      row.metric("p50", static_cast<double>(m.latency.p50));
      row.metric("p99", static_cast<double>(m.latency.p99));
      row.metric("p999", static_cast<double>(m.latency.p999));
      row.metric("latency_mean", m.latency.mean);
      row.metric("offered_load", m.offered_load);
      row.metric("accepted_throughput", m.accepted_throughput);
      row.metric("drained", m.drained ? 1.0 : 0.0);
      // Deflection forensics scalars (identically zero on the XY fabric,
      // which never misroutes): worst per-packet deflection count and
      // the mean — the congestion signal bench_trend.py tracks PR over
      // PR alongside the latency percentiles.
      row.metric("max_deflections", stats.acc("noc.deflections").max());
      row.metric("mean_deflections", stats.acc("noc.deflections").mean());
      report.add(std::move(row));
    }

    // Time-resolved telemetry near the saturation knee: one sampled
    // phased run, rolled up into timeline_* metrics (peak windowed
    // deflection rate, peak flits/cycle, ...) so trend runs catch
    // transient congestion the end-of-run scalars average away.  The
    // knee load differs per fabric (deflection saturates earlier).
    {
      const double knee = std::string(net) == "xy" ? 0.85 : 0.70;
      workload::RunRequest req = spec.base;
      req.synthetic->injection_rate = knee;
      req.measurement.phased = true;
      req.telemetry.sample_every = 256;
      std::map<std::string, double> summary;
      char label[64];
      std::snprintf(label, sizeof(label), "uniform/%s/knee_timeline", net);
      auto row = bench::run_case(
          label, cfg + ", sampled every 256 @ knee", report.options(), [&] {
            const workload::RunResult r = workload::run_by_name("uniform", req);
            summary = workload::timeline_summary(r.timeline);
            return r.cycles;
          });
      for (const auto& [key, value] : summary) row.metric(key, value);
      report.add(std::move(row));
    }

    // Full curve, twice: the saturation point must be bit-stable.
    std::vector<workload::SaturationCurve> curves;
    bench::RunOptions twice;
    twice.warmup = 0;
    twice.repetitions = 2;
    auto curve_row = bench::run_case(
        "uniform/" + std::string(net) + "/curve", cfg, twice, [&] {
          curves.push_back(workload::sweep_load(spec));
          return curves.back().points.size();
        });
    bool stable = curves.size() == 2 &&
                  curves[0].saturation_load == curves[1].saturation_load &&
                  curves[0].peak_accepted == curves[1].peak_accepted &&
                  curves[0].points.size() == curves[1].points.size();
    if (stable) {
      for (std::size_t i = 0; i < curves[0].points.size(); ++i) {
        if (!(curves[0].points[i].measurement ==
              curves[1].points[i].measurement)) {
          stable = false;
        }
      }
    }
    if (!stable) {
      std::fprintf(stderr, "saturation curve on %s is NOT deterministic\n",
                   net);
      all_stable = false;
    }
    curve_row.metric("saturation_load", curves.empty()
                                            ? -1.0
                                            : curves[0].saturation_load);
    curve_row.metric("peak_accepted",
                     curves.empty() ? 0.0 : curves[0].peak_accepted);
    curve_row.metric("saturation_stable", stable ? 1.0 : 0.0);
    report.add(std::move(curve_row));
  }

  const int rc = report.finish();
  return all_stable ? rc : 1;
}
