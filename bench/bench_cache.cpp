/// Cache-model micro-benchmark / ablation: steady-state miss rate versus
/// cache size, associativity and policy on stencil-like access patterns —
/// the mechanism behind Fig. 6's lower knee.

#include <cstdint>
#include <string>

#include "harness.h"
#include "mem/cache.h"

using namespace medea;
using namespace medea::mem;

namespace {

/// Sweep a row-major working set the way the Jacobi inner loop does
/// (N/S/W/E neighbours per point) and return the steady-state miss count.
bench::Measurement stencil_miss_rate(const bench::RunOptions& opt,
                                     std::uint32_t cache_kb,
                                     std::uint32_t ways) {
  const int n = 60;  // grid edge (doubles)
  CacheConfig cfg{cache_kb * 1024, kLineBytes, ways, WritePolicy::kWriteBack};
  double miss_rate = 0.0;
  auto m = bench::run_case(
      "stencil_miss/" + std::to_string(cache_kb) + "kB_" +
          std::to_string(ways) + "w",
      "l1_kb=" + std::to_string(cache_kb) + " ways=" + std::to_string(ways) +
          " policy=WB n=60",
      opt, [&] {
        Cache cache(cfg);
        auto access = [&](int r, int c) {
          const Addr a =
              static_cast<Addr>(r) * n * 8 + static_cast<Addr>(c) * 8;
          for (Addr w = a; w < a + 8; w += kWordBytes) {
            if (!cache.read_word(w).has_value()) cache.fill_line(w, {});
          }
        };
        // warm-up sweep + measured sweep
        for (int pass = 0; pass < 2; ++pass) {
          if (pass == 1) cache.stats().clear();
          for (int r = 1; r < n - 1; ++r) {
            for (int c = 1; c < n - 1; ++c) {
              access(r - 1, c);
              access(r + 1, c);
              access(r, c - 1);
              access(r, c + 1);
            }
          }
        }
        const double hits =
            static_cast<double>(cache.stats().get("cache.read_hits"));
        const double misses =
            static_cast<double>(cache.stats().get("cache.read_misses"));
        miss_rate = misses / (hits + misses);
        return std::uint64_t{0};  // no simulated clock in this micro-bench
      });
  m.metric("miss_rate", miss_rate);
  return m;
}

bench::Measurement write_policy_traffic(const bench::RunOptions& opt,
                                        WritePolicy policy) {
  // Memory-bound traffic per policy: count transactions a row-major
  // write sweep generates (write-backs vs write-throughs).
  CacheConfig cfg{8 * 1024, kLineBytes, 2, policy};
  double mem_writes = 0.0;
  auto m = bench::run_case(
      std::string("write_traffic/") + to_string(policy),
      std::string("l1_kb=8 ways=2 policy=") + to_string(policy), opt, [&] {
        Cache cache(cfg);
        std::uint64_t traffic = 0;
        for (int rep = 0; rep < 4; ++rep) {
          for (Addr a = 0; a < 32 * 1024; a += 8) {
            if (policy == WritePolicy::kWriteBack) {
              if (!cache.write_word(a, 1)) {
                if (cache.fill_line(a, {}).has_value()) ++traffic;  // victim WB
                cache.poke_word(a, 1, true);
              }
            } else {
              cache.write_word(a, 1);
              ++traffic;  // every store goes to memory
            }
          }
        }
        // Flush the dirty remainder (WB).
        traffic += cache.flush_all().size();
        mem_writes = static_cast<double>(traffic);
        return std::uint64_t{0};
      });
  m.metric("mem_write_txns", mem_writes);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("cache", argc, argv);
  for (std::uint32_t kb : {2u, 4u, 8u, 16u, 32u, 64u}) {
    for (std::uint32_t ways : {1u, 2u, 4u}) {
      report.add(stencil_miss_rate(report.options(), kb, ways));
    }
  }
  report.add(write_policy_traffic(report.options(), WritePolicy::kWriteBack));
  report.add(
      write_policy_traffic(report.options(), WritePolicy::kWriteThrough));
  return report.finish();
}
