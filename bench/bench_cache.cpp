/// Cache-model micro-benchmark / ablation: steady-state miss rate versus
/// cache size, associativity and policy on stencil-like access patterns —
/// the mechanism behind Fig. 6's lower knee.

#include <benchmark/benchmark.h>

#include "mem/cache.h"

using namespace medea::mem;

namespace {

/// Sweep a row-major working set the way the Jacobi inner loop does
/// (N/S/W/E neighbours per point) and return the steady-state miss count.
void BM_StencilMissRate(benchmark::State& state) {
  const auto cache_kb = static_cast<std::uint32_t>(state.range(0));
  const auto ways = static_cast<std::uint32_t>(state.range(1));
  const int n = 60;  // grid edge (doubles)
  CacheConfig cfg{cache_kb * 1024, kLineBytes, ways, WritePolicy::kWriteBack};

  double miss_rate = 0.0;
  for (auto _ : state) {
    Cache cache(cfg);
    auto access = [&](int r, int c) {
      const Addr a = static_cast<Addr>(r) * n * 8 + static_cast<Addr>(c) * 8;
      for (Addr w = a; w < a + 8; w += kWordBytes) {
        if (!cache.read_word(w).has_value()) cache.fill_line(w, {});
      }
    };
    // warm-up sweep + measured sweep
    for (int pass = 0; pass < 2; ++pass) {
      if (pass == 1) cache.stats().clear();
      for (int r = 1; r < n - 1; ++r) {
        for (int c = 1; c < n - 1; ++c) {
          access(r - 1, c);
          access(r + 1, c);
          access(r, c - 1);
          access(r, c + 1);
        }
      }
    }
    const double hits = static_cast<double>(cache.stats().get("cache.read_hits"));
    const double misses =
        static_cast<double>(cache.stats().get("cache.read_misses"));
    miss_rate = misses / (hits + misses);
    benchmark::DoNotOptimize(miss_rate);
  }
  state.counters["miss_rate"] = miss_rate;
  state.counters["kB"] = cache_kb;
  state.counters["ways"] = ways;
}

void BM_WritePolicyTraffic(benchmark::State& state) {
  // Memory-bound traffic per policy: count transactions a row-major
  // write sweep generates (write-backs vs write-throughs).
  const auto policy = static_cast<WritePolicy>(state.range(0));
  CacheConfig cfg{8 * 1024, kLineBytes, 2, policy};
  double mem_writes = 0.0;
  for (auto _ : state) {
    Cache cache(cfg);
    std::uint64_t traffic = 0;
    for (int rep = 0; rep < 4; ++rep) {
      for (Addr a = 0; a < 32 * 1024; a += 8) {
        if (policy == WritePolicy::kWriteBack) {
          if (!cache.write_word(a, 1)) {
            if (cache.fill_line(a, {}).has_value()) ++traffic;  // victim WB
            cache.poke_word(a, 1, true);
          }
        } else {
          cache.write_word(a, 1);
          ++traffic;  // every store goes to memory
        }
      }
    }
    // Flush the dirty remainder (WB).
    traffic += cache.flush_all().size();
    mem_writes = static_cast<double>(traffic);
    benchmark::DoNotOptimize(mem_writes);
  }
  state.counters["mem_write_txns"] = mem_writes;
}

}  // namespace

BENCHMARK(BM_StencilMissRate)
    ->ArgsProduct({{2, 4, 8, 16, 32, 64}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_WritePolicyTraffic)
    ->Arg(static_cast<int>(WritePolicy::kWriteBack))
    ->Arg(static_cast<int>(WritePolicy::kWriteThrough))
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
