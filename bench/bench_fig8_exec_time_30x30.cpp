/// Fig. 8 harness: execution time for the 30x30 array, write-back only,
/// cache 2..32 kB, cores 2..15.
///
/// Expected shape (paper): scalability is hampered unless caches are
/// properly sized; the 30x30 case needs at least 4 kB — 4x less than the
/// 60x60 case because the array is 4x smaller.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dse/sweep.h"
#include "harness.h"
#include "sweep_case.h"

using namespace medea;

int main(int argc, char** argv) {
  std::printf("# Fig. 8 — Jacobi execution time per iteration, 30x30 array, "
              "write-back only\n");

  dse::SweepSpec spec;
  spec.n = 30;
  spec.cache_kb = {2, 4, 8, 16, 32};
  spec.policies = {mem::WritePolicy::kWriteBack};

  bench::Report report("fig8_exec_time_30x30", argc, argv,
                       bench::RunOptions{.warmup = 0, .repetitions = 1});

  std::vector<dse::SweepPoint> points;
  auto m = bench::sweep_case(
      "sweep/30x30", "n=30 cores=2..15 l1_kb=2..32 policy=WB variant=hybrid_mp",
      report.options(), spec, points);

  auto find = [&](int cores, std::uint32_t kb) {
    for (const auto& p : points) {
      if (p.cores == cores && p.cache_kb == kb) return p.cycles_per_iteration;
    }
    return -1.0;
  };

  std::printf("%-6s", "cores");
  for (auto kb : spec.cache_kb) {
    std::printf("%10s", (std::to_string(kb) + "k$WB").c_str());
  }
  std::printf("\n");
  for (int cores = 2; cores <= 15; ++cores) {
    std::printf("%-6d", cores);
    for (auto kb : spec.cache_kb) std::printf("%10.0f", find(cores, kb));
    std::printf("\n");
  }

  // The paper's cross-size observation: "In the 30x30 case cache must be
  // at least 4kB large, a value 4x less than the larger 60x60 case
  // because the array is 4x smaller".  Checked at 6 cores, where both
  // sizes have a clear knee.
  std::printf("\n# knee check (6 cores): smallest WB cache within 25%% of "
              "the best time\n");
  for (int n : {30, 60}) {
    dse::SweepSpec s2;
    s2.n = n;
    s2.cores = {6};
    s2.cache_kb = {2, 4, 8, 16, 32, 64};
    s2.policies = {mem::WritePolicy::kWriteBack};
    const auto pts = dse::run_sweep(s2);
    double best = 1e300;
    for (const auto& p : pts) best = std::min(best, p.cycles_per_iteration);
    for (const auto& p : pts) {
      if (p.cycles_per_iteration <= best * 1.25) {
        std::printf("  %dx%d: %uk$ (best=%.0f cycles)\n", n, n, p.cache_kb,
                    best);
        m.metric("knee_cache_kb_" + std::to_string(n) + "x" +
                     std::to_string(n),
                 p.cache_kb);
        break;
      }
    }
  }
  report.add(std::move(m));
  return report.finish();
}
