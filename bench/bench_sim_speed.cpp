/// Simulator-throughput benchmark (§III ¶1 analogue).
///
/// The paper reports a 15x speedup of the cycle-accurate SystemC model
/// over HDL-ISS co-simulation, enabling 168 design points in ~1 day on 5
/// dual-Xeon servers.  The HDL-ISS baseline is not reproducible here, so
/// we report the absolute throughput of this simulator — simulated
/// cycles/second and design points/hour — which is the quantity that
/// makes the DSE methodology practical.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"
#include "harness.h"
#include "noc/network.h"
#include "noc/traffic.h"
#include "sim/domain.h"
#include "sim/frame_pool.h"

using namespace medea;

namespace {

bench::Measurement design_point(const bench::RunOptions& opt, int cores,
                                std::uint32_t kb) {
  double wall_per_point_ns = 0.0;
  // Kernel pressure counters from the last timed invocation (the run is
  // deterministic, so every invocation produces the same values).
  std::uint64_t bucket_pushes = 0;
  std::uint64_t overflow_pushes = 0;
  std::uint64_t wakes_deduped = 0;
  std::uint64_t commit_pushes = 0;
  std::uint64_t commits_deduped = 0;
  std::uint64_t frame_hits = 0;
  std::uint64_t frame_misses = 0;
  auto m = bench::run_case(
      "jacobi_60x60/" + std::to_string(cores) + "c_" + std::to_string(kb) +
          "kB",
      "cores=" + std::to_string(cores) + " l1_kb=" + std::to_string(kb) +
          " policy=WB variant=hybrid_mp n=60",
      opt, [&] {
        const sim::FramePool::Stats fp0 = sim::FramePool::tls().stats();
        core::MedeaSystem sys(
            dse::make_design_config(cores, kb, mem::WritePolicy::kWriteBack));
        apps::JacobiParams p;
        p.n = 60;
        p.variant = apps::JacobiVariant::kHybridMp;
        const auto res = apps::run_jacobi(sys, p);
        const sim::Scheduler& sched = sys.scheduler();
        bucket_pushes = sched.bucket_pushes();
        overflow_pushes = sched.overflow_pushes();
        wakes_deduped = sched.wakes_deduped();
        commit_pushes = sched.commit_pushes();
        commits_deduped = sched.commits_deduped();
        const sim::FramePool::Stats fp1 = sim::FramePool::tls().stats();
        frame_hits = fp1.hits - fp0.hits;
        frame_misses = fp1.misses - fp0.misses;
        return res.total_cycles;
      });
  wall_per_point_ns = m.wall_ns;
  // Design points per hour at this configuration's cost (the paper needed
  // 5 servers and a day for 168 points).
  if (wall_per_point_ns > 0.0) {
    m.metric("points_per_hour", 3600.0 / (wall_per_point_ns * 1e-9));
  }
  // Two-tier event-queue split and coroutine frame-pool effectiveness:
  // bucket pushes are the O(1) calendar fast path, overflow pushes hit
  // the binary heap; frame-pool hits recycle a warm frame, misses are
  // real heap allocations (a handful once the pool is warm).
  m.metric("sched_bucket_pushes", static_cast<double>(bucket_pushes));
  m.metric("sched_overflow_pushes", static_cast<double>(overflow_pushes));
  m.metric("sched_wakes_deduped", static_cast<double>(wakes_deduped));
  // Commit-list pressure: registrations that reached the list vs
  // duplicates absorbed by the Fifo epoch-stamp dedup.
  m.metric("sched_commit_pushes", static_cast<double>(commit_pushes));
  m.metric("sched_commit_dedups", static_cast<double>(commits_deduped));
  m.metric("frame_pool_hits", static_cast<double>(frame_hits));
  m.metric("frame_pool_misses", static_cast<double>(frame_misses));
  const double frame_total = static_cast<double>(frame_hits + frame_misses);
  m.metric("frame_pool_hit_rate",
           frame_total > 0.0 ? static_cast<double>(frame_hits) / frame_total
                             : 0.0);
  return m;
}

/// Shard-count axis: uniform-random deflection traffic on a WxH torus
/// under the sharded parallel kernel.  `shards` follows
/// SchedulerConfig::num_shards semantics (0 = one per hardware thread);
/// 1 runs the single-thread calendar baseline the speedup is measured
/// against.  Exports the parallel-efficiency metrics alongside
/// sim_speed: barrier wait (load imbalance), mailbox traffic
/// (cross-shard flit volume), and the adaptive ring sizing counters.
bench::Measurement sharded_traffic(const bench::RunOptions& opt, int width,
                                   int height, int shards, int flits) {
  sim::SchedulerConfig scfg;
  if (shards != 1) {
    scfg.queue = sim::SchedulerConfig::EventQueue::kShardedCalendar;
    scfg.num_shards = shards;
  }
  const int resolved = sim::SimDomain::resolve_shards(scfg, height);
  std::uint64_t barrier_ns = 0, mailbox = 0, channels = 0;
  std::uint64_t bucket = 0, overflow = 0;
  std::uint32_t ring_bits = 0, suggested = 0;
  auto m = bench::run_case(
      "uniform_" + std::to_string(width) + "x" + std::to_string(height) +
          "/shards" + std::to_string(resolved),
      "pattern=uniform rate=0.30 flits_per_node=" + std::to_string(flits) +
          " network=deflection shards=" + std::to_string(resolved),
      opt, [&] {
        sim::SimDomain dom(scfg, height);
        const noc::TorusGeometry geom(width, height);
        noc::Network net(dom, geom, {}, 1);
        noc::TrafficConfig tc;
        tc.pattern = noc::TrafficPattern::kUniformRandom;
        tc.injection_rate = 0.30;
        tc.flits_per_node = flits;
        tc.seed = 1;
        (void)noc::run_traffic(dom, net, tc);
        barrier_ns = dom.barrier_wait_ns();
        mailbox = net.mailbox_flits();
        channels = net.num_shard_channels();
        bucket = dom.bucket_pushes();
        overflow = dom.overflow_pushes();
        ring_bits = dom.shard(0).ring_bits_chosen();
        suggested = dom.shard(0).suggested_ring_bits(0.99);
        return dom.now();
      });
  m.metric("shards", static_cast<double>(resolved));
  m.metric("barrier_wait_ns", static_cast<double>(barrier_ns));
  m.metric("mailbox_flits", static_cast<double>(mailbox));
  m.metric("shard_channels", static_cast<double>(channels));
  m.metric("sched_bucket_pushes", static_cast<double>(bucket));
  m.metric("sched_overflow_pushes", static_cast<double>(overflow));
  m.metric("ring_bits_chosen", static_cast<double>(ring_bits));
  m.metric("ring_bits_suggested", static_cast<double>(suggested));
  return m;
}

/// The shard counts one axis sweeps: 1/2/4/max by default, or the
/// single count the --shards=N filter selected.  Deduplicated after
/// clamping to the fabric height (a 4-row torus caps at 4 shards).
std::vector<int> shard_axis(int only_shards, int height) {
  std::vector<int> raw =
      only_shards >= 0 ? std::vector<int>{only_shards}
                       : std::vector<int>{1, 2, 4, 0 /* max */};
  std::vector<int> counts;
  for (int s : raw) {
    sim::SchedulerConfig scfg;
    scfg.queue = sim::SchedulerConfig::EventQueue::kShardedCalendar;
    scfg.num_shards = s;
    const int resolved =
        s == 1 ? 1 : sim::SimDomain::resolve_shards(scfg, height);
    bool dup = false;
    for (int c : counts) dup = dup || c == resolved;
    if (!dup) counts.push_back(s == 1 ? 1 : s);
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  // --shards=N restricts the run to the sharded-traffic axis at exactly
  // N shards (CI smoke mode); the full run covers the app design points
  // plus the 1/2/4/max shard axis on both fabric scales.
  int only_shards = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--shards=", 0) == 0) only_shards = std::atoi(a.c_str() + 9);
  }
  bench::Report report("sim_speed", argc, argv);
  if (only_shards < 0) {
    report.add(design_point(report.options(), 2, 2));    // worst: miss-bound
    report.add(design_point(report.options(), 8, 16));   // mid
    report.add(design_point(report.options(), 15, 64));  // best: compute-bound
  }
  // The 15-core fabric (4x4 torus) and the paper's 60x60 scale: the
  // small fabric shows the overhead floor, the big one the speedup.
  for (int s : shard_axis(only_shards, 4)) {
    report.add(sharded_traffic(report.options(), 4, 4, s, 2000));
  }
  for (int s : shard_axis(only_shards, 60)) {
    report.add(sharded_traffic(report.options(), 60, 60, s, 200));
  }
  return report.finish();
}
