/// Simulator-throughput benchmark (§III ¶1 analogue).
///
/// The paper reports a 15x speedup of the cycle-accurate SystemC model
/// over HDL-ISS co-simulation, enabling 168 design points in ~1 day on 5
/// dual-Xeon servers.  The HDL-ISS baseline is not reproducible here, so
/// we report the absolute throughput of this simulator — simulated
/// cycles/second and design points/hour — which is the quantity that
/// makes the DSE methodology practical.

#include <cstdint>
#include <string>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"
#include "harness.h"
#include "sim/frame_pool.h"

using namespace medea;

namespace {

bench::Measurement design_point(const bench::RunOptions& opt, int cores,
                                std::uint32_t kb) {
  double wall_per_point_ns = 0.0;
  // Kernel pressure counters from the last timed invocation (the run is
  // deterministic, so every invocation produces the same values).
  std::uint64_t bucket_pushes = 0;
  std::uint64_t overflow_pushes = 0;
  std::uint64_t wakes_deduped = 0;
  std::uint64_t commit_pushes = 0;
  std::uint64_t commits_deduped = 0;
  std::uint64_t frame_hits = 0;
  std::uint64_t frame_misses = 0;
  auto m = bench::run_case(
      "jacobi_60x60/" + std::to_string(cores) + "c_" + std::to_string(kb) +
          "kB",
      "cores=" + std::to_string(cores) + " l1_kb=" + std::to_string(kb) +
          " policy=WB variant=hybrid_mp n=60",
      opt, [&] {
        const sim::FramePool::Stats fp0 = sim::FramePool::tls().stats();
        core::MedeaSystem sys(
            dse::make_design_config(cores, kb, mem::WritePolicy::kWriteBack));
        apps::JacobiParams p;
        p.n = 60;
        p.variant = apps::JacobiVariant::kHybridMp;
        const auto res = apps::run_jacobi(sys, p);
        const sim::Scheduler& sched = sys.scheduler();
        bucket_pushes = sched.bucket_pushes();
        overflow_pushes = sched.overflow_pushes();
        wakes_deduped = sched.wakes_deduped();
        commit_pushes = sched.commit_pushes();
        commits_deduped = sched.commits_deduped();
        const sim::FramePool::Stats fp1 = sim::FramePool::tls().stats();
        frame_hits = fp1.hits - fp0.hits;
        frame_misses = fp1.misses - fp0.misses;
        return res.total_cycles;
      });
  wall_per_point_ns = m.wall_ns;
  // Design points per hour at this configuration's cost (the paper needed
  // 5 servers and a day for 168 points).
  if (wall_per_point_ns > 0.0) {
    m.metric("points_per_hour", 3600.0 / (wall_per_point_ns * 1e-9));
  }
  // Two-tier event-queue split and coroutine frame-pool effectiveness:
  // bucket pushes are the O(1) calendar fast path, overflow pushes hit
  // the binary heap; frame-pool hits recycle a warm frame, misses are
  // real heap allocations (a handful once the pool is warm).
  m.metric("sched_bucket_pushes", static_cast<double>(bucket_pushes));
  m.metric("sched_overflow_pushes", static_cast<double>(overflow_pushes));
  m.metric("sched_wakes_deduped", static_cast<double>(wakes_deduped));
  // Commit-list pressure: registrations that reached the list vs
  // duplicates absorbed by the Fifo epoch-stamp dedup.
  m.metric("sched_commit_pushes", static_cast<double>(commit_pushes));
  m.metric("sched_commit_dedups", static_cast<double>(commits_deduped));
  m.metric("frame_pool_hits", static_cast<double>(frame_hits));
  m.metric("frame_pool_misses", static_cast<double>(frame_misses));
  const double frame_total = static_cast<double>(frame_hits + frame_misses);
  m.metric("frame_pool_hit_rate",
           frame_total > 0.0 ? static_cast<double>(frame_hits) / frame_total
                             : 0.0);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("sim_speed", argc, argv);
  report.add(design_point(report.options(), 2, 2));    // worst: miss-dominated
  report.add(design_point(report.options(), 8, 16));   // mid
  report.add(design_point(report.options(), 15, 64));  // best: compute-bound
  return report.finish();
}
