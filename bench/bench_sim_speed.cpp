/// Simulator-throughput benchmark (§III ¶1 analogue).
///
/// The paper reports a 15x speedup of the cycle-accurate SystemC model
/// over HDL-ISS co-simulation, enabling 168 design points in ~1 day on 5
/// dual-Xeon servers.  The HDL-ISS baseline is not reproducible here, so
/// we report the absolute throughput of this simulator — simulated
/// cycles/second and design points/hour — which is the quantity that
/// makes the DSE methodology practical.

#include <benchmark/benchmark.h>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"

using namespace medea;

namespace {

void BM_JacobiDesignPoint(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const auto kb = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t sim_cycles = 0;
  for (auto _ : state) {
    core::MedeaSystem sys(
        dse::make_design_config(cores, kb, mem::WritePolicy::kWriteBack));
    apps::JacobiParams p;
    p.n = 60;
    p.variant = apps::JacobiVariant::kHybridMp;
    const auto res = apps::run_jacobi(sys, p);
    sim_cycles += res.total_cycles;
    benchmark::DoNotOptimize(res.checksum);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
  // Design points per hour at this configuration's cost (the paper needed
  // 5 servers and a day for 168 points).
  state.counters["points_per_hour"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 3600.0,
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_JacobiDesignPoint)
    ->Args({2, 2})    // worst case: miss-dominated, long run
    ->Args({8, 16})   // mid
    ->Args({15, 64})  // best case: compute-bound, short run
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
