/// Simulator-throughput benchmark (§III ¶1 analogue).
///
/// The paper reports a 15x speedup of the cycle-accurate SystemC model
/// over HDL-ISS co-simulation, enabling 168 design points in ~1 day on 5
/// dual-Xeon servers.  The HDL-ISS baseline is not reproducible here, so
/// we report the absolute throughput of this simulator — simulated
/// cycles/second and design points/hour — which is the quantity that
/// makes the DSE methodology practical.

#include <cstdint>
#include <string>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"
#include "harness.h"

using namespace medea;

namespace {

bench::Measurement design_point(const bench::RunOptions& opt, int cores,
                                std::uint32_t kb) {
  double wall_per_point_ns = 0.0;
  auto m = bench::run_case(
      "jacobi_60x60/" + std::to_string(cores) + "c_" + std::to_string(kb) +
          "kB",
      "cores=" + std::to_string(cores) + " l1_kb=" + std::to_string(kb) +
          " policy=WB variant=hybrid_mp n=60",
      opt, [&] {
        core::MedeaSystem sys(
            dse::make_design_config(cores, kb, mem::WritePolicy::kWriteBack));
        apps::JacobiParams p;
        p.n = 60;
        p.variant = apps::JacobiVariant::kHybridMp;
        const auto res = apps::run_jacobi(sys, p);
        return res.total_cycles;
      });
  wall_per_point_ns = m.wall_ns;
  // Design points per hour at this configuration's cost (the paper needed
  // 5 servers and a day for 168 points).
  if (wall_per_point_ns > 0.0) {
    m.metric("points_per_hour", 3600.0 / (wall_per_point_ns * 1e-9));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("sim_speed", argc, argv);
  report.add(design_point(report.options(), 2, 2));    // worst: miss-dominated
  report.add(design_point(report.options(), 8, 16));   // mid
  report.add(design_point(report.options(), 15, 64));  // best: compute-bound
  return report.finish();
}
