/// MPMMU ablation (§II-C and the paper's "MPMMU optimization" future
/// work): effect of the local cache and of DDR latency on shared-memory
/// service time, and the serialization behaviour under multi-core load.

#include <benchmark/benchmark.h>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"

using namespace medea;

namespace {

/// Pure-shared-memory Jacobi — every byte moves through the MPMMU — with
/// the MPMMU cache on or off.
void BM_MpmmuCacheEffect(benchmark::State& state) {
  const bool use_cache = state.range(0) != 0;
  const int cores = static_cast<int>(state.range(1));
  double cycles = 0.0;
  for (auto _ : state) {
    core::MedeaConfig cfg =
        dse::make_design_config(cores, 16, mem::WritePolicy::kWriteBack);
    cfg.mpmmu.use_cache = use_cache;
    core::MedeaSystem sys(cfg);
    apps::JacobiParams p;
    p.n = 30;
    p.variant = apps::JacobiVariant::kPureSharedMemory;
    cycles = apps::run_jacobi(sys, p).cycles_per_iteration;
  }
  state.SetLabel(use_cache ? "mpmmu-cache" : "ddr-only");
  state.counters["cycles_per_iter"] = cycles;
}

/// DDR latency sensitivity: the slave's memory round trip directly bounds
/// the miss-dominated region of Fig. 6.
void BM_DdrLatency(benchmark::State& state) {
  const auto lat = static_cast<std::uint32_t>(state.range(0));
  double cycles = 0.0;
  for (auto _ : state) {
    core::MedeaConfig cfg =
        dse::make_design_config(8, 2, mem::WritePolicy::kWriteBack);
    cfg.mpmmu.ddr.access_latency = lat;
    core::MedeaSystem sys(cfg);
    apps::JacobiParams p;
    p.n = 30;
    p.variant = apps::JacobiVariant::kHybridMp;  // 2 kB: heavy miss traffic
    cycles = apps::run_jacobi(sys, p).cycles_per_iteration;
  }
  state.counters["ddr_latency"] = lat;
  state.counters["cycles_per_iter"] = cycles;
}

/// §IV "MPMMU optimization": pipelined reply streaming, on the workload
/// it helps most (pure shared memory, read-heavy).
void BM_PipelinedReplies(benchmark::State& state) {
  const bool pipelined = state.range(0) != 0;
  double cycles = 0.0;
  for (auto _ : state) {
    core::MedeaConfig cfg =
        dse::make_design_config(10, 16, mem::WritePolicy::kWriteBack);
    cfg.mpmmu.pipelined_replies = pipelined;
    core::MedeaSystem sys(cfg);
    apps::JacobiParams p;
    p.n = 30;
    p.variant = apps::JacobiVariant::kPureSharedMemory;
    cycles = apps::run_jacobi(sys, p).cycles_per_iteration;
  }
  state.SetLabel(pipelined ? "pipelined" : "serial");
  state.counters["cycles_per_iter"] = cycles;
}

}  // namespace

BENCHMARK(BM_MpmmuCacheEffect)
    ->ArgsProduct({{0, 1}, {4, 10}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DdrLatency)->Arg(8)->Arg(24)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelinedReplies)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
