/// MPMMU ablation (§II-C and the paper's "MPMMU optimization" future
/// work): effect of the local cache and of DDR latency on shared-memory
/// service time, and the serialization behaviour under multi-core load.

#include <cstdint>
#include <string>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/sweep.h"
#include "harness.h"

using namespace medea;

namespace {

/// Pure-shared-memory Jacobi — every byte moves through the MPMMU — with
/// the MPMMU cache on or off.
bench::Measurement mpmmu_cache_effect(const bench::RunOptions& opt,
                                      bool use_cache, int cores) {
  const char* label = use_cache ? "mpmmu-cache" : "ddr-only";
  double cycles_per_iter = 0.0;
  auto m = bench::run_case(
      std::string("cache_effect/") + label + "/" + std::to_string(cores) + "c",
      std::string("mpmmu_cache=") + (use_cache ? "on" : "off") +
          " cores=" + std::to_string(cores) +
          " l1_kb=16 policy=WB variant=pure_sm n=30",
      opt, [&] {
        core::MedeaConfig cfg =
            dse::make_design_config(cores, 16, mem::WritePolicy::kWriteBack);
        cfg.mpmmu.use_cache = use_cache;
        core::MedeaSystem sys(cfg);
        apps::JacobiParams p;
        p.n = 30;
        p.variant = apps::JacobiVariant::kPureSharedMemory;
        const auto res = apps::run_jacobi(sys, p);
        cycles_per_iter = res.cycles_per_iteration;
        return res.total_cycles;
      });
  m.metric("cycles_per_iter", cycles_per_iter);
  return m;
}

/// DDR latency sensitivity: the slave's memory round trip directly bounds
/// the miss-dominated region of Fig. 6.
bench::Measurement ddr_latency(const bench::RunOptions& opt,
                               std::uint32_t lat) {
  double cycles_per_iter = 0.0;
  auto m = bench::run_case(
      "ddr_latency/" + std::to_string(lat),
      "ddr_latency=" + std::to_string(lat) +
          " cores=8 l1_kb=2 policy=WB variant=hybrid_mp n=30",
      opt, [&] {
        core::MedeaConfig cfg =
            dse::make_design_config(8, 2, mem::WritePolicy::kWriteBack);
        cfg.mpmmu.ddr.access_latency = lat;
        core::MedeaSystem sys(cfg);
        apps::JacobiParams p;
        p.n = 30;
        p.variant = apps::JacobiVariant::kHybridMp;  // 2 kB: heavy misses
        const auto res = apps::run_jacobi(sys, p);
        cycles_per_iter = res.cycles_per_iteration;
        return res.total_cycles;
      });
  m.metric("cycles_per_iter", cycles_per_iter);
  return m;
}

/// §IV "MPMMU optimization": pipelined reply streaming, on the workload
/// it helps most (pure shared memory, read-heavy).
bench::Measurement pipelined_replies(const bench::RunOptions& opt,
                                     bool pipelined) {
  const char* label = pipelined ? "pipelined" : "serial";
  double cycles_per_iter = 0.0;
  auto m = bench::run_case(
      std::string("replies/") + label,
      std::string("pipelined_replies=") + (pipelined ? "on" : "off") +
          " cores=10 l1_kb=16 policy=WB variant=pure_sm n=30",
      opt, [&] {
        core::MedeaConfig cfg =
            dse::make_design_config(10, 16, mem::WritePolicy::kWriteBack);
        cfg.mpmmu.pipelined_replies = pipelined;
        core::MedeaSystem sys(cfg);
        apps::JacobiParams p;
        p.n = 30;
        p.variant = apps::JacobiVariant::kPureSharedMemory;
        const auto res = apps::run_jacobi(sys, p);
        cycles_per_iter = res.cycles_per_iteration;
        return res.total_cycles;
      });
  m.metric("cycles_per_iter", cycles_per_iter);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("mpmmu", argc, argv);
  for (bool use_cache : {false, true}) {
    for (int cores : {4, 10}) {
      report.add(mpmmu_cache_effect(report.options(), use_cache, cores));
    }
  }
  for (std::uint32_t lat : {8u, 24u, 64u, 128u}) {
    report.add(ddr_latency(report.options(), lat));
  }
  report.add(pipelined_replies(report.options(), false));
  report.add(pipelined_replies(report.options(), true));
  return report.finish();
}
