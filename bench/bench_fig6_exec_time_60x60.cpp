/// Fig. 6 harness: execution time (clock cycles) of one Jacobi iteration
/// after cache warm-up, 60x60 doubles, versus number of cores (2..15),
/// L1 cache size (2..64 kB) and write policy (WB / WT).
///
/// Prints the paper's series as a table (one row per core count, one
/// column per cache/policy curve).  Pass a grid size as argv[1] to
/// regenerate the same sweep for the 16x16 or 30x30 cases discussed in
/// §III ("./bench_fig6_exec_time_60x60 16").
///
/// Expected shape (paper): Write-Through is poor at every size due to
/// store traffic; Write-Back is miss-dominated (flat, no speedup) until
/// the per-core block fits in L1, then drops sharply and scales ~1/P.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dse/report.h"
#include "dse/sweep.h"
#include "harness.h"
#include "sweep_case.h"

using namespace medea;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 60;
  if (n < 4) n = 60;  // ignore non-numeric argv (e.g. harness flags)
  std::printf("# Fig. 6 — Jacobi execution time per iteration, %dx%d array\n",
              n, n);
  std::printf("# (cycles; hybrid MP variant; 4x4 folded torus, 1 MPMMU)\n");

  const std::vector<std::uint32_t> cache_kb{2, 4, 8, 16, 32, 64};

  dse::SweepSpec spec;
  spec.n = n;
  spec.cache_kb = cache_kb;
  spec.warmup_iterations = 1;
  spec.timed_iterations = 1;

  // The sweep is deterministic in simulated cycles: one timed repetition.
  bench::Report report("fig6_exec_time_" + std::to_string(n) + "x" +
                           std::to_string(n),
                       argc, argv,
                       bench::RunOptions{.warmup = 0, .repetitions = 1});

  std::vector<dse::SweepPoint> points;
  auto m = bench::sweep_case(
      "sweep/" + std::to_string(n) + "x" + std::to_string(n),
      "n=" + std::to_string(n) + " cores=2..15 l1_kb=2..64 policy=WB+WT "
                                 "variant=hybrid_mp",
      report.options(), spec, points);

  // Index results: [policy][cache][cores]
  auto find = [&](int cores, std::uint32_t kb, mem::WritePolicy pol) {
    for (const auto& p : points) {
      if (p.cores == cores && p.cache_kb == kb && p.policy == pol) {
        return p.cycles_per_iteration;
      }
    }
    return -1.0;
  };

  std::printf("%-6s", "cores");
  for (auto kb : cache_kb) {
    std::printf("%10s", (std::to_string(kb) + "k$WB").c_str());
  }
  for (auto kb : cache_kb) {
    std::printf("%10s", (std::to_string(kb) + "k$WT").c_str());
  }
  std::printf("\n");
  for (int cores = 2; cores <= 15; ++cores) {
    std::printf("%-6d", cores);
    for (auto kb : cache_kb) {
      std::printf("%10.0f", find(cores, kb, mem::WritePolicy::kWriteBack));
    }
    for (auto kb : cache_kb) {
      std::printf("%10.0f", find(cores, kb, mem::WritePolicy::kWriteThrough));
    }
    std::printf("\n");
  }

  // Track the paper's reference points in the perf trajectory.
  m.metric("cycles_8c_16kB_WB", find(8, 16, mem::WritePolicy::kWriteBack));
  m.metric("cycles_15c_64kB_WB", find(15, 64, mem::WritePolicy::kWriteBack));
  report.add(std::move(m));

  // With MEDEA_REPORT_DIR set, also emit gnuplot artifacts reproducing
  // the figure ("gnuplot fig6.gp") plus a CSV of the raw sweep.
  // Single-threaded bench startup; no concurrent env access.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* dir = std::getenv("MEDEA_REPORT_DIR")) {
    const std::string base = std::string(dir) + "/fig6_" + std::to_string(n);
    const auto curves = dse::exec_time_curves(points);
    dse::write_file(base + ".dat", dse::exec_time_dat(curves));
    dse::write_file(base + ".gp",
                    dse::exec_time_gp(curves, base + ".dat",
                                      "Execution time, " + std::to_string(n) +
                                          "x" + std::to_string(n) + " array"));
    dse::write_file(base + ".csv", dse::to_csv(points));
    std::printf("# artifacts written to %s.{dat,gp,csv}\n", base.c_str());
  }
  return report.finish();
}
