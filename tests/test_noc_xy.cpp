/// Tests for the buffered XY baseline router, the traffic-pattern library
/// and the deflection-vs-buffered comparison invariants.

#include <gtest/gtest.h>

#include <set>

#include "noc/network.h"
#include "noc/traffic.h"
#include "noc/xy_network.h"

namespace medea::noc {
namespace {

// ---------------------------------------------------------------------
// XY routing function basics (via single-flit delivery)
// ---------------------------------------------------------------------

struct XyFixture {
  explicit XyFixture(int w = 4, int h = 4, bool wrap = false,
                     XyRouterConfig cfg = {})
      : net(sched, TorusGeometry(w, h), cfg, wrap) {}
  sim::Scheduler sched;
  XyNetwork net;
};

/// Push one flit directly and run until it lands.
Flit send_one(XyFixture& fx, int src, int dst) {
  struct Driver : sim::Component {
    Driver(sim::Scheduler& s, XyNetwork& n, int src_node, int dst_node)
        : sim::Component(s, "drv"), net(n), src(src_node), dst(dst_node) {
      net.eject(dst_node).set_consumer(this);
      s.wake_at(*this, 1);
    }
    void tick(sim::Cycle now) override {
      if (!sent) {
        Flit f;
        f.valid = true;
        f.dst = net.geometry().coord_of(dst);
        f.type = FlitType::kMessage;
        f.subtype = kMpData;
        f.uid = net.next_flit_uid();
        f.inject_cycle = now;
        net.inject(src).push(f);
        sent = true;
      }
      auto& ej = net.eject(dst);
      if (!ej.empty()) got.push_back(ej.pop());
    }
    XyNetwork& net;
    int src, dst;
    bool sent = false;
    std::vector<Flit> got;
  } drv(fx.sched, fx.net, src, dst);
  EXPECT_TRUE(fx.sched.run(100000));
  EXPECT_EQ(drv.got.size(), 1u);
  return drv.got.empty() ? Flit{} : drv.got[0];
}

TEST(XyRouter, DeliversSingleFlit) {
  XyFixture fx;
  const Flit f = send_one(fx, 0, 15);
  EXPECT_EQ(fx.net.stats().get("xynoc.flits_delivered"), 1u);
  // Mesh XY path (0,0)->(3,3): 3 east + 3 south = 6 hops.
  EXPECT_EQ(f.hops, 6);
}

TEST(XyRouter, MeshNeverUsesWrapLinks) {
  XyFixture fx(4, 4, /*wrap=*/false);
  // (3,0) -> (0,0): mesh must go 3 hops west, not 1 hop east-wrap.
  const Flit f = send_one(fx, 3, 0);
  EXPECT_EQ(f.hops, 3);
}

TEST(XyRouter, TorusWrapTakesShortcut) {
  XyFixture fx(4, 4, /*wrap=*/true);
  const Flit f = send_one(fx, 3, 0);
  EXPECT_EQ(f.hops, 1);
}

TEST(XyRouter, InOrderDeliveryProperty) {
  // Dimension-ordered routing has a single path per pair: flits arrive in
  // injection order (the property deflection routing gives up).
  XyFixture fx;
  struct Driver : sim::Component {
    Driver(sim::Scheduler& s, XyNetwork& n) : sim::Component(s, "drv"), net(n) {
      net.eject(10).set_consumer(this);
      s.wake_at(*this, 1);
    }
    void tick(sim::Cycle) override {
      auto& inj = net.inject(0);
      while (to_send < 32 && inj.can_push()) {
        Flit f;
        f.valid = true;
        f.dst = net.geometry().coord_of(10);
        f.type = FlitType::kMessage;
        f.subtype = kMpData;
        f.data = static_cast<std::uint32_t>(to_send++);
        f.uid = net.next_flit_uid();
        inj.push(f);
      }
      auto& ej = net.eject(10);
      while (!ej.empty()) got.push_back(ej.pop().data);
      if (to_send < 32) wake();
    }
    XyNetwork& net;
    int to_send = 0;
    std::vector<std::uint32_t> got;
  } drv(fx.sched, fx.net);
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(drv.got.size(), 32u);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(drv.got[i], i);
}

TEST(XyRouter, BuffersBoundedByConfig) {
  XyRouterConfig cfg;
  cfg.input_buffer_depth = 2;
  XyFixture fx(4, 4, false, cfg);
  TrafficConfig tc;
  tc.pattern = TrafficPattern::kHotspot;
  tc.injection_rate = 0.9;
  tc.flits_per_node = 100;
  tc.hotspot_node = 5;
  const int total = run_traffic(fx.sched, fx.net, tc);
  EXPECT_GT(total, 0);
  // Peak occupancy per router <= 5 buffers x depth.
  EXPECT_LE(fx.net.stats().get("xynoc.peak_buffered"),
            5u * static_cast<unsigned>(cfg.input_buffer_depth));
  EXPECT_EQ(fx.net.total_buffered(), 0u) << "network must drain";
}

// ---------------------------------------------------------------------
// Traffic patterns
// ---------------------------------------------------------------------

TEST(Traffic, DestinationsMatchPattern) {
  TorusGeometry g(4, 4);
  sim::Xoshiro256 rng(7);
  // Transpose: (x,y) -> (y,x).
  EXPECT_EQ(pick_destination(TrafficPattern::kTranspose, g, g.node_id({1, 2}),
                             0, rng),
            g.node_id({2, 1}));
  // Hotspot: always the configured node.
  EXPECT_EQ(pick_destination(TrafficPattern::kHotspot, g, 3, 9, rng), 9);
  // Neighbor: next node id.
  EXPECT_EQ(pick_destination(TrafficPattern::kNeighbor, g, 15, 0, rng), 0);
  // Uniform: never self.
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(pick_destination(TrafficPattern::kUniformRandom, g, 6, 0, rng),
              6);
  }
}

TEST(Traffic, AllPatternsDrainOnBothFabrics) {
  for (auto p : {TrafficPattern::kUniformRandom, TrafficPattern::kHotspot,
                 TrafficPattern::kTranspose, TrafficPattern::kNeighbor}) {
    TrafficConfig tc;
    tc.pattern = p;
    tc.injection_rate = 0.3;
    tc.flits_per_node = 100;
    tc.hotspot_node = 3;
    {
      sim::Scheduler sched;
      Network net(sched, TorusGeometry(4, 4));
      const int got = run_traffic(sched, net, tc);
      EXPECT_EQ(static_cast<std::uint64_t>(got),
                net.stats().get("noc.flits_delivered"))
          << to_string(p);
      EXPECT_GT(got, 0);
    }
    {
      sim::Scheduler sched;
      XyNetwork net(sched, TorusGeometry(4, 4));
      const int got = run_traffic(sched, net, tc);
      EXPECT_GT(got, 0) << to_string(p);
      EXPECT_EQ(net.total_buffered(), 0u);
    }
  }
}

TEST(Traffic, DeterministicForSeed) {
  auto run_once = [] {
    sim::Scheduler sched;
    Network net(sched, TorusGeometry(4, 4));
    TrafficConfig tc;
    tc.injection_rate = 0.4;
    tc.flits_per_node = 200;
    tc.seed = 42;
    run_traffic(sched, net, tc);
    return sched.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------
// Deflection vs buffered comparison invariants
// ---------------------------------------------------------------------

TEST(RouterComparison, BothDeliverIdenticalFlitCounts) {
  TrafficConfig tc;
  tc.injection_rate = 0.25;
  tc.flits_per_node = 150;
  tc.seed = 11;
  sim::Scheduler s1;
  Network defl(s1, TorusGeometry(4, 4));
  const int got_defl = run_traffic(s1, defl, tc);
  sim::Scheduler s2;
  XyNetwork xy(s2, TorusGeometry(4, 4));
  const int got_xy = run_traffic(s2, xy, tc);
  EXPECT_EQ(got_defl, got_xy);
}

TEST(RouterComparison, DeflectionStoresNothingXyBuffers) {
  TrafficConfig tc;
  tc.pattern = TrafficPattern::kHotspot;
  tc.injection_rate = 0.8;
  tc.flits_per_node = 200;
  tc.hotspot_node = 0;
  sim::Scheduler s2;
  XyNetwork xy(s2, TorusGeometry(4, 4));
  run_traffic(s2, xy, tc);
  // The buffered router really uses its buffers under a hotspot — the
  // storage cost the paper's deflection design eliminates.
  EXPECT_GT(xy.stats().get("xynoc.peak_buffered"), 4u);
}

TEST(RouterComparison, DeflectionDeflectsUnderHotspot) {
  TrafficConfig tc;
  tc.pattern = TrafficPattern::kHotspot;
  tc.injection_rate = 0.8;
  tc.flits_per_node = 200;
  tc.hotspot_node = 0;
  sim::Scheduler s1;
  Network defl(s1, TorusGeometry(4, 4));
  run_traffic(s1, defl, tc);
  EXPECT_GT(defl.stats().get("noc.deflections_total"), 100u);
}

}  // namespace
}  // namespace medea::noc
