/// Differential tests for the two event-queue kernels: every scenario
/// must be bit-identical between the calendar-queue scheduler (the
/// default) and the legacy binary heap it replaced.
///
/// The kernel determinism contract says dispatch order within a cycle
/// follows wake-request (FIFO seq) order; the calendar queue reproduces
/// that order exactly (overflow-heap entries for a cycle always predate
/// its bucket entries), so *everything* observable — cycle counts,
/// per-flit delivery logs in raw dispatch order, aggregate hardware
/// stats — must match the legacy kernel bit for bit.  These tests run
/// identical seeds through both kernels across every registry workload
/// and a randomized torture mesh, and fail on the first divergence.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "noc/flit.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace medea {
namespace {

using sim::SchedulerConfig;

SchedulerConfig calendar_cfg() { return {}; }

SchedulerConfig legacy_cfg() {
  SchedulerConfig cfg;
  cfg.queue = SchedulerConfig::EventQueue::kBinaryHeap;
  return cfg;
}

/// Raw delivery log in true dispatch order: (cycle, node, uid) per flit.
/// Unsorted on purpose — order equality is the strongest cross-kernel
/// assertion the determinism contract supports.
struct DeliveryLog final : noc::FlitObserver {
  std::vector<std::tuple<sim::Cycle, int, std::uint32_t>> v;
  void on_inject(sim::Cycle, int, const noc::Flit&) override {}
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override {
    v.emplace_back(now, node, f.uid);
  }
};

/// Tiny request for `name`, with the section matching its kind engaged.
workload::RunRequest tiny_req(const SchedulerConfig& sched,
                              const std::string& name) {
  workload::RunRequest req;
  req.machine.num_compute_cores = 2;
  req.machine.scheduler = sched;
  switch (workload::WorkloadRegistry::instance().at(name).kind()) {
    case workload::WorkloadKind::kApp: {
      workload::AppParams ap;
      ap.size = 8;
      req.app = ap;
      break;
    }
    case workload::WorkloadKind::kSynthetic: {
      workload::SyntheticParams sp;
      sp.injection_rate = 0.3;
      sp.flits_per_node = 50;
      req.synthetic = sp;
      break;
    }
    case workload::WorkloadKind::kReplay:
      break;  // caller fills req.replay
  }
  return req;
}

void expect_stats_identical(const sim::StatSet& a, const sim::StatSet& b,
                            const std::string& what) {
  EXPECT_EQ(a.counters(), b.counters()) << what << ": counters diverged";
  ASSERT_EQ(a.accumulators().size(), b.accumulators().size()) << what;
  auto ita = a.accumulators().begin();
  auto itb = b.accumulators().begin();
  for (; ita != a.accumulators().end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first) << what;
    EXPECT_EQ(ita->second.count(), itb->second.count()) << what << ": "
                                                        << ita->first;
    EXPECT_EQ(ita->second.sum(), itb->second.sum()) << what << ": "
                                                    << ita->first;
    EXPECT_EQ(ita->second.min(), itb->second.min()) << what << ": "
                                                    << ita->first;
    EXPECT_EQ(ita->second.max(), itb->second.max()) << what << ": "
                                                    << ita->first;
  }
}

/// Run `name` once per kernel with identical params and assert the runs
/// are indistinguishable: cycle count, headline metric, flit totals,
/// aggregate stats and the raw per-flit delivery log.
void check_workload_identical(const std::string& name,
                              workload::RunRequest base) {
  base.machine.scheduler = calendar_cfg();
  DeliveryLog cal_log;
  const workload::RunResult cal =
      workload::run_by_name(name, base, &cal_log);

  base.machine.scheduler = legacy_cfg();
  DeliveryLog heap_log;
  const workload::RunResult heap =
      workload::run_by_name(name, base, &heap_log);

  EXPECT_EQ(cal.cycles, heap.cycles) << name;
  EXPECT_EQ(cal.metric, heap.metric) << name;
  EXPECT_EQ(cal.flits_delivered, heap.flits_delivered) << name;
  EXPECT_EQ(cal.verified_ok, heap.verified_ok) << name;
  EXPECT_EQ(cal.measurement, heap.measurement)
      << name << ": latency measurements diverged";
  EXPECT_EQ(cal_log.v, heap_log.v) << name << ": delivery logs diverged";
  expect_stats_identical(cal.stats, heap.stats, name);
}

TEST(SchedulerDiff, EveryRegistryWorkloadIsBitIdentical) {
  for (const char* name :
       {"jacobi", "jacobi-sync", "jacobi-sm", "reduction", "reduction-sm",
        "alltoall", "uniform", "hotspot", "transpose", "neighbor", "bitrev"}) {
    workload::RunRequest req = tiny_req(calendar_cfg(), name);
    req.verify = true;
    check_workload_identical(name, req);
  }
}

TEST(SchedulerDiff, SaturatedDeflectionTrafficIsBitIdentical) {
  // High injection on the deflection fabric with random tie-breaks: the
  // densest wake pattern the NoC produces, and RNG draws make any
  // dispatch-order divergence between the kernels instantly visible.
  workload::RunRequest req = tiny_req(calendar_cfg(), "uniform");
  req.synthetic->injection_rate = 0.9;
  req.synthetic->flits_per_node = 200;
  req.machine.router.random_tie_break = true;
  req.seed = 7;
  check_workload_identical("uniform", req);
}

TEST(SchedulerDiff, XyFabricIsBitIdentical) {
  workload::RunRequest req = tiny_req(calendar_cfg(), "transpose");
  req.synthetic->network = "xy";
  check_workload_identical("transpose", req);
}

TEST(SchedulerDiff, TraceReplayIsBitIdentical) {
  // Record once (under the default kernel), replay under both.
  workload::RunRequest rec = tiny_req(calendar_cfg(), "uniform");
  rec.synthetic->injection_rate = 0.5;
  const workload::Trace t = workload::record_workload("uniform", rec);
  const std::string path = testing::TempDir() + "/medea_sched_diff_replay.bin";
  workload::save_trace(t, path);

  workload::RunRequest req = tiny_req(calendar_cfg(), "replay");
  req.replay = workload::ReplayParams{};
  req.replay->trace_path = path;
  check_workload_identical("replay", req);
}

TEST(SchedulerDiff, FlitTracedRunIsBitIdenticalAcrossKernelsAndToUntraced) {
  // Lifecycle tracing rides the same determinism contract: the tracer
  // only observes, so a traced run must match the untraced one exactly,
  // and the finalized trace itself must be kernel-independent.
  workload::RunRequest req = tiny_req(calendar_cfg(), "uniform");
  req.synthetic->injection_rate = 0.8;
  req.synthetic->flits_per_node = 150;
  req.flit_trace.sample_every = 1;

  req.machine.scheduler = calendar_cfg();
  DeliveryLog cal_log;
  const workload::RunResult cal = workload::run_by_name("uniform", req, &cal_log);
  req.machine.scheduler = legacy_cfg();
  DeliveryLog heap_log;
  const workload::RunResult heap =
      workload::run_by_name("uniform", req, &heap_log);
  EXPECT_EQ(cal.cycles, heap.cycles);
  EXPECT_EQ(cal_log.v, heap_log.v) << "traced delivery logs diverged";
  EXPECT_EQ(cal.flit_trace, heap.flit_trace)
      << "flit traces diverged across kernels";
  expect_stats_identical(cal.stats, heap.stats, "traced uniform");

  // Tracing off, same kernel: nothing observable may change.
  workload::RunRequest untraced = req;
  untraced.machine.scheduler = calendar_cfg();
  untraced.flit_trace.sample_every = 0;
  DeliveryLog plain_log;
  const workload::RunResult plain =
      workload::run_by_name("uniform", untraced, &plain_log);
  EXPECT_EQ(cal.cycles, plain.cycles);
  EXPECT_EQ(cal_log.v, plain_log.v) << "tracing perturbed the run";
  expect_stats_identical(cal.stats, plain.stats, "traced-vs-untraced");
}

TEST(SchedulerDiff, JacobiFullSweepPointIsBitIdentical) {
  // A 15-core design point: the PE-dense configuration whose wake/frame
  // churn the calendar queue and frame pool exist for.
  workload::RunRequest req = tiny_req(calendar_cfg(), "jacobi");
  req.machine.num_compute_cores = 15;
  req.app->size = 12;
  req.verify = true;
  check_workload_identical("jacobi", req);
}

// ---------------------------------------------------------------------
// Randomized kernel torture: far-future wakes, ring wraps, duplicate
// cycles — patterns no hardware model produces but the contract allows.
// ---------------------------------------------------------------------

class ChaosComponent final : public sim::Component {
 public:
  ChaosComponent(sim::Scheduler& s, int id, std::uint64_t seed, int budget,
                 std::vector<std::pair<int, sim::Cycle>>* trail)
      : sim::Component(s, "chaos" + std::to_string(id)),
        id_(id),
        rng_(seed),
        budget_(budget),
        trail_(trail) {}

  void tick(sim::Cycle now) override {
    trail_->emplace_back(id_, now);
    if (budget_-- <= 0) return;
    // A burst of wakes per tick: mostly now+1, some mid-range, some far
    // beyond any realistic ring (forcing the overflow heap), plus
    // deliberate duplicates to exercise both dedup layers.
    const int n = 1 + static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t r = rng_.next_below(100);
      sim::Cycle delta = 1;
      if (r >= 97) {
        delta = 3000 + rng_.next_below(200000);  // overflow tier
      } else if (r >= 80) {
        delta = 2 + rng_.next_below(500);  // mid-range bucket
      }
      wake(delta);
      if (rng_.next_below(4) == 0) wake(delta);  // duplicate
    }
  }

 private:
  int id_;
  sim::Xoshiro256 rng_;
  int budget_;
  std::vector<std::pair<int, sim::Cycle>>* trail_;
};

TEST(SchedulerDiff, RandomizedWakeTortureIsBitIdentical) {
  auto run_kernel = [](const SchedulerConfig& cfg) {
    sim::Scheduler sched(cfg);
    std::vector<std::pair<int, sim::Cycle>> trail;
    std::vector<std::unique_ptr<ChaosComponent>> comps;
    for (int i = 0; i < 8; ++i) {
      comps.push_back(std::make_unique<ChaosComponent>(
          sched, i, 1000 + static_cast<std::uint64_t>(i), 400, &trail));
      sched.wake_at(*comps.back(), static_cast<sim::Cycle>(1 + i % 3));
    }
    EXPECT_TRUE(sched.run());
    return std::tuple{trail, sched.now(), sched.active_cycles(),
                      sched.wake_requests(), sched.wakes_deduped()};
  };

  const auto cal = run_kernel(calendar_cfg());
  const auto heap = run_kernel(legacy_cfg());
  EXPECT_EQ(std::get<0>(cal), std::get<0>(heap)) << "tick trails diverged";
  EXPECT_EQ(std::get<1>(cal), std::get<1>(heap));
  EXPECT_EQ(std::get<2>(cal), std::get<2>(heap));
  EXPECT_EQ(std::get<3>(cal), std::get<3>(heap));
  EXPECT_EQ(std::get<4>(cal), std::get<4>(heap));
}

TEST(SchedulerDiff, TinyRingMatchesLegacyAcrossWraps) {
  // The smallest permitted ring (64 cycles) forces constant wrap-around
  // and heavy overflow migration pressure; behaviour must not change.
  SchedulerConfig tiny = calendar_cfg();
  tiny.ring_bits = 6;

  auto run_kernel = [](const SchedulerConfig& cfg) {
    sim::Scheduler sched(cfg);
    std::vector<std::pair<int, sim::Cycle>> trail;
    std::vector<std::unique_ptr<ChaosComponent>> comps;
    for (int i = 0; i < 4; ++i) {
      comps.push_back(std::make_unique<ChaosComponent>(
          sched, i, 42 + static_cast<std::uint64_t>(i), 300, &trail));
      sched.wake_at(*comps.back(), 1);
    }
    EXPECT_TRUE(sched.run());
    return std::pair{trail, sched.now()};
  };

  EXPECT_EQ(run_kernel(tiny), run_kernel(legacy_cfg()));
}

}  // namespace
}  // namespace medea
