/// Differential tests for the event-queue kernels: every scenario must
/// be bit-identical between the calendar-queue scheduler (the default),
/// the legacy binary heap it replaced, and the sharded parallel kernel
/// at any shard count.
///
/// The kernel determinism contract says dispatch order within a cycle
/// is the canonical component-construction order, independent of when
/// or from where the wake was requested; all three kernels reproduce
/// that order exactly (the sharded kernel additionally merges cross-
/// shard observer events back into it), so *everything* observable —
/// cycle counts, per-flit delivery logs in raw dispatch order,
/// aggregate hardware stats, flit lifecycle traces — must match bit
/// for bit.  These tests run identical seeds through all kernels across
/// every registry workload and a randomized torture mesh, and fail on
/// the first divergence.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "noc/flit.h"
#include "noc/network.h"
#include "sim/domain.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "workload/replay.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace medea {
namespace {

using sim::SchedulerConfig;

SchedulerConfig calendar_cfg() { return {}; }

SchedulerConfig legacy_cfg() {
  SchedulerConfig cfg;
  cfg.queue = SchedulerConfig::EventQueue::kBinaryHeap;
  return cfg;
}

SchedulerConfig sharded_cfg(int shards) {
  SchedulerConfig cfg;
  cfg.queue = SchedulerConfig::EventQueue::kShardedCalendar;
  cfg.num_shards = shards;
  return cfg;
}

/// Raw delivery log in true dispatch order: (cycle, node, uid) per flit.
/// Unsorted on purpose — order equality is the strongest cross-kernel
/// assertion the determinism contract supports.
struct DeliveryLog final : noc::FlitObserver {
  std::vector<std::tuple<sim::Cycle, int, std::uint32_t>> v;
  void on_inject(sim::Cycle, int, const noc::Flit&) override {}
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override {
    v.emplace_back(now, node, f.uid);
  }
};

/// Tiny request for `name`, with the section matching its kind engaged.
workload::RunRequest tiny_req(const SchedulerConfig& sched,
                              const std::string& name) {
  workload::RunRequest req;
  req.machine.num_compute_cores = 2;
  req.machine.scheduler = sched;
  switch (workload::WorkloadRegistry::instance().at(name).kind()) {
    case workload::WorkloadKind::kApp: {
      workload::AppParams ap;
      ap.size = 8;
      req.app = ap;
      break;
    }
    case workload::WorkloadKind::kSynthetic: {
      workload::SyntheticParams sp;
      sp.injection_rate = 0.3;
      sp.flits_per_node = 50;
      req.synthetic = sp;
      break;
    }
    case workload::WorkloadKind::kReplay:
      break;  // caller fills req.replay
  }
  return req;
}

void expect_stats_identical(const sim::StatSet& a, const sim::StatSet& b,
                            const std::string& what) {
  EXPECT_EQ(a.counters(), b.counters()) << what << ": counters diverged";
  ASSERT_EQ(a.accumulators().size(), b.accumulators().size()) << what;
  auto ita = a.accumulators().begin();
  auto itb = b.accumulators().begin();
  for (; ita != a.accumulators().end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first) << what;
    EXPECT_EQ(ita->second.count(), itb->second.count()) << what << ": "
                                                        << ita->first;
    EXPECT_EQ(ita->second.sum(), itb->second.sum()) << what << ": "
                                                    << ita->first;
    EXPECT_EQ(ita->second.min(), itb->second.min()) << what << ": "
                                                    << ita->first;
    EXPECT_EQ(ita->second.max(), itb->second.max()) << what << ": "
                                                    << ita->first;
  }
}

/// One run of `name` under kernel `cfg`, with its raw delivery log.
struct KernelRun {
  workload::RunResult r;
  DeliveryLog log;
};

KernelRun run_kernel(const std::string& name, workload::RunRequest req,
                     const SchedulerConfig& cfg) {
  KernelRun out;
  req.machine.scheduler = cfg;
  out.r = workload::run_by_name(name, req, &out.log);
  return out;
}

void expect_runs_identical(const KernelRun& ref, const KernelRun& other,
                           const std::string& what) {
  EXPECT_EQ(ref.r.cycles, other.r.cycles) << what;
  EXPECT_EQ(ref.r.metric, other.r.metric) << what;
  EXPECT_EQ(ref.r.flits_delivered, other.r.flits_delivered) << what;
  EXPECT_EQ(ref.r.verified_ok, other.r.verified_ok) << what;
  EXPECT_EQ(ref.r.measurement, other.r.measurement)
      << what << ": latency measurements diverged";
  EXPECT_EQ(ref.log.v, other.log.v) << what << ": delivery logs diverged";
  expect_stats_identical(ref.r.stats, other.r.stats, what);
}

/// Run `name` once per kernel — calendar (the reference), legacy heap,
/// and the sharded parallel kernel at 2 and 3 shards — with identical
/// params, and assert the runs are indistinguishable: cycle count,
/// headline metric, flit totals, aggregate stats and the raw per-flit
/// delivery log.  Models that cannot shard (apps, the XY fabric) take
/// the transparent single-thread fallback under the sharded configs,
/// which must also be bit-identical.
void check_workload_identical(const std::string& name,
                              const workload::RunRequest& base) {
  const KernelRun ref = run_kernel(name, base, calendar_cfg());
  expect_runs_identical(ref, run_kernel(name, base, legacy_cfg()),
                        name + " [heap]");
  for (int shards : {2, 3}) {
    expect_runs_identical(
        ref, run_kernel(name, base, sharded_cfg(shards)),
        name + " [sharded x" + std::to_string(shards) + "]");
  }
}

TEST(SchedulerDiff, EveryRegistryWorkloadIsBitIdentical) {
  for (const char* name :
       {"jacobi", "jacobi-sync", "jacobi-sm", "reduction", "reduction-sm",
        "alltoall", "uniform", "hotspot", "transpose", "neighbor", "bitrev"}) {
    workload::RunRequest req = tiny_req(calendar_cfg(), name);
    req.verify = true;
    check_workload_identical(name, req);
  }
}

TEST(SchedulerDiff, SaturatedDeflectionTrafficIsBitIdentical) {
  // High injection on the deflection fabric with random tie-breaks: the
  // densest wake pattern the NoC produces, and RNG draws make any
  // dispatch-order divergence between the kernels instantly visible.
  workload::RunRequest req = tiny_req(calendar_cfg(), "uniform");
  req.synthetic->injection_rate = 0.9;
  req.synthetic->flits_per_node = 200;
  req.machine.router.random_tie_break = true;
  req.seed = 7;
  check_workload_identical("uniform", req);
}

TEST(SchedulerDiff, XyFabricIsBitIdentical) {
  workload::RunRequest req = tiny_req(calendar_cfg(), "transpose");
  req.synthetic->network = "xy";
  check_workload_identical("transpose", req);
}

TEST(SchedulerDiff, TraceReplayIsBitIdentical) {
  // Record once (under the default kernel), replay under both.
  workload::RunRequest rec = tiny_req(calendar_cfg(), "uniform");
  rec.synthetic->injection_rate = 0.5;
  const workload::Trace t = workload::record_workload("uniform", rec);
  const std::string path = testing::TempDir() + "/medea_sched_diff_replay.bin";
  workload::save_trace(t, path);

  workload::RunRequest req = tiny_req(calendar_cfg(), "replay");
  req.replay = workload::ReplayParams{};
  req.replay->trace_path = path;
  check_workload_identical("replay", req);
}

TEST(SchedulerDiff, FlitTracedRunIsBitIdenticalAcrossKernelsAndToUntraced) {
  // Lifecycle tracing rides the same determinism contract: the tracer
  // only observes, so a traced run must match the untraced one exactly,
  // and the finalized trace itself must be kernel-independent.
  workload::RunRequest req = tiny_req(calendar_cfg(), "uniform");
  req.synthetic->injection_rate = 0.8;
  req.synthetic->flits_per_node = 150;
  req.flit_trace.sample_every = 1;

  req.machine.scheduler = calendar_cfg();
  DeliveryLog cal_log;
  const workload::RunResult cal =
      workload::run_by_name("uniform", req, &cal_log);
  req.machine.scheduler = legacy_cfg();
  DeliveryLog heap_log;
  const workload::RunResult heap =
      workload::run_by_name("uniform", req, &heap_log);
  EXPECT_EQ(cal.cycles, heap.cycles);
  EXPECT_EQ(cal_log.v, heap_log.v) << "traced delivery logs diverged";
  EXPECT_EQ(cal.flit_trace, heap.flit_trace)
      << "flit traces diverged across kernels";
  expect_stats_identical(cal.stats, heap.stats, "traced uniform");

  // Sharded run: lifecycle events (hop-level included) funnel through
  // the per-shard buffers and must replay in canonical order, so the
  // finalized per-flit hop chains are bit-identical too.
  req.machine.scheduler = sharded_cfg(2);
  DeliveryLog shard_log;
  const workload::RunResult shard =
      workload::run_by_name("uniform", req, &shard_log);
  EXPECT_EQ(cal.cycles, shard.cycles);
  EXPECT_EQ(cal_log.v, shard_log.v) << "sharded traced delivery log diverged";
  EXPECT_EQ(cal.flit_trace, shard.flit_trace)
      << "flit traces diverged single-thread vs sharded";
  expect_stats_identical(cal.stats, shard.stats, "traced uniform sharded");

  // Tracing off, same kernel: nothing observable may change.
  workload::RunRequest untraced = req;
  untraced.machine.scheduler = calendar_cfg();
  untraced.flit_trace.sample_every = 0;
  DeliveryLog plain_log;
  const workload::RunResult plain =
      workload::run_by_name("uniform", untraced, &plain_log);
  EXPECT_EQ(cal.cycles, plain.cycles);
  EXPECT_EQ(cal_log.v, plain_log.v) << "tracing perturbed the run";
  expect_stats_identical(cal.stats, plain.stats, "traced-vs-untraced");
}

TEST(SchedulerDiff, JacobiFullSweepPointIsBitIdentical) {
  // A 15-core design point: the PE-dense configuration whose wake/frame
  // churn the calendar queue and frame pool exist for.
  workload::RunRequest req = tiny_req(calendar_cfg(), "jacobi");
  req.machine.num_compute_cores = 15;
  req.app->size = 12;
  req.verify = true;
  check_workload_identical("jacobi", req);
}

// ---------------------------------------------------------------------
// Randomized kernel torture: far-future wakes, ring wraps, duplicate
// cycles — patterns no hardware model produces but the contract allows.
// ---------------------------------------------------------------------

class ChaosComponent final : public sim::Component {
 public:
  ChaosComponent(sim::Scheduler& s, int id, std::uint64_t seed, int budget,
                 std::vector<std::pair<int, sim::Cycle>>* trail)
      : sim::Component(s, "chaos" + std::to_string(id)),
        id_(id),
        rng_(seed),
        budget_(budget),
        trail_(trail) {}

  void tick(sim::Cycle now) override {
    trail_->emplace_back(id_, now);
    if (budget_-- <= 0) return;
    // A burst of wakes per tick: mostly now+1, some mid-range, some far
    // beyond any realistic ring (forcing the overflow heap), plus
    // deliberate duplicates to exercise both dedup layers.
    const int n = 1 + static_cast<int>(rng_.next_below(3));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t r = rng_.next_below(100);
      sim::Cycle delta = 1;
      if (r >= 97) {
        delta = 3000 + rng_.next_below(200000);  // overflow tier
      } else if (r >= 80) {
        delta = 2 + rng_.next_below(500);  // mid-range bucket
      }
      wake(delta);
      if (rng_.next_below(4) == 0) wake(delta);  // duplicate
    }
  }

 private:
  int id_;
  sim::Xoshiro256 rng_;
  int budget_;
  std::vector<std::pair<int, sim::Cycle>>* trail_;
};

TEST(SchedulerDiff, RandomizedWakeTortureIsBitIdentical) {
  auto run_kernel = [](const SchedulerConfig& cfg) {
    sim::Scheduler sched(cfg);
    std::vector<std::pair<int, sim::Cycle>> trail;
    std::vector<std::unique_ptr<ChaosComponent>> comps;
    for (int i = 0; i < 8; ++i) {
      comps.push_back(std::make_unique<ChaosComponent>(
          sched, i, 1000 + static_cast<std::uint64_t>(i), 400, &trail));
      sched.wake_at(*comps.back(), static_cast<sim::Cycle>(1 + i % 3));
    }
    EXPECT_TRUE(sched.run());
    return std::tuple{trail, sched.now(), sched.active_cycles(),
                      sched.wake_requests(), sched.wakes_deduped()};
  };

  const auto cal = run_kernel(calendar_cfg());
  const auto heap = run_kernel(legacy_cfg());
  EXPECT_EQ(std::get<0>(cal), std::get<0>(heap)) << "tick trails diverged";
  EXPECT_EQ(std::get<1>(cal), std::get<1>(heap));
  EXPECT_EQ(std::get<2>(cal), std::get<2>(heap));
  EXPECT_EQ(std::get<3>(cal), std::get<3>(heap));
  EXPECT_EQ(std::get<4>(cal), std::get<4>(heap));
}

TEST(SchedulerDiff, TinyRingMatchesLegacyAcrossWraps) {
  // The smallest permitted ring (64 cycles) forces constant wrap-around
  // and heavy overflow migration pressure; behaviour must not change.
  SchedulerConfig tiny = calendar_cfg();
  tiny.ring_bits = 6;

  auto run_kernel = [](const SchedulerConfig& cfg) {
    sim::Scheduler sched(cfg);
    std::vector<std::pair<int, sim::Cycle>> trail;
    std::vector<std::unique_ptr<ChaosComponent>> comps;
    for (int i = 0; i < 4; ++i) {
      comps.push_back(std::make_unique<ChaosComponent>(
          sched, i, 42 + static_cast<std::uint64_t>(i), 300, &trail));
      sched.wake_at(*comps.back(), 1);
    }
    EXPECT_TRUE(sched.run());
    return std::pair{trail, sched.now()};
  };

  EXPECT_EQ(run_kernel(tiny), run_kernel(legacy_cfg()));
}

// ---------------------------------------------------------------------
// Sharded-kernel edge cases: cycle-boundary injection straight across
// the shard seam, uneven row bands, over-provisioned shard counts, and
// the wake torture on the parallel kernel itself.
// ---------------------------------------------------------------------

/// A hand-crafted trace that injects at *every* consecutive cycle from
/// the rows on both sides of every 2-shard seam of a 4x4 torus (rows
/// 1<->2, plus the wrap seam 3<->0), so each global cycle both commits
/// flits into boundary mailboxes and drains them.
workload::Trace boundary_trace() {
  workload::Trace t;
  t.meta.width = 4;
  t.meta.height = 4;
  t.meta.coord_bits = workload::coord_bits_for(4, 4);
  t.meta.seed = 1;
  t.meta.version = 1;  // v1: geometry check only, no fabric config
  const noc::TorusGeometry geom(4, 4);
  std::uint32_t uid = 1;
  const auto add = [&](sim::Cycle c, int src, int dst) {
    workload::TraceEvent e;
    e.cycle = c;
    e.src = static_cast<std::uint16_t>(src);
    e.dst = static_cast<std::uint16_t>(dst);
    noc::Flit f;
    f.valid = true;
    f.dst = geom.coord_of(dst);
    f.src_id = static_cast<std::uint8_t>(src);
    e.uid = uid++;
    e.payload = noc::encode_flit(f, t.meta.coord_bits);
    t.events.push_back(e);
  };
  for (sim::Cycle c = 2; c <= 12; ++c) {
    const int x = static_cast<int>(c) % 4;
    add(c, geom.node_id({static_cast<std::uint8_t>(x), 1}),
        geom.node_id({static_cast<std::uint8_t>(x), 2}));  // seam down
    add(c, geom.node_id({static_cast<std::uint8_t>(x), 2}),
        geom.node_id({static_cast<std::uint8_t>(x), 1}));  // seam up
    add(c, geom.node_id({static_cast<std::uint8_t>(x), 3}),
        geom.node_id({static_cast<std::uint8_t>(x), 0}));  // wrap seam
  }
  t.meta.total_cycles = 64;
  return t;
}

TEST(ShardedDiff, BoundaryCycleInjectionMatchesSingleThread) {
  const workload::Trace trace = boundary_trace();
  const noc::TorusGeometry geom(4, 4);

  struct Outcome {
    workload::ReplayResult res;
    std::vector<std::tuple<sim::Cycle, int, std::uint32_t>> log;
    sim::StatSet stats;
  };
  const auto run_single = [&] {
    sim::Scheduler sched(calendar_cfg());
    noc::Network net(sched, geom, {}, 1);
    DeliveryLog log;
    net.set_observer(&log);
    Outcome o;
    o.res = workload::run_replay(sched, net, trace);
    o.log = std::move(log.v);
    o.stats = net.stats();
    return o;
  };
  const auto run_sharded = [&](int shards) {
    sim::SimDomain dom(sharded_cfg(shards), geom.height());
    noc::Network net(dom, geom, {}, 1);
    EXPECT_GT(net.num_shard_channels(), 0u);
    DeliveryLog log;
    net.set_observer(&log);
    Outcome o;
    o.res = workload::run_replay(dom, net, trace);
    // Every flit in this trace crosses a seam; with 2 shards the two
    // row-1<->2 streams (and half of each deflection detour) must have
    // moved through mailboxes.
    EXPECT_GT(net.mailbox_flits(), 0u);
    o.log = std::move(log.v);
    o.stats = net.stats();
    return o;
  };

  const Outcome single = run_single();
  ASSERT_EQ(single.res.flits_delivered, trace.events.size());
  for (int shards : {2, 4}) {
    const Outcome sharded = run_sharded(shards);
    const std::string what =
        "boundary replay x" + std::to_string(shards);
    EXPECT_EQ(single.res.cycles, sharded.res.cycles) << what;
    EXPECT_EQ(single.res.flits_injected, sharded.res.flits_injected) << what;
    EXPECT_EQ(single.res.flits_delivered, sharded.res.flits_delivered)
        << what;
    EXPECT_EQ(single.res.last_delivery_cycle,
              sharded.res.last_delivery_cycle)
        << what;
    EXPECT_EQ(single.log, sharded.log) << what << ": delivery log diverged";
    expect_stats_identical(single.stats, sharded.stats, what);
  }
}

TEST(ShardedDiff, UnevenShardWidthsAreBitIdentical) {
  // A 4x5 torus under 3 shards splits into row bands of 2/2/1 — the
  // widest and narrowest band differ by a factor of two, and the wrap
  // seam joins the widest band to the narrowest.
  workload::RunRequest req = tiny_req(calendar_cfg(), "uniform");
  req.machine.noc_width = 4;
  req.machine.noc_height = 5;
  req.synthetic->injection_rate = 0.6;
  req.synthetic->flits_per_node = 80;
  check_workload_identical("uniform", req);
}

TEST(ShardedDiff, MoreShardsThanRowsClampAndMatch) {
  // num_shards far beyond the row count: the domain clamps to the
  // model's useful maximum (one band per row) and the run is still
  // bit-identical — never one thread per nonexistent router.
  EXPECT_EQ(sim::SimDomain::resolve_shards(sharded_cfg(64), 4), 4);
  EXPECT_EQ(sim::SimDomain::resolve_shards(sharded_cfg(64), 0), 64);
  EXPECT_EQ(sim::SimDomain::resolve_shards(calendar_cfg(), 4), 1);

  const workload::RunRequest req = tiny_req(calendar_cfg(), "hotspot");
  const KernelRun ref = run_kernel("hotspot", req, calendar_cfg());
  expect_runs_identical(ref, run_kernel("hotspot", req, sharded_cfg(64)),
                        "hotspot [sharded x64 on 4 rows]");
}

TEST(ShardedDiff, ShardedRandomizedWakeTortureIsBitIdentical) {
  // The chaos mesh on the parallel kernel itself: components spread
  // round-robin across shards, each recording its own trail (so every
  // trail is written by exactly one shard thread and the comparison is
  // independent of cross-shard interleaving).  Global cycle sequence,
  // per-component tick trails and the kernel-independent counters must
  // match the single-thread calendar run exactly.
  constexpr int kComps = 8;
  struct Result {
    std::vector<std::vector<std::pair<int, sim::Cycle>>> trails;
    sim::Cycle now = 0;
    std::uint64_t active = 0, wakes = 0, deduped = 0;
  };
  const auto run_single = [&] {
    Result res;
    res.trails.resize(kComps);
    sim::Scheduler sched(calendar_cfg());
    std::vector<std::unique_ptr<ChaosComponent>> comps;
    for (int i = 0; i < kComps; ++i) {
      comps.push_back(std::make_unique<ChaosComponent>(
          sched, i, 5000 + static_cast<std::uint64_t>(i), 300,
          &res.trails[static_cast<std::size_t>(i)]));
      sched.wake_at(*comps.back(), static_cast<sim::Cycle>(1 + i % 3));
    }
    EXPECT_TRUE(sched.run());
    res.now = sched.now();
    res.active = sched.active_cycles();
    res.wakes = sched.wake_requests();
    res.deduped = sched.wakes_deduped();
    return res;
  };
  const auto run_sharded = [&](int shards) {
    Result res;
    res.trails.resize(kComps);
    sim::SimDomain dom(sharded_cfg(shards), kComps);
    EXPECT_EQ(dom.num_shards(), shards);
    std::vector<std::unique_ptr<ChaosComponent>> comps;
    for (int i = 0; i < kComps; ++i) {
      sim::Scheduler& shard = dom.shard(i % dom.num_shards());
      comps.push_back(std::make_unique<ChaosComponent>(
          shard, i, 5000 + static_cast<std::uint64_t>(i), 300,
          &res.trails[static_cast<std::size_t>(i)]));
      shard.wake_at(*comps.back(), static_cast<sim::Cycle>(1 + i % 3));
    }
    EXPECT_TRUE(dom.run());
    res.now = dom.now();
    res.active = dom.active_cycles();
    res.wakes = dom.wake_requests();
    res.deduped = dom.wakes_deduped();
    return res;
  };

  const Result single = run_single();
  for (int shards : {2, 3}) {
    const Result sharded = run_sharded(shards);
    const std::string what = "chaos x" + std::to_string(shards);
    EXPECT_EQ(single.trails, sharded.trails) << what << ": trails diverged";
    EXPECT_EQ(single.now, sharded.now) << what;
    EXPECT_EQ(single.active, sharded.active) << what;
    EXPECT_EQ(single.wakes, sharded.wakes) << what;
    EXPECT_EQ(single.deduped, sharded.deduped) << what;
  }
}

}  // namespace
}  // namespace medea
