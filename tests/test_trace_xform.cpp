/// Tests for the trace toolkit: the self-describing MDTR v2 header
/// (v1 compatibility, corrupt-header rejection, config-mismatch
/// refusal), the transform pipeline (scale/remap/merge/window, all
/// outputs fully validated and replayable), the inspect/diff analyzers,
/// and record/replay parity for the buffered-XY baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "dse/sweep.h"
#include "noc/network.h"
#include "noc/xy_network.h"
#include "sim/scheduler.h"
#include "workload/replay.h"
#include "workload/trace.h"
#include "workload/workload.h"
#include "workload/xform/inspect.h"
#include "workload/xform/transform.h"

namespace medea::workload {
namespace {

RunRequest tiny_synth() {
  RunRequest req;
  req.machine.num_compute_cores = 2;
  SyntheticParams sp;
  sp.injection_rate = 0.3;
  sp.flits_per_node = 40;
  req.synthetic = sp;
  return req;
}

/// Replay request for a trace on disk (machine config left default).
RunRequest replay_req(const std::string& path) {
  RunRequest req;
  req.replay = ReplayParams{};
  req.replay->trace_path = path;
  return req;
}

/// Record a small 4x4 jacobi trace (the acceptance scenario's source).
Trace record_jacobi() {
  RunRequest req;
  req.machine.num_compute_cores = 4;
  AppParams ap;
  ap.size = 8;
  req.app = ap;
  return record_workload("jacobi", req);
}

/// Replay `t` on the fabric its header describes and require a clean
/// replay: every event injected and delivered.
ReplayResult replay_cleanly(const Trace& t) {
  sim::Scheduler sched;
  ReplayResult r;
  if (t.meta.net.kind == TraceNetKind::kBufferedXy) {
    noc::XyNetwork net(sched,
                       noc::TorusGeometry(t.meta.width, t.meta.height),
                       t.meta.net.xy_router_config(), t.meta.net.torus_wrap);
    r = run_replay(sched, net, t);
  } else {
    noc::Network net(sched, noc::TorusGeometry(t.meta.width, t.meta.height),
                     t.meta.net.router_config(), t.meta.seed);
    r = run_replay(sched, net, t);
  }
  EXPECT_EQ(r.flits_injected, t.events.size());
  EXPECT_EQ(r.flits_delivered, t.events.size());
  return r;
}

// ---------------------------------------------------------------------
// MDTR v2 header
// ---------------------------------------------------------------------

TEST(TraceV2, RecordingsCarryTheFabricConfig) {
  RunRequest req = tiny_synth();
  req.machine.router.eject_per_cycle = 2;
  req.machine.router.random_tie_break = true;
  const Trace t = record_workload("uniform", req);
  EXPECT_EQ(t.meta.version, kTraceVersion);
  EXPECT_EQ(t.meta.net.kind, TraceNetKind::kDeflection);
  EXPECT_EQ(t.meta.net.eject_per_cycle, 2);
  EXPECT_TRUE(t.meta.net.random_tie_break);

  // The config survives the disk round-trip.
  const auto bytes = serialize_trace(t);
  const Trace u = parse_trace(bytes.data(), bytes.size());
  EXPECT_EQ(u.meta.net, t.meta.net);
  EXPECT_EQ(u, t);
}

TEST(TraceV2, NetConfigProjectionsRoundTrip) {
  noc::RouterConfig rc;
  rc.eject_per_cycle = 3;
  rc.inject_queue_depth = 5;
  rc.eject_queue_depth = 7;
  rc.random_tie_break = true;
  EXPECT_EQ(TraceNetConfig::from(rc).router_config(), rc);

  noc::XyRouterConfig xc;
  xc.input_buffer_depth = 9;
  xc.eject_per_cycle = 2;
  const TraceNetConfig n = TraceNetConfig::from(xc, /*torus_wrap=*/true);
  EXPECT_EQ(n.xy_router_config(), xc);
  EXPECT_TRUE(n.torus_wrap);
  EXPECT_EQ(n.kind, TraceNetKind::kBufferedXy);
}

/// Hand-rolled v1 blob (the PR-2 on-disk layout, no fabric block): the
/// golden compatibility fixture v2 readers must keep accepting.
std::vector<std::uint8_t> golden_v1_blob(std::vector<TraceEvent>* events_out) {
  std::vector<std::uint8_t> b;
  const auto varint = [&b](std::uint64_t v) {
    while (v >= 0x80) {
      b.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    b.push_back(static_cast<std::uint8_t>(v));
  };
  for (char c : {'M', 'D', 'T', 'R'}) b.push_back(static_cast<std::uint8_t>(c));
  b.push_back(1);  // version 1
  varint(4);       // width
  varint(4);       // height
  varint(2);       // coord_bits
  varint(77);      // seed
  varint(500);     // total_cycles
  const std::string name = "uniform";
  varint(name.size());
  b.insert(b.end(), name.begin(), name.end());

  std::vector<TraceEvent> events;
  for (int i = 0; i < 8; ++i) {
    TraceEvent e;
    e.cycle = 2 + static_cast<sim::Cycle>(i) * 4;
    e.src = static_cast<std::uint16_t>(i % 16);
    e.dst = static_cast<std::uint16_t>((i + 5) % 16);
    e.size = 1;
    e.uid = static_cast<std::uint32_t>(i + 1);
    noc::Flit f;
    f.valid = true;
    f.dst = noc::Coord{static_cast<std::uint8_t>(e.dst % 4),
                       static_cast<std::uint8_t>(e.dst / 4)};
    f.src_id = static_cast<std::uint8_t>(e.src);
    f.uid = e.uid;
    e.payload = noc::encode_flit(f, 2);
    events.push_back(e);
  }
  varint(events.size());
  sim::Cycle prev = 0;
  for (const TraceEvent& e : events) {
    varint(e.cycle - prev);
    prev = e.cycle;
    varint(e.src);
    varint(e.dst);
    varint(e.size);
    varint(e.uid);
    varint(e.payload);
  }
  if (events_out != nullptr) *events_out = events;
  return b;
}

TEST(TraceV2, GoldenV1BlobStillParses) {
  std::vector<TraceEvent> expected;
  const auto bytes = golden_v1_blob(&expected);
  const Trace t = parse_trace(bytes.data(), bytes.size());
  EXPECT_EQ(t.meta.version, 1);
  EXPECT_EQ(t.meta.width, 4);
  EXPECT_EQ(t.meta.height, 4);
  EXPECT_EQ(t.meta.seed, 77u);
  EXPECT_EQ(t.meta.total_cycles, 500u);
  EXPECT_EQ(t.meta.workload, "uniform");
  EXPECT_EQ(t.meta.net, TraceNetConfig{});  // defaults, nothing recorded
  EXPECT_EQ(t.events, expected);

  // Re-serializing preserves v1 byte-for-byte: no fabricated fabric
  // config sneaks in (replay would otherwise enforce it).
  EXPECT_EQ(serialize_trace(t), bytes);
  validate_trace(t);

  // Transform outputs of a v1 input stay v1 — still checkable, still
  // config-free.
  const Trace scaled = xform::RateScale(2.0).apply(t);
  EXPECT_EQ(scaled.meta.version, 1);
  validate_trace(scaled);
}

TEST(TraceV2, V1TraceSkipsTheConfigCheck) {
  const auto bytes = golden_v1_blob(nullptr);
  const Trace t = parse_trace(bytes.data(), bytes.size());
  // A config the recording knows nothing about: no refusal for v1.
  noc::RouterConfig rc;
  rc.eject_per_cycle = 2;
  sim::Scheduler sched;
  noc::Network net(sched, noc::TorusGeometry(4, 4), rc, t.meta.seed);
  const ReplayResult r = run_replay(sched, net, t);
  EXPECT_EQ(r.flits_delivered, t.events.size());
}

/// Serialize a minimal v2 trace whose header varints are all single
/// bytes, so corrupt-header tests can poke known offsets.
std::vector<std::uint8_t> tiny_v2_bytes() {
  Trace t;
  t.meta.width = 4;
  t.meta.height = 4;
  t.meta.coord_bits = 2;
  t.meta.seed = 1;
  t.meta.total_cycles = 10;
  return serialize_trace(t);
}

// Header offsets of tiny_v2_bytes (all varints are 1 byte): magic 0..3,
// version 4, width 5, height 6, coord_bits 7, seed 8, total_cycles 9,
// name-len 10, kind 11, eject_per_cycle 12, inject_queue_depth 13,
// eject_queue_depth 14, input_buffer_depth 15, flags 16, ext_len 17.
constexpr std::size_t kKindOff = 11;
constexpr std::size_t kInjQOff = 13;
constexpr std::size_t kFlagsOff = 16;
constexpr std::size_t kExtLenOff = 17;

TEST(TraceV2, RejectsUnknownNetworkKind) {
  auto b = tiny_v2_bytes();
  b[kKindOff] = 9;
  EXPECT_THROW(parse_trace(b.data(), b.size()), std::runtime_error);
}

TEST(TraceV2, RejectsZeroQueueDepth) {
  auto b = tiny_v2_bytes();
  b[kInjQOff] = 0;
  EXPECT_THROW(parse_trace(b.data(), b.size()), std::runtime_error);
}

TEST(TraceV2, RejectsUnknownFlags) {
  auto b = tiny_v2_bytes();
  b[kFlagsOff] = 0x40;
  EXPECT_THROW(parse_trace(b.data(), b.size()), std::runtime_error);
}

TEST(TraceV2, RejectsTruncatedExtension) {
  auto b = tiny_v2_bytes();
  b[kExtLenOff] = 0x7F;  // claims 127 extension bytes that are not there
  EXPECT_THROW(parse_trace(b.data(), b.size()), std::runtime_error);
}

TEST(TraceV2, RejectsEveryHeaderTruncation) {
  const auto b = tiny_v2_bytes();
  for (std::size_t n = 0; n < b.size(); ++n) {
    EXPECT_THROW(parse_trace(b.data(), n), std::runtime_error) << n;
  }
}

TEST(TraceV2, RejectsFutureVersion) {
  auto b = tiny_v2_bytes();
  b[4] = kTraceVersion + 1;
  EXPECT_THROW(parse_trace(b.data(), b.size()), std::runtime_error);
}

// ---------------------------------------------------------------------
// Config-mismatch refusal
// ---------------------------------------------------------------------

TEST(ReplayConfigCheck, MismatchedRouterConfigThrows) {
  const Trace t = record_workload("uniform", tiny_synth());
  noc::RouterConfig other;
  other.eject_per_cycle = 2;  // recorded with 1
  sim::Scheduler sched;
  noc::Network net(sched, noc::TorusGeometry(4, 4), other, t.meta.seed);
  EXPECT_THROW(TraceReplayer(sched, net, t), std::runtime_error);
  // Explicit override replays anyway (a what-if study).
  const ReplayResult r = run_replay(sched, net, t, 50'000'000,
                                    /*allow_config_mismatch=*/true);
  EXPECT_EQ(r.flits_delivered, t.events.size());
}

TEST(ReplayConfigCheck, KindMismatchThrows) {
  // An XY recording must not silently replay on the deflection fabric.
  RunRequest req = tiny_synth();
  req.synthetic->network = "xy";
  const Trace t = record_workload("neighbor", req);
  ASSERT_EQ(t.meta.net.kind, TraceNetKind::kBufferedXy);
  sim::Scheduler sched;
  noc::Network net(sched, noc::TorusGeometry(4, 4));
  EXPECT_THROW(TraceReplayer(sched, net, t), std::runtime_error);
}

TEST(ReplayConfigCheck, RegistryReplayRefusesThenForces) {
  const Trace t = record_workload("uniform", tiny_synth());
  const std::string path = testing::TempDir() + "/medea_force_replay.bin";
  save_trace(t, path);

  RunRequest rr = replay_req(path);
  rr.machine.router.eject_per_cycle = 2;  // not what was recorded
  EXPECT_THROW(run_by_name("replay", rr), std::runtime_error);

  rr.replay->force_config = true;
  const RunResult r = run_by_name("replay", rr);
  EXPECT_EQ(r.flits_delivered, t.events.size());
  EXPECT_TRUE(r.verified_ok);
}

// ---------------------------------------------------------------------
// Transforms
// ---------------------------------------------------------------------

TEST(Transforms, RateScaleStretchAndCompressReplayCleanly) {
  const Trace t = record_jacobi();
  ASSERT_FALSE(t.events.empty());
  for (double factor : {0.5, 2.0}) {
    const Trace s = xform::RateScale(factor).apply(t);
    validate_trace(s);
    EXPECT_EQ(s.events.size(), t.events.size());
    EXPECT_NE(s.meta.workload.find("scale("), std::string::npos);
    // Cycles scaled by 1/factor (within rounding), order preserved.
    const double span_in = static_cast<double>(t.events.back().cycle);
    const double span_out = static_cast<double>(s.events.back().cycle);
    EXPECT_NEAR(span_out, span_in / factor, span_in * 0.01 + 4.0);
    replay_cleanly(s);
  }
}

TEST(Transforms, RateScaleRejectsNonPositiveFactor) {
  EXPECT_THROW(xform::RateScale(0.0), std::invalid_argument);
  EXPECT_THROW(xform::RateScale(-1.0), std::invalid_argument);
}

TEST(Transforms, BijectiveRemapOntoBiggerTorusReplaysCleanly) {
  const Trace t = record_jacobi();
  const Trace r = xform::RemapNodes(8, 8).apply(t);
  validate_trace(r);
  EXPECT_EQ(r.meta.width, 8);
  EXPECT_EQ(r.meta.height, 8);
  EXPECT_EQ(r.meta.coord_bits, 3);
  EXPECT_EQ(r.events.size(), t.events.size());
  // Coordinate-preserving: (x,y) keeps its coordinates, ids re-linearize.
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const int ox = t.events[i].src % 4, oy = t.events[i].src / 4;
    EXPECT_EQ(r.events[i].src, oy * 8 + ox);
    EXPECT_EQ(r.events[i].uid, t.events[i].uid);
  }
  replay_cleanly(r);
}

TEST(Transforms, BijectiveRemapRejectsShrinking) {
  const Trace t = record_jacobi();
  EXPECT_THROW(xform::RemapNodes(2, 2).apply(t), std::invalid_argument);
}

TEST(Transforms, TiledRemapClonesPerTileWithDisjointUids) {
  const Trace t = record_workload("neighbor", tiny_synth());
  ASSERT_FALSE(t.events.empty());
  const Trace r =
      xform::RemapNodes(8, 8, xform::RemapMode::kTiled).apply(t);
  validate_trace(r);
  EXPECT_EQ(r.events.size(), t.events.size() * 4);  // 2x2 tiles of 4x4
  std::set<std::uint32_t> uids;
  for (const TraceEvent& e : r.events) uids.insert(e.uid);
  EXPECT_EQ(uids.size(), r.events.size()) << "uid re-spacing collided";
  replay_cleanly(r);
}

TEST(Transforms, TiledRemapRejectsNonMultipleDims) {
  const Trace t = record_jacobi();
  EXPECT_THROW(xform::RemapNodes(6, 6, xform::RemapMode::kTiled).apply(t),
               std::invalid_argument);
}

TEST(Transforms, RemapRejectsFabricsBeyondSrcIdWidth) {
  EXPECT_THROW(xform::RemapNodes(32, 32), std::invalid_argument);
}

TEST(Transforms, MergeInterleavesAndRespacesUids) {
  RunRequest req = tiny_synth();
  const Trace a = record_workload("neighbor", req);
  req.seed = 9;
  const Trace b = record_workload("uniform", req);
  const Trace m = xform::merge_traces(a, b);
  validate_trace(m);
  EXPECT_EQ(m.events.size(), a.events.size() + b.events.size());
  EXPECT_EQ(m.meta.workload, "merge(neighbor+uniform)");
  std::set<std::uint32_t> uids;
  for (const TraceEvent& e : m.events) uids.insert(e.uid);
  EXPECT_EQ(uids.size(), m.events.size()) << "uid re-spacing collided";
  replay_cleanly(m);
}

TEST(Transforms, MergeRejectsMismatchedGeometryOrFabric) {
  const RunRequest req = tiny_synth();
  const Trace a = record_workload("neighbor", req);
  RunRequest req8 = req;
  req8.machine.noc_width = 8;
  req8.machine.noc_height = 8;
  const Trace b = record_workload("neighbor", req8);
  EXPECT_THROW(xform::merge_traces(a, b), std::invalid_argument);

  RunRequest reqc = req;
  reqc.machine.router.eject_per_cycle = 2;
  const Trace c = record_workload("neighbor", reqc);
  EXPECT_THROW(xform::merge_traces(a, c), std::invalid_argument);
}

TEST(Transforms, TimeWindowCutsAndRebases) {
  const Trace t = record_jacobi();
  ASSERT_GT(t.events.size(), 10u);
  const sim::Cycle mid = t.events[t.events.size() / 2].cycle;
  const Trace w = xform::TimeWindow(mid, t.events.back().cycle + 1).apply(t);
  validate_trace(w);
  EXPECT_GT(w.events.size(), 0u);
  EXPECT_LT(w.events.size(), t.events.size());
  // Rebasing shifts the window down by (mid - 2): the first kept event
  // lands at (its original cycle - mid + 2).
  sim::Cycle first_kept = 0;
  for (const TraceEvent& e : t.events) {
    if (e.cycle >= mid) {
      first_kept = e.cycle;
      break;
    }
  }
  ASSERT_GT(mid, 2u);
  EXPECT_EQ(w.events.front().cycle, first_kept - mid + 2);
  replay_cleanly(w);
}

TEST(Transforms, PipelineComposesPasses) {
  const Trace t = record_jacobi();
  xform::Pipeline pipe;
  pipe.add(std::make_unique<xform::RateScale>(2.0))
      .add(std::make_unique<xform::RemapNodes>(8, 8));
  const Trace out = pipe.apply(t);
  validate_trace(out);
  EXPECT_EQ(out.meta.width, 8);
  EXPECT_NE(out.meta.workload.find("scale(2x)"), std::string::npos);
  EXPECT_NE(out.meta.workload.find("remap(8x8"), std::string::npos);
  EXPECT_EQ(pipe.describe(), "scale(2x) | remap(8x8,bijective)");
  replay_cleanly(out);
}

// ---------------------------------------------------------------------
// Inspect / diff
// ---------------------------------------------------------------------

TEST(Inspect, CountsAndMatrixAgreeWithTheTrace) {
  const Trace t = record_workload("hotspot", tiny_synth());
  const auto insp = xform::inspect_trace(t);
  EXPECT_EQ(insp.num_events, t.events.size());
  EXPECT_EQ(insp.num_nodes, 16);

  std::uint64_t per_source_total = 0;
  for (auto c : insp.injections_per_source) per_source_total += c;
  EXPECT_EQ(per_source_total, t.events.size());

  std::uint64_t matrix_total = 0;
  for (auto c : insp.traffic_matrix) matrix_total += c;
  EXPECT_EQ(matrix_total, t.events.size());

  // Hotspot: every flit goes to node 0 => only column 0 is populated.
  for (std::size_t s = 0; s < 16; ++s) {
    for (std::size_t d = 1; d < 16; ++d) {
      EXPECT_EQ(insp.traffic_matrix[s * 16 + d], 0u) << s << "->" << d;
    }
  }
  std::uint64_t time_total = 0;
  for (auto c : insp.time_histogram) time_total += c;
  EXPECT_EQ(time_total, t.events.size());

  const std::string text = xform::format_inspection(t, insp);
  EXPECT_NE(text.find("src->dst heatmap"), std::string::npos);
  EXPECT_NE(text.find("hotspot"), std::string::npos);
  EXPECT_NE(text.find("deflection"), std::string::npos);
}

TEST(Inspect, EmptyTraceFormats) {
  Trace t;
  t.meta.width = 4;
  t.meta.height = 4;
  t.meta.coord_bits = 2;
  const auto insp = xform::inspect_trace(t);
  EXPECT_EQ(insp.num_events, 0u);
  EXPECT_FALSE(xform::format_inspection(t, insp).empty());
  EXPECT_FALSE(xform::format_inspection_json(t, insp).empty());
}

TEST(Inspect, JsonExportCarriesTheFullInspection) {
  const Trace t = record_workload("hotspot", tiny_synth());
  const auto insp = xform::inspect_trace(t, 8);
  const std::string json = xform::format_inspection_json(t, insp);

  // Structural spot checks: header fields, totals, and array shapes.
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"hotspot\""), std::string::npos);
  EXPECT_NE(json.find("\"width\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"num_events\": " + std::to_string(t.events.size())),
            std::string::npos);
  EXPECT_NE(json.find("\"traffic_matrix\": ["), std::string::npos);
  EXPECT_NE(json.find("\"time_histogram\": ["), std::string::npos);

  // One matrix row per source node.
  std::size_t rows = 0;
  const std::string matrix_key = "\"traffic_matrix\"";
  const std::size_t mstart = json.find(matrix_key);
  const std::size_t mend = json.find("]\n  ],", mstart);
  ASSERT_NE(mstart, std::string::npos);
  ASSERT_NE(mend, std::string::npos);
  for (std::size_t pos = json.find('[', mstart + matrix_key.size() + 2);
       pos != std::string::npos && pos <= mend;
       pos = json.find('[', pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 1u + 16u);  // the enclosing array plus 16 source rows

  // Balanced braces/brackets (cheap well-formedness check without a
  // JSON parser dependency; CI validates with python3 -m json.tool).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Diff, IdenticalAfterDiskRoundTrip) {
  const Trace t = record_jacobi();
  const std::string path = testing::TempDir() + "/medea_diff_rt.bin";
  save_trace(t, path);
  const auto d = xform::diff_traces(t, load_trace(path));
  EXPECT_TRUE(d.identical) << d.first_difference;
}

TEST(Diff, ReportsFirstDivergingEvent) {
  const Trace a = record_jacobi();
  Trace b = a;
  b.events[3].dst = static_cast<std::uint16_t>((b.events[3].dst + 1) % 16);
  const auto d = xform::diff_traces(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_EQ(d.diverge_index, 3u);
  EXPECT_NE(d.first_difference.find("event 3"), std::string::npos);
}

TEST(Diff, ReportsMetaAndLengthDifferences) {
  const Trace a = record_jacobi();
  Trace b = a;
  b.meta.seed += 1;
  auto d = xform::diff_traces(a, b);
  EXPECT_FALSE(d.identical);
  EXPECT_FALSE(d.meta_equal);
  EXPECT_NE(d.first_difference.find("meta.seed"), std::string::npos);

  Trace c = a;
  c.events.pop_back();
  d = xform::diff_traces(a, c);
  EXPECT_FALSE(d.identical);
  EXPECT_NE(d.first_difference.find("event count"), std::string::npos);
}

TEST(Diff, TransformedTraceIsNotIdentical) {
  const Trace t = record_jacobi();
  const Trace s = xform::RateScale(2.0).apply(t);
  EXPECT_FALSE(xform::diff_traces(t, s).identical);
}

// ---------------------------------------------------------------------
// Buffered-XY record/replay parity
// ---------------------------------------------------------------------

struct DeliveryLog final : noc::FlitObserver {
  std::vector<std::tuple<sim::Cycle, int, std::uint32_t>> v;
  void on_inject(sim::Cycle, int, const noc::Flit&) override {}
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override {
    v.emplace_back(now, node, f.uid);
  }
  std::vector<std::tuple<sim::Cycle, int, std::uint32_t>> sorted() const {
    auto s = v;
    std::sort(s.begin(), s.end());
    return s;
  }
};

struct RecordAndLog final : noc::FlitObserver {
  TraceRecorder* rec = nullptr;
  DeliveryLog* log = nullptr;
  void on_inject(sim::Cycle now, int node, const noc::Flit& f) override {
    rec->on_inject(now, node, f);
  }
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override {
    log->on_deliver(now, node, f);
  }
};

TEST(XyReplay, RecordingsReplayBitIdentically) {
  RunRequest req = tiny_synth();
  req.synthetic->network = "xy";
  req.synthetic->injection_rate = 0.4;

  // Record an XY run and log its deliveries.
  const Workload& w = WorkloadRegistry::instance().at("transpose");
  TraceRecorder rec(4, 4);
  rec.set_net_config(w.net_config(req));
  DeliveryLog orig;
  RecordAndLog both;
  both.rec = &rec;
  both.log = &orig;
  RunContext ctx{&both, nullptr};
  const RunResult recorded = w.run(req, ctx);
  const Trace trace = rec.take(recorded.cycles, "transpose", req.seed);
  ASSERT_FALSE(trace.events.empty());
  ASSERT_EQ(trace.meta.net.kind, TraceNetKind::kBufferedXy);

  // Replay twice on fabrics rebuilt from the header.
  auto replay_once = [&](DeliveryLog& log) {
    sim::Scheduler sched;
    noc::XyNetwork net(sched, noc::TorusGeometry(4, 4),
                       trace.meta.net.xy_router_config(),
                       trace.meta.net.torus_wrap);
    net.set_observer(&log);
    return run_replay(sched, net, trace);
  };
  DeliveryLog log1, log2;
  const ReplayResult r1 = replay_once(log1);
  const ReplayResult r2 = replay_once(log2);

  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(log1.v, log2.v);
  EXPECT_EQ(r1.flits_injected, trace.events.size());
  EXPECT_EQ(r1.flits_delivered, trace.events.size());
  // Replay-vs-recording: every flit delivered at the recorded cycle.
  EXPECT_EQ(log1.sorted(), orig.sorted());
}

TEST(XyReplay, RegistryReplayRebuildsTheXyFabricFromTheHeader) {
  RunRequest req = tiny_synth();
  req.synthetic->network = "xy";
  req.synthetic->xy_router.input_buffer_depth = 6;
  const Trace t = record_workload("neighbor", req);
  EXPECT_EQ(t.meta.net.input_buffer_depth, 6);
  const std::string path = testing::TempDir() + "/medea_xy_replay.bin";
  save_trace(t, path);

  // Default machine config; the header must decide the fabric.
  const RunResult r = run_by_name("replay", replay_req(path));
  EXPECT_EQ(r.flits_delivered, t.events.size());
  EXPECT_TRUE(r.verified_ok);
  EXPECT_EQ(r.cycles, t.meta.total_cycles);
}

// ---------------------------------------------------------------------
// Rate-sweep plumbing + the full acceptance scenario
// ---------------------------------------------------------------------

TEST(RateSweep, SweepFansOutScaledReplays) {
  const Trace t = record_workload("uniform", tiny_synth());
  const std::string path = testing::TempDir() + "/medea_scale_sweep.bin";
  save_trace(t, path);

  dse::SweepSpec spec;
  spec.workload = "replay";
  spec.trace_path = path;
  spec.trace_scales = {0.5, 1.0, 2.0};
  spec.cores = {2};
  spec.cache_kb = {2};
  spec.policies = {mem::WritePolicy::kWriteBack};
  spec.threads = 1;
  const auto pts = dse::run_sweep(spec);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].trace_scale, 0.5);
  EXPECT_EQ(pts[2].trace_scale, 2.0);
  EXPECT_NE(pts[0].label.find("_x0.5"), std::string::npos);
  // Stretched (0.5x) replay takes longer than compressed (2x).
  EXPECT_GT(pts[0].cycles_per_iteration, pts[2].cycles_per_iteration);
  // Verbatim point matches the recording's last delivery exactly.
  EXPECT_EQ(pts[1].label.find("_x"), std::string::npos);
}

TEST(Acceptance, JacobiTraceScalesRemapsMergesAndRoundTrips) {
  // Record the 4x4 jacobi trace on the deflection router.
  const Trace t = record_jacobi();
  ASSERT_EQ(t.meta.net.kind, TraceNetKind::kDeflection);

  // Rate-scale 0.5x and 2x: valid + clean replay.
  for (double f : {0.5, 2.0}) {
    const Trace s = xform::RateScale(f).apply(t);
    validate_trace(s);
    replay_cleanly(s);
  }

  // Remap onto an 8x8 torus: valid + clean replay.
  const Trace r = xform::RemapNodes(8, 8).apply(t);
  validate_trace(r);
  replay_cleanly(r);

  // Merge with a second trace: valid + clean replay.
  RunRequest req2 = tiny_synth();
  req2.machine.num_compute_cores = 4;
  req2.seed = 11;
  const Trace t2 = record_workload("uniform", req2);
  const Trace m = xform::merge_traces(t, t2);
  validate_trace(m);
  replay_cleanly(m);

  // The untransformed round-trip is bit-identical, proven by diff.
  const std::string path = testing::TempDir() + "/medea_acceptance.bin";
  save_trace(t, path);
  const auto d = xform::diff_traces(t, load_trace(path));
  EXPECT_TRUE(d.identical) << d.first_difference;
}

}  // namespace
}  // namespace medea::workload
