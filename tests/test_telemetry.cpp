/// Tests for the telemetry subsystem: the cycle-domain Sampler (delta
/// encoding round-trip, lazily-appearing series, gauge probes,
/// determinism across reruns), the zero-overhead-when-disabled
/// guarantee, the exporters (timeline JSON, CSV, Chrome trace JSON —
/// structurally validated), the timeline_summary roll-up, host-side
/// ProfileScope spans, and the Fifo commit-dedup counters the sampler
/// exports.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/telemetry.h"
#include "workload/timeline.h"
#include "workload/workload.h"

namespace medea {
namespace {

using telemetry::Sampler;
using telemetry::Series;
using telemetry::Timeline;

workload::RunRequest small_uniform(sim::Cycle sample_every) {
  workload::RunRequest req;
  workload::SyntheticParams sp;
  sp.injection_rate = 0.3;
  sp.flits_per_node = 60;
  req.synthetic = sp;
  req.telemetry.sample_every = sample_every;
  return req;
}

// ---------------------------------------------------------------------
// Sampler core: delta encoding, gauges, lazy series
// ---------------------------------------------------------------------

TEST(TelemetrySampler, DeltaEncodingRoundTripsThroughReconstruct) {
  std::uint64_t counter = 0;
  Sampler s(10);
  s.add_counter("ctr", [&] { return counter; });

  counter = 5;
  s.snapshot(10);
  counter = 5;  // idle window: delta 0
  s.snapshot(20);
  counter = 42;
  s.snapshot(30);
  s.finish(30);  // already snapshotted at 30: no extra window

  const Timeline& tl = s.timeline();
  ASSERT_EQ(tl.num_windows(), 3u);
  EXPECT_EQ(tl.sample_cycles, (std::vector<sim::Cycle>{10, 20, 30}));

  const Series* ctr = tl.find("ctr");
  ASSERT_NE(ctr, nullptr);
  EXPECT_TRUE(ctr->cumulative);
  // Stored form is per-window deltas...
  EXPECT_EQ(ctr->values, (std::vector<std::uint64_t>{5, 0, 37}));
  // ...and reconstruct() prefix-sums back to the absolute values.
  EXPECT_EQ(tl.reconstruct(*ctr), (std::vector<std::uint64_t>{5, 5, 42}));
}

TEST(TelemetrySampler, GaugeStoresSampledAbsolutes) {
  std::uint64_t depth = 0;
  Sampler s(8);
  s.add_gauge("depth", [&] { return depth; });

  depth = 7;
  s.snapshot(8);
  depth = 3;
  s.snapshot(16);
  s.finish(16);

  const Series* g = s.timeline().find("depth");
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->cumulative);
  EXPECT_EQ(g->values, (std::vector<std::uint64_t>{7, 3}));
  // Gauges reconstruct verbatim (no prefix sum).
  EXPECT_EQ(s.timeline().reconstruct(*g), g->values);
}

TEST(TelemetrySampler, LazilyCreatedCounterGetsFirstWindowOffset) {
  sim::StatSet stats;
  stats.inc("early");
  Sampler s(10);
  s.add_stats("", stats);

  s.snapshot(10);
  // A counter born after the first snapshot must not shift the grid:
  // its series starts at the window it first appears in and earlier
  // windows reconstruct as zero.
  stats.inc("late");
  stats.inc("late");
  s.snapshot(20);
  s.finish(20);

  const Timeline& tl = s.timeline();
  const Series* late = tl.find("late");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->first_window, 1u);
  EXPECT_EQ(late->values, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(tl.reconstruct(*late), (std::vector<std::uint64_t>{0, 2}));

  const Series* early = tl.find("early");
  ASSERT_NE(early, nullptr);
  EXPECT_EQ(early->first_window, 0u);
  EXPECT_EQ(tl.reconstruct(*early), (std::vector<std::uint64_t>{1, 1}));
}

TEST(TelemetrySampler, AccumulatorsExportCountAndSumSeries) {
  sim::StatSet stats;
  stats.accumulator("lat").add(4.0);
  stats.accumulator("lat").add(6.0);
  Sampler s(10);
  s.add_stats("", stats);
  s.snapshot(10);
  s.finish(10);

  const Series* cnt = s.timeline().find("lat.count");
  const Series* sum = s.timeline().find("lat.sum");
  ASSERT_NE(cnt, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(cnt->values, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(sum->values, (std::vector<std::uint64_t>{10}));
}

TEST(TelemetrySampler, FinishIsIdempotentAndCapturesTailWindow) {
  std::uint64_t counter = 0;
  Sampler s(100);
  s.add_counter("ctr", [&] { return counter; });
  counter = 9;
  s.snapshot(100);
  counter = 12;
  s.finish(142);  // partial tail window (100, 142]
  counter = 99;
  s.finish(500);  // idempotent: must not add another window

  const Timeline& tl = s.timeline();
  ASSERT_EQ(tl.num_windows(), 2u);
  EXPECT_EQ(tl.sample_cycles.back(), 142u);
  EXPECT_EQ(tl.window_cycles(1), 42u);
  EXPECT_EQ(tl.find("ctr")->values, (std::vector<std::uint64_t>{9, 3}));
}

// ---------------------------------------------------------------------
// Whole-run behavior through the workload engine
// ---------------------------------------------------------------------

TEST(TelemetryRun, SampledRunsAreDeterministicAcrossReruns) {
  const workload::RunResult a =
      workload::run_by_name("uniform", small_uniform(64));
  const workload::RunResult b =
      workload::run_by_name("uniform", small_uniform(64));
  ASSERT_FALSE(a.timeline.empty());
  EXPECT_EQ(a.timeline, b.timeline);  // bit-identical: cycles and series
  EXPECT_EQ(a.timeline.sample_every, 64u);
}

TEST(TelemetryRun, DisabledSamplingPerturbsNothing) {
  // Sampling must not change simulation behavior, and a disabled
  // sampler must not touch the kernel at all: cycle count and the
  // scheduler's wake/commit pressure counters are identical with
  // sampling off and on (the hook is cycle-driven, not wake-driven).
  const workload::RunResult off =
      workload::run_by_name("uniform", small_uniform(0));
  const workload::RunResult on =
      workload::run_by_name("uniform", small_uniform(64));
  EXPECT_TRUE(off.timeline.empty());
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(off.flits_delivered, on.flits_delivered);
  for (const char* key : {"sched.wake_requests", "sched.wakes_deduped",
                          "sched.active_cycles"}) {
    EXPECT_EQ(off.stats.get(key), on.stats.get(key)) << key;
  }
  EXPECT_GT(off.stats.get("sched.wake_requests"), 0u);
}

TEST(TelemetryRun, TimelineDeltasSumToFinalCounters) {
  const workload::RunResult r =
      workload::run_by_name("uniform", small_uniform(64));
  ASSERT_FALSE(r.timeline.empty());
  // The delivered-flit series must account for every delivery the
  // end-of-run scalar reports, and the sched.* series must match the
  // aggregate pressure counters: nothing escapes between windows.
  const Series* delivered = r.timeline.find("noc.flits_delivered");
  ASSERT_NE(delivered, nullptr);
  std::uint64_t total = 0;
  for (std::uint64_t d : delivered->values) total += d;
  EXPECT_EQ(total, r.flits_delivered);

  const Series* wakes = r.timeline.find("sched.wake_requests");
  ASSERT_NE(wakes, nullptr);
  EXPECT_EQ(r.timeline.reconstruct(*wakes).back(),
            r.stats.get("sched.wake_requests"));
}

TEST(TelemetryRun, CommitDedupAbsorbsSameCycleRearms) {
  // Satellite: the Fifo epoch-stamp dedup. Multi-flit pushes into the
  // same queue in one cycle used to enter the commit list repeatedly;
  // now duplicates are counted instead of queued.  The commit counters
  // are kernel-dependent (a sharded run's split boundary links arm
  // their TX and RX halves separately), so they live on the timeline,
  // not in the cross-kernel-comparable run stats.
  workload::RunRequest req = small_uniform(64);
  req.synthetic->injection_rate = 0.6;  // busy queues => same-cycle re-arms
  const workload::RunResult r = workload::run_by_name("uniform", req);
  const Series* pushes = r.timeline.find("sched.commit_pushes");
  const Series* dedup = r.timeline.find("sched.commits_deduped");
  ASSERT_NE(pushes, nullptr);
  ASSERT_NE(dedup, nullptr);
  EXPECT_GT(r.timeline.reconstruct(*pushes).back(), 0u);
  EXPECT_GT(r.timeline.reconstruct(*dedup).back(), 0u);
}

TEST(TelemetryRun, PerRouterDeliveredCountersExist) {
  const workload::RunResult r =
      workload::run_by_name("uniform", small_uniform(64));
  // 4x4 default fabric: every router owns a heatmap series.
  std::uint64_t sum = 0;
  for (int id = 0; id < 16; ++id) {
    const Series* s =
        r.timeline.find("noc.router." + std::to_string(id) + ".delivered");
    if (s == nullptr) continue;  // routers that never ejected stay absent
    for (std::uint64_t v : s->values) sum += v;
  }
  EXPECT_EQ(sum, r.flits_delivered);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// Structural JSON check (same pattern as test_trace_xform): every
/// brace/bracket balances and never goes negative outside strings.
void expect_balanced_json(const std::string& text) {
  int brace = 0;
  int bracket = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    ASSERT_GE(brace, 0);
    ASSERT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
  EXPECT_FALSE(in_string);
}

workload::TimelineMeta meta_for(const workload::RunResult& r) {
  workload::TimelineMeta meta;
  meta.workload = "uniform";
  meta.seed = 1;
  meta.noc_width = 4;
  meta.noc_height = 4;
  meta.measurement = r.measurement;
  return meta;
}

TEST(TelemetryExport, TimelineJsonIsBalancedAndSelfDescribing) {
  const workload::RunResult r =
      workload::run_by_name("uniform", small_uniform(64));
  const std::string json =
      workload::format_timeline_json(r.timeline, meta_for(r));
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\": \"medea-timeline-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"sample_every\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"heatmaps\""), std::string::npos);
  // Router series are folded into heatmaps, not emitted individually.
  EXPECT_EQ(json.find("\"noc.router.0.delivered\""), std::string::npos);
}

TEST(TelemetryExport, CsvHasOneRowPerWindow) {
  const workload::RunResult r =
      workload::run_by_name("uniform", small_uniform(64));
  const std::string csv = workload::format_timeline_csv(r.timeline);
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, r.timeline.num_windows() + 1);  // header + windows
  EXPECT_EQ(csv.rfind("window,cycle_end,window_cycles", 0), 0u);
}

TEST(TelemetryExport, ChromeTraceIsBalancedAndCarriesBothDomains) {
  const workload::RunResult r =
      workload::run_by_name("uniform", small_uniform(64));
  std::vector<telemetry::HostSpan> spans;
  spans.push_back({"run uniform", "sim", 10, 500, 0});
  const std::string trace =
      workload::format_chrome_trace(r.timeline, meta_for(r), spans);
  expect_balanced_json(trace);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"medea-chrome-trace-v1\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"M\""), std::string::npos);  // metadata
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);  // spans
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);  // counters
  EXPECT_NE(trace.find("\"run uniform\""), std::string::npos);  // host span
}

TEST(TelemetryExport, SummaryExportsTimelinePrefixedScalars) {
  const workload::RunResult r =
      workload::run_by_name("uniform", small_uniform(64));
  const std::map<std::string, double> s =
      workload::timeline_summary(r.timeline);
  ASSERT_FALSE(s.empty());
  for (const auto& [key, value] : s) {
    EXPECT_EQ(key.rfind("timeline_", 0), 0u) << key;
    (void)value;
  }
  ASSERT_TRUE(s.count("timeline_windows"));
  EXPECT_EQ(s.at("timeline_windows"),
            static_cast<double>(r.timeline.num_windows()));
  ASSERT_TRUE(s.count("timeline_mean_flits_per_cycle"));
  EXPECT_GT(s.at("timeline_mean_flits_per_cycle"), 0.0);
  // Empty timeline => empty summary (bench rows stay metric-free).
  EXPECT_TRUE(workload::timeline_summary(Timeline{}).empty());
}

// ---------------------------------------------------------------------
// Host-side profiling
// ---------------------------------------------------------------------

TEST(TelemetryHost, ProfileScopeRecordsOnlyWhenEnabled) {
  auto& prof = telemetry::HostProfiler::instance();
  prof.clear();
  prof.set_enabled(false);
  { telemetry::ProfileScope off("disabled-span", "test"); }
  EXPECT_TRUE(prof.spans().empty());

  prof.set_enabled(true);
  { telemetry::ProfileScope on("enabled-span", "test"); }
  prof.set_enabled(false);
  const std::vector<telemetry::HostSpan> spans = prof.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "enabled-span");
  EXPECT_EQ(spans[0].category, "test");
  prof.clear();
}

}  // namespace
}  // namespace medea
