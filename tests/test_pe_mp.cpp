/// PE tests: local scratchpad semantics, block message-passing transfers
/// (Fig. 2-b), arbiter configurations in a full system, fence/flush
/// ordering, and write-buffer behaviour.

#include <gtest/gtest.h>

#include "core/medea.h"

namespace medea::pe {
namespace {

core::MedeaConfig cfg_n(int cores) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = cores;
  return cfg;
}

// ---------------------------------------------------------------------
// Scratchpad (core-local data RAM)
// ---------------------------------------------------------------------

TEST(Scratchpad, SingleCycleLoadsAndStores) {
  core::MedeaSystem sys(cfg_n(1));
  const mem::Addr sp = sys.memory_map().scratchpad_base();
  sim::Cycle store_cost = 0, load_cost = 0;
  std::uint32_t got = 0;
  auto prog = [](ProcessingElement& pe, mem::Addr a, sim::Cycle* sc,
                 sim::Cycle* lc, std::uint32_t* out) -> sim::Task<> {
    sim::Cycle t = pe.now();
    co_await pe.store(a, 777);
    *sc = pe.now() - t;
    t = pe.now();
    auto v = co_await pe.load(a);
    *lc = pe.now() - t;
    *out = static_cast<std::uint32_t>(v.value);
  };
  sys.set_program(0, prog(sys.core(0), sp, &store_cost, &load_cost, &got));
  sys.run();
  EXPECT_EQ(store_cost, 1u);
  EXPECT_EQ(load_cost, 1u);
  EXPECT_EQ(got, 777u);
}

TEST(Scratchpad, NeverTouchesCacheOrNoc) {
  core::MedeaSystem sys(cfg_n(1));
  const mem::Addr sp = sys.memory_map().scratchpad_base();
  auto prog = [](ProcessingElement& pe, mem::Addr a) -> sim::Task<> {
    for (int i = 0; i < 32; ++i) {
      co_await pe.store_double(a + static_cast<mem::Addr>(i) * 8, 1.5 * i);
      co_await pe.load_double(a + static_cast<mem::Addr>(i) * 8);
    }
  };
  sys.set_program(0, prog(sys.core(0), sp));
  sys.run();
  const auto& cs = sys.core(0).cache().stats();
  EXPECT_EQ(cs.get("cache.read_hits") + cs.get("cache.read_misses"), 0u);
  EXPECT_EQ(sys.mpmmu().stats().get("mpmmu.transactions"), 0u);
}

TEST(Scratchpad, BackdoorAndSimulatedAccessAgree) {
  core::MedeaSystem sys(cfg_n(1));
  const mem::Addr sp = sys.memory_map().scratchpad_base() + 0x40;
  sys.core(0).scratch_write_double(sp, 2.25);
  double got = 0;
  auto prog = [](ProcessingElement& pe, mem::Addr a,
                 double* out) -> sim::Task<> {
    auto v = co_await pe.load_double(a);
    *out = mem::make_double(static_cast<std::uint32_t>(v.value),
                            static_cast<std::uint32_t>(v.value >> 32));
  };
  sys.set_program(0, prog(sys.core(0), sp, &got));
  sys.run();
  EXPECT_DOUBLE_EQ(got, 2.25);
  EXPECT_DOUBLE_EQ(sys.core(0).scratch_read_double(sp), 2.25);
}

TEST(Scratchpad, PerCoreIsolation) {
  core::MedeaSystem sys(cfg_n(2));
  const mem::Addr sp = sys.memory_map().scratchpad_base();
  sys.core(0).scratch_write_word(sp, 111);
  sys.core(1).scratch_write_word(sp, 222);
  EXPECT_EQ(sys.core(0).scratch_read_word(sp), 111u);
  EXPECT_EQ(sys.core(1).scratch_read_word(sp), 222u);
}

// ---------------------------------------------------------------------
// Block message passing (Fig. 2-b landing)
// ---------------------------------------------------------------------

TEST(MpBlock, StreamsMemoryToScratchpad) {
  core::MedeaSystem sys(cfg_n(2));
  const int n_words = 24;
  const mem::Addr src_buf = sys.private_addr(0, 0x100);
  const mem::Addr dst_sp = sys.memory_map().scratchpad_base();
  for (int i = 0; i < n_words; ++i) {
    sys.memory().write_word(src_buf + static_cast<mem::Addr>(i) * 4,
                            static_cast<std::uint32_t>(1000 + i));
  }
  auto sender = [](ProcessingElement& pe, int dst, mem::Addr a,
                   int n) -> sim::Task<> {
    co_await pe.mp_send_block(dst, a, n);
  };
  auto receiver = [](ProcessingElement& pe, int src, mem::Addr a,
                     int n) -> sim::Task<> {
    co_await pe.mp_recv_block(src, a, n);
  };
  sys.set_program(0,
                  sender(sys.core(0), sys.node_of_rank(1), src_buf, n_words));
  sys.set_program(
      1, receiver(sys.core(1), sys.node_of_rank(0), dst_sp, n_words));
  sys.run();
  for (int i = 0; i < n_words; ++i) {
    EXPECT_EQ(sys.core(1).scratch_read_word(dst_sp +
                                            static_cast<mem::Addr>(i) * 4),
              static_cast<std::uint32_t>(1000 + i))
        << "word " << i;
  }
}

TEST(MpBlock, ScratchpadToScratchpadTransfer) {
  core::MedeaSystem sys(cfg_n(2));
  const mem::Addr sp = sys.memory_map().scratchpad_base();
  for (int i = 0; i < 8; ++i) {
    sys.core(0).scratch_write_word(sp + static_cast<mem::Addr>(i) * 4,
                                   static_cast<std::uint32_t>(i * i));
  }
  auto sender = [](ProcessingElement& pe, int dst, mem::Addr a) -> sim::Task<> {
    co_await pe.mp_send_block(dst, a, 8);
  };
  auto receiver = [](ProcessingElement& pe, int src,
                     mem::Addr a) -> sim::Task<> {
    co_await pe.mp_recv_block(src, a, 8);
  };
  sys.set_program(0, sender(sys.core(0), sys.node_of_rank(1), sp));
  sys.set_program(1, receiver(sys.core(1), sys.node_of_rank(0), sp));
  sys.run();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sys.core(1).scratch_read_word(sp + static_cast<mem::Addr>(i) * 4),
              static_cast<std::uint32_t>(i * i));
  }
}

TEST(MpBlock, ThroughputNearOneFlitPerCycle) {
  core::MedeaSystem sys(cfg_n(2));
  const int n_words = 64;
  const mem::Addr sp = sys.memory_map().scratchpad_base();
  sim::Cycle send_cost = 0;
  auto sender = [](ProcessingElement& pe, int dst, mem::Addr a, int n,
                   sim::Cycle* cost) -> sim::Task<> {
    co_await pe.compute(1);
    const sim::Cycle t = pe.now();
    co_await pe.mp_send_block(dst, a, n);
    *cost = pe.now() - t;
  };
  auto receiver = [](ProcessingElement& pe, int src, mem::Addr a,
                     int n) -> sim::Task<> {
    co_await pe.mp_recv_block(src, a, n);
  };
  sys.set_program(0, sender(sys.core(0), sys.node_of_rank(1), sp, n_words,
                            &send_cost));
  sys.set_program(1, receiver(sys.core(1), sys.node_of_rank(0), sp, n_words));
  sys.run();
  // 64 flits at best 1/cycle; allow credit-return latency overhead but
  // demand the paper's near-streaming behaviour (not per-word round trips).
  EXPECT_GE(send_cost, static_cast<sim::Cycle>(n_words));
  EXPECT_LE(send_cost, static_cast<sim::Cycle>(n_words) * 3);
}

TEST(MpBlock, RecvIntoNonScratchpadThrows) {
  core::MedeaSystem sys(cfg_n(2));
  auto sender = [](ProcessingElement& pe, int dst, mem::Addr a) -> sim::Task<> {
    co_await pe.mp_send_block(dst, a, 4);
  };
  auto receiver = [](ProcessingElement& pe, int src,
                     mem::Addr a) -> sim::Task<> {
    co_await pe.mp_recv_block(src, a, 4);  // private addr: must throw
  };
  sys.set_program(0, sender(sys.core(0), sys.node_of_rank(1),
                            sys.private_addr(0, 0)));
  sys.set_program(1, receiver(sys.core(1), sys.node_of_rank(0),
                              sys.private_addr(1, 0)));
  EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(MpBlock, ColdSourceLinesAreFilledThenStreamed) {
  // mp_send_block from private memory that is NOT in L1: the stream must
  // stall for fills but still deliver correct data.
  core::MedeaSystem sys(cfg_n(2));
  const mem::Addr src_buf = sys.private_addr(0, 0x200);
  const mem::Addr sp = sys.memory_map().scratchpad_base();
  for (int i = 0; i < 16; ++i) {
    sys.memory().write_word(src_buf + static_cast<mem::Addr>(i) * 4,
                            static_cast<std::uint32_t>(7000 + i));
  }
  auto sender = [](ProcessingElement& pe, int dst, mem::Addr a) -> sim::Task<> {
    co_await pe.mp_send_block(dst, a, 16);  // no prior warming
  };
  auto receiver = [](ProcessingElement& pe, int src,
                     mem::Addr a) -> sim::Task<> {
    co_await pe.mp_recv_block(src, a, 16);
  };
  sys.set_program(0, sender(sys.core(0), sys.node_of_rank(1), src_buf));
  sys.set_program(1, receiver(sys.core(1), sys.node_of_rank(0), sp));
  sys.run();
  EXPECT_EQ(sys.core(0).stats().get("pe.fills_requested"), 4u);  // 4 lines
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(sys.core(1).scratch_read_word(sp + static_cast<mem::Addr>(i) * 4),
              static_cast<std::uint32_t>(7000 + i));
  }
}

// ---------------------------------------------------------------------
// Arbiter configurations in a live system
// ---------------------------------------------------------------------

class ArbiterSystem : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(ArbiterSystem, MixedTrafficCompletesCorrectly) {
  core::MedeaConfig cfg = cfg_n(2);
  cfg.arbiter.kind = GetParam();
  core::MedeaSystem sys(cfg);
  // Each core interleaves shared-memory misses and MP messages so both
  // interfaces contend for the one injection port.
  std::uint32_t got = 0;
  auto prog_a = [](ProcessingElement& pe, core::MedeaSystem& s,
                   int peer) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await pe.store(s.private_addr(0, static_cast<std::uint32_t>(i) * 64),
                        static_cast<std::uint32_t>(i));
      std::vector<std::uint32_t> msg(1, static_cast<std::uint32_t>(i));
      co_await pe.mp_send(peer, std::move(msg));
    }
  };
  auto prog_b = [](ProcessingElement& pe, core::MedeaSystem& s, int peer,
                   std::uint32_t* sum) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      auto m = co_await pe.mp_recv(peer);
      *sum += m.words[0];
      co_await pe.load(s.private_addr(1, static_cast<std::uint32_t>(i) * 64));
    }
  };
  sys.set_program(0, prog_a(sys.core(0), sys, sys.node_of_rank(1)));
  sys.set_program(1, prog_b(sys.core(1), sys, sys.node_of_rank(0), &got));
  sys.run();
  EXPECT_EQ(got, 45u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ArbiterSystem,
                         ::testing::Values(ArbiterKind::kMux,
                                           ArbiterKind::kSingleFifo,
                                           ArbiterKind::kDualFifo),
                         [](const ::testing::TestParamInfo<ArbiterKind>& i) {
                           switch (i.param) {
                             case ArbiterKind::kMux: return "mux";
                             case ArbiterKind::kSingleFifo: return "single";
                             case ArbiterKind::kDualFifo: return "dual";
                           }
                           return "x";
                         });

// ---------------------------------------------------------------------
// Ordering guarantees
// ---------------------------------------------------------------------

TEST(Ordering, FlushCompletesOnlyAfterMemoryAck) {
  // flush_line must not retire before the MPMMU acknowledged the
  // writeback — the §II-C flush-before-unlock discipline depends on it.
  core::MedeaSystem sys(cfg_n(1));
  const mem::Addr a = sys.alloc_shared(64, 16);
  sim::Cycle flush_cost = 0;
  auto prog = [](ProcessingElement& pe, mem::Addr addr,
                 sim::Cycle* cost) -> sim::Task<> {
    co_await pe.store(addr, 5);
    const sim::Cycle t = pe.now();
    co_await pe.flush_line(addr);
    *cost = pe.now() - t;
  };
  sys.set_program(0, prog(sys.core(0), a, &flush_cost));
  sys.run();
  // Block-write handshake over the NoC: far more than a local operation.
  EXPECT_GT(flush_cost, 30u);
  EXPECT_EQ(sys.coherent_read_word(a), 5u);
}

TEST(Ordering, FlushOfCleanLineIsLocal) {
  core::MedeaSystem sys(cfg_n(1));
  const mem::Addr a = sys.private_addr(0, 0x40);
  sim::Cycle flush_cost = 0;
  auto prog = [](ProcessingElement& pe, mem::Addr addr,
                 sim::Cycle* cost) -> sim::Task<> {
    co_await pe.load(addr);  // clean line
    const sim::Cycle t = pe.now();
    co_await pe.flush_line(addr);
    *cost = pe.now() - t;
  };
  sys.set_program(0, prog(sys.core(0), a, &flush_cost));
  sys.run();
  EXPECT_EQ(flush_cost, 1u);
}

TEST(Ordering, FenceWaitsForWriteBuffer) {
  core::MedeaConfig cfg = cfg_n(1);
  cfg.l1.policy = mem::WritePolicy::kWriteThrough;
  core::MedeaSystem sys(cfg);
  sim::Cycle fence_cost = 0;
  auto prog = [](ProcessingElement& pe, core::MedeaSystem& s,
                 sim::Cycle* cost) -> sim::Task<> {
    for (int i = 0; i < 4; ++i) {
      co_await pe.store(s.private_addr(0, static_cast<std::uint32_t>(i) * 4),
                        1u);
    }
    const sim::Cycle t = pe.now();
    co_await pe.fence();
    *cost = pe.now() - t;
  };
  sys.set_program(0, prog(sys.core(0), sys, &fence_cost));
  sys.run();
  EXPECT_GT(fence_cost, 20u) << "4 write-through stores must drain first";
}

TEST(Ordering, WriteBufferStallsWhenFull) {
  core::MedeaConfig cfg = cfg_n(1);
  cfg.l1.policy = mem::WritePolicy::kWriteThrough;
  core::MedeaSystem sys(cfg);
  auto prog = [](ProcessingElement& pe, core::MedeaSystem& s) -> sim::Task<> {
    for (int i = 0; i < 32; ++i) {
      co_await pe.store(s.private_addr(0, static_cast<std::uint32_t>(i) * 4),
                        1u);
    }
    co_await pe.fence();
  };
  sys.set_program(0, prog(sys.core(0), sys));
  sys.run();
  EXPECT_GT(sys.core(0).stats().get("pe.write_buffer_stalls"), 0u)
      << "back-to-back WT stores must hit the write-buffer limit";
}

}  // namespace
}  // namespace medea::pe
