/// Unit tests for the shared benchmark harness (bench/harness.h):
/// summary statistics, measurement mechanics, and the BENCH_*.json shape.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "harness.h"

namespace medea::bench {
namespace {

// ---------------------------------------------------------------------
// median
// ---------------------------------------------------------------------

TEST(Median, EmptyIsZero) { EXPECT_EQ(median({}), 0.0); }

TEST(Median, SingleElement) { EXPECT_EQ(median({7.5}), 7.5); }

TEST(Median, OddCountPicksMiddle) {
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({9.0, 1.0, 5.0, 3.0, 7.0}), 5.0);
}

TEST(Median, EvenCountAveragesMiddlePair) {
  EXPECT_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_EQ(median({4.0, 1.0}), 2.5);
}

TEST(Median, UnsortedInputAndDuplicates) {
  EXPECT_EQ(median({5.0, 5.0, 1.0, 5.0}), 5.0);
  EXPECT_EQ(median({-3.0, 0.0, 3.0, -1.0, 1.0}), 0.0);
}

TEST(Median, RobustToOutliers) {
  // The whole point of using the median across repetitions: one slow
  // rep (page fault, scheduler hiccup) must not move the summary.
  EXPECT_EQ(median({10.0, 10.0, 10.0, 10.0, 5000.0}), 10.0);
}

// ---------------------------------------------------------------------
// mean / stddev
// ---------------------------------------------------------------------

TEST(Mean, Basics) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(mean({4.0}), 4.0);
  EXPECT_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stddev, FewerThanTwoPointsIsZero) {
  EXPECT_EQ(stddev({}), 0.0);
  EXPECT_EQ(stddev({42.0}), 0.0);
}

TEST(Stddev, ConstantSeriesIsZero) {
  EXPECT_EQ(stddev({3.0, 3.0, 3.0, 3.0}), 0.0);
}

TEST(Stddev, SampleDenominator) {
  // {2, 4}: mean 3, sum of squared deviations 2, n-1 = 1 => sqrt(2).
  EXPECT_NEAR(stddev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
  // {2, 4, 4, 4, 5, 5, 7, 9}: classic example, sample stddev ~2.138.
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
}

// ---------------------------------------------------------------------
// run_case
// ---------------------------------------------------------------------

TEST(RunCase, InvokesWarmupPlusRepetitions) {
  RunOptions opt;
  opt.warmup = 2;
  opt.repetitions = 5;
  int calls = 0;
  const auto m = run_case("case", "cfg", opt, [&] {
    ++calls;
    return std::uint64_t{100};
  });
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(m.repetitions, 5);
  EXPECT_EQ(m.cycles, 100.0);
  EXPECT_EQ(m.name, "case");
  EXPECT_EQ(m.config, "cfg");
  EXPECT_GT(m.wall_ns, 0.0);
  EXPECT_GT(m.sim_speed, 0.0);
}

TEST(RunCase, ZeroRepetitionsClampedToOne) {
  RunOptions opt;
  opt.warmup = 0;
  opt.repetitions = 0;
  int calls = 0;
  const auto m = run_case("c", "", opt, [&] {
    ++calls;
    return std::uint64_t{0};
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(m.repetitions, 1);
}

TEST(RunCase, MedianCyclesAcrossReps) {
  RunOptions opt;
  opt.warmup = 0;
  opt.repetitions = 3;
  std::uint64_t next = 0;
  const auto m = run_case("c", "", opt, [&] {
    static const std::uint64_t cycles[] = {10, 1000, 20};
    return cycles[next++];
  });
  EXPECT_EQ(m.cycles, 20.0);  // median of {10, 1000, 20}
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NumbersAreFiniteOrNull) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, IntegralValuesKeepFullPrecision) {
  // Simulated cycle counts are deterministic integers; the archived
  // JSON must preserve them exactly for PR-over-PR comparison.
  EXPECT_EQ(json_number(1161323.0), "1161323");
  EXPECT_EQ(json_number(5e8), "500000000");
  EXPECT_EQ(json_number(9007199254740991.0), "9007199254740991");
  // Non-integral values round-trip (%.17g), never truncated to 6 digits.
  EXPECT_EQ(json_number(0.1), "0.10000000000000001");
}

TEST(Json, ReportShapeHasRequiredKeys) {
  Report report("shape_test");
  Measurement m;
  m.name = "case/1";
  m.config = "cores=4";
  m.cycles = 1000.0;
  m.wall_ns = 2000.0;
  m.wall_ns_stddev = 10.0;
  m.sim_speed = 5e8;
  m.repetitions = 3;
  m.metric("extra", 7.0);
  report.add(std::move(m));

  const std::string j = report.to_json();
  EXPECT_NE(j.find("\"bench\": \"shape_test\""), std::string::npos);
  EXPECT_NE(j.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"case/1\""), std::string::npos);
  EXPECT_NE(j.find("\"config\": \"cores=4\""), std::string::npos);
  EXPECT_NE(j.find("\"cycles\": 1000"), std::string::npos);
  EXPECT_NE(j.find("\"wall_ns\": 2000"), std::string::npos);
  EXPECT_NE(j.find("\"sim_speed\": 500000000"), std::string::npos);
  EXPECT_NE(j.find("\"repetitions\": 3"), std::string::npos);
  EXPECT_NE(j.find("\"extra\": 7"), std::string::npos);

  // Balanced braces/brackets and no trailing comma before a closer —
  // cheap structural validity checks without a JSON parser dependency.
  int braces = 0, brackets = 0;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = '\0';
  for (char c : j) {
    if (in_string) {
      if (escaped) {
        escaped = false;  // the char after a backslash is always literal
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if ((c == '}' || c == ']') && prev_significant == ',') {
      ADD_FAILURE() << "trailing comma before closer in: " << j;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev_significant = c;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Json, EmptyReportStillValid) {
  Report report("empty");
  const std::string j = report.to_json();
  EXPECT_NE(j.find("\"cases\": ["), std::string::npos);
  EXPECT_EQ(j.find("null,"), std::string::npos);
}

TEST(Report, ParsesHarnessFlags) {
  const char* argv_c[] = {"bench_x", "--reps=9", "--warmup=3",
                          "--json-dir=/tmp"};
  Report report("flags", 4, const_cast<char**>(argv_c));
  EXPECT_EQ(report.options().repetitions, 9);
  EXPECT_EQ(report.options().warmup, 3);
}

}  // namespace
}  // namespace medea::bench
