/// Direct unit tests of the pif2NoC bridge FSM: Fig. 4 protocol order,
/// the 4-entry reorder buffer, transaction queueing, and error paths.
/// The bridge is driven against a scripted "fake MPMMU" on a real NoC.

#include <gtest/gtest.h>

#include <deque>

#include "noc/network.h"
#include "pe/bridge.h"

namespace medea::pe {
namespace {

using noc::Flit;
using noc::FlitSubType;
using noc::FlitType;

/// Drives the bridge clock and a scripted remote endpoint at the MPMMU
/// node that logs requests and plays back canned replies.
class BridgeHarness : public sim::Component {
 public:
  BridgeHarness(sim::Scheduler& s, noc::Network& net, int self, int mpmmu)
      : sim::Component(s, "harness"),
        bridge(net, self, mpmmu, BridgeConfig{}, stats),
        net_(net),
        self_(self),
        mpmmu_(mpmmu) {
    net.eject(self).set_consumer(this);
    net.eject(mpmmu).set_consumer(this);
    s.wake_at(*this, 1);
  }

  /// Script one reply flit, released once `after_seen` flits from the
  /// bridge have reached the remote node (protocol-phase gating).
  void script_reply(FlitType t, FlitSubType s, std::uint8_t seq,
                    std::uint8_t burst, std::uint32_t data,
                    std::size_t after_seen = 1) {
    replies_.push_back({make_remote_flit(t, s, seq, burst, data), after_seen});
  }

  void tick(sim::Cycle now) override {
    (void)now;
    // Remote side: absorb request flits, release scripted replies once
    // their protocol phase has been reached.
    auto& remote_ej = net_.eject(mpmmu_);
    while (!remote_ej.empty()) seen.push_back(remote_ej.pop());
    if (!replies_.empty() && seen.size() >= replies_.front().second &&
        net_.inject(mpmmu_).can_push()) {
      net_.inject(mpmmu_).push(replies_.front().first);
      replies_.pop_front();
    }
    // Local side: feed replies into the bridge.
    auto& ej = net_.eject(self_);
    while (!ej.empty()) bridge.rx(ej.pop());
    if (auto c = bridge.take_completion()) completions.push_back(*c);
    // Bridge TX toward the network.
    bridge.step_tx(out_reg_);
    if (!out_reg_.empty() && net_.inject(self_).can_push()) {
      net_.inject(self_).push(out_reg_.front());
      out_reg_.pop_front();
    }
    if (!done()) wake();
  }

  bool done() const {
    return bridge.drained() && replies_.empty() && out_reg_.empty();
  }

  sim::StatSet stats;
  Pif2NocBridge bridge;
  std::vector<Flit> seen;
  std::vector<Pif2NocBridge::Completion> completions;

 private:
  Flit make_remote_flit(FlitType t, FlitSubType s, std::uint8_t seq,
                        std::uint8_t burst, std::uint32_t data) {
    Flit f;
    f.valid = true;
    f.dst = net_.geometry().coord_of(self_);
    f.type = t;
    f.subtype = s;
    f.seq_num = seq;
    f.burst_size = burst;
    f.src_id = static_cast<std::uint8_t>(mpmmu_);
    f.data = data;
    f.uid = net_.next_flit_uid();
    return f;
  }

  noc::Network& net_;
  int self_;
  int mpmmu_;
  std::deque<std::pair<Flit, std::size_t>> replies_;
  std::deque<Flit> out_reg_;
};

struct Fx {
  Fx() : net(sched, noc::TorusGeometry(4, 4)), h(sched, net, 5, 0) {}
  sim::Scheduler sched;
  noc::Network net;
  BridgeHarness h;
};

TEST(Bridge, SingleReadEmitsAddressRequestAndCompletesOnData) {
  Fx fx;
  Pif2NocBridge::Tx tx;
  tx.type = FlitType::kSingleRead;
  tx.addr = 0x1234;
  tx.purpose = TxPurpose::kLoadUncached;
  fx.h.bridge.enqueue(tx);
  fx.h.script_reply(FlitType::kSingleRead, FlitSubType::kData, 0, 0, 0xCAFE);
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(fx.h.seen.size(), 1u);
  EXPECT_EQ(fx.h.seen[0].type, FlitType::kSingleRead);
  EXPECT_EQ(fx.h.seen[0].subtype, FlitSubType::kAddress);
  EXPECT_EQ(fx.h.seen[0].data, 0x1234u);
  ASSERT_EQ(fx.h.completions.size(), 1u);
  EXPECT_EQ(fx.h.completions[0].data[0], 0xCAFEu);
  EXPECT_EQ(fx.h.completions[0].words, 1);
}

TEST(Bridge, BlockReadReordersOutOfOrderFlits) {
  Fx fx;
  Pif2NocBridge::Tx tx;
  tx.type = FlitType::kBlockRead;
  tx.addr = 0x2000;
  tx.purpose = TxPurpose::kFill;
  fx.h.bridge.enqueue(tx);
  // Reply flits scrambled: 2, 0, 3, 1 — the reorder buffer must fix it.
  fx.h.script_reply(FlitType::kBlockRead, FlitSubType::kData, 2, 3, 102);
  fx.h.script_reply(FlitType::kBlockRead, FlitSubType::kData, 0, 3, 100);
  fx.h.script_reply(FlitType::kBlockRead, FlitSubType::kData, 3, 3, 103);
  fx.h.script_reply(FlitType::kBlockRead, FlitSubType::kData, 1, 3, 101);
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(fx.h.completions.size(), 1u);
  const auto& c = fx.h.completions[0];
  EXPECT_EQ(c.words, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.data[static_cast<std::size_t>(i)],
              static_cast<std::uint32_t>(100 + i));
  }
}

TEST(Bridge, WriteFollowsReqGrantDataAck) {
  Fx fx;
  Pif2NocBridge::Tx tx;
  tx.type = FlitType::kSingleWrite;
  tx.addr = 0x3000;
  tx.data[0] = 0xBEEF;
  tx.words = 1;
  tx.purpose = TxPurpose::kWriteThrough;
  fx.h.bridge.enqueue(tx);
  fx.h.script_reply(FlitType::kSingleWrite, FlitSubType::kAck, 0, 0, 0,
                    1);  // grant, after the request
  fx.h.script_reply(FlitType::kSingleWrite, FlitSubType::kAck, 0, 0, 0,
                    2);  // final ack, after the data flit
  ASSERT_TRUE(fx.sched.run(100000));
  // Wire order: Address request, then the data payload.
  ASSERT_EQ(fx.h.seen.size(), 2u);
  EXPECT_EQ(fx.h.seen[0].subtype, FlitSubType::kAddress);
  EXPECT_EQ(fx.h.seen[1].subtype, FlitSubType::kData);
  EXPECT_EQ(fx.h.seen[1].data, 0xBEEFu);
  ASSERT_EQ(fx.h.completions.size(), 1u);
  EXPECT_EQ(fx.h.completions[0].purpose, TxPurpose::kWriteThrough);
}

TEST(Bridge, BlockWriteStreamsFourDataFlits) {
  Fx fx;
  Pif2NocBridge::Tx tx;
  tx.type = FlitType::kBlockWrite;
  tx.addr = 0x4000;
  tx.data = {1, 2, 3, 4};
  tx.words = 4;
  tx.purpose = TxPurpose::kWriteback;
  fx.h.bridge.enqueue(tx);
  fx.h.script_reply(FlitType::kBlockWrite, FlitSubType::kAck, 0, 0, 0, 1);
  fx.h.script_reply(FlitType::kBlockWrite, FlitSubType::kAck, 0, 0, 0, 5);
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(fx.h.seen.size(), 5u);  // 1 request + 4 data
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(fx.h.seen[static_cast<std::size_t>(i)].subtype,
              FlitSubType::kData);
    EXPECT_EQ(fx.h.seen[static_cast<std::size_t>(i)].seq_num, i - 1);
    EXPECT_EQ(fx.h.seen[static_cast<std::size_t>(i)].burst_size, 3);
  }
}

TEST(Bridge, TransactionsRunStrictlyInOrder) {
  Fx fx;
  Pif2NocBridge::Tx a;
  a.type = FlitType::kSingleRead;
  a.addr = 0xA0;
  a.purpose = TxPurpose::kLoadUncached;
  Pif2NocBridge::Tx b;
  b.type = FlitType::kSingleRead;
  b.addr = 0xB0;
  b.purpose = TxPurpose::kLoadUncached;
  const auto id_a = fx.h.bridge.enqueue(a);
  const auto id_b = fx.h.bridge.enqueue(b);
  EXPECT_LT(id_a, id_b);
  fx.h.script_reply(FlitType::kSingleRead, FlitSubType::kData, 0, 0, 1, 1);
  fx.h.script_reply(FlitType::kSingleRead, FlitSubType::kData, 0, 0, 2, 2);
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(fx.h.seen.size(), 2u);
  EXPECT_EQ(fx.h.seen[0].data, 0xA0u);  // A's request left first
  EXPECT_EQ(fx.h.seen[1].data, 0xB0u);
  ASSERT_EQ(fx.h.completions.size(), 2u);
  EXPECT_EQ(fx.h.completions[0].id, id_a);
  EXPECT_EQ(fx.h.completions[1].id, id_b);
}

TEST(Bridge, QueueDepthEnforced) {
  Fx fx;
  Pif2NocBridge::Tx t;
  t.type = FlitType::kSingleRead;
  t.purpose = TxPurpose::kLoadUncached;
  EXPECT_TRUE(fx.h.bridge.can_enqueue());
  fx.h.bridge.enqueue(t);
  fx.h.bridge.enqueue(t);  // default depth 2
  EXPECT_FALSE(fx.h.bridge.can_enqueue());
}

TEST(Bridge, LockRequestWaitsForAck) {
  Fx fx;
  Pif2NocBridge::Tx t;
  t.type = FlitType::kLock;
  t.addr = 0x70;
  t.purpose = TxPurpose::kLock;
  fx.h.bridge.enqueue(t);
  fx.h.script_reply(FlitType::kLock, FlitSubType::kAck, 0, 0, 0x70);
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(fx.h.completions.size(), 1u);
  EXPECT_EQ(fx.h.completions[0].purpose, TxPurpose::kLock);
}

TEST(Bridge, NackThrows) {
  Fx fx;
  Pif2NocBridge::Tx t;
  t.type = FlitType::kUnlock;
  t.addr = 0x70;
  t.purpose = TxPurpose::kUnlock;
  fx.h.bridge.enqueue(t);
  fx.h.script_reply(FlitType::kUnlock, FlitSubType::kNack, 0, 0, 0);
  EXPECT_THROW(fx.sched.run(100000), std::runtime_error);
}

TEST(Bridge, ReplyWithoutTransactionThrows) {
  Fx fx;
  // A stray reply with no transaction in flight is a protocol violation.
  noc::Flit stray;
  stray.type = FlitType::kSingleRead;
  stray.subtype = FlitSubType::kData;
  EXPECT_THROW(fx.h.bridge.rx(stray), std::runtime_error);
}

}  // namespace
}  // namespace medea::pe
