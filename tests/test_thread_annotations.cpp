// Tests for core/thread_annotations.h: the macros must vanish entirely
// on non-clang compilers (a gcc -Werror build would otherwise trip over
// unknown attributes), the Capability token must stay a zero-cost empty
// type everywhere, and annotated code must run unchanged.
//
// The *analysis* itself can only be exercised by clang (-Wthread-safety,
// the MEDEA_THREAD_SAFETY build option); CI's static-analysis job builds
// the whole tree that way.  What this test pins down is the contract
// that lets the annotations ride along in every other build.

#include "core/thread_annotations.h"

#include <deque>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "sim/domain.h"
#include "sim/fifo.h"

namespace {

// Expand-then-stringify: MEDEA_TA_STR(MEDEA_GUARDED_BY(x)) is "" iff
// the macro expanded to nothing.
#define MEDEA_TA_STR_IMPL(...) #__VA_ARGS__
#define MEDEA_TA_STR(...) MEDEA_TA_STR_IMPL(__VA_ARGS__)

#if defined(__clang__) && !defined(MEDEA_NO_THREAD_SAFETY_ANALYSIS_MACROS)
constexpr bool kExpectAnnotations = true;
#else
constexpr bool kExpectAnnotations = false;
#endif

TEST(ThreadAnnotations, MacrosExpandToNothingOffClang) {
  constexpr const char* kExpansions[] = {
      MEDEA_TA_STR(MEDEA_CAPABILITY("role")),
      MEDEA_TA_STR(MEDEA_SCOPED_CAPABILITY),
      MEDEA_TA_STR(MEDEA_GUARDED_BY(tok)),
      MEDEA_TA_STR(MEDEA_PT_GUARDED_BY(tok)),
      MEDEA_TA_STR(MEDEA_REQUIRES(tok)),
      MEDEA_TA_STR(MEDEA_REQUIRES_SHARED(tok)),
      MEDEA_TA_STR(MEDEA_ACQUIRE(tok)),
      MEDEA_TA_STR(MEDEA_ACQUIRE_SHARED(tok)),
      MEDEA_TA_STR(MEDEA_RELEASE(tok)),
      MEDEA_TA_STR(MEDEA_RELEASE_SHARED(tok)),
      MEDEA_TA_STR(MEDEA_RELEASE_GENERIC(tok)),
      MEDEA_TA_STR(MEDEA_EXCLUDES(tok)),
      MEDEA_TA_STR(MEDEA_ASSERT_CAPABILITY(tok)),
      MEDEA_TA_STR(MEDEA_ASSERT_SHARED_CAPABILITY(tok)),
      MEDEA_TA_STR(MEDEA_RETURN_CAPABILITY(tok)),
      MEDEA_TA_STR(MEDEA_NO_THREAD_SAFETY_ANALYSIS),
  };
  for (const char* expansion : kExpansions) {
    if (kExpectAnnotations) {
      EXPECT_STRNE(expansion, "") << "macro lost its attribute on clang";
    } else {
      EXPECT_STREQ(expansion, "") << "macro must be a no-op off clang";
    }
  }
}

TEST(ThreadAnnotations, CapabilityIsZeroCost) {
  using medea::core::Capability;
  static_assert(std::is_empty_v<Capability>,
                "the token must carry no runtime state");
  static_assert(!std::is_copy_constructible_v<Capability>,
                "a capability names an ownership domain; copying one "
                "would be meaningless");
  // Token operations are callable on a const object and do nothing.
  const Capability tok;
  tok.acquire();
  tok.release();
  tok.acquire_shared();
  tok.release_shared();
  tok.assert_held();
  tok.assert_shared();
}

// Annotated guarded state compiles and behaves normally in a plain
// (non-analysis) build: GUARDED_BY members read/write as usual.
struct GuardedCounter {
  medea::core::Capability cap;
  int value MEDEA_GUARDED_BY(cap) = 0;

  void bump() MEDEA_REQUIRES(cap) { ++value; }
};

TEST(ThreadAnnotations, AnnotatedCodeRunsUnchanged) {
  GuardedCounter c;
  c.cap.acquire();
  c.bump();
  c.bump();
  c.cap.release();
  c.cap.assert_held();  // invariant: single-threaded test body
  EXPECT_EQ(c.value, 2);
}

// The annotated kernel types must not grow: the tokens are empty and
// [[no_unique_address]]-free, so they cost at most the empty-member
// byte, which the surrounding layout absorbs in all three classes
// (checked loosely — what matters is no cache-line-scale regression).
TEST(ThreadAnnotations, AnnotatedKernelTypesStaySmall) {
  EXPECT_LE(sizeof(medea::core::Capability), 1u);
  // A Fifo gained at most padding for its token.
  EXPECT_LE(sizeof(medea::sim::Fifo<int>),
            sizeof(std::deque<int>) + sizeof(std::vector<int>) + 128);
}

// End-to-end sanity: the annotated SimDomain + Fifo still run a trivial
// wiring exactly as before (the asserts in set_consumer/push/pop/commit
// are on the hot path of every model; this catches an accidentally
// non-empty expansion faster than inspection).
TEST(ThreadAnnotations, AnnotatedFifoStillWorks) {
  medea::sim::SchedulerConfig cfg;
  medea::sim::Scheduler sched(cfg);
  medea::sim::Fifo<int> f(sched, "t", 4);
  EXPECT_TRUE(f.can_push());
  f.push(7);
  EXPECT_TRUE(f.empty());  // staged, not yet committed
  f.commit();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.front(), 7);
  EXPECT_EQ(f.pop(), 7);
}

}  // namespace
