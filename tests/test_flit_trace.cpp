/// Per-flit lifecycle tracing tests: the hop-chain invariants the
/// tracer guarantees, the determinism contract (a traced run is
/// bit-identical to an untraced one — tracing must *observe*, never
/// perturb), sampling soundness, the latency decomposition, and the
/// structure of the Perfetto flow-event rendering.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "noc/coord.h"
#include "noc/flit.h"
#include "noc/flit_tracer.h"
#include "workload/flit_report.h"
#include "workload/timeline.h"
#include "workload/workload.h"

namespace medea {
namespace {

/// Raw delivery log in true dispatch order — the strongest observable
/// for "tracing did not perturb the run".
struct DeliveryLog final : noc::FlitObserver {
  std::vector<std::tuple<sim::Cycle, int, std::uint32_t>> v;
  void on_inject(sim::Cycle, int, const noc::Flit&) override {}
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override {
    v.emplace_back(now, node, f.uid);
  }
};

/// A deliberately congested 8x8 deflection-fabric request: enough load
/// that ejection-port contention forces failed-eject deflection loops.
workload::RunRequest saturated_8x8() {
  workload::RunRequest req;
  req.machine.noc_width = 8;
  req.machine.noc_height = 8;
  req.synthetic = workload::SyntheticParams{};
  req.synthetic->injection_rate = 0.65;
  req.synthetic->flits_per_node = 300;
  req.seed = 3;
  return req;
}

workload::RunRequest traced(workload::RunRequest req,
                            std::uint32_t sample_every = 1) {
  req.flit_trace.sample_every = sample_every;
  return req;
}

void expect_runs_identical(const workload::RunResult& a,
                           const workload::RunResult& b,
                           const DeliveryLog& la, const DeliveryLog& lb,
                           const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.metric, b.metric) << what;
  EXPECT_EQ(a.flits_delivered, b.flits_delivered) << what;
  EXPECT_EQ(a.measurement, b.measurement) << what;
  EXPECT_EQ(la.v, lb.v) << what << ": delivery logs diverged";
  EXPECT_EQ(a.stats.counters(), b.stats.counters()) << what;
}

// ---------------------------------------------------------------------
// Determinism: tracing observes, never perturbs
// ---------------------------------------------------------------------

TEST(FlitTraceDeterminism, SaturatedDeflectionRunIsBitIdentical) {
  const workload::RunRequest base = saturated_8x8();
  DeliveryLog plain_log;
  const workload::RunResult plain =
      workload::run_by_name("uniform", base, &plain_log);
  DeliveryLog traced_log;
  const workload::RunResult with_trace =
      workload::run_by_name("uniform", traced(base), &traced_log);
  expect_runs_identical(plain, with_trace, plain_log, traced_log, "uniform");
  EXPECT_FALSE(plain.flit_trace.enabled());
  EXPECT_TRUE(with_trace.flit_trace.enabled());
}

TEST(FlitTraceDeterminism, XyFabricRunIsBitIdentical) {
  workload::RunRequest base = saturated_8x8();
  base.synthetic->network = "xy";
  base.synthetic->injection_rate = 0.3;
  DeliveryLog plain_log;
  const workload::RunResult plain =
      workload::run_by_name("transpose", base, &plain_log);
  DeliveryLog traced_log;
  const workload::RunResult with_trace =
      workload::run_by_name("transpose", traced(base), &traced_log);
  expect_runs_identical(plain, with_trace, plain_log, traced_log,
                        "transpose/xy");
}

TEST(FlitTraceDeterminism, AppWorkloadRunIsBitIdentical) {
  workload::RunRequest base;
  base.machine.num_compute_cores = 4;
  base.app = workload::AppParams{};
  base.app->size = 10;
  base.verify = true;
  DeliveryLog plain_log;
  const workload::RunResult plain =
      workload::run_by_name("jacobi", base, &plain_log);
  DeliveryLog traced_log;
  const workload::RunResult with_trace =
      workload::run_by_name("jacobi", traced(base), &traced_log);
  expect_runs_identical(plain, with_trace, plain_log, traced_log, "jacobi");
  EXPECT_TRUE(with_trace.verified_ok);
}

TEST(FlitTraceDeterminism, RerunsProduceEqualTraces) {
  const workload::RunRequest req = traced(saturated_8x8());
  const telemetry::FlitTrace a =
      workload::run_by_name("uniform", req).flit_trace;
  const telemetry::FlitTrace b =
      workload::run_by_name("uniform", req).flit_trace;
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// Hop-chain invariants (deflection fabric, every packet traced)
// ---------------------------------------------------------------------

class HopChainInvariants : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new workload::RunResult(
        workload::run_by_name("uniform", traced(saturated_8x8())));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  const telemetry::FlitTrace& trace() const { return result_->flit_trace; }
  static workload::RunResult* result_;
};

workload::RunResult* HopChainInvariants::result_ = nullptr;

TEST_F(HopChainInvariants, EveryInjectedPacketIsTracedAndComplete) {
  // sample_every == 1 and the run drains: every packet seen is traced,
  // every traced packet delivered.
  const telemetry::FlitTrace& ft = trace();
  EXPECT_EQ(ft.packets_seen, ft.flits.size());
  EXPECT_EQ(ft.flits.size(), result_->flits_delivered);
  for (const telemetry::TracedFlit& f : ft.flits) {
    EXPECT_TRUE(f.complete) << "uid " << f.uid;
  }
}

TEST_F(HopChainInvariants, ChainsStartAtInjectAndEndAtDelivery) {
  const telemetry::FlitTrace& ft = trace();
  for (const telemetry::TracedFlit& f : ft.flits) {
    ASSERT_GT(f.hop_count, 0u) << "uid " << f.uid;
    const telemetry::TracedHop first = ft.hop(f.first_hop);
    // The first hop leaves the source router during the inject cycle.
    EXPECT_EQ(first.cycle, f.inject_cycle) << "uid " << f.uid;
    EXPECT_EQ(first.node, f.src) << "uid " << f.uid;
    // A link takes one cycle: the flit is accepted (and ejected) by the
    // destination the cycle after its last recorded emission.
    const telemetry::TracedHop last = ft.hop(f.first_hop + f.hop_count - 1);
    EXPECT_EQ(f.deliver_cycle, last.cycle + 1) << "uid " << f.uid;
    // Source queueing can only delay injection, never reorder it.
    if (f.enqueue_cycle != sim::kNeverCycle) {
      EXPECT_LE(f.enqueue_cycle, f.inject_cycle) << "uid " << f.uid;
    }
  }
}

TEST_F(HopChainInvariants, HopCyclesAreStrictlyMonotonic) {
  const telemetry::FlitTrace& ft = trace();
  for (const telemetry::TracedFlit& f : ft.flits) {
    for (std::uint32_t i = 1; i < f.hop_count; ++i) {
      EXPECT_LT(ft.hop_cycle[f.first_hop + i - 1],
                ft.hop_cycle[f.first_hop + i])
          << "uid " << f.uid << " hop " << i;
    }
  }
}

TEST_F(HopChainInvariants, HopsFollowTorusLinks) {
  // Each recorded hop's port must lead to the next hop's router (and the
  // final hop to the destination) under the torus geometry.
  const telemetry::FlitTrace& ft = trace();
  const noc::TorusGeometry geom(ft.width, ft.height);
  for (const telemetry::TracedFlit& f : ft.flits) {
    for (std::uint32_t i = 0; i < f.hop_count; ++i) {
      const telemetry::TracedHop h = ft.hop(f.first_hop + i);
      const noc::Coord from = geom.coord_of(h.node);
      const int next = geom.node_id(
          geom.neighbor(from, static_cast<noc::Dir>(h.port)));
      const int expected = i + 1 < f.hop_count
                               ? ft.hop_node[f.first_hop + i + 1]
                               : f.dst;
      EXPECT_EQ(next, expected) << "uid " << f.uid << " hop " << i;
    }
  }
}

TEST_F(HopChainInvariants, ChainDeflectionsMatchRouterVerdicts) {
  const telemetry::FlitTrace& ft = trace();
  for (const telemetry::TracedFlit& f : ft.flits) {
    // The per-hop deflected flags must sum to the flit's own counter —
    // the router bumped both on the same port assignment.
    EXPECT_EQ(ft.chain_deflections(f), f.deflections) << "uid " << f.uid;
  }
  // ... and across all packets to the fabric's aggregate counter.
  EXPECT_EQ(ft.total_deflections(),
            result_->stats.get("noc.deflections_total"));
}

TEST_F(HopChainInvariants, LinkGridsAccountForEveryHop) {
  const telemetry::FlitTrace& ft = trace();
  const std::vector<std::uint64_t> flits_grid = ft.link_flits();
  const std::vector<std::uint64_t> defl_grid = ft.link_deflections();
  ASSERT_EQ(flits_grid.size(),
            static_cast<std::size_t>(ft.num_nodes()) * noc::kNumDirs);
  std::uint64_t total = 0, defl = 0;
  for (std::size_t i = 0; i < flits_grid.size(); ++i) {
    total += flits_grid[i];
    defl += defl_grid[i];
    EXPECT_LE(defl_grid[i], flits_grid[i]);
  }
  EXPECT_EQ(total, ft.hop_cycle.size());
  EXPECT_EQ(defl, ft.total_deflections());
}

TEST_F(HopChainInvariants, LatencyDecompositionSumsToTotal) {
  const telemetry::FlitTrace& ft = trace();
  for (const telemetry::TracedFlit& f : ft.flits) {
    const telemetry::LatencyDecomposition d = ft.decompose(f);
    const sim::Cycle end_to_end =
        f.deliver_cycle -
        (f.enqueue_cycle != sim::kNeverCycle ? f.enqueue_cycle
                                             : f.inject_cycle);
    EXPECT_EQ(d.total(), end_to_end) << "uid " << f.uid;
  }
}

TEST_F(HopChainInvariants, WorstPacketsAreSortedByLatency) {
  const telemetry::FlitTrace& ft = trace();
  const auto worst = ft.worst(16);
  ASSERT_EQ(worst.size(), 16u);
  for (std::size_t i = 1; i < worst.size(); ++i) {
    const sim::Cycle prev =
        worst[i - 1]->deliver_cycle - worst[i - 1]->inject_cycle;
    const sim::Cycle cur = worst[i]->deliver_cycle - worst[i]->inject_cycle;
    EXPECT_GE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(worst[i - 1]->uid, worst[i]->uid);
    }
  }
  // The top entry is the global maximum.
  for (const telemetry::TracedFlit& f : ft.flits) {
    EXPECT_LE(f.deliver_cycle - f.inject_cycle,
              worst[0]->deliver_cycle - worst[0]->inject_cycle);
  }
}

TEST_F(HopChainInvariants, FlitTableIsSortedByInjectThenUid) {
  const telemetry::FlitTrace& ft = trace();
  for (std::size_t i = 1; i < ft.flits.size(); ++i) {
    const auto& a = ft.flits[i - 1];
    const auto& b = ft.flits[i];
    EXPECT_TRUE(std::tie(a.inject_cycle, a.uid) <
                std::tie(b.inject_cycle, b.uid));
  }
}

TEST_F(HopChainInvariants, SaturationProducesFailedEjectLoops) {
  // The scenario the forensics exist for: at this load some packet
  // reaches its destination, fails ejection, and loops back — visible
  // as eject_wait > 0 alongside real deflections.
  const telemetry::FlitTrace& ft = trace();
  EXPECT_GT(ft.total_deflections(), 0u);
  EXPECT_GT(ft.max_deflections(), 0u);
  bool some_eject_wait = false;
  for (const telemetry::TracedFlit& f : ft.flits) {
    if (ft.decompose(f).eject_wait > 0) some_eject_wait = true;
  }
  EXPECT_TRUE(some_eject_wait);
}

// ---------------------------------------------------------------------
// XY fabric semantics
// ---------------------------------------------------------------------

TEST(FlitTraceXy, MinimalRoutingNeverDeflects) {
  workload::RunRequest req = saturated_8x8();
  req.synthetic->network = "xy";
  req.synthetic->injection_rate = 0.3;
  const workload::RunResult r =
      workload::run_by_name("transpose", traced(req));
  const telemetry::FlitTrace& ft = r.flit_trace;
  ASSERT_FALSE(ft.flits.empty());
  EXPECT_EQ(ft.total_deflections(), 0u);
  EXPECT_EQ(ft.max_deflections(), 0u);
  for (const telemetry::TracedFlit& f : ft.flits) {
    ASSERT_TRUE(f.complete);
    const telemetry::TracedHop last = ft.hop(f.first_hop + f.hop_count - 1);
    // Input buffering may hold the flit at the destination before the
    // eject port wins allocation, but never deliver it early.
    EXPECT_GE(f.deliver_cycle, last.cycle + 1) << "uid " << f.uid;
    for (std::uint32_t i = 1; i < f.hop_count; ++i) {
      EXPECT_LT(ft.hop_cycle[f.first_hop + i - 1],
                ft.hop_cycle[f.first_hop + i]);
    }
  }
}

// ---------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------

TEST(FlitTraceSampling, SampledTraceIsAnExactSubsetOfTheFullTrace) {
  const workload::RunRequest base = saturated_8x8();
  const telemetry::FlitTrace full =
      workload::run_by_name("uniform", traced(base, 1)).flit_trace;
  const telemetry::FlitTrace sampled =
      workload::run_by_name("uniform", traced(base, 4)).flit_trace;

  // Same population seen; the sampled trace keeps exactly the uids the
  // hash selects, with chains identical to the full trace's.
  EXPECT_EQ(full.packets_seen, sampled.packets_seen);
  ASSERT_FALSE(sampled.flits.empty());
  EXPECT_LT(sampled.flits.size(), full.flits.size());

  std::size_t matched = 0;
  for (const telemetry::TracedFlit& f : full.flits) {
    EXPECT_EQ(telemetry::flit_sampled(f.uid, 4),
              matched < sampled.flits.size() &&
                  sampled.flits[matched].uid == f.uid)
        << "uid " << f.uid;
    if (matched < sampled.flits.size() && sampled.flits[matched].uid == f.uid) {
      const telemetry::TracedFlit& s = sampled.flits[matched];
      EXPECT_EQ(s.inject_cycle, f.inject_cycle);
      EXPECT_EQ(s.deliver_cycle, f.deliver_cycle);
      EXPECT_EQ(s.deflections, f.deflections);
      ASSERT_EQ(s.hop_count, f.hop_count);
      for (std::uint32_t i = 0; i < f.hop_count; ++i) {
        EXPECT_EQ(sampled.hop_cycle[s.first_hop + i],
                  full.hop_cycle[f.first_hop + i]);
        EXPECT_EQ(sampled.hop_node[s.first_hop + i],
                  full.hop_node[f.first_hop + i]);
      }
      ++matched;
    }
  }
  EXPECT_EQ(matched, sampled.flits.size());
}

// ---------------------------------------------------------------------
// Exporters: Perfetto flows and the JSON/text reports
// ---------------------------------------------------------------------

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(FlitTraceExport, PerfettoFlowEventsAreStructurallySound) {
  const workload::RunResult r =
      workload::run_by_name("uniform", traced(saturated_8x8()));
  workload::TimelineMeta meta;
  meta.workload = "uniform";
  meta.noc_width = 8;
  meta.noc_height = 8;
  const int k = 5;
  const std::string doc = workload::format_chrome_trace(
      r.timeline, meta, {}, r.flit_trace, k);

  // One flow start and one flow finish per rendered packet; every
  // finish carries the enclosing-slice binding.
  EXPECT_EQ(count_of(doc, "\"ph\": \"s\""), static_cast<std::size_t>(k));
  EXPECT_EQ(count_of(doc, "\"ph\": \"f\""), static_cast<std::size_t>(k));
  EXPECT_EQ(count_of(doc, "\"bp\": \"e\""), static_cast<std::size_t>(k));
  // Steps = total hops of the worst-k minus one start per packet.
  std::size_t hops = 0;
  for (const telemetry::TracedFlit* f : r.flit_trace.worst(k)) {
    hops += f->hop_count;
  }
  EXPECT_EQ(count_of(doc, "\"ph\": \"t\""),
            hops - static_cast<std::size_t>(k));
  // Flit-cat events: residency slices (one per hop plus the final
  // destination residency) and the flow events (one per slice).
  EXPECT_EQ(count_of(doc, "\"cat\": \"flit\""),
            2 * (hops + static_cast<std::size_t>(k)));
  // The untraced overload emits no flow machinery at all.
  const std::string plain =
      workload::format_chrome_trace(r.timeline, meta, {});
  EXPECT_EQ(count_of(plain, "\"ph\": \"s\""), 0u);
  EXPECT_EQ(count_of(plain, "flit journey"), 0u);
}

TEST(FlitTraceExport, JsonAndTextReportsCarryTheHeadlineNumbers) {
  const workload::RunResult r =
      workload::run_by_name("uniform", traced(saturated_8x8()));
  workload::TimelineMeta meta;
  meta.workload = "uniform";
  const std::string json =
      workload::format_flit_trace_json(r.flit_trace, meta, 4);
  EXPECT_NE(json.find("\"schema\": \"medea-flittrace-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"packets_traced\": " +
                      std::to_string(r.flit_trace.flits.size())),
            std::string::npos);
  EXPECT_NE(json.find("\"total_deflections\": " +
                      std::to_string(r.flit_trace.total_deflections())),
            std::string::npos);
  EXPECT_EQ(count_of(json, "\"uid\":"),
            4u + 1u);  // 4 worst entries + the packets column header

  const std::string text = workload::format_worst_flits(r.flit_trace, 3);
  EXPECT_NE(text.find("worst 3 packets"), std::string::npos);
  EXPECT_NE(text.find("DEFLECTED"), std::string::npos);
}

// ---------------------------------------------------------------------
// Unit coverage for the sampling hash
// ---------------------------------------------------------------------

TEST(FlitSampled, EveryUidWhenNIsZeroOrOne) {
  for (std::uint32_t uid : {0u, 1u, 17u, 123456u}) {
    EXPECT_TRUE(telemetry::flit_sampled(uid, 0));
    EXPECT_TRUE(telemetry::flit_sampled(uid, 1));
  }
}

TEST(FlitSampled, RateIsRoughlyOneInN) {
  const std::uint32_t n = 8;
  std::size_t hits = 0;
  const std::uint32_t population = 100000;
  for (std::uint32_t uid = 0; uid < population; ++uid) {
    if (telemetry::flit_sampled(uid, n)) ++hits;
  }
  const double rate = static_cast<double>(hits) / population;
  EXPECT_NEAR(rate, 1.0 / n, 0.02);
}

}  // namespace
}  // namespace medea
