/// Integration tests for MedeaSystem: programs exercising the full stack
/// (core -> cache -> bridge -> NoC -> MPMMU -> DDR, and the TIE MP path).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/medea.h"

namespace medea {
namespace {

core::MedeaConfig small_config(int cores = 2) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = cores;
  return cfg;
}

// ---------------------------------------------------------------------
// Construction / configuration
// ---------------------------------------------------------------------

TEST(SystemConfig, ValidatesCoreCount) {
  core::MedeaConfig cfg = small_config();
  cfg.num_compute_cores = 16;  // 16 + MPMMU > 16 nodes
  EXPECT_THROW(core::MedeaSystem{cfg}, std::invalid_argument);
  cfg.num_compute_cores = 0;
  EXPECT_THROW(core::MedeaSystem{cfg}, std::invalid_argument);
}

TEST(SystemConfig, ValidatesCacheSize) {
  core::MedeaConfig cfg = small_config();
  cfg.l1.size_bytes = 3000;  // not a power of two
  EXPECT_THROW(core::MedeaSystem{cfg}, std::invalid_argument);
}

TEST(SystemConfig, LabelMatchesPaperStyle) {
  core::MedeaConfig cfg = small_config(11);
  cfg.l1.size_bytes = 16 * 1024;
  EXPECT_EQ(cfg.label(), "11P_16k$_WB");
}

TEST(SystemConfig, CoresSkipMpmmuNode) {
  core::MedeaConfig cfg = small_config(4);
  cfg.mpmmu_node = 2;
  core::MedeaSystem sys(cfg);
  EXPECT_EQ(sys.node_of_rank(0), 0);
  EXPECT_EQ(sys.node_of_rank(1), 1);
  EXPECT_EQ(sys.node_of_rank(2), 3);  // skips node 2
  EXPECT_EQ(sys.node_of_rank(3), 4);
}

// ---------------------------------------------------------------------
// Shared-memory path end to end
// ---------------------------------------------------------------------

sim::Task<> store_then_load(pe::ProcessingElement& pe, mem::Addr a,
                            std::uint32_t v, std::uint32_t* out) {
  co_await pe.store(a, v);
  auto r = co_await pe.load(a);
  *out = static_cast<std::uint32_t>(r.value);
}

TEST(System, PrivateStoreLoadRoundTrip) {
  core::MedeaConfig cfg = small_config(1);
  core::MedeaSystem sys(cfg);
  std::uint32_t got = 0;
  sys.set_program(0, store_then_load(sys.core(0), sys.private_addr(0, 0x40),
                                     0xABCD1234, &got));
  sys.run();
  EXPECT_EQ(got, 0xABCD1234u);
}

TEST(System, WriteBackDirtyDataReachesMemoryOnFlush) {
  core::MedeaConfig cfg = small_config(1);
  core::MedeaSystem sys(cfg);
  const mem::Addr a = sys.private_addr(0, 0x100);
  auto prog = [](pe::ProcessingElement& pe, mem::Addr addr) -> sim::Task<> {
    co_await pe.store(addr, 777);
    co_await pe.flush_line(addr);
  };
  sys.set_program(0, prog(sys.core(0), a));
  sys.run();
  // After an explicit flush the value must be visible behind the MPMMU
  // (possibly in its cache, hence the coherent read).
  EXPECT_EQ(sys.coherent_read_word(a), 777u);
}

TEST(System, UncachedAccessBypassesL1) {
  core::MedeaConfig cfg = small_config(1);
  core::MedeaSystem sys(cfg);
  const mem::Addr a = sys.alloc_shared(64);
  auto prog = [](pe::ProcessingElement& pe, mem::Addr addr,
                 std::uint32_t* out) -> sim::Task<> {
    co_await pe.store_uncached(addr, 31415);
    co_await pe.fence();
    auto r = co_await pe.load_uncached(addr);
    *out = static_cast<std::uint32_t>(r.value);
  };
  std::uint32_t got = 0;
  sys.set_program(0, prog(sys.core(0), a, &got));
  sys.run();
  EXPECT_EQ(got, 31415u);
  EXPECT_EQ(sys.core(0).cache().stats().get("cache.read_hits"), 0u);
  EXPECT_EQ(sys.core(0).cache().stats().get("cache.read_misses"), 0u);
}

TEST(System, DoubleLoadStoreRoundTrip) {
  core::MedeaConfig cfg = small_config(1);
  core::MedeaSystem sys(cfg);
  const mem::Addr a = sys.private_addr(0, 0x80);
  double got = 0.0;
  auto prog = [](pe::ProcessingElement& pe, mem::Addr addr,
                 double* out) -> sim::Task<> {
    co_await pe.store_double(addr, -12.75);
    auto r = co_await pe.load_double(addr);
    *out = mem::make_double(static_cast<std::uint32_t>(r.value),
                            static_cast<std::uint32_t>(r.value >> 32));
  };
  sys.set_program(0, prog(sys.core(0), a, &got));
  sys.run();
  EXPECT_DOUBLE_EQ(got, -12.75);
}

// Producer/consumer through shared memory with the paper's §II-E
// discipline: producer stores + flushes; consumer invalidates + loads.
TEST(System, SharedMemoryFlushInvalidateDiscipline) {
  core::MedeaConfig cfg = small_config(2);
  core::MedeaSystem sys(cfg);
  const mem::Addr data = sys.alloc_shared(64, 16);
  const mem::Addr flag = sys.alloc_shared(64, 16);

  auto producer = [](pe::ProcessingElement& pe, mem::Addr d,
                     mem::Addr f) -> sim::Task<> {
    co_await pe.store(d, 4242);
    co_await pe.flush_line(d);
    co_await pe.store_uncached(f, 1);  // signal
  };
  auto consumer = [](pe::ProcessingElement& pe, mem::Addr d, mem::Addr f,
                     std::uint32_t* out) -> sim::Task<> {
    for (;;) {
      auto s = co_await pe.load_uncached(f);
      if (s.value == 1) break;
      co_await pe.compute(8);
    }
    co_await pe.invalidate_line(d);
    auto r = co_await pe.load(d);
    *out = static_cast<std::uint32_t>(r.value);
  };
  std::uint32_t got = 0;
  sys.set_program(0, producer(sys.core(0), data, flag));
  sys.set_program(1, consumer(sys.core(1), data, flag, &got));
  sys.run();
  EXPECT_EQ(got, 4242u);
}

// ---------------------------------------------------------------------
// Lock/unlock critical sections
// ---------------------------------------------------------------------

sim::Task<> incrementer(pe::ProcessingElement& pe, mem::Addr lock_word,
                        mem::Addr counter, int times) {
  for (int i = 0; i < times; ++i) {
    co_await pe.lock(lock_word);
    auto v = co_await pe.load_uncached(counter);
    co_await pe.store_uncached(counter,
                               static_cast<std::uint32_t>(v.value) + 1);
    co_await pe.unlock(lock_word);
  }
}

TEST(System, LockProtectedCounterIsRaceFree) {
  core::MedeaConfig cfg = small_config(4);
  core::MedeaSystem sys(cfg);
  const mem::Addr lock_word = sys.alloc_shared(16, 16);
  const mem::Addr counter = sys.alloc_shared(16, 16);
  const int per_core = 10;
  for (int r = 0; r < 4; ++r) {
    sys.set_program(r, incrementer(sys.core(r), lock_word, counter, per_core));
  }
  sys.run();
  EXPECT_EQ(sys.coherent_read_word(counter), 4u * per_core);
  EXPECT_EQ(sys.mpmmu().stats().get("mpmmu.locks_granted"), 4u * per_core);
  EXPECT_EQ(sys.mpmmu().stats().get("mpmmu.unlocks"), 4u * per_core);
}

// ---------------------------------------------------------------------
// Message passing end to end
// ---------------------------------------------------------------------

TEST(System, MpSendRecvCarriesData) {
  core::MedeaConfig cfg = small_config(2);
  core::MedeaSystem sys(cfg);
  auto sender = [](pe::ProcessingElement& pe, int dst) -> sim::Task<> {
    std::vector<std::uint32_t> msg{1, 2, 3, 4};
    co_await pe.mp_send(dst, std::move(msg));
  };
  auto receiver = [](pe::ProcessingElement& pe, int src,
                     std::vector<std::uint32_t>* out) -> sim::Task<> {
    auto r = co_await pe.mp_recv(src);
    *out = r.words;
  };
  std::vector<std::uint32_t> got;
  sys.set_program(0, sender(sys.core(0), sys.node_of_rank(1)));
  sys.set_program(1, receiver(sys.core(1), sys.node_of_rank(0), &got));
  sys.run();
  EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

TEST(System, MpLatencyFarBelowSharedMemoryRoundTrip) {
  // The paper's core claim: explicit MP synchronization is much cheaper
  // than going through the memory hierarchy.
  core::MedeaConfig cfg = small_config(2);
  core::MedeaSystem sys(cfg);
  sim::Cycle mp_done = 0, sm_done = 0;

  auto mp_ping = [](pe::ProcessingElement& pe, int dst) -> sim::Task<> {
    std::vector<std::uint32_t> msg{7};
    co_await pe.mp_send(dst, std::move(msg));
  };
  auto mp_pong = [](pe::ProcessingElement& pe, int src,
                    sim::Cycle* done) -> sim::Task<> {
    co_await pe.mp_recv(src);
    *done = pe.now();
  };
  sys.set_program(0, mp_ping(sys.core(0), sys.node_of_rank(1)));
  sys.set_program(1, mp_pong(sys.core(1), sys.node_of_rank(0), &mp_done));
  sys.run();

  core::MedeaSystem sys2(cfg);
  const mem::Addr flag = sys2.alloc_shared(16, 16);
  auto sm_ping = [](pe::ProcessingElement& pe, mem::Addr f) -> sim::Task<> {
    co_await pe.store_uncached(f, 7);
  };
  auto sm_pong = [](pe::ProcessingElement& pe, mem::Addr f,
                    sim::Cycle* done) -> sim::Task<> {
    for (;;) {
      auto v = co_await pe.load_uncached(f);
      if (v.value == 7) break;
    }
    *done = pe.now();
  };
  sys2.set_program(0, sm_ping(sys2.core(0), flag));
  sys2.set_program(1, sm_pong(sys2.core(1), flag, &sm_done));
  sys2.run();

  EXPECT_LT(mp_done, sm_done);
}

TEST(System, DeadlockedReceiveIsDiagnosed) {
  core::MedeaConfig cfg = small_config(2);
  core::MedeaSystem sys(cfg);
  auto waiter = [](pe::ProcessingElement& pe, int src) -> sim::Task<> {
    co_await pe.mp_recv(src);  // nobody ever sends
  };
  auto idler = [](pe::ProcessingElement& pe) -> sim::Task<> {
    co_await pe.compute(10);
  };
  sys.set_program(0, waiter(sys.core(0), sys.node_of_rank(1)));
  sys.set_program(1, idler(sys.core(1)));
  EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(System, DeterministicCycleCounts) {
  auto run_once = [] {
    core::MedeaConfig cfg = small_config(4);
    core::MedeaSystem sys(cfg);
    for (int r = 0; r < 4; ++r) {
      auto prog = [](pe::ProcessingElement& pe, core::MedeaSystem& s,
                     int rank) -> sim::Task<> {
        const mem::Addr a = s.private_addr(rank, 0);
        for (int i = 0; i < 16; ++i) {
          co_await pe.store(a + static_cast<mem::Addr>(i) * 8, 1u);
        }
        std::vector<std::uint32_t> msg{9};
        co_await pe.mp_send(s.node_of_rank((rank + 1) % 4), std::move(msg));
        co_await pe.mp_recv(s.node_of_rank((rank + 3) % 4));
      };
      sys.set_program(r, prog(sys.core(r), sys, r));
    }
    return sys.run();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace medea
