/// Paper-shape property tests: the qualitative claims of §III must hold
/// on reduced-size runs (fast enough for CI).  These are the guardrails
/// that keep refactoring from silently bending the reproduction.

#include <gtest/gtest.h>

#include "apps/jacobi.h"
#include "core/medea.h"
#include "dse/pareto.h"
#include "dse/sweep.h"

namespace medea {
namespace {

double jacobi_cycles(int n, int cores, std::uint32_t kb, mem::WritePolicy pol,
                     apps::JacobiVariant v = apps::JacobiVariant::kHybridMp) {
  core::MedeaSystem sys(dse::make_design_config(cores, kb, pol));
  apps::JacobiParams p;
  p.n = n;
  p.variant = v;
  return apps::run_jacobi(sys, p).cycles_per_iteration;
}

TEST(PaperShape, WbExecTimeNonIncreasingInCacheSize) {
  // Fig. 6: growing the cache never hurts under write-back.
  const int n = 30, cores = 6;
  double prev = 1e300;
  for (std::uint32_t kb : {2u, 4u, 8u, 16u, 32u}) {
    const double t = jacobi_cycles(n, cores, kb, mem::WritePolicy::kWriteBack);
    EXPECT_LE(t, prev * 1.05) << kb << "kB";  // 5% tolerance for noise
    prev = t;
  }
}

TEST(PaperShape, LowerKneeWhenBlockFitsCache) {
  // Fig. 6: once the per-core block fits, execution time collapses.
  // 30x30, 4 cores: per-core working set ~2 x 8 rows x 240 B ~ 3.8 kB.
  const double small = jacobi_cycles(30, 4, 2, mem::WritePolicy::kWriteBack);
  const double fits = jacobi_cycles(30, 4, 8, mem::WritePolicy::kWriteBack);
  EXPECT_GT(small, fits * 3.0)
      << "the miss-dominated config must be far slower";
}

TEST(PaperShape, WriteThroughWorseThanWriteBackWhenCacheFits) {
  // Fig. 6: WT pays store traffic even when WB would be miss-free.
  const double wb = jacobi_cycles(16, 6, 16, mem::WritePolicy::kWriteBack);
  const double wt = jacobi_cycles(16, 6, 16, mem::WritePolicy::kWriteThrough);
  EXPECT_GT(wt, wb * 1.5);
}

TEST(PaperShape, WriteThroughDoesNotScaleWithCores) {
  // Fig. 6: the WT curves stay poor as cores grow (traffic serializes).
  const double wt4 = jacobi_cycles(16, 4, 16, mem::WritePolicy::kWriteThrough);
  const double wt12 =
      jacobi_cycles(16, 12, 16, mem::WritePolicy::kWriteThrough);
  EXPECT_GT(wt12, wt4 * 0.5) << "no ~3x speedup from 3x the cores";
}

TEST(PaperShape, ComputeBoundRegionScalesWithCores) {
  // Fig. 6: with fitting caches, time scales roughly ~1/P.
  const double p2 = jacobi_cycles(30, 2, 32, mem::WritePolicy::kWriteBack);
  const double p8 = jacobi_cycles(30, 8, 32, mem::WritePolicy::kWriteBack);
  EXPECT_GT(p2 / p8, 2.5) << "expect ~4x from 4x the cores";
  EXPECT_LT(p2 / p8, 5.0);
}

TEST(PaperShape, HybridOrderingAtScale) {
  // §III: full MP <= sync-only <= pure SM once communication matters.
  const int n = 16, cores = 12;
  const double mp =
      jacobi_cycles(n, cores, 16, mem::WritePolicy::kWriteBack,
                    apps::JacobiVariant::kHybridMp);
  const double so =
      jacobi_cycles(n, cores, 16, mem::WritePolicy::kWriteBack,
                    apps::JacobiVariant::kHybridSyncOnly);
  const double sm =
      jacobi_cycles(n, cores, 16, mem::WritePolicy::kWriteBack,
                    apps::JacobiVariant::kPureSharedMemory);
  EXPECT_LT(mp, so);
  EXPECT_LT(so, sm);
  EXPECT_GT(sm / mp, 1.5) << "the hybrid advantage must be substantial";
}

TEST(PaperShape, SmallerArrayNeedsSmallerCache) {
  // §III: the 30x30 knee sits at ~4x less cache than 60x60 would need.
  // At 6 cores, 30x30 fits in 4 kB while 16x16 fits even in 2 kB.
  const double t30_4k = jacobi_cycles(30, 6, 4, mem::WritePolicy::kWriteBack);
  const double t30_16k = jacobi_cycles(30, 6, 16, mem::WritePolicy::kWriteBack);
  EXPECT_LT(t30_4k, t30_16k * 1.6)
      << "4 kB should already be near the knee for 30x30 at 6 cores";
  const double t16_2k = jacobi_cycles(16, 6, 2, mem::WritePolicy::kWriteBack);
  const double t16_8k = jacobi_cycles(16, 6, 8, mem::WritePolicy::kWriteBack);
  EXPECT_LT(t16_2k, t16_8k * 2.0)
      << "2 kB should be within 2x of fitting for 16x16 at 6 cores";
}

TEST(PaperShape, ParetoKillRulePipelineOnRealSweep) {
  // End-to-end mini Fig. 9: sweep -> frontier -> kill rule, sane output.
  dse::SweepSpec spec;
  spec.n = 16;
  spec.cores = {2, 4, 6, 8};
  spec.cache_kb = {2, 8};
  spec.policies = {mem::WritePolicy::kWriteBack};
  const auto pts = dse::run_sweep(spec);
  const auto frontier = dse::pareto_frontier(dse::to_design_points(pts));
  ASSERT_GE(frontier.size(), 2u);
  // Frontier must be strictly improving in both axes.
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].area_mm2, frontier[i - 1].area_mm2);
    EXPECT_LT(frontier[i].exec_cycles, frontier[i - 1].exec_cycles);
  }
  const std::size_t knee = dse::kill_rule_knee(frontier);
  EXPECT_LT(knee, frontier.size());
}

TEST(PaperShape, MpmmuEngineOverheadHurtsSharedMemoryMost) {
  // Calibration sanity: slowing the MPMMU barely moves the hybrid
  // (near-zero steady-state memory traffic) but hurts pure SM.
  auto run_with_overhead = [](std::uint32_t eo, apps::JacobiVariant v) {
    auto cfg = dse::make_design_config(8, 16, mem::WritePolicy::kWriteBack);
    cfg.mpmmu.engine_overhead = eo;
    core::MedeaSystem sys(cfg);
    apps::JacobiParams p;
    p.n = 16;
    p.variant = v;
    return apps::run_jacobi(sys, p).cycles_per_iteration;
  };
  const double mp_fast =
      run_with_overhead(4, apps::JacobiVariant::kHybridMp);
  const double mp_slow =
      run_with_overhead(96, apps::JacobiVariant::kHybridMp);
  const double sm_fast =
      run_with_overhead(4, apps::JacobiVariant::kPureSharedMemory);
  const double sm_slow =
      run_with_overhead(96, apps::JacobiVariant::kPureSharedMemory);
  EXPECT_LT(mp_slow / mp_fast, 1.3) << "hybrid nearly immune to MPMMU speed";
  EXPECT_GT(sm_slow / sm_fast, 1.5) << "pure SM bound by MPMMU speed";
}

}  // namespace
}  // namespace medea
