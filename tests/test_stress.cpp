/// Property / stress tests: randomized programs over the full system
/// checked against golden models — memory consistency, message ordering,
/// and end-to-end determinism under heavy mixed load.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/medea.h"
#include "sim/rng.h"

namespace medea {
namespace {

// ---------------------------------------------------------------------
// Randomized private-memory traffic vs a golden model
// ---------------------------------------------------------------------

struct MemOp {
  bool is_store;
  mem::Addr addr;
  std::uint32_t value;
};

sim::Task<> random_mem_program(pe::ProcessingElement& pe,
                               std::vector<MemOp> ops,
                               std::vector<std::uint32_t>* loads) {
  for (const auto& op : ops) {
    if (op.is_store) {
      co_await pe.store(op.addr, op.value);
    } else {
      auto r = co_await pe.load(op.addr);
      loads->push_back(static_cast<std::uint32_t>(r.value));
    }
  }
  // Make everything durable so the backdoor can check memory too.
  co_await pe.fence();
}

class RandomMemTraffic
    : public ::testing::TestWithParam<std::tuple<int, mem::WritePolicy>> {};

TEST_P(RandomMemTraffic, MatchesGoldenModel) {
  const int cores = std::get<0>(GetParam());
  const auto policy = std::get<1>(GetParam());
  core::MedeaConfig cfg;
  cfg.num_compute_cores = cores;
  cfg.l1.size_bytes = 2 * 1024;  // tiny: force evictions and refills
  cfg.l1.policy = policy;
  core::MedeaSystem sys(cfg);

  sim::Xoshiro256 rng(2024);
  std::vector<std::vector<MemOp>> all_ops(static_cast<std::size_t>(cores));
  std::vector<std::vector<std::uint32_t>> observed(
      static_cast<std::size_t>(cores));
  std::vector<std::vector<std::uint32_t>> golden_loads(
      static_cast<std::size_t>(cores));

  for (int r = 0; r < cores; ++r) {
    std::map<mem::Addr, std::uint32_t> golden;  // per-core private golden
    for (int i = 0; i < 300; ++i) {
      MemOp op;
      op.is_store = rng.next_bool(0.5);
      // 64 distinct words spanning 16 cache lines in a 2 kB cache with
      // aliasing: plenty of eviction traffic.
      op.addr = sys.private_addr(
          r, (rng.next_below(64) * 4) + (rng.next_below(4) * 4096));
      op.value = static_cast<std::uint32_t>(rng.next());
      if (op.is_store) {
        golden[op.addr] = op.value;
      } else {
        golden_loads[static_cast<std::size_t>(r)].push_back(
            golden.count(op.addr) ? golden[op.addr] : 0);
      }
      all_ops[static_cast<std::size_t>(r)].push_back(op);
    }
  }
  for (int r = 0; r < cores; ++r) {
    sys.set_program(r, random_mem_program(
                           sys.core(r), all_ops[static_cast<std::size_t>(r)],
                           &observed[static_cast<std::size_t>(r)]));
  }
  sys.run();
  for (int r = 0; r < cores; ++r) {
    EXPECT_EQ(observed[static_cast<std::size_t>(r)],
              golden_loads[static_cast<std::size_t>(r)])
        << "core " << r << " under " << mem::to_string(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mix, RandomMemTraffic,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(mem::WritePolicy::kWriteBack,
                                         mem::WritePolicy::kWriteThrough)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "cores_" +
             std::string(mem::to_string(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------
// Heavy all-to-all messaging with per-pair sequence checking
// ---------------------------------------------------------------------

sim::Task<> chatter(pe::ProcessingElement& pe, core::MedeaSystem& sys,
                    int rank, int cores, int msgs,
                    std::vector<std::vector<std::uint32_t>>* inbox) {
  // Interleave sends to every peer with receives from every peer.
  for (int m = 0; m < msgs; ++m) {
    for (int peer = 0; peer < cores; ++peer) {
      if (peer == rank) continue;
      std::vector<std::uint32_t> msg;
      msg.push_back(static_cast<std::uint32_t>(rank * 1000 + m));
      co_await pe.mp_send(sys.node_of_rank(peer), std::move(msg));
    }
    for (int peer = 0; peer < cores; ++peer) {
      if (peer == rank) continue;
      auto r = co_await pe.mp_recv(sys.node_of_rank(peer));
      (*inbox)[static_cast<std::size_t>(peer)].push_back(r.words[0]);
    }
  }
}

TEST(Stress, AllToAllMessagingKeepsPerPairOrder) {
  const int cores = 6;
  const int msgs = 12;
  core::MedeaConfig cfg;
  cfg.num_compute_cores = cores;
  core::MedeaSystem sys(cfg);
  std::vector<std::vector<std::vector<std::uint32_t>>> inboxes(
      static_cast<std::size_t>(cores),
      std::vector<std::vector<std::uint32_t>>(static_cast<std::size_t>(cores)));
  for (int r = 0; r < cores; ++r) {
    sys.set_program(r, chatter(sys.core(r), sys, r, cores, msgs,
                               &inboxes[static_cast<std::size_t>(r)]));
  }
  sys.run();
  for (int dst = 0; dst < cores; ++dst) {
    for (int src = 0; src < cores; ++src) {
      if (src == dst) continue;
      const auto& got = inboxes[static_cast<std::size_t>(dst)]
                               [static_cast<std::size_t>(src)];
      ASSERT_EQ(got.size(), static_cast<std::size_t>(msgs));
      for (int m = 0; m < msgs; ++m) {
        EXPECT_EQ(got[static_cast<std::size_t>(m)],
                  static_cast<std::uint32_t>(src * 1000 + m))
            << src << "->" << dst << " message " << m;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Mixed everything, three times, identical cycle counts
// ---------------------------------------------------------------------

sim::Task<> mixed_program(pe::ProcessingElement& pe, core::MedeaSystem& sys,
                          int rank, int cores) {
  const mem::Addr lock_word = sys.memory_map().shared_base();
  const mem::Addr counter = lock_word + 4;
  for (int i = 0; i < 5; ++i) {
    co_await pe.store(
        sys.private_addr(rank, static_cast<std::uint32_t>(i) * 4096),
        static_cast<std::uint32_t>(i));
    co_await pe.lock(lock_word);
    auto v = co_await pe.load_uncached(counter);
    co_await pe.store_uncached(counter,
                               static_cast<std::uint32_t>(v.value) + 1);
    co_await pe.unlock(lock_word);
    std::vector<std::uint32_t> tok(1, static_cast<std::uint32_t>(i));
    co_await pe.mp_send(sys.node_of_rank((rank + 1) % cores), std::move(tok));
    co_await pe.mp_recv(sys.node_of_rank((rank + cores - 1) % cores));
    co_await empi::barrier(pe, sys.core_nodes());
  }
}

TEST(Stress, MixedWorkloadDeterministicAcrossRuns) {
  auto once = [] {
    core::MedeaConfig cfg;
    cfg.num_compute_cores = 5;
    core::MedeaSystem sys(cfg);
    for (int r = 0; r < 5; ++r) {
      sys.set_program(r, mixed_program(sys.core(r), sys, r, 5));
    }
    const sim::Cycle end = sys.run();
    return std::pair<sim::Cycle, std::uint32_t>(
        end, sys.coherent_read_word(sys.memory_map().shared_base() + 4));
  };
  const auto a = once();
  const auto b = once();
  const auto c = once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(a.second, 25u);  // 5 cores x 5 lock-protected increments
}

TEST(Stress, SeedChangesRouterTieBreaksOnly) {
  // With random_tie_break enabled, different seeds may change latencies
  // but never correctness.
  auto run_with_seed = [](std::uint64_t seed) {
    core::MedeaConfig cfg;
    cfg.num_compute_cores = 4;
    cfg.seed = seed;
    cfg.router.random_tie_break = true;
    core::MedeaSystem sys(cfg);
    for (int r = 0; r < 4; ++r) {
      sys.set_program(r, mixed_program(sys.core(r), sys, r, 4));
    }
    sys.run();
    return sys.coherent_read_word(sys.memory_map().shared_base() + 4);
  };
  EXPECT_EQ(run_with_seed(1), 20u);
  EXPECT_EQ(run_with_seed(99), 20u);
}

}  // namespace
}  // namespace medea
