/// Tests for the parallel reduction workload (second benchmark app).

#include <gtest/gtest.h>

#include "apps/reduction.h"
#include "core/medea.h"
#include "dse/sweep.h"

namespace medea::apps {
namespace {

core::MedeaSystem make_sys(int cores, std::uint32_t kb = 16) {
  return core::MedeaSystem(
      dse::make_design_config(cores, kb, mem::WritePolicy::kWriteBack));
}

TEST(Reduction, ReferenceMatchesDirectSum) {
  // With one core the rank-major reference is a plain left-to-right sum.
  double direct = 0.0;
  for (int i = 0; i < 100; ++i) {
    direct += reduction_vec_a(i) * reduction_vec_b(i);
  }
  EXPECT_DOUBLE_EQ(reduction_reference(100, 1), direct);
}

class ReductionMp : public ::testing::TestWithParam<int> {};

TEST_P(ReductionMp, MessagePassingIsBitExact) {
  const int cores = GetParam();
  auto sys = make_sys(cores);
  ReductionParams p;
  p.elements = 256;
  p.variant = ReductionVariant::kMessagePassing;
  const auto res = run_reduction(sys, p);
  // Rank-0 gathers in rank order, same as the reference: bit-exact.
  EXPECT_EQ(res.value, res.reference);
  EXPECT_GT(res.cycles_per_round, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Cores, ReductionMp, ::testing::Values(1, 2, 3, 7, 15));

class ReductionSm : public ::testing::TestWithParam<int> {};

TEST_P(ReductionSm, SharedMemoryIsNumericallyCorrect) {
  const int cores = GetParam();
  auto sys = make_sys(cores);
  ReductionParams p;
  p.elements = 256;
  p.variant = ReductionVariant::kSharedMemory;
  const auto res = run_reduction(sys, p);
  // Lock-grant order decides FP accumulation order: tolerance, not
  // bit-exactness.
  EXPECT_LT(res.abs_error, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cores, ReductionSm, ::testing::Values(1, 2, 4, 8));

TEST(Reduction, MultipleRoundsAgree) {
  auto sys = make_sys(4);
  ReductionParams p;
  p.elements = 128;
  p.repeats = 3;
  p.variant = ReductionVariant::kMessagePassing;
  const auto res = run_reduction(sys, p);
  EXPECT_EQ(res.value, res.reference);
}

TEST(Reduction, SharedMemoryRoundsResetCorrectly) {
  // If the accumulator reset between rounds were broken, round 2 would
  // double the value.
  auto sys = make_sys(3);
  ReductionParams p;
  p.elements = 90;
  p.repeats = 3;
  p.variant = ReductionVariant::kSharedMemory;
  const auto res = run_reduction(sys, p);
  EXPECT_LT(res.abs_error, 1e-9);
}

TEST(Reduction, MpCheaperThanSmAtScale) {
  // The headline again, now on a latency-bound collective: combining
  // through the TIE port beats serializing at the MPMMU.
  ReductionParams p;
  p.elements = 120;  // small chunks: communication dominates
  for (int cores : {8, 15}) {
    p.variant = ReductionVariant::kMessagePassing;
    auto s1 = make_sys(cores);
    const auto mp = run_reduction(s1, p);
    p.variant = ReductionVariant::kSharedMemory;
    auto s2 = make_sys(cores);
    const auto sm = run_reduction(s2, p);
    EXPECT_LT(mp.cycles_per_round, sm.cycles_per_round) << cores << " cores";
  }
}

TEST(Reduction, DeterministicCycles) {
  auto once = [] {
    auto sys = make_sys(5);
    ReductionParams p;
    p.elements = 200;
    p.variant = ReductionVariant::kSharedMemory;
    return run_reduction(sys, p).total_cycles;
  };
  EXPECT_EQ(once(), once());
}

TEST(Reduction, RejectsTooFewElements) {
  auto sys = make_sys(8);
  ReductionParams p;
  p.elements = 4;
  EXPECT_THROW(run_reduction(sys, p), std::invalid_argument);
}

}  // namespace
}  // namespace medea::apps
