/// Unit tests for the NoC: flit codec, torus geometry, deflection router.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "noc/coord.h"
#include "noc/flit.h"
#include "noc/network.h"
#include "sim/scheduler.h"

namespace medea::noc {
namespace {

// ---------------------------------------------------------------------
// Flit wire format (Fig. 5)
// ---------------------------------------------------------------------

Flit sample_flit() {
  Flit f;
  f.valid = true;
  f.dst = {3, 1};
  f.type = FlitType::kBlockRead;
  f.subtype = FlitSubType::kData;
  f.seq_num = 11;
  f.burst_size = 3;
  f.src_id = 9;
  f.data = 0xDEADBEEF;
  return f;
}

TEST(FlitCodec, RoundTripPreservesAllFields) {
  const Flit f = sample_flit();
  const Flit g = decode_flit(encode_flit(f));
  EXPECT_EQ(g.valid, f.valid);
  EXPECT_EQ(g.dst, f.dst);
  EXPECT_EQ(g.type, f.type);
  EXPECT_EQ(g.subtype, f.subtype);
  EXPECT_EQ(g.seq_num, f.seq_num);
  EXPECT_EQ(g.burst_size, f.burst_size);
  EXPECT_EQ(g.src_id, f.src_id);
  EXPECT_EQ(g.data, f.data);
}

TEST(FlitCodec, AllTypeSubtypeCombinationsRoundTrip) {
  for (int t = 0; t < 7; ++t) {
    for (int s = 0; s < 4; ++s) {
      Flit f = sample_flit();
      f.type = static_cast<FlitType>(t);
      f.subtype = static_cast<FlitSubType>(s);
      const Flit g = decode_flit(encode_flit(f));
      EXPECT_EQ(g.type, f.type);
      EXPECT_EQ(g.subtype, f.subtype);
    }
  }
}

TEST(FlitCodec, FitsIn64BitsWithHeadroom) {
  // 1 + 2 + 2 + 3 + 2 + 4 + 2 + 8 + 32 = 56 bits used.
  const int used = FlitFormat::kValidBits + 2 * FlitFormat::kCoordBits +
                   FlitFormat::kTypeBits + FlitFormat::kSubTypeBits +
                   FlitFormat::kSeqNumBits + FlitFormat::kBurstBits +
                   FlitFormat::kSrcIdBits + FlitFormat::kDataBits;
  EXPECT_EQ(used, 56);
  EXPECT_LE(used, 64);
}

TEST(FlitCodec, EightBitSrcIdRoundTripsLargeNodeIds) {
  // An 8x8 torus has node ids up to 63; the widened SRCID must carry
  // them (and anything up to 255) exactly, including in the wide
  // coordinate encoding needed for >4x4 fabrics.
  for (int id : {15, 16, 63, 255}) {
    Flit f = sample_flit();
    f.src_id = static_cast<std::uint8_t>(id);
    EXPECT_EQ(decode_flit(encode_flit(f)).src_id, id);
    f.dst = {7, 7};
    EXPECT_EQ(decode_flit(encode_flit(f, 3), 3).src_id, id);
  }
}

TEST(FlitCodec, WideCoordinateEncoding) {
  Flit f = sample_flit();
  f.dst = {13, 12};
  const Flit g = decode_flit(encode_flit(f, 4), 4);
  EXPECT_EQ(g.dst, f.dst);
}

TEST(FlitCodec, MetadataNotOnTheWire) {
  Flit f = sample_flit();
  f.hops = 17;
  f.uid = 12345;
  f.inject_cycle = 999;
  const Flit g = decode_flit(encode_flit(f));
  EXPECT_EQ(g.hops, 0);
  EXPECT_EQ(g.uid, 0u);
  EXPECT_EQ(g.inject_cycle, 0u);
}

TEST(FlitCodec, DistinctFlitsEncodeDistinctWords) {
  Flit a = sample_flit();
  Flit b = sample_flit();
  b.seq_num = a.seq_num + 1;
  EXPECT_NE(encode_flit(a), encode_flit(b));
}

// ---------------------------------------------------------------------
// Torus geometry
// ---------------------------------------------------------------------

TEST(Torus, NeighborsWrapAround) {
  TorusGeometry g(4, 4);
  EXPECT_EQ(g.neighbor({0, 0}, Dir::kWest), (Coord{3, 0}));
  EXPECT_EQ(g.neighbor({3, 0}, Dir::kEast), (Coord{0, 0}));
  EXPECT_EQ(g.neighbor({0, 0}, Dir::kNorth), (Coord{0, 3}));
  EXPECT_EQ(g.neighbor({0, 3}, Dir::kSouth), (Coord{0, 0}));
}

TEST(Torus, DistanceUsesShortestWay) {
  TorusGeometry g(4, 4);
  EXPECT_EQ(g.distance({0, 0}, {3, 0}), 1);  // wrap is shorter
  EXPECT_EQ(g.distance({0, 0}, {2, 0}), 2);  // half-way
  EXPECT_EQ(g.distance({0, 0}, {1, 1}), 2);
  EXPECT_EQ(g.distance({1, 1}, {1, 1}), 0);
}

TEST(Torus, NodeIdRoundTrip) {
  TorusGeometry g(4, 4);
  for (int id = 0; id < g.num_nodes(); ++id) {
    EXPECT_EQ(g.node_id(g.coord_of(id)), id);
  }
}

TEST(Torus, ProductiveDirsReduceDistance) {
  TorusGeometry g(4, 4);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      if (a == b) continue;
      const Coord ca = g.coord_of(a);
      const Coord cb = g.coord_of(b);
      Dir dirs[4];
      const int n = g.productive_dirs(ca, cb, dirs);
      ASSERT_GE(n, 1);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(g.distance(g.neighbor(ca, dirs[i]), cb),
                  g.distance(ca, cb) - 1)
            << "from " << ca.to_string() << " to " << cb.to_string();
      }
    }
  }
}

TEST(Torus, NoProductiveDirAtDestination) {
  TorusGeometry g(4, 4);
  Dir dirs[4];
  EXPECT_EQ(g.productive_dirs({2, 2}, {2, 2}, dirs), 0);
}

TEST(Torus, HalfwayTieListsBothDirections) {
  TorusGeometry g(4, 4);
  Dir dirs[4];
  const int n = g.productive_dirs({0, 0}, {2, 0}, dirs);
  EXPECT_EQ(n, 2);  // East and West both 2 hops away
}

// ---------------------------------------------------------------------
// Network / deflection routing
// ---------------------------------------------------------------------

Flit make_test_flit(Network& net, Coord dst, std::uint32_t data) {
  Flit f;
  f.valid = true;
  f.dst = dst;
  f.type = FlitType::kMessage;
  f.subtype = FlitSubType::kData;
  f.src_id = 0;
  f.data = data;
  f.uid = net.next_flit_uid();
  return f;
}

/// Injects a list of flits at a node (one per cycle) and collects
/// everything ejected at every node.
class NodeHarness : public sim::Component {
 public:
  NodeHarness(sim::Scheduler& s, Network& net, int node)
      : sim::Component(s, "harness" + std::to_string(node)),
        net_(net),
        node_(node) {
    net.eject(node).set_consumer(this);
    net.inject(node).set_producer(this);
  }

  void send(Flit f) {
    to_send_.push_back(f);
    scheduler().wake_at(*this, scheduler().now() + 1);
  }

  void tick(sim::Cycle now) override {
    auto& ej = net_.eject(node_);
    while (!ej.empty()) received.emplace_back(now, ej.pop());
    auto& inj = net_.inject(node_);
    while (!to_send_.empty() && inj.can_push()) {
      inj.push(to_send_.front());
      to_send_.pop_front();
    }
    if (!to_send_.empty()) wake();
  }

  std::vector<std::pair<sim::Cycle, Flit>> received;

 private:
  Network& net_;
  int node_;
  std::deque<Flit> to_send_;
};

struct NetFixture {
  explicit NetFixture(int w = 4, int h = 4)
      : net(sched, TorusGeometry(w, h)) {
    for (int i = 0; i < net.num_nodes(); ++i) {
      nodes.push_back(std::make_unique<NodeHarness>(sched, net, i));
    }
  }
  sim::Scheduler sched;
  Network net;
  std::vector<std::unique_ptr<NodeHarness>> nodes;
};

TEST(Network, SingleFlitReachesDestination) {
  NetFixture fx;
  const Coord dst{2, 3};
  fx.nodes[0]->send(make_test_flit(fx.net, dst, 77));
  ASSERT_TRUE(fx.sched.run(10000));
  auto& rx = fx.nodes[fx.net.geometry().node_id(dst)]->received;
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].second.data, 77u);
  EXPECT_EQ(fx.net.stats().get("noc.flits_delivered"), 1u);
}

TEST(Network, MinimalPathLatencyWhenUncontended) {
  NetFixture fx;
  // (0,0) -> (1,0) is one hop: inject at T, link at T, arrive T+2
  // (inject queue + 1 link + eject queue each add a cycle boundary).
  fx.nodes[0]->send(make_test_flit(fx.net, {1, 0}, 1));
  ASSERT_TRUE(fx.sched.run(1000));
  auto& rx = fx.nodes[1]->received;
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].second.hops, 1);
  EXPECT_EQ(rx[0].second.deflections, 0);
}

TEST(Network, AllPairsDelivery) {
  NetFixture fx;
  int expected = 0;
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s == d) continue;
      fx.nodes[static_cast<std::size_t>(s)]->send(make_test_flit(
          fx.net, fx.net.geometry().coord_of(d),
          static_cast<std::uint32_t>(s * 100 + d)));
      ++expected;
    }
  }
  ASSERT_TRUE(fx.sched.run(100000));
  int got = 0;
  for (auto& nh : fx.nodes) got += static_cast<int>(nh->received.size());
  EXPECT_EQ(got, expected);
  // Everything arrived at the right place.
  for (int d = 0; d < 16; ++d) {
    for (auto& [cycle, f] : fx.nodes[static_cast<std::size_t>(d)]->received) {
      EXPECT_EQ(static_cast<int>(f.data % 100), d);
    }
  }
}

TEST(Network, HotspotDeliversAllAndDeflects) {
  NetFixture fx;
  // Every node floods node 0 with 8 flits: heavy contention at one eject.
  int expected = 0;
  for (int s = 1; s < 16; ++s) {
    for (int k = 0; k < 8; ++k) {
      fx.nodes[static_cast<std::size_t>(s)]->send(make_test_flit(
          fx.net, {0, 0}, static_cast<std::uint32_t>(s * 16 + k)));
      ++expected;
    }
  }
  ASSERT_TRUE(fx.sched.run(1000000));
  EXPECT_EQ(static_cast<int>(fx.nodes[0]->received.size()), expected);
  // Hot-potato under contention must deflect at least once.
  EXPECT_GT(fx.net.stats().get("noc.deflections_total"), 0u);
}

TEST(Network, OutOfOrderDeliveryHappensUnderLoad) {
  NetFixture fx;
  // A long burst from one source: per-flit adaptive routing may reorder.
  for (int k = 0; k < 64; ++k) {
    Flit f = make_test_flit(fx.net, {2, 2},
                            static_cast<std::uint32_t>(k));
    f.seq_num = static_cast<std::uint8_t>(k % 16);
    fx.nodes[0]->send(f);
  }
  // Cross traffic to force deflections.
  for (int k = 0; k < 64; ++k) {
    fx.nodes[5]->send(make_test_flit(fx.net, {3, 2}, 1000));
    fx.nodes[10]->send(make_test_flit(fx.net, {1, 2}, 2000));
  }
  ASSERT_TRUE(fx.sched.run(1000000));
  auto& rx = fx.nodes[fx.net.geometry().node_id({2, 2})]->received;
  ASSERT_EQ(rx.size(), 64u);
  // All 64 data values present exactly once, regardless of order.
  std::set<std::uint32_t> seen;
  for (auto& [c, f] : rx) seen.insert(f.data);
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    NetFixture fx;
    for (int s = 0; s < 16; ++s) {
      for (int k = 0; k < 4; ++k) {
        fx.nodes[static_cast<std::size_t>(s)]->send(make_test_flit(
            fx.net, fx.net.geometry().coord_of((s + k + 1) % 16),
            static_cast<std::uint32_t>(s * 10 + k)));
      }
    }
    EXPECT_TRUE(fx.sched.run(100000));
    return fx.sched.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Network, WorksOnNonSquareTorus) {
  NetFixture fx(2, 3);
  fx.nodes[0]->send(make_test_flit(fx.net, {1, 2}, 5));
  ASSERT_TRUE(fx.sched.run(10000));
  EXPECT_EQ(fx.nodes[fx.net.geometry().node_id({1, 2})]->received.size(), 1u);
}

// Regression test for the deflection port-assignment hardening: under
// saturation every router sees a full route set (4 in-flight flits) and
// must take the deflect-to-any-free-port path.  With random_tie_break
// the free-port scan previously relied on an assert()-only guard around
// a -1 "no port" return — compiled out under NDEBUG, leaving a negative
// array index.  This drives both tie-break modes to full load and checks
// total delivery.
TEST(Network, SaturationExercisesDeflectionPortScan) {
  for (bool random_tie : {false, true}) {
    RouterConfig cfg;
    cfg.random_tie_break = random_tie;
    sim::Scheduler sched;
    Network net(sched, TorusGeometry(4, 4), cfg, 7);
    std::vector<std::unique_ptr<NodeHarness>> nodes;
    for (int i = 0; i < net.num_nodes(); ++i) {
      nodes.push_back(std::make_unique<NodeHarness>(sched, net, i));
    }
    // Every node floods one hotspot: converging traffic exhausts the few
    // productive ports near the destination, guaranteed deflections.
    // (Opposite-corner traffic would not work here: at exactly half the
    // ring circumference every direction is productive.)
    const Coord hotspot{1, 1};
    const int kPerNode = 30;
    int senders = 0;
    for (int i = 0; i < net.num_nodes(); ++i) {
      if (net.geometry().coord_of(i) == hotspot) continue;
      ++senders;
      for (int k = 0; k < kPerNode; ++k) {
        nodes[static_cast<std::size_t>(i)]->send(
            make_test_flit(net, hotspot, static_cast<std::uint32_t>(k)));
      }
    }
    ASSERT_TRUE(sched.run(1'000'000));
    EXPECT_EQ(net.stats().get("noc.flits_delivered"),
              static_cast<std::uint64_t>(senders * kPerNode));
    EXPECT_GT(net.stats().get("noc.deflections_total"), 0u);
  }
}

TEST(Network, LatencyStatisticsPopulated) {
  NetFixture fx;
  for (int k = 0; k < 10; ++k) {
    fx.nodes[0]->send(make_test_flit(fx.net, {3, 3}, 0));
  }
  ASSERT_TRUE(fx.sched.run(10000));
  const auto& lat = fx.net.stats().acc("noc.latency");
  EXPECT_EQ(lat.count(), 10u);
  EXPECT_GE(lat.min(), 1.0);
  const auto& hops = fx.net.stats().acc("noc.hops");
  EXPECT_GE(hops.min(), 2.0);  // (0,0)->(3,3) minimal distance 2 (wrap)
}

}  // namespace
}  // namespace medea::noc
