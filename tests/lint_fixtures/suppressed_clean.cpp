// Fixture: every violation carries a justified line-level suppression,
// so the linter must report nothing.
#include <chrono>
#include <unordered_map>

struct HostMetrics {
  std::unordered_map<int, long> spans_;

  long wall_us() {
    // Host profiling span, never feeds simulated state.
    auto t0 =
        std::chrono::steady_clock::now();  // lint:allow(banned-time-source)
    long sum = 0;
    // Order-insensitive reduction (sum), host-metrics path.
    for (const auto& [id, v] : spans_) sum += v;  // lint:allow(unordered-iteration)
    (void)t0;
    return sum;
  }
};
