// Fixture: StatSet key naming hygiene — keys are dotted lowercase
// snake_case.  Expected findings: statset-key-hygiene x4.
#include <string>

struct StatSet {
  void set(const std::string&, unsigned long) {}
  void inc(const std::string&, unsigned long = 1) {}
  unsigned long get(const std::string&) const { return 0; }
  void sample(const std::string&, double) {}
};

void fill(StatSet& stats, const std::string& prefix) {
  stats.set("noc.flits_delivered", 1);     // OK
  stats.inc("sched.wake_requests");        // OK
  stats.set("noc.FlitsDelivered", 1);      // finding 1: camel case
  stats.inc("noc latency");                // finding 2: space
  stats.sample("Noc.latency", 0.5);        // finding 3: uppercase segment
  stats.set(prefix + "flits_delivered", 1);  // OK: lowercase fragment
  (void)stats.get(prefix + "Bad Frag");    // finding 4: bad fragment
}
