// Fixture: wall-clock / host-randomness sources in kernel code.
// Expected findings: banned-time-source x6.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

struct TieBreaker {
  int pick(int n) {
    int r = rand() % n;                                   // finding 1
    r ^= static_cast<int>(time(nullptr));                 // finding 2
    std::random_device rd;                                // finding 3
    r ^= static_cast<int>(rd());
    auto now = std::chrono::system_clock::now();          // finding 4
    auto mono = std::chrono::steady_clock::now();         // finding 5
    srand(42);                                            // finding 6
    (void)now;
    (void)mono;
    return r;
  }

  // Member functions named like libc must NOT trip the rule.
  struct Clock {
    long time() { return 0; }
  };
  long fine() {
    Clock c;
    return c.time() + this->sched_time();
  }
  long sched_time() { return 0; }
};
