// Fixture: idiomatic deterministic kernel code — the linter must stay
// silent.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct StatSet {
  void set(const std::string&, std::uint64_t) {}
  std::uint64_t get(const std::string&) const { return 0; }
};

struct Model {
  // Ordered map: iteration order is the key order, deterministic.
  std::map<std::string, std::uint64_t> counters_;
  // Unordered map used for lookup only.
  std::unordered_map<std::uint32_t, std::size_t> index_;
  std::vector<int> order_;

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [k, v] : counters_) sum += v;
    for (int v : order_) sum += static_cast<std::uint64_t>(v);
    auto it = index_.find(7);
    if (it != index_.end()) sum += it->second;
    return sum;
  }

  void export_stats(StatSet& stats) const {
    stats.set("model.total", total());
    stats.set("sched.wake_requests", 0);  // kernel-independent counter
  }
};
