// Fixture: iteration over unordered containers (hash order leaks into
// behavior).  Expected findings: unordered-iteration x3.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Dispatcher {
  std::unordered_map<std::uint32_t, int> pending_;
  std::unordered_set<std::string> names_;

  int drain() {
    int sum = 0;
    for (const auto& [uid, v] : pending_) sum += v;  // finding 1
    for (const auto& n : names_) sum += static_cast<int>(n.size());  // 2
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {  // 3
      sum += it->second;
    }
    // Lookup is fine: no iteration, no order dependence.
    return sum + static_cast<int>(pending_.count(7));
  }
};
