// Fixture: iteration over pointer-keyed containers (address order
// varies under ASLR/allocation noise).
// Expected findings: pointer-keyed-iteration x2.
#include <map>
#include <set>

struct Component;

struct Registry {
  std::map<Component*, int> prio_;
  std::set<const Component*> live_;

  int total() const {
    int sum = 0;
    for (const auto& [c, p] : prio_) sum += p;        // finding 1
    for (const Component* c : live_) sum += c != nullptr;  // finding 2
    // Keyed lookup is deterministic; only iteration order is not.
    return sum + static_cast<int>(prio_.count(nullptr));
  }
};
