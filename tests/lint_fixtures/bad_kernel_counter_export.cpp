// Fixture: kernel-dependent scheduler counters entering an exported
// StatSet (the differential tests compare full counter maps across
// event-queue kernels, so these must never reach RunResult::stats).
// Expected findings: kernel-counter-export x3 (plus one clean line).
struct Scheduler {
  unsigned long bucket_pushes() const { return 0; }
  unsigned long overflow_pushes() const { return 0; }
  unsigned long commits_deduped() const { return 0; }
  unsigned long wake_requests() const { return 0; }
};
struct StatSet {
  void set(const char*, unsigned long) {}
};

void export_stats(const Scheduler& sched, StatSet& stats) {
  stats.set("sched.bucket_pushes", sched.bucket_pushes());      // finding 1
  stats.set("sched.overflow_pushes", sched.overflow_pushes());  // finding 2
  stats.set("sched.commits_deduped", sched.commits_deduped());  // finding 3
  stats.set("sched.wake_requests", sched.wake_requests());  // OK: kernel-indep
}

// Reading the counters without a stats context is fine (telemetry
// timeline series sample them live).
unsigned long sample(const Scheduler& sched) {
  return sched.bucket_pushes() + sched.overflow_pushes();
}
