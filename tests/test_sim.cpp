/// Unit tests for the cycle-accurate discrete-event kernel (src/sim).

#include <gtest/gtest.h>

#include <vector>

#include "sim/fifo.h"
#include "sim/frame_pool.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/task.h"

namespace medea::sim {
namespace {

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

class Recorder : public Component {
 public:
  Recorder(Scheduler& s, std::string name) : Component(s, std::move(name)) {}
  void tick(Cycle now) override { ticks.push_back(now); }
  std::vector<Cycle> ticks;
};

TEST(Scheduler, TicksComponentAtRequestedCycle) {
  Scheduler sched;
  Recorder r(sched, "r");
  sched.wake_at(r, 5);
  EXPECT_TRUE(sched.run());
  ASSERT_EQ(r.ticks.size(), 1u);
  EXPECT_EQ(r.ticks[0], 5u);
  EXPECT_EQ(sched.now(), 5u);
}

TEST(Scheduler, SkipsIdleCycles) {
  Scheduler sched;
  Recorder r(sched, "r");
  sched.wake_at(r, 10);
  sched.wake_at(r, 1000000);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(sched.active_cycles(), 2u);  // only 2 cycles actually executed
  EXPECT_EQ(sched.now(), 1000000u);
}

TEST(Scheduler, DeduplicatesSameCycleWakes) {
  Scheduler sched;
  Recorder r(sched, "r");
  sched.wake_at(r, 3);
  sched.wake_at(r, 3);
  sched.wake_at(r, 3);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks.size(), 1u);
}

TEST(Scheduler, DedupsDuplicateWakesAtPushTime) {
  // Duplicate (component, future-cycle) wakes never reach the heap:
  // three requests for cycle 3 cost one push (hot-FIFO fan-in pressure).
  Scheduler sched;
  Recorder r(sched, "r");
  sched.wake_at(r, 3);
  sched.wake_at(r, 3);
  sched.wake_at(r, 3);
  sched.wake_at(r, 7);  // a different cycle is a fresh push
  EXPECT_EQ(sched.wake_requests(), 4u);
  EXPECT_EQ(sched.wakes_deduped(), 2u);
  EXPECT_EQ(sched.heap_pushes(), 2u);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks, (std::vector<Cycle>{3, 7}));
}

TEST(Scheduler, PushDedupNeverLosesAWakeAcrossRuns) {
  // Waking again between runs must still tick at the new cycle even
  // though the heap saw pushes for this component before.  (Re-waking
  // at the *already-ticked* current cycle is a no-op — that is the
  // kernel's long-standing pop-side dedup, unchanged by the push-time
  // stamp; a component ticks at most once per cycle, ever.)
  Scheduler sched;
  Recorder r(sched, "r");
  sched.wake_at(r, 4);
  sched.wake_at(r, 4);
  EXPECT_TRUE(sched.run());
  ASSERT_EQ(r.ticks.size(), 1u);
  sched.wake_at(r, 4);  // now() and already ticked at 4: stays one tick
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks, (std::vector<Cycle>{4}));
  sched.wake_at(r, 9);
  sched.wake_at(r, 9);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks, (std::vector<Cycle>{4, 9}));
}

/// Pushes one value into each of three FIFOs during a single tick.
class FanInPusher : public Component {
 public:
  FanInPusher(Scheduler& s, Fifo<int>& a, Fifo<int>& b, Fifo<int>& c)
      : Component(s, "pusher"), a_(a), b_(b), c_(c) {}
  void tick(Cycle) override {
    a_.push(1);
    b_.push(2);
    c_.push(3);
  }
  Fifo<int>& a_;
  Fifo<int>& b_;
  Fifo<int>& c_;
};

TEST(Scheduler, FifoFanInWakesConsumerWithOneHeapPush) {
  // N channels committing into one consumer in the same cycle is the
  // hot-FIFO pattern the push-time dedup exists for: three commits used
  // to mean three heap pushes (two discarded at pop); now two of the
  // wake requests are absorbed before touching the heap.
  Scheduler sched;
  Recorder consumer(sched, "consumer");
  Fifo<int> a(sched, "a", 4), b(sched, "b", 4), c(sched, "c", 4);
  for (Fifo<int>* f : {&a, &b, &c}) f->set_consumer(&consumer);
  FanInPusher pusher(sched, a, b, c);
  sched.wake_at(pusher, 1);
  const std::uint64_t deduped_before = sched.wakes_deduped();
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(sched.wakes_deduped() - deduped_before, 2u);
  ASSERT_EQ(consumer.ticks.size(), 1u);
  EXPECT_EQ(consumer.ticks[0], 2u);
}

TEST(Scheduler, MultipleWakesAtDifferentCycles) {
  Scheduler sched;
  Recorder r(sched, "r");
  sched.wake_at(r, 1);
  sched.wake_at(r, 2);
  sched.wake_at(r, 7);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks, (std::vector<Cycle>{1, 2, 7}));
}

TEST(Scheduler, RunStopsAtLimit) {
  Scheduler sched;
  Recorder r(sched, "r");
  sched.wake_at(r, 100);
  EXPECT_FALSE(sched.run(50));
  EXPECT_TRUE(r.ticks.empty());
  // The pending event is still there; a later run picks it up.
  EXPECT_TRUE(sched.run(200));
  EXPECT_EQ(r.ticks.size(), 1u);
}

TEST(Scheduler, RunOrThrowThrowsOnLimit) {
  Scheduler sched;
  Recorder r(sched, "r");
  sched.wake_at(r, 100);
  EXPECT_THROW(sched.run_or_throw(50), std::runtime_error);
}

class SelfWaker : public Component {
 public:
  SelfWaker(Scheduler& s, int n) : Component(s, "selfwaker"), remaining(n) {}
  void tick(Cycle) override {
    ++count;
    if (--remaining > 0) wake();
  }
  int remaining;
  int count = 0;
};

TEST(Scheduler, SelfWakeChainsConsecutiveCycles) {
  Scheduler sched;
  SelfWaker w(sched, 10);
  sched.wake_at(w, 0);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(w.count, 10);
  EXPECT_EQ(sched.now(), 9u);
}

// Two components woken the same cycle are both ticked in that cycle.
TEST(Scheduler, SameCycleBatchDispatch) {
  Scheduler sched;
  Recorder a(sched, "a");
  Recorder b(sched, "b");
  sched.wake_at(a, 4);
  sched.wake_at(b, 4);
  EXPECT_TRUE(sched.run());
  ASSERT_EQ(a.ticks.size(), 1u);
  ASSERT_EQ(b.ticks.size(), 1u);
  EXPECT_EQ(sched.active_cycles(), 1u);
}

// ---------------------------------------------------------------------
// Calendar queue (two-tier event structure)
// ---------------------------------------------------------------------

SchedulerConfig legacy_heap_cfg() {
  SchedulerConfig cfg;
  cfg.queue = SchedulerConfig::EventQueue::kBinaryHeap;
  return cfg;
}

TEST(CalendarQueue, NearWakesLandInBucketsFarWakesOverflow) {
  Scheduler sched;  // default: calendar, 1024-cycle ring
  Recorder r(sched, "r");
  sched.wake_at(r, 1);        // bucket
  sched.wake_at(r, 1023);     // last cycle inside the ring
  sched.wake_at(r, 1024);     // first cycle beyond it -> overflow heap
  sched.wake_at(r, 5'000'000);
  EXPECT_EQ(sched.bucket_pushes(), 2u);
  EXPECT_EQ(sched.overflow_pushes(), 2u);
  EXPECT_EQ(sched.heap_pushes(),
            sched.bucket_pushes() + sched.overflow_pushes());
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks, (std::vector<Cycle>{1, 1023, 1024, 5'000'000}));
}

TEST(CalendarQueue, LegacyHeapKernelStaysSelectable) {
  Scheduler sched(legacy_heap_cfg());
  Recorder r(sched, "r");
  sched.wake_at(r, 3);
  sched.wake_at(r, 900000);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks, (std::vector<Cycle>{3, 900000}));
  EXPECT_EQ(sched.bucket_pushes(), 0u);  // every push is an overflow push
  EXPECT_EQ(sched.overflow_pushes(), 2u);
}

TEST(CalendarQueue, RingWrapsAcrossManyRevolutions) {
  // A self-waker chaining 10000 consecutive cycles crosses the default
  // 1024-cycle ring almost ten times.
  Scheduler sched;
  SelfWaker w(sched, 10000);
  sched.wake_at(w, 0);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(w.count, 10000);
  EXPECT_EQ(sched.now(), 9999u);
}

TEST(CalendarQueue, TinyRingStillCorrect) {
  SchedulerConfig cfg;
  cfg.ring_bits = 6;  // 64-cycle ring: every mid-range wake overflows
  Scheduler sched(cfg);
  Recorder r(sched, "r");
  sched.wake_at(r, 10);
  sched.wake_at(r, 63);
  sched.wake_at(r, 64);   // overflow
  sched.wake_at(r, 200);  // overflow
  EXPECT_EQ(sched.bucket_pushes(), 2u);
  EXPECT_EQ(sched.overflow_pushes(), 2u);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks, (std::vector<Cycle>{10, 63, 64, 200}));
}

TEST(CalendarQueue, RingBitsAreClampedToSaneRange) {
  SchedulerConfig cfg;
  cfg.ring_bits = 1;
  EXPECT_EQ(Scheduler(cfg).config().ring_bits, 6u);
  cfg.ring_bits = 64;
  EXPECT_EQ(Scheduler(cfg).config().ring_bits, 20u);
}

TEST(CalendarQueue, RingBitsZeroAutoSizesFromHorizonHint) {
  SchedulerConfig cfg;
  cfg.ring_bits = 0;
  // No hint: the former fixed default.
  EXPECT_EQ(Scheduler(cfg).config().ring_bits, 10u);
  // A hint sizes the smallest ring covering twice the horizon.
  cfg.horizon_hint = 5000;  // bit_width 13 -> 14 bits (16384 >= 2*5000)
  EXPECT_EQ(Scheduler(cfg).config().ring_bits, 14u);
  cfg.horizon_hint = 3;  // tiny hints still clamp up to the floor
  EXPECT_EQ(Scheduler(cfg).config().ring_bits, 6u);
  cfg.horizon_hint = ~std::uint64_t{0};  // huge hints clamp to the cap
  EXPECT_EQ(Scheduler(cfg).config().ring_bits, 20u);
}

TEST(CalendarQueue, SameCycleDispatchFollowsConstructionOrder) {
  // B's wake for cycle 2000 is requested first (far future -> overflow);
  // A's wake for the same cycle arrives later via a bucket once `now` is
  // close enough.  Same-cycle dispatch is canonical component
  // construction order in every kernel — independent of which tier the
  // wake landed in or when it was requested — so A (constructed first)
  // ticks before B in the heap and the calendar alike.  This shared
  // order is what lets the sharded kernel reproduce single-thread runs
  // bit-identically.
  struct Proxy final : Component {
    Proxy(Scheduler& s, std::string n, std::vector<std::string>* order)
        : Component(s, std::move(n)), order_(order) {}
    void tick(Cycle) override { order_->push_back(name()); }
    std::vector<std::string>* order_;
  };
  struct LateScheduler final : Component {
    LateScheduler(Scheduler& s, Component& target)
        : Component(s, "late"), target_(target) {}
    void tick(Cycle) override { scheduler().wake_at(target_, 2000); }
    Component& target_;
  };

  for (bool legacy : {false, true}) {
    Scheduler sched(legacy ? legacy_heap_cfg() : SchedulerConfig{});
    std::vector<std::string> order;
    Proxy a(sched, "a", &order);
    Proxy b(sched, "b", &order);
    LateScheduler late(sched, a);
    sched.wake_at(b, 2000);   // overflow tier (2000 > ring)
    sched.wake_at(late, 1500);  // wakes `a` for 2000 from close range
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b"})) << "legacy="
                                                           << legacy;
  }
}

TEST(CalendarQueue, ComponentWithMultiplePendingWakesUsesSpillNodes) {
  // The embedded intrusive hook covers one pending wake; stacking many
  // distinct future cycles on one component must spill cleanly.
  Scheduler sched;
  Recorder r(sched, "r");
  for (Cycle c = 1; c <= 40; ++c) sched.wake_at(r, c * 3);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(r.ticks.size(), 40u);
  for (std::size_t i = 0; i < r.ticks.size(); ++i) {
    EXPECT_EQ(r.ticks[i], (i + 1) * 3);
  }
}

TEST(CalendarQueue, IdleReflectsBothTiers) {
  Scheduler sched;
  EXPECT_TRUE(sched.idle());
  Recorder r(sched, "r");
  sched.wake_at(r, 5);  // bucket
  EXPECT_FALSE(sched.idle());
  EXPECT_TRUE(sched.run());
  EXPECT_TRUE(sched.idle());
  sched.wake_at(r, 5'000'000);  // overflow
  EXPECT_FALSE(sched.idle());
  EXPECT_TRUE(sched.run());
  EXPECT_TRUE(sched.idle());
}

// ---------------------------------------------------------------------
// FramePool
// ---------------------------------------------------------------------

TEST(FramePool, RecyclesSizeClasses) {
  FramePool pool;
  void* a = pool.allocate(100);  // rounds to 128
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.deallocate(a, 100);
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_EQ(pool.stats().bytes_retained, 128u);
  void* b = pool.allocate(120);  // same 128-byte class -> free-list hit
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().bytes_retained, 0u);
  pool.deallocate(b, 120);
}

TEST(FramePool, OversizeFramesPassThrough) {
  FramePool pool;
  void* p = pool.allocate(FramePool::kMaxPooledBytes + 1);
  ASSERT_NE(p, nullptr);
  pool.deallocate(p, FramePool::kMaxPooledBytes + 1);
  EXPECT_EQ(pool.stats().oversize, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().bytes_retained, 0u);
}

TEST(FramePool, TrimReleasesRetainedBytes) {
  FramePool pool;
  void* a = pool.allocate(64);
  pool.deallocate(a, 64);
  EXPECT_GT(pool.stats().bytes_retained, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().bytes_retained, 0u);
}

// ---------------------------------------------------------------------
// Fifo
// ---------------------------------------------------------------------

/// Pushes a burst of values, one per cycle.
class Producer : public Component {
 public:
  Producer(Scheduler& s, Fifo<int>& f, int n)
      : Component(s, "prod"), fifo(f), remaining(n) {
    f.set_producer(this);
  }
  void tick(Cycle) override {
    if (remaining > 0 && fifo.can_push()) {
      fifo.push(next++);
      --remaining;
    }
    if (remaining > 0) wake();
  }
  Fifo<int>& fifo;
  int remaining;
  int next = 0;
};

/// Pops everything available each tick and records (cycle, value).
class Consumer : public Component {
 public:
  Consumer(Scheduler& s, Fifo<int>& f) : Component(s, "cons"), fifo(f) {
    f.set_consumer(this);
  }
  void tick(Cycle now) override {
    while (!fifo.empty()) got.emplace_back(now, fifo.pop());
  }
  Fifo<int>& fifo;
  std::vector<std::pair<Cycle, int>> got;
};

TEST(Fifo, PushVisibleNextCycle) {
  Scheduler sched;
  Fifo<int> f(sched, "f", 4);
  Producer p(sched, f, 1);
  Consumer c(sched, f);
  sched.wake_at(p, 0);
  EXPECT_TRUE(sched.run());
  ASSERT_EQ(c.got.size(), 1u);
  EXPECT_EQ(c.got[0].first, 1u);  // pushed at 0, consumed at 1
  EXPECT_EQ(c.got[0].second, 0);
}

TEST(Fifo, DeliversInOrderAtFullThroughput) {
  Scheduler sched;
  Fifo<int> f(sched, "f", 2);
  Producer p(sched, f, 50);
  Consumer c(sched, f);
  sched.wake_at(p, 0);
  EXPECT_TRUE(sched.run());
  ASSERT_EQ(c.got.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c.got[static_cast<std::size_t>(i)].second, i);
    // one value per cycle, first arrives at cycle 1
    EXPECT_EQ(c.got[static_cast<std::size_t>(i)].first,
              static_cast<Cycle>(i + 1));
  }
}

/// Consumer that pops only every `period` cycles, to exercise producer
/// back-pressure and the blocked-producer wakeup path.
class SlowConsumer : public Component {
 public:
  SlowConsumer(Scheduler& s, Fifo<int>& f, Cycle period)
      : Component(s, "slow"), fifo(f), period_(period) {
    f.set_consumer(this);
  }
  void tick(Cycle now) override {
    if (now >= next_pop_ && !fifo.empty()) {
      got.push_back(fifo.pop());
      next_pop_ = now + period_;
    }
    if (!fifo.empty()) scheduler().wake_at(*this, std::max(now + 1, next_pop_));
  }
  Fifo<int>& fifo;
  Cycle period_;
  Cycle next_pop_ = 0;
  std::vector<int> got;
};

TEST(Fifo, BackpressureBlocksAndResumesProducer) {
  Scheduler sched;
  Fifo<int> f(sched, "f", 2);
  Producer p(sched, f, 20);
  SlowConsumer c(sched, f, 5);
  sched.wake_at(p, 0);
  EXPECT_TRUE(sched.run());
  ASSERT_EQ(c.got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c.got[static_cast<std::size_t>(i)], i);
}

TEST(Fifo, CapacityZeroIsUnbounded) {
  Scheduler sched;
  Fifo<int> f(sched, "f", 0);
  Producer p(sched, f, 1000);
  sched.wake_at(p, 0);
  EXPECT_TRUE(sched.run());
  EXPECT_EQ(f.size(), 1000u);
}

TEST(Fifo, PopFreesSpaceOnlyNextCycle) {
  Scheduler sched;
  Fifo<int> f(sched, "f", 1);
  // Hand-drive: producer pushes at 0; consumer pops at 1; producer sees
  // space again only at 2.
  struct Driver : Component {
    Driver(Scheduler& s, Fifo<int>& f) : Component(s, "drv"), fifo(f) {}
    void tick(Cycle now) override {
      if (now == 0) {
        EXPECT_TRUE(fifo.can_push());
        fifo.push(42);
        wake();
      } else if (now == 1) {
        EXPECT_EQ(fifo.pop(), 42);
        EXPECT_FALSE(fifo.can_push());  // slot frees at commit
        wake();
      } else if (now == 2) {
        EXPECT_TRUE(fifo.can_push());
      }
    }
    Fifo<int>& fifo;
  } d(sched, f);
  sched.wake_at(d, 0);
  EXPECT_TRUE(sched.run());
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

TEST(Stats, CountersStartAtZeroAndAccumulate) {
  StatSet s;
  EXPECT_EQ(s.get("x"), 0u);
  s.inc("x");
  s.inc("x", 4);
  EXPECT_EQ(s.get("x"), 5u);
}

TEST(Stats, AccumulatorTracksMinMeanMax) {
  StatSet s;
  s.sample("lat", 10.0);
  s.sample("lat", 20.0);
  s.sample("lat", 30.0);
  EXPECT_DOUBLE_EQ(s.acc("lat").mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.acc("lat").min(), 10.0);
  EXPECT_DOUBLE_EQ(s.acc("lat").max(), 30.0);
  EXPECT_EQ(s.acc("lat").count(), 3u);
}

TEST(Stats, MergeAddsCountersAndAccumulators) {
  StatSet a;
  StatSet b;
  a.inc("x", 2);
  b.inc("x", 3);
  b.inc("y", 1);
  a.sample("v", 1.0);
  b.sample("v", 3.0);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 1u);
  EXPECT_EQ(a.acc("v").count(), 2u);
  EXPECT_DOUBLE_EQ(a.acc("v").mean(), 2.0);
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 r(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_below(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------------------------------------------------------------------
// Task (coroutines)
// ---------------------------------------------------------------------

Task<int> make_value_task(int v) { co_return v; }

Task<int> nested_sum(int a, int b) {
  const int x = co_await make_value_task(a);
  const int y = co_await make_value_task(b);
  co_return x + y;
}

TEST(Task, LazyStartAndResult) {
  auto t = make_value_task(42);
  EXPECT_FALSE(t.done());
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.result(), 42);
}

TEST(Task, NestedCoAwaitWithSymmetricTransfer) {
  auto t = nested_sum(20, 22);
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.result(), 42);
}

Task<> throwing_task() {
  throw std::runtime_error("boom");
  co_return;
}

TEST(Task, ExceptionPropagatesToOwner) {
  auto t = throwing_task();
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow_if_error(), std::runtime_error);
}

TEST(Task, OnDoneFires) {
  bool fired = false;
  auto t = make_value_task(1);
  t.set_on_done([](void* flag) { *static_cast<bool*>(flag) = true; }, &fired);
  t.start();
  EXPECT_TRUE(fired);
}

TEST(Task, CoroutineFramesComeFromTheThreadLocalPool) {
  // Warm-up: the first task of a given frame size is a miss; every
  // subsequent one of the same shape must be served from the free list.
  {
    auto t = make_value_task(1);
    t.start();
  }
  const FramePool::Stats warm = FramePool::tls().stats();
  for (int i = 0; i < 100; ++i) {
    auto t = make_value_task(i);
    t.start();
    EXPECT_EQ(t.result(), i);
  }
  const FramePool::Stats after = FramePool::tls().stats();
  EXPECT_EQ(after.misses, warm.misses) << "warm frames must not hit malloc";
  EXPECT_GE(after.hits, warm.hits + 100);
}

}  // namespace
}  // namespace medea::sim
