/// Tests for the embedded-MPI layer (fragmentation, ordering, barrier).

#include <gtest/gtest.h>

#include <vector>

#include "core/medea.h"

namespace medea {
namespace {

core::MedeaConfig cfg_n(int cores) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = cores;
  return cfg;
}

sim::Task<> empi_sender(pe::ProcessingElement& pe, int dst,
                        std::vector<std::uint32_t> msg) {
  co_await empi::send(pe, dst, std::move(msg));
}

sim::Task<> empi_receiver(pe::ProcessingElement& pe, int src, int n,
                          std::vector<std::uint32_t>* out) {
  *out = co_await empi::receive(pe, src, n);
}

TEST(Empi, LongMessageFragmentsAndReassembles) {
  core::MedeaSystem sys(cfg_n(2));
  std::vector<std::uint32_t> msg;
  for (std::uint32_t i = 0; i < 37; ++i) msg.push_back(i * 3 + 1);
  std::vector<std::uint32_t> got;
  sys.set_program(0, empi_sender(sys.core(0), sys.node_of_rank(1), msg));
  sys.set_program(1,
                  empi_receiver(sys.core(1), sys.node_of_rank(0), 37, &got));
  sys.run();
  EXPECT_EQ(got, msg);
}

TEST(Empi, EmptyMessageIsAToken) {
  core::MedeaSystem sys(cfg_n(2));
  std::vector<std::uint32_t> got{99};
  sys.set_program(0, empi_sender(sys.core(0), sys.node_of_rank(1), {}));
  sys.set_program(1, empi_receiver(sys.core(1), sys.node_of_rank(0), 0, &got));
  sys.run();
  EXPECT_TRUE(got.empty());
}

TEST(Empi, BackToBackMessagesStayOrdered) {
  core::MedeaSystem sys(cfg_n(2));
  auto sender = [](pe::ProcessingElement& pe, int dst) -> sim::Task<> {
    for (std::uint32_t m = 0; m < 10; ++m) {
      // push_back, not a braced list: GCC 12 miscompiles initializer-list
      // locals in coroutine frames at -O2.
      std::vector<std::uint32_t> msg;
      for (std::uint32_t i = 0; i < 4; ++i) msg.push_back(m * 4 + i);
      co_await empi::send(pe, dst, std::move(msg));
    }
  };
  auto receiver = [](pe::ProcessingElement& pe, int src,
                     std::vector<std::uint32_t>* out) -> sim::Task<> {
    for (int m = 0; m < 10; ++m) {
      auto w = co_await empi::receive(pe, src, 4);
      out->insert(out->end(), w.begin(), w.end());
    }
  };
  std::vector<std::uint32_t> got;
  sys.set_program(0, sender(sys.core(0), sys.node_of_rank(1)));
  sys.set_program(1, receiver(sys.core(1), sys.node_of_rank(0), &got));
  sys.run();
  ASSERT_EQ(got.size(), 40u);
  for (std::uint32_t i = 0; i < 40; ++i) EXPECT_EQ(got[i], i);
}

TEST(Empi, DoublesRoundTrip) {
  core::MedeaSystem sys(cfg_n(2));
  const std::vector<double> vals{1.5, -2.25, 3.125, 1e10, -1e-10};
  std::vector<double> got;
  auto sender = [](pe::ProcessingElement& pe, int dst,
                   std::vector<double> v) -> sim::Task<> {
    co_await empi::send_doubles(pe, dst, v);
  };
  auto receiver = [](pe::ProcessingElement& pe, int src, int n,
                     std::vector<double>* out) -> sim::Task<> {
    *out = co_await empi::receive_doubles(pe, src, n);
  };
  sys.set_program(0, sender(sys.core(0), sys.node_of_rank(1), vals));
  sys.set_program(1, receiver(sys.core(1), sys.node_of_rank(0), 5, &got));
  sys.run();
  ASSERT_EQ(got.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(got[i], vals[i]);
}

/// Barrier correctness: no member may leave before the last one arrives.
class EmpiBarrier : public ::testing::TestWithParam<int> {};

TEST_P(EmpiBarrier, NobodyLeavesEarly) {
  const int cores = GetParam();
  core::MedeaSystem sys(cfg_n(cores));
  std::vector<sim::Cycle> arrive(static_cast<std::size_t>(cores));
  std::vector<sim::Cycle> leave(static_cast<std::size_t>(cores));
  auto prog = [](pe::ProcessingElement& pe, std::vector<int> members,
                 int rank, sim::Cycle* arr, sim::Cycle* lv) -> sim::Task<> {
    // Ranks arrive at very different times.
    co_await pe.compute(static_cast<std::uint32_t>(1 + rank * 500));
    *arr = pe.now();
    co_await empi::barrier(pe, members);
    *lv = pe.now();
  };
  for (int r = 0; r < cores; ++r) {
    sys.set_program(r, prog(sys.core(r), sys.core_nodes(), r,
                            &arrive[static_cast<std::size_t>(r)],
                            &leave[static_cast<std::size_t>(r)]));
  }
  sys.run();
  const sim::Cycle last_arrival =
      *std::max_element(arrive.begin(), arrive.end());
  for (int r = 0; r < cores; ++r) {
    EXPECT_GE(leave[static_cast<std::size_t>(r)], last_arrival)
        << "rank " << r << " left the barrier before the last arrival";
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, EmpiBarrier,
                         ::testing::Values(2, 3, 5, 8, 15));

TEST(Empi, RepeatedBarriersStaySynchronized) {
  const int cores = 4;
  core::MedeaSystem sys(cfg_n(cores));
  std::vector<int> counters(cores, 0);
  auto prog = [](pe::ProcessingElement& pe, std::vector<int> members,
                 int rank, std::vector<int>* all) -> sim::Task<> {
    for (int it = 0; it < 5; ++it) {
      // Every member must observe all counters equal before incrementing:
      // barrier separation makes the phases strict.
      for (int v : *all) {
        EXPECT_EQ(v, it) << "barrier failed to separate phases";
      }
      co_await pe.compute(static_cast<std::uint32_t>(10 + rank * 37));
      co_await empi::barrier(pe, members);
      (*all)[static_cast<std::size_t>(rank)] += 1;
      co_await empi::barrier(pe, members);
    }
  };
  for (int r = 0; r < cores; ++r) {
    sys.set_program(r, prog(sys.core(r), sys.core_nodes(), r, &counters));
  }
  sys.run();
  for (int v : counters) EXPECT_EQ(v, 5);
}

}  // namespace
}  // namespace medea
