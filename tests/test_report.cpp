/// Tests for the figure-artifact generation (gnuplot/CSV exporters).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dse/report.h"

namespace medea::dse {
namespace {

std::vector<SweepPoint> sample_points() {
  std::vector<SweepPoint> pts;
  for (int cores : {2, 4}) {
    for (std::uint32_t kb : {2u, 16u}) {
      SweepPoint p;
      p.cores = cores;
      p.cache_kb = kb;
      p.policy = mem::WritePolicy::kWriteBack;
      p.cycles_per_iteration = 1000.0 * cores + kb;
      p.area_mm2 = cores * 1.0 + kb * 0.01;
      p.label = std::to_string(cores) + "P_" + std::to_string(kb) + "k$_WB";
      pts.push_back(p);
    }
  }
  return pts;
}

TEST(Report, CurvesGroupByCacheAndPolicy) {
  const auto curves = exec_time_curves(sample_points());
  ASSERT_EQ(curves.size(), 2u);  // 2kB WB and 16kB WB
  for (const auto& c : curves) {
    EXPECT_EQ(c.cores, (std::vector<int>{2, 4}));
    EXPECT_EQ(c.cycles.size(), 2u);
  }
  EXPECT_EQ(curves[0].title, "2kB $ WB");
  EXPECT_EQ(curves[1].title, "16kB $ WB");
}

TEST(Report, CurvesSortedByCores) {
  auto pts = sample_points();
  std::swap(pts[0], pts[2]);  // scramble input order
  const auto curves = exec_time_curves(pts);
  for (const auto& c : curves) {
    EXPECT_TRUE(std::is_sorted(c.cores.begin(), c.cores.end()));
  }
}

TEST(Report, CsvHasHeaderAndOneRowPerPoint) {
  const auto csv = to_csv(sample_points());
  int lines = 0;
  for (char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 5);  // header + 4 points
  EXPECT_NE(csv.find("cores,cache_kb,policy"), std::string::npos);
  EXPECT_NE(csv.find("2P_16k$_WB"), std::string::npos);
}

TEST(Report, DatAlignsColumnsAcrossCurves) {
  const auto curves = exec_time_curves(sample_points());
  const auto dat = exec_time_dat(curves);
  // Header names both curves; data rows start with the core count.
  EXPECT_NE(dat.find("\"2kB $ WB\""), std::string::npos);
  EXPECT_NE(dat.find("\"16kB $ WB\""), std::string::npos);
  EXPECT_NE(dat.find("\n2 "), std::string::npos);
  EXPECT_NE(dat.find("\n4 "), std::string::npos);
}

TEST(Report, DatUsesNanForGaps) {
  auto pts = sample_points();
  pts.pop_back();  // 4-core 16kB point missing
  const auto dat = exec_time_dat(exec_time_curves(pts));
  EXPECT_NE(dat.find("NaN"), std::string::npos);
}

TEST(Report, GnuplotScriptsReferenceDataFile) {
  const auto curves = exec_time_curves(sample_points());
  const auto gp = exec_time_gp(curves, "fig6.dat", "Fig 6");
  EXPECT_NE(gp.find("plot "), std::string::npos);
  EXPECT_NE(gp.find("fig6.dat"), std::string::npos);
  EXPECT_NE(gp.find("using 1:2"), std::string::npos);
  EXPECT_NE(gp.find("using 1:3"), std::string::npos);
}

TEST(Report, SpeedupArtifactsCarryLabels) {
  std::vector<SpeedupPoint> curve{{2.5, 1.0, "2P_2k$_WB"},
                                  {10.0, 8.0, "11P_16k$_WB"}};
  const auto dat = speedup_dat(curve);
  EXPECT_NE(dat.find("\"11P_16k$_WB\""), std::string::npos);
  const auto gp = speedup_gp("fig7.dat", "Fig 7");
  EXPECT_NE(gp.find("with labels"), std::string::npos);
}

TEST(Report, WriteFileRoundTrips) {
  const std::string path = "test_report_artifact.tmp";
  write_file(path, "hello\n");
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::remove(path.c_str());
}

TEST(Report, WriteFileThrowsOnBadPath) {
  EXPECT_THROW(write_file("/nonexistent-dir/x/y.dat", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace medea::dse
