/// Tests for the design-space-exploration machinery: area model, Pareto
/// pruning, Kill rule, and a miniature sweep.

#include <gtest/gtest.h>

#include "dse/area.h"
#include "dse/pareto.h"
#include "dse/sweep.h"

namespace medea::dse {
namespace {

// ---------------------------------------------------------------------
// Area model
// ---------------------------------------------------------------------

TEST(Area, MonotonicInCoresAndCache) {
  AreaModel m;
  EXPECT_LT(m.chip_area_mm2(2, 2048, 32768), m.chip_area_mm2(3, 2048, 32768));
  EXPECT_LT(m.chip_area_mm2(4, 2048, 32768), m.chip_area_mm2(4, 65536, 32768));
}

TEST(Area, CalibrationAnchorsNearPaperAxes) {
  AreaModel m;
  // Fig. 7 anchors (see DESIGN.md): 11P+16kB near 10 mm², 15P+32kB near
  // 21 mm², 2P starting point below 3 mm².
  EXPECT_NEAR(m.chip_area_mm2(11, 16 * 1024, 32 * 1024), 10.0, 2.0);
  EXPECT_NEAR(m.chip_area_mm2(15, 32 * 1024, 32 * 1024), 19.0, 4.0);
  EXPECT_LT(m.chip_area_mm2(2, 2 * 1024, 32 * 1024), 3.5);
}

TEST(Area, NocOverheadDoublesLogic) {
  AreaModel m;
  AreaModel no_noc = m;
  no_noc.noc_overhead = 0.0;
  const double with_noc = m.chip_area_mm2(4, 0, 0);
  const double without = no_noc.chip_area_mm2(4, 0, 0);
  EXPECT_DOUBLE_EQ(with_noc, 2.0 * without);
}

// ---------------------------------------------------------------------
// Pareto / Kill rule
// ---------------------------------------------------------------------

TEST(Pareto, RemovesDominatedPoints) {
  std::vector<DesignPoint> pts{
      {1.0, 100.0, "a"}, {2.0, 120.0, "dominated"}, {2.5, 80.0, "b"},
      {3.0, 90.0, "dominated2"}, {4.0, 40.0, "c"},
  };
  auto f = pareto_frontier(pts);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].label, "a");
  EXPECT_EQ(f[1].label, "b");
  EXPECT_EQ(f[2].label, "c");
}

TEST(Pareto, KeepsFastestAmongEqualArea) {
  std::vector<DesignPoint> pts{{1.0, 100.0, "slow"}, {1.0, 50.0, "fast"}};
  auto f = pareto_frontier(pts);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].label, "fast");
}

TEST(Pareto, EmptyAndSingleton) {
  EXPECT_TRUE(pareto_frontier({}).empty());
  auto f = pareto_frontier({{1.0, 1.0, "x"}});
  ASSERT_EQ(f.size(), 1u);
}

TEST(KillRule, StopsWhereGainFallsBelowCost) {
  // Doubling area for 3x perf: keep.  Then doubling area for +5%: kill.
  std::vector<DesignPoint> f{
      {1.0, 300.0, "a"},
      {2.0, 100.0, "b"},   // 3x perf for 2x area: keep
      {4.0, 95.0, "c"},    // 1.05x perf for 2x area: kill
  };
  EXPECT_EQ(kill_rule_knee(f), 1u);
}

TEST(KillRule, KeepsGrowingWhileLinear) {
  std::vector<DesignPoint> f{
      {1.0, 100.0, "a"}, {2.0, 45.0, "b"}, {4.0, 20.0, "c"},
  };
  EXPECT_EQ(kill_rule_knee(f), 2u);
}

TEST(SpeedupCurve, NormalizesAgainstBaseline) {
  std::vector<DesignPoint> f{{1.0, 100.0, "a"}, {2.0, 25.0, "b"}};
  auto s = speedup_curve(f, 100.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(s[1].speedup, 4.0);
}

// ---------------------------------------------------------------------
// Miniature sweep (small grid so the test stays fast)
// ---------------------------------------------------------------------

TEST(Sweep, MiniatureDesignSpaceProducesSanePoints) {
  SweepSpec spec;
  spec.n = 8;
  spec.cores = {2, 4};
  spec.cache_kb = {2, 8};
  spec.policies = {mem::WritePolicy::kWriteBack};
  spec.threads = 2;
  const auto pts = run_sweep(spec);
  ASSERT_EQ(pts.size(), 4u);
  for (const auto& p : pts) {
    EXPECT_GT(p.cycles_per_iteration, 0.0);
    EXPECT_GT(p.area_mm2, 0.0);
    EXPECT_FALSE(p.label.empty());
  }
  // Deterministic order: cores-major.
  EXPECT_EQ(pts[0].cores, 2);
  EXPECT_EQ(pts[3].cores, 4);
}

TEST(Sweep, ResultsIndependentOfThreadCount) {
  SweepSpec spec;
  spec.n = 8;
  spec.cores = {2, 3};
  spec.cache_kb = {4};
  spec.policies = {mem::WritePolicy::kWriteBack};
  spec.threads = 1;
  const auto seq = run_sweep(spec);
  spec.threads = 4;
  const auto par = run_sweep(spec);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].cycles_per_iteration, par[i].cycles_per_iteration);
  }
}

TEST(Sweep, DesignConfigMatchesPaperTopology) {
  const auto cfg = make_design_config(15, 16, mem::WritePolicy::kWriteBack);
  EXPECT_EQ(cfg.noc_width, 4);
  EXPECT_EQ(cfg.noc_height, 4);
  EXPECT_EQ(cfg.num_compute_cores, 15);
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace medea::dse
