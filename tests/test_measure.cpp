/// Tests for the phased measurement engine: latency-histogram
/// percentile math, measurement-window classification in the
/// controller, phased warmup/measure/drain runs on both fabrics,
/// steady-state warmup detection, run-to-run determinism and
/// saturation-sweep behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "noc/flit.h"
#include "sim/stats.h"
#include "workload/measure.h"
#include "workload/saturation.h"
#include "workload/workload.h"

namespace medea {
namespace {

// ---------------------------------------------------------------------
// Percentile math
// ---------------------------------------------------------------------

/// Quantiles of a known uniform distribution must land within the
/// histogram's documented quantization error.
TEST(LatencyHistogramMath, UniformDistributionQuantiles) {
  sim::LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);

  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_DOUBLE_EQ(h.mean(), 5000.5);

  const double tol = sim::LatencyHistogram::max_relative_error();
  for (const auto& [q, expected] :
       std::vector<std::pair<double, double>>{
           {0.50, 5000.0}, {0.90, 9000.0}, {0.99, 9900.0}, {0.999, 9990.0}}) {
    const double got = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(got, expected, expected * tol + 1.0)
        << "quantile " << q << " off by more than the documented "
        << tol * 100 << "% quantization error";
  }
}

/// Values below the exact region (two sub-bucket groups) have zero
/// quantization error: quantiles are exact sample values.
TEST(LatencyHistogramMath, SmallValuesAreExact) {
  sim::LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v);
  EXPECT_EQ(h.p50(), 25u);
  EXPECT_EQ(h.quantile(0.10), 5u);
  EXPECT_EQ(h.quantile(1.0), 50u);
}

// ---------------------------------------------------------------------
// MeasurementController windowing
// ---------------------------------------------------------------------

noc::Flit flit_at(std::uint32_t uid, sim::Cycle inject) {
  noc::Flit f;
  f.uid = uid;
  f.inject_cycle = inject;
  return f;
}

/// Only flits injected inside (warmup_end, measure_end] are measured:
/// warmup samples are discarded when the window opens, drain-phase
/// injections are ignored, but in-window flits delivered during drain
/// still count.
TEST(MeasurementController, ClassifiesFlitsByInjectCycle) {
  workload::MeasurementController mc(workload::MeasurementParams{}, 1);

  // Warmup traffic (window is open from cycle 0 by default).
  mc.on_inject(2, 0, flit_at(1, 2));
  mc.on_deliver(4, 0, flit_at(1, 2));

  mc.begin_window(5);  // discards everything above
  mc.on_inject(6, 0, flit_at(2, 6));
  mc.on_inject(8, 0, flit_at(3, 8));
  mc.on_deliver(9, 0, flit_at(2, 6));  // latency 3
  mc.end_window(10);

  mc.on_inject(11, 0, flit_at(4, 11));   // drain traffic: ignored
  mc.on_deliver(12, 0, flit_at(3, 8));   // in-window, latency 4: counted
  mc.on_deliver(13, 0, flit_at(4, 11));  // ignored
  EXPECT_EQ(mc.in_flight(), 0u);
  mc.finalize(13, true);

  const workload::MeasurementResult r = mc.result();
  EXPECT_EQ(r.injected, 2u);
  EXPECT_EQ(r.delivered, 2u);
  EXPECT_EQ(r.latency.count, 2u);
  EXPECT_DOUBLE_EQ(r.latency.mean, 3.5);  // warmup latency 2 is NOT in here
  EXPECT_EQ(r.latency.min, 3u);
  EXPECT_EQ(r.latency.max, 4u);
  EXPECT_EQ(r.warmup_end, 5u);
  EXPECT_EQ(r.measure_end, 10u);
  EXPECT_TRUE(r.drained);
  // 2 flits over a 5-cycle window on 1 node.
  EXPECT_DOUBLE_EQ(r.accepted_throughput, 0.4);
}

/// The controller forwards every event — including out-of-window ones —
/// to the secondary observer, so a chained TraceRecorder sees the whole
/// run and recorded traces are identical with or without measurement.
TEST(MeasurementController, ForwardsAllEventsToSecondaryObserver) {
  struct Counter final : noc::FlitObserver {
    int injects = 0;
    int delivers = 0;
    void on_inject(sim::Cycle, int, const noc::Flit&) override { ++injects; }
    void on_deliver(sim::Cycle, int, const noc::Flit&) override {
      ++delivers;
    }
  } counter;

  workload::MeasurementController mc(workload::MeasurementParams{}, 1,
                                     &counter);
  mc.begin_window(5);
  mc.on_inject(2, 0, flit_at(1, 2));    // before window
  mc.on_inject(6, 0, flit_at(2, 6));    // inside
  mc.end_window(10);
  mc.on_inject(11, 0, flit_at(3, 11));  // after
  mc.on_deliver(9, 0, flit_at(2, 6));
  mc.on_deliver(12, 0, flit_at(3, 11));

  EXPECT_EQ(counter.injects, 3);
  EXPECT_EQ(counter.delivers, 2);
}

/// Whole-run mode: finalize() without begin/end_window measures
/// everything; a second finalize is a no-op.
TEST(MeasurementController, WholeRunWindowAndIdempotentFinalize) {
  workload::MeasurementController mc(workload::MeasurementParams{}, 2);
  mc.on_inject(1, 0, flit_at(1, 1));
  mc.on_deliver(5, 1, flit_at(1, 1));
  mc.finalize(10, true);
  mc.finalize(99, false);  // must not reopen or overwrite

  const workload::MeasurementResult r = mc.result();
  EXPECT_EQ(r.latency.count, 1u);
  EXPECT_EQ(r.latency.max, 4u);
  EXPECT_EQ(r.measure_end, 10u);
  EXPECT_EQ(r.run_cycles, 10u);
  EXPECT_TRUE(r.drained);
}

// ---------------------------------------------------------------------
// Phased runs through the run API
// ---------------------------------------------------------------------

workload::RunRequest phased_req(double rate,
                                const std::string& network = "deflection") {
  workload::RunRequest req;
  req.synthetic = workload::SyntheticParams{};
  req.synthetic->injection_rate = rate;
  req.synthetic->network = network;
  req.measurement.phased = true;
  req.measurement.warmup_cycles = 300;
  req.measurement.measure_cycles = 1024;
  return req;
}

class PhasedRunOnFabric : public ::testing::TestWithParam<const char*> {};

TEST_P(PhasedRunOnFabric, LightLoadDrainsAndTracksOfferedLoad) {
  const workload::RunResult r =
      workload::run_by_name("uniform", phased_req(0.2, GetParam()));
  const workload::MeasurementResult& m = r.measurement;

  EXPECT_TRUE(m.drained) << "0.2 flits/node/cycle must not saturate a 4x4";
  EXPECT_TRUE(r.verified_ok);
  EXPECT_EQ(r.metric_name, "measured_avg_flit_latency");
  EXPECT_GT(m.latency.count, 1000u);
  EXPECT_EQ(m.delivered, m.injected) << "drained run: every in-window "
                                        "flit must have ejected";
  EXPECT_LE(m.latency.min, m.latency.p50);
  EXPECT_LE(m.latency.p50, m.latency.p99);
  EXPECT_LE(m.latency.p99, m.latency.p999);
  EXPECT_LE(m.latency.p999, m.latency.max);
  // Offered load is measured from endpoint attempt counters and must
  // sit near the requested Bernoulli rate; below saturation accepted
  // tracks offered.
  EXPECT_NEAR(m.offered_load, 0.2, 0.03);
  EXPECT_NEAR(m.accepted_throughput, m.offered_load, 0.01);
  EXPECT_EQ(m.warmup_end, 300u);
  EXPECT_EQ(m.measure_end, 300u + 1024u);
}

INSTANTIATE_TEST_SUITE_P(Fabrics, PhasedRunOnFabric,
                         ::testing::Values("deflection", "xy"));

TEST(PhasedRun, IdenticalRequestsProduceIdenticalResults) {
  const workload::RunRequest req = phased_req(0.3);
  const workload::RunResult a = workload::run_by_name("uniform", req);
  const workload::RunResult b = workload::run_by_name("uniform", req);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.metric, b.metric);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.measurement, b.measurement)
      << "phased measurement must be bit-deterministic";
}

TEST(PhasedRun, AutoWarmupDetectsSteadyStateAndTerminates) {
  workload::RunRequest req = phased_req(0.2);
  req.measurement.auto_warmup = true;
  req.measurement.warmup_step = 256;
  req.measurement.max_warmup = 8192;
  const workload::RunResult r = workload::run_by_name("uniform", req);
  const workload::MeasurementResult& m = r.measurement;
  // Needs one priming probe plus two stable ones, and may not overrun
  // the cap.
  EXPECT_GE(m.warmup_end, 3u * 256u);
  EXPECT_LE(m.warmup_end, 8192u);
  EXPECT_TRUE(m.drained);
  EXPECT_GT(m.latency.count, 0u);
}

TEST(PhasedRun, AutoWarmupIsCappedOnUnstableTraffic) {
  workload::RunRequest req = phased_req(0.9);  // far past saturation
  req.measurement.auto_warmup = true;
  req.measurement.warmup_step = 256;
  req.measurement.max_warmup = 1024;
  req.measurement.measure_cycles = 512;
  const workload::RunResult r = workload::run_by_name("uniform", req);
  EXPECT_LE(r.measurement.warmup_end, 1024u);
  EXPECT_GE(r.measurement.warmup_end, 256u);
}

TEST(PhasedRun, BurstyInjectionHasHeavierTailThanBernoulli) {
  // Same mean load, but on-off arrivals bunch flits into bursts: the
  // tail of the latency distribution must not improve.
  const workload::RunRequest bern = phased_req(0.2);
  workload::RunRequest onoff = phased_req(0.2);
  onoff.synthetic->process.kind = noc::InjectionKind::kOnOff;

  const workload::RunResult a = workload::run_by_name("uniform", bern);
  const workload::RunResult b = workload::run_by_name("uniform", onoff);
  EXPECT_TRUE(b.measurement.drained);
  EXPECT_GE(b.measurement.latency.p99, a.measurement.latency.p99);
  // The on-off process still offers the configured mean rate.
  EXPECT_NEAR(b.measurement.offered_load, 0.2, 0.05);
}

// ---------------------------------------------------------------------
// Saturation sweeps
// ---------------------------------------------------------------------

TEST(LoadSweep, RampExpandsWithoutDriftAndValidates) {
  workload::LoadSweepSpec spec;
  spec.start = 0.05;
  spec.stop = 0.65;
  spec.step = 0.05;
  const std::vector<double> pts = workload::load_points(spec);
  ASSERT_EQ(pts.size(), 13u);
  EXPECT_DOUBLE_EQ(pts.front(), 0.05);
  EXPECT_NEAR(pts.back(), 0.65, 1e-12);

  spec.step = 0.0;
  EXPECT_THROW(workload::load_points(spec), std::invalid_argument);
  spec.step = 0.05;
  spec.stop = 0.01;
  EXPECT_THROW(workload::load_points(spec), std::invalid_argument);

  spec.loads = {0.4, 0.1};  // explicit list wins, order preserved
  EXPECT_EQ(workload::load_points(spec),
            (std::vector<double>{0.4, 0.1}));
}

TEST(LoadSweep, RejectsNonSyntheticWorkloads) {
  workload::LoadSweepSpec spec;
  spec.workload = "jacobi";
  try {
    workload::sweep_load(spec);
    FAIL() << "sweeping an app workload must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("jacobi"), std::string::npos);
  }
}

TEST(LoadSweep, HotspotSaturatesAtTheEjectBandwidthCap) {
  // All 16 nodes target one hotspot whose eject port drains 1
  // flit/cycle: aggregate accepted throughput is capped near 1/16
  // flits/node/cycle.  A sweep over {well below, well above} the cap
  // must flag exactly the second point.
  workload::LoadSweepSpec spec;
  spec.workload = "hotspot";
  spec.loads = {0.02, 0.2};
  spec.base.measurement.warmup_cycles = 300;
  spec.base.measurement.measure_cycles = 1024;
  spec.base.measurement.drain_limit = 20000;

  const workload::SaturationCurve curve = workload::sweep_load(spec);
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_FALSE(curve.points[0].saturated)
      << "offered 0.32 flits/cycle total is under the 1/cycle eject cap";
  EXPECT_TRUE(curve.points[1].saturated)
      << "offered 3.2 flits/cycle total is far past the eject cap";
  EXPECT_DOUBLE_EQ(curve.saturation_load, 0.2);
  EXPECT_LT(curve.points[1].measurement.accepted_throughput, 0.1);
  EXPECT_GT(curve.points[1].measurement.latency.p99,
            curve.points[0].measurement.latency.p99);
}

TEST(LoadSweep, StopAtSaturationEndsTheRamp) {
  workload::LoadSweepSpec spec;
  spec.workload = "hotspot";
  spec.loads = {0.2, 0.3, 0.4};  // all past the hotspot cap
  spec.base.measurement.warmup_cycles = 200;
  spec.base.measurement.measure_cycles = 512;
  spec.base.measurement.drain_limit = 20000;
  spec.stop_at_saturation = true;
  const workload::SaturationCurve curve = workload::sweep_load(spec);
  EXPECT_EQ(curve.points.size(), 1u) << "sweep must end at the first "
                                        "saturated point";
  EXPECT_DOUBLE_EQ(curve.saturation_load, 0.2);
}

}  // namespace
}  // namespace medea
