/// Tests for configuration options not exercised elsewhere: router
/// eject bandwidth, random tie-breaking, cache associativity sweeps,
/// MPMMU queue sizing, memory-map edge cases and config validation.

#include <gtest/gtest.h>

#include <memory>

#include "core/medea.h"
#include "noc/traffic.h"
#include "sim/rng.h"
#include "workload/workload.h"

namespace medea {
namespace {

// ---------------------------------------------------------------------
// Router configuration
// ---------------------------------------------------------------------

TEST(RouterConfig, RandomTieBreakIsSeedDeterministic) {
  auto run_with = [](std::uint64_t seed) {
    sim::Scheduler sched;
    noc::RouterConfig rc;
    rc.random_tie_break = true;
    noc::Network net(sched, noc::TorusGeometry(4, 4), rc, seed);
    noc::TrafficConfig tc;
    tc.pattern = noc::TrafficPattern::kHotspot;
    tc.injection_rate = 0.6;
    tc.flits_per_node = 150;
    tc.seed = 5;
    noc::run_traffic(sched, net, tc);
    return std::pair<sim::Cycle, std::uint64_t>(
        sched.now(), net.stats().get("noc.deflections_total"));
  };
  EXPECT_EQ(run_with(7), run_with(7)) << "same seed, same simulation";
}

TEST(RouterConfig, WiderEjectPortReducesHotspotLatency) {
  auto mean_latency = [](int eject_per_cycle) {
    sim::Scheduler sched;
    noc::RouterConfig rc;
    rc.eject_per_cycle = eject_per_cycle;
    noc::Network net(sched, noc::TorusGeometry(4, 4), rc);
    noc::TrafficConfig tc;
    tc.pattern = noc::TrafficPattern::kHotspot;
    tc.injection_rate = 0.5;
    tc.flits_per_node = 200;
    tc.hotspot_node = 5;
    noc::run_traffic(sched, net, tc);
    return net.stats().acc("noc.latency").mean();
  };
  EXPECT_LT(mean_latency(2), mean_latency(1))
      << "doubling local delivery bandwidth must help a hotspot";
}

TEST(RouterConfig, DeeperInjectQueueAcceptsBurstsSooner) {
  noc::RouterConfig rc;
  rc.inject_queue_depth = 8;
  sim::Scheduler sched;
  noc::Network net(sched, noc::TorusGeometry(4, 4), rc);
  auto& inj = net.inject(0);
  int pushed = 0;
  while (inj.can_push()) {
    noc::Flit f;
    f.dst = {1, 0};
    inj.push(f);
    ++pushed;
  }
  EXPECT_EQ(pushed, 8);
}

// ---------------------------------------------------------------------
// Cache associativity
// ---------------------------------------------------------------------

class CacheWays : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheWays, SameSetLinesSurviveUpToAssociativity) {
  const std::uint32_t ways = GetParam();
  mem::CacheConfig cfg{4 * 1024, mem::kLineBytes, ways,
                       mem::WritePolicy::kWriteBack};
  mem::Cache cache(cfg);
  // `ways` addresses mapping to the same set must coexist.
  const std::uint32_t probe = std::min<std::uint32_t>(ways, 4);
  for (std::uint32_t i = 0; i < probe; ++i) {
    cache.fill_line(0x100 + i * (cfg.num_sets() * mem::kLineBytes), {});
  }
  int resident = 0;
  for (std::uint32_t i = 0; i < probe; ++i) {
    resident += cache.contains(0x100 + i * (cfg.num_sets() * mem::kLineBytes));
  }
  EXPECT_EQ(resident, static_cast<int>(probe))
      << ways << "-way cache must hold " << probe << " same-set lines";
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheWays, ::testing::Values(1u, 2u, 4u));

TEST(CacheWays, DirectMappedConflictsWhereTwoWaySurvives) {
  mem::CacheConfig dm{4 * 1024, mem::kLineBytes, 1,
                      mem::WritePolicy::kWriteBack};
  mem::CacheConfig tw{4 * 1024, mem::kLineBytes, 2,
                      mem::WritePolicy::kWriteBack};
  mem::Cache c1(dm);
  mem::Cache c2(tw);
  const mem::Addr a = 0x0;
  const mem::Addr b = a + dm.size_bytes;  // same set in the DM cache
  c1.fill_line(a, {});
  c1.fill_line(b, {});
  EXPECT_FALSE(c1.contains(a)) << "direct-mapped: b evicted a";
  c2.fill_line(a, {});
  c2.fill_line(a + tw.num_sets() * mem::kLineBytes, {});
  EXPECT_TRUE(c2.contains(a)) << "2-way: both fit";
}

// ---------------------------------------------------------------------
// System config validation and topology options
// ---------------------------------------------------------------------

TEST(ConfigValidation, AcceptsEightByEightTorus) {
  // The 8-bit SRCID field (widened from the paper's 4 bits) makes 8x8+
  // tori representable.
  core::MedeaConfig cfg;
  cfg.noc_width = 8;
  cfg.noc_height = 8;  // 64 nodes <= 256 encodable src ids
  cfg.num_compute_cores = 4;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidation, RejectsOversizedNocForSrcIdField) {
  core::MedeaConfig cfg;
  cfg.noc_width = 17;
  cfg.noc_height = 17;  // 289 nodes > 256 encodable src ids
  cfg.num_compute_cores = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidation, AcceptsNonSquareGrids) {
  core::MedeaConfig cfg;
  cfg.noc_width = 2;
  cfg.noc_height = 4;
  cfg.num_compute_cores = 5;
  core::MedeaSystem sys(cfg);
  std::uint32_t got = 0;
  auto prog = [](pe::ProcessingElement& pe, mem::Addr a,
                 std::uint32_t* out) -> sim::Task<> {
    co_await pe.store(a, 9);
    auto r = co_await pe.load(a);
    *out = static_cast<std::uint32_t>(r.value);
  };
  sys.set_program(0, prog(sys.core(0), sys.private_addr(0, 0), &got));
  for (int r = 1; r < 5; ++r) {
    auto idle = [](pe::ProcessingElement& pe) -> sim::Task<> {
      co_await pe.compute(1);
    };
    sys.set_program(r, idle(sys.core(r)));
  }
  sys.run();
  EXPECT_EQ(got, 9u);
}

TEST(ConfigValidation, MpmmuCanSitAnywhere) {
  for (int node : {0, 5, 15}) {
    core::MedeaConfig cfg;
    cfg.num_compute_cores = 3;
    cfg.mpmmu_node = node;
    core::MedeaSystem sys(cfg);
    std::uint32_t got = 0;
    auto prog = [](pe::ProcessingElement& pe, mem::Addr a,
                   std::uint32_t* out) -> sim::Task<> {
      co_await pe.store(a, 33);
      co_await pe.flush_line(a);
      co_await pe.invalidate_line(a);
      auto r = co_await pe.load(a);
      *out = static_cast<std::uint32_t>(r.value);
    };
    auto idle = [](pe::ProcessingElement& pe) -> sim::Task<> {
      co_await pe.compute(1);
    };
    sys.set_program(0, prog(sys.core(0), sys.alloc_shared(64, 16), &got));
    sys.set_program(1, idle(sys.core(1)));
    sys.set_program(2, idle(sys.core(2)));
    sys.run();
    EXPECT_EQ(got, 33u) << "MPMMU at node " << node;
  }
}

TEST(ConfigValidation, FpTimingIsConfigurable) {
  // The paper quotes 60-cycle multiplies without the MulHigh option.
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 1;
  cfg.fp.mul_cycles = 60;
  core::MedeaSystem sys(cfg);
  sim::Cycle cost = 0;
  auto prog = [](pe::ProcessingElement& pe, sim::Cycle* out) -> sim::Task<> {
    co_await pe.compute(1);
    const sim::Cycle t = pe.now();
    co_await pe.fp_mul();
    *out = pe.now() - t;
  };
  sys.set_program(0, prog(sys.core(0), &cost));
  sys.run();
  EXPECT_EQ(cost, 60u);
}

TEST(ConfigValidation, SharedUncachedModeBypassesL1ForShared) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 1;
  cfg.shared_uncached = true;
  core::MedeaSystem sys(cfg);
  const mem::Addr a = sys.alloc_shared(64, 16);
  auto prog = [](pe::ProcessingElement& pe, mem::Addr addr) -> sim::Task<> {
    co_await pe.store(addr, 1);
    co_await pe.fence();
    co_await pe.load(addr);
  };
  sys.set_program(0, prog(sys.core(0), a));
  sys.run();
  EXPECT_EQ(sys.core(0).cache().stats().get("cache.read_misses"), 0u);
  EXPECT_EQ(sys.mpmmu().stats().get("mpmmu.single_reads"), 1u);
  EXPECT_EQ(sys.mpmmu().stats().get("mpmmu.single_writes"), 1u);
}

// ---------------------------------------------------------------------
// Memory-map edges
// ---------------------------------------------------------------------

TEST(MemoryMapEdge, ScratchpadWindowIsMapped) {
  mem::MemoryMapConfig c;
  c.num_cores = 2;
  mem::MemoryMap m(c);
  EXPECT_TRUE(m.is_scratchpad(m.scratchpad_base()));
  EXPECT_TRUE(m.is_mapped(m.scratchpad_base()));
  EXPECT_FALSE(m.is_scratchpad(m.scratchpad_base() + m.scratchpad_size()));
  EXPECT_FALSE(m.is_private(m.scratchpad_base()));
  EXPECT_FALSE(m.is_shared(m.scratchpad_base()));
}

TEST(MemoryMapEdge, UnmappedAccessThrows) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 1;
  core::MedeaSystem sys(cfg);
  auto prog = [](pe::ProcessingElement& pe) -> sim::Task<> {
    co_await pe.load(0x4000'0000u);  // hole between private and shared
  };
  sys.set_program(0, prog(sys.core(0)));
  EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(MemoryMapEdge, PrivateAddrRangeChecked) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 1;
  core::MedeaSystem sys(cfg);
  EXPECT_THROW(sys.private_addr(0, 1u << 20), std::out_of_range);
}

// ---------------------------------------------------------------------
// Run-request footguns: knobs that used to be silently ignored
// ---------------------------------------------------------------------

TEST(RunRequestFootguns, TraceScaleOnSyntheticWorkloadIsAnError) {
  // Pre-redesign, --trace-scale on a synthetic pattern was a silent
  // no-op.  Engaging the replay section on `uniform` must now throw an
  // error that names the misapplied knob.
  workload::RunRequest req;
  req.replay = workload::ReplayParams{};
  req.replay->trace_scale = 2.0;
  try {
    workload::run_by_name("uniform", req);
    FAIL() << "replay section on a synthetic workload must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("uniform"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trace_scale"), std::string::npos) << msg;
  }
}

TEST(RunRequestFootguns, InjectionRateOnAppWorkloadIsAnError) {
  workload::RunRequest req;
  req.synthetic = workload::SyntheticParams{};
  req.synthetic->injection_rate = 0.5;
  req.app = workload::AppParams{};
  req.app->size = 8;
  try {
    workload::run_by_name("jacobi", req);
    FAIL() << "synthetic section on an app workload must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("jacobi"), std::string::npos) << msg;
    EXPECT_NE(msg.find("injection_rate"), std::string::npos) << msg;
  }
}

TEST(RunRequestFootguns, PhasedMeasurementOnReplayIsAnError) {
  workload::RunRequest req;
  req.replay = workload::ReplayParams{};
  req.replay->trace_path = "/nonexistent.mdtr";
  req.measurement.phased = true;
  EXPECT_THROW(workload::run_by_name("replay", req), std::invalid_argument)
      << "phased warmup/measure/drain only applies to rate-controlled "
         "synthetic traffic";
}

// ---------------------------------------------------------------------
// Injection-process configuration
// ---------------------------------------------------------------------

TEST(InjectionProcessConfig, RejectsOutOfRangeRates) {
  sim::Xoshiro256 rng(1);
  noc::InjectionSpec spec;
  EXPECT_THROW(noc::make_injection_process(spec, -0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(noc::make_injection_process(spec, 1.5, rng),
               std::invalid_argument);
}

TEST(InjectionProcessConfig, RejectsUnreachableBurstRates) {
  // With on-fraction beta/(alpha+beta) = 0.02/0.07, a mean rate of 0.5
  // would need an in-burst rate of 1.75 flits/cycle — impossible.
  sim::Xoshiro256 rng(1);
  noc::InjectionSpec spec;
  spec.kind = noc::InjectionKind::kOnOff;
  EXPECT_THROW(noc::make_injection_process(spec, 0.5, rng),
               std::invalid_argument);
  spec.burst_beta = 0.0;  // must be in (0, 1]
  EXPECT_THROW(noc::make_injection_process(spec, 0.1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace medea
