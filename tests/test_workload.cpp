/// Tests for the workload engine: the registry (every scenario runnable
/// by name, including on an 8x8 torus), the RunRequest API (validation,
/// the deprecated flat-params shim), trace record/replay determinism,
/// and registry-driven DSE sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "dse/sweep.h"
#include "noc/network.h"
#include "sim/scheduler.h"
#include "workload/replay.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace medea::workload {
namespace {

/// Log of (cycle, node, uid) deliveries.  Within one cycle the global
/// interleaving across different routers follows scheduler dispatch
/// order (not physical state), so comparisons sort by (cycle, node,
/// uid); per-node subsequences stay in true delivery order either way.
struct DeliveryLog final : noc::FlitObserver {
  std::vector<std::tuple<sim::Cycle, int, std::uint32_t>> v;
  void on_inject(sim::Cycle, int, const noc::Flit&) override {}
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override {
    v.emplace_back(now, node, f.uid);
  }
  std::vector<std::tuple<sim::Cycle, int, std::uint32_t>> sorted() const {
    auto s = v;
    std::sort(s.begin(), s.end());
    return s;
  }
};

/// Fan-out observer: record a trace and log deliveries in one run.
struct RecordAndLog final : noc::FlitObserver {
  TraceRecorder* rec = nullptr;
  DeliveryLog* log = nullptr;
  void on_inject(sim::Cycle now, int node, const noc::Flit& f) override {
    rec->on_inject(now, node, f);
  }
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override {
    log->on_deliver(now, node, f);
  }
};

core::MedeaConfig tiny_machine() {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 2;
  return cfg;
}

RunRequest tiny_synth() {
  RunRequest req;
  req.machine = tiny_machine();
  SyntheticParams sp;
  sp.injection_rate = 0.3;
  sp.flits_per_node = 50;
  req.synthetic = sp;
  return req;
}

RunRequest tiny_app() {
  RunRequest req;
  req.machine = tiny_machine();
  AppParams ap;
  ap.size = 8;
  req.app = ap;
  return req;
}

/// The tiny request whose section matches `name`'s kind.
RunRequest tiny_for(const std::string& name) {
  return WorkloadRegistry::instance().at(name).kind() == WorkloadKind::kApp
             ? tiny_app()
             : tiny_synth();
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(Registry, HasAllBuiltins) {
  const auto names = WorkloadRegistry::instance().names();
  for (const char* expected :
       {"jacobi", "jacobi-sync", "jacobi-sm", "reduction", "reduction-sm",
        "alltoall", "uniform", "hotspot", "transpose", "neighbor", "bitrev",
        "replay"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  for (const Workload* w : WorkloadRegistry::instance().list()) {
    EXPECT_FALSE(w->description().empty()) << w->name();
  }
}

TEST(Registry, KindsPartitionTheBuiltins) {
  const auto& reg = WorkloadRegistry::instance();
  for (const char* name : {"jacobi", "reduction", "alltoall"}) {
    EXPECT_EQ(reg.at(name).kind(), WorkloadKind::kApp) << name;
    EXPECT_FALSE(reg.at(name).noc_only()) << name;
  }
  for (const char* name : {"uniform", "hotspot", "bitrev"}) {
    EXPECT_EQ(reg.at(name).kind(), WorkloadKind::kSynthetic) << name;
    EXPECT_TRUE(reg.at(name).noc_only()) << name;
  }
  EXPECT_EQ(reg.at("replay").kind(), WorkloadKind::kReplay);
  EXPECT_TRUE(reg.at("replay").noc_only());
}

TEST(Registry, UnknownNameHandling) {
  EXPECT_EQ(WorkloadRegistry::instance().find("no-such-workload"), nullptr);
  EXPECT_THROW(run_by_name("no-such-workload", RunRequest{}),
               std::invalid_argument);
}

TEST(Registry, EveryBuiltinRunsByName) {
  for (const char* name :
       {"jacobi", "jacobi-sync", "jacobi-sm", "reduction", "reduction-sm",
        "alltoall", "uniform", "hotspot", "transpose", "neighbor", "bitrev"}) {
    RunRequest req = tiny_for(name);
    req.verify = true;
    const RunResult r = run_by_name(name, req);
    EXPECT_GT(r.cycles, 0u) << name;
    EXPECT_GT(r.flits_delivered, 0u) << name;
    EXPECT_TRUE(r.verified_ok) << name;
    EXPECT_FALSE(r.metric_name.empty()) << name;
    // Measurement collection is on by default: every run — app or
    // NoC-only — reports a latency distribution through the observer.
    EXPECT_GT(r.measurement.latency.count, 0u) << name;
    EXPECT_GE(r.measurement.latency.p99, r.measurement.latency.p50) << name;
    EXPECT_GT(r.measurement.accepted_throughput, 0.0) << name;
  }
}

TEST(Registry, DisengagedSectionMeansDefaults) {
  // A bare request runs every kind (except replay) on its defaults.
  RunRequest req;
  req.machine = tiny_machine();
  for (const char* name : {"jacobi", "neighbor"}) {
    const RunResult r = run_by_name(name, req);
    EXPECT_GT(r.cycles, 0u) << name;
    EXPECT_GT(r.flits_delivered, 0u) << name;
  }
}

TEST(Registry, RunConfiguredUsesConfigWorkloadName) {
  RunRequest req = tiny_synth();
  req.machine.workload = "neighbor";
  const RunResult r = run_configured(req);
  EXPECT_EQ(r.flits_delivered, 16u * 50u);  // neighbor never self-addresses
}

TEST(Registry, SyntheticWorkloadsRunOnEightByEightTorus) {
  for (const char* name :
       {"uniform", "hotspot", "transpose", "neighbor", "bitrev"}) {
    RunRequest req = tiny_synth();
    req.machine.noc_width = 8;
    req.machine.noc_height = 8;
    req.synthetic->flits_per_node = 20;
    const RunResult r = run_by_name(name, req);
    EXPECT_GT(r.cycles, 0u) << name;
    EXPECT_GT(r.flits_delivered, 0u) << name;
    EXPECT_TRUE(r.verified_ok) << name;
  }
}

TEST(Registry, JacobiRunsOnEightByEightTorus) {
  // 64 nodes needs the widened 8-bit SRCID field.
  RunRequest req = tiny_app();
  req.machine.noc_width = 8;
  req.machine.noc_height = 8;
  req.machine.num_compute_cores = 4;
  req.verify = true;
  const RunResult r = run_by_name("jacobi", req);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_TRUE(r.verified_ok);
}

TEST(Registry, BitrevIsAPermutationOnPowerOfTwoFabrics) {
  // On 16 nodes the 4-bit reversal is a bijection; palindromic ids
  // (0, 6, 9, 15) map to themselves and those slots are dropped by the
  // endpoint — verified_ok checks everything sent was received.
  const RunResult r = run_by_name("bitrev", tiny_synth());
  EXPECT_TRUE(r.verified_ok);
  EXPECT_GT(r.flits_delivered, 0u);
}

TEST(Registry, AlltoallVerifiesEveryReceivedWord) {
  RunRequest req = tiny_app();
  req.machine.num_compute_cores = 4;
  req.app->size = 6;  // words per pair
  req.app->iterations = 2;
  req.verify = true;
  const RunResult r = run_by_name("alltoall", req);
  EXPECT_TRUE(r.verified_ok);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.flits_delivered, 0u);
  EXPECT_EQ(r.metric_name, "cycles_per_round");
}

TEST(Registry, SyntheticWorkloadsRunOnTheXyFabric) {
  for (const char* name : {"uniform", "bitrev"}) {
    RunRequest req = tiny_synth();
    req.synthetic->network = "xy";
    req.synthetic->flits_per_node = 30;
    const RunResult r = run_by_name(name, req);
    EXPECT_GT(r.cycles, 0u) << name;
    EXPECT_GT(r.flits_delivered, 0u) << name;
    EXPECT_TRUE(r.verified_ok) << name;
  }
  RunRequest req = tiny_synth();
  req.synthetic->network = "nonsense";
  EXPECT_THROW(run_by_name("uniform", req), std::invalid_argument);
}

TEST(Registry, SyntheticRunsAreDeterministic) {
  const RunResult a = run_by_name("uniform", tiny_synth());
  const RunResult b = run_by_name("uniform", tiny_synth());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.metric, b.metric);
  EXPECT_EQ(a.measurement, b.measurement);
}

// ---------------------------------------------------------------------
// RunRequest validation: misapplied knobs fail loudly
// ---------------------------------------------------------------------

TEST(RunApi, ReplaySectionOnSyntheticWorkloadThrows) {
  RunRequest req = tiny_synth();
  req.replay = ReplayParams{};
  req.replay->trace_path = "/tmp/whatever.bin";
  EXPECT_THROW(run_by_name("uniform", req), std::invalid_argument);
}

TEST(RunApi, SyntheticSectionOnAppThrows) {
  RunRequest req = tiny_app();
  req.synthetic = SyntheticParams{};  // engaged = explicit intent
  EXPECT_THROW(run_by_name("jacobi", req), std::invalid_argument);
}

TEST(RunApi, AppSectionOnReplayThrows) {
  RunRequest req;
  req.app = AppParams{};
  req.replay = ReplayParams{};
  req.replay->trace_path = "/tmp/whatever.bin";
  EXPECT_THROW(run_by_name("replay", req), std::invalid_argument);
}

TEST(RunApi, PhasedMeasurementOnAppThrows) {
  RunRequest req = tiny_app();
  req.measurement.phased = true;
  EXPECT_THROW(run_by_name("jacobi", req), std::invalid_argument);
}

TEST(RunApi, ValidationErrorsNameTheProblem) {
  RunRequest req = tiny_synth();
  req.app = AppParams{};
  try {
    run_by_name("uniform", req);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("uniform"), std::string::npos) << msg;
    EXPECT_NE(msg.find("app"), std::string::npos) << msg;
  }
}

TEST(RunApi, CollectOffLeavesMeasurementEmpty) {
  RunRequest req = tiny_synth();
  req.measurement.collect = false;
  const RunResult r = run_by_name("uniform", req);
  EXPECT_EQ(r.measurement.latency.count, 0u);
  EXPECT_EQ(r.measurement.accepted_throughput, 0.0);
  EXPECT_GT(r.flits_delivered, 0u);  // the run itself was unaffected
}

// ---------------------------------------------------------------------
// Record / replay determinism
// ---------------------------------------------------------------------

/// Record `name`, then replay the trace and check the replay reproduces
/// the recording: same per-flit delivery cycles and per-node order, and
/// (across two replays) bit-identical everything.
void check_record_replay(const std::string& name,
                         const RunRequest& req = tiny_synth()) {
  const Workload& w = WorkloadRegistry::instance().at(name);
  // Reference run without any observer attached.
  RunContext none{};
  const sim::Cycle ref_cycles = w.run(req, none).cycles;

  // Record, logging deliveries of the recorded run with a fan-out
  // observer (replicates record_workload(), plus delivery capture).
  // The observer must not perturb simulation results.
  TraceRecorder rec2(req.machine.noc_width, req.machine.noc_height);
  rec2.set_net_config(TraceNetConfig::from(req.machine.router));
  DeliveryLog orig;
  RecordAndLog both;
  both.rec = &rec2;
  both.log = &orig;
  RunContext ctx{&both, nullptr};
  RunResult recorded = w.run(req, ctx);
  EXPECT_EQ(recorded.cycles, ref_cycles) << "recording perturbed the run";
  const Trace trace = rec2.take(recorded.cycles, name, req.seed);
  ASSERT_FALSE(trace.events.empty());
  EXPECT_EQ(orig.v.size(), trace.events.size());

  // Replay twice onto bare NoCs.
  auto replay_once = [&](DeliveryLog& log) {
    sim::Scheduler sched;
    noc::Network net(sched,
                     noc::TorusGeometry(trace.meta.width, trace.meta.height),
                     req.machine.router, trace.meta.seed);
    net.set_observer(&log);
    return run_replay(sched, net, trace);
  };
  DeliveryLog log1, log2;
  const ReplayResult r1 = replay_once(log1);
  const ReplayResult r2 = replay_once(log2);

  // Replay-vs-replay: bit-identical (cycle count, order, everything).
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.last_delivery_cycle, r2.last_delivery_cycle);
  EXPECT_EQ(log1.v, log2.v);

  // Replay-vs-recording: every flit delivered at the recorded cycle to
  // the recorded node, and the replay drains at the recorded cycle
  // count (the full run can only outlive the NoC by PE wind-down).
  EXPECT_EQ(r1.flits_injected, trace.events.size());
  EXPECT_EQ(r1.flits_delivered, trace.events.size());
  EXPECT_EQ(log1.sorted(), orig.sorted());
  EXPECT_LE(r1.cycles, ref_cycles);
}

TEST(TraceReplay, JacobiReplayIsDeterministic) {
  check_record_replay("jacobi", tiny_app());
}

TEST(TraceReplay, UniformRandomReplayIsDeterministic) {
  check_record_replay("uniform");
}

TEST(TraceReplay, RandomTieBreakReplayUsesRecordedSeed) {
  // With random_tie_break routers the deflection choices are RNG-driven,
  // so bit-identical replay requires re-seeding the NoC from the trace
  // header (meta.seed), not from whatever the replaying party defaults to.
  RunRequest req = tiny_synth();
  req.machine.router.random_tie_break = true;
  req.synthetic->injection_rate = 0.9;  // saturate so deflections happen
  req.seed = 7;
  check_record_replay("uniform", req);
}

TEST(TraceReplay, ReplayWorkloadHonorsRecordedSeed) {
  // Same property through the registry path (ReplayWorkload must seed
  // from the header; the replay request leaves seed at its default).
  RunRequest req = tiny_synth();
  req.machine.router.random_tie_break = true;
  req.synthetic->injection_rate = 0.9;
  req.seed = 7;
  const Trace t = record_workload("uniform", req);
  const std::string path = testing::TempDir() + "/medea_seeded_replay.bin";
  save_trace(t, path);

  RunRequest rr;  // default seed (1) — must not matter
  rr.machine.router.random_tie_break = true;
  rr.replay = ReplayParams{};
  rr.replay->trace_path = path;
  const RunResult r = run_by_name("replay", rr);
  EXPECT_EQ(r.flits_delivered, t.events.size());
  EXPECT_TRUE(r.verified_ok);
  EXPECT_EQ(r.cycles, t.meta.total_cycles)
      << "replay did not reproduce the recorded timing";
}

TEST(TraceReplay, AppliedSeedReachesFullSystemRuns) {
  // seed must actually change full-system runs (it seeds the NoC's
  // per-router tie-break RNGs), and the trace header must stamp the
  // seed the run really used.  Eight cores converging on the MPMMU
  // guarantee deflections, so random_tie_break draws do happen.
  RunRequest a;
  a.machine.num_compute_cores = 8;
  a.machine.router.random_tie_break = true;
  a.app = AppParams{};
  a.app->size = 16;
  a.seed = 3;
  RunRequest b = a;
  b.seed = 4;
  const Trace ta = record_workload("jacobi", a);
  const Trace tb = record_workload("jacobi", b);
  EXPECT_EQ(ta.meta.seed, 3u);
  EXPECT_EQ(tb.meta.seed, 4u);
  EXPECT_NE(ta.events, tb.events) << "seed had no effect on the run";
}

TEST(TraceReplay, RecordingAReplayPreservesTheTrace) {
  // Recording a replay of an 8x8 trace under a default (4x4) config
  // must size the recorder from the trace's geometry and reproduce the
  // original injection schedule exactly.
  RunRequest req = tiny_synth();
  req.machine.noc_width = 8;
  req.machine.noc_height = 8;
  req.synthetic->flits_per_node = 30;
  const Trace original = record_workload("uniform", req);
  const std::string path = testing::TempDir() + "/medea_rerecord.bin";
  save_trace(original, path);

  RunRequest rr;  // default 4x4 config: trace geometry must win
  rr.replay = ReplayParams{};
  rr.replay->trace_path = path;
  const Trace rerecorded = record_workload("replay", rr);
  EXPECT_EQ(rerecorded.meta.width, 8);
  EXPECT_EQ(rerecorded.meta.height, 8);
  EXPECT_EQ(rerecorded.events, original.events);
}

TEST(TraceReplay, ReplayWorkloadRunsFromDisk) {
  const Trace t = record_workload("transpose", tiny_synth());
  EXPECT_EQ(t.meta.workload, "transpose");
  EXPECT_GT(t.meta.total_cycles, 0u);

  const std::string path = testing::TempDir() + "/medea_replay_ut.bin";
  save_trace(t, path);

  RunRequest rr;
  rr.replay = ReplayParams{};
  rr.replay->trace_path = path;
  const RunResult a = run_by_name("replay", rr);
  const RunResult b = run_by_name("replay", rr);
  EXPECT_EQ(a.flits_delivered, t.events.size());
  EXPECT_TRUE(a.verified_ok);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.metric, b.metric);
}

TEST(TraceReplay, ReplayWithoutTracePathThrows) {
  EXPECT_THROW(run_by_name("replay", RunRequest{}), std::invalid_argument);
  RunRequest rr;
  rr.replay = ReplayParams{};  // engaged but empty path
  EXPECT_THROW(run_by_name("replay", rr), std::invalid_argument);
}

TEST(TraceReplay, GeometryMismatchThrows) {
  const Trace t = record_workload("neighbor", tiny_synth());
  sim::Scheduler sched;
  noc::Network net(sched, noc::TorusGeometry(2, 2));
  EXPECT_THROW(TraceReplayer(sched, net, t), std::runtime_error);
}

// ---------------------------------------------------------------------
// Registry-driven sweeps
// ---------------------------------------------------------------------

TEST(SweepWorkloads, SweepRunsSyntheticWorkload) {
  dse::SweepSpec spec;
  spec.workload = "uniform";
  spec.cores = {2, 3};
  spec.cache_kb = {2};
  spec.policies = {mem::WritePolicy::kWriteBack};
  spec.threads = 1;
  const auto pts = dse::run_sweep(spec);
  ASSERT_EQ(pts.size(), 2u);
  for (const auto& pt : pts) {
    EXPECT_EQ(pt.workload, "uniform");
    EXPECT_EQ(pt.metric_name, "avg_flit_latency");
    EXPECT_GT(pt.cycles_per_iteration, 0.0);
    EXPECT_GT(pt.area_mm2, 0.0);
    // Non-load-axis points still collect whole-run latency.
    EXPECT_GT(pt.measurement.latency.count, 0u);
  }
}

TEST(SweepWorkloads, LoadAxisAddsPhasedMeasuredPoints) {
  dse::SweepSpec spec;
  spec.workload = "uniform";
  spec.cores = {2};
  spec.cache_kb = {2};
  spec.policies = {mem::WritePolicy::kWriteBack};
  spec.injection_rates = {0.05, 0.10};
  spec.measurement.warmup_cycles = 200;
  spec.measurement.measure_cycles = 512;
  spec.threads = 1;
  const auto pts = dse::run_sweep(spec);
  ASSERT_EQ(pts.size(), 2u);
  for (const auto& pt : pts) {
    EXPECT_EQ(pt.metric_name, "measured_avg_flit_latency");
    EXPECT_GT(pt.injection_rate, 0.0);
    EXPECT_GT(pt.measurement.latency.count, 0u);
    EXPECT_GT(pt.measurement.offered_load, 0.0);
    EXPECT_NE(pt.label.find("_l"), std::string::npos) << pt.label;
  }
  // Twice the offered load: the fabric (far below saturation) accepts
  // roughly twice the throughput.
  EXPECT_GT(pts[1].measurement.accepted_throughput,
            pts[0].measurement.accepted_throughput);
}

TEST(SweepWorkloads, SweepRunsTraceReplay) {
  const Trace t = record_workload("hotspot", tiny_synth());
  const std::string path = testing::TempDir() + "/medea_sweep_replay.bin";
  save_trace(t, path);

  dse::SweepSpec spec;
  spec.workload = "replay";
  spec.trace_path = path;
  spec.cores = {2};
  spec.cache_kb = {2};
  spec.policies = {mem::WritePolicy::kWriteBack};
  spec.threads = 1;
  const auto pts = dse::run_sweep(spec);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].workload, "replay");
  EXPECT_EQ(pts[0].metric_name, "last_delivery_cycle");
  EXPECT_GT(pts[0].cycles_per_iteration, 0.0);
}

TEST(SweepWorkloads, JacobiVariantMapsToRegistryName) {
  dse::SweepSpec spec;
  spec.workload = "jacobi";
  spec.variant = apps::JacobiVariant::kPureSharedMemory;
  spec.n = 8;
  spec.cores = {2};
  spec.cache_kb = {2};
  spec.policies = {mem::WritePolicy::kWriteBack};
  spec.threads = 1;
  const auto pts = dse::run_sweep(spec);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].workload, "jacobi-sm");
  EXPECT_EQ(pts[0].metric_name, "cycles_per_iteration");
  EXPECT_GT(pts[0].cycles_per_iteration, 0.0);
}

}  // namespace
}  // namespace medea::workload
