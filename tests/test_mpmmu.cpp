/// Unit tests for the MPMMU driven directly over the NoC (no PE): builds
/// raw request flits, checks the Fig. 4 protocols, lock semantics and the
/// MPMMU cache effect.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "mem/backing_store.h"
#include "mpmmu/mpmmu.h"
#include "noc/network.h"
#include "sim/scheduler.h"

namespace medea::mpmmu {
namespace {

using noc::Flit;
using noc::FlitSubType;
using noc::FlitType;

/// Minimal raw NoC client: queues flits for injection, records ejections.
class RawClient : public sim::Component {
 public:
  RawClient(sim::Scheduler& s, noc::Network& net, int node)
      : sim::Component(s, "raw" + std::to_string(node)), net_(net),
        node_(node) {
    net.eject(node).set_consumer(this);
    net.inject(node).set_producer(this);
  }

  void queue(Flit f) {
    tx_.push_back(f);
    scheduler().wake_at(*this, scheduler().now() + 1);
  }

  void tick(sim::Cycle now) override {
    auto& ej = net_.eject(node_);
    while (!ej.empty()) rx.emplace_back(now, ej.pop());
    auto& inj = net_.inject(node_);
    while (!tx_.empty() && inj.can_push()) {
      inj.push(tx_.front());
      tx_.pop_front();
    }
    if (!tx_.empty()) wake();
  }

  Flit make(noc::Coord dst, FlitType t, FlitSubType s, std::uint8_t seq,
            std::uint8_t burst, std::uint32_t data) {
    Flit f;
    f.valid = true;
    f.dst = dst;
    f.type = t;
    f.subtype = s;
    f.seq_num = seq;
    f.burst_size = burst;
    f.src_id = static_cast<std::uint8_t>(node_);
    f.data = data;
    f.uid = net_.next_flit_uid();
    return f;
  }

  std::vector<std::pair<sim::Cycle, Flit>> rx;

 private:
  noc::Network& net_;
  int node_;
  std::deque<Flit> tx_;
};

struct Fixture {
  explicit Fixture(MpmmuConfig cfg = {})
      : net(sched, noc::TorusGeometry(4, 4)),
        mpmmu(sched, net, /*node=*/0, /*cores=*/4, cfg, store) {
    for (int n = 1; n <= 4; ++n) {
      clients.push_back(std::make_unique<RawClient>(sched, net, n));
    }
  }
  noc::Coord mpmmu_coord() { return net.geometry().coord_of(0); }

  sim::Scheduler sched;
  mem::BackingStore store;
  noc::Network net;
  Mpmmu mpmmu;
  std::vector<std::unique_ptr<RawClient>> clients;
};

TEST(Mpmmu, SingleReadReturnsMemoryWord) {
  Fixture fx;
  fx.store.write_word(0x1000, 0xFEEDFACE);
  auto& c = *fx.clients[0];
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kSingleRead,
                 FlitSubType::kAddress, 0, 0, 0x1000));
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(c.rx.size(), 1u);
  EXPECT_EQ(c.rx[0].second.type, FlitType::kSingleRead);
  EXPECT_EQ(c.rx[0].second.subtype, FlitSubType::kData);
  EXPECT_EQ(c.rx[0].second.data, 0xFEEDFACEu);
}

TEST(Mpmmu, BlockReadReturnsFourWordsWithSequenceNumbers) {
  Fixture fx;
  fx.store.write_line(0x2000, {10, 11, 12, 13});
  auto& c = *fx.clients[0];
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kBlockRead,
                 FlitSubType::kAddress, 0, 0, 0x2000));
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(c.rx.size(), 4u);
  std::map<int, std::uint32_t> by_seq;
  for (auto& [cy, f] : c.rx) {
    EXPECT_EQ(f.type, FlitType::kBlockRead);
    EXPECT_EQ(f.burst_size, 3);
    by_seq[f.seq_num] = f.data;
  }
  ASSERT_EQ(by_seq.size(), 4u);
  EXPECT_EQ(by_seq[0], 10u);
  EXPECT_EQ(by_seq[3], 13u);
}

TEST(Mpmmu, WriteProtocolGrantThenAck) {
  Fixture fx;
  auto& c = *fx.clients[0];
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kSingleWrite,
                 FlitSubType::kAddress, 0, 0, 0x3000));
  // Run until the grant arrives.
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(c.rx.size(), 1u);
  EXPECT_EQ(c.rx[0].second.subtype, FlitSubType::kAck);  // Fig. 4a grant
  // Send the payload; expect the final Ack.
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kSingleWrite, FlitSubType::kData,
                 0, 0, 0xBEEF));
  ASSERT_TRUE(fx.sched.run(200000));
  ASSERT_EQ(c.rx.size(), 2u);
  EXPECT_EQ(c.rx[1].second.subtype, FlitSubType::kAck);
  // Value is behind the MPMMU (its cache is WB, so flush to check store).
  for (auto& wb : fx.mpmmu.cache_backdoor().flush_all()) {
    fx.store.write_line(wb.line_addr, wb.data);
  }
  EXPECT_EQ(fx.store.read_word(0x3000), 0xBEEFu);
}

TEST(Mpmmu, BlockWriteStoresWholeLine) {
  Fixture fx;
  auto& c = *fx.clients[0];
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kBlockWrite,
                 FlitSubType::kAddress, 0, 0, 0x4000));
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(c.rx.size(), 1u);  // grant
  for (int i = 0; i < 4; ++i) {
    c.queue(c.make(fx.mpmmu_coord(), FlitType::kBlockWrite, FlitSubType::kData,
                   static_cast<std::uint8_t>(i), 3,
                   static_cast<std::uint32_t>(100 + i)));
  }
  ASSERT_TRUE(fx.sched.run(200000));
  ASSERT_EQ(c.rx.size(), 2u);  // final ack
  for (auto& wb : fx.mpmmu.cache_backdoor().flush_all()) {
    fx.store.write_line(wb.line_addr, wb.data);
  }
  EXPECT_EQ(fx.store.read_line(0x4000),
            (mem::LineData{100, 101, 102, 103}));
}

TEST(Mpmmu, ReadAfterWriteServedFromMpmmuCache) {
  MpmmuConfig cfg;
  cfg.ddr.access_latency = 100;  // make DDR misses very visible
  Fixture fx(cfg);
  auto& c = *fx.clients[0];
  // Cold read: pays DDR latency.
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kSingleRead,
                 FlitSubType::kAddress, 0, 0, 0x5000));
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(c.rx.size(), 1u);
  const sim::Cycle cold = c.rx[0].first;
  // Warm read of the same line: much faster.
  const sim::Cycle t0 = fx.sched.now();
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kSingleRead,
                 FlitSubType::kAddress, 0, 0, 0x5004));
  ASSERT_TRUE(fx.sched.run(200000));
  ASSERT_EQ(c.rx.size(), 2u);
  const sim::Cycle warm = c.rx[1].first - t0;
  EXPECT_LT(warm + 50, cold) << "MPMMU cache hit should avoid DDR latency";
}

TEST(Mpmmu, UncachedConfigAlwaysPaysDdr) {
  MpmmuConfig cfg;
  cfg.use_cache = false;
  Fixture fx(cfg);
  fx.store.write_word(0x6000, 5);
  auto& c = *fx.clients[0];
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kSingleRead,
                 FlitSubType::kAddress, 0, 0, 0x6000));
  ASSERT_TRUE(fx.sched.run(100000));
  EXPECT_EQ(c.rx[0].second.data, 5u);
  EXPECT_EQ(fx.mpmmu.cache().stats().get("cache.fills"), 0u);
}

TEST(Mpmmu, LockGrantedImmediatelyWhenFree) {
  Fixture fx;
  auto& c = *fx.clients[0];
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kLock, FlitSubType::kAddress, 0,
                 0, 0x7000));
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(c.rx.size(), 1u);
  EXPECT_EQ(c.rx[0].second.type, FlitType::kLock);
  EXPECT_EQ(c.rx[0].second.subtype, FlitSubType::kAck);
}

TEST(Mpmmu, ContendedLockGrantedInFifoOrderOnUnlock) {
  Fixture fx;
  auto& a = *fx.clients[0];
  auto& b = *fx.clients[1];
  a.queue(a.make(fx.mpmmu_coord(), FlitType::kLock, FlitSubType::kAddress, 0,
                 0, 0x7000));
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(a.rx.size(), 1u);  // A holds the lock
  b.queue(b.make(fx.mpmmu_coord(), FlitType::kLock, FlitSubType::kAddress, 0,
                 0, 0x7000));
  ASSERT_TRUE(fx.sched.run(200000));
  EXPECT_TRUE(b.rx.empty()) << "B must wait while A holds the lock";
  a.queue(a.make(fx.mpmmu_coord(), FlitType::kUnlock, FlitSubType::kAddress, 0,
                 0, 0x7000));
  ASSERT_TRUE(fx.sched.run(300000));
  ASSERT_EQ(a.rx.size(), 2u);  // unlock ack
  ASSERT_EQ(b.rx.size(), 1u);  // lock grant after release
  EXPECT_EQ(b.rx[0].second.type, FlitType::kLock);
  EXPECT_EQ(b.rx[0].second.subtype, FlitSubType::kAck);
}

TEST(Mpmmu, UnlockWithoutOwnershipIsNacked) {
  Fixture fx;
  auto& c = *fx.clients[0];
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kUnlock, FlitSubType::kAddress, 0,
                 0, 0x8000));
  ASSERT_TRUE(fx.sched.run(100000));
  ASSERT_EQ(c.rx.size(), 1u);
  EXPECT_EQ(c.rx[0].second.subtype, FlitSubType::kNack);
}

TEST(Mpmmu, ServesRequestsFromMultipleCores) {
  Fixture fx;
  for (int k = 0; k < 4; ++k) {
    fx.store.write_word(0x9000 + static_cast<mem::Addr>(k) * 64,
                        static_cast<std::uint32_t>(k + 1));
    auto& c = *fx.clients[static_cast<std::size_t>(k)];
    c.queue(c.make(fx.mpmmu_coord(), FlitType::kSingleRead,
                   FlitSubType::kAddress, 0, 0,
                   0x9000 + static_cast<std::uint32_t>(k) * 64));
  }
  ASSERT_TRUE(fx.sched.run(500000));
  for (int k = 0; k < 4; ++k) {
    auto& c = *fx.clients[static_cast<std::size_t>(k)];
    ASSERT_EQ(c.rx.size(), 1u) << "client " << k;
    EXPECT_EQ(c.rx[0].second.data, static_cast<std::uint32_t>(k + 1));
  }
  EXPECT_EQ(fx.mpmmu.stats().get("mpmmu.transactions"), 4u);
}

TEST(Mpmmu, PipelinedRepliesServeBackToBackReadsFaster) {
  // §IV "MPMMU optimization": overlapping reply streaming with the next
  // token's decode shortens a read convoy.
  auto serve_time = [](bool pipelined) {
    MpmmuConfig cfg;
    cfg.pipelined_replies = pipelined;
    Fixture fx(cfg);
    for (int k = 0; k < 4; ++k) {
      auto& c = *fx.clients[static_cast<std::size_t>(k)];
      c.queue(c.make(fx.mpmmu_coord(), FlitType::kBlockRead,
                     FlitSubType::kAddress, 0, 0,
                     0x1000 + static_cast<std::uint32_t>(k) * 64));
    }
    EXPECT_TRUE(fx.sched.run(1000000));
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(fx.clients[static_cast<std::size_t>(k)]->rx.size(), 4u);
    }
    return fx.sched.now();
  };
  EXPECT_LT(serve_time(true), serve_time(false));
}

TEST(Mpmmu, PipelinedRepliesPreserveProtocolCorrectness) {
  MpmmuConfig cfg;
  cfg.pipelined_replies = true;
  Fixture fx(cfg);
  auto& a = *fx.clients[0];
  // Interleave a block read and a write from different cores.
  fx.store.write_line(0x5000, {9, 9, 9, 9});
  a.queue(a.make(fx.mpmmu_coord(), FlitType::kBlockRead,
                 FlitSubType::kAddress, 0, 0, 0x5000));
  auto& b = *fx.clients[1];
  b.queue(b.make(fx.mpmmu_coord(), FlitType::kSingleWrite,
                 FlitSubType::kAddress, 0, 0, 0x6000));
  ASSERT_TRUE(fx.sched.run(1000000));
  EXPECT_EQ(a.rx.size(), 4u);   // full line delivered
  ASSERT_EQ(b.rx.size(), 1u);   // grant
  b.queue(b.make(fx.mpmmu_coord(), FlitType::kSingleWrite, FlitSubType::kData,
                 0, 0, 0x77));
  ASSERT_TRUE(fx.sched.run(2000000));
  EXPECT_EQ(b.rx.size(), 2u);   // final ack
}

TEST(Mpmmu, IdleAfterServingEverything) {
  Fixture fx;
  auto& c = *fx.clients[0];
  c.queue(c.make(fx.mpmmu_coord(), FlitType::kSingleRead,
                 FlitSubType::kAddress, 0, 0, 0xA000));
  ASSERT_TRUE(fx.sched.run(100000));
  EXPECT_TRUE(fx.mpmmu.idle());
}

}  // namespace
}  // namespace medea::mpmmu
