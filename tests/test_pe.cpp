/// Unit tests for PE building blocks: arbiter policies, TIE interface
/// packetization/credits, and PE-level timing properties.

#include <gtest/gtest.h>

#include <deque>

#include "core/medea.h"
#include "pe/arbiter.h"
#include "pe/tie_interface.h"

namespace medea::pe {
namespace {

using noc::Flit;

// ---------------------------------------------------------------------
// Arbiter
// ---------------------------------------------------------------------

struct ArbFixture {
  explicit ArbFixture(ArbiterConfig cfg)
      : inject(sched, "inj", 0), arb(cfg, stats) {}

  Flit tag(std::uint32_t v) {
    Flit f;
    f.data = v;
    return f;
  }

  sim::Scheduler sched;
  sim::StatSet stats;
  sim::Fifo<Flit> inject;
  NocArbiter arb;
  std::deque<Flit> tie, bridge;
};

TEST(Arbiter, MuxGrantsOnePerCycleAndAlternates) {
  ArbFixture fx(ArbiterConfig{ArbiterKind::kMux, 8, true});
  fx.tie.push_back(fx.tag(1));
  fx.bridge.push_back(fx.tag(2));
  fx.arb.step(fx.inject, fx.tie, fx.bridge);
  // Exactly one granted under contention.
  EXPECT_EQ(fx.tie.size() + fx.bridge.size(), 1u);
  fx.arb.step(fx.inject, fx.tie, fx.bridge);
  EXPECT_EQ(fx.tie.size() + fx.bridge.size(), 0u);
  EXPECT_EQ(fx.stats.get("arb.contention"), 1u);
  EXPECT_EQ(fx.arb.buffered(), 0u);  // mux never stores
}

TEST(Arbiter, MuxRoundRobinIsFairUnderSustainedContention) {
  ArbFixture fx(ArbiterConfig{ArbiterKind::kMux, 8, true});
  int tie_grants = 0, bridge_grants = 0;
  for (int i = 0; i < 20; ++i) {
    if (fx.tie.empty()) fx.tie.push_back(fx.tag(1));
    if (fx.bridge.empty()) fx.bridge.push_back(fx.tag(2));
    const auto before_tie = fx.tie.size();
    fx.arb.step(fx.inject, fx.tie, fx.bridge);
    if (fx.tie.size() < before_tie) ++tie_grants; else ++bridge_grants;
  }
  EXPECT_EQ(tie_grants, 10);
  EXPECT_EQ(bridge_grants, 10);
}

TEST(Arbiter, SingleFifoBuffersWhenSwitchCongested) {
  ArbFixture fx(ArbiterConfig{ArbiterKind::kSingleFifo, 8, true});
  // Congest the switch: fill the inject queue via a capacity-2 stand-in.
  sim::Fifo<Flit> tiny(fx.sched, "tiny", 1);
  tiny.push(fx.tag(0));  // stays staged; occupancy blocks further pushes
  fx.tie.push_back(fx.tag(1));
  fx.bridge.push_back(fx.tag(2));
  fx.arb.step(tiny, fx.tie, fx.bridge);
  fx.arb.step(tiny, fx.tie, fx.bridge);
  // Both interface flits were absorbed into the arbiter queue even though
  // the switch accepted nothing.
  EXPECT_TRUE(fx.tie.empty());
  EXPECT_TRUE(fx.bridge.empty());
  EXPECT_EQ(fx.arb.buffered(), 2u);
}

TEST(Arbiter, SingleFifoRespectsDepth) {
  ArbFixture fx(ArbiterConfig{ArbiterKind::kSingleFifo, 2, true});
  sim::Fifo<Flit> tiny(fx.sched, "tiny", 1);
  tiny.push(fx.tag(0));
  for (int i = 0; i < 5; ++i) {
    fx.tie.push_back(fx.tag(static_cast<std::uint32_t>(i)));
    fx.arb.step(tiny, fx.tie, fx.bridge);
  }
  EXPECT_EQ(fx.arb.buffered(), 2u);  // bounded by depth
  EXPECT_FALSE(fx.tie.empty());      // the rest waits at the interface
}

TEST(Arbiter, DualFifoDrainsHighPriorityFirst) {
  ArbFixture fx(ArbiterConfig{ArbiterKind::kDualFifo, 8, true});
  // Load both queues while the switch is blocked.
  sim::Fifo<Flit> tiny(fx.sched, "tiny", 1);
  tiny.push(fx.tag(0));
  for (int i = 0; i < 3; ++i) {
    fx.tie.push_back(fx.tag(100 + static_cast<std::uint32_t>(i)));
    fx.bridge.push_back(fx.tag(200 + static_cast<std::uint32_t>(i)));
    fx.arb.step(tiny, fx.tie, fx.bridge);
  }
  ASSERT_EQ(fx.arb.buffered(), 6u);
  // Now drain through an open switch: HP (TIE) must all leave before BE.
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 6; ++i) {
    sim::Fifo<Flit> open_port(fx.sched, "open", 0);
    fx.arb.step(open_port, fx.tie, fx.bridge);
    ASSERT_EQ(open_port.producer_occupancy(), 1u);
    // Peek at what was pushed by committing manually is awkward; instead
    // rely on ordering: count remaining buffered.
    order.push_back(static_cast<std::uint32_t>(fx.arb.buffered()));
  }
  EXPECT_EQ(fx.arb.buffered(), 0u);
}

TEST(Arbiter, DualFifoAcceptsBothInterfacesSameCycle) {
  ArbFixture fx(ArbiterConfig{ArbiterKind::kDualFifo, 8, true});
  sim::Fifo<Flit> tiny(fx.sched, "tiny", 1);
  tiny.push(fx.tag(0));
  fx.tie.push_back(fx.tag(1));
  fx.bridge.push_back(fx.tag(2));
  fx.arb.step(tiny, fx.tie, fx.bridge);
  EXPECT_TRUE(fx.tie.empty());
  EXPECT_TRUE(fx.bridge.empty());
  EXPECT_EQ(fx.arb.buffered(), 2u);
}

// ---------------------------------------------------------------------
// TIE interface
// ---------------------------------------------------------------------

struct TieFixture {
  TieFixture() : net(sched, noc::TorusGeometry(4, 4)), tie(net, 1, stats) {}
  sim::Scheduler sched;
  sim::StatSet stats;
  noc::Network net;
  TieInterface tie;
};

TEST(Tie, SendStampsSequenceNumbersAndBurst) {
  TieFixture fx;
  const std::uint32_t words[3] = {7, 8, 9};
  fx.tie.start_send(2, words, 3);
  ASSERT_EQ(fx.tie.tx_queue().size(), 3u);
  int i = 0;
  for (const auto& f : fx.tie.tx_queue()) {
    EXPECT_EQ(f.type, noc::FlitType::kMessage);
    EXPECT_EQ(f.subtype, noc::kMpData);
    EXPECT_EQ(f.seq_num & 3, i);           // word offset
    EXPECT_EQ(f.burst_size, 2);            // 3 words -> burst = n-1
    EXPECT_EQ(f.src_id, 1);
    ++i;
  }
}

TEST(Tie, CreditsLimitOutstandingPackets) {
  TieFixture fx;
  const std::uint32_t w[1] = {1};
  EXPECT_TRUE(fx.tie.can_send(2));
  fx.tie.start_send(2, w, 1);
  EXPECT_TRUE(fx.tie.can_send(2));
  fx.tie.start_send(2, w, 1);
  EXPECT_FALSE(fx.tie.can_send(2)) << "double buffer = 2 credits";
  // Different destination unaffected.
  EXPECT_TRUE(fx.tie.can_send(3));
}

TEST(Tie, OutOfOrderFlitsLandBySequenceNumber) {
  TieFixture fx;
  // Build a 4-word packet from node 2, slot 0, delivered in reverse.
  for (int i = 3; i >= 0; --i) {
    noc::Flit f;
    f.type = noc::FlitType::kMessage;
    f.subtype = noc::kMpData;
    f.src_id = 2;
    f.seq_num = static_cast<std::uint8_t>(i);
    f.burst_size = 3;
    f.data = static_cast<std::uint32_t>(10 + i);
    const bool complete = fx.tie.on_rx_flit(f);
    EXPECT_EQ(complete, i == 0);  // completes on the last missing flit
  }
  ASSERT_TRUE(fx.tie.packet_ready(2));
  const auto words = fx.tie.consume_packet(2);
  EXPECT_EQ(words, (std::vector<std::uint32_t>{10, 11, 12, 13}));
}

TEST(Tie, ConsumeQueuesCreditReturn) {
  TieFixture fx;
  noc::Flit f;
  f.type = noc::FlitType::kMessage;
  f.subtype = noc::kMpData;
  f.src_id = 2;
  f.seq_num = 0;
  f.burst_size = 0;
  f.data = 5;
  fx.tie.on_rx_flit(f);
  fx.tie.consume_packet(2);
  ASSERT_FALSE(fx.tie.tx_queue().empty());
  EXPECT_EQ(fx.tie.tx_queue().front().subtype, noc::FlitSubType::kAck);
  EXPECT_EQ(fx.tie.tx_queue().front().dst, fx.net.geometry().coord_of(2));
}

TEST(Tie, CreditReturnRestoresSendability) {
  TieFixture fx;
  const std::uint32_t w[1] = {1};
  fx.tie.start_send(2, w, 1);
  fx.tie.start_send(2, w, 1);
  ASSERT_FALSE(fx.tie.can_send(2));
  noc::Flit credit;
  credit.type = noc::FlitType::kMessage;
  credit.subtype = noc::FlitSubType::kAck;
  credit.src_id = 2;
  fx.tie.on_rx_flit(credit);
  EXPECT_TRUE(fx.tie.can_send(2));
}

TEST(Tie, InOrderDeliveryAcrossSlots) {
  TieFixture fx;
  // Packet in slot 1 (sent second) arrives entirely before slot 0.
  auto mk = [](std::uint8_t slot, std::uint8_t off, std::uint32_t v) {
    noc::Flit f;
    f.type = noc::FlitType::kMessage;
    f.subtype = noc::kMpData;
    f.src_id = 3;
    f.seq_num = static_cast<std::uint8_t>((slot << 2) | off);
    f.burst_size = 0;
    f.data = v;
    return f;
  };
  fx.tie.on_rx_flit(mk(1, 0, 222));  // second packet fully arrived
  EXPECT_FALSE(fx.tie.packet_ready(3)) << "first packet not yet here";
  fx.tie.on_rx_flit(mk(0, 0, 111));
  ASSERT_TRUE(fx.tie.packet_ready(3));
  EXPECT_EQ(fx.tie.consume_packet(3), (std::vector<std::uint32_t>{111}));
  ASSERT_TRUE(fx.tie.packet_ready(3));
  EXPECT_EQ(fx.tie.consume_packet(3), (std::vector<std::uint32_t>{222}));
}

// ---------------------------------------------------------------------
// PE timing properties (through a tiny MedeaSystem)
// ---------------------------------------------------------------------

core::MedeaConfig one_core() {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 1;
  return cfg;
}

TEST(PeTiming, ComputeCostsExactCycles) {
  core::MedeaSystem sys(one_core());
  sim::Cycle t0 = 0, t1 = 0;
  auto prog = [](pe::ProcessingElement& pe, sim::Cycle* a,
                 sim::Cycle* b) -> sim::Task<> {
    co_await pe.compute(1);  // align to a known cycle
    *a = pe.now();
    co_await pe.compute(100);
    *b = pe.now();
  };
  sys.set_program(0, prog(sys.core(0), &t0, &t1));
  sys.run();
  EXPECT_EQ(t1 - t0, 100u);
}

TEST(PeTiming, FpCostsMatchPaper) {
  core::MedeaSystem sys(one_core());
  sim::Cycle t0 = 0, t_add = 0, t_mul = 0;
  auto prog = [](pe::ProcessingElement& pe, sim::Cycle* a, sim::Cycle* b,
                 sim::Cycle* c) -> sim::Task<> {
    co_await pe.compute(1);
    *a = pe.now();
    co_await pe.fp_add();
    *b = pe.now();
    co_await pe.fp_mul();
    *c = pe.now();
  };
  sys.set_program(0, prog(sys.core(0), &t0, &t_add, &t_mul));
  sys.run();
  EXPECT_EQ(t_add - t0, 19u);   // DP add: 19 cycles (§II-B)
  EXPECT_EQ(t_mul - t_add, 26u);  // DP mul with MulHigh: 26 cycles
}

TEST(PeTiming, CacheHitLoadIsSingleCycle) {
  core::MedeaSystem sys(one_core());
  sim::Cycle miss_cost = 0, hit_cost = 0;
  auto prog = [](pe::ProcessingElement& pe, mem::Addr a, sim::Cycle* miss,
                 sim::Cycle* hit) -> sim::Task<> {
    sim::Cycle t = pe.now();
    co_await pe.load(a);  // cold miss
    *miss = pe.now() - t;
    t = pe.now();
    co_await pe.load(a);  // hit
    *hit = pe.now() - t;
  };
  sys.set_program(0, prog(sys.core(0), sys.private_addr(0, 0x40), &miss_cost,
                          &hit_cost));
  sys.run();
  EXPECT_EQ(hit_cost, 1u);
  EXPECT_GT(miss_cost, 20u) << "a miss must pay NoC + MPMMU + DDR latency";
}

TEST(PeTiming, MissFillsWholeLine) {
  core::MedeaSystem sys(one_core());
  auto prog = [](pe::ProcessingElement& pe, mem::Addr a) -> sim::Task<> {
    co_await pe.load(a);       // miss: fills 16-byte line
    co_await pe.load(a + 4);   // hits in the same line
    co_await pe.load(a + 8);
    co_await pe.load(a + 12);
  };
  sys.set_program(0, prog(sys.core(0), sys.private_addr(0, 0x100)));
  sys.run();
  const auto& cs = sys.core(0).cache().stats();
  EXPECT_EQ(cs.get("cache.read_misses"), 1u);
  EXPECT_EQ(cs.get("cache.read_hits"), 3u);
}

TEST(PeTiming, WriteBackKeepsStoresLocal) {
  core::MedeaSystem sys(one_core());
  auto prog = [](pe::ProcessingElement& pe, mem::Addr a) -> sim::Task<> {
    for (int i = 0; i < 64; ++i) {
      co_await pe.store(a, static_cast<std::uint32_t>(i));  // same word
    }
  };
  sys.set_program(0, prog(sys.core(0), sys.private_addr(0, 0x200)));
  sys.run();
  // One fill for the write-allocate; after that, zero NoC traffic.
  EXPECT_EQ(sys.core(0).stats().get("pe.fills_requested"), 1u);
  EXPECT_EQ(sys.mpmmu().stats().get("mpmmu.single_writes"), 0u);
}

TEST(PeTiming, WriteThroughSendsEveryStoreToMemory) {
  core::MedeaConfig cfg = one_core();
  cfg.l1.policy = mem::WritePolicy::kWriteThrough;
  core::MedeaSystem sys(cfg);
  auto prog = [](pe::ProcessingElement& pe, mem::Addr a) -> sim::Task<> {
    for (int i = 0; i < 16; ++i) {
      co_await pe.store(a, static_cast<std::uint32_t>(i));
    }
    co_await pe.fence();
  };
  sys.set_program(0, prog(sys.core(0), sys.private_addr(0, 0x200)));
  sys.run();
  EXPECT_EQ(sys.mpmmu().stats().get("mpmmu.single_writes"), 16u);
}

TEST(PeTiming, ReorderBufferHandlesOutOfOrderBlockRead) {
  // Functional guarantee: a block read always reassembles correctly even
  // though deflection routing may scramble reply flits.
  core::MedeaSystem sys(one_core());
  const mem::Addr a = sys.private_addr(0, 0x300);
  sys.memory().write_line(a, {41, 42, 43, 44});
  std::uint32_t w0 = 0, w3 = 0;
  auto prog = [](pe::ProcessingElement& pe, mem::Addr addr, std::uint32_t* x,
                 std::uint32_t* y) -> sim::Task<> {
    auto r0 = co_await pe.load(addr);
    auto r3 = co_await pe.load(addr + 12);
    *x = static_cast<std::uint32_t>(r0.value);
    *y = static_cast<std::uint32_t>(r3.value);
  };
  sys.set_program(0, prog(sys.core(0), a, &w0, &w3));
  sys.run();
  EXPECT_EQ(w0, 41u);
  EXPECT_EQ(w3, 44u);
}

TEST(PeTiming, MpSendThroughputOneFlitPerCycle) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 2;
  core::MedeaSystem sys(cfg);
  sim::Cycle send_cost = 0;
  auto sender = [](pe::ProcessingElement& pe, int dst,
                   sim::Cycle* cost) -> sim::Task<> {
    co_await pe.compute(1);
    const sim::Cycle t = pe.now();
    std::vector<std::uint32_t> msg{1, 2, 3, 4};
    co_await pe.mp_send(dst, std::move(msg));
    *cost = pe.now() - t;
  };
  auto receiver = [](pe::ProcessingElement& pe, int src) -> sim::Task<> {
    co_await pe.mp_recv(src);
  };
  sys.set_program(0, sender(sys.core(0), sys.node_of_rank(1), &send_cost));
  sys.set_program(1, receiver(sys.core(1), sys.node_of_rank(0)));
  sys.run();
  // 4 flits at 1/cycle plus a couple of cycles of port/arbiter latency.
  EXPECT_GE(send_cost, 4u);
  EXPECT_LE(send_cost, 10u);
}

}  // namespace
}  // namespace medea::pe
