/// Unit tests for the trace format: varint serialization round-trips,
/// header validation, and the recorder's capture fidelity.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "noc/network.h"
#include "noc/traffic.h"
#include "sim/scheduler.h"
#include "workload/trace.h"

namespace medea::workload {
namespace {

Trace sample_trace() {
  Trace t;
  t.meta.width = 4;
  t.meta.height = 4;
  t.meta.coord_bits = 2;
  t.meta.seed = 12345;
  t.meta.total_cycles = 987654321;
  t.meta.workload = "uniform";
  for (int i = 0; i < 100; ++i) {
    TraceEvent e;
    e.cycle = 2 + static_cast<sim::Cycle>(i) * 3;
    e.src = static_cast<std::uint16_t>(i % 16);
    e.dst = static_cast<std::uint16_t>((i * 7) % 16);
    e.size = static_cast<std::uint16_t>(1 + i % 4);
    e.uid = static_cast<std::uint32_t>(1000000 + i);
    e.payload = 0x123456789ABCDEFull ^ static_cast<std::uint64_t>(i);
    t.events.push_back(e);
  }
  return t;
}

TEST(TraceCodec, CoordBitsForGeometry) {
  EXPECT_EQ(coord_bits_for(4, 4), 2);
  EXPECT_EQ(coord_bits_for(8, 8), 3);
  EXPECT_EQ(coord_bits_for(2, 8), 3);
  EXPECT_EQ(coord_bits_for(16, 16), 4);
  EXPECT_EQ(coord_bits_for(1, 1), 1);
}

TEST(TraceCodec, SerializeParseRoundTrip) {
  const Trace t = sample_trace();
  const auto bytes = serialize_trace(t);
  const Trace u = parse_trace(bytes.data(), bytes.size());
  EXPECT_EQ(u, t);
}

TEST(TraceCodec, EmptyTraceRoundTrips) {
  Trace t;
  t.meta.width = 8;
  t.meta.height = 8;
  t.meta.coord_bits = 3;
  const auto bytes = serialize_trace(t);
  EXPECT_EQ(parse_trace(bytes.data(), bytes.size()), t);
}

TEST(TraceCodec, LargeFieldValuesRoundTrip) {
  Trace t;
  t.meta.width = 16;
  t.meta.height = 16;
  t.meta.coord_bits = 4;
  t.meta.seed = ~0ull;
  t.meta.total_cycles = ~0ull >> 1;
  TraceEvent e;
  e.cycle = 1ull << 40;
  e.src = 255;
  e.dst = 255;
  e.size = 16;
  e.uid = ~0u;
  e.payload = ~0ull;
  t.events.push_back(e);
  const auto bytes = serialize_trace(t);
  EXPECT_EQ(parse_trace(bytes.data(), bytes.size()), t);
}

TEST(TraceCodec, CompactEncoding) {
  // The varint format should beat a naive fixed-width record layout
  // (8+2+2+2+4+8 = 26 bytes/event) by a wide margin on typical traces.
  const Trace t = sample_trace();
  const auto bytes = serialize_trace(t);
  EXPECT_LT(bytes.size(), t.events.size() * 26);
}

TEST(TraceCodec, SaveLoadRoundTrip) {
  const Trace t = sample_trace();
  const std::string path = testing::TempDir() + "/medea_trace_roundtrip.bin";
  save_trace(t, path);
  EXPECT_EQ(load_trace(path), t);
}

TEST(TraceCodec, RejectsBadMagic) {
  auto bytes = serialize_trace(sample_trace());
  bytes[0] = 'X';
  EXPECT_THROW(parse_trace(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(TraceCodec, RejectsUnsupportedVersion) {
  auto bytes = serialize_trace(sample_trace());
  bytes[4] = kTraceVersion + 1;
  EXPECT_THROW(parse_trace(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(TraceCodec, RejectsTruncation) {
  const auto bytes = serialize_trace(sample_trace());
  // Any prefix shorter than the full file must throw, never crash.
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{5},
                        bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(parse_trace(bytes.data(), n), std::runtime_error) << n;
  }
}

TEST(TraceCodec, RejectsTrailingGarbage) {
  auto bytes = serialize_trace(sample_trace());
  bytes.push_back(0x00);
  EXPECT_THROW(parse_trace(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(TraceCodec, RejectsOutOfRangeNodeIds) {
  Trace t;
  t.meta.width = 2;
  t.meta.height = 2;
  t.meta.coord_bits = 1;
  TraceEvent e;
  e.cycle = 2;
  e.src = 4;  // only nodes 0..3 exist
  t.events.push_back(e);
  const auto bytes = serialize_trace(t);
  EXPECT_THROW(parse_trace(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(TraceCodec, RejectsUnsortedEvents) {
  Trace t = sample_trace();
  std::swap(t.events.front().cycle, t.events.back().cycle);
  EXPECT_THROW(serialize_trace(t), std::runtime_error);
}

TEST(TraceCodec, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace(testing::TempDir() + "/no_such_trace.bin"),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Recorder capture
// ---------------------------------------------------------------------

TEST(TraceRecorderTest, CapturesSyntheticInjections) {
  sim::Scheduler sched;
  noc::Network net(sched, noc::TorusGeometry(4, 4));
  TraceRecorder rec(4, 4);
  net.set_observer(&rec);

  noc::TrafficConfig tc;
  tc.pattern = noc::TrafficPattern::kNeighbor;
  tc.flits_per_node = 20;
  tc.injection_rate = 0.5;
  const int received = noc::run_traffic(sched, net, tc);

  const Trace t = rec.take(sched.now(), "neighbor", tc.seed);
  // One event per injected flit; everything injected gets delivered.
  EXPECT_EQ(rec.events().size(), 0u);  // moved out by take()
  EXPECT_EQ(t.events.size(), static_cast<std::size_t>(received));
  EXPECT_EQ(t.meta.workload, "neighbor");
  EXPECT_EQ(t.meta.coord_bits, 2);

  sim::Cycle prev = 0;
  for (const TraceEvent& e : t.events) {
    EXPECT_GE(e.cycle, prev);  // recorded in cycle order
    prev = e.cycle;
    EXPECT_LT(e.src, 16);
    EXPECT_LT(e.dst, 16);
    EXPECT_EQ(e.dst, static_cast<std::uint16_t>((e.src + 1) % 16));
    // The payload word must decode back to the event's destination.
    const noc::Flit f = noc::decode_flit(e.payload, t.meta.coord_bits);
    EXPECT_EQ(f.dst.y * 4 + f.dst.x, e.dst);
    EXPECT_EQ(f.src_id, e.src);
  }
}

}  // namespace
}  // namespace medea::workload
