/// Unit tests for the memory subsystem: map, backing store, L1 cache.

#include <gtest/gtest.h>

#include "mem/backing_store.h"
#include "mem/cache.h"
#include "mem/ddr.h"
#include "mem/memory_map.h"

namespace medea::mem {
namespace {

// ---------------------------------------------------------------------
// Address helpers / memory map
// ---------------------------------------------------------------------

TEST(AddrHelpers, Alignment) {
  EXPECT_EQ(word_align(0x1003), 0x1000u);
  EXPECT_EQ(line_align(0x1017), 0x1010u);
  EXPECT_EQ(word_in_line(0x1010), 0);
  EXPECT_EQ(word_in_line(0x1014), 1);
  EXPECT_EQ(word_in_line(0x101C), 3);
}

TEST(MemoryMap, PrivateSegmentsAreDisjointAndOwned) {
  MemoryMapConfig c;
  c.num_cores = 4;
  MemoryMap m(c);
  for (int k = 0; k < 4; ++k) {
    const Addr base = m.private_base(k);
    EXPECT_TRUE(m.is_private(base));
    EXPECT_TRUE(m.is_private_of(base, k));
    EXPECT_EQ(m.private_owner(base), k);
    EXPECT_EQ(m.private_owner(base + m.private_size() - 4), k);
  }
  EXPECT_FALSE(m.is_private_of(m.private_base(1), 0));
}

TEST(MemoryMap, SharedSegmentBoundaries) {
  MemoryMapConfig c;
  c.num_cores = 2;
  MemoryMap m(c);
  EXPECT_TRUE(m.is_shared(m.shared_base()));
  EXPECT_TRUE(m.is_shared(m.shared_base() + m.shared_size() - 4));
  EXPECT_FALSE(m.is_shared(m.shared_base() + m.shared_size()));
  EXPECT_FALSE(m.is_shared(0));
  EXPECT_EQ(m.private_owner(m.shared_base()), -1);
}

TEST(MemoryMap, UnmappedHole) {
  MemoryMapConfig c;
  c.num_cores = 1;
  MemoryMap m(c);
  const Addr hole = c.private_segment_size + 0x1000;
  EXPECT_FALSE(m.is_mapped(hole));
}

TEST(DoubleWords, RoundTrip) {
  for (double v : {0.0, 1.0, -3.25, 1e300, -1e-300, 0.1}) {
    EXPECT_EQ(make_double(double_lo(v), double_hi(v)), v);
  }
}

// ---------------------------------------------------------------------
// Backing store
// ---------------------------------------------------------------------

TEST(BackingStore, ColdReadsAreZero) {
  BackingStore s;
  EXPECT_EQ(s.read_word(0x12345678 & ~3u), 0u);
}

TEST(BackingStore, WordReadWrite) {
  BackingStore s;
  s.write_word(0x100, 0xCAFEBABE);
  EXPECT_EQ(s.read_word(0x100), 0xCAFEBABEu);
  s.write_word(0x100, 1);
  EXPECT_EQ(s.read_word(0x100), 1u);
}

TEST(BackingStore, LineReadWrite) {
  BackingStore s;
  LineData line{1, 2, 3, 4};
  s.write_line(0x200, line);
  EXPECT_EQ(s.read_line(0x200), line);
  EXPECT_EQ(s.read_word(0x208), 3u);
}

TEST(BackingStore, DoubleReadWrite) {
  BackingStore s;
  s.write_double(0x300, 2.5);
  EXPECT_DOUBLE_EQ(s.read_double(0x300), 2.5);
}

TEST(BackingStore, SparsePagesOnlyWhereTouched) {
  BackingStore s;
  s.write_word(0x0, 1);
  s.write_word(0x40000000, 2);
  EXPECT_EQ(s.touched_pages(), 2u);
}

// ---------------------------------------------------------------------
// DDR timing
// ---------------------------------------------------------------------

TEST(Ddr, BurstCycles) {
  DdrConfig d;
  d.access_latency = 20;
  d.per_word_latency = 2;
  EXPECT_EQ(d.burst_cycles(1), 20u);
  EXPECT_EQ(d.burst_cycles(4), 26u);
}

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

CacheConfig small_wb() {
  return CacheConfig{2 * 1024, kLineBytes, 2, WritePolicy::kWriteBack};
}

TEST(Cache, ConfigDerivedSizes) {
  Cache c(small_wb());
  EXPECT_EQ(c.config().num_lines(), 128u);
  EXPECT_EQ(c.config().num_sets(), 64u);
}

TEST(Cache, ReadMissThenHitAfterFill) {
  Cache c(small_wb());
  EXPECT_FALSE(c.read_word(0x100).has_value());
  c.fill_line(0x100, {10, 11, 12, 13});
  auto v = c.read_word(0x104);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11u);
  EXPECT_EQ(c.stats().get("cache.read_misses"), 1u);
  EXPECT_EQ(c.stats().get("cache.read_hits"), 1u);
}

TEST(Cache, WriteBackDirtiesLineAndFlushReturnsData) {
  Cache c(small_wb());
  c.fill_line(0x100, {0, 0, 0, 0});
  EXPECT_TRUE(c.write_word(0x104, 99));
  EXPECT_TRUE(c.line_dirty(0x100));
  auto wb = c.flush_line(0x100);
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(wb->line_addr, 0x100u);
  EXPECT_EQ(wb->data[1], 99u);
  EXPECT_FALSE(c.line_dirty(0x100));
  // Second flush: clean, nothing to do.
  EXPECT_FALSE(c.flush_line(0x100).has_value());
  // Data still readable (flush keeps the line).
  EXPECT_EQ(*c.read_word(0x104), 99u);
}

TEST(Cache, WriteBackMissReturnsFalseForWriteAllocate) {
  Cache c(small_wb());
  EXPECT_FALSE(c.write_word(0x100, 5));
  EXPECT_EQ(c.stats().get("cache.write_misses"), 1u);
}

TEST(Cache, WriteThroughNeverDirty) {
  CacheConfig cfg = small_wb();
  cfg.policy = WritePolicy::kWriteThrough;
  Cache c(cfg);
  c.fill_line(0x100, {1, 2, 3, 4});
  EXPECT_TRUE(c.write_word(0x100, 42));  // hit: updates
  EXPECT_FALSE(c.line_dirty(0x100));
  EXPECT_EQ(*c.read_word(0x100), 42u);
  EXPECT_TRUE(c.write_word(0x2000, 7));  // miss: no-allocate
  EXPECT_FALSE(c.contains(0x2000));
}

TEST(Cache, EvictionWritesBackDirtyVictim) {
  CacheConfig cfg = small_wb();
  cfg.ways = 1;  // direct-mapped makes conflict addresses easy
  Cache c(cfg);
  const Addr a = 0x000;
  const Addr b = a + cfg.size_bytes;  // same set, different tag
  c.fill_line(a, {1, 1, 1, 1});
  c.write_word(a, 77);
  auto wb = c.fill_line(b, {2, 2, 2, 2});
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(wb->line_addr, a);
  EXPECT_EQ(wb->data[0], 77u);
  EXPECT_FALSE(c.contains(a));
  EXPECT_TRUE(c.contains(b));
}

TEST(Cache, CleanEvictionNeedsNoWriteback) {
  CacheConfig cfg = small_wb();
  cfg.ways = 1;
  Cache c(cfg);
  c.fill_line(0x000, {1, 1, 1, 1});
  auto wb = c.fill_line(0x000 + cfg.size_bytes, {2, 2, 2, 2});
  EXPECT_FALSE(wb.has_value());
  EXPECT_EQ(c.stats().get("cache.evictions"), 1u);
}

TEST(Cache, LruPrefersLeastRecentlyUsedVictim) {
  CacheConfig cfg = small_wb();
  cfg.ways = 2;
  Cache c(cfg);
  const Addr set_stride = cfg.size_bytes / cfg.ways;
  const Addr a = 0x0, b = a + set_stride, d = b + set_stride;
  c.fill_line(a, {});
  c.fill_line(b, {});
  ASSERT_TRUE(c.contains(a));
  ASSERT_TRUE(c.contains(b));
  (void)c.read_word(a);  // a is now MRU
  c.fill_line(d, {});    // evicts b
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(Cache, InvalidateDropsDirtyDataSilently) {
  Cache c(small_wb());
  c.fill_line(0x100, {5, 5, 5, 5});
  c.write_word(0x100, 9);
  c.invalidate_line(0x100);
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_FALSE(c.flush_line(0x100).has_value());
}

TEST(Cache, InvalidateAllEmptiesCache) {
  Cache c(small_wb());
  c.fill_line(0x100, {});
  c.fill_line(0x200, {});
  c.invalidate_all();
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_FALSE(c.contains(0x200));
}

TEST(Cache, FlushAllReturnsEveryDirtyLine) {
  Cache c(small_wb());
  c.fill_line(0x100, {});
  c.fill_line(0x200, {});
  c.fill_line(0x300, {});
  c.write_word(0x100, 1);
  c.write_word(0x300, 3);
  auto wbs = c.flush_all();
  EXPECT_EQ(wbs.size(), 2u);
  EXPECT_FALSE(c.line_dirty(0x100));
  EXPECT_FALSE(c.line_dirty(0x300));
}

TEST(Cache, HitRateReflectsAccesses) {
  Cache c(small_wb());
  c.fill_line(0x0, {});
  (void)c.read_word(0x0);
  (void)c.read_word(0x4);
  (void)c.read_word(0x4000);  // miss
  EXPECT_NEAR(c.hit_rate(), 2.0 / 3.0, 1e-9);
}

/// Working-set sweep: a set that fits is hit after warm-up; one that
/// doesn't fit (with LRU and a sequential scan) thrashes.
class CacheCapacity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheCapacity, SequentialWorkingSetFitsOrThrashes) {
  const std::uint32_t cache_bytes = GetParam();
  CacheConfig cfg{cache_bytes, kLineBytes, 2, WritePolicy::kWriteBack};
  Cache c(cfg);
  const std::uint32_t ws_bytes = 8 * 1024;
  auto touch_all = [&] {
    int misses = 0;
    for (Addr a = 0; a < ws_bytes; a += kLineBytes) {
      if (!c.read_word(a).has_value()) {
        c.fill_line(a, {});
        ++misses;
      }
    }
    return misses;
  };
  touch_all();  // warm-up
  const int steady_misses = touch_all();
  if (cache_bytes >= ws_bytes) {
    EXPECT_EQ(steady_misses, 0) << "working set should fit";
  } else {
    EXPECT_GT(steady_misses, 0) << "working set cannot fit";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheCapacity,
                         ::testing::Values(2048u, 4096u, 8192u, 16384u,
                                           32768u));

}  // namespace
}  // namespace medea::mem
