/// Tests for the Jacobi workload: partitioning, reference solver, and
/// full-system numerical correctness of all three variants.

#include <gtest/gtest.h>

#include "apps/jacobi.h"
#include "core/medea.h"

namespace medea::apps {
namespace {

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

TEST(Partition, EvenSplit) {
  auto p = partition_rows(12, 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(p[static_cast<std::size_t>(k)].rows(), 3);
  }
  EXPECT_EQ(p[0].start, 0);
  EXPECT_EQ(p[3].end, 12);
}

TEST(Partition, RemainderGoesToLeadingCores) {
  auto p = partition_rows(14, 4);  // 4,4,3,3
  EXPECT_EQ(p[0].rows(), 4);
  EXPECT_EQ(p[1].rows(), 4);
  EXPECT_EQ(p[2].rows(), 3);
  EXPECT_EQ(p[3].rows(), 3);
}

TEST(Partition, ContiguousAndComplete) {
  for (int rows : {1, 7, 14, 58}) {
    for (int cores : {1, 2, 5, 15}) {
      auto p = partition_rows(rows, cores);
      int prev_end = 0;
      int total = 0;
      for (auto& rp : p) {
        EXPECT_EQ(rp.start, prev_end);
        prev_end = rp.end;
        total += rp.rows();
      }
      EXPECT_EQ(total, rows);
    }
  }
}

TEST(Partition, MoreCoresThanRowsLeavesTrailingCoresEmpty) {
  auto p = partition_rows(3, 5);
  EXPECT_EQ(p[0].rows(), 1);
  EXPECT_EQ(p[1].rows(), 1);
  EXPECT_EQ(p[2].rows(), 1);
  EXPECT_EQ(p[3].rows(), 0);
  EXPECT_EQ(p[4].rows(), 0);
}

// ---------------------------------------------------------------------
// Reference solver
// ---------------------------------------------------------------------

TEST(Reference, BoundaryIsPreserved) {
  const int n = 8;
  auto g = jacobi_reference(n, 3);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(g[static_cast<std::size_t>(i) * n], jacobi_initial(i, 0, n));
    EXPECT_EQ(g[static_cast<std::size_t>(i) * n + n - 1],
              jacobi_initial(i, n - 1, n));
  }
}

TEST(Reference, OneStepIsNeighborAverage) {
  const int n = 4;
  auto g = jacobi_reference(n, 1);
  const auto u0 = [&](int i, int j) { return jacobi_initial(i, j, n); };
  const double expect11 =
      0.25 * (u0(0, 1) + u0(2, 1) + u0(1, 0) + u0(1, 2));
  EXPECT_DOUBLE_EQ(g[1 * 4 + 1], expect11);
}

TEST(Reference, ConvergesTowardHarmonicSolution) {
  // Residual after many iterations must be far smaller than after few.
  const int n = 16;
  auto residual = [&](const std::vector<double>& g) {
    double r = 0;
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        const double v =
            0.25 * (g[static_cast<std::size_t>((i - 1)) * n + j] +
                    g[static_cast<std::size_t>((i + 1)) * n + j] +
                    g[static_cast<std::size_t>(i) * n + j - 1] +
                    g[static_cast<std::size_t>(i) * n + j + 1]) -
            g[static_cast<std::size_t>(i) * n + j];
        r += v * v;
      }
    }
    return r;
  };
  const auto early = jacobi_reference(n, 2);
  const auto late = jacobi_reference(n, 400);
  EXPECT_LT(residual(late), residual(early) * 1e-3);
}

// ---------------------------------------------------------------------
// Full-system runs (small grids to keep test time low)
// ---------------------------------------------------------------------

core::MedeaConfig jacobi_cfg(int cores, std::uint32_t cache_kb,
                             mem::WritePolicy pol) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = cores;
  cfg.l1.size_bytes = cache_kb * 1024;
  cfg.l1.policy = pol;
  return cfg;
}

struct VariantCase {
  JacobiVariant variant;
  int cores;
  std::uint32_t cache_kb;
  mem::WritePolicy policy;
};

class JacobiCorrectness : public ::testing::TestWithParam<VariantCase> {};

TEST_P(JacobiCorrectness, MatchesSequentialReferenceBitExactly) {
  const auto& c = GetParam();
  core::MedeaSystem sys(jacobi_cfg(c.cores, c.cache_kb, c.policy));
  JacobiParams p;
  p.n = 8;
  p.warmup_iterations = 1;
  p.timed_iterations = 2;
  p.variant = c.variant;
  p.verify = true;
  const auto res = run_jacobi(sys, p);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.max_abs_error, 0.0)
      << "Jacobi reads only old values, so any partitioning must be "
         "bit-identical to the sequential reference";
  EXPECT_GT(res.timed_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, JacobiCorrectness,
    ::testing::Values(
        VariantCase{JacobiVariant::kHybridMp, 1, 8,
                    mem::WritePolicy::kWriteBack},
        VariantCase{JacobiVariant::kHybridMp, 3, 8,
                    mem::WritePolicy::kWriteBack},
        VariantCase{JacobiVariant::kHybridMp, 6, 2,
                    mem::WritePolicy::kWriteBack},
        VariantCase{JacobiVariant::kHybridMp, 3, 8,
                    mem::WritePolicy::kWriteThrough},
        VariantCase{JacobiVariant::kHybridSyncOnly, 3, 8,
                    mem::WritePolicy::kWriteBack},
        VariantCase{JacobiVariant::kHybridSyncOnly, 4, 2,
                    mem::WritePolicy::kWriteThrough},
        VariantCase{JacobiVariant::kPureSharedMemory, 3, 8,
                    mem::WritePolicy::kWriteBack},
        VariantCase{JacobiVariant::kPureSharedMemory, 4, 2,
                    mem::WritePolicy::kWriteThrough}),
    [](const ::testing::TestParamInfo<VariantCase>& info) {
      const auto& c = info.param;
      std::string s = to_string(c.variant);
      for (auto& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s + "_" + std::to_string(c.cores) + "P_" +
             std::to_string(c.cache_kb) + "k_" +
             (c.policy == mem::WritePolicy::kWriteBack ? "WB" : "WT");
    });

TEST(Jacobi, MoreCoresThanInteriorRowsStillCorrect) {
  // 6x6 grid = 4 interior rows on 6 cores: two cores idle but in barrier.
  core::MedeaSystem sys(jacobi_cfg(6, 8, mem::WritePolicy::kWriteBack));
  JacobiParams p;
  p.n = 6;
  p.warmup_iterations = 0;
  p.timed_iterations = 2;
  p.variant = JacobiVariant::kHybridMp;
  p.verify = true;
  const auto res = run_jacobi(sys, p);
  EXPECT_EQ(res.max_abs_error, 0.0);
}

TEST(Jacobi, HybridBeatsPureSharedMemory) {
  // The paper's headline: hybrid MP outperforms pure shared memory.
  JacobiParams p;
  p.n = 16;
  p.warmup_iterations = 1;
  p.timed_iterations = 1;

  p.variant = JacobiVariant::kHybridMp;
  core::MedeaSystem mp_sys(jacobi_cfg(4, 16, mem::WritePolicy::kWriteBack));
  const auto mp = run_jacobi(mp_sys, p);

  p.variant = JacobiVariant::kPureSharedMemory;
  core::MedeaSystem sm_sys(jacobi_cfg(4, 16, mem::WritePolicy::kWriteBack));
  const auto sm = run_jacobi(sm_sys, p);

  EXPECT_LT(mp.cycles_per_iteration, sm.cycles_per_iteration);
}

TEST(Jacobi, DeterministicTimedCycles) {
  auto once = [] {
    core::MedeaSystem sys(jacobi_cfg(3, 8, mem::WritePolicy::kWriteBack));
    JacobiParams p;
    p.n = 8;
    p.variant = JacobiVariant::kHybridMp;
    return run_jacobi(sys, p).timed_cycles;
  };
  EXPECT_EQ(once(), once());
}

TEST(Jacobi, RejectsDegenerateGrids) {
  core::MedeaSystem sys(jacobi_cfg(2, 8, mem::WritePolicy::kWriteBack));
  JacobiParams p;
  p.n = 2;
  EXPECT_THROW(run_jacobi(sys, p), std::invalid_argument);
}

}  // namespace
}  // namespace medea::apps
