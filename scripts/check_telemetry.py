#!/usr/bin/env python3
"""Schema-validate telemetry exports (CI gate for the observability leg).

Usage:
  check_telemetry.py --timeline tl.json [--perfetto trace.json]
                     [--flit-trace flits.json] ...

Validates, with only the standard library:
  * timeline JSON against the "medea-timeline-v1" shape produced by
    workload::format_timeline_json — schema tag, rectangular series
    (first_window + len(values) == num_windows, so counters born
    mid-run — a core's first MP stall, say — stay valid), monotonically
    increasing sample cycles, heatmap frames of w*h cells;
  * Chrome/Perfetto trace JSON against the trace_event form produced by
    workload::format_chrome_trace — a traceEvents array whose events
    carry the required ph/pid/name fields, "X" spans with non-negative
    durations, "C" counters with args, flit-journey flow events
    ("s"/"t"/"f") that each bind to an enclosing "X" slice and pair one
    start with one binding finish per flow id, and the schema tag in
    otherData;
  * flit-trace JSON against the "medea-flittrace-v1" shape produced by
    workload::format_flit_trace_json — rectangular packet/hop columns,
    in-bounds contiguous chain slices, cycle-monotonic hop chains,
    per-chain deflected flags summing to the packet's deflection count
    (and across packets to total_deflections), link grids accounting
    for every hop, and a worst list sorted by latency.

Exits non-zero with a one-line reason on the first violation, so a CI
failure names the broken invariant instead of just "artifact differs".
"""

import argparse
import json
import sys


def fail(path, msg):
    sys.exit(f"check_telemetry: {path}: {msg}")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(path, f"cannot read: {e}")
    except json.JSONDecodeError as e:
        fail(path, f"invalid JSON: {e}")


def check_timeline(path):
    doc = load(path)
    if doc.get("schema") != "medea-timeline-v1":
        fail(path, f"schema is {doc.get('schema')!r}, want 'medea-timeline-v1'")
    for key in ("workload", "sample_every", "num_windows", "sample_cycles",
                "series", "heatmaps"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")

    n = doc["num_windows"]
    cycles = doc["sample_cycles"]
    if len(cycles) != n:
        fail(path, f"sample_cycles has {len(cycles)} entries, num_windows={n}")
    if any(b <= a for a, b in zip(cycles, cycles[1:])):
        fail(path, "sample_cycles is not strictly increasing")
    if n > 0 and doc["sample_every"] <= 0:
        fail(path, "sampled timeline with sample_every <= 0")

    for s in doc["series"]:
        name = s.get("name", "<unnamed>")
        if s.get("kind") not in ("counter", "gauge"):
            fail(path, f"series {name}: kind {s.get('kind')!r}")
        if ".router." in name:
            fail(path, f"series {name}: router series must fold into heatmaps")
        values = s.get("values")
        first = s.get("first_window", 0)
        if not isinstance(values, list) or first < 0 \
                or first + len(values) != n:
            got = len(values) if isinstance(values, list) else type(values)
            fail(path, f"series {name}: first_window {first} + {got} values "
                       f"!= num_windows {n} (rectangular)")

    for hm in doc["heatmaps"]:
        name = hm.get("name", "<unnamed>")
        w, h = hm.get("width", 0), hm.get("height", 0)
        if w <= 0 or h <= 0:
            fail(path, f"heatmap {name}: bad dims {w}x{h}")
        frames = hm.get("frames")
        if not isinstance(frames, list) or len(frames) != n:
            fail(path, f"heatmap {name}: {len(frames or [])} frames, want {n}")
        for i, frame in enumerate(frames):
            if len(frame) != w * h:
                fail(path, f"heatmap {name} frame {i}: {len(frame)} cells, "
                           f"want {w * h}")
    print(f"check_telemetry: {path}: OK "
          f"({n} windows, {len(doc['series'])} series, "
          f"{len(doc['heatmaps'])} heatmaps)")


def check_perfetto(path):
    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents missing or empty")
    schema = doc.get("otherData", {}).get("schema")
    if schema != "medea-chrome-trace-v1":
        fail(path, f"otherData.schema is {schema!r}")

    phases = set()
    pids = set()
    slices = set()  # (pid, tid, ts) of every X span — flow binding targets
    flows = {}      # flow id -> [ph, ...] in array order
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("M", "X", "C", "s", "t", "f"):
            fail(path, f"event {i}: unsupported ph {ph!r}")
        phases.add(ph)
        if "pid" not in ev or "name" not in ev:
            fail(path, f"event {i}: missing pid/name")
        pids.add(ev["pid"])
        if ph in ("X", "C", "s", "t", "f") and "ts" not in ev:
            fail(path, f"event {i} ({ev['name']}): missing ts")
        if ph == "X" and ev.get("dur", -1) < 0:
            fail(path, f"event {i} ({ev['name']}): X span without dur >= 0")
        if ph == "X":
            slices.add((ev["pid"], ev.get("tid"), ev["ts"]))
        if ph == "C" and not isinstance(ev.get("args"), dict):
            fail(path, f"event {i} ({ev['name']}): C counter without args")
        if ph in ("s", "t", "f"):
            if "id" not in ev:
                fail(path, f"event {i}: flow event without id")
            if ph == "f" and ev.get("bp") != "e":
                fail(path, f"event {i}: flow finish without bp='e' "
                           "(arrow would not bind to the enclosing slice)")
            flows.setdefault(ev["id"], []).append(ev)

    # Flow events only draw arrows when they bind to an enclosing slice
    # at the same (pid, tid, ts), and each journey must be one start,
    # forward steps, one finish — in that order.
    for fid, evs in flows.items():
        seq = [e["ph"] for e in evs]
        if seq[0] != "s" or seq[-1] != "f" or seq.count("s") != 1 \
                or seq.count("f") != 1:
            fail(path, f"flow {fid}: phase sequence {seq} is not s t* f")
        for e in evs:
            key = (e["pid"], e.get("tid"), e["ts"])
            if key not in slices:
                fail(path, f"flow {fid}: {e['ph']} event at pid/tid/ts {key} "
                           "has no enclosing X slice to bind to")

    # A loadable trace names its processes and carries real data tracks.
    names = {e["name"] for e in events if e["ph"] == "M"}
    if "process_name" not in names:
        fail(path, "no process_name metadata — trace would render unlabeled")
    if "C" not in phases:
        fail(path, "no counter events — sampled run should emit tracks")
    flow_note = f", {len(flows)} flit flows" if flows else ""
    print(f"check_telemetry: {path}: OK "
          f"({len(events)} events, pids {sorted(pids)}{flow_note})")


def check_flit_trace(path):
    doc = load(path)
    if doc.get("schema") != "medea-flittrace-v1":
        fail(path,
             f"schema is {doc.get('schema')!r}, want 'medea-flittrace-v1'")
    for key in ("workload", "noc", "sample_every", "packets_seen",
                "packets_traced", "total_hops", "total_deflections",
                "max_deflections", "latency", "hop_histogram",
                "deflection_histogram", "links", "worst", "packets", "hops"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")
    if doc["sample_every"] < 1:
        fail(path, f"sample_every {doc['sample_every']} < 1 in a written trace")
    if doc["packets_traced"] > doc["packets_seen"]:
        fail(path, "packets_traced exceeds packets_seen")

    # Rectangular columnar tables.
    n = doc["packets_traced"]
    packets = doc["packets"]
    for col in ("uid", "src", "dst", "enqueue", "inject", "deliver",
                "first_hop", "hop_count", "deflections", "complete"):
        if len(packets.get(col, [])) != n:
            fail(path, f"packets.{col}: {len(packets.get(col, []))} entries, "
                       f"want {n}")
    m = doc["total_hops"]
    hops = doc["hops"]
    for col in ("cycle", "node", "port", "deflected"):
        if len(hops.get(col, [])) != m:
            fail(path, f"hops.{col}: {len(hops.get(col, []))} entries, "
                       f"want {m}")

    # Chain slices: contiguous, in bounds, cycle-monotonic, deflected
    # flags summing to the packet's counter.
    nodes = doc["noc"]["width"] * doc["noc"]["height"]
    next_hop = 0
    defl_sum = 0
    for i in range(n):
        first, count = packets["first_hop"][i], packets["hop_count"][i]
        if first != next_hop:
            fail(path, f"packet {i}: chain starts at hop {first}, "
                       f"want contiguous {next_hop}")
        next_hop = first + count
        if next_hop > m:
            fail(path, f"packet {i}: chain [{first}, {next_hop}) exceeds "
                       f"total_hops {m}")
        chain = range(first, first + count)
        for j in chain:
            if not 0 <= hops["node"][j] < nodes:
                fail(path, f"hop {j}: node {hops['node'][j]} out of range")
            if not 0 <= hops["port"][j] < 4:
                fail(path, f"hop {j}: port {hops['port'][j]} out of range")
        cycles = [hops["cycle"][j] for j in chain]
        if any(b <= a for a, b in zip(cycles, cycles[1:])):
            fail(path, f"packet {i}: hop cycles not strictly increasing")
        chain_defl = sum(hops["deflected"][j] for j in chain)
        if packets["complete"][i] and chain_defl != packets["deflections"][i]:
            fail(path, f"packet {i}: chain deflections {chain_defl} != "
                       f"recorded {packets['deflections'][i]}")
        defl_sum += chain_defl
        if packets["complete"][i] and \
                packets["deliver"][i] < packets["inject"][i]:
            fail(path, f"packet {i}: delivered before injected")
    if next_hop != m:
        fail(path, f"chains cover {next_hop} hops, total_hops {m}")
    if defl_sum != doc["total_deflections"]:
        fail(path, f"chain deflections sum {defl_sum} != "
                   f"total_deflections {doc['total_deflections']}")

    # Link grids: 4 directions of w*h cells, accounting for every hop.
    links = doc["links"]
    for key in ("flits", "deflected"):
        grids = links.get(key, [])
        if len(grids) != 4 or any(len(g) != nodes for g in grids):
            fail(path, f"links.{key}: want 4 grids of {nodes} cells")
    if sum(sum(g) for g in links["flits"]) != m:
        fail(path, "links.flits cells do not sum to total_hops")
    if sum(sum(g) for g in links["deflected"]) != doc["total_deflections"]:
        fail(path, "links.deflected cells do not sum to total_deflections")

    # The worst list is sorted by inject->deliver latency, descending.
    latencies = [w["latency"] for w in doc["worst"]]
    if any(b > a for a, b in zip(latencies, latencies[1:])):
        fail(path, "worst packets not sorted by latency descending")
    print(f"check_telemetry: {path}: OK "
          f"({n} packets, {m} hops, {doc['total_deflections']} deflections, "
          f"worst {len(doc['worst'])})")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--timeline", action="append", default=[],
                        metavar="FILE", help="medea-timeline-v1 JSON to check")
    parser.add_argument("--perfetto", action="append", default=[],
                        metavar="FILE", help="Chrome trace JSON to check")
    parser.add_argument("--flit-trace", action="append", default=[],
                        metavar="FILE",
                        help="medea-flittrace-v1 JSON to check")
    args = parser.parse_args()
    if not args.timeline and not args.perfetto and not args.flit_trace:
        parser.error("nothing to check "
                     "(pass --timeline, --perfetto and/or --flit-trace)")
    for path in args.timeline:
        check_timeline(path)
    for path in args.perfetto:
        check_perfetto(path)
    for path in args.flit_trace:
        check_flit_trace(path)


if __name__ == "__main__":
    main()
