#!/usr/bin/env python3
"""Schema-validate telemetry exports (CI gate for the observability leg).

Usage:
  check_telemetry.py --timeline tl.json [--perfetto trace.json] ...

Validates, with only the standard library:
  * timeline JSON against the "medea-timeline-v1" shape produced by
    workload::format_timeline_json — schema tag, rectangular series
    (every counter/gauge has exactly num_windows values), monotonically
    increasing sample cycles, heatmap frames of w*h cells;
  * Chrome/Perfetto trace JSON against the trace_event form produced by
    workload::format_chrome_trace — a traceEvents array whose events
    carry the required ph/pid/name fields, "X" spans with non-negative
    durations, "C" counters with args, and the schema tag in otherData.

Exits non-zero with a one-line reason on the first violation, so a CI
failure names the broken invariant instead of just "artifact differs".
"""

import argparse
import json
import sys


def fail(path, msg):
    sys.exit(f"check_telemetry: {path}: {msg}")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(path, f"cannot read: {e}")
    except json.JSONDecodeError as e:
        fail(path, f"invalid JSON: {e}")


def check_timeline(path):
    doc = load(path)
    if doc.get("schema") != "medea-timeline-v1":
        fail(path, f"schema is {doc.get('schema')!r}, want 'medea-timeline-v1'")
    for key in ("workload", "sample_every", "num_windows", "sample_cycles",
                "series", "heatmaps"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")

    n = doc["num_windows"]
    cycles = doc["sample_cycles"]
    if len(cycles) != n:
        fail(path, f"sample_cycles has {len(cycles)} entries, num_windows={n}")
    if any(b <= a for a, b in zip(cycles, cycles[1:])):
        fail(path, "sample_cycles is not strictly increasing")
    if n > 0 and doc["sample_every"] <= 0:
        fail(path, "sampled timeline with sample_every <= 0")

    for s in doc["series"]:
        name = s.get("name", "<unnamed>")
        if s.get("kind") not in ("counter", "gauge"):
            fail(path, f"series {name}: kind {s.get('kind')!r}")
        if ".router." in name:
            fail(path, f"series {name}: router series must fold into heatmaps")
        values = s.get("values")
        if not isinstance(values, list) or len(values) != n:
            got = len(values) if isinstance(values, list) else type(values)
            fail(path, f"series {name}: {got} values, want {n} (rectangular)")

    for hm in doc["heatmaps"]:
        name = hm.get("name", "<unnamed>")
        w, h = hm.get("width", 0), hm.get("height", 0)
        if w <= 0 or h <= 0:
            fail(path, f"heatmap {name}: bad dims {w}x{h}")
        frames = hm.get("frames")
        if not isinstance(frames, list) or len(frames) != n:
            fail(path, f"heatmap {name}: {len(frames or [])} frames, want {n}")
        for i, frame in enumerate(frames):
            if len(frame) != w * h:
                fail(path, f"heatmap {name} frame {i}: {len(frame)} cells, "
                           f"want {w * h}")
    print(f"check_telemetry: {path}: OK "
          f"({n} windows, {len(doc['series'])} series, "
          f"{len(doc['heatmaps'])} heatmaps)")


def check_perfetto(path):
    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents missing or empty")
    schema = doc.get("otherData", {}).get("schema")
    if schema != "medea-chrome-trace-v1":
        fail(path, f"otherData.schema is {schema!r}")

    phases = set()
    pids = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("M", "X", "C"):
            fail(path, f"event {i}: unsupported ph {ph!r}")
        phases.add(ph)
        if "pid" not in ev or "name" not in ev:
            fail(path, f"event {i}: missing pid/name")
        pids.add(ev["pid"])
        if ph in ("X", "C") and "ts" not in ev:
            fail(path, f"event {i} ({ev['name']}): missing ts")
        if ph == "X" and ev.get("dur", -1) < 0:
            fail(path, f"event {i} ({ev['name']}): X span without dur >= 0")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            fail(path, f"event {i} ({ev['name']}): C counter without args")

    # A loadable trace names its processes and carries real data tracks.
    names = {e["name"] for e in events if e["ph"] == "M"}
    if "process_name" not in names:
        fail(path, "no process_name metadata — trace would render unlabeled")
    if "C" not in phases:
        fail(path, "no counter events — sampled run should emit tracks")
    print(f"check_telemetry: {path}: OK "
          f"({len(events)} events, pids {sorted(pids)})")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--timeline", action="append", default=[],
                        metavar="FILE", help="medea-timeline-v1 JSON to check")
    parser.add_argument("--perfetto", action="append", default=[],
                        metavar="FILE", help="Chrome trace JSON to check")
    args = parser.parse_args()
    if not args.timeline and not args.perfetto:
        parser.error("nothing to check (pass --timeline and/or --perfetto)")
    for path in args.timeline:
        check_timeline(path)
    for path in args.perfetto:
        check_perfetto(path)


if __name__ == "__main__":
    main()
