#!/usr/bin/env python3
"""Unit tests for lint_determinism.py, driven by the fixture files in
tests/lint_fixtures/.  Run directly or through CTest
(`ctest -R lint_determinism`)."""

import importlib.util
import json
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent
ROOT = SCRIPTS.parent
FIXTURES = ROOT / "tests" / "lint_fixtures"

spec = importlib.util.spec_from_file_location(
    "lint_determinism", SCRIPTS / "lint_determinism.py")
lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint)


def run_fixture(name: str):
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {path}"
    return lint.lint_file(path, f"tests/lint_fixtures/{name}")


def rules_of(findings):
    return sorted(f.rule for f in findings)


class FixtureTests(unittest.TestCase):
    def test_unordered_iteration(self):
        findings = run_fixture("bad_unordered_iteration.cpp")
        self.assertEqual(rules_of(findings), ["unordered-iteration"] * 3)
        # Range-for over the map, range-for over the set, iterator loop.
        self.assertEqual([f.line for f in findings], [15, 16, 17])

    def test_banned_time_source(self):
        findings = run_fixture("bad_time_source.cpp")
        self.assertEqual(rules_of(findings), ["banned-time-source"] * 6)
        names = [f.message.split("'")[1] for f in findings]
        self.assertEqual(names, [
            "rand", "time", "std::random_device", "system_clock",
            "steady_clock", "srand"
        ])

    def test_member_functions_named_like_libc_do_not_trip(self):
        findings = run_fixture("bad_time_source.cpp")
        flagged_lines = {f.line for f in findings}
        # c.time() / this->sched_time() live on lines 27-29: never flagged.
        self.assertFalse(flagged_lines & {23, 24, 25, 26, 27, 28, 29, 30})

    def test_pointer_keyed_iteration(self):
        findings = run_fixture("bad_pointer_keyed.cpp")
        self.assertEqual(rules_of(findings), ["pointer-keyed-iteration"] * 2)

    def test_kernel_counter_export(self):
        findings = run_fixture("bad_kernel_counter_export.cpp")
        self.assertEqual(rules_of(findings), ["kernel-counter-export"] * 3)
        names = sorted(f.message.split("'")[1] for f in findings)
        self.assertEqual(
            names, ["bucket_pushes", "commits_deduped", "overflow_pushes"])

    def test_statset_key_hygiene(self):
        findings = run_fixture("bad_statset_keys.cpp")
        self.assertEqual(rules_of(findings), ["statset-key-hygiene"] * 4)

    def test_suppressions_silence_findings(self):
        self.assertEqual(run_fixture("suppressed_clean.cpp"), [])

    def test_clean_file(self):
        self.assertEqual(run_fixture("clean.cpp"), [])


class ScopeTests(unittest.TestCase):
    """Rules only fire inside their path scope for src/ files."""

    def test_time_source_rule_limited_to_kernel_dirs(self):
        path = FIXTURES / "bad_time_source.cpp"
        in_scope = lint.lint_file(path, "src/sim/fake.cpp")
        out_of_scope = lint.lint_file(path, "src/workload/fake.cpp")
        self.assertTrue(
            any(f.rule == "banned-time-source" for f in in_scope))
        self.assertFalse(
            any(f.rule == "banned-time-source" for f in out_of_scope))

    def test_counter_export_rule_limited_to_export_dirs(self):
        path = FIXTURES / "bad_kernel_counter_export.cpp"
        in_scope = lint.lint_file(path, "src/workload/fake.cpp")
        out_of_scope = lint.lint_file(path, "src/sim/fake.cpp")
        self.assertTrue(
            any(f.rule == "kernel-counter-export" for f in in_scope))
        self.assertFalse(
            any(f.rule == "kernel-counter-export" for f in out_of_scope))


class CliTests(unittest.TestCase):
    def test_exit_code_and_json_report(self):
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "report.json"
            rc = lint.main([
                str(FIXTURES / "bad_unordered_iteration.cpp"),
                "--json", str(out), "--quiet",
            ])
            self.assertEqual(rc, 1)
            report = json.loads(out.read_text())
            self.assertEqual(report["tool"], "lint_determinism")
            self.assertEqual(report["counts"], {"unordered-iteration": 3})
            self.assertEqual(len(report["findings"]), 3)
            for f in report["findings"]:
                self.assertIn("path", f)
                self.assertIn("line", f)
                self.assertIn("rule", f)
                self.assertIn("snippet", f)

    def test_clean_run_exits_zero(self):
        rc = lint.main([str(FIXTURES / "clean.cpp"), "--quiet"])
        self.assertEqual(rc, 0)

    def test_real_tree_is_clean(self):
        # The repo's own kernel scope must lint clean (suppressions are
        # part of the tree); this is the same gate CI runs.
        rc = lint.main(["--root", str(ROOT), "--quiet"])
        self.assertEqual(rc, 0)

    def test_list_rules(self):
        self.assertEqual(lint.main(["--list-rules"]), 0)


if __name__ == "__main__":
    sys.exit(unittest.main())
