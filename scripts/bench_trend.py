#!/usr/bin/env python3
"""Diff sim_speed (and p99 latency) across BENCH_*.json files.

Every bench binary writes a BENCH_<name>.json (bench/harness.h schema:
name/config/cycles/wall_ns/sim_speed/metrics per case).  CI archives one
per commit; this script turns two or more of them into a trendline so a
sim_speed regression is visible in review instead of three PRs later.

Usage:
  bench_trend.py FILE_OR_DIR [FILE_OR_DIR ...] [--max-regress=PCT]

With one input it prints the run's cases.  With several, inputs are
treated as successive runs (oldest first): cases are matched by
(bench, case-name) and the relative sim_speed change from the first to
the last run is reported.  Directories are scanned for BENCH_*.json.

Cases that export a `p99` metric (e.g. bench_saturation's per-load
latency rows) additionally get a p99 trend table — tail-latency
regressions are tracked the same way as sim_speed ones (note the sign:
p99 going UP is the regression).

--max-regress=PCT exits non-zero when any matched case's sim_speed
dropped by more than PCT percent (for CI gating; default: report only).
"""

import argparse
import json
import sys
from pathlib import Path


def load_runs(inputs):
    """Each input (file or directory) becomes one run: {(bench, case): dict}."""
    runs = []
    for raw in inputs:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.glob("BENCH_*.json"))
            if not files:
                sys.exit(f"bench_trend: no BENCH_*.json in {path}")
        elif path.is_file():
            files = [path]
        else:
            sys.exit(f"bench_trend: no such file or directory: {path}")
        cases = {}
        for f in files:
            try:
                doc = json.loads(f.read_text())
            except json.JSONDecodeError as e:
                sys.exit(f"bench_trend: {f}: invalid JSON: {e}")
            for case in doc.get("cases", []):
                cases[(doc.get("bench", f.stem), case["name"])] = case
        runs.append((str(path), cases))
    return runs


def fmt_speed(speed):
    return f"{speed / 1e6:10.2f}"


def p99_of(case):
    """The case's p99 metric, or None when it doesn't export one."""
    return case.get("metrics", {}).get("p99")


def print_single(label, cases):
    print(f"# {label}")
    print(f"{'case':<44} {'Mcyc/s':>10} {'cycles':>14} {'p99':>8}")
    for (bench, name), c in sorted(cases.items()):
        p99 = p99_of(c)
        p99_cell = f"{p99:8.0f}" if p99 is not None else f"{'-':>8}"
        print(f"{bench + '/' + name:<44} {fmt_speed(c['sim_speed'])} "
              f"{c['cycles']:>14.0f} {p99_cell}")


def print_p99_trend(runs, first, last, keys):
    """Trend table for cases whose first and last runs both carry p99."""
    keys = [k for k in keys
            if p99_of(first[k]) is not None and p99_of(last[k]) is not None]
    if not keys:
        return
    print(f"\n{'p99 latency (cycles)':<44} " + " ".join(
        f"{Path(label).name[:14]:>14}" for label, _ in runs) + f" {'delta':>8}")
    worst = 0.0
    for key in keys:
        cells = []
        for _, cases in runs:
            p99 = p99_of(cases.get(key, {}))
            cells.append(f"{p99:14.0f}" if p99 is not None else f"{'-':>14}")
        base, cur = p99_of(first[key]), p99_of(last[key])
        delta = (cur - base) / base * 100.0 if base > 0 else 0.0
        worst = max(worst, delta)
        bench, name = key
        print(f"{bench + '/' + name:<44} " + " ".join(cells) +
              f" {delta:+7.1f}%")
    print(f"worst p99 change: {worst:+.1f}% (positive = latency grew)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("inputs", nargs="+",
                        help="BENCH_*.json files or directories, oldest first")
    parser.add_argument("--max-regress", type=float, default=None, metavar="PCT",
                        help="fail if any case's sim_speed drops more than PCT%%")
    args = parser.parse_args()

    runs = load_runs(args.inputs)
    if len(runs) == 1:
        print_single(*runs[0])
        return

    first_label, first = runs[0]
    last_label, last = runs[-1]
    keys = sorted(set(first) & set(last))
    if not keys:
        sys.exit("bench_trend: no common cases between "
                 f"{first_label} and {last_label}")

    header = f"{'case':<44} " + " ".join(
        f"{Path(label).name[:14]:>14}" for label, _ in runs) + f" {'delta':>8}"
    print(header)
    worst = 0.0
    for key in keys:
        cells = []
        for _, cases in runs:
            c = cases.get(key)
            cells.append(f"{fmt_speed(c['sim_speed']):>14}" if c else f"{'-':>14}")
        base, cur = first[key]["sim_speed"], last[key]["sim_speed"]
        delta = (cur - base) / base * 100.0 if base > 0 else 0.0
        worst = min(worst, delta)
        bench, name = key
        print(f"{bench + '/' + name:<44} " + " ".join(cells) +
              f" {delta:+7.1f}%")

    only_first = sorted(set(first) - set(last))
    only_last = sorted(set(last) - set(first))
    for key in only_first:
        print(f"{key[0] + '/' + key[1]:<44} (dropped after {first_label})")
    for key in only_last:
        print(f"{key[0] + '/' + key[1]:<44} (new in {last_label})")

    print_p99_trend(runs, first, last, keys)

    if args.max_regress is not None and worst < -args.max_regress:
        print(f"\nbench_trend: FAIL: worst sim_speed regression {worst:.1f}% "
              f"exceeds --max-regress={args.max_regress}%", file=sys.stderr)
        sys.exit(1)
    print(f"\nworst sim_speed change vs {first_label}: {worst:+.1f}%")


if __name__ == "__main__":
    main()
