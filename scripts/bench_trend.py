#!/usr/bin/env python3
"""Diff sim_speed (and p99 latency) across BENCH_*.json files.

Every bench binary writes a BENCH_<name>.json (bench/harness.h schema:
name/config/cycles/wall_ns/sim_speed/metrics per case).  CI archives one
per commit; this script turns two or more of them into a trendline so a
sim_speed regression is visible in review instead of three PRs later.

Usage:
  bench_trend.py FILE_OR_DIR [FILE_OR_DIR ...] [--max-regress=PCT]

With one input it prints the run's cases.  With several, inputs are
treated as successive runs (oldest first): cases are matched by
(bench, case-name) and the relative sim_speed change from the first to
the last run is reported.  Directories are scanned for BENCH_*.json.

Cases that export a `p99` metric (e.g. bench_saturation's per-load
latency rows) additionally get a p99 trend table — tail-latency
regressions are tracked the same way as sim_speed ones (note the sign:
p99 going UP is the regression).  The same goes for `max_deflections`
(bench_saturation's worst per-packet deflection count): a routing or
arbitration change that sends packets ricocheting shows up here before
it shows up in mean latency.  Cases exporting `timeline_*` metrics
(bench_saturation's sampled knee_timeline rows) get one trend table per
timeline metric, so transient-congestion regressions the end-of-run
scalars average away still show up in review.

Runs from older commits may predate a metric (or even the `cycles`
field): missing keys render as `-` and are excluded from deltas rather
than raising — a trend across heterogeneous BENCH_*.json vintages must
always print.

--max-regress=PCT exits non-zero when any matched case's sim_speed
dropped by more than PCT percent (for CI gating; default: report only).
"""

import argparse
import json
import sys
from pathlib import Path


def load_runs(inputs):
    """Each input (file or directory) becomes one run: {(bench, case): dict}."""
    runs = []
    for raw in inputs:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.glob("BENCH_*.json"))
            if not files:
                sys.exit(f"bench_trend: no BENCH_*.json in {path}")
        elif path.is_file():
            files = [path]
        else:
            sys.exit(f"bench_trend: no such file or directory: {path}")
        cases = {}
        for f in files:
            try:
                doc = json.loads(f.read_text())
            except json.JSONDecodeError as e:
                sys.exit(f"bench_trend: {f}: invalid JSON: {e}")
            for case in doc.get("cases", []):
                if "name" not in case:  # malformed row: skip, don't crash
                    continue
                cases[(doc.get("bench", f.stem), case["name"])] = case
        runs.append((str(path), cases))
    return runs


def fmt_speed(speed):
    return f"{speed / 1e6:10.2f}" if speed is not None else f"{'-':>10}"


def metric_of(case, key):
    """The case's named metric, or None when it doesn't export one."""
    return case.get("metrics", {}).get(key)


def p99_of(case):
    return metric_of(case, "p99")


def print_single(label, cases):
    print(f"# {label}")
    print(f"{'case':<44} {'Mcyc/s':>10} {'cycles':>14} {'p99':>8}")
    for (bench, name), c in sorted(cases.items()):
        p99 = p99_of(c)
        p99_cell = f"{p99:8.0f}" if p99 is not None else f"{'-':>8}"
        cycles = c.get("cycles")
        cyc_cell = f"{cycles:>14.0f}" if cycles is not None else f"{'-':>14}"
        print(f"{bench + '/' + name:<44} {fmt_speed(c.get('sim_speed'))} "
              f"{cyc_cell} {p99_cell}")
    print_shard_speedup(cases)


def print_shard_speedup(cases):
    """Within-run parallel-kernel summary: for every case family named
    '<base>/shardsN', the speedup of each shard count over that family's
    shards1 single-thread baseline, with the barrier-wait share and the
    mailbox traffic that bought it.  Silent when the run has no sharded
    cases (older BENCH_*.json vintages)."""
    families = {}
    for (bench, name), c in cases.items():
        base, sep, tail = name.rpartition("/shards")
        if not sep or not tail.isdigit():
            continue
        families.setdefault((bench, base), {})[int(tail)] = c
    printable = {k: v for k, v in families.items() if 1 in v and len(v) > 1}
    if not printable:
        return
    print(f"\n{'sharded kernel':<44} {'shards':>6} {'Mcyc/s':>10} "
          f"{'speedup':>8} {'barrier%':>9} {'mbox_flits':>11}")
    for (bench, base), by_count in sorted(printable.items()):
        baseline = by_count[1].get("sim_speed") or 0.0
        for count in sorted(by_count):
            c = by_count[count]
            speed = c.get("sim_speed") or 0.0
            speedup = speed / baseline if baseline > 0 else 0.0
            wall = c.get("wall_ns") or 0.0
            barrier = metric_of(c, "barrier_wait_ns")
            # Barrier wait is summed over shards; normalize per shard so
            # 100% means "threads did nothing but wait".
            share = (100.0 * barrier / (wall * count)
                     if barrier is not None and wall > 0 and count > 0
                     else None)
            share_cell = f"{share:8.1f}%" if share is not None else f"{'-':>9}"
            mbox = metric_of(c, "mailbox_flits")
            mbox_cell = f"{mbox:11.0f}" if mbox is not None else f"{'-':>11}"
            print(f"{bench + '/' + base:<44} {count:>6} {fmt_speed(speed)} "
                  f"{speedup:7.2f}x {share_cell} {mbox_cell}")


def print_metric_trend(runs, first, last, keys, metric, title, decimals=0):
    """Trend table for one metric over the cases whose first and last
    runs both carry it; silent when no case does (older runs simply
    predate the metric)."""
    keys = [k for k in keys
            if metric_of(first[k], metric) is not None
            and metric_of(last[k], metric) is not None]
    if not keys:
        return
    print(f"\n{title:<44} " + " ".join(
        f"{Path(label).name[:14]:>14}" for label, _ in runs) + f" {'delta':>8}")
    worst = 0.0
    for key in keys:
        cells = []
        for _, cases in runs:
            v = metric_of(cases.get(key, {}), metric)
            cells.append(f"{v:14.{decimals}f}" if v is not None
                         else f"{'-':>14}")
        base = metric_of(first[key], metric)
        cur = metric_of(last[key], metric)
        delta = (cur - base) / base * 100.0 if base > 0 else 0.0
        worst = max(worst, delta)
        bench, name = key
        print(f"{bench + '/' + name:<44} " + " ".join(cells) +
              f" {delta:+7.1f}%")
    print(f"worst {metric} change: {worst:+.1f}%")


def timeline_metrics(first, last, keys):
    """All timeline_* metric names present in both the first and last
    run for at least one common case, sorted."""
    names = set()
    for key in keys:
        a = set(first[key].get("metrics", {}))
        b = set(last[key].get("metrics", {}))
        names |= {m for m in a & b if m.startswith("timeline_")}
    return sorted(names)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("inputs", nargs="+",
                        help="BENCH_*.json files or directories, oldest first")
    parser.add_argument("--max-regress", type=float, default=None, metavar="PCT",
                        help="fail if any case's sim_speed drops more than PCT%%")
    args = parser.parse_args()

    runs = load_runs(args.inputs)
    if len(runs) == 1:
        print_single(*runs[0])
        return

    first_label, first = runs[0]
    last_label, last = runs[-1]
    keys = sorted(set(first) & set(last))
    if not keys:
        sys.exit("bench_trend: no common cases between "
                 f"{first_label} and {last_label}")

    header = f"{'case':<44} " + " ".join(
        f"{Path(label).name[:14]:>14}" for label, _ in runs) + f" {'delta':>8}"
    print(header)
    worst = 0.0
    for key in keys:
        cells = []
        for _, cases in runs:
            c = cases.get(key)
            cells.append(f"{fmt_speed(c.get('sim_speed')):>14}" if c
                         else f"{'-':>14}")
        base = first[key].get("sim_speed", 0.0)
        cur = last[key].get("sim_speed", 0.0)
        delta = (cur - base) / base * 100.0 if base > 0 else 0.0
        worst = min(worst, delta)
        bench, name = key
        print(f"{bench + '/' + name:<44} " + " ".join(cells) +
              f" {delta:+7.1f}%")

    only_first = sorted(set(first) - set(last))
    only_last = sorted(set(last) - set(first))
    for key in only_first:
        print(f"{key[0] + '/' + key[1]:<44} (dropped after {first_label})")
    for key in only_last:
        print(f"{key[0] + '/' + key[1]:<44} (new in {last_label})")

    print_metric_trend(runs, first, last, keys, "p99",
                       "p99 latency (cycles)")
    print_metric_trend(runs, first, last, keys, "max_deflections",
                       "max per-packet deflections")
    # Parallel-kernel health: barrier wait trending up means growing
    # load imbalance, mailbox flits changing means the partition (or the
    # traffic) moved across the seams.
    print_metric_trend(runs, first, last, keys, "barrier_wait_ns",
                       "barrier wait (ns, summed over shards)")
    print_metric_trend(runs, first, last, keys, "mailbox_flits",
                       "cross-shard mailbox flits")
    print_shard_speedup(last)
    for metric in timeline_metrics(first, last, keys):
        print_metric_trend(runs, first, last, keys, metric, metric,
                           decimals=3)

    if args.max_regress is not None and worst < -args.max_regress:
        print(f"\nbench_trend: FAIL: worst sim_speed regression {worst:.1f}% "
              f"exceeds --max-regress={args.max_regress}%", file=sys.stderr)
        sys.exit(1)
    print(f"\nworst sim_speed change vs {first_label}: {worst:+.1f}%")


if __name__ == "__main__":
    main()
