#!/usr/bin/env python3
"""Determinism linter for the MEDEA simulation kernel.

The simulator's headline contract is bit-identical results across event
-queue kernels, shard counts and runs (ROADMAP: "Determinism");
test_scheduler_diff enforces it dynamically, but only for code paths the
registry workloads exercise.  This linter encodes the static half of the
contract — the source patterns that historically break determinism —
and runs in CI over every change:

  unordered-iteration      Iterating a std::unordered_{map,set} yields
                           hash-seed/insertion-order-dependent element
                           order.  Lookups are fine; iteration in
                           dispatch, observer or stat-export paths is
                           not.
  banned-time-source       rand()/std::random_device/system_clock/
                           steady_clock/time() inside src/sim + src/noc:
                           model behavior must be a pure function of
                           (config, seed).  Host-time *metrics* (barrier
                           spin time, telemetry wall-clock) are fine —
                           suppress those sites explicitly.
  pointer-keyed-iteration  Iterating a container keyed by pointers
                           visits elements in address order, which
                           changes run to run under ASLR/allocation
                           noise.
  kernel-counter-export    Only the kernel-independent scheduler
                           counters (sched.wake_requests,
                           sched.wakes_deduped, sched.active_cycles) may
                           enter RunResult::stats; the differential
                           tests compare full counter maps across
                           kernels, so bucket/overflow/commit-push
                           counters must stay out of export paths.
  statset-key-hygiene      StatSet keys are dotted lowercase snake_case
                           ("noc.flits_delivered"); mixed-case or
                           spaced keys break downstream JSON consumers
                           and the telemetry naming convention.

Suppressions: append `// lint:allow(<rule>[,<rule>...])` to the
offending line, with a comment justifying the exception.

Usage:
  lint_determinism.py [paths...] [--json FILE] [--list-rules] [--quiet]

With no paths, scans the default kernel scope relative to the repo root
(the directory containing this script's parent).  Paths under src/ get
the per-rule scope below; paths outside src/ (test fixtures) get every
rule.  Exits 1 iff findings remain after suppressions.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------

# Per-rule path scopes, as repo-relative prefixes.  None = every scanned
# file.  Files outside src/ (fixtures) always get every rule.
RULES: dict[str, dict] = {
    "unordered-iteration": {
        "scope": ("src/sim", "src/noc", "src/workload", "src/dse"),
        "message": "iteration over unordered container '{name}' "
        "(hash order is not deterministic)",
    },
    "banned-time-source": {
        "scope": ("src/sim", "src/noc"),
        "message": "banned time/randomness source '{name}' in kernel code "
        "(results must be a pure function of config and seed)",
    },
    "pointer-keyed-iteration": {
        "scope": ("src/sim", "src/noc", "src/workload", "src/dse"),
        "message": "iteration over pointer-keyed container '{name}' "
        "(address order varies run to run)",
    },
    "kernel-counter-export": {
        "scope": ("src/workload", "src/dse"),
        "message": "kernel-dependent counter '{name}' in a stat-export "
        "path (differential tests compare full counter maps "
        "across kernels)",
    },
    "statset-key-hygiene": {
        "scope": ("src/",),
        "message": "StatSet key {name} is not dotted lowercase "
        "snake_case",
    },
}

DEFAULT_SCAN_DIRS = ("src/sim", "src/noc", "src/workload", "src/dse")

SUPPRESS_RE = re.compile(r"//.*?\blint:allow\(([a-z\-,\s]+)\)")

# Container declarations worth tracking.  Group 1: template head,
# group 2: declared name.  Deliberately line-local: the codebase
# declares one member/local per line (clang-format enforces it).
UNORDERED_DECL_RE = re.compile(
    r"\b(?:std::)?(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset)\s*<[^;]*>\s+(\w+)\s*[;{=(]"
)
PTR_KEYED_DECL_RE = re.compile(
    r"\b(?:std::)?(map|set|unordered_map|unordered_set)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*\s*[,>]"
    r"[^;]*?\s+(\w+)\s*[;{=(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")
ITER_BEGIN_RE = re.compile(r"=\s*(?:\w+(?:\.|->))*(\w+)\.(?:begin|cbegin)\(\)")

TIME_SOURCE_RE = re.compile(
    r"\b(std::random_device|random_device|system_clock|steady_clock|"
    r"high_resolution_clock|gettimeofday|srand|rand|time|clock)\s*(?=\()"
    r"|\b(std::random_device|system_clock|steady_clock|"
    r"high_resolution_clock)\b"
)
# rand/time/clock only count as the libc functions when called bare or
# via std:: — member calls like sched.now() or tp.time() must not trip.
BARE_CALL_GUARD_RE = re.compile(r"(?:\.|->|\w)$")

KERNEL_COUNTERS = (
    "bucket_pushes",
    "overflow_pushes",
    "commit_pushes",
    "commits_deduped",
)
KERNEL_COUNTER_RE = re.compile(r"\b(" + "|".join(KERNEL_COUNTERS) + r")\b")
STATS_CONTEXT_RE = re.compile(r"\bstats\b|\bStatSet\b|\.set\(|\.inc\(")

STATSET_CALL_RE = re.compile(
    r"\.(?:set|inc|get|sample|counter|accumulator|acc)\(\s*"
    r"((?:[\w.>:\-]+(?:\(\))?\s*\+\s*)?)\"([^\"]*)\""
)
STATSET_KEY_OK_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
CHAR_RE = re.compile(r"'(?:[^'\\]|\\.)*'")
LINE_COMMENT_RE = re.compile(r"//.*$")


class Finding:
    __slots__ = ("path", "line", "rule", "message", "snippet")

    def __init__(self, path: str, line: int, rule: str, message: str,
                 snippet: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.snippet = snippet

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _strip_block_comments(lines: list[str]) -> list[str]:
    """Blank out /* ... */ spans, preserving line structure."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            else:
                start = line.find("/*", i)
                if start < 0:
                    result.append(line[i:])
                    i = len(line)
                else:
                    result.append(line[:start] if i == 0 else line[i:start])
                    in_block = True
                    i = start + 2
        out.append("".join(result))
    return out


def _code_of(line: str) -> str:
    """Line with comments removed (string literals kept)."""
    masked = STRING_RE.sub(lambda m: '"' + "_" * (len(m.group(0)) - 2) + '"',
                           line)
    cut = masked.find("//")
    return line[:cut] if cut >= 0 else line


def _suppressions(line: str) -> set[str]:
    m = SUPPRESS_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",") if r.strip()}


def _rule_applies(rule: str, rel: str) -> bool:
    if not rel.startswith("src/"):
        return True  # fixtures: every rule
    return rel.startswith(tuple(RULES[rule]["scope"]))


def lint_file(path: Path, rel: str) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"lint_determinism: cannot read {path}: {e}", file=sys.stderr)
        return []
    raw_lines = text.splitlines()
    lines = _strip_block_comments(raw_lines)

    unordered_names: set[str] = set()
    ptr_keyed_names: set[str] = set()
    findings: list[Finding] = []

    # Pass 1: collect container declarations (whole file, so members
    # declared below their first use are still seen).
    for line in lines:
        code = _code_of(line)
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(2))
        for m in PTR_KEYED_DECL_RE.finditer(code):
            ptr_keyed_names.add(m.group(2))

    def report(rule: str, lineno: int, name: str, raw: str):
        if rule in _suppressions(raw):
            return
        if not _rule_applies(rule, rel):
            return
        findings.append(
            Finding(rel, lineno, rule,
                    RULES[rule]["message"].format(name=name),
                    raw.strip()[:160]))

    # Pass 2: per-line checks.
    for lineno, (raw, line) in enumerate(zip(raw_lines, lines), start=1):
        code = _code_of(line)
        if not code.strip():
            continue

        iterated: set[str] = set()
        for m in RANGE_FOR_RE.finditer(code):
            iterated.add(m.group(1))
        for m in ITER_BEGIN_RE.finditer(code):
            iterated.add(m.group(1))
        for name in sorted(iterated & unordered_names):
            report("unordered-iteration", lineno, name, raw)
        for name in sorted(iterated & ptr_keyed_names):
            report("pointer-keyed-iteration", lineno, name, raw)

        masked = CHAR_RE.sub("''", STRING_RE.sub('""', code))
        for m in TIME_SOURCE_RE.finditer(masked):
            name = m.group(1) or m.group(2)
            if name in ("rand", "srand", "time", "clock"):
                # Reject member/qualified calls except std::.
                prefix = masked[: m.start()]
                if prefix.endswith(("std::",)):
                    pass
                elif BARE_CALL_GUARD_RE.search(prefix.rstrip()):
                    continue
            report("banned-time-source", lineno, name, raw)

        if STATS_CONTEXT_RE.search(masked) or KERNEL_COUNTER_RE.search(masked):
            # Counter *reads* feeding an export line: flag when the line
            # also touches a stats object / StatSet call.
            if STATS_CONTEXT_RE.search(masked):
                for m in KERNEL_COUNTER_RE.finditer(masked):
                    report("kernel-counter-export", lineno, m.group(1), raw)

        for m in STATSET_CALL_RE.finditer(code):
            key = m.group(2)
            # Keys built by concatenation (prefix + "suffix" or
            # "prefix." + var) are checked as fragments: every character
            # must stay in the dotted-snake-case alphabet, but the shape
            # check only applies to whole-key literals.
            is_fragment = bool(m.group(1)) or \
                code[m.end():].lstrip().startswith("+")
            if is_fragment:
                if not re.fullmatch(r"[a-z0-9_.]*", key):
                    report("statset-key-hygiene", lineno, f'"{key}"', raw)
            elif not STATSET_KEY_OK_RE.match(key):
                report("statset-key-hygiene", lineno, f'"{key}"', raw)

    return findings


def collect_files(root: Path, paths: list[str]) -> list[Path]:
    files: list[Path] = []
    targets = paths if paths else [str(root / d) for d in DEFAULT_SCAN_DIRS]
    for t in targets:
        p = Path(t)
        if not p.is_absolute():
            p = root / p
        if p.is_dir():
            files.extend(sorted(p.rglob("*.h")))
            files.extend(sorted(p.rglob("*.cpp")))
        elif p.exists():
            files.append(p)
        else:
            print(f"lint_determinism: no such path: {t}", file=sys.stderr)
    # De-dup, stable order.
    seen = set()
    out = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            out.append(f)
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="MEDEA determinism linter (see module docstring)")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: kernel scope)")
    ap.add_argument("--json", metavar="FILE",
                    help="write a machine-readable report")
    ap.add_argument("--root", metavar="DIR",
                    help="repo root (default: this script's parent dir)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress per-finding output")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, spec in RULES.items():
            print(f"{rule}: scope {', '.join(spec['scope'])}")
        return 0

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent
    files = collect_files(root, args.paths)

    findings: list[Finding] = []
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        findings.extend(lint_file(f, rel))

    if not args.quiet:
        for fi in findings:
            print(fi)

    if args.json:
        counts: dict[str, int] = {}
        for fi in findings:
            counts[fi.rule] = counts.get(fi.rule, 0) + 1
        report = {
            "version": 1,
            "tool": "lint_determinism",
            "files_scanned": len(files),
            "findings": [fi.to_dict() for fi in findings],
            "counts": counts,
        }
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n",
                                   encoding="utf-8")

    if findings:
        print(f"lint_determinism: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
