/// jacobi_demo — the paper's benchmark end to end, on one configuration.
///
/// Runs the parallel Jacobi solver in all three programming-model
/// variants on the same machine configuration, verifies each against the
/// sequential reference, and prints per-variant cycle counts plus the
/// hardware statistics that explain them (NoC traffic, cache hit rates,
/// MPMMU transactions).
///
/// Usage: ./examples/jacobi_demo [grid_n] [cores] [cache_kb]

#include <cstdio>
#include <cstdlib>

#include "apps/jacobi.h"
#include "core/medea.h"

using namespace medea;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 30;
  const int cores = argc > 2 ? std::atoi(argv[2]) : 8;
  const auto cache_kb =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 16u;

  std::printf("Jacobi %dx%d on %d cores + MPMMU, %u kB WB L1\n\n", n, n, cores,
              cache_kb);
  std::printf("%-22s %14s %10s %12s %12s\n", "variant", "cycles/iter",
              "verified", "NoC flits", "MPMMU txns");

  for (auto variant :
       {apps::JacobiVariant::kHybridMp, apps::JacobiVariant::kHybridSyncOnly,
        apps::JacobiVariant::kPureSharedMemory}) {
    core::MedeaConfig cfg;
    cfg.num_compute_cores = cores;
    cfg.l1.size_bytes = cache_kb * 1024;

    core::MedeaSystem sys(cfg);
    apps::JacobiParams p;
    p.n = n;
    p.variant = variant;
    p.warmup_iterations = 1;
    p.timed_iterations = 2;
    p.verify = true;

    const auto res = apps::run_jacobi(sys, p);
    const auto stats = sys.aggregate_stats();
    std::printf("%-22s %14.0f %10s %12llu %12llu\n", to_string(variant),
                res.cycles_per_iteration,
                res.max_abs_error == 0.0 ? "bit-exact" : "FAILED",
                static_cast<unsigned long long>(
                    stats.get("noc.flits_delivered")),
                static_cast<unsigned long long>(
                    stats.get("mpmmu.transactions")));
  }

  std::printf("\nThe hybrid variant avoids the MPMMU for both data and\n"
              "synchronization; the gap versus pure shared memory is the\n"
              "paper's headline result (2x-5x at 60x60).\n");
  return 0;
}
