/// design_explorer — the paper's methodology in miniature.
///
/// Sweeps a user-sized design space (cores x cache x policy), then runs
/// the paper's §III cost analysis: area model, Pareto pruning and the
/// Kill rule, printing the optimal-speedup-vs-area curve with the same
/// "NP_Mk$" labels the paper's Figs. 7/9 use.
///
/// Usage: ./examples/design_explorer [grid_n] [max_cores]

#include <cstdio>
#include <cstdlib>

#include "dse/pareto.h"
#include "dse/sweep.h"

using namespace medea;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 30;
  const int max_cores = argc > 2 ? std::atoi(argv[2]) : 8;

  dse::SweepSpec spec;
  spec.n = n;
  spec.cores.clear();
  for (int c = 2; c <= max_cores; ++c) spec.cores.push_back(c);
  spec.cache_kb = {2, 4, 8, 16, 32};
  spec.progress = true;  // live points/sec + ETA line on stderr

  std::printf("exploring %zu design points (%dx%d Jacobi)...\n",
              spec.cores.size() * spec.cache_kb.size() * spec.policies.size(),
              n, n);
  const auto points = dse::run_sweep(spec);

  std::printf("\nall points:\n%-14s %10s %12s\n", "config", "area mm2",
              "cycles/iter");
  for (const auto& p : points) {
    std::printf("%-14s %10.2f %12.0f\n", p.label.c_str(), p.area_mm2,
                p.cycles_per_iteration);
  }

  const auto frontier = dse::pareto_frontier(dse::to_design_points(points));
  const double baseline = frontier.front().exec_cycles;
  const auto curve = dse::speedup_curve(frontier, baseline);
  const std::size_t knee = dse::kill_rule_knee(frontier);

  std::printf("\nPareto frontier (speedup vs the smallest-area point):\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("  %6.2f mm2  %6.2fx  %-14s%s\n", curve[i].area_mm2,
                curve[i].speedup, curve[i].label.c_str(),
                i == knee ? "  <- Kill rule stops here" : "");
  }
  return 0;
}
