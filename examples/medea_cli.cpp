/// medea_cli — run one MEDEA experiment from the command line.
///
/// A small front-end over the library for scripting experiments without
/// writing C++:
///
///   medea_cli [options]
///     --workload=jacobi|reduction     (default jacobi)
///     --variant=mp|sync-only|sm       (default mp; reduction: mp|sm)
///     --n=N            grid size / elements      (default 30 / 1024)
///     --cores=P        compute cores, 1..15      (default 8)
///     --cache-kb=K     L1 size, power of two     (default 16)
///     --policy=wb|wt   write policy              (default wb)
///     --arbiter=mux|single|dual                  (default dual)
///     --iters=I        timed iterations/rounds   (default 2)
///     --verify         check against the sequential reference
///     --stats          dump aggregate hardware statistics
///
/// Exit code 0 on success (and verification pass), 1 otherwise.

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/jacobi.h"
#include "apps/reduction.h"
#include "core/medea.h"

using namespace medea;

namespace {

struct Options {
  std::string workload = "jacobi";
  std::string variant = "mp";
  int n = -1;
  int cores = 8;
  std::uint32_t cache_kb = 16;
  mem::WritePolicy policy = mem::WritePolicy::kWriteBack;
  pe::ArbiterKind arbiter = pe::ArbiterKind::kDualFifo;
  int iters = 2;
  bool verify = false;
  bool stats = false;
};

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* key) -> const char* {
      const std::size_t klen = std::strlen(key);
      if (a.compare(0, klen, key) == 0 && a.size() > klen && a[klen] == '=') {
        return a.c_str() + klen + 1;
      }
      return nullptr;
    };
    if (const char* v = val("--workload")) {
      o.workload = v;
    } else if (const char* v2 = val("--variant")) {
      o.variant = v2;
    } else if (const char* v3 = val("--n")) {
      o.n = std::atoi(v3);
    } else if (const char* v4 = val("--cores")) {
      o.cores = std::atoi(v4);
    } else if (const char* v5 = val("--cache-kb")) {
      o.cache_kb = static_cast<std::uint32_t>(std::atoi(v5));
    } else if (const char* v6 = val("--policy")) {
      o.policy = std::string(v6) == "wt" ? mem::WritePolicy::kWriteThrough
                                         : mem::WritePolicy::kWriteBack;
    } else if (const char* v7 = val("--arbiter")) {
      const std::string s = v7;
      o.arbiter = s == "mux"      ? pe::ArbiterKind::kMux
                  : s == "single" ? pe::ArbiterKind::kSingleFifo
                                  : pe::ArbiterKind::kDualFifo;
    } else if (const char* v8 = val("--iters")) {
      o.iters = std::atoi(v8);
    } else if (a == "--verify") {
      o.verify = true;
    } else if (a == "--stats") {
      o.stats = true;
    } else if (a == "--help" || a == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

core::MedeaSystem make_system(const Options& o) {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = o.cores;
  cfg.l1.size_bytes = o.cache_kb * 1024;
  cfg.l1.policy = o.policy;
  cfg.arbiter.kind = o.arbiter;
  return core::MedeaSystem(cfg);
}

int run_jacobi_cli(const Options& o) {
  auto sys = make_system(o);
  apps::JacobiParams p;
  p.n = o.n > 0 ? o.n : 30;
  p.timed_iterations = o.iters;
  p.verify = o.verify;
  p.variant = o.variant == "sync-only"
                  ? apps::JacobiVariant::kHybridSyncOnly
              : o.variant == "sm" ? apps::JacobiVariant::kPureSharedMemory
                                  : apps::JacobiVariant::kHybridMp;
  const auto res = apps::run_jacobi(sys, p);
  std::printf("jacobi %dx%d %s: %.0f cycles/iteration (total %llu)\n", p.n,
              p.n, to_string(p.variant), res.cycles_per_iteration,
              static_cast<unsigned long long>(res.total_cycles));
  if (o.verify) {
    std::printf("verification: max |err| = %g -> %s\n", res.max_abs_error,
                res.max_abs_error == 0.0 ? "bit-exact" : "FAILED");
    if (res.max_abs_error != 0.0) return 1;
  }
  if (o.stats) std::fputs(sys.aggregate_stats().to_string().c_str(), stdout);
  return 0;
}

int run_reduction_cli(const Options& o) {
  auto sys = make_system(o);
  apps::ReductionParams p;
  p.elements = o.n > 0 ? o.n : 1024;
  p.repeats = o.iters;
  p.variant = o.variant == "sm" ? apps::ReductionVariant::kSharedMemory
                                : apps::ReductionVariant::kMessagePassing;
  const auto res = apps::run_reduction(sys, p);
  std::printf("reduction %d elems %s: %.0f cycles/round, value %.12g "
              "(ref %.12g, |err| %g)\n",
              p.elements, to_string(p.variant), res.cycles_per_round,
              res.value, res.reference, res.abs_error);
  if (o.stats) std::fputs(sys.aggregate_stats().to_string().c_str(), stdout);
  return o.verify && res.abs_error > 1e-9 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    std::fprintf(stderr,
                 "usage: medea_cli [--workload=jacobi|reduction] "
                 "[--variant=mp|sync-only|sm] [--n=N] [--cores=P] "
                 "[--cache-kb=K] [--policy=wb|wt] "
                 "[--arbiter=mux|single|dual] [--iters=I] [--verify] "
                 "[--stats]\n");
    return 1;
  }
  try {
    return o.workload == "reduction" ? run_reduction_cli(o)
                                     : run_jacobi_cli(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
