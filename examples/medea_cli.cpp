/// medea_cli — run one MEDEA experiment from the command line.
///
/// A small front-end over the workload engine for scripting experiments
/// without writing C++:
///
///   medea_cli [options]
///     --workload=jacobi|reduction     (default jacobi)
///     --variant=mp|sync-only|sm       (default mp; reduction: mp|sm)
///     --n=N            grid size / elements      (default 30 / 1024)
///     --cores=P        compute cores, 1..15      (default 8)
///     --cache-kb=K     L1 size, power of two     (default 16)
///     --policy=wb|wt   write policy              (default wb)
///     --arbiter=mux|single|dual                  (default dual)
///     --iters=I        timed iterations/rounds   (default 2)
///     --verify         check against the sequential reference
///     --stats          dump aggregate hardware statistics
///   telemetry:
///     --sample-every=N snapshot stats every N cycles (default 1024
///                      when an export below is requested, else off)
///     --timeline=FILE  sampled time-series JSON (medea-timeline-v1)
///     --perfetto=FILE  Chrome/Perfetto trace (chrome://tracing)
///   flit tracing:
///     --flit-trace=FILE  per-flit hop chains JSON (medea-flittrace-v1)
///     --trace-sample=N   trace 1-in-N packets (default 1 = all)
///     --worst-flits=K    print the top-K worst-packet report
///
/// Exit code 0 on success (and verification pass), 1 otherwise.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/medea.h"
#include "sim/telemetry.h"
#include "workload/flit_report.h"
#include "workload/timeline.h"
#include "workload/workload.h"

using namespace medea;

namespace {

struct Options {
  std::string workload = "jacobi";
  std::string variant = "mp";
  int n = -1;
  int cores = 8;
  std::uint32_t cache_kb = 16;
  mem::WritePolicy policy = mem::WritePolicy::kWriteBack;
  pe::ArbiterKind arbiter = pe::ArbiterKind::kDualFifo;
  int iters = 2;
  bool verify = false;
  bool stats = false;
  // telemetry exports
  sim::Cycle sample_every = 0;
  std::string timeline_path;
  std::string perfetto_path;
  // flit tracing
  std::string flit_trace_path;
  std::uint32_t trace_sample = 0;
  int worst_k = 8;
  bool print_worst = false;
};

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* key) -> const char* {
      const std::size_t klen = std::strlen(key);
      if (a.compare(0, klen, key) == 0 && a.size() > klen && a[klen] == '=') {
        return a.c_str() + klen + 1;
      }
      return nullptr;
    };
    if (const char* v = val("--workload")) {
      o.workload = v;
    } else if (const char* v2 = val("--variant")) {
      o.variant = v2;
    } else if (const char* v3 = val("--n")) {
      o.n = std::atoi(v3);
    } else if (const char* v4 = val("--cores")) {
      o.cores = std::atoi(v4);
    } else if (const char* v5 = val("--cache-kb")) {
      o.cache_kb = static_cast<std::uint32_t>(std::atoi(v5));
    } else if (const char* v6 = val("--policy")) {
      o.policy = std::string(v6) == "wt" ? mem::WritePolicy::kWriteThrough
                                         : mem::WritePolicy::kWriteBack;
    } else if (const char* v7 = val("--arbiter")) {
      const std::string s = v7;
      o.arbiter = s == "mux"      ? pe::ArbiterKind::kMux
                  : s == "single" ? pe::ArbiterKind::kSingleFifo
                                  : pe::ArbiterKind::kDualFifo;
    } else if (const char* v8 = val("--iters")) {
      o.iters = std::atoi(v8);
    } else if (const char* v9 = val("--sample-every")) {
      o.sample_every = static_cast<sim::Cycle>(std::atoll(v9));
    } else if (const char* v10 = val("--timeline")) {
      o.timeline_path = v10;
    } else if (const char* v11 = val("--perfetto")) {
      o.perfetto_path = v11;
    } else if (const char* v12 = val("--flit-trace")) {
      o.flit_trace_path = v12;
    } else if (const char* v13 = val("--trace-sample")) {
      o.trace_sample = static_cast<std::uint32_t>(std::atoll(v13));
    } else if (const char* v14 = val("--worst-flits")) {
      o.worst_k = std::atoi(v14);
      o.print_worst = true;
    } else if (a == "--verify") {
      o.verify = true;
    } else if (a == "--stats") {
      o.stats = true;
    } else if (a == "--help" || a == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

/// Map the CLI's workload/variant pair onto a registry name; empty on an
/// unknown combination.
std::string registry_name(const Options& o) {
  if (o.workload == "jacobi") {
    if (o.variant == "mp") return "jacobi";
    if (o.variant == "sync-only") return "jacobi-sync";
    if (o.variant == "sm") return "jacobi-sm";
  } else if (o.workload == "reduction") {
    if (o.variant == "mp") return "reduction";
    if (o.variant == "sm") return "reduction-sm";
  }
  return "";
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

int run_cli(const Options& o) {
  const std::string name = registry_name(o);
  if (name.empty()) {
    std::fprintf(stderr, "unknown workload/variant: %s/%s\n",
                 o.workload.c_str(), o.variant.c_str());
    return 1;
  }

  workload::RunRequest req;
  req.machine.num_compute_cores = o.cores;
  req.machine.l1.size_bytes = o.cache_kb * 1024;
  req.machine.l1.policy = o.policy;
  req.machine.arbiter.kind = o.arbiter;
  req.verify = o.verify;
  req.app = workload::AppParams{};
  req.app->size = o.n;
  req.app->iterations = o.iters;

  // Telemetry outputs imply sampling; flit-trace outputs imply tracing.
  const bool wants_telemetry =
      !o.timeline_path.empty() || !o.perfetto_path.empty();
  req.telemetry.sample_every = o.sample_every;
  if (wants_telemetry && req.telemetry.sample_every == 0) {
    req.telemetry.sample_every = 1024;
  }
  if (!o.perfetto_path.empty()) {
    telemetry::HostProfiler::instance().set_enabled(true);
  }
  const bool wants_flit_trace =
      !o.flit_trace_path.empty() || o.print_worst || o.trace_sample > 0;
  req.flit_trace.sample_every =
      wants_flit_trace && o.trace_sample == 0 ? 1 : o.trace_sample;
  req.flit_trace.worst_k = o.worst_k;

  const workload::RunResult res = workload::run_by_name(name, req);

  const int n = o.n > 0 ? o.n : (o.workload == "jacobi" ? 30 : 1024);
  if (o.workload == "jacobi") {
    std::printf("jacobi %dx%d %s: %.0f cycles/iteration (total %llu)\n", n, n,
                o.variant.c_str(), res.metric,
                static_cast<unsigned long long>(res.cycles));
  } else {
    std::printf("reduction %d elems %s: %.0f cycles/round (total %llu)\n", n,
                o.variant.c_str(), res.metric,
                static_cast<unsigned long long>(res.cycles));
  }
  if (o.verify) {
    std::printf("verification: %s\n", res.verified_ok ? "PASS" : "FAILED");
  }
  if (o.stats) std::fputs(res.stats.to_string().c_str(), stdout);
  if (o.print_worst) {
    std::fputs(workload::format_worst_flits(res.flit_trace, o.worst_k).c_str(),
               stdout);
  }

  if (wants_telemetry || wants_flit_trace) {
    workload::TimelineMeta meta;
    meta.workload = name;
    meta.seed = req.seed;
    meta.noc_width = req.machine.noc_width;
    meta.noc_height = req.machine.noc_height;
    meta.measurement = res.measurement;
    const auto dump = [&](const std::string& path, std::string text) {
      if (path.empty()) return true;
      if (!write_file(path, text)) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return false;
      }
      std::printf("wrote %s\n", path.c_str());
      return true;
    };
    bool ok = dump(o.timeline_path,
                   workload::format_timeline_json(res.timeline, meta));
    ok = dump(o.perfetto_path,
              wants_flit_trace
                  ? workload::format_chrome_trace(
                        res.timeline, meta,
                        telemetry::HostProfiler::instance().spans(),
                        res.flit_trace, o.worst_k)
                  : workload::format_chrome_trace(
                        res.timeline, meta,
                        telemetry::HostProfiler::instance().spans())) && ok;
    ok = dump(o.flit_trace_path,
              workload::format_flit_trace_json(res.flit_trace, meta,
                                               o.worst_k)) && ok;
    if (!ok) return 1;
  }
  return res.verified_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    std::fprintf(stderr,
                 "usage: medea_cli [--workload=jacobi|reduction] "
                 "[--variant=mp|sync-only|sm] [--n=N] [--cores=P] "
                 "[--cache-kb=K] [--policy=wb|wt] "
                 "[--arbiter=mux|single|dual] [--iters=I] [--verify] "
                 "[--stats] [--sample-every=N] [--timeline=FILE] "
                 "[--perfetto=FILE] [--flit-trace=FILE] [--trace-sample=N] "
                 "[--worst-flits=K]\n");
    return 1;
  }
  try {
    return run_cli(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
