/// producer_consumer — the two synchronization styles side by side.
///
/// A producer streams items to a consumer in two ways:
///  1. a shared-memory ring buffer guarded by the MPMMU lock/unlock
///     protocol (§II-C), with the §II-E flush/invalidate discipline, and
///  2. the eMPI message-passing path over the TIE port (§II-E).
///
/// Prints the cycles per item for both, demonstrating why the paper moves
/// synchronization off the memory hierarchy.
///
/// Usage: ./examples/producer_consumer [items]

#include <cstdio>
#include <cstdlib>

#include "core/medea.h"

using namespace medea;

namespace {

constexpr int kSlots = 4;  // ring capacity

struct Ring {
  mem::Addr lock_word;  // protects head/tail
  mem::Addr head;       // next write index (producer)
  mem::Addr tail;       // next read index (consumer)
  mem::Addr slots;      // kSlots data words
};

sim::Task<> sm_producer(pe::ProcessingElement& pe, Ring r, int items) {
  for (int i = 0; i < items;) {
    co_await pe.lock(r.lock_word);
    auto h = co_await pe.load_uncached(r.head);
    auto t = co_await pe.load_uncached(r.tail);
    if (h.value - t.value < kSlots) {  // space available
      const mem::Addr slot = r.slots + (h.value % kSlots) * 4;
      co_await pe.store_uncached(slot, static_cast<std::uint32_t>(100 + i));
      co_await pe.store_uncached(r.head,
                                 static_cast<std::uint32_t>(h.value) + 1);
      ++i;
    }
    co_await pe.unlock(r.lock_word);
  }
}

sim::Task<> sm_consumer(pe::ProcessingElement& pe, Ring r, int items,
                        sim::Cycle* done) {
  for (int i = 0; i < items;) {
    co_await pe.lock(r.lock_word);
    auto h = co_await pe.load_uncached(r.head);
    auto t = co_await pe.load_uncached(r.tail);
    if (t.value < h.value) {  // item available
      const mem::Addr slot = r.slots + (t.value % kSlots) * 4;
      auto v = co_await pe.load_uncached(slot);
      (void)v;
      co_await pe.store_uncached(r.tail,
                                 static_cast<std::uint32_t>(t.value) + 1);
      ++i;
    }
    co_await pe.unlock(r.lock_word);
  }
  *done = pe.now();
}

sim::Task<> mp_producer(pe::ProcessingElement& pe, int consumer, int items) {
  std::vector<std::uint32_t> item(1);
  for (int i = 0; i < items; ++i) {
    item[0] = static_cast<std::uint32_t>(100 + i);
    co_await pe.mp_send(consumer, item);
  }
}

sim::Task<> mp_consumer(pe::ProcessingElement& pe, int producer, int items,
                        sim::Cycle* done) {
  for (int i = 0; i < items; ++i) {
    auto r = co_await pe.mp_recv(producer);
    (void)r;
  }
  *done = pe.now();
}

}  // namespace

int main(int argc, char** argv) {
  const int items = argc > 1 ? std::atoi(argv[1]) : 64;
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 2;

  sim::Cycle sm_done = 0;
  {
    core::MedeaSystem sys(cfg);
    Ring r;
    r.lock_word = sys.alloc_shared(16, 16);
    r.head = r.lock_word + 4;
    r.tail = r.lock_word + 8;
    r.slots = sys.alloc_shared(kSlots * 4, 16);
    sys.set_program(0, sm_producer(sys.core(0), r, items));
    sys.set_program(1, sm_consumer(sys.core(1), r, items, &sm_done));
    sys.run();
  }

  sim::Cycle mp_done = 0;
  {
    core::MedeaSystem sys(cfg);
    sys.set_program(0, mp_producer(sys.core(0), sys.node_of_rank(1), items));
    sys.set_program(1, mp_consumer(sys.core(1), sys.node_of_rank(0), items,
                                   &mp_done));
    sys.run();
  }

  std::printf("producer/consumer, %d items:\n", items);
  std::printf("  shared-memory ring + MPMMU locks: %8llu cycles "
              "(%.1f cycles/item)\n",
              static_cast<unsigned long long>(sm_done),
              static_cast<double>(sm_done) / items);
  std::printf("  eMPI message passing:             %8llu cycles "
              "(%.1f cycles/item)\n",
              static_cast<unsigned long long>(mp_done),
              static_cast<double>(mp_done) / items);
  std::printf("  message passing advantage:        %8.1fx\n",
              static_cast<double>(sm_done) / static_cast<double>(mp_done));
  return 0;
}
