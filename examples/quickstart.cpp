/// quickstart — the smallest complete MEDEA program.
///
/// Builds a 4-core system on the default 4x4 folded torus, then shows the
/// two halves of the hybrid model side by side:
///  1. shared-memory data exchange with the §II-E flush/invalidate
///     discipline, and
///  2. message-passing synchronization and data exchange over the TIE
///     port via eMPI.
///
/// Run:  ./examples/quickstart

#include <cstdio>

#include "core/medea.h"

using namespace medea;

namespace {

/// Rank 0: produce a value in shared memory, flush it, then announce it
/// over the message-passing network.
sim::Task<> producer(pe::ProcessingElement& pe, mem::Addr data, int consumer) {
  co_await pe.store(data, 1234);
  co_await pe.flush_line(data);  // make it visible behind the MPMMU
  std::vector<std::uint32_t> token{1};
  co_await pe.mp_send(consumer, std::move(token));  // "data ready" signal
  std::printf("[cycle %8llu] rank 0: produced and signalled\n",
              static_cast<unsigned long long>(pe.now()));
}

/// Rank 1: wait for the token (no shared-memory polling!), then read the
/// value through the cache with an explicit invalidate.
sim::Task<> consumer(pe::ProcessingElement& pe, mem::Addr data,
                     int producer_node) {
  co_await pe.mp_recv(producer_node);
  co_await pe.invalidate_line(data);  // drop any stale cached copy
  auto r = co_await pe.load(data);
  std::printf("[cycle %8llu] rank 1: consumed value %llu\n",
              static_cast<unsigned long long>(pe.now()),
              static_cast<unsigned long long>(r.value));
}

/// Ranks 2..3: just meet the others at an eMPI barrier a few times.
sim::Task<> bystander(pe::ProcessingElement& pe, std::vector<int> members,
                      int rank) {
  for (int i = 0; i < 3; ++i) {
    co_await pe.compute(static_cast<std::uint32_t>(50 * (rank + 1)));
    co_await empi::barrier(pe, members);
  }
  std::printf("[cycle %8llu] rank %d: done\n",
              static_cast<unsigned long long>(pe.now()), rank);
}

}  // namespace

int main() {
  core::MedeaConfig cfg;
  cfg.num_compute_cores = 4;
  cfg.l1.size_bytes = 8 * 1024;

  core::MedeaSystem sys(cfg);
  std::printf("MEDEA quickstart: %d cores + MPMMU on a %dx%d folded torus\n",
              sys.num_cores(), cfg.noc_width, cfg.noc_height);

  const mem::Addr data = sys.alloc_shared(64, 16);
  sys.set_program(0, producer(sys.core(0), data, sys.node_of_rank(1)));
  sys.set_program(1, consumer(sys.core(1), data, sys.node_of_rank(0)));

  std::vector<int> barrier_members{sys.node_of_rank(2), sys.node_of_rank(3)};
  sys.set_program(2, bystander(sys.core(2), barrier_members, 2));
  sys.set_program(3, bystander(sys.core(3), barrier_members, 3));

  const sim::Cycle end = sys.run();
  std::printf("system idle at cycle %llu\n",
              static_cast<unsigned long long>(end));

  const auto stats = sys.aggregate_stats();
  std::printf("NoC flits delivered: %llu (mean latency %.1f cycles)\n",
              static_cast<unsigned long long>(stats.get("noc.flits_delivered")),
              stats.acc("noc.latency").mean());
  return 0;
}
