/// trace_tool — the trace toolkit's command-line front-end: inspect,
/// transform, diff and merge MDTR flit traces without touching the
/// simulator (record with `run_workload --record`, replay with
/// `run_workload replay --trace`).
///
///   trace_tool inspect FILE [--buckets=N] [--json]
///       Header, per-source injection rates, the src->dst heatmap and
///       the injection-over-time profile.  --json emits the same
///       inspection as one machine-readable JSON document (per-source
///       rates, the src->dst matrix, both histograms) so notebooks
///       consume the numbers directly instead of scraping the text.
///
///   trace_tool transform IN -o OUT [passes...]
///       Apply a pipeline of transform passes (in the order given):
///         --scale=F          rate-scale the injection schedule
///                            (F > 1 compresses cycles = higher load)
///         --remap=WxH        retarget onto a WxH torus (coordinate-
///                            preserving bijective embedding)
///         --remap-tiled=WxH  tile the recording across a WxH torus
///                            (dims must be integer multiples)
///         --window=B:E       keep cycles [B, E), rebased to the start
///         --window-raw=B:E   same without rebasing
///       The output is fully validated before it is written.
///
///   trace_tool diff A B
///       Report the first divergence (meta field or event) between two
///       traces.  Exit 0 when bit-identical, 2 when different — CI uses
///       this to assert replay/round-trip fidelity.
///
///   trace_tool merge A B -o OUT
///       Interleave two recordings of the same fabric into one
///       multi-tenant trace (uids re-spaced).
///
///   trace_tool flits FILE [--sample=N] [--worst=K] [--json=OUT]
///       Per-flit lifecycle forensics: replay the trace with the flit
///       tracer attached and print the latency decomposition plus the
///       top-K worst-packet hop chains (--json additionally writes the
///       full medea-flittrace-v1 document).
///
/// Exit codes: 0 success, 1 usage/processing error, 2 diff found
/// differences.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "workload/flit_report.h"
#include "workload/timeline.h"
#include "workload/trace.h"
#include "workload/workload.h"
#include "workload/xform/inspect.h"
#include "workload/xform/transform.h"

using namespace medea;
using workload::Trace;
namespace xform = medea::workload::xform;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_tool inspect FILE [--buckets=N] [--json]\n"
      "       trace_tool transform IN -o OUT [--scale=F] [--remap=WxH]\n"
      "         [--remap-tiled=WxH] [--window=B:E] [--window-raw=B:E]\n"
      "       trace_tool diff A B\n"
      "       trace_tool merge A B -o OUT\n"
      "       trace_tool flits FILE [--sample=N] [--worst=K] [--json=OUT]\n");
  return 1;
}

/// "--key=value" matcher (returns the value or nullptr).
const char* opt_value(const std::string& arg, const char* key) {
  const std::size_t klen = std::strlen(key);
  if (arg.compare(0, klen, key) == 0 && arg.size() > klen &&
      arg[klen] == '=') {
    return arg.c_str() + klen + 1;
  }
  return nullptr;
}

bool parse_dims(const char* s, int* w, int* h) {
  char* end = nullptr;
  const long lw = std::strtol(s, &end, 10);
  if (end == s || *end != 'x') return false;
  const char* hs = end + 1;
  const long lh = std::strtol(hs, &end, 10);
  if (end == hs || *end != '\0') return false;
  *w = static_cast<int>(lw);
  *h = static_cast<int>(lh);
  return true;
}

bool parse_range(const char* s, unsigned long long* b, unsigned long long* e) {
  char* end = nullptr;
  *b = std::strtoull(s, &end, 10);
  if (end == s || *end != ':') return false;
  const char* es = end + 1;
  *e = std::strtoull(es, &end, 10);
  return end != es && *end == '\0';
}

int cmd_inspect(int argc, char** argv) {
  const char* path = nullptr;
  int buckets = 16;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (const char* v = opt_value(argv[i], "--buckets")) {
      buckets = std::atoi(v);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();
  const Trace t = workload::load_trace(path);
  const auto insp = xform::inspect_trace(t, buckets);
  std::fputs(json ? xform::format_inspection_json(t, insp).c_str()
                  : xform::format_inspection(t, insp).c_str(),
             stdout);
  return 0;
}

int cmd_transform(int argc, char** argv) {
  const char* in_path = nullptr;
  const char* out_path = nullptr;
  xform::Pipeline pipeline;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (const char* v = opt_value(a, "--scale")) {
      pipeline.add(std::make_unique<xform::RateScale>(std::atof(v)));
    } else if (const char* v2 = opt_value(a, "--remap")) {
      int w = 0, h = 0;
      if (!parse_dims(v2, &w, &h)) return usage();
      pipeline.add(std::make_unique<xform::RemapNodes>(
          w, h, xform::RemapMode::kBijective));
    } else if (const char* v3 = opt_value(a, "--remap-tiled")) {
      int w = 0, h = 0;
      if (!parse_dims(v3, &w, &h)) return usage();
      pipeline.add(
          std::make_unique<xform::RemapNodes>(w, h, xform::RemapMode::kTiled));
    } else if (const char* v4 = opt_value(a, "--window")) {
      unsigned long long b = 0, e = 0;
      if (!parse_range(v4, &b, &e)) return usage();
      pipeline.add(std::make_unique<xform::TimeWindow>(b, e, true));
    } else if (const char* v5 = opt_value(a, "--window-raw")) {
      unsigned long long b = 0, e = 0;
      if (!parse_range(v5, &b, &e)) return usage();
      pipeline.add(std::make_unique<xform::TimeWindow>(b, e, false));
    } else if (a[0] != '-' && in_path == nullptr) {
      in_path = argv[i];
    } else {
      return usage();
    }
  }
  if (in_path == nullptr || out_path == nullptr) return usage();
  if (pipeline.empty()) {
    std::fprintf(stderr, "transform: no passes given (nothing to do)\n");
    return 1;
  }
  const Trace in = workload::load_trace(in_path);
  const Trace out = pipeline.apply(in);
  workload::validate_trace(out);
  workload::save_trace(out, out_path);
  std::printf("%s: %zu events (%dx%d) -> %s: %zu events (%dx%d) via %s\n",
              in_path, in.events.size(), in.meta.width, in.meta.height,
              out_path, out.events.size(), out.meta.width, out.meta.height,
              pipeline.describe().c_str());
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc != 2) return usage();
  const Trace a = workload::load_trace(argv[0]);
  const Trace b = workload::load_trace(argv[1]);
  const auto d = xform::diff_traces(a, b);
  if (d.identical) {
    std::printf("identical: %zu events, meta equal\n", d.a_events);
    return 0;
  }
  std::printf("traces differ (a: %zu events, b: %zu events)\n", d.a_events,
              d.b_events);
  std::printf("first difference: %s\n", d.first_difference.c_str());
  return 2;
}

int cmd_merge(int argc, char** argv) {
  const char* out_path = nullptr;
  std::vector<const char*> inputs;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a[0] != '-') {
      inputs.push_back(argv[i]);
    } else {
      return usage();
    }
  }
  if (inputs.size() != 2 || out_path == nullptr) return usage();
  const Trace a = workload::load_trace(inputs[0]);
  const Trace b = workload::load_trace(inputs[1]);
  const Trace merged = xform::merge_traces(a, b);
  workload::validate_trace(merged);
  workload::save_trace(merged, out_path);
  std::printf("merged %zu + %zu -> %zu events into %s\n", a.events.size(),
              b.events.size(), merged.events.size(), out_path);
  return 0;
}

/// Replay FILE through the workload engine with the flit tracer
/// attached: the trace analyzer without a JSON parser in C++ — the
/// replayed run *is* the recorded run (bit-identical scheduling), so
/// its hop chains are the recording's forensics.
int cmd_flits(int argc, char** argv) {
  const char* path = nullptr;
  std::uint32_t sample = 1;
  int worst = 8;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (const char* v = opt_value(a, "--sample")) {
      sample = static_cast<std::uint32_t>(std::atoll(v));
    } else if (const char* v2 = opt_value(a, "--worst")) {
      worst = std::atoi(v2);
    } else if (const char* v3 = opt_value(a, "--json")) {
      json_path = v3;
    } else if (a[0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr || sample == 0) return usage();

  workload::RunRequest req;
  req.replay = workload::ReplayParams{};
  req.replay->trace_path = path;
  req.flit_trace.sample_every = sample;
  req.flit_trace.worst_k = worst;
  const workload::RunResult res = workload::run_by_name("replay", req);

  std::printf("%s: replayed %llu flits in %llu cycles\n", path,
              static_cast<unsigned long long>(res.flits_delivered),
              static_cast<unsigned long long>(res.cycles));
  std::fputs(workload::format_worst_flits(res.flit_trace, worst).c_str(),
             stdout);
  if (!json_path.empty()) {
    workload::TimelineMeta meta;
    meta.workload = "replay";
    meta.noc_width = res.flit_trace.width;
    meta.noc_height = res.flit_trace.height;
    const std::string doc =
        workload::format_flit_trace_json(res.flit_trace, meta, worst);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "inspect") return cmd_inspect(argc - 2, argv + 2);
    if (cmd == "transform") return cmd_transform(argc - 2, argv + 2);
    if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
    if (cmd == "merge") return cmd_merge(argc - 2, argv + 2);
    if (cmd == "flits") return cmd_flits(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
