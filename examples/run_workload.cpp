/// run_workload — the workload-engine front-end: list, run, record,
/// replay and saturation-sweep any registered workload from the command
/// line.
///
///   run_workload --list                 list registered workloads
///   run_workload <name> [options]       run one workload
///   run_workload <name> --sweep-load [options]
///                                       walk offered load to saturation
///                                       (synthetic patterns only)
///
/// Options are generated from the RunRequest parameter structs and
/// grouped the same way (--help prints the full table).  Flags only
/// engage the request section they belong to, so a knob that does not
/// apply to the chosen workload — say --trace-scale on `uniform`, or
/// --injection-rate on `jacobi` — is a hard validation error, not a
/// silently ignored no-op.
///
/// Examples:
///   run_workload uniform --width=8 --height=8 --injection-rate=0.2
///   run_workload uniform --phased --process=onoff --measure=8192
///   run_workload uniform --sweep-load --loads=0.05,0.15,0.25 --json=sat.json
///   run_workload uniform --phased --timeline=tl.json --perfetto=trace.json
///   run_workload uniform --rate=0.65 --flit-trace=flits.json --worst-flits=5
///   run_workload bitrev --network=xy --record=xy.mdtr
///   run_workload jacobi --size=30 --record=jacobi.mdtr
///   run_workload replay --trace=jacobi.mdtr --trace-scale=2.0
///
/// Exit code 0 on success (and verification pass), 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "sim/telemetry.h"
#include "workload/flit_report.h"
#include "workload/saturation.h"
#include "workload/timeline.h"
#include "workload/workload.h"

using namespace medea;

namespace {

// ---------------------------------------------------------------------
// Declarative flag table, generated from the RunRequest sections
// ---------------------------------------------------------------------

/// CLI state the flag handlers mutate.  Sections are engaged on first
/// touch; the engine's validate_request() then rejects sections the
/// chosen workload cannot honor.
struct Cli {
  workload::RunRequest req;
  bool stats = false;
  std::string record_path;
  std::string json_path;
  // --timeline/--perfetto telemetry exports
  std::string timeline_path;
  std::string timeline_csv_path;
  std::string perfetto_path;
  // --flit-trace/--worst-flits per-flit lifecycle tracing
  std::string flit_trace_path;
  bool print_worst = false;
  // --sweep-load mode
  bool sweep = false;
  workload::LoadSweepSpec sweep_spec;

  workload::SyntheticParams& synth() {
    if (!req.synthetic) req.synthetic = workload::SyntheticParams{};
    return *req.synthetic;
  }
  workload::AppParams& app() {
    if (!req.app) req.app = workload::AppParams{};
    return *req.app;
  }
  workload::ReplayParams& replay() {
    if (!req.replay) req.replay = workload::ReplayParams{};
    return *req.replay;
  }
};

struct Flag {
  const char* group;    ///< help section (mirrors the param struct)
  const char* name;     ///< canonical spelling, e.g. "--injection-rate"
  const char* alias;    ///< old spelling kept as an alias ("" = none)
  const char* arg;      ///< metavar ("" = boolean flag)
  const char* help;
  std::function<void(Cli&, const char*)> set;
};

std::vector<double> parse_loads(const char* v) {
  std::vector<double> out;
  std::string s(v);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atof(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

const std::vector<Flag>& flag_table() {
  static const std::vector<Flag> flags = {
      // --- machine (core::MedeaConfig + run-wide knobs) ---
      {"machine", "--width", "", "W", "NoC torus width (default 4)",
       [](Cli& c, const char* v) { c.req.machine.noc_width = std::atoi(v); }},
      {"machine", "--height", "", "H", "NoC torus height (default 4)",
       [](Cli& c, const char* v) { c.req.machine.noc_height = std::atoi(v); }},
      {"machine", "--cores", "", "P", "compute cores (default 4)",
       [](Cli& c, const char* v) {
         c.req.machine.num_compute_cores = std::atoi(v);
       }},
      {"machine", "--cache-kb", "", "K", "L1 size in kB, power of two",
       [](Cli& c, const char* v) {
         c.req.machine.l1.size_bytes =
             static_cast<std::uint32_t>(std::atoi(v)) * 1024;
       }},
      {"machine", "--policy", "", "wb|wt", "L1 write policy (default wb)",
       [](Cli& c, const char* v) {
         c.req.machine.l1.policy = std::string(v) == "wt"
                                       ? mem::WritePolicy::kWriteThrough
                                       : mem::WritePolicy::kWriteBack;
       }},
      {"machine", "--seed", "", "S", "RNG seed (default 1)",
       [](Cli& c, const char* v) {
         c.req.seed = static_cast<std::uint64_t>(std::atoll(v));
       }},
      {"machine", "--verify", "", "", "check against the host reference",
       [](Cli& c, const char*) { c.req.verify = true; }},
      {"machine", "--shards", "", "N",
       "run the sharded parallel kernel with N threads (0 = one per "
       "hardware thread; results are bit-identical to --shards=1)",
       [](Cli& c, const char* v) {
         c.req.machine.scheduler.queue =
             sim::SchedulerConfig::EventQueue::kShardedCalendar;
         c.req.machine.scheduler.num_shards = std::atoi(v);
       }},

      // --- synthetic (SyntheticParams) ---
      {"synthetic", "--injection-rate", "--rate", "R",
       "offered load, flits/node/cycle (default 0.1)",
       [](Cli& c, const char* v) { c.synth().injection_rate = std::atof(v); }},
      {"synthetic", "--process", "", "bernoulli|onoff",
       "injection process (default bernoulli)",
       [](Cli& c, const char* v) {
         c.synth().process.kind = std::string(v) == "onoff"
                                      ? noc::InjectionKind::kOnOff
                                      : noc::InjectionKind::kBernoulli;
       }},
      {"synthetic", "--burst-alpha", "", "A",
       "onoff: per-cycle on->off probability (default 0.05)",
       [](Cli& c, const char* v) {
         c.synth().process.burst_alpha = std::atof(v);
       }},
      {"synthetic", "--burst-beta", "", "B",
       "onoff: per-cycle off->on probability (default 0.02)",
       [](Cli& c, const char* v) {
         c.synth().process.burst_beta = std::atof(v);
       }},
      {"synthetic", "--flits-per-node", "--flits", "F",
       "per-node budget, non-phased runs (default 1000)",
       [](Cli& c, const char* v) { c.synth().flits_per_node = std::atoi(v); }},
      {"synthetic", "--hotspot", "", "NODE", "hotspot target node (default 0)",
       [](Cli& c, const char* v) { c.synth().hotspot_node = std::atoi(v); }},
      {"synthetic", "--network", "", "deflection|xy",
       "fabric the pattern runs on (default deflection)",
       [](Cli& c, const char* v) { c.synth().network = v; }},

      // --- app (AppParams) ---
      {"app", "--size", "", "N", "problem size (grid n / elements)",
       [](Cli& c, const char* v) { c.app().size = std::atoi(v); }},
      {"app", "--iters", "", "I", "timed iterations/rounds (default 1)",
       [](Cli& c, const char* v) { c.app().iterations = std::atoi(v); }},
      {"app", "--warmup-iters", "", "I", "untimed warm-up iterations",
       [](Cli& c, const char* v) { c.app().warmup_iterations = std::atoi(v); }},

      // --- replay (ReplayParams) ---
      {"replay", "--trace", "", "FILE", "input trace to replay",
       [](Cli& c, const char* v) { c.replay().trace_path = v; }},
      {"replay", "--trace-scale", "", "F", "rate-scale the trace first",
       [](Cli& c, const char* v) { c.replay().trace_scale = std::atof(v); }},
      {"replay", "--force", "", "",
       "allow a RouterConfig differing from the trace header",
       [](Cli& c, const char*) { c.replay().force_config = true; }},

      // --- measurement (MeasurementParams) ---
      {"measurement", "--no-collect", "", "",
       "skip latency/throughput collection",
       [](Cli& c, const char*) { c.req.measurement.collect = false; }},
      {"measurement", "--phased", "", "",
       "warmup/measure/drain run (synthetic only)",
       [](Cli& c, const char*) { c.req.measurement.phased = true; }},
      {"measurement", "--warmup", "", "C", "warmup cycles (default 1000)",
       [](Cli& c, const char* v) {
         c.req.measurement.warmup_cycles =
             static_cast<sim::Cycle>(std::atoll(v));
       }},
      {"measurement", "--auto-warmup", "", "",
       "detect steady state instead of fixed warmup",
       [](Cli& c, const char*) { c.req.measurement.auto_warmup = true; }},
      {"measurement", "--warmup-step", "", "C",
       "steady-state probe window (default 256)",
       [](Cli& c, const char* v) {
         c.req.measurement.warmup_step =
             static_cast<sim::Cycle>(std::atoll(v));
       }},
      {"measurement", "--steady-tol", "", "T",
       "steady-state tolerance (default 0.05)",
       [](Cli& c, const char* v) {
         c.req.measurement.steady_tolerance = std::atof(v);
       }},
      {"measurement", "--measure", "", "C",
       "measurement window length (default 4096)",
       [](Cli& c, const char* v) {
         c.req.measurement.measure_cycles =
             static_cast<sim::Cycle>(std::atoll(v));
       }},
      {"measurement", "--drain-limit", "", "C",
       "max extra drain cycles (default 1000000)",
       [](Cli& c, const char* v) {
         c.req.measurement.drain_limit =
             static_cast<sim::Cycle>(std::atoll(v));
       }},

      // --- telemetry (TelemetryParams + exporters) ---
      {"telemetry", "--sample-every", "", "N",
       "snapshot stats every N cycles (default 1024 when a telemetry "
       "output below is requested, else off)",
       [](Cli& c, const char* v) {
         c.req.telemetry.sample_every = static_cast<sim::Cycle>(std::atoll(v));
       }},
      {"telemetry", "--timeline", "", "FILE",
       "write the sampled time-series as JSON (medea-timeline-v1)",
       [](Cli& c, const char* v) { c.timeline_path = v; }},
      {"telemetry", "--timeline-csv", "", "FILE",
       "write the sampled time-series as CSV",
       [](Cli& c, const char* v) { c.timeline_csv_path = v; }},
      {"telemetry", "--perfetto", "", "FILE",
       "write a Chrome/Perfetto trace (open in chrome://tracing)",
       [](Cli& c, const char* v) { c.perfetto_path = v; }},

      // --- flit tracing (FlitTraceParams + exporters) ---
      {"flit-trace", "--flit-trace", "", "FILE",
       "write sampled per-flit hop chains as JSON (medea-flittrace-v1)",
       [](Cli& c, const char* v) { c.flit_trace_path = v; }},
      {"flit-trace", "--trace-sample", "", "N",
       "trace 1-in-N packets by uid hash (default 1 = every packet)",
       [](Cli& c, const char* v) {
         c.req.flit_trace.sample_every =
             static_cast<std::uint32_t>(std::atoll(v));
       }},
      {"flit-trace", "--worst-flits", "", "K",
       "print the top-K worst-packet forensics report (implies tracing)",
       [](Cli& c, const char* v) {
         c.req.flit_trace.worst_k = std::atoi(v);
         c.print_worst = true;
       }},

      // --- modes & output ---
      {"output", "--record", "", "FILE", "record the run's flit trace",
       [](Cli& c, const char* v) { c.record_path = v; }},
      {"output", "--stats", "", "", "dump aggregate statistics",
       [](Cli& c, const char*) { c.stats = true; }},
      {"output", "--json", "", "FILE", "write latency/curve JSON",
       [](Cli& c, const char* v) { c.json_path = v; }},
      {"output", "--sweep-load", "", "",
       "saturation sweep: walk offered load (synthetic only)",
       [](Cli& c, const char*) { c.sweep = true; }},
      {"output", "--loads", "", "A,B,..", "explicit sweep load points",
       [](Cli& c, const char* v) { c.sweep_spec.loads = parse_loads(v); }},
      {"output", "--load-start", "", "R", "sweep ramp start (default 0.05)",
       [](Cli& c, const char* v) { c.sweep_spec.start = std::atof(v); }},
      {"output", "--load-stop", "", "R", "sweep ramp stop (default 0.65)",
       [](Cli& c, const char* v) { c.sweep_spec.stop = std::atof(v); }},
      {"output", "--load-step", "", "R", "sweep ramp step (default 0.05)",
       [](Cli& c, const char* v) { c.sweep_spec.step = std::atof(v); }},
      {"output", "--saturation-ratio", "", "R",
       "accepted/offered below R flags saturation (default 0.9)",
       [](Cli& c, const char* v) {
         c.sweep_spec.saturation_ratio = std::atof(v);
       }},
      {"output", "--stop-at-saturation", "", "",
       "end the sweep at the first saturated point",
       [](Cli& c, const char*) { c.sweep_spec.stop_at_saturation = true; }},
  };
  return flags;
}

void list_workloads() {
  std::printf("registered workloads:\n");
  for (const workload::Workload* w :
       workload::WorkloadRegistry::instance().list()) {
    std::printf("  %-14s [%s] %s\n", w->name().c_str(),
                to_string(w->kind()), w->description().c_str());
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: run_workload --list\n"
               "       run_workload <name> [options]\n"
               "       run_workload <name> --sweep-load [options]\n\n");
  const char* group = "";
  for (const Flag& f : flag_table()) {
    if (std::strcmp(group, f.group) != 0) {
      group = f.group;
      std::fprintf(stderr, "%s options:\n", group);
    }
    std::string lhs = f.name;
    if (f.arg[0] != '\0') lhs += std::string("=") + f.arg;
    if (f.alias[0] != '\0') lhs += std::string(" (") + f.alias + ")";
    std::fprintf(stderr, "  %-32s %s\n", lhs.c_str(), f.help);
  }
  return 1;
}

/// Match `arg` against a flag spelling: exact for booleans,
/// "name=value" for valued flags.  Returns the value ("" for booleans)
/// or nullptr on no match.
const char* match(const std::string& arg, const char* name, bool valued) {
  const std::size_t n = std::strlen(name);
  if (!valued) return arg == name ? "" : nullptr;
  if (arg.compare(0, n, name) == 0 && arg.size() > n && arg[n] == '=') {
    return arg.c_str() + n + 1;
  }
  return nullptr;
}

void print_measurement(const workload::MeasurementResult& m) {
  if (m.latency.count == 0) return;
  std::printf(
      "  latency (cycles): mean %.2f  p50 %llu  p99 %llu  p999 %llu  "
      "max %llu  (%llu flits%s)\n",
      m.latency.mean, static_cast<unsigned long long>(m.latency.p50),
      static_cast<unsigned long long>(m.latency.p99),
      static_cast<unsigned long long>(m.latency.p999),
      static_cast<unsigned long long>(m.latency.max),
      static_cast<unsigned long long>(m.latency.count),
      m.drained ? "" : ", NOT drained");
  std::printf("  throughput: offered %.4f  accepted %.4f flits/node/cycle\n",
              m.offered_load, m.accepted_throughput);
}

void append_point_json(std::string& out, double requested,
                       const workload::MeasurementResult& m, bool saturated) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"requested_load\": %.6f, \"offered_load\": %.6f, "
      "\"accepted_throughput\": %.6f, \"mean\": %.3f, \"p50\": %llu, "
      "\"p99\": %llu, \"p999\": %llu, \"max\": %llu, \"count\": %llu, "
      "\"drained\": %s, \"saturated\": %s}",
      requested, m.offered_load, m.accepted_throughput, m.latency.mean,
      static_cast<unsigned long long>(m.latency.p50),
      static_cast<unsigned long long>(m.latency.p99),
      static_cast<unsigned long long>(m.latency.p999),
      static_cast<unsigned long long>(m.latency.max),
      static_cast<unsigned long long>(m.latency.count),
      m.drained ? "true" : "false", saturated ? "true" : "false");
  out += buf;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

int run_sweep_mode(const std::string& name, Cli& cli) {
  cli.sweep_spec.workload = name;
  cli.sweep_spec.base = cli.req;
  const workload::SaturationCurve curve =
      workload::sweep_load(cli.sweep_spec);

  std::printf("%s on %s: saturation sweep (%zu points)\n",
              curve.workload.c_str(), curve.network.c_str(),
              curve.points.size());
  std::printf("  %-10s %-10s %-10s %8s %8s %8s  %s\n", "requested", "offered",
              "accepted", "p50", "p99", "p999", "");
  for (const workload::LoadPoint& pt : curve.points) {
    const workload::MeasurementResult& m = pt.measurement;
    std::printf("  %-10.4f %-10.4f %-10.4f %8llu %8llu %8llu  %s\n",
                pt.requested_load, m.offered_load, m.accepted_throughput,
                static_cast<unsigned long long>(m.latency.p50),
                static_cast<unsigned long long>(m.latency.p99),
                static_cast<unsigned long long>(m.latency.p999),
                pt.saturated ? "SATURATED" : "");
  }
  if (curve.saturation_load >= 0.0) {
    std::printf("saturation at offered load %.4f (peak accepted %.4f)\n",
                curve.saturation_load, curve.peak_accepted);
  } else {
    std::printf("no saturation up to the last point (peak accepted %.4f)\n",
                curve.peak_accepted);
  }

  if (!cli.json_path.empty()) {
    std::string j = "{\n  \"workload\": \"" + curve.workload +
                    "\",\n  \"network\": \"" + curve.network +
                    "\",\n  \"saturation_load\": " +
                    std::to_string(curve.saturation_load) +
                    ",\n  \"peak_accepted\": " +
                    std::to_string(curve.peak_accepted) +
                    ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
      append_point_json(j, curve.points[i].requested_load,
                        curve.points[i].measurement,
                        curve.points[i].saturated);
      j += i + 1 < curve.points.size() ? ",\n" : "\n";
    }
    j += "  ]\n}\n";
    if (!write_file(cli.json_path, j)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   cli.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", cli.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string name = argv[1];
  if (name == "--list" || name == "-l") {
    list_workloads();
    return 0;
  }
  if (name == "--help" || name == "-h" || name[0] == '-') return usage();

  Cli cli;
  cli.req.machine.num_compute_cores = 4;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    bool handled = false;
    for (const Flag& f : flag_table()) {
      const bool valued = f.arg[0] != '\0';
      const char* v = match(a, f.name, valued);
      if (v == nullptr && f.alias[0] != '\0') v = match(a, f.alias, valued);
      if (v != nullptr) {
        f.set(cli, v);
        handled = true;
        break;
      }
    }
    if (!handled) {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return usage();
    }
  }
  cli.req.machine.workload = name;

  // Telemetry outputs imply sampling; pick a default cadence when the
  // user asked for an export but not a rate.
  const bool wants_telemetry = !cli.timeline_path.empty() ||
                               !cli.timeline_csv_path.empty() ||
                               !cli.perfetto_path.empty();
  if (wants_telemetry && cli.req.telemetry.sample_every == 0) {
    cli.req.telemetry.sample_every = 1024;
  }
  if (!cli.perfetto_path.empty()) {
    telemetry::HostProfiler::instance().set_enabled(true);
  }
  // Flit-trace outputs imply tracing; default to sampling every packet.
  const bool wants_flit_trace = !cli.flit_trace_path.empty() ||
                                cli.print_worst ||
                                cli.req.flit_trace.sample_every > 0;
  if (wants_flit_trace && cli.req.flit_trace.sample_every == 0) {
    cli.req.flit_trace.sample_every = 1;
  }

  try {
    if (cli.sweep) return run_sweep_mode(name, cli);

    workload::RunResult res;
    if (!cli.record_path.empty()) {
      const workload::Trace t =
          workload::record_workload(name, cli.req, &res);
      workload::save_trace(t, cli.record_path);
      std::printf("recorded %zu injection events to %s\n", t.events.size(),
                  cli.record_path.c_str());
    } else {
      telemetry::ProfileScope scope("run " + name, "sim");
      res = workload::run_by_name(name, cli.req);
    }
    std::printf(
        "%s: %llu cycles, %llu flits delivered, %s = %.2f%s\n", name.c_str(),
        static_cast<unsigned long long>(res.cycles),
        static_cast<unsigned long long>(res.flits_delivered),
        res.metric_name.c_str(), res.metric,
        cli.req.verify ? (res.verified_ok ? ", verified" : ", VERIFY FAILED")
                       : "");
    print_measurement(res.measurement);
    if (cli.stats) std::fputs(res.stats.to_string().c_str(), stdout);
    if (cli.print_worst) {
      std::fputs(workload::format_worst_flits(res.flit_trace,
                                              cli.req.flit_trace.worst_k)
                     .c_str(),
                 stdout);
    }
    if (wants_telemetry || wants_flit_trace) {
      const workload::Workload& w =
          workload::WorkloadRegistry::instance().at(name);
      const auto [tw, th] = w.noc_dims(cli.req);
      workload::TimelineMeta meta;
      meta.workload = name;
      meta.seed = cli.req.seed;
      meta.noc_width = tw;
      meta.noc_height = th;
      meta.measurement = res.measurement;
      const auto dump = [&](const std::string& path, std::string text) {
        if (path.empty()) return true;
        if (!write_file(path, text)) {
          std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
          return false;
        }
        std::printf("wrote %s\n", path.c_str());
        return true;
      };
      bool ok = dump(cli.timeline_path,
                     workload::format_timeline_json(res.timeline, meta));
      ok = dump(cli.timeline_csv_path,
                workload::format_timeline_csv(res.timeline)) && ok;
      // A traced run's Perfetto export carries the worst packets' flow
      // arrows on top of the counter/phase tracks.
      ok = dump(cli.perfetto_path,
                wants_flit_trace
                    ? workload::format_chrome_trace(
                          res.timeline, meta,
                          telemetry::HostProfiler::instance().spans(),
                          res.flit_trace, cli.req.flit_trace.worst_k)
                    : workload::format_chrome_trace(
                          res.timeline, meta,
                          telemetry::HostProfiler::instance().spans())) && ok;
      ok = dump(cli.flit_trace_path,
                workload::format_flit_trace_json(res.flit_trace, meta,
                                                 cli.req.flit_trace.worst_k)) &&
           ok;
      if (!ok) return 1;
    }
    if (!cli.json_path.empty()) {
      std::string j = "{\n  \"workload\": \"" + name +
                      "\",\n  \"points\": [\n";
      const double requested =
          cli.req.synthetic ? cli.req.synthetic->injection_rate : 0.0;
      append_point_json(j, requested, res.measurement, false);
      j += "\n  ]\n}\n";
      if (!write_file(cli.json_path, j)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     cli.json_path.c_str());
        return 1;
      }
    }
    return res.verified_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
