/// run_workload — the workload-engine front-end: list, run, record and
/// replay any registered workload from the command line.
///
///   run_workload --list
///       List every registered workload with its description.
///
///   run_workload <name> [options]
///       Run workload <name> (any registry name: jacobi, jacobi-sync,
///       jacobi-sm, reduction, reduction-sm, uniform, hotspot,
///       transpose, neighbor, replay).
///
///     --width=W --height=H   NoC torus dimensions      (default 4x4)
///     --cores=P              compute cores             (default 4)
///     --cache-kb=K           L1 size, power of two     (default 16)
///     --policy=wb|wt         L1 write policy           (default wb)
///     --size=N               problem size (grid n / elements)
///     --iters=I              timed iterations/rounds   (default 1)
///     --rate=R               injection rate, synthetic (default 0.1)
///     --flits=F              flits per node, synthetic (default 1000)
///     --hotspot=NODE         hotspot target node       (default 0)
///     --seed=S               RNG seed                  (default 1)
///     --verify               check against the host reference
///     --stats                dump aggregate statistics
///     --record=FILE          record the run's flit trace to FILE
///     --trace=FILE           input trace (replay workload)
///     --network=deflection|xy  fabric for synthetic patterns
///     --trace-scale=F        replay: rate-scale the trace first
///     --force                replay: allow a RouterConfig that differs
///                            from the recorded (v2) trace header
///
/// Examples:
///   run_workload uniform --width=8 --height=8 --rate=0.2
///   run_workload bitrev --network=xy --record=xy.mdtr
///   run_workload jacobi --size=30 --record=jacobi.mdtr
///   run_workload replay --trace=jacobi.mdtr --trace-scale=2.0
///
/// Exit code 0 on success (and verification pass), 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/workload.h"

using namespace medea;

namespace {

void list_workloads() {
  std::printf("registered workloads:\n");
  for (const workload::Workload* w :
       workload::WorkloadRegistry::instance().list()) {
    std::printf("  %-14s %s%s\n", w->name().c_str(),
                w->noc_only() ? "[NoC-only] " : "", w->description().c_str());
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage: run_workload --list\n"
      "       run_workload <name> [--width=W] [--height=H] [--cores=P]\n"
      "         [--cache-kb=K] [--policy=wb|wt] [--size=N] [--iters=I]\n"
      "         [--rate=R] [--flits=F] [--hotspot=NODE] [--seed=S]\n"
      "         [--verify] [--stats] [--record=FILE] [--trace=FILE]\n"
      "         [--network=deflection|xy] [--trace-scale=F] [--force]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string name = argv[1];
  if (name == "--list" || name == "-l") {
    list_workloads();
    return 0;
  }
  if (name == "--help" || name == "-h" || name[0] == '-') return usage();

  workload::WorkloadParams p;
  p.config.num_compute_cores = 4;
  bool stats = false;
  std::string record_path;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* key) -> const char* {
      const std::size_t klen = std::strlen(key);
      if (a.compare(0, klen, key) == 0 && a.size() > klen && a[klen] == '=') {
        return a.c_str() + klen + 1;
      }
      return nullptr;
    };
    if (const char* v = val("--width")) {
      p.config.noc_width = std::atoi(v);
    } else if (const char* v2 = val("--height")) {
      p.config.noc_height = std::atoi(v2);
    } else if (const char* v3 = val("--cores")) {
      p.config.num_compute_cores = std::atoi(v3);
    } else if (const char* v4 = val("--cache-kb")) {
      p.config.l1.size_bytes =
          static_cast<std::uint32_t>(std::atoi(v4)) * 1024;
    } else if (const char* v5 = val("--policy")) {
      p.config.l1.policy = std::string(v5) == "wt"
                               ? mem::WritePolicy::kWriteThrough
                               : mem::WritePolicy::kWriteBack;
    } else if (const char* v6 = val("--size")) {
      p.size = std::atoi(v6);
    } else if (const char* v7 = val("--iters")) {
      p.iterations = std::atoi(v7);
    } else if (const char* v8 = val("--rate")) {
      p.injection_rate = std::atof(v8);
    } else if (const char* v9 = val("--flits")) {
      p.flits_per_node = std::atoi(v9);
    } else if (const char* v10 = val("--hotspot")) {
      p.hotspot_node = std::atoi(v10);
    } else if (const char* v11 = val("--seed")) {
      p.seed = static_cast<std::uint64_t>(std::atoll(v11));
    } else if (const char* v12 = val("--record")) {
      record_path = v12;
    } else if (const char* v13 = val("--trace")) {
      p.trace_path = v13;
    } else if (const char* v14 = val("--network")) {
      p.network = v14;
    } else if (const char* v15 = val("--trace-scale")) {
      p.trace_scale = std::atof(v15);
    } else if (a == "--force") {
      p.force_replay_config = true;
    } else if (a == "--verify") {
      p.verify = true;
    } else if (a == "--stats") {
      stats = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return usage();
    }
  }
  p.config.workload = name;

  try {
    workload::WorkloadResult res;
    if (!record_path.empty()) {
      const workload::Trace t = workload::record_workload(name, p, &res);
      workload::save_trace(t, record_path);
      std::printf("recorded %zu injection events to %s\n", t.events.size(),
                  record_path.c_str());
    } else {
      res = workload::run_by_name(name, p);
    }
    std::printf(
        "%s: %llu cycles, %llu flits delivered, %s = %.2f%s\n", name.c_str(),
        static_cast<unsigned long long>(res.cycles),
        static_cast<unsigned long long>(res.flits_delivered),
        res.metric_name.c_str(), res.metric,
        p.verify ? (res.verified_ok ? ", verified" : ", VERIFY FAILED") : "");
    if (stats) std::fputs(res.stats.to_string().c_str(), stdout);
    return res.verified_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
