#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>

#include "mem/memory_map.h"
#include "noc/flit.h"
#include "noc/network.h"
#include "sim/stats.h"
#include "sim/types.h"

/// \file bridge.h
/// The pif2NoC bridge: shared-memory interface of a core (paper §II-B).
///
/// The bridge translates PIF bus transactions into sequences of NoC flits
/// and back.  It supports single read/write and block transfers, keeps a
/// configuration map translating memory addresses to NoC destinations (in
/// the single-MPMMU configuration the destination is hardwired), and owns
/// the 4-entry reorder buffer that reassembles out-of-order block-read
/// flits (a 16-byte cache line = four 32-bit words).
///
/// Transactions run strictly in order, one at a time — the PIF bus is a
/// simple in-order protocol.  A small transaction queue (depth
/// `tx_queue_depth`) acts as the core's write buffer: fire-and-forget
/// transactions (write-through stores, cast-out writebacks) retire from
/// the core's point of view once queued.
///
/// Protocol per transaction (Fig. 4):
///   read:   Req(Address)                        -> Data flits
///   write:  Req(Address) -> Grant(Ack) -> Data… -> Ack
///   lock:   Req(Address)                        -> Ack (when granted)
///   unlock: Req(Address)                        -> Ack

namespace medea::pe {

/// Why a transaction was issued; tells the op engine what to do when the
/// transaction completes.
enum class TxPurpose : std::uint8_t {
  kLoadUncached,   // deliver word to the program
  kFill,           // install line into L1, then retry the access
  kWriteback,      // dirty eviction cast-out (no waiter)
  kWriteThrough,   // WT/uncached store (no waiter)
  kFlush,          // explicit DHWB writeback (program waits for Ack)
  kLock,
  kUnlock,
};

struct BridgeConfig {
  int tx_queue_depth = 2;
};

class Pif2NocBridge {
 public:
  struct Tx {
    std::uint64_t id = 0;
    noc::FlitType type = noc::FlitType::kSingleRead;
    mem::Addr addr = 0;
    std::array<std::uint32_t, mem::kWordsPerLine> data{};  // write payload
    int words = 1;
    TxPurpose purpose = TxPurpose::kLoadUncached;
  };

  struct Completion {
    std::uint64_t id = 0;
    TxPurpose purpose = TxPurpose::kLoadUncached;
    std::array<std::uint32_t, mem::kWordsPerLine> data{};  // read payload
    int words = 0;
  };

  Pif2NocBridge(noc::Network& net, int self_id, int mpmmu_id,
                const BridgeConfig& cfg, sim::StatSet& stats);

  bool can_enqueue() const {
    return queue_.size() < static_cast<std::size_t>(cfg_.tx_queue_depth);
  }

  /// Queue a transaction; returns its id.  Caller must check can_enqueue.
  std::uint64_t enqueue(Tx tx);

  /// Feed one reply flit from the NoC (Ack/Nack/Data addressed to us).
  void rx(const noc::Flit& f);

  /// One cycle of the transmit engine: emits at most one flit into `out`
  /// (the bridge-side register in front of the arbiter).
  void step_tx(std::deque<noc::Flit>& out);

  /// Completion handoff (at most one per cycle; engine is serial).
  std::optional<Completion> take_completion() {
    auto c = completion_;
    completion_.reset();
    return c;
  }

  /// Nothing queued, in flight, or waiting: memory fence condition.
  bool drained() const { return !cur_.has_value() && queue_.empty(); }
  bool busy_streaming() const;

 private:
  enum class State : std::uint8_t {
    kSendReq,
    kWaitGrant,
    kSendData,
    kWaitData,
    kWaitAck,
  };

  noc::Flit make_flit(noc::FlitSubType sub, std::uint8_t seq,
                      std::uint8_t burst, std::uint32_t data) const;
  void complete_current();

  noc::Network& net_;
  int self_id_;
  int mpmmu_id_;  // the address-map LUT of the paper, hardwired single node
  BridgeConfig cfg_;
  sim::StatSet& stats_;

  std::deque<Tx> queue_;
  std::optional<Tx> cur_;
  State state_ = State::kSendReq;
  int data_sent_ = 0;

  // The 4-entry reorder buffer for out-of-order block-read data (Fig. 3).
  std::array<std::uint32_t, mem::kWordsPerLine> reorder_{};
  std::uint32_t rx_mask_ = 0;

  std::optional<Completion> completion_;
  std::uint64_t next_id_ = 1;
};

}  // namespace medea::pe
