#include "pe/bridge.h"

#include <cassert>
#include <stdexcept>

namespace medea::pe {

using noc::Flit;
using noc::FlitSubType;
using noc::FlitType;

Pif2NocBridge::Pif2NocBridge(noc::Network& net, int self_id, int mpmmu_id,
                             const BridgeConfig& cfg, sim::StatSet& stats)
    : net_(net), self_id_(self_id), mpmmu_id_(mpmmu_id), cfg_(cfg),
      stats_(stats) {}

Flit Pif2NocBridge::make_flit(FlitSubType sub, std::uint8_t seq,
                              std::uint8_t burst, std::uint32_t data) const {
  assert(cur_.has_value());
  Flit f;
  f.valid = true;
  // Address-to-NoC-address translation: with a single physical memory
  // node the configuration memory degenerates to a hardwired entry.
  f.dst = net_.geometry().coord_of(mpmmu_id_);
  f.type = cur_->type;
  f.subtype = sub;
  f.seq_num = seq;
  f.burst_size = burst;
  f.src_id = static_cast<std::uint8_t>(self_id_);
  f.data = data;
  f.uid = net_.next_flit_uid();
  return f;
}

std::uint64_t Pif2NocBridge::enqueue(Tx tx) {
  assert(can_enqueue());
  if (tx.id == 0) tx.id = next_id_++;  // callers may pre-assign ids
  stats_.inc("bridge.transactions");
  queue_.push_back(tx);
  return tx.id;
}

bool Pif2NocBridge::busy_streaming() const {
  if (!cur_.has_value()) return !queue_.empty();
  return state_ == State::kSendReq || state_ == State::kSendData;
}

void Pif2NocBridge::step_tx(std::deque<noc::Flit>& out) {
  if (!cur_.has_value()) {
    if (queue_.empty()) return;
    cur_ = queue_.front();
    queue_.pop_front();
    state_ = State::kSendReq;
    data_sent_ = 0;
    rx_mask_ = 0;
  }
  // The bridge-side output register holds one flit; wait until the
  // arbiter has taken the previous one.
  if (!out.empty()) return;

  switch (state_) {
    case State::kSendReq: {
      out.push_back(make_flit(FlitSubType::kAddress, 0, 0, cur_->addr));
      stats_.inc("bridge.req_flits");
      switch (cur_->type) {
        case FlitType::kSingleRead:
        case FlitType::kBlockRead:
          state_ = State::kWaitData;
          break;
        case FlitType::kSingleWrite:
        case FlitType::kBlockWrite:
          state_ = State::kWaitGrant;
          break;
        case FlitType::kLock:
        case FlitType::kUnlock:
          state_ = State::kWaitAck;
          break;
        case FlitType::kMessage:
          throw std::logic_error("bridge cannot issue Message transactions");
      }
      break;
    }
    case State::kSendData: {
      const auto i = static_cast<std::size_t>(data_sent_);
      out.push_back(make_flit(FlitSubType::kData,
                              static_cast<std::uint8_t>(data_sent_),
                              static_cast<std::uint8_t>(cur_->words - 1),
                              cur_->data[i]));
      stats_.inc("bridge.data_flits_out");
      if (++data_sent_ == cur_->words) state_ = State::kWaitAck;
      break;
    }
    case State::kWaitGrant:
    case State::kWaitData:
    case State::kWaitAck:
      break;  // reply-driven
  }
}

void Pif2NocBridge::rx(const Flit& f) {
  if (!cur_.has_value()) {
    throw std::runtime_error("bridge reply with no transaction in flight: " +
                             f.to_string());
  }
  switch (f.subtype) {
    case FlitSubType::kAck:
      if (state_ == State::kWaitGrant) {
        state_ = State::kSendData;  // Fig. 4(a): grant received
      } else if (state_ == State::kWaitAck) {
        complete_current();
      } else {
        throw std::runtime_error("unexpected Ack in bridge state");
      }
      break;
    case FlitSubType::kData: {
      if (state_ != State::kWaitData) {
        throw std::runtime_error("unexpected Data flit in bridge state");
      }
      // Reorder buffer: out-of-order block-read flits land by SEQNUM.
      assert(f.seq_num < mem::kWordsPerLine);
      assert((rx_mask_ & (1u << f.seq_num)) == 0);
      reorder_[f.seq_num] = f.data;
      rx_mask_ |= 1u << f.seq_num;
      stats_.inc("bridge.data_flits_in");
      const int expected =
          cur_->type == FlitType::kBlockRead ? mem::kWordsPerLine : 1;
      if (rx_mask_ == (1u << expected) - 1) complete_current();
      break;
    }
    case FlitSubType::kNack:
      throw std::runtime_error("MPMMU nacked transaction: " + f.to_string());
    case FlitSubType::kAddress:
      throw std::runtime_error("bridge received Address flit: " +
                               f.to_string());
  }
}

void Pif2NocBridge::complete_current() {
  assert(cur_.has_value());
  assert(!completion_.has_value() &&
         "one completion per cycle (serial engine)");
  Completion c;
  c.id = cur_->id;
  c.purpose = cur_->purpose;
  c.data = reorder_;
  c.words = cur_->type == FlitType::kBlockRead     ? mem::kWordsPerLine
            : cur_->type == FlitType::kSingleRead ? 1
                                                   : 0;
  completion_ = c;
  cur_.reset();
  stats_.inc("bridge.completions");
}

}  // namespace medea::pe
