#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "mem/cache.h"
#include "mem/memory_map.h"
#include "noc/network.h"
#include "pe/arbiter.h"
#include "pe/bridge.h"
#include "pe/tie_interface.h"
#include "sim/fifo.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/task.h"

/// \file processing_element.h
/// A MEDEA processing element: RISC core + L1 cache + TIE message-passing
/// port + pif2NoC bridge + NoC-access arbiter (paper §II-B, Fig. 3).
///
/// The paper runs real Xtensa-LX binaries inside its SystemC model.  Our
/// substitute keeps the *timing* contract while expressing core software
/// as C++20 coroutines: a program co_awaits typed operations and the PE
/// resumes it at the cycle the modelled hardware would have retired each
/// operation.  Per-operation costs follow the paper:
///
///   FP add/sub            19 cycles   (Tensilica DP emulation, §II-B)
///   FP multiply           26 cycles   ("Multiply High" configuration)
///   L1 hit (32-bit word)   1 cycle
///   L1 miss               block-read transaction over the NoC (Fig. 4)
///   MP send/receive        1 flit per cycle through the TIE port
///
/// Loads/stores address the global memory map: private segments are
/// cacheable with no coherence actions; the shared segment follows the
/// paper's software-managed discipline (flush-before-unlock on the
/// producer, invalidate/uncached reads on the consumer).

namespace medea::pe {

/// Double-precision FP timing (paper §II-B).
struct FpTiming {
  std::uint32_t add_cycles = 19;
  std::uint32_t mul_cycles = 26;  ///< 60 without the MulHigh option
};

struct PeConfig {
  mem::CacheConfig cache{};
  ArbiterConfig arbiter{};
  BridgeConfig bridge{};
  FpTiming fp{};
  /// Treat the shared segment as uncacheable (§II-E suggests this for
  /// large, frequently shared regions); private segments always cache.
  bool shared_uncached = false;
};

class ProcessingElement;

/// Operation descriptor co_awaited by core programs.
struct Op {
  enum class Kind : std::uint8_t {
    kCompute,
    kLoad,          // word load, cache-managed
    kLoadDouble,    // 8-byte aligned double load
    kStore,
    kStoreDouble,
    kLoadUncached,  // bypass L1 entirely (single-read transaction)
    kLoadDoubleUncached,
    kStoreUncached,
    kStoreDoubleUncached,
    kFlushLine,      // DHWB
    kInvalidateLine, // DII
    kLock,
    kUnlock,
    kFence,          // retire all outstanding stores/writebacks
    kMpSend,
    kMpRecv,
    kMpSendBlock,    // stream a memory block through the TIE port
    kMpRecvBlock,    // land packets in memory at 1 flit/cycle (Fig. 2-b)
  };
  Kind kind = Kind::kCompute;
  mem::Addr addr = 0;
  std::uint64_t value = 0;     // store payload
  std::uint32_t cycles = 0;    // compute duration
  int peer = -1;               // MP destination / source node id
  std::vector<std::uint32_t> words;  // MP payload (1..4 words)
};

/// Result of a completed operation.
struct OpResult {
  std::uint64_t value = 0;           // load result (lo word for doubles)
  std::vector<std::uint32_t> words;  // MP receive payload
};

/// Awaitable returned by the PE operation factories.
class OpAwaiter {
 public:
  OpAwaiter(ProcessingElement& pe, Op op) : pe_(&pe), op_(std::move(op)) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  OpResult await_resume();

 private:
  ProcessingElement* pe_;
  Op op_;
};

class ProcessingElement : public sim::Component {
 public:
  ProcessingElement(sim::Scheduler& sched, noc::Network& net, int node_id,
                    int rank, int mpmmu_node_id, const PeConfig& cfg,
                    const mem::MemoryMap& map);

  int node_id() const { return node_id_; }
  int rank() const { return rank_; }
  const mem::MemoryMap& memory_map() const { return map_; }
  const PeConfig& config() const { return cfg_; }

  /// Install and arm the core program; it starts at the next tick.
  void set_program(sim::Task<> program);
  bool program_done() const { return program_finished_; }

  /// Current simulation cycle (programs use this for timing sections).
  sim::Cycle now() const { return scheduler().now(); }

  // ------------------------------------------------------------------
  // Operation factories (the "ISA" visible to core programs)
  // ------------------------------------------------------------------
  [[nodiscard]] OpAwaiter compute(std::uint32_t cycles);
  [[nodiscard]] OpAwaiter fp_add() { return compute(cfg_.fp.add_cycles); }
  [[nodiscard]] OpAwaiter fp_mul() { return compute(cfg_.fp.mul_cycles); }
  /// n adds and m multiplies, batched into one compute delay.
  [[nodiscard]] OpAwaiter fp_block(int adds, int muls);

  [[nodiscard]] OpAwaiter load(mem::Addr a);
  [[nodiscard]] OpAwaiter store(mem::Addr a, std::uint32_t v);
  /// Explicit cache-bypass accesses (§II-E: uncached shared words, used
  /// e.g. for spin flags and lock words).
  [[nodiscard]] OpAwaiter load_uncached(mem::Addr a);
  [[nodiscard]] OpAwaiter store_uncached(mem::Addr a, std::uint32_t v);
  [[nodiscard]] OpAwaiter load_double(mem::Addr a);
  [[nodiscard]] OpAwaiter store_double(mem::Addr a, double v);
  [[nodiscard]] OpAwaiter flush_line(mem::Addr a);
  [[nodiscard]] OpAwaiter invalidate_line(mem::Addr a);
  [[nodiscard]] OpAwaiter lock(mem::Addr a);
  [[nodiscard]] OpAwaiter unlock(mem::Addr a);
  [[nodiscard]] OpAwaiter fence();

  /// One logic packet (1..4 words) to another node's TIE port.
  [[nodiscard]] OpAwaiter mp_send(int dst_node, std::vector<std::uint32_t> w);
  /// The next in-order logic packet from src_node (blocking).
  [[nodiscard]] OpAwaiter mp_recv(int src_node);

  /// Stream n_words of memory (cached private data or local scratchpad)
  /// through the TIE port as a train of logic packets: the paper's
  /// high-throughput path, one flit per cycle when the data is resident.
  [[nodiscard]] OpAwaiter mp_send_block(int dst_node, mem::Addr src,
                                        int n_words);
  /// Receive n_words into memory; incoming flits store directly by
  /// sequence-number offset (Fig. 2-b), one word per cycle.  `dst` is
  /// normally in the local scratchpad (the paper's packet data segment).
  [[nodiscard]] OpAwaiter mp_recv_block(int src_node, mem::Addr dst,
                                        int n_words);

  // ------------------------------------------------------------------
  void tick(sim::Cycle now) override;

  sim::StatSet& stats() { return stats_; }
  const sim::StatSet& stats() const { return stats_; }
  const mem::Cache& cache() const { return cache_; }
  mem::Cache& cache() { return cache_; }
  const TieInterface& tie() const { return tie_; }

  /// True when every queue/engine of this PE is empty (quiescence).
  bool drained() const;

  /// Zero-time access to the core-local scratchpad (workload setup and
  /// result extraction; simulated code uses ordinary load/store ops).
  std::uint32_t scratch_read_word(mem::Addr a) const;
  void scratch_write_word(mem::Addr a, std::uint32_t v);
  double scratch_read_double(mem::Addr a) const;
  void scratch_write_double(mem::Addr a, double v);

  // Internal: awaiter protocol.
  void submit(Op op, std::coroutine_handle<> h);
  OpResult take_result() { return std::move(result_); }

 private:
  enum class Phase : std::uint8_t {
    kNone,
    kTimed,           // completes at done_at_
    kAwaitTx,         // waiting for bridge transaction waiting_tx_
    kAwaitQueueSpace, // waiting for a bridge queue slot to issue
    kAwaitCredit,     // MP send blocked on flow-control credit
    kAwaitSendDrain,  // MP send streaming flits out of the TIE port
    kAwaitPacket,     // MP receive blocked on packet arrival
    kAwaitFence,      // waiting for the bridge to drain
  };

  // Op engine helpers.
  void start_op(sim::Cycle now);
  void progress_op(sim::Cycle now);
  void advance_mp_send_block(sim::Cycle now);
  void advance_mp_recv_block(sim::Cycle now);
  std::optional<std::uint32_t> read_word_any(mem::Addr a);  // cache or scratch
  void write_scratch_or_fail(mem::Addr a, std::uint32_t v);
  bool try_cache_access(sim::Cycle now);  // true when op retired/advanced
  void begin_fill(mem::Addr line_addr);
  void queue_fire_forget(Pif2NocBridge::Tx tx);
  void try_issue_stores(sim::Cycle now);
  void issue_uncached_read(mem::Addr a);
  void on_bridge_completion(const Pif2NocBridge::Completion& c,
                            sim::Cycle now);
  void complete_op(sim::Cycle now);
  void start_timer(sim::Cycle now, std::uint32_t cycles);
  bool is_cacheable(mem::Addr a) const;

  void drain_eject(sim::Cycle now);

  noc::Network& net_;
  int node_id_;
  int rank_;
  int mpmmu_id_;
  PeConfig cfg_;
  const mem::MemoryMap& map_;

  mem::Cache cache_;
  sim::StatSet stats_;
  TieInterface tie_;
  Pif2NocBridge bridge_;
  NocArbiter arbiter_;

  // Interface output registers in front of the arbiter (<=1 flit each).
  std::deque<noc::Flit> tie_out_;
  std::deque<noc::Flit> bridge_out_;
  // Victim buffer: cast-outs / write-throughs awaiting a bridge slot.
  std::deque<Pif2NocBridge::Tx> fire_forget_;

  sim::Task<> program_;
  bool program_armed_ = false;
  bool program_started_ = false;
  bool program_finished_ = false;

  // Single outstanding operation (simple in-order core).
  Op cur_op_{};
  Phase phase_ = Phase::kNone;
  std::coroutine_handle<> op_waiter_;
  sim::Cycle done_at_ = 0;
  std::uint64_t waiting_tx_ = 0;
  std::uint64_t next_tx_id_ = 1;
  mem::Addr pending_fill_addr_ = 0;
  int op_step_ = 0;  // sub-step for multi-transaction ops
  OpResult result_{};

  // Core-local data RAM (single-cycle, never cached, never on the NoC).
  std::vector<std::uint32_t> scratch_;
};

inline void OpAwaiter::await_suspend(std::coroutine_handle<> h) {
  pe_->submit(std::move(op_), h);
}

inline OpResult OpAwaiter::await_resume() { return pe_->take_result(); }

}  // namespace medea::pe
