#include "pe/processing_element.h"

#include <cassert>
#include <stdexcept>

namespace medea::pe {

using mem::Addr;
using noc::Flit;
using noc::FlitType;

namespace {
/// Depth of the core's write buffer: fire-and-forget stores beyond this
/// stall the pipeline (this is what makes Write-Through traffic hurt).
constexpr std::size_t kWriteBufferDepth = 4;
}  // namespace

ProcessingElement::ProcessingElement(sim::Scheduler& sched, noc::Network& net,
                                     int node_id, int rank, int mpmmu_node_id,
                                     const PeConfig& cfg,
                                     const mem::MemoryMap& map)
    : sim::Component(sched, "pe" + std::to_string(node_id)),
      net_(net),
      node_id_(node_id),
      rank_(rank),
      mpmmu_id_(mpmmu_node_id),
      cfg_(cfg),
      map_(map),
      cache_(cfg.cache),
      tie_(net, node_id, stats_),
      bridge_(net, node_id, mpmmu_node_id, cfg.bridge, stats_),
      arbiter_(cfg.arbiter, stats_) {
  net_.eject(node_id_).set_consumer(this);
  net_.inject(node_id_).set_producer(this);
  scratch_.assign(map.scratchpad_size() / mem::kWordBytes, 0);
}

std::uint32_t ProcessingElement::scratch_read_word(mem::Addr a) const {
  assert(map_.is_scratchpad(a));
  return scratch_[(a - map_.scratchpad_base()) / mem::kWordBytes];
}

void ProcessingElement::scratch_write_word(mem::Addr a, std::uint32_t v) {
  assert(map_.is_scratchpad(a));
  scratch_[(a - map_.scratchpad_base()) / mem::kWordBytes] = v;
}

double ProcessingElement::scratch_read_double(mem::Addr a) const {
  return mem::make_double(scratch_read_word(a),
                          scratch_read_word(a + mem::kWordBytes));
}

void ProcessingElement::scratch_write_double(mem::Addr a, double v) {
  scratch_write_word(a, mem::double_lo(v));
  scratch_write_word(a + mem::kWordBytes, mem::double_hi(v));
}

std::optional<std::uint32_t> ProcessingElement::read_word_any(mem::Addr a) {
  if (map_.is_scratchpad(a)) return scratch_read_word(a);
  return cache_.read_word(a);
}

void ProcessingElement::write_scratch_or_fail(mem::Addr a, std::uint32_t v) {
  if (!map_.is_scratchpad(a)) {
    throw std::runtime_error(
        "mp_recv_block destination must be core-local memory (the paper's "
        "packet data segment, Fig. 2-b)");
  }
  scratch_write_word(a, v);
}

void ProcessingElement::set_program(sim::Task<> program) {
  assert(!program_armed_ && "one program per PE per run");
  program_ = std::move(program);
  program_.set_on_done(
      [](void* self) {
        static_cast<ProcessingElement*>(self)->program_finished_ = true;
      },
      this);
  program_armed_ = true;
  scheduler().wake_at(*this, scheduler().now() + 1);
}

bool ProcessingElement::drained() const {
  return phase_ == Phase::kNone && fire_forget_.empty() &&
         bridge_.drained() && tie_out_.empty() && bridge_out_.empty() &&
         !arbiter_.busy() && tie_.send_flits_pending() == 0;
}

bool ProcessingElement::is_cacheable(Addr a) const {
  if (map_.is_private(a)) return true;
  if (map_.is_shared(a)) return !cfg_.shared_uncached;
  throw std::runtime_error("access to unmapped address " + std::to_string(a) +
                           " by " + name());
}

// ---------------------------------------------------------------------
// Operation factories
// ---------------------------------------------------------------------

OpAwaiter ProcessingElement::compute(std::uint32_t cycles) {
  Op op;
  op.kind = Op::Kind::kCompute;
  op.cycles = cycles;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::fp_block(int adds, int muls) {
  return compute(static_cast<std::uint32_t>(adds) * cfg_.fp.add_cycles +
                 static_cast<std::uint32_t>(muls) * cfg_.fp.mul_cycles);
}

OpAwaiter ProcessingElement::load(Addr a) {
  Op op;
  op.kind = Op::Kind::kLoad;
  op.addr = a;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::store(Addr a, std::uint32_t v) {
  Op op;
  op.kind = Op::Kind::kStore;
  op.addr = a;
  op.value = v;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::load_uncached(Addr a) {
  Op op;
  op.kind = Op::Kind::kLoadUncached;
  op.addr = a;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::store_uncached(Addr a, std::uint32_t v) {
  Op op;
  op.kind = Op::Kind::kStoreUncached;
  op.addr = a;
  op.value = v;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::load_double(Addr a) {
  assert(a % 8 == 0 && "doubles must be 8-byte aligned");
  Op op;
  op.kind = Op::Kind::kLoadDouble;
  op.addr = a;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::store_double(Addr a, double v) {
  assert(a % 8 == 0 && "doubles must be 8-byte aligned");
  Op op;
  op.kind = Op::Kind::kStoreDouble;
  op.addr = a;
  op.value = (static_cast<std::uint64_t>(mem::double_hi(v)) << 32) |
             mem::double_lo(v);
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::flush_line(Addr a) {
  Op op;
  op.kind = Op::Kind::kFlushLine;
  op.addr = a;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::invalidate_line(Addr a) {
  Op op;
  op.kind = Op::Kind::kInvalidateLine;
  op.addr = a;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::lock(Addr a) {
  Op op;
  op.kind = Op::Kind::kLock;
  op.addr = a;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::unlock(Addr a) {
  Op op;
  op.kind = Op::Kind::kUnlock;
  op.addr = a;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::fence() {
  Op op;
  op.kind = Op::Kind::kFence;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::mp_send(int dst_node,
                                     std::vector<std::uint32_t> w) {
  assert(!w.empty() && w.size() <= kMaxMpPacketWords);
  Op op;
  op.kind = Op::Kind::kMpSend;
  op.peer = dst_node;
  op.words = std::move(w);
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::mp_recv(int src_node) {
  Op op;
  op.kind = Op::Kind::kMpRecv;
  op.peer = src_node;
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::mp_send_block(int dst_node, mem::Addr src,
                                           int n_words) {
  assert(n_words >= 1);
  Op op;
  op.kind = Op::Kind::kMpSendBlock;
  op.peer = dst_node;
  op.addr = src;
  op.cycles = static_cast<std::uint32_t>(n_words);
  return {*this, std::move(op)};
}

OpAwaiter ProcessingElement::mp_recv_block(int src_node, mem::Addr dst,
                                           int n_words) {
  assert(n_words >= 1);
  Op op;
  op.kind = Op::Kind::kMpRecvBlock;
  op.peer = src_node;
  op.addr = dst;
  op.cycles = static_cast<std::uint32_t>(n_words);
  return {*this, std::move(op)};
}

// ---------------------------------------------------------------------
// Op engine
// ---------------------------------------------------------------------

void ProcessingElement::submit(Op op, std::coroutine_handle<> h) {
  assert(phase_ == Phase::kNone && !op_waiter_ &&
         "in-order core: one outstanding operation");
  cur_op_ = std::move(op);
  op_waiter_ = h;
  result_ = OpResult{};
  op_step_ = 0;
  start_op(scheduler().now());
}

void ProcessingElement::start_timer(sim::Cycle now, std::uint32_t cycles) {
  done_at_ = now + (cycles == 0 ? 1 : cycles);
  phase_ = Phase::kTimed;
}

void ProcessingElement::complete_op(sim::Cycle now) {
  (void)now;
  phase_ = Phase::kNone;
  stats_.inc("pe.ops_retired");
  auto h = op_waiter_;
  op_waiter_ = nullptr;
  h.resume();  // may re-enter submit()
}

void ProcessingElement::queue_fire_forget(Pif2NocBridge::Tx tx) {
  tx.id = next_tx_id_++;
  fire_forget_.push_back(std::move(tx));
}

void ProcessingElement::begin_fill(Addr line_addr) {
  Pif2NocBridge::Tx tx;
  tx.id = next_tx_id_++;
  tx.type = FlitType::kBlockRead;
  tx.addr = mem::line_align(line_addr);
  pending_fill_addr_ = tx.addr;
  tx.purpose = TxPurpose::kFill;
  waiting_tx_ = tx.id;
  phase_ = Phase::kAwaitTx;
  fire_forget_.push_back(std::move(tx));
  stats_.inc("pe.fills_requested");
}

/// Issue the fire-and-forget store words of the current WT/uncached store
/// op, or park in kAwaitQueueSpace when the write buffer is full.
void ProcessingElement::try_issue_stores(sim::Cycle now) {
  const int n =
      (cur_op_.kind == Op::Kind::kStoreDouble ||
       cur_op_.kind == Op::Kind::kStoreDoubleUncached)
          ? 2
          : 1;
  if (fire_forget_.size() + static_cast<std::size_t>(n) > kWriteBufferDepth) {
    phase_ = Phase::kAwaitQueueSpace;
    stats_.inc("pe.write_buffer_stalls");
    return;
  }
  for (int i = 0; i < n; ++i) {
    Pif2NocBridge::Tx tx;
    tx.type = FlitType::kSingleWrite;
    tx.addr = cur_op_.addr + static_cast<Addr>(i) * mem::kWordBytes;
    tx.data[0] = static_cast<std::uint32_t>(cur_op_.value >> (32 * i));
    tx.words = 1;
    tx.purpose = TxPurpose::kWriteThrough;
    queue_fire_forget(std::move(tx));
  }
  start_timer(now, static_cast<std::uint32_t>(n));
}

bool ProcessingElement::try_cache_access(sim::Cycle now) {
  switch (cur_op_.kind) {
    case Op::Kind::kLoad: {
      auto v = cache_.read_word(cur_op_.addr);
      if (!v) {
        begin_fill(cur_op_.addr);
        return false;
      }
      result_.value = *v;
      start_timer(now, 1);
      return true;
    }
    case Op::Kind::kLoadDouble: {
      auto lo = cache_.read_word(cur_op_.addr);
      if (!lo) {
        begin_fill(cur_op_.addr);
        return false;
      }
      auto hi = cache_.read_word(cur_op_.addr + mem::kWordBytes);
      assert(hi && "8-byte-aligned double lives in one 16-byte line");
      result_.value = (static_cast<std::uint64_t>(*hi) << 32) |
                      static_cast<std::uint64_t>(*lo);
      start_timer(now, 2);
      return true;
    }
    case Op::Kind::kStore: {
      const auto word = static_cast<std::uint32_t>(cur_op_.value);
      if (cfg_.cache.policy == mem::WritePolicy::kWriteBack) {
        if (!cache_.write_word(cur_op_.addr, word)) {
          begin_fill(cur_op_.addr);  // write-allocate
          return false;
        }
        start_timer(now, 1);
        return true;
      }
      // Write-through: update-on-hit, then the store goes to memory.
      if (op_step_ == 0) {
        cache_.write_word(cur_op_.addr, word);
        op_step_ = 1;
      }
      try_issue_stores(now);
      return phase_ == Phase::kTimed;
    }
    case Op::Kind::kStoreDouble: {
      const auto lo = static_cast<std::uint32_t>(cur_op_.value);
      const auto hi = static_cast<std::uint32_t>(cur_op_.value >> 32);
      if (cfg_.cache.policy == mem::WritePolicy::kWriteBack) {
        if (!cache_.write_word(cur_op_.addr, lo)) {
          begin_fill(cur_op_.addr);
          return false;
        }
        const bool ok = cache_.write_word(cur_op_.addr + mem::kWordBytes, hi);
        assert(ok);
        (void)ok;
        start_timer(now, 2);
        return true;
      }
      if (op_step_ == 0) {
        cache_.write_word(cur_op_.addr, lo);
        cache_.write_word(cur_op_.addr + mem::kWordBytes, hi);
        op_step_ = 1;
      }
      try_issue_stores(now);
      return phase_ == Phase::kTimed;
    }
    default:
      assert(false && "not a cacheable access");
      return false;
  }
}

void ProcessingElement::issue_uncached_read(Addr a) {
  Pif2NocBridge::Tx tx;
  tx.id = next_tx_id_++;
  tx.type = FlitType::kSingleRead;
  tx.addr = a;
  tx.purpose = TxPurpose::kLoadUncached;
  waiting_tx_ = tx.id;
  phase_ = Phase::kAwaitTx;
  fire_forget_.push_back(std::move(tx));
}

void ProcessingElement::start_op(sim::Cycle now) {
  stats_.inc("pe.ops_started");
  switch (cur_op_.kind) {
    case Op::Kind::kCompute:
      start_timer(now, cur_op_.cycles);
      break;

    case Op::Kind::kLoad:
    case Op::Kind::kLoadDouble:
    case Op::Kind::kStore:
    case Op::Kind::kStoreDouble:
      if (map_.is_scratchpad(cur_op_.addr)) {
        // Core-local data RAM: single-cycle per 32-bit word, no cache,
        // no NoC traffic.
        const mem::Addr a = cur_op_.addr;
        switch (cur_op_.kind) {
          case Op::Kind::kLoad:
            result_.value = scratch_read_word(a);
            start_timer(now, 1);
            break;
          case Op::Kind::kLoadDouble:
            result_.value =
                static_cast<std::uint64_t>(scratch_read_word(a)) |
                (static_cast<std::uint64_t>(
                     scratch_read_word(a + mem::kWordBytes))
                 << 32);
            start_timer(now, 2);
            break;
          case Op::Kind::kStore:
            scratch_write_word(a, static_cast<std::uint32_t>(cur_op_.value));
            start_timer(now, 1);
            break;
          default:
            scratch_write_word(a, static_cast<std::uint32_t>(cur_op_.value));
            scratch_write_word(a + mem::kWordBytes,
                               static_cast<std::uint32_t>(cur_op_.value >> 32));
            start_timer(now, 2);
            break;
        }
        stats_.inc("pe.scratch_accesses");
        break;
      }
      if (!is_cacheable(cur_op_.addr)) {
        // Redirect to the uncached path (paper §II-E: wide shared
        // segments are best accessed bypassing the cache entirely).
        switch (cur_op_.kind) {
          case Op::Kind::kLoad: cur_op_.kind = Op::Kind::kLoadUncached; break;
          case Op::Kind::kLoadDouble:
            cur_op_.kind = Op::Kind::kLoadDoubleUncached;
            break;
          case Op::Kind::kStore:
            cur_op_.kind = Op::Kind::kStoreUncached;
            break;
          default: cur_op_.kind = Op::Kind::kStoreDoubleUncached; break;
        }
        start_op(now);
        return;
      }
      stats_.inc(cur_op_.kind == Op::Kind::kLoad ||
                         cur_op_.kind == Op::Kind::kLoadDouble
                     ? "pe.loads"
                     : "pe.stores");
      try_cache_access(now);
      break;

    case Op::Kind::kLoadUncached:
    case Op::Kind::kLoadDoubleUncached:
      stats_.inc("pe.loads_uncached");
      issue_uncached_read(cur_op_.addr);
      break;

    case Op::Kind::kStoreUncached:
    case Op::Kind::kStoreDoubleUncached:
      stats_.inc("pe.stores_uncached");
      try_issue_stores(now);
      break;

    case Op::Kind::kFlushLine: {
      stats_.inc("pe.flushes");
      auto wb = cache_.flush_line(cur_op_.addr);
      if (wb.has_value()) {
        Pif2NocBridge::Tx tx;
        tx.id = next_tx_id_++;
        tx.type = FlitType::kBlockWrite;
        tx.addr = wb->line_addr;
        tx.data = wb->data;
        tx.words = mem::kWordsPerLine;
        tx.purpose = TxPurpose::kFlush;
        waiting_tx_ = tx.id;
        phase_ = Phase::kAwaitTx;  // program waits for the final Ack
        fire_forget_.push_back(std::move(tx));
      } else {
        start_timer(now, 1);
      }
      break;
    }

    case Op::Kind::kInvalidateLine:
      stats_.inc("pe.invalidates");
      cache_.invalidate_line(cur_op_.addr);
      start_timer(now, 1);
      break;

    case Op::Kind::kLock:
    case Op::Kind::kUnlock: {
      stats_.inc(cur_op_.kind == Op::Kind::kLock ? "pe.locks" : "pe.unlocks");
      Pif2NocBridge::Tx tx;
      tx.id = next_tx_id_++;
      tx.type = cur_op_.kind == Op::Kind::kLock ? FlitType::kLock
                                                : FlitType::kUnlock;
      tx.addr = cur_op_.addr;
      tx.purpose = cur_op_.kind == Op::Kind::kLock ? TxPurpose::kLock
                                                   : TxPurpose::kUnlock;
      waiting_tx_ = tx.id;
      phase_ = Phase::kAwaitTx;
      fire_forget_.push_back(std::move(tx));
      break;
    }

    case Op::Kind::kFence:
      stats_.inc("pe.fences");
      phase_ = Phase::kAwaitFence;
      break;

    case Op::Kind::kMpSend:
      stats_.inc("pe.mp_sends");
      if (tie_.can_send(cur_op_.peer)) {
        tie_.start_send(cur_op_.peer, cur_op_.words.data(),
                        static_cast<int>(cur_op_.words.size()));
        phase_ = Phase::kAwaitSendDrain;
      } else {
        phase_ = Phase::kAwaitCredit;
        stats_.inc("pe.mp_credit_stalls");
      }
      break;

    case Op::Kind::kMpRecv:
      stats_.inc("pe.mp_recvs");
      if (tie_.packet_ready(cur_op_.peer)) {
        result_.words = tie_.consume_packet(cur_op_.peer);
        start_timer(now, static_cast<std::uint32_t>(result_.words.size()));
      } else {
        phase_ = Phase::kAwaitPacket;
      }
      break;

    case Op::Kind::kMpSendBlock:
      stats_.inc("pe.mp_send_blocks");
      cur_op_.words.clear();
      advance_mp_send_block(now);
      break;

    case Op::Kind::kMpRecvBlock:
      stats_.inc("pe.mp_recv_blocks");
      phase_ = Phase::kAwaitPacket;
      advance_mp_recv_block(now);
      break;
  }
}

/// Drive the block send: stage up to 4 words from memory per packet, hand
/// each staged packet to the TIE port as credits allow.  Word reads are
/// pipelined with the one-flit-per-cycle port in the real hardware, so on
/// cache/scratchpad hits the flit stream itself is the only time cost; a
/// miss stalls the stream for a line fill like any other load.
void ProcessingElement::advance_mp_send_block(sim::Cycle now) {
  (void)now;  // staging is instantaneous; time is charged by the flit stream
  const int total = static_cast<int>(cur_op_.cycles);
  for (;;) {
    if (!cur_op_.words.empty()) {
      if (!tie_.can_send(cur_op_.peer)) {
        phase_ = Phase::kAwaitCredit;
        stats_.inc("pe.mp_credit_stalls");
        return;
      }
      tie_.start_send(cur_op_.peer, cur_op_.words.data(),
                      static_cast<int>(cur_op_.words.size()));
      cur_op_.words.clear();
    }
    if (op_step_ >= total) break;
    while (op_step_ < total &&
           cur_op_.words.size() < static_cast<std::size_t>(kMaxMpPacketWords)) {
      const mem::Addr a =
          cur_op_.addr + static_cast<mem::Addr>(op_step_) * mem::kWordBytes;
      auto v = read_word_any(a);
      if (!v.has_value()) {
        begin_fill(a);  // resume from on_bridge_completion
        return;
      }
      cur_op_.words.push_back(*v);
      ++op_step_;
    }
  }
  phase_ = Phase::kAwaitSendDrain;
}

/// Drive the block receive: every complete in-order packet stores its
/// words directly into local memory by sequence-number offset, one word
/// per cycle (Fig. 2-b) — software never copies.
void ProcessingElement::advance_mp_recv_block(sim::Cycle now) {
  const int total = static_cast<int>(cur_op_.cycles);
  int burst = 0;
  while (op_step_ < total && tie_.packet_ready(cur_op_.peer)) {
    const auto words = tie_.consume_packet(cur_op_.peer);
    for (std::uint32_t w : words) {
      write_scratch_or_fail(
          cur_op_.addr + static_cast<mem::Addr>(op_step_) * mem::kWordBytes, w);
      ++op_step_;
    }
    burst += static_cast<int>(words.size());
  }
  if (burst > 0) {
    // One cycle per landed word; if more packets are still due, kTimed
    // expiry falls through to kAwaitPacket (see progress_op).
    start_timer(now, static_cast<std::uint32_t>(burst));
  }
  // else stay in kAwaitPacket; arrival wakes us via the eject FIFO.
}

void ProcessingElement::on_bridge_completion(
    const Pif2NocBridge::Completion& c, sim::Cycle now) {
  switch (c.purpose) {
    case TxPurpose::kWriteback:
    case TxPurpose::kWriteThrough:
      return;  // fire-and-forget
    case TxPurpose::kFill: {
      assert(phase_ == Phase::kAwaitTx && waiting_tx_ == c.id);
      mem::LineData line = c.data;
      const Addr line_addr = pending_fill_addr_;  // set by begin_fill
      auto wb = cache_.fill_line(line_addr, line);
      if (wb.has_value()) {
        Pif2NocBridge::Tx tx;
        tx.type = FlitType::kBlockWrite;
        tx.addr = wb->line_addr;
        tx.data = wb->data;
        tx.words = mem::kWordsPerLine;
        tx.purpose = TxPurpose::kWriteback;
        queue_fire_forget(std::move(tx));  // cast-out, no waiter
      }
      waiting_tx_ = 0;
      // Complete the access that missed, stat-free (the miss was already
      // counted; a retry through read_word/write_word would inflate hits).
      const Addr a = cur_op_.addr;
      switch (cur_op_.kind) {
        case Op::Kind::kLoad:
          result_.value = cache_.peek_word(a);
          start_timer(now, 1);
          break;
        case Op::Kind::kLoadDouble:
          result_.value =
              static_cast<std::uint64_t>(cache_.peek_word(a)) |
              (static_cast<std::uint64_t>(cache_.peek_word(a + mem::kWordBytes))
               << 32);
          start_timer(now, 2);
          break;
        case Op::Kind::kStore:
          cache_.poke_word(a, static_cast<std::uint32_t>(cur_op_.value),
                           /*mark_dirty=*/true);
          start_timer(now, 1);
          break;
        case Op::Kind::kStoreDouble:
          cache_.poke_word(a, static_cast<std::uint32_t>(cur_op_.value),
                           /*mark_dirty=*/true);
          cache_.poke_word(a + mem::kWordBytes,
                           static_cast<std::uint32_t>(cur_op_.value >> 32),
                           /*mark_dirty=*/true);
          start_timer(now, 2);
          break;
        case Op::Kind::kMpSendBlock:
          // The streamed block hit a cold line; continue staging from
          // where the scan stopped.
          phase_ = Phase::kNone;
          advance_mp_send_block(now);
          break;
        default:
          assert(false && "fill completion for a non-cacheable op");
      }
      return;
    }
    case TxPurpose::kLoadUncached: {
      assert(phase_ == Phase::kAwaitTx && waiting_tx_ == c.id);
      if (cur_op_.kind == Op::Kind::kLoadDoubleUncached && op_step_ == 0) {
        result_.value = c.data[0];
        op_step_ = 1;
        issue_uncached_read(cur_op_.addr + mem::kWordBytes);
        return;
      }
      if (cur_op_.kind == Op::Kind::kLoadDoubleUncached) {
        result_.value |= static_cast<std::uint64_t>(c.data[0]) << 32;
      } else {
        result_.value = c.data[0];
      }
      waiting_tx_ = 0;
      complete_op(now);
      return;
    }
    case TxPurpose::kFlush:
    case TxPurpose::kLock:
    case TxPurpose::kUnlock:
      assert(phase_ == Phase::kAwaitTx && waiting_tx_ == c.id);
      waiting_tx_ = 0;
      complete_op(now);
      return;
  }
}

void ProcessingElement::progress_op(sim::Cycle now) {
  switch (phase_) {
    case Phase::kNone:
    case Phase::kAwaitTx:
      return;
    case Phase::kTimed:
      if (now >= done_at_) {
        if (cur_op_.kind == Op::Kind::kMpRecvBlock &&
            op_step_ < static_cast<int>(cur_op_.cycles)) {
          phase_ = Phase::kAwaitPacket;  // more packets still due
          advance_mp_recv_block(now);
        } else {
          complete_op(now);
        }
      }
      return;
    case Phase::kAwaitQueueSpace:
      try_issue_stores(now);
      return;
    case Phase::kAwaitCredit:
      if (cur_op_.kind == Op::Kind::kMpSendBlock) {
        if (tie_.can_send(cur_op_.peer)) advance_mp_send_block(now);
      } else if (tie_.can_send(cur_op_.peer)) {
        tie_.start_send(cur_op_.peer, cur_op_.words.data(),
                        static_cast<int>(cur_op_.words.size()));
        phase_ = Phase::kAwaitSendDrain;
      }
      return;
    case Phase::kAwaitSendDrain:
      if (tie_.send_flits_pending() == 0) complete_op(now);
      return;
    case Phase::kAwaitPacket:
      if (cur_op_.kind == Op::Kind::kMpRecvBlock) {
        advance_mp_recv_block(now);
      } else if (tie_.packet_ready(cur_op_.peer)) {
        result_.words = tie_.consume_packet(cur_op_.peer);
        start_timer(now, static_cast<std::uint32_t>(result_.words.size()));
      }
      return;
    case Phase::kAwaitFence:
      if (bridge_.drained() && fire_forget_.empty() && bridge_out_.empty()) {
        complete_op(now);
      }
      return;
  }
}

void ProcessingElement::drain_eject(sim::Cycle now) {
  (void)now;
  auto& ej = net_.eject(node_id_);
  while (!ej.empty()) {
    const Flit f = ej.pop();
    if (f.type == FlitType::kMessage) {
      tie_.on_rx_flit(f);
    } else {
      bridge_.rx(f);
    }
  }
}

void ProcessingElement::tick(sim::Cycle now) {
  if (program_armed_ && !program_started_) {
    program_started_ = true;
    program_.start();  // runs until the first co_await submits an op
    program_.rethrow_if_error();
  }

  drain_eject(now);
  if (auto c = bridge_.take_completion()) on_bridge_completion(*c, now);
  progress_op(now);
  if (program_started_) program_.rethrow_if_error();

  // Feed queued transactions to the bridge, oldest first.
  while (!fire_forget_.empty() && bridge_.can_enqueue()) {
    bridge_.enqueue(fire_forget_.front());
    fire_forget_.pop_front();
  }
  bridge_.step_tx(bridge_out_);

  // TIE port: one flit per cycle into its output register.
  if (tie_out_.empty() && !tie_.tx_queue().empty()) {
    tie_out_.push_back(tie_.tx_queue().front());
    tie_.tx_queue().pop_front();
    tie_.on_tx_departure(tie_out_.back());
  }

  arbiter_.step(net_.inject(node_id_), tie_out_, bridge_out_);

  // ---- wake management ----
  const bool engines_busy = !fire_forget_.empty() || bridge_.busy_streaming() ||
                            !tie_.tx_queue().empty() || !tie_out_.empty() ||
                            !bridge_out_.empty() || arbiter_.busy();
  // kAwaitCredit is deliberately absent: credits arrive as flits and the
  // eject FIFO wakes us, so polling would only burn kernel cycles.
  const bool op_polling = phase_ == Phase::kAwaitSendDrain ||
                          phase_ == Phase::kAwaitFence ||
                          phase_ == Phase::kAwaitQueueSpace;
  if (phase_ == Phase::kTimed && done_at_ > now) {
    scheduler().wake_at(*this, done_at_);
  }
  if (engines_busy || op_polling ||
      (phase_ == Phase::kTimed && done_at_ <= now)) {
    wake();
  }
  // kAwaitTx / kAwaitPacket resolve via incoming flits, which wake us
  // through the eject FIFO's consumer hook.
}

}  // namespace medea::pe
