#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "noc/flit.h"
#include "noc/network.h"
#include "sim/stats.h"

/// \file tie_interface.h
/// The TIE message-passing port of a MEDEA core (paper §II-B, Fig. 2).
///
/// Paper mechanics reproduced:
///  * Sending a logic packet of L flits stamps a sequence number into
///    every flit plus an X-Y destination taken from a LUT, at a maximum
///    throughput of one flit per cycle.
///  * The receiver needs no sorting buffer: the sequence number of each
///    incoming flit is used directly as the store offset into a packet
///    landing area in processor local memory; a double-buffer technique
///    gives one-cycle reads.
///  * The BURST field tells the receiver how many flits belong to the
///    logic packet (2 bits => at most 4 payload words per logic packet;
///    longer messages are fragmented by the eMPI layer).
///
/// The paper leaves packet-level flow control implicit in the double
/// buffer.  We make it explicit and conservative: a sender holds
/// kCreditsPerPeer credits per destination; each consumed packet returns a
/// credit via a single Message/Ack flit.  The 4-bit SEQNUM field encodes
/// {landing slot (2 bits) | word offset (2 bits)}, so in-flight packets
/// never collide in the landing area.  (documented in DESIGN.md)

namespace medea::pe {

/// Payload words per logic packet, bounded by the 2-bit BURST field.
inline constexpr int kMaxMpPacketWords = 4;

/// Outstanding unconsumed packets allowed per (source, destination) pair —
/// the paper's double buffer.
inline constexpr int kCreditsPerPeer = 2;

class TieInterface {
 public:
  TieInterface(noc::Network& net, int self_id, sim::StatSet& stats);

  // ------------------------------------------------------------------
  // Send side
  // ------------------------------------------------------------------

  /// True when a logic packet may be sent to dst (credit available).
  bool can_send(int dst_id) const;

  /// Queue one logic packet (1..4 words) for transmission.  One flit
  /// leaves per cycle through tx_queue(); the caller (PE) reports each
  /// departure via on_tx_departure().
  void start_send(int dst_id, const std::uint32_t* words, int n);

  /// Output register toward the arbiter; the PE moves flits out of here.
  std::deque<noc::Flit>& tx_queue() { return tx_q_; }

  /// Flits of the current send still queued (send op completes at zero).
  int send_flits_pending() const { return send_pending_; }
  void on_tx_departure(const noc::Flit& f);

  // ------------------------------------------------------------------
  // Receive side
  // ------------------------------------------------------------------

  /// Feed one incoming Message flit (data or credit return).
  /// Returns true if this flit completed a logic packet.
  bool on_rx_flit(const noc::Flit& f);

  /// True when the next in-order logic packet from src has fully arrived.
  bool packet_ready(int src_id) const;

  /// Words of the next in-order packet from src (must be packet_ready).
  /// Consuming frees the landing slot and queues a credit-return flit.
  std::vector<std::uint32_t> consume_packet(int src_id);

  /// Any packet ready from any source? (used for recv-any semantics)
  int any_ready_source() const;

 private:
  struct Slot {
    int expected = 0;          // words in this packet (0 = unused)
    std::uint32_t mask = 0;    // per-word arrival bits
    std::array<std::uint32_t, kMaxMpPacketWords> words{};
    bool complete() const {
      return expected > 0 &&
             mask == (expected >= 32 ? ~0u : ((1u << expected) - 1));
    }
  };

  struct PeerRx {
    std::array<Slot, 4> slots{};  // landing area: 4 slots (seq bits 3:2)
    std::uint64_t next_consume = 0;  // in-order delivery pointer
  };

  noc::Flit make_flit(int dst_id, noc::FlitSubType sub, std::uint8_t seq,
                      std::uint8_t burst, std::uint32_t data) const;

  noc::Network& net_;
  int self_id_;
  sim::StatSet& stats_;

  std::deque<noc::Flit> tx_q_;
  int send_pending_ = 0;

  std::map<int, int> credits_;          // dst -> remaining credits
  std::map<int, std::uint64_t> tx_idx_; // dst -> next packet index
  std::map<int, PeerRx> rx_;            // src -> landing area
};

}  // namespace medea::pe
