#include "pe/tie_interface.h"

#include <cassert>

namespace medea::pe {

using noc::Flit;
using noc::FlitSubType;
using noc::FlitType;

TieInterface::TieInterface(noc::Network& net, int self_id, sim::StatSet& stats)
    : net_(net), self_id_(self_id), stats_(stats) {}

Flit TieInterface::make_flit(int dst_id, FlitSubType sub, std::uint8_t seq,
                             std::uint8_t burst, std::uint32_t data) const {
  Flit f;
  f.valid = true;
  f.dst = net_.geometry().coord_of(dst_id);  // the addressing LUT
  f.type = FlitType::kMessage;
  f.subtype = sub;
  f.seq_num = seq;
  f.burst_size = burst;
  f.src_id = static_cast<std::uint8_t>(self_id_);
  f.data = data;
  f.uid = net_.next_flit_uid();
  return f;
}

bool TieInterface::can_send(int dst_id) const {
  auto it = credits_.find(dst_id);
  return (it == credits_.end() ? kCreditsPerPeer : it->second) > 0;
}

void TieInterface::start_send(int dst_id, const std::uint32_t* words, int n) {
  assert(n >= 1 && n <= kMaxMpPacketWords);
  assert(dst_id != self_id_ && "MP send to self is not supported");
  assert(can_send(dst_id));
  auto [it, inserted] = credits_.try_emplace(dst_id, kCreditsPerPeer);
  it->second -= 1;

  const std::uint64_t idx = tx_idx_[dst_id]++;
  const auto slot = static_cast<std::uint8_t>(idx % 4);
  for (int i = 0; i < n; ++i) {
    // SEQNUM = {landing slot, word offset}: the receiver stores the word
    // at base + seq offset with no sorting buffer (paper Fig. 2-b).
    const auto seq = static_cast<std::uint8_t>((slot << 2) | i);
    tx_q_.push_back(make_flit(dst_id, noc::kMpData, seq,
                              static_cast<std::uint8_t>(n - 1),
                              words[i]));
  }
  send_pending_ += n;
  stats_.inc("tie.packets_sent");
  stats_.inc("tie.flits_sent", static_cast<std::uint64_t>(n));
}

void TieInterface::on_tx_departure(const Flit& f) {
  if (f.subtype == noc::kMpData && send_pending_ > 0) --send_pending_;
}

bool TieInterface::on_rx_flit(const Flit& f) {
  assert(f.type == FlitType::kMessage);
  if (f.subtype == FlitSubType::kAck) {
    // Credit return: the peer consumed one of our packets.
    auto [it, inserted] = credits_.try_emplace(f.src_id, kCreditsPerPeer);
    if (!inserted) it->second += 1;
    assert(it->second <= kCreditsPerPeer);
    stats_.inc("tie.credits_returned");
    return false;
  }
  assert(f.subtype == noc::kMpData);
  PeerRx& peer = rx_[f.src_id];
  Slot& slot = peer.slots[(f.seq_num >> 2) & 3];
  const int offset = f.seq_num & 3;
  slot.expected = f.burst_size + 1;
  assert(offset < slot.expected);
  assert((slot.mask & (1u << offset)) == 0 && "duplicate flit delivery");
  slot.words[static_cast<std::size_t>(offset)] = f.data;
  slot.mask |= 1u << offset;
  stats_.inc("tie.flits_received");
  if (slot.complete()) {
    stats_.inc("tie.packets_received");
    return true;
  }
  return false;
}

bool TieInterface::packet_ready(int src_id) const {
  auto it = rx_.find(src_id);
  if (it == rx_.end()) return false;
  const PeerRx& peer = it->second;
  return peer.slots[peer.next_consume % 4].complete();
}

std::vector<std::uint32_t> TieInterface::consume_packet(int src_id) {
  assert(packet_ready(src_id));
  PeerRx& peer = rx_[src_id];
  Slot& slot = peer.slots[peer.next_consume % 4];
  std::vector<std::uint32_t> out(slot.words.begin(),
                                 slot.words.begin() + slot.expected);
  slot = Slot{};
  peer.next_consume += 1;
  // Return a credit so the sender can reuse the landing area.
  tx_q_.push_front(make_flit(src_id, FlitSubType::kAck, 0, 0, 0));
  stats_.inc("tie.packets_consumed");
  return out;
}

int TieInterface::any_ready_source() const {
  for (const auto& [src, peer] : rx_) {
    if (peer.slots[peer.next_consume % 4].complete()) return src;
  }
  return -1;
}

}  // namespace medea::pe
