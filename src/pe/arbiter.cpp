#include "pe/arbiter.h"

namespace medea::pe {

namespace {

/// Pop from the round-robin-selected non-empty queue; returns false if
/// both are empty.  `prefer_a` is flipped on a contended grant.
bool rr_pick(std::deque<noc::Flit>& a, std::deque<noc::Flit>& b,
             bool& prefer_a, noc::Flit& out) {
  const bool has_a = !a.empty();
  const bool has_b = !b.empty();
  if (!has_a && !has_b) return false;
  const bool pick_a = has_a && (!has_b || prefer_a);
  if (has_a && has_b) prefer_a = !pick_a;  // loser goes first next time
  auto& q = pick_a ? a : b;
  out = q.front();
  q.pop_front();
  return true;
}

}  // namespace

void NocArbiter::drain_into(sim::Fifo<noc::Flit>& inject) {
  if (!inject.can_push()) return;
  if (!hp_.empty()) {
    inject.push(hp_.front());
    hp_.pop_front();
  } else if (!be_.empty()) {
    inject.push(be_.front());
    be_.pop_front();
  }
}

void NocArbiter::step(sim::Fifo<noc::Flit>& inject,
                      std::deque<noc::Flit>& tie_q,
                      std::deque<noc::Flit>& bridge_q) {
  switch (cfg_.kind) {
    case ArbiterKind::kMux: {
      // No storage: grant one interface per cycle, directly to the switch.
      if (!inject.can_push()) {
        if (!tie_q.empty() || !bridge_q.empty()) ++st_stalls_;
        return;
      }
      noc::Flit f;
      if (!tie_q.empty() && !bridge_q.empty()) ++st_contention_;
      if (rr_pick(tie_q, bridge_q, rr_tie_next_, f)) {
        inject.push(f);
        ++st_flits_;
      }
      break;
    }
    case ArbiterKind::kSingleFifo: {
      // Intake: one flit per cycle into the shared queue.
      if (hp_.size() < static_cast<std::size_t>(cfg_.fifo_depth)) {
        noc::Flit f;
        if (!tie_q.empty() && !bridge_q.empty()) ++st_contention_;
        if (rr_pick(tie_q, bridge_q, rr_tie_next_, f)) {
          hp_.push_back(f);
          ++st_flits_;
        }
      }
      drain_into(inject);
      break;
    }
    case ArbiterKind::kDualFifo: {
      // Separate write ports: both interfaces can enqueue in one cycle.
      auto& tie_fifo = cfg_.tie_high_priority ? hp_ : be_;
      auto& bridge_fifo = cfg_.tie_high_priority ? be_ : hp_;
      if (!tie_q.empty() &&
          tie_fifo.size() < static_cast<std::size_t>(cfg_.fifo_depth)) {
        tie_fifo.push_back(tie_q.front());
        tie_q.pop_front();
        ++st_flits_;
      }
      if (!bridge_q.empty() &&
          bridge_fifo.size() < static_cast<std::size_t>(cfg_.fifo_depth)) {
        bridge_fifo.push_back(bridge_q.front());
        bridge_q.pop_front();
        ++st_flits_;
      }
      // Best-Effort is served only when High-Priority is empty.
      drain_into(inject);
      break;
    }
  }
}

}  // namespace medea::pe
