#pragma once

#include <cstdint>
#include <deque>

#include "noc/flit.h"
#include "sim/fifo.h"
#include "sim/stats.h"

/// \file arbiter.h
/// The NoC-access arbiter between a core's two network interfaces
/// (paper §II-B, Fig. 3).
///
/// The message-passing TIE port and the shared-memory pif2NoC bridge share
/// one physical injection port into the local switch.  The paper describes
/// three implementations, all reproduced here:
///
///  * kMux        — a bare multiplexer, no buffering: under contention one
///                  interface is granted, the other waits.
///  * kSingleFifo — one shared FIFO: both interfaces can keep queueing
///                  packets even when the switch is congested.
///  * kDualFifo   — two FIFOs, High-Priority and Best-Effort: the arbiter
///                  serves Best-Effort only when the High-Priority queue
///                  is empty.  Message-passing (synchronization) traffic
///                  rides the HP queue by default.
///
/// The arbiter is pure logic stepped by its owning ProcessingElement once
/// per cycle; at most one flit enters the switch per cycle.

namespace medea::pe {

enum class ArbiterKind : std::uint8_t { kMux, kSingleFifo, kDualFifo };

inline const char* to_string(ArbiterKind k) {
  switch (k) {
    case ArbiterKind::kMux: return "mux";
    case ArbiterKind::kSingleFifo: return "single-fifo";
    case ArbiterKind::kDualFifo: return "dual-fifo";
  }
  return "?";
}

struct ArbiterConfig {
  ArbiterKind kind = ArbiterKind::kDualFifo;
  int fifo_depth = 8;        ///< depth of each internal queue
  bool tie_high_priority = true;  ///< TIE rides the HP queue (kDualFifo)
};

class NocArbiter {
 public:
  NocArbiter(const ArbiterConfig& cfg, sim::StatSet& stats)
      : cfg_(cfg), stats_(stats) {}

  const ArbiterConfig& config() const { return cfg_; }

  /// One cycle: move flits from the interface output registers (tie_q,
  /// bridge_q) toward the switch injection port.
  void step(sim::Fifo<noc::Flit>& inject, std::deque<noc::Flit>& tie_q,
            std::deque<noc::Flit>& bridge_q);

  /// Flits still parked in internal queues (kMux: always 0).
  std::size_t buffered() const { return hp_.size() + be_.size(); }
  bool busy() const { return buffered() != 0; }

 private:
  void drain_into(sim::Fifo<noc::Flit>& inject);

  ArbiterConfig cfg_;
  sim::StatSet& stats_;
  // Stat handles resolved once; step() runs every active PE cycle and
  // must not pay a string-keyed lookup per event.
  sim::Stat& st_stalls_ = stats_.counter("arb.stall_cycles");
  sim::Stat& st_contention_ = stats_.counter("arb.contention");
  sim::Stat& st_flits_ = stats_.counter("arb.flits");
  std::deque<noc::Flit> hp_;  // kSingleFifo uses hp_ as the single queue
  std::deque<noc::Flit> be_;
  bool rr_tie_next_ = true;   // round-robin pointer for contention
};

}  // namespace medea::pe
