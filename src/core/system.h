#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "mem/backing_store.h"
#include "mem/memory_map.h"
#include "mpmmu/mpmmu.h"
#include "noc/network.h"
#include "pe/processing_element.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/task.h"

/// \file system.h
/// MedeaSystem: one fully wired MEDEA chip instance.
///
/// Construction instantiates the folded-torus NoC, one MPMMU (with its
/// DDR backing store) and `num_compute_cores` processing elements, placed
/// on consecutive NoC nodes around the MPMMU.  Programs — C++20 coroutines
/// using the ProcessingElement operation API and/or eMPI — are installed
/// per core; run() advances the cycle-accurate simulation until every
/// program has terminated and all hardware queues have drained.
///
/// The class also exposes "backdoor" (zero-time) memory access used to
/// set up workloads and verify results, including cache-coherent reads
/// that account for dirty lines still resident in L1s or in the MPMMU's
/// local cache.

namespace medea::core {

class MedeaSystem {
 public:
  explicit MedeaSystem(const MedeaConfig& cfg);

  const MedeaConfig& config() const { return cfg_; }
  sim::Scheduler& scheduler() { return sched_; }
  noc::Network& network() { return *net_; }
  mpmmu::Mpmmu& mpmmu() { return *mpmmu_; }
  const mem::MemoryMap& memory_map() const { return map_; }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  pe::ProcessingElement& core(int rank) {
    return *cores_.at(static_cast<std::size_t>(rank));
  }
  const pe::ProcessingElement& core(int rank) const {
    return *cores_.at(static_cast<std::size_t>(rank));
  }

  /// NoC node id hosting compute core `rank`.
  int node_of_rank(int rank) const;
  /// Node ids of all compute cores (rank order) — eMPI barrier membership.
  std::vector<int> core_nodes() const;

  void set_program(int rank, sim::Task<> program) {
    core(rank).set_program(std::move(program));
  }

  /// Run until all programs finish and the hardware drains.
  /// Returns the cycle at which the system went idle.
  /// Throws on deadlock/livelock (cycle limit hit) or program error.
  sim::Cycle run(sim::Cycle max_cycles = 4'000'000'000ull);

  bool all_programs_done() const;

  // ------------------------------------------------------------------
  // Backdoor (zero-simulated-time) memory access for setup/verification
  // ------------------------------------------------------------------
  mem::BackingStore& memory() { return store_; }

  /// Make the backing store coherent: flush the MPMMU cache first, then
  /// every L1 (L1 data is newer than any MPMMU copy by construction of
  /// the software coherence discipline).
  void flush_all_caches_backdoor();

  double coherent_read_double(mem::Addr a);
  std::uint32_t coherent_read_word(mem::Addr a);

  /// Simple bump allocator over the shared segment for workloads/tests.
  mem::Addr alloc_shared(std::uint32_t bytes, std::uint32_t align = 8);
  /// Base of core `rank`'s private segment plus offset.
  mem::Addr private_addr(int rank, std::uint32_t offset = 0) const;

  /// Aggregate statistics from every block (NoC, MPMMU, PEs, caches).
  sim::StatSet aggregate_stats() const;

 private:
  MedeaConfig cfg_;
  sim::Scheduler sched_;
  mem::MemoryMap map_;
  mem::BackingStore store_;
  std::unique_ptr<noc::Network> net_;
  std::unique_ptr<mpmmu::Mpmmu> mpmmu_;
  std::vector<std::unique_ptr<pe::ProcessingElement>> cores_;
  mem::Addr shared_bump_ = 0;
};

}  // namespace medea::core
