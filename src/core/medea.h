#pragma once

/// \file medea.h
/// Umbrella header: the full public API of the MEDEA framework.
///
/// Quick tour:
///   core::MedeaConfig / core::MedeaSystem  — configure and build a chip
///   pe::ProcessingElement                  — per-core operation API
///   empi::send / receive / barrier         — embedded-MPI primitives
///   noc::Network / noc::DeflectionRouter   — the folded-torus hot-potato NoC
///   mpmmu::Mpmmu                           — the shared-memory slave node
///   mem::Cache / mem::MemoryMap            — L1 model and address map
///   sim::Scheduler / sim::Task             — the cycle-accurate kernel

#include "core/config.h"    // IWYU pragma: export
#include "core/system.h"    // IWYU pragma: export
#include "empi/empi.h"      // IWYU pragma: export
#include "mem/backing_store.h"  // IWYU pragma: export
#include "mem/cache.h"      // IWYU pragma: export
#include "mem/memory_map.h" // IWYU pragma: export
#include "mpmmu/mpmmu.h"    // IWYU pragma: export
#include "noc/network.h"    // IWYU pragma: export
#include "pe/processing_element.h"  // IWYU pragma: export
#include "sim/scheduler.h"  // IWYU pragma: export
#include "sim/task.h"       // IWYU pragma: export
