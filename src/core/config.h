#pragma once

#include <cstdint>
#include <string>

#include "mem/cache.h"
#include "mem/memory_map.h"
#include "mpmmu/mpmmu.h"
#include "noc/router.h"
#include "pe/processing_element.h"
#include "sim/types.h"

/// \file config.h
/// Top-level configuration of a MEDEA system instance.
///
/// This is the design-space-exploration knob set of the paper's §III: the
/// simulator sweeps number of cores (2..15 compute cores + 1 MPMMU on a
/// 4x4 folded torus), L1 cache size (2..64 kB) and write policy (WB/WT),
/// plus the structural options of §II (arbiter flavour, FP timing,
/// shared-segment cacheability).

namespace medea::core {

struct MedeaConfig {
  // --- NoC ---
  int noc_width = 4;
  int noc_height = 4;
  noc::RouterConfig router{};

  // --- cores ---
  int num_compute_cores = 4;  ///< PEs that run programs (MPMMU excluded)
  int mpmmu_node = 0;         ///< NoC node hosting the MPMMU
  mem::CacheConfig l1{2 * 1024, mem::kLineBytes, 2,
                      mem::WritePolicy::kWriteBack};
  pe::ArbiterConfig arbiter{};
  pe::BridgeConfig bridge{};
  pe::FpTiming fp{};
  bool shared_uncached = false;

  // --- memory subsystem ---
  mpmmu::MpmmuConfig mpmmu{};
  mem::MemoryMapConfig memmap{};

  // --- simulation kernel ---
  /// Event-queue selection for the discrete-event kernel: the calendar
  /// queue (default) or the legacy binary heap, kept selectable so
  /// differential tests can assert the two produce identical runs.
  sim::SchedulerConfig scheduler{};

  // --- workload selection ---
  /// Registry name of the scenario to run on this machine (consumed by
  /// workload::run_configured and dse::run_sweep; see src/workload/).
  std::string workload = "jacobi";

  std::uint64_t seed = 1;

  int num_nodes() const { return noc_width * noc_height; }

  /// Human-readable tag, e.g. "7P_16k$_WB" (paper figure label style).
  std::string label() const;

  /// Sanity checks; throws std::invalid_argument on bad combinations.
  void validate() const;
};

}  // namespace medea::core
