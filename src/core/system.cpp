#include "core/system.h"

#include <sstream>
#include <stdexcept>

namespace medea::core {

std::string MedeaConfig::label() const {
  std::ostringstream os;
  os << num_compute_cores << "P_" << l1.size_bytes / 1024 << "k$_"
     << mem::to_string(l1.policy);
  return os.str();
}

void MedeaConfig::validate() const {
  if (noc_width < 1 || noc_height < 1) {
    throw std::invalid_argument("MedeaConfig: NoC dimensions must be >= 1");
  }
  if (num_compute_cores < 1 || num_compute_cores + 1 > num_nodes()) {
    throw std::invalid_argument(
        "MedeaConfig: need 1..(nodes-1) compute cores, got " +
        std::to_string(num_compute_cores) + " on " +
        std::to_string(num_nodes()) + " nodes");
  }
  if (mpmmu_node < 0 || mpmmu_node >= num_nodes()) {
    throw std::invalid_argument("MedeaConfig: MPMMU node out of range");
  }
  if (l1.size_bytes < 1024 || (l1.size_bytes & (l1.size_bytes - 1)) != 0) {
    throw std::invalid_argument(
        "MedeaConfig: L1 size must be a power of two >= 1kB");
  }
  // The SRCID field width limits the addressable node count (Fig. 5;
  // widened to 8 bits here so 8x8+ tori are representable).
  if (num_nodes() > (1 << noc::FlitFormat::kSrcIdBits)) {
    throw std::invalid_argument(
        "MedeaConfig: NoC larger than the SRCID field allows");
  }
}

namespace {

mem::MemoryMapConfig make_map_config(const MedeaConfig& cfg) {
  mem::MemoryMapConfig m = cfg.memmap;
  m.num_cores = cfg.num_compute_cores;
  return m;
}

// map_ is constructed in the member-init list, so the config must be
// validated before it reaches MemoryMap (whose invariants assume a
// validated core count).
const MedeaConfig& validated(const MedeaConfig& cfg) {
  cfg.validate();
  return cfg;
}

}  // namespace

MedeaSystem::MedeaSystem(const MedeaConfig& cfg)
    : cfg_(validated(cfg)), sched_(cfg.scheduler), map_(make_map_config(cfg)) {
  net_ = std::make_unique<noc::Network>(
      sched_, noc::TorusGeometry(cfg_.noc_width, cfg_.noc_height),
      cfg_.router, cfg_.seed);
  mpmmu_ = std::make_unique<mpmmu::Mpmmu>(sched_, *net_, cfg_.mpmmu_node,
                                          cfg_.num_compute_cores, cfg_.mpmmu,
                                          store_);
  pe::PeConfig pc;
  pc.cache = cfg_.l1;
  pc.arbiter = cfg_.arbiter;
  pc.bridge = cfg_.bridge;
  pc.fp = cfg_.fp;
  pc.shared_uncached = cfg_.shared_uncached;
  cores_.reserve(static_cast<std::size_t>(cfg_.num_compute_cores));
  for (int rank = 0; rank < cfg_.num_compute_cores; ++rank) {
    cores_.push_back(std::make_unique<pe::ProcessingElement>(
        sched_, *net_, node_of_rank(rank), rank, cfg_.mpmmu_node, pc, map_));
  }
  shared_bump_ = map_.shared_base();
}

int MedeaSystem::node_of_rank(int rank) const {
  // Cores occupy consecutive node ids, skipping the MPMMU's node.
  return rank < cfg_.mpmmu_node ? rank : rank + 1;
}

std::vector<int> MedeaSystem::core_nodes() const {
  std::vector<int> nodes;
  nodes.reserve(cores_.size());
  for (int r = 0; r < num_cores(); ++r) nodes.push_back(node_of_rank(r));
  return nodes;
}

bool MedeaSystem::all_programs_done() const {
  for (const auto& c : cores_) {
    if (!c->program_done()) return false;
  }
  return true;
}

sim::Cycle MedeaSystem::run(sim::Cycle max_cycles) {
  const bool completed = sched_.run(max_cycles);
  if (!completed) {
    throw std::runtime_error("MedeaSystem::run: cycle limit " +
                             std::to_string(max_cycles) +
                             " reached — deadlock or livelock suspected (" +
                             std::to_string(num_cores()) + " cores, " +
                             cfg_.label() + ")");
  }
  if (!all_programs_done()) {
    std::ostringstream os;
    os << "MedeaSystem::run: system went idle at cycle " << sched_.now()
       << " with unfinished programs on ranks:";
    for (int r = 0; r < num_cores(); ++r) {
      if (!core(r).program_done()) os << ' ' << r;
    }
    os << " (blocked receive / missing barrier partner?)";
    throw std::runtime_error(os.str());
  }
  return sched_.now();
}

void MedeaSystem::flush_all_caches_backdoor() {
  // MPMMU copies first: any line also dirty in an L1 is newer there, so
  // L1 flushes must land last.
  for (auto& wb : mpmmu_->cache_backdoor().flush_all()) {
    store_.write_line(wb.line_addr, wb.data);
  }
  for (auto& c : cores_) {
    for (auto& wb : c->cache().flush_all()) {
      store_.write_line(wb.line_addr, wb.data);
    }
  }
}

double MedeaSystem::coherent_read_double(mem::Addr a) {
  flush_all_caches_backdoor();
  return store_.read_double(a);
}

std::uint32_t MedeaSystem::coherent_read_word(mem::Addr a) {
  flush_all_caches_backdoor();
  return store_.read_word(a);
}

mem::Addr MedeaSystem::alloc_shared(std::uint32_t bytes, std::uint32_t align) {
  shared_bump_ = (shared_bump_ + align - 1) & ~(align - 1);
  const mem::Addr out = shared_bump_;
  shared_bump_ += bytes;
  if (shared_bump_ > map_.shared_base() + map_.shared_size()) {
    throw std::runtime_error("alloc_shared: shared segment exhausted");
  }
  return out;
}

mem::Addr MedeaSystem::private_addr(int rank, std::uint32_t offset) const {
  if (offset >= map_.private_size()) {
    throw std::out_of_range("private_addr: offset beyond segment");
  }
  return map_.private_base(rank) + offset;
}

sim::StatSet MedeaSystem::aggregate_stats() const {
  sim::StatSet s;
  s.merge(net_->stats());
  s.merge(mpmmu_->stats());
  s.merge(mpmmu_->cache().stats());
  for (const auto& c : cores_) {
    s.merge(c->stats());
    s.merge(c->cache().stats());
  }
  return s;
}

}  // namespace medea::core
