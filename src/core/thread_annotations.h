#pragma once

/// \file thread_annotations.h
/// Clang thread-safety capability macros for the sharded kernel.
///
/// The sharded simulation kernel (sim/domain.h) synchronizes with
/// barriers, not mutexes: any datum is owned by exactly one execution
/// context at a time — a shard's thread, the serial phase on shard 0,
/// or the external caller when no workers are running — and ownership
/// transfers only across a full acquire/release barrier.  Clang's
/// thread-safety analysis (-Wthread-safety) was designed for lock-based
/// code, but its capability model is general enough to machine-check
/// this ownership discipline too: we declare zero-size *capability
/// tokens* for each ownership domain, mark the state they protect with
/// MEDEA_GUARDED_BY, and acquire/release (or assert) the tokens at the
/// phase boundaries where ownership actually transfers.  Every token
/// operation compiles to nothing; the analysis runs entirely at compile
/// time.
///
/// What this buys: a future PR that reads serial-phase state from the
/// parallel phase, pushes into a mailbox outside the relay/drain
/// protocol, or touches a FIFO from off its owning shard gets a
/// compiler error under `-DMEDEA_THREAD_SAFETY=ON` (clang) before any
/// test — or TSan — ever runs.
///
/// On non-clang compilers (and under MEDEA_NO_THREAD_SAFETY_ANALYSIS_
/// MACROS) every macro expands to nothing, so gcc builds are untouched;
/// tests/test_thread_annotations.cpp asserts the no-op expansion.
///
/// Macro names follow the clang documentation's mutex.h reference so
/// the mapping to the underlying attributes stays obvious.

#if defined(__clang__) && !defined(MEDEA_NO_THREAD_SAFETY_ANALYSIS_MACROS)
#define MEDEA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MEDEA_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a class whose instances are capabilities (ownership tokens).
#define MEDEA_CAPABILITY(x) MEDEA_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define MEDEA_SCOPED_CAPABILITY MEDEA_THREAD_ANNOTATION(scoped_lockable)

/// The marked data member may only be accessed while holding `x`
/// (exclusively for writes, at least shared for reads).
#define MEDEA_GUARDED_BY(x) MEDEA_THREAD_ANNOTATION(guarded_by(x))

/// The marked pointer's *pointee* may only be accessed while holding `x`.
#define MEDEA_PT_GUARDED_BY(x) MEDEA_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities
/// exclusively / shared; the caller retains them.
#define MEDEA_REQUIRES(...) \
  MEDEA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MEDEA_REQUIRES_SHARED(...) \
  MEDEA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities (the token
/// operations placed at phase boundaries).
#define MEDEA_ACQUIRE(...) \
  MEDEA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MEDEA_ACQUIRE_SHARED(...) \
  MEDEA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MEDEA_RELEASE(...) \
  MEDEA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MEDEA_RELEASE_SHARED(...) \
  MEDEA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MEDEA_RELEASE_GENERIC(...) \
  MEDEA_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities.
#define MEDEA_EXCLUDES(...) MEDEA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held here by an invariant it
/// cannot see (e.g. "all worker threads are parked at a barrier" or
/// "run() has not been called yet").  Runtime no-op; use only where a
/// comment states the invariant.
#define MEDEA_ASSERT_CAPABILITY(x) MEDEA_THREAD_ANNOTATION(assert_capability(x))
#define MEDEA_ASSERT_SHARED_CAPABILITY(x) \
  MEDEA_THREAD_ANNOTATION(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define MEDEA_RETURN_CAPABILITY(x) MEDEA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis for one function.  Prefer
/// MEDEA_ASSERT_CAPABILITY (it documents *which* invariant is trusted).
#define MEDEA_NO_THREAD_SAFETY_ANALYSIS \
  MEDEA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace medea::core {

/// A zero-cost ownership token for clang's thread-safety analysis.
///
/// Models a logical ownership domain — a barrier phase, a shard's
/// execution context, construction-time wiring — rather than a runtime
/// lock.  acquire()/release() mark real ownership transfers (barrier
/// crossings); assert_held()/assert_shared() mark places where an
/// invariant outside the analysis's view guarantees ownership (document
/// the invariant at every assert site).  Exclusive means "may write",
/// shared means "may read concurrently with other shared holders".
///
/// All members are empty inline functions: under every compiler and
/// every build mode this class costs nothing at runtime.
class MEDEA_CAPABILITY("role") Capability {
 public:
  Capability() = default;
  Capability(const Capability&) = delete;
  Capability& operator=(const Capability&) = delete;

  void acquire() const MEDEA_ACQUIRE() {}
  void release() const MEDEA_RELEASE() {}
  void acquire_shared() const MEDEA_ACQUIRE_SHARED() {}
  void release_shared() const MEDEA_RELEASE_SHARED() {}
  void assert_held() const MEDEA_ASSERT_CAPABILITY(this) {}
  void assert_shared() const MEDEA_ASSERT_SHARED_CAPABILITY(this) {}
};

}  // namespace medea::core
