#include "dse/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>
#include <thread>

#include "core/system.h"
#include "sim/telemetry.h"
#include "workload/workload.h"

namespace medea::dse {

namespace {

/// Registry name for a spec: the paper's Jacobi programming-model
/// ablation is expressed through `variant`, which maps onto the three
/// registered Jacobi workloads.
std::string workload_name(const SweepSpec& spec) {
  if (spec.workload != "jacobi") return spec.workload;
  switch (spec.variant) {
    case apps::JacobiVariant::kHybridMp: return "jacobi";
    case apps::JacobiVariant::kHybridSyncOnly: return "jacobi-sync";
    case apps::JacobiVariant::kPureSharedMemory: return "jacobi-sm";
  }
  return "jacobi";
}

}  // namespace

core::MedeaConfig make_design_config(int cores, std::uint32_t cache_kb,
                                     mem::WritePolicy policy) {
  core::MedeaConfig cfg;
  cfg.noc_width = 4;
  cfg.noc_height = 4;
  cfg.num_compute_cores = cores;
  cfg.mpmmu_node = 0;
  cfg.l1.size_bytes = cache_kb * 1024;
  cfg.l1.policy = policy;
  return cfg;
}

SweepPoint run_design_point(const SweepSpec& spec, int cores,
                            std::uint32_t cache_kb, mem::WritePolicy policy,
                            double trace_scale, double injection_rate) {
  const std::string name = workload_name(spec);
  const workload::Workload& w =
      workload::WorkloadRegistry::instance().at(name);

  workload::RunRequest req;
  req.machine = make_design_config(cores, cache_kb, policy);
  req.machine.workload = name;
  req.machine.scheduler = spec.scheduler;
  switch (w.kind()) {
    case workload::WorkloadKind::kApp: {
      workload::AppParams ap;
      ap.size = spec.n;
      ap.iterations = spec.timed_iterations;
      ap.warmup_iterations = spec.warmup_iterations;
      req.app = ap;
      break;
    }
    case workload::WorkloadKind::kReplay: {
      workload::ReplayParams rp;
      rp.trace_path = spec.trace_path;
      rp.trace_scale = trace_scale;
      req.replay = rp;
      break;
    }
    case workload::WorkloadKind::kSynthetic: {
      workload::SyntheticParams sp;
      if (injection_rate >= 0.0) {
        sp.injection_rate = injection_rate;
        req.measurement = spec.measurement;
        req.measurement.phased = true;
      }
      req.synthetic = sp;
      break;
    }
  }
  std::ostringstream label;
  label << cores << "P_" << cache_kb << "k$_" << mem::to_string(policy);
  if (trace_scale != 1.0) label << "_x" << trace_scale;
  if (injection_rate >= 0.0) label << "_l" << injection_rate;

  const auto t0 = std::chrono::steady_clock::now();
  workload::RunResult res;
  {
    telemetry::ProfileScope scope("point " + label.str(), "sweep");
    res = workload::run_workload(w, req);
  }
  const double host_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  SweepPoint pt;
  pt.workload = name;
  pt.cores = cores;
  pt.cache_kb = cache_kb;
  pt.policy = policy;
  pt.variant = spec.variant;
  pt.cycles_per_iteration = res.metric;
  pt.metric_name = res.metric_name;
  pt.area_mm2 = spec.area.chip_area_mm2(req.machine);
  pt.trace_scale = trace_scale;
  pt.injection_rate = injection_rate;
  pt.measurement = res.measurement;
  pt.host_ms = host_ms;
  pt.label = std::move(label).str();
  return pt;
}

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  struct Job {
    int cores;
    std::uint32_t cache_kb;
    mem::WritePolicy policy;
    double trace_scale;
    double injection_rate;
  };
  // The replay rate-sweep and synthetic load-sweep axes multiply the
  // cross product; everything else runs each cell once, verbatim.
  std::vector<double> scales = {1.0};
  if (spec.workload == "replay" && !spec.trace_scales.empty()) {
    scales = spec.trace_scales;
  }
  std::vector<double> rates = {-1.0};
  if (!spec.injection_rates.empty()) {
    const workload::Workload* w =
        workload::WorkloadRegistry::instance().find(workload_name(spec));
    if (w != nullptr && w->kind() == workload::WorkloadKind::kSynthetic) {
      rates = spec.injection_rates;
    }
  }
  std::vector<Job> jobs;
  for (int c : spec.cores) {
    for (auto kb : spec.cache_kb) {
      for (auto pol : spec.policies) {
        for (double s : scales) {
          for (double r : rates) jobs.push_back({c, kb, pol, s, r});
        }
      }
    }
  }
  std::vector<SweepPoint> out(jobs.size());

  int threads = spec.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, static_cast<int>(jobs.size()));

  // Live progress: one updating stderr line, throttled to ~4 Hz so the
  // terminal write never becomes the bottleneck of a fast sweep.
  const auto sweep_t0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> done{0};
  std::atomic<std::int64_t> last_print_ms{-1000};
  const auto progress_line = [&](std::size_t d, bool final_line) {
    const std::int64_t ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - sweep_t0)
            .count();
    if (!final_line) {
      std::int64_t prev = last_print_ms.load(std::memory_order_relaxed);
      if (ms - prev < 250) return;
      // One printer at a time; losers just skip this update.
      if (!last_print_ms.compare_exchange_strong(prev, ms)) return;
    }
    const double secs = static_cast<double>(ms) / 1000.0;
    const double pps = secs > 0.0 ? static_cast<double>(d) / secs : 0.0;
    const double eta =
        pps > 0.0 ? static_cast<double>(jobs.size() - d) / pps : 0.0;
    std::fprintf(stderr,
                 "\r[sweep] %zu/%zu points (%.1f pts/s, ETA %.0fs)   %s", d,
                 jobs.size(), pps, eta, final_line ? "\n" : "");
    std::fflush(stderr);
  };

  // One task per worker thread over a striped point range (worker t
  // simulates points t, t+threads, t+2*threads, ...), not one async per
  // point: each thread amortises its startup across its whole batch and
  // keeps reusing its thread-local coroutine FramePool, warm from the
  // first design point it simulated.  Striping interleaves the
  // cores-major job order across workers so the expensive many-core
  // points spread evenly.  out[i] is indexed by job, so result order
  // stays deterministic regardless of scheduling.
  auto worker = [&](std::size_t first) {
    for (std::size_t i = first; i < jobs.size();
         i += static_cast<std::size_t>(threads)) {
      const Job& j = jobs[i];
      out[i] = run_design_point(spec, j.cores, j.cache_kb, j.policy,
                                j.trace_scale, j.injection_rate);
      const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (spec.progress) progress_line(d, false);
    }
  };
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker, static_cast<std::size_t>(t));
    }
    for (auto& th : pool) th.join();
  }
  if (spec.progress) progress_line(jobs.size(), true);
  return out;
}

std::vector<DesignPoint> to_design_points(const std::vector<SweepPoint>& pts) {
  std::vector<DesignPoint> out;
  out.reserve(pts.size());
  for (const auto& p : pts) {
    out.push_back(DesignPoint{p.area_mm2, p.cycles_per_iteration, p.label});
  }
  return out;
}

}  // namespace medea::dse
