#include "dse/sweep.h"

#include <atomic>
#include <sstream>
#include <thread>

#include "core/system.h"

namespace medea::dse {

core::MedeaConfig make_design_config(int cores, std::uint32_t cache_kb,
                                     mem::WritePolicy policy) {
  core::MedeaConfig cfg;
  cfg.noc_width = 4;
  cfg.noc_height = 4;
  cfg.num_compute_cores = cores;
  cfg.mpmmu_node = 0;
  cfg.l1.size_bytes = cache_kb * 1024;
  cfg.l1.policy = policy;
  return cfg;
}

SweepPoint run_design_point(const SweepSpec& spec, int cores,
                            std::uint32_t cache_kb, mem::WritePolicy policy) {
  core::MedeaConfig cfg = make_design_config(cores, cache_kb, policy);
  core::MedeaSystem sys(cfg);

  apps::JacobiParams jp;
  jp.n = spec.n;
  jp.warmup_iterations = spec.warmup_iterations;
  jp.timed_iterations = spec.timed_iterations;
  jp.variant = spec.variant;
  const auto res = apps::run_jacobi(sys, jp);

  SweepPoint pt;
  pt.cores = cores;
  pt.cache_kb = cache_kb;
  pt.policy = policy;
  pt.variant = spec.variant;
  pt.cycles_per_iteration = res.cycles_per_iteration;
  pt.area_mm2 = spec.area.chip_area_mm2(cfg);
  std::ostringstream label;
  label << cores << "P_" << cache_kb << "k$_" << mem::to_string(policy);
  pt.label = label.str();
  return pt;
}

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  struct Job {
    int cores;
    std::uint32_t cache_kb;
    mem::WritePolicy policy;
  };
  std::vector<Job> jobs;
  for (int c : spec.cores) {
    for (auto kb : spec.cache_kb) {
      for (auto pol : spec.policies) jobs.push_back({c, kb, pol});
    }
  }
  std::vector<SweepPoint> out(jobs.size());

  int threads = spec.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, static_cast<int>(jobs.size()));

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      const Job& j = jobs[i];
      out[i] = run_design_point(spec, j.cores, j.cache_kb, j.policy);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return out;
}

std::vector<DesignPoint> to_design_points(const std::vector<SweepPoint>& pts) {
  std::vector<DesignPoint> out;
  out.reserve(pts.size());
  for (const auto& p : pts) {
    out.push_back(DesignPoint{p.area_mm2, p.cycles_per_iteration, p.label});
  }
  return out;
}

}  // namespace medea::dse
