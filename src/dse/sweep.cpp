#include "dse/sweep.h"

#include <sstream>
#include <thread>

#include "core/system.h"
#include "workload/workload.h"

namespace medea::dse {

namespace {

/// Registry name for a spec: the paper's Jacobi programming-model
/// ablation is expressed through `variant`, which maps onto the three
/// registered Jacobi workloads.
std::string workload_name(const SweepSpec& spec) {
  if (spec.workload != "jacobi") return spec.workload;
  switch (spec.variant) {
    case apps::JacobiVariant::kHybridMp: return "jacobi";
    case apps::JacobiVariant::kHybridSyncOnly: return "jacobi-sync";
    case apps::JacobiVariant::kPureSharedMemory: return "jacobi-sm";
  }
  return "jacobi";
}

}  // namespace

core::MedeaConfig make_design_config(int cores, std::uint32_t cache_kb,
                                     mem::WritePolicy policy) {
  core::MedeaConfig cfg;
  cfg.noc_width = 4;
  cfg.noc_height = 4;
  cfg.num_compute_cores = cores;
  cfg.mpmmu_node = 0;
  cfg.l1.size_bytes = cache_kb * 1024;
  cfg.l1.policy = policy;
  return cfg;
}

SweepPoint run_design_point(const SweepSpec& spec, int cores,
                            std::uint32_t cache_kb, mem::WritePolicy policy,
                            double trace_scale, double injection_rate) {
  const std::string name = workload_name(spec);
  const workload::Workload& w =
      workload::WorkloadRegistry::instance().at(name);

  workload::RunRequest req;
  req.machine = make_design_config(cores, cache_kb, policy);
  req.machine.workload = name;
  switch (w.kind()) {
    case workload::WorkloadKind::kApp: {
      workload::AppParams ap;
      ap.size = spec.n;
      ap.iterations = spec.timed_iterations;
      ap.warmup_iterations = spec.warmup_iterations;
      req.app = ap;
      break;
    }
    case workload::WorkloadKind::kReplay: {
      workload::ReplayParams rp;
      rp.trace_path = spec.trace_path;
      rp.trace_scale = trace_scale;
      req.replay = rp;
      break;
    }
    case workload::WorkloadKind::kSynthetic: {
      workload::SyntheticParams sp;
      if (injection_rate >= 0.0) {
        sp.injection_rate = injection_rate;
        req.measurement = spec.measurement;
        req.measurement.phased = true;
      }
      req.synthetic = sp;
      break;
    }
  }
  const workload::RunResult res = workload::run_workload(w, req);

  SweepPoint pt;
  pt.workload = name;
  pt.cores = cores;
  pt.cache_kb = cache_kb;
  pt.policy = policy;
  pt.variant = spec.variant;
  pt.cycles_per_iteration = res.metric;
  pt.metric_name = res.metric_name;
  pt.area_mm2 = spec.area.chip_area_mm2(req.machine);
  pt.trace_scale = trace_scale;
  pt.injection_rate = injection_rate;
  pt.measurement = res.measurement;
  std::ostringstream label;
  label << cores << "P_" << cache_kb << "k$_" << mem::to_string(policy);
  if (trace_scale != 1.0) label << "_x" << trace_scale;
  if (injection_rate >= 0.0) label << "_l" << injection_rate;
  pt.label = label.str();
  return pt;
}

std::vector<SweepPoint> run_sweep(const SweepSpec& spec) {
  struct Job {
    int cores;
    std::uint32_t cache_kb;
    mem::WritePolicy policy;
    double trace_scale;
    double injection_rate;
  };
  // The replay rate-sweep and synthetic load-sweep axes multiply the
  // cross product; everything else runs each cell once, verbatim.
  std::vector<double> scales = {1.0};
  if (spec.workload == "replay" && !spec.trace_scales.empty()) {
    scales = spec.trace_scales;
  }
  std::vector<double> rates = {-1.0};
  if (!spec.injection_rates.empty()) {
    const workload::Workload* w =
        workload::WorkloadRegistry::instance().find(workload_name(spec));
    if (w != nullptr && w->kind() == workload::WorkloadKind::kSynthetic) {
      rates = spec.injection_rates;
    }
  }
  std::vector<Job> jobs;
  for (int c : spec.cores) {
    for (auto kb : spec.cache_kb) {
      for (auto pol : spec.policies) {
        for (double s : scales) {
          for (double r : rates) jobs.push_back({c, kb, pol, s, r});
        }
      }
    }
  }
  std::vector<SweepPoint> out(jobs.size());

  int threads = spec.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, static_cast<int>(jobs.size()));

  // One task per worker thread over a striped point range (worker t
  // simulates points t, t+threads, t+2*threads, ...), not one async per
  // point: each thread amortises its startup across its whole batch and
  // keeps reusing its thread-local coroutine FramePool, warm from the
  // first design point it simulated.  Striping interleaves the
  // cores-major job order across workers so the expensive many-core
  // points spread evenly.  out[i] is indexed by job, so result order
  // stays deterministic regardless of scheduling.
  auto worker = [&](std::size_t first) {
    for (std::size_t i = first; i < jobs.size();
         i += static_cast<std::size_t>(threads)) {
      const Job& j = jobs[i];
      out[i] = run_design_point(spec, j.cores, j.cache_kb, j.policy,
                                j.trace_scale, j.injection_rate);
    }
  };
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker, static_cast<std::size_t>(t));
    }
    for (auto& th : pool) th.join();
  }
  return out;
}

std::vector<DesignPoint> to_design_points(const std::vector<SweepPoint>& pts) {
  std::vector<DesignPoint> out;
  out.reserve(pts.size());
  for (const auto& p : pts) {
    out.push_back(DesignPoint{p.area_mm2, p.cycles_per_iteration, p.label});
  }
  return out;
}

}  // namespace medea::dse
