#include "dse/report.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <stdexcept>

namespace medea::dse {

std::vector<ExecTimeCurve> exec_time_curves(
    const std::vector<SweepPoint>& pts) {
  // Group by (cache, policy), x-sorted by cores.
  std::map<std::pair<std::uint32_t, int>, ExecTimeCurve> curves;
  for (const auto& p : pts) {
    auto& c = curves[{p.cache_kb, static_cast<int>(p.policy)}];
    if (c.title.empty()) {
      c.title = std::to_string(p.cache_kb) + "kB $ " + mem::to_string(p.policy);
    }
    c.cores.push_back(p.cores);
    c.cycles.push_back(p.cycles_per_iteration);
  }
  std::vector<ExecTimeCurve> out;
  out.reserve(curves.size());
  for (auto& [k, c] : curves) {
    // Sort each curve by core count.
    std::vector<std::size_t> idx(c.cores.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return c.cores[a] < c.cores[b];
    });
    ExecTimeCurve sorted;
    sorted.title = c.title;
    for (std::size_t i : idx) {
      sorted.cores.push_back(c.cores[i]);
      sorted.cycles.push_back(c.cycles[i]);
    }
    out.push_back(std::move(sorted));
  }
  return out;
}

std::string to_csv(const std::vector<SweepPoint>& pts) {
  std::ostringstream os;
  os << "cores,cache_kb,policy,workload,variant,metric,metric_name,area_mm2,"
        "label\n";
  for (const auto& p : pts) {
    os << p.cores << ',' << p.cache_kb << ',' << mem::to_string(p.policy)
       << ',' << (p.workload.empty() ? "jacobi" : p.workload) << ','
       << apps::to_string(p.variant) << ',' << p.cycles_per_iteration << ','
       << (p.metric_name.empty() ? "cycles_per_iteration" : p.metric_name)
       << ',' << p.area_mm2 << ',' << p.label << '\n';
  }
  return std::move(os).str();
}

std::string exec_time_dat(const std::vector<ExecTimeCurve>& curves) {
  // Collect the union of core counts.
  std::set<int> xs;
  for (const auto& c : curves) xs.insert(c.cores.begin(), c.cores.end());
  std::ostringstream os;
  os << "# cores";
  for (const auto& c : curves) os << " \"" << c.title << '"';
  os << '\n';
  for (int x : xs) {
    os << x;
    for (const auto& c : curves) {
      double y = -1.0;
      for (std::size_t i = 0; i < c.cores.size(); ++i) {
        if (c.cores[i] == x) {
          y = c.cycles[i];
          break;
        }
      }
      if (y < 0) {
        os << " NaN";
      } else {
        os << ' ' << y;
      }
    }
    os << '\n';
  }
  return std::move(os).str();
}

std::string exec_time_gp(const std::vector<ExecTimeCurve>& curves,
                         const std::string& dat_filename,
                         const std::string& title) {
  std::ostringstream os;
  os << "set title \"" << title << "\"\n"
     << "set xlabel \"Number of cores\"\n"
     << "set ylabel \"Execution Time (clock cycles)\"\n"
     << "set key outside right\n"
     << "set grid\n"
     << "plot ";
  for (std::size_t i = 0; i < curves.size(); ++i) {
    if (i) os << ", \\\n     ";
    os << '"' << dat_filename << "\" using 1:" << (i + 2) << " with linespoints"
       << " title \"" << curves[i].title << '"';
  }
  os << '\n';
  return std::move(os).str();
}

std::string speedup_dat(const std::vector<SpeedupPoint>& curve) {
  std::ostringstream os;
  os << "# area_mm2 speedup label\n";
  for (const auto& p : curve) {
    os << p.area_mm2 << ' ' << p.speedup << " \"" << p.label << "\"\n";
  }
  return std::move(os).str();
}

std::string speedup_gp(const std::string& dat_filename,
                       const std::string& title) {
  std::ostringstream os;
  os << "set title \"" << title << "\"\n"
     << "set xlabel \"Chip Area (sqmm)\"\n"
     << "set ylabel \"Speed Up\"\n"
     << "set grid\n"
     << "plot \"" << dat_filename
     << "\" using 1:2 with linespoints notitle, \\\n     \"" << dat_filename
     << "\" using 1:2:3 with labels offset char 1,1 notitle\n";
  return std::move(os).str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os << content;
  if (!os) throw std::runtime_error("write failed: " + path);
}

}  // namespace medea::dse
