#include "dse/pareto.h"

#include <algorithm>

namespace medea::dse {

std::vector<DesignPoint> pareto_frontier(std::vector<DesignPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.area_mm2 != b.area_mm2) return a.area_mm2 < b.area_mm2;
              return a.exec_cycles < b.exec_cycles;
            });
  std::vector<DesignPoint> out;
  double best = 0.0;
  bool first = true;
  for (const auto& p : points) {
    if (first || p.exec_cycles < best) {
      out.push_back(p);
      best = p.exec_cycles;
      first = false;
    }
  }
  return out;
}

std::size_t kill_rule_knee(const std::vector<DesignPoint>& frontier) {
  if (frontier.empty()) return 0;
  std::size_t knee = 0;
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    const auto& prev = frontier[knee];
    const auto& cand = frontier[i];
    // perf = 1/exec_cycles; relative perf gain of the step:
    const double perf_gain = prev.exec_cycles / cand.exec_cycles - 1.0;
    const double area_cost = cand.area_mm2 / prev.area_mm2 - 1.0;
    if (area_cost <= 0.0) {  // same area, better perf: free lunch
      knee = i;
      continue;
    }
    if (perf_gain >= area_cost) {
      knee = i;  // at least 1% perf per 1% area: keep growing
    }
    // Points beyond a failed step can still satisfy the rule relative to
    // the current knee (the rule is about where growth stops paying off),
    // so we keep scanning rather than break.
  }
  return knee;
}

std::vector<SpeedupPoint> speedup_curve(
    const std::vector<DesignPoint>& frontier, double baseline_cycles) {
  std::vector<SpeedupPoint> out;
  out.reserve(frontier.size());
  for (const auto& p : frontier) {
    out.push_back(SpeedupPoint{p.area_mm2, baseline_cycles / p.exec_cycles,
                               p.label});
  }
  return out;
}

}  // namespace medea::dse
