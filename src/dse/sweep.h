#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/jacobi.h"
#include "core/config.h"
#include "dse/area.h"
#include "dse/pareto.h"
#include "workload/measure.h"

/// \file sweep.h
/// Design-space exploration driver (paper §III).
///
/// The paper evaluates 168 design points per data size: compute cores 2
/// to 15 (plus the MPMMU, 16 nodes on the 4x4 folded torus), L1 cache
/// 2..64 kB in powers of two, Write-Back and Write-Through.  This driver
/// enumerates that space (or any sub-space), runs the selected workload
/// on each point, attaches chip area from the AreaModel, and feeds the
/// Pareto/Kill-rule analysis that produces Figs. 7 and 9.
///
/// Any workload-registry scenario can drive the sweep: the paper's
/// Jacobi (the default), the reduction app, the synthetic NoC patterns
/// or a recorded trace replay (`workload = "replay"` + trace_path) —
/// the fast-forward mode for NoC-centric exploration.
///
/// Points are independent simulations and can run on multiple host
/// threads (the paper used 5 dual-Xeon servers for a day; we aim for
/// minutes on one machine).

namespace medea::dse {

struct SweepSpec {
  /// Workload-registry name run at every design point.  "jacobi" is
  /// further refined by `variant` below (kept for the paper's
  /// programming-model ablations).
  std::string workload = "jacobi";
  std::string trace_path;  ///< input trace when workload == "replay"
  /// Replay-only rate sweep: each factor adds one design point per
  /// (cores, cache, policy) cell, replaying the trace with its injection
  /// schedule scaled by that factor (xform::RateScale) — the toolkit's
  /// fast-forward answer to "how does this recorded traffic behave at
  /// 0.5x/2x load?".  Empty (the default) means verbatim replay only.
  std::vector<double> trace_scales;
  /// Synthetic-only load sweep: each rate adds one design point per
  /// (cores, cache, policy) cell, running the pattern phased
  /// (warmup/measure/drain, see workload/measure.h) at that offered
  /// load — the saturation-study axis.  Empty (the default) keeps the
  /// workload's default rate and a plain fixed-budget run.
  std::vector<double> injection_rates;
  /// Measurement setup for the injection_rates axis (phase lengths,
  /// steady-state detection); `phased` is forced on for those points.
  workload::MeasurementParams measurement{};

  int n = 60;  ///< problem size (Jacobi grid / reduction elements)
  std::vector<int> cores = {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  std::vector<std::uint32_t> cache_kb = {2, 4, 8, 16, 32, 64};
  std::vector<mem::WritePolicy> policies = {mem::WritePolicy::kWriteBack,
                                            mem::WritePolicy::kWriteThrough};
  apps::JacobiVariant variant = apps::JacobiVariant::kHybridMp;
  int warmup_iterations = 1;
  int timed_iterations = 1;
  int threads = 0;  ///< 0 = hardware concurrency
  AreaModel area{};

  /// Event-queue kernel every design point runs on (default: the
  /// single-thread calendar queue).  kShardedCalendar runs each point
  /// on the sharded parallel kernel — results stay bit-identical, so
  /// it is purely a speed knob; prefer it when the sweep grid is
  /// smaller than the machine (few big points), and keep the default
  /// when `threads` already saturates the host (shards multiply).
  sim::SchedulerConfig scheduler{};

  /// Live progress on stderr while the sweep runs: a single updating
  /// line with completed/total points, points/sec and ETA — the "is it
  /// still making progress" signal for long DSE runs.  Off by default
  /// (library callers and tests want silent sweeps).
  bool progress = false;
};

struct SweepPoint {
  std::string workload;  ///< registry name that produced this point
  int cores = 0;
  std::uint32_t cache_kb = 0;
  mem::WritePolicy policy = mem::WritePolicy::kWriteBack;
  apps::JacobiVariant variant = apps::JacobiVariant::kHybridMp;
  /// Headline workload metric (`metric_name` says which; Jacobi:
  /// "cycles_per_iteration").  Kept under the historical field name
  /// because the Pareto/figure layers treat it as "cycles of work".
  double cycles_per_iteration = 0.0;
  std::string metric_name;
  double area_mm2 = 0.0;
  double trace_scale = 1.0;  ///< replay rate-sweep factor (1.0 = verbatim)
  /// Synthetic load-sweep rate (< 0 on points not on that axis).
  double injection_rate = -1.0;
  /// Per-flit latency + throughput for this point (latency.count == 0
  /// when the run did not collect).  Percentiles feed the saturation
  /// figures the same way cycles feed the Pareto ones.
  workload::MeasurementResult measurement{};
  /// Host wall-clock time this point took to simulate — the sweep's
  /// per-point phase timing (also emitted as a ProfileScope span when
  /// the host profiler is enabled).
  double host_ms = 0.0;
  std::string label;  ///< e.g. "11P_16k$_WB" (replay scales append "_x<f>",
                      ///< load sweeps "_l<rate>")
};

/// Build the MedeaConfig for one design point (shared by sweeps, tests
/// and benches so everyone simulates the same machine).
core::MedeaConfig make_design_config(int cores, std::uint32_t cache_kb,
                                     mem::WritePolicy policy);

/// Run one design point (trace_scale != 1.0 only makes sense for the
/// replay workload; injection_rate >= 0 only for synthetic patterns,
/// where it switches the point to a phased measured run).
SweepPoint run_design_point(const SweepSpec& spec, int cores,
                            std::uint32_t cache_kb, mem::WritePolicy policy,
                            double trace_scale = 1.0,
                            double injection_rate = -1.0);

/// Run the full cross product (optionally multi-threaded).  Points are
/// batched per worker thread (striped ranges, one task per thread) so a
/// thread amortises its spawn cost and its warm coroutine frame pool
/// across every design point it simulates.  Result order is
/// deterministic (cores-major, then cache, then policy).
std::vector<SweepPoint> run_sweep(const SweepSpec& spec);

/// Convert sweep results to design points for Pareto analysis.
std::vector<DesignPoint> to_design_points(const std::vector<SweepPoint>& pts);

}  // namespace medea::dse
