#pragma once

#include <cstdint>

#include "core/config.h"

/// \file area.h
/// Chip-area model for the paper's cost analysis (§III, Figs. 7 & 9).
///
/// The paper estimates area "from core/cache data given by the processor
/// vendor for a TSMC 65nm CMOS technology and including an overhead for
/// NoC switches, bridges and routing area of about 100% of the total core
/// area (excluding caches)".  The vendor numbers are not public, so the
/// constants below are calibrated to reproduce the paper's axes: the
/// 11P+16kB point lands near 10 mm² and 15P+32kB near 21 mm² (Fig. 7),
/// with the 2P_2:8k$ starting point near 2.5 mm².
///
/// area = (P+1 cores) * core_logic * (1 + noc_overhead)
///        + sum(L1 sizes) * per-kB + MPMMU cache * per-kB

namespace medea::dse {

struct AreaModel {
  double core_logic_mm2 = 0.33;   ///< Xtensa-LX class core, 65 nm
  double noc_overhead = 1.0;      ///< switch+bridge+routing = 100% of logic
  double cache_mm2_per_kb = 0.015625;  ///< 0.5 mm² per 32 kB SRAM

  /// Full-chip area of a configuration (compute cores + MPMMU node).
  double chip_area_mm2(int compute_cores, std::uint32_t l1_bytes,
                       std::uint32_t mpmmu_cache_bytes) const {
    const double nodes = static_cast<double>(compute_cores) + 1.0;
    const double logic = nodes * core_logic_mm2 * (1.0 + noc_overhead);
    const double l1 = static_cast<double>(compute_cores) *
                      (static_cast<double>(l1_bytes) / 1024.0) *
                      cache_mm2_per_kb;
    const double mpmmu = (static_cast<double>(mpmmu_cache_bytes) / 1024.0) *
                         cache_mm2_per_kb;
    return logic + l1 + mpmmu;
  }

  double chip_area_mm2(const core::MedeaConfig& cfg) const {
    return chip_area_mm2(cfg.num_compute_cores, cfg.l1.size_bytes,
                         cfg.mpmmu.cache.size_bytes);
  }
};

}  // namespace medea::dse
