#pragma once

#include <string>
#include <vector>

#include "dse/pareto.h"
#include "dse/sweep.h"

/// \file report.h
/// Figure-artifact generation: turn sweep results into the gnuplot data
/// and script files that regenerate the paper's Figs. 6-9 as plots, plus
/// CSV for any other toolchain.
///
/// The paper's figures are classic gnuplot renderings (execution-time
/// curves per cache configuration; labelled speedup-vs-area scatter).
/// write_fig6_gnuplot / write_speedup_gnuplot emit a .dat + .gp pair so
/// `gnuplot figN.gp` reproduces the figure from this simulator's output.

namespace medea::dse {

/// One curve of an execution-time figure (Fig. 6/8 style).
struct ExecTimeCurve {
  std::string title;             ///< e.g. "16kB $ WB"
  std::vector<int> cores;        ///< x values
  std::vector<double> cycles;    ///< y values
};

/// Group sweep points into Fig. 6-style curves (one per cache
/// size+policy), x = core count.  Points are matched exactly; missing
/// combinations are skipped.
std::vector<ExecTimeCurve> exec_time_curves(const std::vector<SweepPoint>& pts);

/// CSV with one row per sweep point (header included).
std::string to_csv(const std::vector<SweepPoint>& pts);

/// Gnuplot .dat content for exec-time curves: first column cores, one
/// column per curve, NaN for gaps.
std::string exec_time_dat(const std::vector<ExecTimeCurve>& curves);

/// Gnuplot script plotting `dat_filename` in the paper's Fig. 6 style.
std::string exec_time_gp(const std::vector<ExecTimeCurve>& curves,
                         const std::string& dat_filename,
                         const std::string& title);

/// Gnuplot .dat for a speedup-vs-area frontier (area, speedup, label).
std::string speedup_dat(const std::vector<SpeedupPoint>& curve);

/// Gnuplot script in the paper's Fig. 7/9 style (labelled points).
std::string speedup_gp(const std::string& dat_filename,
                       const std::string& title);

/// Write a string to a file (throws std::runtime_error on failure).
void write_file(const std::string& path, const std::string& content);

}  // namespace medea::dse
