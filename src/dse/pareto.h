#pragma once

#include <string>
#include <vector>

/// \file pareto.h
/// Pareto pruning and the "Kill rule" (Agarwal et al., DAC 2007) used by
/// the paper to pick area-efficient configurations: grow a resource only
/// if every 1% of core-area increase buys at least 1% of performance.

namespace medea::dse {

/// One evaluated design point.
struct DesignPoint {
  double area_mm2 = 0.0;
  double exec_cycles = 0.0;  ///< lower is better
  std::string label;
};

/// Area-ascending Pareto frontier: every kept point is strictly faster
/// than all cheaper kept points.  Among equal-area points the fastest
/// survives.  Input order is not assumed sorted.
std::vector<DesignPoint> pareto_frontier(std::vector<DesignPoint> points);

/// Apply the Kill rule along an area-ascending frontier: walking from the
/// cheapest point, keep a step to a bigger configuration only while
/// (Δperf / perf) >= (Δarea / area).  Returns the index (into `frontier`)
/// of the last point that still satisfies the rule — the paper's "upper
/// knee" (11 processors with 16 kB caches in Fig. 7).
std::size_t kill_rule_knee(const std::vector<DesignPoint>& frontier);

/// Speedup curve: frontier annotated with exec-time ratios against a
/// baseline cycle count (the paper uses the smallest-area configuration).
struct SpeedupPoint {
  double area_mm2 = 0.0;
  double speedup = 0.0;
  std::string label;
};
std::vector<SpeedupPoint> speedup_curve(
    const std::vector<DesignPoint>& frontier, double baseline_cycles);

}  // namespace medea::dse
