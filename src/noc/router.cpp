#include "noc/router.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace medea::noc {

namespace {

/// Hop count beyond which we flag a flit as a livelock suspect.  The paper
/// observed "sporadic cases of single flits delivered with high latency";
/// this counter lets experiments quantify that tail.
constexpr std::uint16_t kLivelockHops = 256;

}  // namespace

DeflectionRouter::DeflectionRouter(sim::Scheduler& sched,
                                   const TorusGeometry& geom, Coord pos,
                                   const RouterConfig& cfg,
                                   sim::StatSet& net_stats,
                                   std::uint64_t rng_seed)
    : sim::Component(sched, "router" + pos.to_string()),
      geom_(geom),
      pos_(pos),
      node_id_(geom.node_id(pos)),
      cfg_(cfg),
      stats_(net_stats),
      rng_(rng_seed),
      st_delivered_(net_stats.counter("noc.flits_delivered")),
      st_delivered_here_(net_stats.counter(
          "noc.router." + std::to_string(geom.node_id(pos)) + ".delivered")),
      st_livelock_(net_stats.counter("noc.livelock_suspects")),
      st_deflections_(net_stats.counter("noc.deflections_total")),
      st_injected_(net_stats.counter("noc.flits_injected")),
      acc_latency_(net_stats.accumulator("noc.latency")),
      acc_hops_(net_stats.accumulator("noc.hops")),
      acc_defl_(net_stats.accumulator("noc.deflections")),
      inject_q_(sched, name() + ".inject",
                static_cast<std::size_t>(cfg.inject_queue_depth)),
      eject_q_(sched, name() + ".eject",
               static_cast<std::size_t>(cfg.eject_queue_depth)) {
  inject_q_.set_consumer(this);
}

void DeflectionRouter::connect_input(Dir d, sim::Fifo<Flit>* link) {
  in_[static_cast<int>(d)] = link;
  link->set_consumer(this);
}

void DeflectionRouter::connect_output(Dir d, sim::Fifo<Flit>* link) {
  out_[static_cast<int>(d)] = link;
}

void DeflectionRouter::tick(sim::Cycle now) {
  // 0. Lifecycle tracing: announce inject-queue entries that became
  //    visible this cycle (the FIFO wakes us whenever that happens, so
  //    the enter cycle observed here is exact).  Read-only — peek never
  //    perturbs FIFO timing — and skipped entirely unless the attached
  //    observer opted into hop-level events.
  if (lifecycle_ != nullptr) {
    for (std::size_t i = q_announced_; i < inject_q_.size(); ++i) {
      lifecycle_->on_queue_enter(now, node_id_, inject_q_.peek(i));
    }
    q_announced_ = inject_q_.size();
  }

  // 1. Accept at most one flit per input link (hot potato: the router
  //    never stores flits, so everything accepted must leave this cycle).
  route_set_.clear();
  for (auto* link : in_) {
    if (link != nullptr && !link->empty()) route_set_.push_back(link->pop());
  }

  // 2. Ejection: oldest flits addressed to this node, up to the local
  //    delivery bandwidth, space permitting.  Flits that cannot eject stay
  //    in the route set and deflect around the network.
  int ejected = 0;
  if (!route_set_.empty()) {
    std::stable_sort(route_set_.begin(), route_set_.end(),
                     [](const Flit& a, const Flit& b) {
                       if (a.inject_cycle != b.inject_cycle)
                         return a.inject_cycle < b.inject_cycle;
                       return a.uid < b.uid;
                     });
    for (auto it = route_set_.begin();
         it != route_set_.end() && ejected < cfg_.eject_per_cycle;) {
      if (it->dst == pos_ && eject_q_.can_push()) {
        ++st_delivered_;
        ++st_delivered_here_;
        acc_latency_.add(static_cast<double>(now - it->inject_cycle));
        acc_hops_.add(it->hops);
        acc_defl_.add(it->deflections);
        if (it->hops >= kLivelockHops) ++st_livelock_;
        if (observer_ != nullptr) observer_->on_deliver(now, node_id_, *it);
        eject_q_.push(*it);
        it = route_set_.erase(it);
        ++ejected;
      } else {
        ++it;
      }
    }
  }

  // 3. Port assignment, oldest-first (route_set_ is already sorted).
  bool port_free[kNumDirs] = {true, true, true, true};
  Dir assigned[8];  // route_set_.size() <= 4 always; slack for safety
  int n_assigned = 0;
  assert(route_set_.size() <= static_cast<std::size_t>(kNumDirs));

  auto pick_port = [&](const Flit& f, bool& productive) -> int {
    Dir prod[4];
    const int np = geom_.productive_dirs(pos_, f.dst, prod);
    // Productive first.
    int first_free_prod = -1;
    for (int i = 0; i < np; ++i) {
      if (port_free[static_cast<int>(prod[i])]) {
        if (first_free_prod < 0) first_free_prod = static_cast<int>(prod[i]);
        if (!cfg_.random_tie_break) break;
      }
    }
    if (first_free_prod >= 0) {
      productive = true;
      return first_free_prod;
    }
    // Deflect: any free port (fixed scan order, or random among free).
    productive = false;
    if (cfg_.random_tie_break) {
      int free_ports[kNumDirs];
      int nf = 0;
      for (int d = 0; d < kNumDirs; ++d) {
        if (port_free[d]) free_ports[nf++] = d;
      }
      if (nf == 0) return -1;
      return free_ports[rng_.next_below(static_cast<std::uint32_t>(nf))];
    }
    for (int d = 0; d < kNumDirs; ++d) {
      if (port_free[d]) return d;
    }
    return -1;
  };

  for (const Flit& f : route_set_) {
    bool productive = false;
    const int port = pick_port(f, productive);
    // With |route_set_| <= kNumDirs a free port always exists; if the
    // invariant is ever broken, fail hard instead of indexing with -1
    // (asserts vanish under NDEBUG and would leave this as silent UB).
    if (port < 0) std::abort();
    port_free[port] = false;
    assigned[n_assigned++] = static_cast<Dir>(port);
    if (!productive) ++st_deflections_;
  }

  // 4. Injection: one local flit if a port is still free.
  bool injected_this_cycle = false;
  if (!inject_q_.empty()) {
    bool any_free = false;
    for (bool pf : port_free) any_free = any_free || pf;
    if (any_free) {
      Flit f = inject_q_.pop();
      if (q_announced_ > 0) --q_announced_;
      f.inject_cycle = now;
      bool productive = false;
      const int port = pick_port(f, productive);
      if (port < 0) std::abort();  // a free port was just verified above
      port_free[port] = false;
      if (observer_ != nullptr) observer_->on_inject(now, node_id_, f);
      route_set_.push_back(f);
      assigned[n_assigned++] = static_cast<Dir>(port);
      if (!productive) ++st_deflections_;
      ++st_injected_;
      injected_this_cycle = true;
    }
  }

  // 5. Emit flits on their assigned links.
  for (int i = 0; i < n_assigned; ++i) {
    Flit f = route_set_[static_cast<std::size_t>(i)];
    f.hops++;
    Dir prod[4];
    const int np = geom_.productive_dirs(pos_, f.dst, prod);
    bool was_productive = false;
    for (int p = 0; p < np; ++p) was_productive |= (prod[p] == assigned[i]);
    if (!was_productive) f.deflections++;
    if (lifecycle_ != nullptr) {
      lifecycle_->on_hop(now, node_id_, static_cast<int>(assigned[i]),
                         !was_productive, f);
    }
    auto* link = out_[static_cast<int>(assigned[i])];
    assert(link != nullptr && link->can_push() &&
           "NoC links must always drain (no back-pressure in hot potato)");
    link->push(f);
  }

  // A pending injection that lost arbitration (or is still queued behind
  // the one-per-cycle limit) retries next cycle; link input arrivals wake
  // us automatically via the link FIFOs' consumer hook.
  (void)injected_this_cycle;
  if (!inject_q_.empty()) wake();
}

}  // namespace medea::noc
