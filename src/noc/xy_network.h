#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "noc/xy_router.h"

/// \file xy_network.h
/// Network assembly for the baseline buffered XY router (see xy_router.h).
/// Wiring matches Network exactly (same links, same geometry), so traffic
/// generators can drive either fabric and compare latency, throughput and
/// buffer occupancy — the quantitative form of the paper's §II-A argument
/// for deflection routing.

namespace medea::noc {

class XyNetwork {
 public:
  /// torus_wrap=false (default) gives a mesh, the deadlock-free home of
  /// dimension-ordered routing; wrap=true uses shortest-way tori links
  /// (fine for light load; cyclic buffer dependencies can deadlock under
  /// saturation, which the comparison benches avoid by construction).
  XyNetwork(sim::Scheduler& sched, const TorusGeometry& geom,
            const XyRouterConfig& cfg = {}, bool torus_wrap = false);

  /// The scheduler every node runs on (the XY baseline never shards;
  /// mirror of Network::sched_of so traffic templates work unchanged).
  sim::Scheduler& sched_of(int /*node_id*/) { return sched_; }

  const TorusGeometry& geometry() const { return geom_; }
  int num_nodes() const { return geom_.num_nodes(); }

  /// Router configuration and wrap mode this fabric was built with
  /// (persisted into trace headers; replay verifies them).
  const XyRouterConfig& config() const { return cfg_; }
  bool torus_wrap() const { return torus_wrap_; }

  sim::Fifo<Flit>& inject(int node_id) { return router(node_id).inject(); }
  sim::Fifo<Flit>& eject(int node_id) { return router(node_id).eject(); }

  XyRouter& router(int node_id) {
    return *routers_[static_cast<std::size_t>(node_id)];
  }

  sim::StatSet& stats() { return stats_; }
  const sim::StatSet& stats() const { return stats_; }

  /// No-op (stats() is always live): mirror of Network::refresh_stats so
  /// fabric-generic run helpers compile against either network.
  void refresh_stats() {}

  /// Attach a flit-event observer to every router (nullptr detaches).
  /// Gives the buffered-XY baseline the same record/replay capability
  /// the deflection fabric has.
  void set_observer(FlitObserver* obs);

  std::uint32_t next_flit_uid() { return next_uid_++; }

  /// Fresh unique flit id from `node`'s private stream — same scheme as
  /// Network::node_flit_uid, so the shared traffic templates draw
  /// identical uid sequences on either fabric.
  std::uint32_t node_flit_uid(int node) {
    auto& seq = node_seq_[static_cast<std::size_t>(node)];
    ++seq;
    assert(seq < (1u << kFlitUidSeqBits) &&
           "per-node flit uid space exhausted");
    return (static_cast<std::uint32_t>(node) << kFlitUidSeqBits) | seq;
  }

  /// Reserve uid space: make the next next_flit_uid() return at least
  /// `floor` (trace replay keeps recorded uids collision-free with it).
  void reserve_flit_uids(std::uint32_t floor) {
    if (floor > next_uid_) next_uid_ = floor;
  }

  /// Sum of all flits buffered inside routers right now.
  std::size_t total_buffered() const;

 private:
  TorusGeometry geom_;
  XyRouterConfig cfg_;
  bool torus_wrap_;
  sim::Scheduler& sched_;
  sim::StatSet stats_;
  std::vector<std::unique_ptr<XyRouter>> routers_;
  std::vector<std::unique_ptr<sim::Fifo<Flit>>> links_;
  std::uint32_t next_uid_ = 1;
  std::vector<std::uint32_t> node_seq_;
};

}  // namespace medea::noc
