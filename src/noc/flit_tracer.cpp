#include "noc/flit_tracer.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "noc/coord.h"

namespace medea::telemetry {

namespace {

/// Avalanching integer hash (fmix32): the uid sequence is consecutive,
/// so `uid % N` would sample one source's packets in bursts; hashing
/// first makes the 1-in-N population uniform across time and space.
std::uint32_t mix32(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x85ebca6bu;
  x ^= x >> 13;
  x *= 0xc2b2ae35u;
  x ^= x >> 16;
  return x;
}

}  // namespace

bool flit_sampled(std::uint32_t uid, std::uint32_t sample_every) {
  if (sample_every <= 1) return true;
  return mix32(uid) % sample_every == 0;
}

// ---------------------------------------------------------------------
// FlitTrace analysis
// ---------------------------------------------------------------------

LatencyDecomposition FlitTrace::decompose(const TracedFlit& f) const {
  LatencyDecomposition d;
  if (!f.complete) return d;
  if (f.enqueue_cycle != sim::kNeverCycle) {
    d.source_queue = f.inject_cycle - f.enqueue_cycle;
  }
  // First cycle the flit was at its destination router: the earliest hop
  // *departing* the destination (a failed ejection on the hot-potato
  // fabric), else one cycle after the last hop (normal link arrival).
  // Zero-hop flits (XY self-delivery) never left the source.
  sim::Cycle at_dst = f.inject_cycle;
  if (f.hop_count > 0) {
    at_dst = hop_cycle[f.first_hop + f.hop_count - 1] + 1;
    for (std::uint32_t i = 0; i < f.hop_count; ++i) {
      if (hop_node[f.first_hop + i] == f.dst) {
        at_dst = hop_cycle[f.first_hop + i];
        break;
      }
    }
  }
  d.network = at_dst - f.inject_cycle;
  d.eject_wait = f.deliver_cycle - at_dst;
  return d;
}

std::uint32_t FlitTrace::chain_deflections(const TracedFlit& f) const {
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < f.hop_count; ++i) {
    n += hop_deflected[f.first_hop + i];
  }
  return n;
}

std::vector<const TracedFlit*> FlitTrace::worst(int k) const {
  std::vector<const TracedFlit*> out;
  for (const TracedFlit& f : flits) {
    if (f.complete) out.push_back(&f);
  }
  const auto slower = [](const TracedFlit* a, const TracedFlit* b) {
    const sim::Cycle la = a->deliver_cycle - a->inject_cycle;
    const sim::Cycle lb = b->deliver_cycle - b->inject_cycle;
    if (la != lb) return la > lb;
    return a->uid < b->uid;
  };
  const std::size_t n =
      std::min(out.size(), static_cast<std::size_t>(k < 0 ? 0 : k));
  std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n),
                    out.end(), slower);
  out.resize(n);
  return out;
}

std::map<std::uint32_t, std::uint64_t> FlitTrace::hop_histogram() const {
  std::map<std::uint32_t, std::uint64_t> h;
  for (const TracedFlit& f : flits) {
    if (f.complete) ++h[f.hop_count];
  }
  return h;
}

std::map<std::uint32_t, std::uint64_t> FlitTrace::deflection_histogram() const {
  std::map<std::uint32_t, std::uint64_t> h;
  for (const TracedFlit& f : flits) {
    if (f.complete) ++h[f.deflections];
  }
  return h;
}

std::vector<std::uint64_t> FlitTrace::link_flits() const {
  std::vector<std::uint64_t> links(
      static_cast<std::size_t>(num_nodes()) * noc::kNumDirs, 0);
  for (std::size_t i = 0; i < hop_node.size(); ++i) {
    ++links[static_cast<std::size_t>(hop_node[i]) * noc::kNumDirs +
            hop_port[i]];
  }
  return links;
}

std::vector<std::uint64_t> FlitTrace::link_deflections() const {
  std::vector<std::uint64_t> links(
      static_cast<std::size_t>(num_nodes()) * noc::kNumDirs, 0);
  for (std::size_t i = 0; i < hop_node.size(); ++i) {
    if (hop_deflected[i] != 0) {
      ++links[static_cast<std::size_t>(hop_node[i]) * noc::kNumDirs +
              hop_port[i]];
    }
  }
  return links;
}

std::uint64_t FlitTrace::total_deflections() const {
  std::uint64_t n = 0;
  for (const std::uint8_t d : hop_deflected) n += d;
  return n;
}

std::uint32_t FlitTrace::max_deflections() const {
  std::uint32_t m = 0;
  for (const TracedFlit& f : flits) {
    if (f.complete && f.deflections > m) m = f.deflections;
  }
  return m;
}

// ---------------------------------------------------------------------
// FlitTracer recording
// ---------------------------------------------------------------------

FlitTracer::FlitTracer(std::uint32_t sample_every, int width, int height) {
  trace_.sample_every = sample_every == 0 ? 1 : sample_every;
  trace_.width = width;
  trace_.height = height;
}

std::uint32_t FlitTracer::record_for(std::uint32_t uid) {
  if (!flit_sampled(uid, trace_.sample_every)) return kNil;
  const auto [it, inserted] =
      by_uid_.emplace(uid, static_cast<std::uint32_t>(recs_.size()));
  if (inserted) {
    TracedFlit f;
    f.uid = uid;
    recs_.push_back(f);
    chain_head_.push_back(kNil);
    chain_tail_.push_back(kNil);
  }
  return it->second;
}

std::uint32_t FlitTracer::dst_id(const noc::Flit& f) const {
  return static_cast<std::uint32_t>(f.dst.y) *
             static_cast<std::uint32_t>(trace_.width) +
         f.dst.x;
}

void FlitTracer::on_queue_enter(sim::Cycle now, int node, const noc::Flit& f) {
  const std::uint32_t r = record_for(f.uid);
  if (r == kNil) return;
  TracedFlit& rec = recs_[r];
  if (rec.enqueue_cycle == sim::kNeverCycle) {
    rec.enqueue_cycle = now;
    rec.src = static_cast<std::uint16_t>(node);
    rec.dst = static_cast<std::uint16_t>(dst_id(f));
  }
}

void FlitTracer::on_inject(sim::Cycle now, int node, const noc::Flit& f) {
  ++trace_.packets_seen;
  const std::uint32_t r = record_for(f.uid);
  if (r == kNil) return;
  TracedFlit& rec = recs_[r];
  rec.inject_cycle = now;
  rec.src = static_cast<std::uint16_t>(node);
  rec.dst = static_cast<std::uint16_t>(dst_id(f));
}

void FlitTracer::on_hop(sim::Cycle now, int node, int out_port, bool deflected,
                        const noc::Flit& f) {
  const std::uint32_t r = record_for(f.uid);
  if (r == kNil) return;
  const std::uint32_t h = static_cast<std::uint32_t>(pool_.size());
  pool_.push_back({now, static_cast<std::uint16_t>(node),
                   static_cast<std::uint8_t>(out_port),
                   static_cast<std::uint8_t>(deflected ? 1 : 0)});
  pool_next_.push_back(kNil);
  if (chain_head_[r] == kNil) {
    chain_head_[r] = h;
  } else {
    pool_next_[chain_tail_[r]] = h;
  }
  chain_tail_[r] = h;
  ++recs_[r].hop_count;
}

void FlitTracer::on_deliver(sim::Cycle now, int /*node*/, const noc::Flit& f) {
  const std::uint32_t r = record_for(f.uid);
  if (r == kNil) return;
  TracedFlit& rec = recs_[r];
  rec.deliver_cycle = now;
  rec.deflections = f.deflections;
  rec.complete = rec.inject_cycle != sim::kNeverCycle;
}

void FlitTracer::finalize(sim::Cycle run_cycles) {
  if (finalized_) return;
  finalized_ = true;
  trace_.run_cycles = run_cycles;

  // Deterministic flit order regardless of unordered_map iteration:
  // (inject_cycle, uid), never-injected records last.
  std::vector<std::uint32_t> order(recs_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (recs_[a].inject_cycle != recs_[b].inject_cycle) {
                return recs_[a].inject_cycle < recs_[b].inject_cycle;
              }
              return recs_[a].uid < recs_[b].uid;
            });

  trace_.flits.reserve(recs_.size());
  trace_.hop_cycle.reserve(pool_.size());
  trace_.hop_node.reserve(pool_.size());
  trace_.hop_port.reserve(pool_.size());
  trace_.hop_deflected.reserve(pool_.size());
  for (const std::uint32_t r : order) {
    TracedFlit f = recs_[r];
    f.first_hop = static_cast<std::uint32_t>(trace_.hop_cycle.size());
    for (std::uint32_t h = chain_head_[r]; h != kNil; h = pool_next_[h]) {
      trace_.hop_cycle.push_back(pool_[h].cycle);
      trace_.hop_node.push_back(pool_[h].node);
      trace_.hop_port.push_back(pool_[h].port);
      trace_.hop_deflected.push_back(pool_[h].deflected);
    }
    assert(f.first_hop + f.hop_count == trace_.hop_cycle.size());
    trace_.flits.push_back(f);
  }

  by_uid_.clear();
  recs_.clear();
  chain_head_.clear();
  chain_tail_.clear();
  pool_.clear();
  pool_next_.clear();
}

}  // namespace medea::telemetry
