#include "noc/traffic.h"

#include <bit>

namespace medea::noc {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniformRandom: return "uniform";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kNeighbor: return "neighbor";
    case TrafficPattern::kBitReversal: return "bitrev";
  }
  return "?";
}

int pick_destination(TrafficPattern p, const TorusGeometry& geom, int src,
                     int hotspot_node, sim::Xoshiro256& rng) {
  switch (p) {
    case TrafficPattern::kUniformRandom: {
      int dst = src;
      while (dst == src) {
        dst = static_cast<int>(
            rng.next_below(static_cast<std::uint32_t>(geom.num_nodes())));
      }
      return dst;
    }
    case TrafficPattern::kHotspot:
      return hotspot_node;
    case TrafficPattern::kTranspose: {
      const Coord c = geom.coord_of(src);
      // Meaningful on square fabrics; clamp otherwise.
      const Coord t{static_cast<std::uint8_t>(c.y % geom.width()),
                    static_cast<std::uint8_t>(c.x % geom.height())};
      return geom.node_id(t);
    }
    case TrafficPattern::kNeighbor:
      return (src + 1) % geom.num_nodes();
    case TrafficPattern::kBitReversal: {
      // Reverse the node id within the fabric's index width.  Exact
      // permutation on power-of-two fabrics; on others the reversal can
      // land outside the torus, folded back with a modulo (palindromic
      // ids map to themselves; endpoints drop those self-slots).
      const int n = geom.num_nodes();
      const int bits = std::bit_width(static_cast<unsigned>(n - 1));
      unsigned v = static_cast<unsigned>(src);
      unsigned r = 0;
      for (int b = 0; b < bits; ++b) {
        r = (r << 1) | (v & 1u);
        v >>= 1;
      }
      return static_cast<int>(r) % n;
    }
  }
  return src;
}

}  // namespace medea::noc
