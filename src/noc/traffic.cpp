#include "noc/traffic.h"

#include <bit>
#include <stdexcept>
#include <string>

namespace medea::noc {

namespace {

class BernoulliInjection final : public InjectionProcess {
 public:
  explicit BernoulliInjection(double rate) : rate_(rate) {}
  bool fire(sim::Xoshiro256& rng) override { return rng.next_bool(rate_); }
  double rate() const override { return rate_; }

 private:
  double rate_;
};

/// Two-state Markov-modulated (on-off) process: while ON, offer at the
/// in-burst rate r1; while OFF, offer nothing.  Geometric dwell times
/// (on->off with prob alpha, off->on with prob beta per cycle) give a
/// steady-state ON fraction of beta/(alpha+beta), so r1 is scaled to
/// make the long-run offered load equal the requested rate — the same
/// construction as booksim2's `on_off` injection process.
class OnOffInjection final : public InjectionProcess {
 public:
  OnOffInjection(double rate, double alpha, double beta,
                 sim::Xoshiro256& rng)
      : rate_(rate),
        alpha_(alpha),
        beta_(beta),
        r1_(rate * (alpha + beta) / beta),
        // Start each endpoint in its steady-state distribution (drawn
        // from its own stream) so bursts decorrelate across nodes from
        // cycle 1 instead of all starting in lockstep.
        on_(rng.next_bool(beta / (alpha + beta))) {}

  bool fire(sim::Xoshiro256& rng) override {
    const bool offer = on_ && rng.next_bool(r1_);
    if (on_) {
      if (rng.next_bool(alpha_)) on_ = false;
    } else {
      if (rng.next_bool(beta_)) on_ = true;
    }
    return offer;
  }
  double rate() const override { return rate_; }

 private:
  double rate_;
  double alpha_;
  double beta_;
  double r1_;  ///< in-burst offer probability
  bool on_;
};

}  // namespace

const char* to_string(InjectionKind k) {
  switch (k) {
    case InjectionKind::kBernoulli: return "bernoulli";
    case InjectionKind::kOnOff: return "onoff";
  }
  return "?";
}

std::unique_ptr<InjectionProcess> make_injection_process(
    const InjectionSpec& spec, double rate, sim::Xoshiro256& rng) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument(
        "injection process: rate must be in [0, 1], got " +
        std::to_string(rate));
  }
  switch (spec.kind) {
    case InjectionKind::kBernoulli:
      return std::make_unique<BernoulliInjection>(rate);
    case InjectionKind::kOnOff: {
      if (spec.burst_alpha <= 0.0 || spec.burst_alpha > 1.0 ||
          spec.burst_beta <= 0.0 || spec.burst_beta > 1.0) {
        throw std::invalid_argument(
            "on-off injection: burst_alpha and burst_beta must be in "
            "(0, 1]");
      }
      const double r1 =
          rate * (spec.burst_alpha + spec.burst_beta) / spec.burst_beta;
      if (r1 > 1.0) {
        throw std::invalid_argument(
            "on-off injection: rate " + std::to_string(rate) +
            " is unreachable with on-fraction " +
            std::to_string(spec.burst_beta /
                           (spec.burst_alpha + spec.burst_beta)) +
            " (in-burst rate would exceed 1 flit/cycle)");
      }
      return std::make_unique<OnOffInjection>(rate, spec.burst_alpha,
                                              spec.burst_beta, rng);
    }
  }
  throw std::invalid_argument("injection process: unknown kind");
}

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniformRandom: return "uniform";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kNeighbor: return "neighbor";
    case TrafficPattern::kBitReversal: return "bitrev";
  }
  return "?";
}

int pick_destination(TrafficPattern p, const TorusGeometry& geom, int src,
                     int hotspot_node, sim::Xoshiro256& rng) {
  switch (p) {
    case TrafficPattern::kUniformRandom: {
      int dst = src;
      while (dst == src) {
        dst = static_cast<int>(
            rng.next_below(static_cast<std::uint32_t>(geom.num_nodes())));
      }
      return dst;
    }
    case TrafficPattern::kHotspot:
      return hotspot_node;
    case TrafficPattern::kTranspose: {
      const Coord c = geom.coord_of(src);
      // Meaningful on square fabrics; clamp otherwise.
      const Coord t{static_cast<std::uint8_t>(c.y % geom.width()),
                    static_cast<std::uint8_t>(c.x % geom.height())};
      return geom.node_id(t);
    }
    case TrafficPattern::kNeighbor:
      return (src + 1) % geom.num_nodes();
    case TrafficPattern::kBitReversal: {
      // Reverse the node id within the fabric's index width.  Exact
      // permutation on power-of-two fabrics; on others the reversal can
      // land outside the torus, folded back with a modulo (palindromic
      // ids map to themselves; endpoints drop those self-slots).
      const int n = geom.num_nodes();
      const int bits = std::bit_width(static_cast<unsigned>(n - 1));
      unsigned v = static_cast<unsigned>(src);
      unsigned r = 0;
      for (int b = 0; b < bits; ++b) {
        r = (r << 1) | (v & 1u);
        v >>= 1;
      }
      return static_cast<int>(r) % n;
    }
  }
  return src;
}

}  // namespace medea::noc
