#include "noc/traffic.h"

namespace medea::noc {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniformRandom: return "uniform";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kNeighbor: return "neighbor";
  }
  return "?";
}

int pick_destination(TrafficPattern p, const TorusGeometry& geom, int src,
                     int hotspot_node, sim::Xoshiro256& rng) {
  switch (p) {
    case TrafficPattern::kUniformRandom: {
      int dst = src;
      while (dst == src) {
        dst = static_cast<int>(
            rng.next_below(static_cast<std::uint32_t>(geom.num_nodes())));
      }
      return dst;
    }
    case TrafficPattern::kHotspot:
      return hotspot_node;
    case TrafficPattern::kTranspose: {
      const Coord c = geom.coord_of(src);
      // Meaningful on square fabrics; clamp otherwise.
      const Coord t{static_cast<std::uint8_t>(c.y % geom.width()),
                    static_cast<std::uint8_t>(c.x % geom.height())};
      return geom.node_id(t);
    }
    case TrafficPattern::kNeighbor:
      return (src + 1) % geom.num_nodes();
  }
  return src;
}

}  // namespace medea::noc
