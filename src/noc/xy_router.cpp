#include "noc/xy_router.h"

#include <cassert>

namespace medea::noc {

XyRouter::XyRouter(sim::Scheduler& sched, const TorusGeometry& geom, Coord pos,
                   const XyRouterConfig& cfg, bool torus_wrap,
                   sim::StatSet& stats)
    : sim::Component(sched, "xyrouter" + pos.to_string()),
      geom_(geom),
      pos_(pos),
      node_id_(geom.node_id(pos)),
      cfg_(cfg),
      torus_wrap_(torus_wrap),
      stats_(stats),
      st_delivered_here_(stats.counter(
          "xynoc.router." + std::to_string(geom.node_id(pos)) + ".delivered")),
      inject_q_(sched, name() + ".inject",
                static_cast<std::size_t>(cfg.inject_queue_depth)),
      eject_q_(sched, name() + ".eject",
               static_cast<std::size_t>(cfg.eject_queue_depth)) {
  inject_q_.set_consumer(this);
}

void XyRouter::connect_input(Dir d, sim::Fifo<Flit>* link) {
  in_[static_cast<int>(d)] = link;
  link->set_consumer(this);
}

void XyRouter::connect_output(Dir d, sim::Fifo<Flit>* link) {
  out_[static_cast<int>(d)] = link;
}

std::size_t XyRouter::buffered() const {
  std::size_t n = 0;
  for (const auto& b : buf_) n += b.size();
  return n;
}

int XyRouter::route(Coord dst) const {
  if (dst == pos_) return kNumDirs;
  if (dst.x != pos_.x) {
    if (torus_wrap_) {
      const int w = geom_.width();
      const int fwd = ((dst.x - pos_.x) % w + w) % w;
      return fwd <= w - fwd ? static_cast<int>(Dir::kEast)
                            : static_cast<int>(Dir::kWest);
    }
    return dst.x > pos_.x ? static_cast<int>(Dir::kEast)
                          : static_cast<int>(Dir::kWest);
  }
  if (torus_wrap_) {
    const int h = geom_.height();
    const int fwd = ((dst.y - pos_.y) % h + h) % h;
    return fwd <= h - fwd ? static_cast<int>(Dir::kSouth)
                          : static_cast<int>(Dir::kNorth);
  }
  return dst.y > pos_.y ? static_cast<int>(Dir::kSouth)
                        : static_cast<int>(Dir::kNorth);
}

void XyRouter::tick(sim::Cycle now) {
  // 0. Lifecycle tracing: announce inject-queue entries that became
  //    visible this cycle (same contract as DeflectionRouter; skipped
  //    unless the observer opted into hop-level events).
  if (lifecycle_ != nullptr) {
    for (std::size_t i = q_announced_; i < inject_q_.size(); ++i) {
      lifecycle_->on_queue_enter(now, node_id_, inject_q_.peek(i));
    }
    q_announced_ = inject_q_.size();
  }

  // 1. Accept one flit per input link into the input buffers, space
  //    permitting (back-pressure: a full buffer leaves the flit on the
  //    link, which stalls the upstream router's output).
  for (int d = 0; d < kNumDirs; ++d) {
    auto* link = in_[d];
    if (link == nullptr || link->empty()) continue;
    if (buf_[static_cast<std::size_t>(d)].size() <
        static_cast<std::size_t>(cfg_.input_buffer_depth)) {
      buf_[static_cast<std::size_t>(d)].push_back(link->pop());
    }
  }
  // Local injection staging shares the same structure.
  if (!inject_q_.empty() &&
      buf_[kNumDirs].size() <
          static_cast<std::size_t>(cfg_.input_buffer_depth)) {
    Flit f = inject_q_.pop();
    if (q_announced_ > 0) --q_announced_;
    f.inject_cycle = now;
    if (observer_ != nullptr) observer_->on_inject(now, node_id_, f);
    buf_[kNumDirs].push_back(f);
    stats_.inc("xynoc.flits_injected");
  }

  // 2. Switch allocation: each output port (including eject) picks one
  //    requesting input buffer, round-robin for fairness.
  bool out_used[kNumDirs + 1] = {};
  for (int off = 0; off < kNumDirs + 1; ++off) {
    const int b = (rr_ + off) % (kNumDirs + 1);
    auto& q = buf_[static_cast<std::size_t>(b)];
    if (q.empty()) continue;
    const Flit& head = q.front();
    const int port = route(head.dst);
    if (out_used[port]) continue;  // head-of-line blocking, by design
    if (port == kNumDirs) {
      if (!eject_q_.can_push()) continue;
      Flit f = q.front();
      q.pop_front();
      out_used[port] = true;
      stats_.inc("xynoc.flits_delivered");
      ++st_delivered_here_;
      stats_.sample("xynoc.latency", static_cast<double>(now - f.inject_cycle));
      stats_.sample("xynoc.hops", f.hops);
      if (observer_ != nullptr) observer_->on_deliver(now, node_id_, f);
      eject_q_.push(f);
      continue;
    }
    auto* link = out_[port];
    assert(link != nullptr);
    if (!link->can_push()) continue;  // credit: downstream buffer full
    Flit f = q.front();
    q.pop_front();
    f.hops++;
    out_used[port] = true;
    // XY routing is always minimal, so a hop is never a deflection.
    if (lifecycle_ != nullptr) {
      lifecycle_->on_hop(now, node_id_, port, false, f);
    }
    link->push(f);
  }
  rr_ = (rr_ + 1) % (kNumDirs + 1);

  // 3. Occupancy statistics (peak buffering = the area argument).
  const std::size_t occ = buffered();
  if (occ > stats_.get("xynoc.peak_buffered")) {
    stats_.set("xynoc.peak_buffered", occ);
  }

  if (occ > 0 || !inject_q_.empty()) wake();
}

}  // namespace medea::noc
