#include "noc/network.h"

namespace medea::noc {

namespace {
/// See the header comment: capacity 2 is a kernel bookkeeping allowance,
/// not extra buffering; steady-state link occupancy is <= 1 flit.
constexpr std::size_t kLinkCapacity = 2;

Dir opposite(Dir d) {
  switch (d) {
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kSouth: return Dir::kNorth;
    case Dir::kEast: return Dir::kWest;
    case Dir::kWest: return Dir::kEast;
  }
  return d;
}
}  // namespace

Network::Network(sim::Scheduler& sched, const TorusGeometry& geom,
                 const RouterConfig& cfg, std::uint64_t seed)
    : geom_(geom), cfg_(cfg) {
  // Expand the network seed into one private stream per router (see the
  // DeflectionRouter constructor comment: per-router generators keep
  // stochastic tie-breaks independent of within-cycle tick order).
  sim::SplitMix64 streams(seed);
  routers_.reserve(static_cast<std::size_t>(geom_.num_nodes()));
  for (int id = 0; id < geom_.num_nodes(); ++id) {
    routers_.push_back(std::make_unique<DeflectionRouter>(
        sched, geom_, geom_.coord_of(id), cfg, stats_, streams.next()));
  }
  // One unidirectional link per (router, direction).  The link leaving
  // router R through direction d enters neighbour(R, d) through the
  // opposite port.  On 1-wide or 1-tall tori a link can loop back to its
  // own router; the wiring below handles that uniformly.
  for (int id = 0; id < geom_.num_nodes(); ++id) {
    const Coord from = geom_.coord_of(id);
    for (int d = 0; d < kNumDirs; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const Coord to = geom_.neighbor(from, dir);
      auto link = std::make_unique<sim::Fifo<Flit>>(
          sched,
          "link" + from.to_string() + to_string(dir) + "->" + to.to_string(),
          kLinkCapacity);
      routers_[static_cast<std::size_t>(id)]->connect_output(dir, link.get());
      router(to).connect_input(opposite(dir), link.get());
      links_.push_back(std::move(link));
    }
  }
}

void Network::set_observer(FlitObserver* obs) {
  for (auto& r : routers_) r->set_observer(obs);
}

}  // namespace medea::noc
