#include "noc/network.h"

#include <utility>

namespace medea::noc {

namespace {
/// See the header comment: capacity 2 is a kernel bookkeeping allowance,
/// not extra buffering; steady-state link occupancy is <= 1 flit.
constexpr std::size_t kLinkCapacity = 2;

Dir opposite(Dir d) {
  switch (d) {
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kSouth: return Dir::kNorth;
    case Dir::kEast: return Dir::kWest;
    case Dir::kWest: return Dir::kEast;
  }
  return d;
}
}  // namespace

/// Per-shard flit-event buffer.  Routers of one shard record their
/// events here during the parallel dispatch phase; the domain's serial
/// end-of-cycle flush replays every shard's buffer — in shard order,
/// which with contiguous row bands is canonical node order — into the
/// real observer.  Events carry their original cycle, so the observer
/// sees exactly the stream a single-thread run produces.
class Network::ShardEventBuffer final : public FlitObserver {
 public:
  explicit ShardEventBuffer(Network& net) : net_(net) {}

  void on_inject(sim::Cycle now, int node, const Flit& f) override {
    own_.assert_held();  // owning shard's dispatch phase
    events_.push_back({Kind::kInject, now, node, 0, false, f});
  }
  void on_deliver(sim::Cycle now, int node, const Flit& f) override {
    own_.assert_held();  // owning shard's dispatch phase
    events_.push_back({Kind::kDeliver, now, node, 0, false, f});
  }
  void on_queue_enter(sim::Cycle now, int node, const Flit& f) override {
    own_.assert_held();  // owning shard's dispatch phase
    events_.push_back({Kind::kQueueEnter, now, node, 0, false, f});
  }
  void on_hop(sim::Cycle now, int node, int out_port, bool deflected,
              const Flit& f) override {
    own_.assert_held();  // owning shard's dispatch phase
    events_.push_back({Kind::kHop, now, node, out_port, deflected, f});
  }
  bool wants_lifecycle() const override {
    // Forwarded so routers gate hop events exactly as they would with
    // the target attached directly (checked at set_observer time —
    // serial context, hence the shared claim on the network token).
    net_.serial_.assert_shared();
    return net_.obs_target_ != nullptr && net_.obs_target_->wants_lifecycle();
  }

  void flush_to(FlitObserver* obs) {
    // Serial phase on shard 0: the writers (this buffer's shard) are
    // parked at a barrier, so ownership has transferred here.
    own_.assert_held();
    if (obs != nullptr) {
      for (const Event& e : events_) {
        switch (e.kind) {
          case Kind::kInject: obs->on_inject(e.now, e.node, e.flit); break;
          case Kind::kDeliver: obs->on_deliver(e.now, e.node, e.flit); break;
          case Kind::kQueueEnter:
            obs->on_queue_enter(e.now, e.node, e.flit);
            break;
          case Kind::kHop:
            obs->on_hop(e.now, e.node, e.out_port, e.deflected, e.flit);
            break;
        }
      }
    }
    events_.clear();
  }

 private:
  enum class Kind : std::uint8_t { kInject, kDeliver, kQueueEnter, kHop };
  struct Event {
    Kind kind;
    sim::Cycle now;
    int node;
    int out_port;
    bool deflected;
    Flit flit;
  };

  Network& net_;
  /// Alternating ownership: the buffer's shard during dispatch, shard 0
  /// during the serial flush — the phase barrier in between is the
  /// handoff.
  core::Capability own_;
  std::vector<Event> events_ MEDEA_GUARDED_BY(own_);
};

void Network::ShardChannel::relay(void* ctx, std::vector<Flit>& staged) {
  auto* ch = static_cast<ShardChannel*>(ctx);
  // Producer side of the mailbox handoff: the TX FIFO's commit, on the
  // producer shard, before the post-dispatch barrier.  The consumer
  // shard will not touch `mail` until after that barrier.
  ch->xfer.assert_held();
  for (Flit& f : staged) ch->mail.push_back(std::move(f));
}

Network::Network(sim::Scheduler& sched, const TorusGeometry& geom,
                 const RouterConfig& cfg, std::uint64_t seed)
    : geom_(geom), cfg_(cfg) {
  build_single(sched, seed);
}

Network::Network(sim::SimDomain& dom, const TorusGeometry& geom,
                 const RouterConfig& cfg, std::uint64_t seed)
    : geom_(geom), cfg_(cfg) {
  if (!dom.sharded()) {
    // Transparent fallback: a 1-shard domain builds the exact network a
    // plain Scheduler would (same construction order, same RNG draws).
    build_single(dom.shard(0), seed);
    return;
  }
  dom_ = &dom;
  build_sharded(seed);
}

Network::~Network() = default;

void Network::build_single(sim::Scheduler& sched, std::uint64_t seed) {
  serial_.assert_held();  // construction time: single-threaded
  const int n = geom_.num_nodes();
  node_seq_.assign(static_cast<std::size_t>(n), 0);
  node_sched_.assign(static_cast<std::size_t>(n), &sched);
  // Expand the network seed into one private stream per router (see the
  // DeflectionRouter constructor comment: per-router generators keep
  // stochastic tie-breaks independent of within-cycle tick order).
  sim::SplitMix64 streams(seed);
  routers_.reserve(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    routers_.push_back(std::make_unique<DeflectionRouter>(
        sched, geom_, geom_.coord_of(id), cfg_, stats_, streams.next()));
  }
  // One unidirectional link per (router, direction).  The link leaving
  // router R through direction d enters neighbour(R, d) through the
  // opposite port.  On 1-wide or 1-tall tori a link can loop back to its
  // own router; the wiring below handles that uniformly.
  for (int id = 0; id < n; ++id) {
    const Coord from = geom_.coord_of(id);
    for (int d = 0; d < kNumDirs; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const Coord to = geom_.neighbor(from, dir);
      auto link = std::make_unique<sim::Fifo<Flit>>(
          sched,
          "link" + from.to_string() + to_string(dir) + "->" + to.to_string(),
          kLinkCapacity);
      routers_[static_cast<std::size_t>(id)]->connect_output(dir, link.get());
      router(to).connect_input(opposite(dir), link.get());
      links_.push_back(std::move(link));
    }
  }
}

void Network::build_sharded(std::uint64_t seed) {
  const int n = geom_.num_nodes();
  const int num_shards = dom_->num_shards();
  const int height = geom_.height();
  node_seq_.assign(static_cast<std::size_t>(n), 0);
  node_sched_.resize(static_cast<std::size_t>(n));
  shard_of_node_.resize(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    // Contiguous row bands: row r belongs to shard r*S/H, so node ids
    // within a shard are contiguous (canonical-order fan-in relies on
    // this) and band heights differ by at most one row.
    shard_of_node_[static_cast<std::size_t>(id)] =
        static_cast<int>(geom_.coord_of(id).y) * num_shards / height;
  }
  shard_stats_.reserve(static_cast<std::size_t>(num_shards));
  shard_obs_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_stats_.push_back(std::make_unique<sim::StatSet>());
    shard_obs_.push_back(std::make_unique<ShardEventBuffer>(*this));
  }
  shard_channels_.resize(static_cast<std::size_t>(num_shards));
  shard_mail_count_.assign(static_cast<std::size_t>(num_shards), 0);

  // Routers, in node order on every shard: the RNG stream draws and the
  // component construction order (the canonical dispatch key, global via
  // the domain's shared counter) match the single-thread build exactly.
  sim::SplitMix64 streams(seed);
  routers_.reserve(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    const int s = shard_of_node_[static_cast<std::size_t>(id)];
    node_sched_[static_cast<std::size_t>(id)] = &dom_->shard(s);
    routers_.push_back(std::make_unique<DeflectionRouter>(
        dom_->shard(s), geom_, geom_.coord_of(id), cfg_,
        *shard_stats_[static_cast<std::size_t>(s)], streams.next()));
  }

  // Links.  A link whose endpoints share a shard is an ordinary FIFO on
  // that shard's scheduler.  A shard-crossing link (vertical links at
  // band boundaries, torus wrap included) splits into a producer-side
  // TX FIFO relaying into the channel mailbox and a consumer-side RX
  // FIFO the consumer shard's drain phase fills.
  for (int id = 0; id < n; ++id) {
    const Coord from = geom_.coord_of(id);
    const int sp = shard_of_node_[static_cast<std::size_t>(id)];
    for (int d = 0; d < kNumDirs; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const Coord to = geom_.neighbor(from, dir);
      const int to_id = geom_.node_id(to);
      const int sc = shard_of_node_[static_cast<std::size_t>(to_id)];
      const std::string name = "link" + from.to_string() + to_string(dir) +
                               "->" + to.to_string();
      if (sp == sc) {
        auto link = std::make_unique<sim::Fifo<Flit>>(dom_->shard(sp), name,
                                                      kLinkCapacity);
        routers_[static_cast<std::size_t>(id)]->connect_output(dir,
                                                               link.get());
        router(to).connect_input(opposite(dir), link.get());
        links_.push_back(std::move(link));
      } else {
        auto tx = std::make_unique<sim::Fifo<Flit>>(dom_->shard(sp),
                                                    name + ".tx",
                                                    kLinkCapacity);
        auto rx = std::make_unique<sim::Fifo<Flit>>(dom_->shard(sc),
                                                    name + ".rx",
                                                    kLinkCapacity);
        routers_[static_cast<std::size_t>(id)]->connect_output(dir, tx.get());
        router(to).connect_input(opposite(dir), rx.get());  // sets consumer
        auto ch = std::make_unique<ShardChannel>();
        ch->rx = rx.get();
        tx->set_relay(&ShardChannel::relay, ch.get());
        shard_channels_[static_cast<std::size_t>(sc)].push_back(ch.get());
        channels_.push_back(std::move(ch));
        links_.push_back(std::move(tx));
        links_.push_back(std::move(rx));
      }
    }
  }

  for (int s = 0; s < num_shards; ++s) {
    dom_->add_shard_drain(
        s, [this, s](sim::Cycle now) { drain_shard(s, now); });
  }
  dom_->add_cycle_end([this](sim::Cycle) { flush_observer_events(); });
  dom_->add_pre_sample([this] { refresh_stats(); });
}

void Network::drain_shard(int s, sim::Cycle now) {
  for (ShardChannel* ch : shard_channels_[static_cast<std::size_t>(s)]) {
    // Consumer side of the mailbox handoff: shard s's drain phase, after
    // the post-dispatch barrier — the producer's relay writes for this
    // cycle all happen-before this point.
    ch->xfer.assert_held();
    if (ch->mail.empty()) continue;
    shard_mail_count_[static_cast<std::size_t>(s)] += ch->mail.size();
    for (Flit& f : ch->mail) ch->rx->push_committed(std::move(f));
    ch->mail.clear();
    // The wake the producer-side relay skipped: new data visible at
    // now+1, issued on the consumer's own scheduler (shard s).
    sim::Component* consumer = ch->rx->consumer();
    assert(consumer != nullptr);
    dom_->shard(s).wake_at(*consumer, now + 1);
  }
}

void Network::flush_observer_events() {
  serial_.assert_shared();  // domain serial phase (cycle-end hook)
  for (auto& buf : shard_obs_) buf->flush_to(obs_target_);
}

void Network::refresh_stats() {
  // Domain serial phase (pre-sample hook) or external post-run call —
  // either way no shard is writing its StatSet.
  serial_.assert_held();
  if (shard_stats_.empty()) return;
  stats_.clear();
  for (const auto& ss : shard_stats_) stats_.merge(*ss);
}

std::uint64_t Network::mailbox_flits() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : shard_mail_count_) total += c;
  return total;
}

void Network::set_observer(FlitObserver* obs) {
  serial_.assert_held();  // wiring time: no run in flight
  obs_target_ = obs;
  if (dom_ == nullptr || shard_obs_.empty()) {
    for (auto& r : routers_) r->set_observer(obs);
    return;
  }
  // Sharded: routers record into their shard's buffer; the domain's
  // serial phase replays the buffers into `obs` in canonical order.
  for (int id = 0; id < num_nodes(); ++id) {
    FlitObserver* target =
        obs == nullptr
            ? nullptr
            : shard_obs_[static_cast<std::size_t>(
                             shard_of_node_[static_cast<std::size_t>(id)])]
                  .get();
    routers_[static_cast<std::size_t>(id)]->set_observer(target);
  }
}

}  // namespace medea::noc
