#include "noc/xy_network.h"

namespace medea::noc {

namespace {
constexpr std::size_t kLinkCapacity = 2;

Dir opposite(Dir d) {
  switch (d) {
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kSouth: return Dir::kNorth;
    case Dir::kEast: return Dir::kWest;
    case Dir::kWest: return Dir::kEast;
  }
  return d;
}
}  // namespace

XyNetwork::XyNetwork(sim::Scheduler& sched, const TorusGeometry& geom,
                     const XyRouterConfig& cfg, bool torus_wrap)
    : geom_(geom), cfg_(cfg), torus_wrap_(torus_wrap), sched_(sched) {
  node_seq_.assign(static_cast<std::size_t>(geom_.num_nodes()), 0);
  routers_.reserve(static_cast<std::size_t>(geom_.num_nodes()));
  for (int id = 0; id < geom_.num_nodes(); ++id) {
    routers_.push_back(std::make_unique<XyRouter>(
        sched, geom_, geom_.coord_of(id), cfg, torus_wrap, stats_));
  }
  for (int id = 0; id < geom_.num_nodes(); ++id) {
    const Coord from = geom_.coord_of(id);
    for (int d = 0; d < kNumDirs; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const Coord to = geom_.neighbor(from, dir);
      auto link = std::make_unique<sim::Fifo<Flit>>(
          sched,
          "xylink" + from.to_string() + to_string(dir) + "->" + to.to_string(),
          kLinkCapacity);
      routers_[static_cast<std::size_t>(id)]->connect_output(dir, link.get());
      router(geom_.node_id(to)).connect_input(opposite(dir), link.get());
      links_.push_back(std::move(link));
    }
  }
}

void XyNetwork::set_observer(FlitObserver* obs) {
  for (auto& r : routers_) r->set_observer(obs);
}

std::size_t XyNetwork::total_buffered() const {
  std::size_t n = 0;
  for (const auto& r : routers_) n += r->buffered();
  return n;
}

}  // namespace medea::noc
