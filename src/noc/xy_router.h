#pragma once

#include <array>
#include <deque>
#include <vector>

#include "noc/coord.h"
#include "noc/flit.h"
#include "sim/fifo.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

/// \file xy_router.h
/// Baseline comparison router: input-buffered, dimension-ordered (X then
/// Y) routing with credit-style back-pressure — the conventional
/// alternative the paper argues against when motivating deflection
/// routing (§II-A: wormhole-class routers need per-port buffers, create
/// head-of-line blocking on long packets, and require a back-pressure
/// mechanism; their storage is far above the theoretical minimum).
///
/// This model keeps the same link/flit fabric as DeflectionRouter so the
/// two can be compared head-to-head on identical traffic:
///  * each input port has a FIFO of configurable depth,
///  * a flit moves only when the downstream buffer has space (credit
///    check on the shared link FIFO),
///  * XY dimension order makes routing deterministic and deadlock-free
///    on a mesh; on a torus we use the shortest direction per axis, which
///    together with buffering can deadlock on cyclic dependencies — the
///    comparison benches therefore run the XY router on mesh geometry,
///    exactly the configuration contemporary NoCs used.
///
/// In-order delivery is a property of this router (single path per
/// source/destination pair), which is why conventional designs never
/// needed the paper's sequence-number machinery.

namespace medea::noc {

struct XyRouterConfig {
  int input_buffer_depth = 4;  ///< flits per input port (the area cost)
  int eject_per_cycle = 1;
  int inject_queue_depth = 2;
  int eject_queue_depth = 4;

  bool operator==(const XyRouterConfig&) const = default;
};

class XyRouter : public sim::Component {
 public:
  XyRouter(sim::Scheduler& sched, const TorusGeometry& geom, Coord pos,
           const XyRouterConfig& cfg, bool torus_wrap, sim::StatSet& stats);

  Coord pos() const { return pos_; }

  void connect_input(Dir d, sim::Fifo<Flit>* link);
  void connect_output(Dir d, sim::Fifo<Flit>* link);

  sim::Fifo<Flit>& inject() { return inject_q_; }
  sim::Fifo<Flit>& eject() { return eject_q_; }

  /// Attach (or detach with nullptr) a flit-event observer — the same
  /// hook DeflectionRouter has, so the trace recorder can capture the
  /// buffered-XY baseline for record/replay comparison studies.  Hop-
  /// level events fire only for observers that want them (see
  /// FlitObserver::wants_lifecycle), cached here off the tick path.
  void set_observer(FlitObserver* obs) {
    observer_ = obs;
    lifecycle_ = (obs != nullptr && obs->wants_lifecycle()) ? obs : nullptr;
  }

  void tick(sim::Cycle now) override;

  /// Total flits currently buffered in this router (occupancy metric —
  /// the storage the paper's deflection design avoids).
  std::size_t buffered() const;

 private:
  /// XY dimension-ordered next hop toward dst (X first, then Y).
  /// Returns kNumDirs when dst == pos_ (eject).
  int route(Coord dst) const;

  const TorusGeometry& geom_;
  Coord pos_;
  int node_id_;
  XyRouterConfig cfg_;
  bool torus_wrap_;
  sim::StatSet& stats_;
  FlitObserver* observer_ = nullptr;
  FlitObserver* lifecycle_ = nullptr;  ///< observer_ iff it wants hop events
  std::size_t q_announced_ = 0;  ///< inject-queue entries already announced

  /// Per-router delivery counter resolved once at construction, the
  /// source of telemetry's spatial ejection heatmaps (the fabric-wide
  /// counters above it stay string-keyed; this one is on the tick path).
  sim::Stat& st_delivered_here_;

  std::array<sim::Fifo<Flit>*, kNumDirs> in_{};
  std::array<sim::Fifo<Flit>*, kNumDirs> out_{};
  // Internal input buffers (index kNumDirs = local inject staging).
  std::array<std::deque<Flit>, kNumDirs + 1> buf_;
  sim::Fifo<Flit> inject_q_;
  sim::Fifo<Flit> eject_q_;
  int rr_ = 0;  // round-robin pointer over input buffers per output port
};

}  // namespace medea::noc
