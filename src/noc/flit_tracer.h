#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "noc/flit.h"
#include "sim/types.h"

/// \file flit_tracer.h
/// Sampled per-flit lifecycle tracing: the event-domain complement to the
/// counter-domain telemetry Sampler (sim/telemetry.h).
///
/// FlitTracer is a FlitObserver that records, for every sampled packet,
/// the full lifecycle — inject-queue enter, fabric inject, every hop
/// (with the router's own deflected-vs-productive verdict), delivery —
/// into compact columnar hop chains (struct-of-arrays, delta-free: four
/// parallel vectors shared by all flits, each flit owning a contiguous
/// [first_hop, first_hop + hop_count) slice after finalize()).
///
/// Sampling is 1-in-N by a hash of the flit uid, so the sampled
/// population is unbiased w.r.t. injection time and source node, and —
/// because uids are deterministic — identical across reruns, schedulers
/// and fabrics of the same seed.
///
/// Determinism is load-bearing: the tracer is strictly read-only (it
/// never touches the simulation, only observes), so a traced run is
/// bit-identical to an untraced one; the differential tests assert this.
///
/// The finalized FlitTrace answers the forensic questions aggregate
/// counters cannot: per-flit latency decomposition (source queueing vs
/// in-network vs ejection wait), hop/deflection histograms, per-link
/// utilization heatmaps, and the full hop chain of the worst packets.
/// Exporters (Perfetto flow events, JSON, text reports) live in
/// workload/flit_report.h and workload/timeline.h.

namespace medea::telemetry {

/// One hop-chain entry: the flit left `node` on `port` during `cycle`.
struct TracedHop {
  sim::Cycle cycle = 0;
  std::uint16_t node = 0;
  std::uint8_t port = 0;       ///< noc::Dir as int
  std::uint8_t deflected = 0;  ///< 1 when the port was not productive
};

/// Per-packet lifecycle record.  Cycles use sim::kNeverCycle for
/// "never observed" (e.g. a flit still in flight when the run ended).
struct TracedFlit {
  std::uint32_t uid = 0;
  std::uint16_t src = 0;  ///< linear node id of the injecting router
  std::uint16_t dst = 0;  ///< linear node id of the destination
  sim::Cycle enqueue_cycle = sim::kNeverCycle;  ///< inject-queue enter
  sim::Cycle inject_cycle = sim::kNeverCycle;   ///< entered the fabric
  sim::Cycle deliver_cycle = sim::kNeverCycle;  ///< placed in eject queue
  std::uint32_t first_hop = 0;  ///< index into the FlitTrace hop columns
  std::uint32_t hop_count = 0;
  std::uint16_t deflections = 0;  ///< final Flit::deflections at delivery
  bool complete = false;          ///< injected *and* delivered

  bool operator==(const TracedFlit&) const = default;
};

/// Per-flit latency split: enqueue -> inject (source queueing), inject ->
/// first cycle at the destination router (in-network), first cycle at the
/// destination -> delivery (ejection wait: failed-eject deflection loops
/// on the hot-potato fabric, destination input buffering on XY).
struct LatencyDecomposition {
  sim::Cycle source_queue = 0;
  sim::Cycle network = 0;
  sim::Cycle eject_wait = 0;

  sim::Cycle total() const { return source_queue + network + eject_wait; }
};

/// The finalized, immutable trace: flits sorted by (inject_cycle, uid),
/// hop chains compacted into shared columnar arrays.
struct FlitTrace {
  std::uint32_t sample_every = 0;  ///< 0 = tracing was off
  int width = 0;
  int height = 0;
  sim::Cycle run_cycles = 0;
  std::uint64_t packets_seen = 0;  ///< all injects observed, sampled or not

  std::vector<TracedFlit> flits;
  // Hop columns (one entry per traversed link, across all flits).
  std::vector<sim::Cycle> hop_cycle;
  std::vector<std::uint16_t> hop_node;
  std::vector<std::uint8_t> hop_port;
  std::vector<std::uint8_t> hop_deflected;

  bool enabled() const { return sample_every != 0; }
  int num_nodes() const { return width * height; }
  TracedHop hop(std::uint32_t i) const {
    return {hop_cycle[i], hop_node[i], hop_port[i], hop_deflected[i]};
  }

  /// Latency split for one flit (zeros unless f.complete; a missing
  /// enqueue observation yields source_queue == 0).
  LatencyDecomposition decompose(const TracedFlit& f) const;

  /// Deflections along f's recorded hop chain (== f.deflections for a
  /// complete flit; the invariant tests assert that).
  std::uint32_t chain_deflections(const TracedFlit& f) const;

  /// The k highest-latency complete flits (inject -> deliver), latency
  /// descending, uid ascending on ties.
  std::vector<const TracedFlit*> worst(int k) const;

  /// {hops -> packets} over complete flits.
  std::map<std::uint32_t, std::uint64_t> hop_histogram() const;
  /// {deflections -> packets} over complete flits.
  std::map<std::uint32_t, std::uint64_t> deflection_histogram() const;

  /// Per-link traversal counts, indexed [node * kNumDirs + port].
  std::vector<std::uint64_t> link_flits() const;
  /// Per-link deflected-traversal counts, same indexing.
  std::vector<std::uint64_t> link_deflections() const;

  /// Sum of deflected hop flags across every recorded chain.  With
  /// sample_every == 1 on a drained deflection run this equals the
  /// fabric's noc.deflections_total counter.
  std::uint64_t total_deflections() const;
  /// Highest per-flit deflection count among complete flits.
  std::uint32_t max_deflections() const;

  bool operator==(const FlitTrace&) const = default;
};

/// Deterministic uid -> sample decision (1-in-N; N <= 1 samples all).
bool flit_sampled(std::uint32_t uid, std::uint32_t sample_every);

/// The recording observer.  Attach to a fabric (usually via the engine's
/// FlitObserverTee), run, then finalize() and take() the trace.
class FlitTracer final : public noc::FlitObserver {
 public:
  FlitTracer(std::uint32_t sample_every, int width, int height);

  bool wants_lifecycle() const override { return true; }
  void on_queue_enter(sim::Cycle now, int node, const noc::Flit& f) override;
  void on_inject(sim::Cycle now, int node, const noc::Flit& f) override;
  void on_hop(sim::Cycle now, int node, int out_port, bool deflected,
              const noc::Flit& f) override;
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override;

  /// Compact the per-flit chains into the columnar layout and sort the
  /// flit table by (inject_cycle, uid).  Idempotent.
  void finalize(sim::Cycle run_cycles);

  /// The finalized trace (finalize() first).
  const FlitTrace& trace() const { return trace_; }
  FlitTrace take() { return std::move(trace_); }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  /// Record index for uid, creating one if needed; kNil when unsampled.
  std::uint32_t record_for(std::uint32_t uid);

  std::uint32_t dst_id(const noc::Flit& f) const;

  bool finalized_ = false;
  FlitTrace trace_;

  // Recording state: hop events arrive interleaved across flits, so each
  // record keeps a linked chain into a shared hop pool; finalize()
  // compacts the chains into the trace's contiguous columns.
  std::unordered_map<std::uint32_t, std::uint32_t> by_uid_;
  std::vector<TracedFlit> recs_;
  std::vector<std::uint32_t> chain_head_;
  std::vector<std::uint32_t> chain_tail_;
  std::vector<TracedHop> pool_;
  std::vector<std::uint32_t> pool_next_;
};

}  // namespace medea::telemetry
