#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/coord.h"
#include "sim/types.h"

/// \file flit.h
/// The MEDEA flit and the bit-exact three-level packet format of Fig. 5.
///
/// The paper stacks three protocol levels inside one 64-bit flit:
///
///   level 1 (network):     V(1) X(2) Y(2)            — used by switches
///   level 2 (bridge):      TYPE(3) SUBTYPE(2) SEQNUM(4)
///   level 3 (application): BURST(2) SRCID(8) DATA(32)
///
/// The paper's RTL uses a 4-bit SRCID (16 nodes, enough for the 4x4
/// evaluation fabric); this model widens SRCID to 8 bits so 8x8+ tori are
/// representable (§IV discusses scaling), which still leaves the 64-bit
/// flit with headroom.  Widths for X/Y grow with network size — 2 bits
/// per coordinate suffice for the paper's 4x4 folded torus.
///
/// The simulator carries a decoded struct for speed but provides
/// encode()/decode() so tests can guarantee the struct stays faithful to
/// the wire format (everything the model does is expressible in the RTL
/// encoding; simulation-only metadata such as inject timestamps is kept
/// outside the encoded fields).

namespace medea::noc {

/// Level-2 TYPE field (3 bits): the seven packet types of §II-D.
enum class FlitType : std::uint8_t {
  kSingleRead = 0,
  kSingleWrite = 1,
  kBlockRead = 2,
  kBlockWrite = 3,
  kLock = 4,
  kUnlock = 5,
  kMessage = 6,
};

/// Level-2 SUBTYPE field (2 bits).
/// For shared-memory transactions: Ack / Nack / Address / Data.
/// For message-passing flits the same encoding distinguishes requests
/// from generic data packets (paper §II-D): kMpRequest aliases kAddress,
/// kMpData aliases kData.
enum class FlitSubType : std::uint8_t {
  kAck = 0,
  kNack = 1,
  kAddress = 2,
  kData = 3,
};

inline constexpr FlitSubType kMpRequest = FlitSubType::kAddress;
inline constexpr FlitSubType kMpData = FlitSubType::kData;

const char* to_string(FlitType t);
const char* to_string(FlitSubType t);

/// Field widths of the wire format (Fig. 5).
struct FlitFormat {
  static constexpr int kValidBits = 1;
  static constexpr int kCoordBits = 2;   // per coordinate, 4x4 torus
  static constexpr int kTypeBits = 3;
  static constexpr int kSubTypeBits = 2;
  static constexpr int kSeqNumBits = 4;
  static constexpr int kBurstBits = 2;
  static constexpr int kSrcIdBits = 8;
  static constexpr int kDataBits = 32;
};

/// Maximum flits per logic packet, limited by the SEQNUM field width.
inline constexpr int kMaxPacketFlits = 1 << FlitFormat::kSeqNumBits;

/// Simulation-only flit uid layout for per-node allocation:
/// uid = (node << kFlitUidSeqBits) | seq, seq starting at 1.  Endpoint
/// uid draws depend only on the node's own injection history — never on
/// within-cycle tick order or shard interleaving — which keeps the
/// router's oldest-first uid tie-break bit-identical across kernels.
/// 20 sequence bits leave 12 node bits: up to 4096 nodes and ~1M flits
/// per node per run (both asserted where used).
inline constexpr std::uint32_t kFlitUidSeqBits = 20;

/// One 64-bit flit, decoded.
struct Flit {
  // --- encoded fields (Fig. 5) ---
  bool valid = false;
  Coord dst{};                       // level-1 X, Y
  FlitType type = FlitType::kMessage;
  FlitSubType subtype = FlitSubType::kData;
  std::uint8_t seq_num = 0;          // 4 bits: offset within logic packet
  std::uint8_t burst_size = 0;       // 2 bits: flits in this logic packet - 1
  std::uint8_t src_id = 0;           // 8 bits: source node id
  std::uint32_t data = 0;            // 32-bit payload (address or data word)

  // --- simulation-only metadata (not on the wire) ---
  sim::Cycle inject_cycle = 0;       // when the flit entered the network
  std::uint32_t uid = 0;             // unique id for tracing/debug
  std::uint16_t hops = 0;            // link traversals so far
  std::uint16_t deflections = 0;     // unproductive hops so far

  std::string to_string() const;
};

/// Pack the wire-visible fields of a flit into a 64-bit word.
/// Coordinates wider than FlitFormat::kCoordBits bits require the wide
/// encoding (see encode_flit_wide); the default matches the paper's 4x4.
std::uint64_t encode_flit(const Flit& f,
                          int coord_bits = FlitFormat::kCoordBits);

/// Inverse of encode_flit.  Simulation metadata comes back zeroed.
Flit decode_flit(std::uint64_t word, int coord_bits = FlitFormat::kCoordBits);

/// Observer of flit-level network events, called synchronously from a
/// router's tick (both the deflection router and the buffered-XY
/// baseline fire it, so either fabric can be traced).  Used by the
/// workload trace recorder and by determinism tests; null (the default)
/// costs one pointer test per event.
///
/// on_inject fires when a flit leaves the local inject queue and enters
/// the switched fabric (its inject_cycle has just been stamped);
/// on_deliver fires when a flit is placed into the destination's eject
/// queue.  `node` is the linear node id of the router involved.
///
/// Hop-level lifecycle events (defaulted, so pre-existing observers stay
/// source-compatible):
///  * on_queue_enter fires the first cycle a flit is visible to a router
///    in its local inject queue (queue *leave* coincides with on_inject);
///  * on_hop fires when a router emits a flit on an output link —
///    `out_port` is the Dir as an int, `deflected` true when the port was
///    not productive toward the destination (always false on the XY
///    baseline).  The flit is observed post-update (hops/deflections
///    already counted for this traversal).
///
/// Hop-level events are gated on wants_lifecycle(): routers cache the
/// answer at set_observer() time and skip the per-hop virtual calls (and
/// the inject-queue scan) entirely for observers that keep the default,
/// so a measurement-only or recorder-only run pays exactly what it did
/// before these events existed.
class FlitObserver {
 public:
  virtual ~FlitObserver() = default;
  virtual void on_inject(sim::Cycle now, int node, const Flit& f) = 0;
  virtual void on_deliver(sim::Cycle now, int node, const Flit& f) = 0;

  virtual void on_queue_enter(sim::Cycle /*now*/, int /*node*/,
                              const Flit& /*f*/) {}
  virtual void on_hop(sim::Cycle /*now*/, int /*node*/, int /*out_port*/,
                      bool /*deflected*/, const Flit& /*f*/) {}

  /// Opt-in for the hop-level events above.  Checked once, when the
  /// observer is attached — not per event.
  virtual bool wants_lifecycle() const { return false; }
};

/// Fan-out observer: forwards every event to each added observer in add()
/// order, so recorder + measurement + tracer compose without manual
/// forward-pointer chaining.  add(nullptr) is a no-op; the tee reports
/// wants_lifecycle() when any member does (members that don't still
/// receive the hop-level calls — they inherit the no-op defaults).
class FlitObserverTee final : public FlitObserver {
 public:
  void add(FlitObserver* obs) {
    if (obs != nullptr) obs_.push_back(obs);
  }
  bool empty() const { return obs_.empty(); }

  void on_inject(sim::Cycle now, int node, const Flit& f) override {
    for (FlitObserver* o : obs_) o->on_inject(now, node, f);
  }
  void on_deliver(sim::Cycle now, int node, const Flit& f) override {
    for (FlitObserver* o : obs_) o->on_deliver(now, node, f);
  }
  void on_queue_enter(sim::Cycle now, int node, const Flit& f) override {
    for (FlitObserver* o : obs_) o->on_queue_enter(now, node, f);
  }
  void on_hop(sim::Cycle now, int node, int out_port, bool deflected,
              const Flit& f) override {
    for (FlitObserver* o : obs_) o->on_hop(now, node, out_port, deflected, f);
  }
  bool wants_lifecycle() const override {
    for (const FlitObserver* o : obs_) {
      if (o->wants_lifecycle()) return true;
    }
    return false;
  }

 private:
  std::vector<FlitObserver*> obs_;
};

}  // namespace medea::noc
