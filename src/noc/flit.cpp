#include "noc/flit.h"

#include <cassert>
#include <sstream>

namespace medea::noc {

const char* to_string(FlitType t) {
  switch (t) {
    case FlitType::kSingleRead: return "SingleRead";
    case FlitType::kSingleWrite: return "SingleWrite";
    case FlitType::kBlockRead: return "BlockRead";
    case FlitType::kBlockWrite: return "BlockWrite";
    case FlitType::kLock: return "Lock";
    case FlitType::kUnlock: return "Unlock";
    case FlitType::kMessage: return "Message";
  }
  return "?";
}

const char* to_string(FlitSubType t) {
  switch (t) {
    case FlitSubType::kAck: return "Ack";
    case FlitSubType::kNack: return "Nack";
    case FlitSubType::kAddress: return "Address";
    case FlitSubType::kData: return "Data";
  }
  return "?";
}

std::string Flit::to_string() const {
  std::ostringstream os;
  os << "Flit{uid=" << uid << " dst=" << dst.to_string() << " "
     << noc::to_string(type) << "/" << noc::to_string(subtype)
     << " seq=" << int(seq_num) << " burst=" << int(burst_size)
     << " src=" << int(src_id) << " data=0x" << std::hex << data << std::dec
     << " hops=" << hops << " defl=" << deflections << "}";
  return os.str();
}

namespace {

// Little-endian bit packing helper: appends `bits` bits of `value` at
// position `*pos` and advances it.
void put_bits(std::uint64_t& word, int& pos, std::uint64_t value, int bits) {
  assert(bits > 0 && bits <= 64);
  assert(pos + bits <= 64);
  const std::uint64_t mask = bits == 64 ? ~0ull : ((1ull << bits) - 1);
  assert((value & ~mask) == 0 && "field value wider than its wire slot");
  word |= (value & mask) << pos;
  pos += bits;
}

std::uint64_t get_bits(std::uint64_t word, int& pos, int bits) {
  const std::uint64_t mask = bits == 64 ? ~0ull : ((1ull << bits) - 1);
  const std::uint64_t v = (word >> pos) & mask;
  pos += bits;
  return v;
}

}  // namespace

std::uint64_t encode_flit(const Flit& f, int coord_bits) {
  std::uint64_t w = 0;
  int pos = 0;
  put_bits(w, pos, f.valid ? 1 : 0, FlitFormat::kValidBits);
  put_bits(w, pos, f.dst.x, coord_bits);
  put_bits(w, pos, f.dst.y, coord_bits);
  put_bits(w, pos, static_cast<std::uint64_t>(f.type), FlitFormat::kTypeBits);
  put_bits(w, pos, static_cast<std::uint64_t>(f.subtype),
           FlitFormat::kSubTypeBits);
  put_bits(w, pos, f.seq_num, FlitFormat::kSeqNumBits);
  put_bits(w, pos, f.burst_size, FlitFormat::kBurstBits);
  put_bits(w, pos, f.src_id, FlitFormat::kSrcIdBits);
  put_bits(w, pos, f.data, FlitFormat::kDataBits);
  return w;
}

Flit decode_flit(std::uint64_t word, int coord_bits) {
  Flit f;
  int pos = 0;
  f.valid = get_bits(word, pos, FlitFormat::kValidBits) != 0;
  f.dst.x = static_cast<std::uint8_t>(get_bits(word, pos, coord_bits));
  f.dst.y = static_cast<std::uint8_t>(get_bits(word, pos, coord_bits));
  f.type = static_cast<FlitType>(get_bits(word, pos, FlitFormat::kTypeBits));
  f.subtype =
      static_cast<FlitSubType>(get_bits(word, pos, FlitFormat::kSubTypeBits));
  f.seq_num =
      static_cast<std::uint8_t>(get_bits(word, pos, FlitFormat::kSeqNumBits));
  f.burst_size =
      static_cast<std::uint8_t>(get_bits(word, pos, FlitFormat::kBurstBits));
  f.src_id =
      static_cast<std::uint8_t>(get_bits(word, pos, FlitFormat::kSrcIdBits));
  f.data =
      static_cast<std::uint32_t>(get_bits(word, pos, FlitFormat::kDataBits));
  return f;
}

}  // namespace medea::noc
