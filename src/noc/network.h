#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "noc/coord.h"
#include "noc/flit.h"
#include "noc/router.h"
#include "sim/domain.h"
#include "sim/fifo.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

/// \file network.h
/// The 2-D folded-torus NoC: routers plus inter-router links.
///
/// Network owns every DeflectionRouter and every link FIFO and exposes the
/// local inject/eject queues that network interfaces (the TIE port, the
/// pif2NoC bridge and the MPMMU's interface) attach to.
///
/// Links are single-flit channels: a flit pushed at cycle T arrives at the
/// downstream router at T+1, giving the one-cycle-per-hop latency the
/// paper's switch RTL has.  (The FIFO capacity is 2 purely because of the
/// kernel's pop-frees-space-next-cycle bookkeeping; steady-state occupancy
/// is at most one flit, which tests assert.)
///
/// ## Sharded construction (sim::SimDomain)
///
/// The domain-based constructor partitions the torus into contiguous row
/// bands, one per shard: every router, link and local queue of a band
/// lives on that shard's scheduler, and the vertical links crossing a
/// band boundary (torus wrap included) are split into a producer-side
/// FIFO that relays into a per-edge SPSC mailbox and a consumer-side
/// FIFO the domain's drain phase fills (see sim/domain.h for the phase
/// protocol).  Row bands keep node ids contiguous per shard, which is
/// what makes shard-ordered observer fan-in reproduce the canonical
/// global event order bit-for-bit.  Per-shard StatSets keep the tick
/// path race-free; stats() exposes the shard-merged aggregate, rebuilt
/// by refresh_stats() (run helpers call it after a run; telemetry
/// sampling refreshes automatically through the domain's pre-sample
/// hook).  Deflection links never back-pressure (can_push() is an
/// assert), so the relay split is timing-exact.
///
/// Flit uids are assigned per source node ((node << 20) | seq) so uid
/// allocation — which feeds the router's oldest-first tie-break — never
/// depends on within-cycle interleaving; single-thread and sharded runs
/// therefore draw identical uid streams.  PEs/MPMMU traffic (app runs,
/// always single-shard) keeps the global next_flit_uid() counter.

namespace medea::noc {

class Network {
 public:
  Network(sim::Scheduler& sched, const TorusGeometry& geom,
          const RouterConfig& cfg = {}, std::uint64_t seed = 1);

  /// Sharded construction: partition the torus across `dom`'s shards in
  /// contiguous row bands.  With a single-shard domain this is exactly
  /// the Scheduler constructor.
  Network(sim::SimDomain& dom, const TorusGeometry& geom,
          const RouterConfig& cfg = {}, std::uint64_t seed = 1);

  // Out of line: unique_ptr members over types declared below.
  ~Network();

  const TorusGeometry& geometry() const { return geom_; }
  int num_nodes() const { return geom_.num_nodes(); }

  /// Router configuration this network was built with (persisted into
  /// trace headers; replay verifies it against the recording).
  const RouterConfig& config() const { return cfg_; }

  /// Local-port access for the node's network interface.
  sim::Fifo<Flit>& inject(int node_id) { return router(node_id).inject(); }
  sim::Fifo<Flit>& eject(int node_id) { return router(node_id).eject(); }
  sim::Fifo<Flit>& inject(Coord c) { return inject(geom_.node_id(c)); }
  sim::Fifo<Flit>& eject(Coord c) { return eject(geom_.node_id(c)); }

  DeflectionRouter& router(int node_id) { return *routers_[node_id]; }
  DeflectionRouter& router(Coord c) { return router(geom_.node_id(c)); }

  /// Shard that owns `node_id`'s row band (always 0 when built on a
  /// plain Scheduler or a single-shard domain).
  int shard_of(int node_id) const {
    return shard_of_node_.empty() ? 0 : shard_of_node_[node_id];
  }

  /// The scheduler `node_id`'s components run on — endpoints attached
  /// to a node must be constructed against this scheduler.
  sim::Scheduler& sched_of(int node_id) {
    return *node_sched_[static_cast<std::size_t>(node_id)];
  }

  /// Shard-merged aggregate statistics.  Live in single-shard mode; in
  /// sharded mode a snapshot — refresh_stats() rebuilds it (run helpers
  /// call it after the run, the telemetry pre-sample hook during it).
  sim::StatSet& stats() {
    serial_.assert_held();  // external or domain-serial context only
    return stats_;
  }
  const sim::StatSet& stats() const {
    serial_.assert_shared();  // external or domain-serial context only
    return stats_;
  }

  /// Rebuild stats() from the per-shard sets (no-op in single mode).
  void refresh_stats();

  /// Flits that crossed a shard boundary through a mailbox (0 in single
  /// mode) — the bench's cross-shard traffic metric.
  std::uint64_t mailbox_flits() const;
  /// Shard-boundary channel count (0 in single mode).
  std::size_t num_shard_channels() const { return channels_.size(); }

  /// Attach a flit-event observer to every router (nullptr detaches).
  /// The workload trace recorder and determinism tests hang off this.
  /// In sharded mode events are buffered per shard and replayed to the
  /// observer in canonical order from the domain's serial phase.
  void set_observer(FlitObserver* obs);

  /// Fresh unique flit id (for tracing and deterministic tie-breaks) —
  /// the global stream used by the PE/MPMMU interfaces (app runs,
  /// single-shard by construction).
  std::uint32_t next_flit_uid() { return next_uid_++; }

  /// Fresh unique flit id from `node`'s private stream:
  /// (node << 20) | per-node sequence.  Synthetic traffic uses this so
  /// uid allocation is independent of within-cycle interleaving — the
  /// sharded kernel's bit-identity depends on it.
  std::uint32_t node_flit_uid(int node) {
    auto& seq = node_seq_[static_cast<std::size_t>(node)];
    ++seq;
    assert(seq < (1u << kFlitUidSeqBits) &&
           "per-node flit uid space exhausted");
    return (static_cast<std::uint32_t>(node) << kFlitUidSeqBits) | seq;
  }

  /// Reserve uid space: make the next next_flit_uid() return at least
  /// `floor`.  Trace replay uses this so re-injected flits keep their
  /// recorded uids without colliding with freshly allocated ones.
  void reserve_flit_uids(std::uint32_t floor) {
    if (floor > next_uid_) next_uid_ = floor;
  }

 private:
  /// One shard-boundary link: the producer-side FIFO relays committed
  /// flits into `mail`; the consumer shard's drain phase moves them
  /// into `rx` and wakes its consumer at t+1.
  ///
  /// `mail` is the SPSC mailbox of the sharded kernel: the producer
  /// shard appends during its parallel phase (via relay, from the TX
  /// FIFO's commit), the consumer shard drains after the post-dispatch
  /// barrier.  Writer and reader are always separated by that barrier —
  /// the `xfer` token records the handoff for clang's analysis.
  struct ShardChannel {
    core::Capability xfer;  ///< barrier-handed-off mailbox ownership
    sim::Fifo<Flit>* rx = nullptr;
    std::vector<Flit> mail MEDEA_GUARDED_BY(xfer);
    static void relay(void* ctx, std::vector<Flit>& staged);
  };

  /// Per-shard observer buffer: records the shard's flit events during
  /// the parallel phase, replays them to the real observer from the
  /// domain's serial flush.
  class ShardEventBuffer;

  void build_single(sim::Scheduler& sched, std::uint64_t seed);
  void build_sharded(std::uint64_t seed);
  void drain_shard(int s, sim::Cycle now);
  void flush_observer_events();

  /// External single-thread / domain-serial-phase context: the merged
  /// stats snapshot and the observer target are only touched while no
  /// shard is dispatching (wiring time, the serial phase, or after the
  /// run) — never from the parallel phase.
  core::Capability serial_;

  TorusGeometry geom_;
  RouterConfig cfg_;
  sim::StatSet stats_ MEDEA_GUARDED_BY(serial_);
  std::vector<std::unique_ptr<DeflectionRouter>> routers_;
  std::vector<std::unique_ptr<sim::Fifo<Flit>>> links_;
  std::uint32_t next_uid_ = 1;
  std::vector<std::uint32_t> node_seq_;

  // --- sharded-mode state (empty / unused in single mode) ---
  sim::SimDomain* dom_ = nullptr;
  std::vector<sim::Scheduler*> node_sched_;  ///< per node (both modes)
  std::vector<int> shard_of_node_;
  std::vector<std::unique_ptr<sim::StatSet>> shard_stats_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  std::vector<std::vector<ShardChannel*>> shard_channels_;  ///< per shard
  /// Per-shard mailbox-flit tallies: slot s is written only by shard
  /// s's drain phase and read after the run — per-slot ownership below
  /// the analysis's granularity, so documented rather than annotated.
  std::vector<std::uint64_t> shard_mail_count_;
  std::vector<std::unique_ptr<ShardEventBuffer>> shard_obs_;
  FlitObserver* obs_target_ MEDEA_GUARDED_BY(serial_) = nullptr;
};

}  // namespace medea::noc
