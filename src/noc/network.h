#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/coord.h"
#include "noc/flit.h"
#include "noc/router.h"
#include "sim/fifo.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

/// \file network.h
/// The 2-D folded-torus NoC: routers plus inter-router links.
///
/// Network owns every DeflectionRouter and every link FIFO and exposes the
/// local inject/eject queues that network interfaces (the TIE port, the
/// pif2NoC bridge and the MPMMU's interface) attach to.
///
/// Links are single-flit channels: a flit pushed at cycle T arrives at the
/// downstream router at T+1, giving the one-cycle-per-hop latency the
/// paper's switch RTL has.  (The FIFO capacity is 2 purely because of the
/// kernel's pop-frees-space-next-cycle bookkeeping; steady-state occupancy
/// is at most one flit, which tests assert.)

namespace medea::noc {

class Network {
 public:
  Network(sim::Scheduler& sched, const TorusGeometry& geom,
          const RouterConfig& cfg = {}, std::uint64_t seed = 1);

  const TorusGeometry& geometry() const { return geom_; }
  int num_nodes() const { return geom_.num_nodes(); }

  /// Router configuration this network was built with (persisted into
  /// trace headers; replay verifies it against the recording).
  const RouterConfig& config() const { return cfg_; }

  /// Local-port access for the node's network interface.
  sim::Fifo<Flit>& inject(int node_id) { return router(node_id).inject(); }
  sim::Fifo<Flit>& eject(int node_id) { return router(node_id).eject(); }
  sim::Fifo<Flit>& inject(Coord c) { return inject(geom_.node_id(c)); }
  sim::Fifo<Flit>& eject(Coord c) { return eject(geom_.node_id(c)); }

  DeflectionRouter& router(int node_id) { return *routers_[node_id]; }
  DeflectionRouter& router(Coord c) { return router(geom_.node_id(c)); }

  sim::StatSet& stats() { return stats_; }
  const sim::StatSet& stats() const { return stats_; }

  /// Attach a flit-event observer to every router (nullptr detaches).
  /// The workload trace recorder and determinism tests hang off this.
  void set_observer(FlitObserver* obs);

  /// Fresh unique flit id (for tracing and deterministic tie-breaks).
  std::uint32_t next_flit_uid() { return next_uid_++; }

  /// Reserve uid space: make the next next_flit_uid() return at least
  /// `floor`.  Trace replay uses this so re-injected flits keep their
  /// recorded uids without colliding with freshly allocated ones.
  void reserve_flit_uids(std::uint32_t floor) {
    if (floor > next_uid_) next_uid_ = floor;
  }

 private:
  TorusGeometry geom_;
  RouterConfig cfg_;
  sim::StatSet stats_;
  std::vector<std::unique_ptr<DeflectionRouter>> routers_;
  std::vector<std::unique_ptr<sim::Fifo<Flit>>> links_;
  std::uint32_t next_uid_ = 1;
};

}  // namespace medea::noc
