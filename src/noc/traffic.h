#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "noc/coord.h"
#include "noc/flit.h"
#include "sim/fifo.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

/// \file traffic.h
/// Synthetic traffic generation for NoC characterization (used by the
/// deflection-vs-buffered ablation benches, by stress tests, and exposed
/// by name — uniform/hotspot/transpose/neighbor — through the workload
/// registry in src/workload/).
///
/// Patterns are the standard NoC evaluation set:
///  * kUniformRandom — every node sends to uniformly random others,
///  * kHotspot      — all traffic converges on one node (the MPMMU
///                    pattern: what pure shared memory does to the NoC),
///  * kTranspose    — (x,y) -> (y,x), a classic adversarial permutation,
///  * kNeighbor     — nearest-neighbour ring, the halo-exchange pattern,
///  * kBitReversal  — node i -> bit-reverse(i), the FFT butterfly
///                    permutation (asymmetric, long-haul; the classic
///                    worst case for dimension-ordered routing).
///
/// A TrafficEndpoint injects flits at a Bernoulli rate per cycle into any
/// fabric exposing inject/eject FIFOs, and sinks whatever arrives.  The
/// template keeps one generator usable for both Network (deflection) and
/// XyNetwork (buffered XY baseline).

namespace medea::noc {

enum class TrafficPattern : std::uint8_t {
  kUniformRandom,
  kHotspot,
  kTranspose,
  kNeighbor,
  kBitReversal,
};

const char* to_string(TrafficPattern p);

/// Destination chooser shared by all endpoint instantiations.
/// hotspot_node is used only by kHotspot.
int pick_destination(TrafficPattern p, const TorusGeometry& geom, int src,
                     int hotspot_node, sim::Xoshiro256& rng);

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::kUniformRandom;
  double injection_rate = 0.1;  ///< flits per node per cycle
  int flits_per_node = 1000;
  int hotspot_node = 0;
  std::uint64_t seed = 1;
};

/// One traffic endpoint attached to node `node` of fabric N (Network or
/// XyNetwork: anything with inject(int)/eject(int)/geometry()/
/// next_flit_uid()).
template <typename N>
class TrafficEndpoint : public sim::Component {
 public:
  TrafficEndpoint(sim::Scheduler& sched, N& net, int node,
                  const TrafficConfig& cfg)
      : sim::Component(sched, "traffic" + std::to_string(node)),
        net_(net),
        node_(node),
        cfg_(cfg),
        rng_(cfg.seed * 1000003ull + static_cast<std::uint64_t>(node)),
        remaining_(cfg.flits_per_node) {
    net.eject(node).set_consumer(this);
    sched.wake_at(*this, 1);
  }

  void tick(sim::Cycle now) override {
    auto& ej = net_.eject(node_);
    while (!ej.empty()) {
      ej.pop();
      ++received_;
    }
    if (remaining_ > 0 && rng_.next_bool(cfg_.injection_rate)) {
      const int dst = pick_destination(cfg_.pattern, net_.geometry(), node_,
                                       cfg_.hotspot_node, rng_);
      if (dst == node_) {
        --remaining_;  // self-addressed slot (e.g. the hotspot node): drop
      } else if (auto& inj = net_.inject(node_); inj.can_push()) {
        Flit f;
        f.valid = true;
        f.dst = net_.geometry().coord_of(dst);
        f.type = FlitType::kMessage;
        f.subtype = kMpData;
        f.src_id = static_cast<std::uint8_t>(node_ & 0xFF);
        f.uid = net_.next_flit_uid();
        f.inject_cycle = now;
        inj.push(f);
        --remaining_;
      }
    }
    if (remaining_ > 0) wake();
  }

  int received() const { return received_; }
  int remaining() const { return remaining_; }

 private:
  N& net_;
  int node_;
  TrafficConfig cfg_;
  sim::Xoshiro256 rng_;
  int remaining_;
  int received_ = 0;
};

/// Convenience: attach endpoints to every node of a fabric and run until
/// drained (or `limit`).  Returns total flits received across all nodes.
template <typename N>
int run_traffic(sim::Scheduler& sched, N& net, const TrafficConfig& cfg,
                sim::Cycle limit = 50'000'000) {
  std::vector<std::unique_ptr<TrafficEndpoint<N>>> eps;
  eps.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (int i = 0; i < net.num_nodes(); ++i) {
    eps.push_back(std::make_unique<TrafficEndpoint<N>>(sched, net, i, cfg));
  }
  sched.run(limit);
  int total = 0;
  for (auto& e : eps) total += e->received();
  return total;
}

}  // namespace medea::noc
