#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "noc/coord.h"
#include "noc/flit.h"
#include "sim/domain.h"
#include "sim/fifo.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

/// \file traffic.h
/// Synthetic traffic generation for NoC characterization (used by the
/// deflection-vs-buffered ablation benches, by stress tests, and exposed
/// by name — uniform/hotspot/transpose/neighbor — through the workload
/// registry in src/workload/).
///
/// Patterns are the standard NoC evaluation set:
///  * kUniformRandom — every node sends to uniformly random others,
///  * kHotspot      — all traffic converges on one node (the MPMMU
///                    pattern: what pure shared memory does to the NoC),
///  * kTranspose    — (x,y) -> (y,x), a classic adversarial permutation,
///  * kNeighbor     — nearest-neighbour ring, the halo-exchange pattern,
///  * kBitReversal  — node i -> bit-reverse(i), the FFT butterfly
///                    permutation (asymmetric, long-haul; the classic
///                    worst case for dimension-ordered routing).
///
/// A TrafficEndpoint offers flits to the fabric under a pluggable
/// InjectionProcess (Bernoulli, bursty on-off) and sinks whatever
/// arrives.  The template keeps one generator usable for both Network
/// (deflection) and XyNetwork (buffered XY baseline).

namespace medea::noc {

enum class TrafficPattern : std::uint8_t {
  kUniformRandom,
  kHotspot,
  kTranspose,
  kNeighbor,
  kBitReversal,
};

const char* to_string(TrafficPattern p);

/// Destination chooser shared by all endpoint instantiations.
/// hotspot_node is used only by kHotspot.
int pick_destination(TrafficPattern p, const TorusGeometry& geom, int src,
                     int hotspot_node, sim::Xoshiro256& rng);

/// When an endpoint's injection process fires, how the offer is timed.
/// Bernoulli is the classic memoryless process; on-off is a two-state
/// Markov-modulated process (bursty traffic: geometric on/off dwell
/// times) with the same long-run offered load, the booksim-style
/// `injection_process` axis for saturation studies.
enum class InjectionKind : std::uint8_t {
  kBernoulli,
  kOnOff,
};

const char* to_string(InjectionKind k);

/// Shape parameters of the injection process; the offered load itself
/// (flits/node/cycle) stays a separate knob so sweeps can walk it.
struct InjectionSpec {
  InjectionKind kind = InjectionKind::kBernoulli;
  /// kOnOff only: per-cycle on->off / off->on transition probabilities.
  /// Steady-state on-fraction = beta/(alpha+beta); the in-burst rate is
  /// derived so the long-run offered load matches the requested rate.
  double burst_alpha = 0.05;
  double burst_beta = 0.02;

  bool operator==(const InjectionSpec&) const = default;
};

/// Per-cycle arrival process of one endpoint.  fire() decides "offer a
/// flit this cycle?", drawing from the endpoint's own RNG stream so
/// runs stay deterministic per (seed, node).
class InjectionProcess {
 public:
  virtual ~InjectionProcess() = default;
  /// One cycle's arrival decision.
  virtual bool fire(sim::Xoshiro256& rng) = 0;
  /// Long-run offered load this process was built for (flits/cycle).
  virtual double rate() const = 0;
};

/// Build the process for `spec` at offered load `rate` (flits/node/cycle
/// in [0, 1]).  Throws std::invalid_argument when the parameters are
/// inconsistent (e.g. an on-off burst too weak to reach `rate`).
std::unique_ptr<InjectionProcess> make_injection_process(
    const InjectionSpec& spec, double rate, sim::Xoshiro256& rng);

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::kUniformRandom;
  double injection_rate = 0.1;  ///< offered load, flits per node per cycle
  InjectionSpec process{};      ///< arrival process shape at that load
  int flits_per_node = 1000;    ///< per-node budget; < 0 = unlimited
  int hotspot_node = 0;
  std::uint64_t seed = 1;
};

/// One traffic endpoint attached to node `node` of fabric N (Network or
/// XyNetwork: anything with inject(int)/eject(int)/geometry()/
/// node_flit_uid()).  Endpoints must be constructed against the node's
/// own scheduler (net.sched_of(node)) so sharded fabrics keep each
/// node's generator on its shard.
///
/// Budget mode (flits_per_node > 0) self-terminates after the budget is
/// spent — the classic "drain a fixed batch" run.  Unlimited mode
/// (flits_per_node < 0) keeps offering until stop_injecting() is
/// called; the phased measurement driver uses it for warmup/measure/
/// drain runs.  attempts()/refused() expose offered-vs-refused counts
/// so measurement can report offered load and source-queue pushback.
template <typename N>
class TrafficEndpoint : public sim::Component {
 public:
  TrafficEndpoint(sim::Scheduler& sched, N& net, int node,
                  const TrafficConfig& cfg)
      : sim::Component(sched, "traffic" + std::to_string(node)),
        net_(net),
        node_(node),
        cfg_(cfg),
        rng_(cfg.seed * 1000003ull + static_cast<std::uint64_t>(node)),
        proc_(make_injection_process(cfg.process, cfg.injection_rate, rng_)),
        remaining_(cfg.flits_per_node) {
    net.eject(node).set_consumer(this);
    sched.wake_at(*this, 1);
  }

  void tick(sim::Cycle now) override {
    auto& ej = net_.eject(node_);
    while (!ej.empty()) {
      ej.pop();
      ++received_;
    }
    if (injecting() && proc_->fire(rng_)) {
      const int dst = pick_destination(cfg_.pattern, net_.geometry(), node_,
                                       cfg_.hotspot_node, rng_);
      if (dst == node_) {
        consume_budget();  // self-addressed slot (e.g. the hotspot node): drop
      } else if (auto& inj = net_.inject(node_); inj.can_push()) {
        Flit f;
        f.valid = true;
        f.dst = net_.geometry().coord_of(dst);
        f.type = FlitType::kMessage;
        f.subtype = kMpData;
        f.src_id = static_cast<std::uint8_t>(node_ & 0xFF);
        f.uid = net_.node_flit_uid(node_);
        f.inject_cycle = now;
        inj.push(f);
        ++attempts_;
        consume_budget();
      } else {
        // Offered but the source queue was full: the slot is lost (the
        // budget survives), which is what makes accepted < offered
        // observable past saturation.
        ++attempts_;
        ++refused_;
      }
    }
    if (injecting()) wake();
  }

  /// Stop offering new flits (unlimited-mode drain); the endpoint keeps
  /// sinking ejections.
  void stop_injecting() { stopped_ = true; }

  int received() const { return received_; }
  int remaining() const { return remaining_; }
  /// Flits offered to the fabric (injected + refused; self-addressed
  /// drops are not offers).
  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t refused() const { return refused_; }

 private:
  bool injecting() const { return !stopped_ && remaining_ != 0; }
  void consume_budget() {
    if (remaining_ > 0) --remaining_;
  }

  N& net_;
  int node_;
  TrafficConfig cfg_;
  sim::Xoshiro256 rng_;
  std::unique_ptr<InjectionProcess> proc_;
  int remaining_;
  int received_ = 0;
  bool stopped_ = false;
  std::uint64_t attempts_ = 0;
  std::uint64_t refused_ = 0;
};

/// Convenience: attach endpoints to every node of a fabric and run until
/// drained (or `limit`).  Returns total flits received across all nodes.
/// Budget mode only (cfg.flits_per_node > 0) — unlimited endpoints never
/// drain; phased runs go through workload::run_phased_traffic instead.
template <typename N>
int run_traffic(sim::Scheduler& sched, N& net, const TrafficConfig& cfg,
                sim::Cycle limit = 50'000'000) {
  std::vector<std::unique_ptr<TrafficEndpoint<N>>> eps;
  eps.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (int i = 0; i < net.num_nodes(); ++i) {
    eps.push_back(std::make_unique<TrafficEndpoint<N>>(sched, net, i, cfg));
  }
  sched.run(limit);
  int total = 0;
  for (auto& e : eps) total += e->received();
  return total;
}

/// Sharded variant: endpoints are constructed on their node's shard
/// scheduler, the domain runs the lockstep loop, and the fabric's
/// aggregate stats are refreshed before returning.  Bit-identical
/// results to the Scheduler overload (same endpoint construction order,
/// same per-node RNG and uid streams).
template <typename N>
int run_traffic(sim::SimDomain& dom, N& net, const TrafficConfig& cfg,
                sim::Cycle limit = 50'000'000) {
  std::vector<std::unique_ptr<TrafficEndpoint<N>>> eps;
  eps.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (int i = 0; i < net.num_nodes(); ++i) {
    eps.push_back(
        std::make_unique<TrafficEndpoint<N>>(net.sched_of(i), net, i, cfg));
  }
  dom.run(limit);
  net.refresh_stats();
  int total = 0;
  for (auto& e : eps) total += e->received();
  return total;
}

}  // namespace medea::noc
