#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <string>

/// \file coord.h
/// X-Y node coordinates and folded-torus distance helpers.
///
/// The MEDEA NoC is a 2-D folded torus (paper §II-A).  Folding changes the
/// physical wire layout, not the logical connectivity, so routing treats
/// the network as a plain torus: every node has N/E/S/W neighbours with
/// wrap-around, and the productive direction along an axis is the one that
/// minimises hops modulo the axis length.

namespace medea::noc {

/// Cardinal ports of a router.  Order matters: it is the deterministic
/// scan order used for tie-breaking in the deflection router.
enum class Dir : std::uint8_t { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };

inline constexpr int kNumDirs = 4;

inline const char* to_string(Dir d) {
  switch (d) {
    case Dir::kNorth: return "N";
    case Dir::kEast: return "E";
    case Dir::kSouth: return "S";
    case Dir::kWest: return "W";
  }
  return "?";
}

/// Node coordinate in the torus.
struct Coord {
  std::uint8_t x = 0;
  std::uint8_t y = 0;

  auto operator<=>(const Coord&) const = default;

  std::string to_string() const {
    // Built with append rather than operator+ chains: GCC 12's -O3
    // -Wrestrict fires a false positive on `const char* + string&&`.
    std::string s(1, '(');
    s += std::to_string(x);
    s += ',';
    s += std::to_string(y);
    s += ')';
    return s;
  }
};

/// Geometry of a W x H folded torus.
class TorusGeometry {
 public:
  /// Coord packs x/y into uint8_t (flit headers carry 8-bit node
  /// coordinates, paper §II-B), so each axis is capped at 256 nodes —
  /// far above the paper's 60x60 — and the cast sites in coord_of()/
  /// neighbor() below are provably value-preserving.
  static constexpr int kMaxAxis = 256;

  TorusGeometry(int width, int height) : w_(width), h_(height) {
    assert(width >= 1 && height >= 1);
    assert(width <= kMaxAxis && height <= kMaxAxis &&
           "axis size exceeds Coord's uint8_t range");
  }

  int width() const { return w_; }
  int height() const { return h_; }
  int num_nodes() const { return w_ * h_; }

  /// Linear node id (row-major).
  int node_id(Coord c) const { return c.y * w_ + c.x; }
  Coord coord_of(int id) const {
    assert(id >= 0 && id < num_nodes());
    return Coord{static_cast<std::uint8_t>(id % w_),
                 static_cast<std::uint8_t>(id / w_)};
  }

  /// Coordinate of the neighbour in direction d (torus wrap-around).
  Coord neighbor(Coord c, Dir d) const {
    const auto u8 = [](int v) { return static_cast<std::uint8_t>(v); };
    switch (d) {
      case Dir::kNorth: return {c.x, u8(wrap(c.y - 1, h_))};
      case Dir::kSouth: return {c.x, u8(wrap(c.y + 1, h_))};
      case Dir::kEast: return {u8(wrap(c.x + 1, w_)), c.y};
      case Dir::kWest: return {u8(wrap(c.x - 1, w_)), c.y};
    }
    return c;
  }

  /// Minimal hop count between two nodes on the torus.
  int distance(Coord a, Coord b) const {
    return axis_dist(a.x, b.x, w_) + axis_dist(a.y, b.y, h_);
  }

  /// Productive directions from `from` toward `to`, written into out[]
  /// (capacity 4; returns count, 0..4).  A direction is productive when
  /// one hop along it strictly reduces torus distance.  On an even ring
  /// at exactly half the circumference, both directions along that axis
  /// are productive; the deterministic listing order is E/W then S/N.
  int productive_dirs(Coord from, Coord to, Dir out[4]) const {
    int n = 0;
    if (from.x != to.x) {
      const int fwd = wrap(to.x - from.x, w_);  // hops going East
      const int bwd = w_ - fwd;                 // hops going West
      if (fwd < bwd) {
        out[n++] = Dir::kEast;
      } else if (bwd < fwd) {
        out[n++] = Dir::kWest;
      } else {
        out[n++] = Dir::kEast;
        out[n++] = Dir::kWest;
      }
    }
    if (from.y != to.y) {
      const int fwd = wrap(to.y - from.y, h_);  // hops going South
      const int bwd = h_ - fwd;                 // hops going North
      if (fwd < bwd) {
        out[n++] = Dir::kSouth;
      } else if (bwd < fwd) {
        out[n++] = Dir::kNorth;
      } else {
        out[n++] = Dir::kSouth;
        out[n++] = Dir::kNorth;
      }
    }
    return n;
  }

 private:
  static int wrap(int v, int m) { return ((v % m) + m) % m; }
  static int axis_dist(int a, int b, int m) {
    const int d = ((b - a) % m + m) % m;
    return d < m - d ? d : m - d;
  }

  int w_;
  int h_;
};

}  // namespace medea::noc
