#pragma once

#include <array>
#include <vector>

#include "noc/coord.h"
#include "noc/flit.h"
#include "sim/fifo.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

/// \file router.h
/// The MEDEA deflection ("hot-potato") router, paper §II-A.
///
/// Properties reproduced from the paper:
///  * full packet switching: every flit of a packet routes independently,
///    so flits of one logic packet can (and do) arrive out of order;
///  * minimal storage: never more than one flit per input channel, no
///    packet buffers, no back-pressure between switches;
///  * deadlock-free by construction (flits always move); livelock is
///    theoretically possible, mitigated here — as in most hot-potato
///    designs — by oldest-first priority, and watched by a hop counter.
///
/// Per cycle the router:
///  1. accepts at most one flit per input link,
///  2. ejects up to eject_per_cycle flits addressed to this node,
///  3. assigns remaining flits to output ports oldest-first, preferring
///     productive directions, deflecting losers to any free port,
///  4. injects at most one local flit if an output port is still free.

namespace medea::noc {

// FlitObserver (the flit-event hook both router models fire) lives in
// flit.h so the buffered-XY baseline can use it without this header.

struct RouterConfig {
  int eject_per_cycle = 1;      ///< local delivery bandwidth (flits/cycle)
  int inject_queue_depth = 2;   ///< NI-side injection staging
  int eject_queue_depth = 4;    ///< NI-side delivery staging
  bool random_tie_break = false;  ///< age ties: random port pick vs fixed scan

  bool operator==(const RouterConfig&) const = default;
};

class DeflectionRouter : public sim::Component {
 public:
  /// `rng_seed` seeds this router's private tie-break stream.  Each
  /// router owns its generator so stochastic choices depend only on the
  /// router's own event history — never on the order in which routers
  /// tick within a cycle (the kernel's determinism contract) — which is
  /// also what makes trace replay bit-identical under random_tie_break.
  DeflectionRouter(sim::Scheduler& sched, const TorusGeometry& geom, Coord pos,
                   const RouterConfig& cfg, sim::StatSet& net_stats,
                   std::uint64_t rng_seed);

  Coord pos() const { return pos_; }

  /// Wiring (done once by Network during construction).
  void connect_input(Dir d, sim::Fifo<Flit>* link);
  void connect_output(Dir d, sim::Fifo<Flit>* link);

  /// Local-port queues: the network interface pushes into inject() and
  /// pops from eject().
  sim::Fifo<Flit>& inject() { return inject_q_; }
  sim::Fifo<Flit>& eject() { return eject_q_; }

  /// Attach (or detach with nullptr) a flit-event observer.  The
  /// hop-level lifecycle events are only fired when the observer asks
  /// for them (FlitObserver::wants_lifecycle), cached here so the tick
  /// path keeps its one-pointer-test cost otherwise.
  void set_observer(FlitObserver* obs) {
    observer_ = obs;
    lifecycle_ = (obs != nullptr && obs->wants_lifecycle()) ? obs : nullptr;
  }

  void tick(sim::Cycle now) override;

 private:
  const TorusGeometry& geom_;
  Coord pos_;
  int node_id_;
  RouterConfig cfg_;
  sim::StatSet& stats_;
  sim::Xoshiro256 rng_;
  FlitObserver* observer_ = nullptr;
  FlitObserver* lifecycle_ = nullptr;  ///< observer_ iff it wants hop events
  /// Inject-queue entries already announced via on_queue_enter (a
  /// watermark into the committed queue; decremented on pop).
  std::size_t q_announced_ = 0;

  // Stat handles resolved once at construction; bumping these on the
  // tick path avoids the per-event string-keyed map lookup.
  sim::Stat& st_delivered_;
  sim::Stat& st_delivered_here_;  ///< per-router series (telemetry heatmaps)
  sim::Stat& st_livelock_;
  sim::Stat& st_deflections_;
  sim::Stat& st_injected_;
  sim::Accumulator& acc_latency_;
  sim::Accumulator& acc_hops_;
  sim::Accumulator& acc_defl_;

  std::array<sim::Fifo<Flit>*, kNumDirs> in_{};
  std::array<sim::Fifo<Flit>*, kNumDirs> out_{};
  sim::Fifo<Flit> inject_q_;
  sim::Fifo<Flit> eject_q_;

  // scratch, kept as members to avoid per-tick allocation
  std::vector<Flit> route_set_;
};

}  // namespace medea::noc
