#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "mem/backing_store.h"
#include "mem/cache.h"
#include "mem/ddr.h"
#include "mem/memory_map.h"
#include "noc/network.h"
#include "sim/fifo.h"
#include "sim/scheduler.h"
#include "sim/stats.h"

/// \file mpmmu.h
/// The Multiprocessor Memory Management Unit (paper §II-C).
///
/// The MPMMU is a special processor that serves all shared-memory
/// transactions of the system.  It is a pure slave: it only ever answers
/// transactions initiated by other processors.  Its NoC interface has
///  * a Pif-Request/Control FIFO (depth = number of processors) receiving
///    "request-for-transaction" tokens — single/block read/write requests
///    plus Lock and Unlock commands,
///  * a Pif-Data FIFO receiving the payload words of granted writes,
///  * one outgoing FIFO toward the NoC.
///
/// Protocols (Fig. 4):
///  * write:  Req -> Grant(Ack) -> Data... -> Ack
///  * read:   Req -> Data...
///
/// The request/data split gives implicit flow control: at most one write's
/// payload is in flight toward the MPMMU at any time, so the Pif-Data
/// queue stays tiny.  The engine serves one transaction at a time, which
/// is exactly the serialization bottleneck the paper's pure-shared-memory
/// results expose.
///
/// The MPMMU has a local (data) cache; read latency depends on whether the
/// word is resident or must come from DDR.  Word-granular lock/unlock with
/// FIFO waiter queueing implements the paper's critical-section support.

namespace medea::mpmmu {

struct MpmmuConfig {
  mem::CacheConfig cache{32 * 1024, mem::kLineBytes, 2,
                         mem::WritePolicy::kWriteBack};
  mem::DdrConfig ddr{};
  bool use_cache = true;
  /// Fixed engine occupancy per request token (decode + dispatch), cycles.
  std::uint32_t engine_overhead = 48;
  /// Latency of an MPMMU-cache hit, cycles.
  std::uint32_t cache_hit_latency = 2;
  /// Paper §IV future work ("MPMMU optimization"): when true, the engine
  /// accepts the next request while reply flits are still streaming out
  /// of the outgoing FIFO, instead of staying busy until the last flit
  /// leaves.  Read-heavy loads gain up to one reply-burst per transaction.
  bool pipelined_replies = false;
};

class Mpmmu : public sim::Component {
 public:
  /// `node_id` is the MPMMU's position in the NoC; `num_cores` sizes the
  /// Pif-Request queue as the paper specifies.
  Mpmmu(sim::Scheduler& sched, noc::Network& net, int node_id, int num_cores,
        const MpmmuConfig& cfg, mem::BackingStore& store);

  int node_id() const { return node_id_; }

  void tick(sim::Cycle now) override;

  sim::StatSet& stats() { return stats_; }
  const sim::StatSet& stats() const { return stats_; }
  const mem::Cache& cache() const { return cache_; }
  /// Mutable cache access for zero-time verification backdoors only.
  mem::Cache& cache_backdoor() { return cache_; }

  /// True when no transaction is in progress and all queues are empty
  /// (used by tests and by MedeaSystem quiescence checks).
  bool idle() const;

 private:
  enum class State : std::uint8_t {
    kIdle,
    kMemAccess,     // waiting for cache/DDR latency
    kSendReply,     // streaming reply flits, one per cycle
    kWriteCollect,  // waiting for the granted write's data flits
  };

  struct Transaction {
    noc::FlitType type = noc::FlitType::kSingleRead;
    std::uint8_t src = 0;
    mem::Addr addr = 0;
    int words_expected = 0;                  // write payload size
    std::uint32_t received_mask = 0;         // per-seq arrival mask
    std::array<std::uint32_t, mem::kWordsPerLine> data{};
  };

  struct LockEntry {
    bool held = false;
    std::uint8_t owner = 0;
    std::deque<std::uint8_t> waiters;
  };

  // NoC-facing helpers.
  void drain_network(sim::Cycle now);
  void push_reply(sim::Cycle now);
  noc::Flit make_reply(std::uint8_t dst_id, noc::FlitType type,
                       noc::FlitSubType sub, std::uint8_t seq,
                       std::uint8_t burst, std::uint32_t data,
                       sim::Cycle now) const;

  // Engine steps.
  void start_transaction(sim::Cycle now);
  void finish_mem_access(sim::Cycle now);
  std::uint32_t memory_read_latency(mem::Addr addr, int words);
  std::uint32_t memory_write_latency(mem::Addr addr, int words);
  std::uint32_t cached_line_touch(mem::Addr line_addr, bool for_write);

  void handle_lock(const Transaction& t, sim::Cycle now);
  void handle_unlock(const Transaction& t, sim::Cycle now);

  noc::Network& net_;
  int node_id_;
  int num_cores_;
  MpmmuConfig cfg_;
  mem::BackingStore& store_;
  mem::Cache cache_;

  sim::Fifo<noc::Flit> req_q_;
  sim::Fifo<noc::Flit> data_q_;
  // The outgoing FIFO of the paper maps onto reply_q_ (engine side) plus
  // the router's inject queue (wire side).
  std::deque<noc::Flit> reply_q_;

  State state_ = State::kIdle;
  sim::Cycle busy_until_ = 0;
  Transaction cur_{};
  std::map<mem::Addr, LockEntry> locks_;

  sim::StatSet stats_;
};

}  // namespace medea::mpmmu
