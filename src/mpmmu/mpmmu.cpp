#include "mpmmu/mpmmu.h"

#include <cassert>
#include <stdexcept>

namespace medea::mpmmu {

using noc::Flit;
using noc::FlitSubType;
using noc::FlitType;

Mpmmu::Mpmmu(sim::Scheduler& sched, noc::Network& net, int node_id,
             int num_cores, const MpmmuConfig& cfg, mem::BackingStore& store)
    : sim::Component(sched, "mpmmu@" + std::to_string(node_id)),
      net_(net),
      node_id_(node_id),
      num_cores_(num_cores),
      cfg_(cfg),
      store_(store),
      cache_(cfg.cache),
      // Paper: "The depth of this queue is as large as the number of
      // processors" — each core has at most one outstanding transaction.
      req_q_(sched, name() + ".pif_req", static_cast<std::size_t>(num_cores)),
      data_q_(sched, name() + ".pif_data", mem::kWordsPerLine) {
  req_q_.set_consumer(this);
  data_q_.set_consumer(this);
  net_.eject(node_id_).set_consumer(this);
  net_.inject(node_id_).set_producer(this);
}

bool Mpmmu::idle() const {
  return state_ == State::kIdle && reply_q_.empty() && req_q_.empty() &&
         data_q_.empty();
}

Flit Mpmmu::make_reply(std::uint8_t dst_id, FlitType type, FlitSubType sub,
                       std::uint8_t seq, std::uint8_t burst,
                       std::uint32_t data, sim::Cycle now) const {
  Flit f;
  f.valid = true;
  f.dst = net_.geometry().coord_of(dst_id);
  f.type = type;
  f.subtype = sub;
  f.seq_num = seq;
  f.burst_size = burst;
  f.src_id = static_cast<std::uint8_t>(node_id_);
  f.data = data;
  f.inject_cycle = now;  // refined at router injection
  f.uid = net_.next_flit_uid();
  return f;
}

void Mpmmu::drain_network(sim::Cycle now) {
  (void)now;
  auto& eject = net_.eject(node_id_);
  while (!eject.empty()) {
    // Requests (and lock/unlock commands) carry an Address subtype;
    // granted write payloads carry Data.  Nothing else may address the
    // MPMMU — a Message flit here is a programming error.
    const Flit& head = eject.front();
    if (head.subtype == FlitSubType::kData) {
      if (!data_q_.can_push()) break;
      data_q_.push(eject.pop());
      stats_.inc("mpmmu.data_flits_in");
    } else if (head.subtype == FlitSubType::kAddress) {
      if (!req_q_.can_push()) break;  // cannot happen: depth == #cores
      req_q_.push(eject.pop());
      stats_.inc("mpmmu.requests_in");
    } else {
      throw std::runtime_error("MPMMU received unexpected flit: " +
                               head.to_string());
    }
  }
}

std::uint32_t Mpmmu::cached_line_touch(mem::Addr line_addr, bool for_write) {
  line_addr = mem::line_align(line_addr);
  if (!cfg_.use_cache) {
    return cfg_.ddr.burst_cycles(for_write ? mem::kWordsPerLine
                                           : mem::kWordsPerLine);
  }
  if (cache_.contains(line_addr)) {
    return cfg_.cache_hit_latency;
  }
  std::uint32_t lat = cfg_.ddr.burst_cycles(mem::kWordsPerLine);
  auto wb = cache_.fill_line(line_addr, store_.read_line(line_addr));
  if (wb.has_value()) {
    store_.write_line(wb->line_addr, wb->data);
    lat += cfg_.ddr.burst_cycles(mem::kWordsPerLine);
  }
  return lat + cfg_.cache_hit_latency;
}

std::uint32_t Mpmmu::memory_read_latency(mem::Addr addr, int words) {
  (void)words;  // all reads touch a single 16-byte line in this model
  return cached_line_touch(addr, /*for_write=*/false);
}

std::uint32_t Mpmmu::memory_write_latency(mem::Addr addr, int words) {
  if (!cfg_.use_cache) return cfg_.ddr.burst_cycles(words);
  return cached_line_touch(addr, /*for_write=*/true);
}

void Mpmmu::handle_lock(const Transaction& t, sim::Cycle now) {
  LockEntry& e = locks_[t.addr];
  if (!e.held) {
    e.held = true;
    e.owner = t.src;
    reply_q_.push_back(make_reply(t.src, FlitType::kLock, FlitSubType::kAck,
                                  0, 0, t.addr, now));
    stats_.inc("mpmmu.locks_granted");
  } else {
    e.waiters.push_back(t.src);
    stats_.inc("mpmmu.locks_queued");
  }
}

void Mpmmu::handle_unlock(const Transaction& t, sim::Cycle now) {
  auto it = locks_.find(t.addr);
  if (it == locks_.end() || !it->second.held || it->second.owner != t.src) {
    // Protocol violation: unlock of a word not held by the sender.
    reply_q_.push_back(make_reply(t.src, FlitType::kUnlock, FlitSubType::kNack,
                                  0, 0, t.addr, now));
    stats_.inc("mpmmu.unlock_nacks");
    return;
  }
  LockEntry& e = it->second;
  reply_q_.push_back(make_reply(t.src, FlitType::kUnlock, FlitSubType::kAck,
                                0, 0, t.addr, now));
  stats_.inc("mpmmu.unlocks");
  if (!e.waiters.empty()) {
    e.owner = e.waiters.front();
    e.waiters.pop_front();
    // Grant to the next waiter, FIFO order.
    reply_q_.push_back(make_reply(e.owner, FlitType::kLock, FlitSubType::kAck,
                                  0, 0, t.addr, now));
    stats_.inc("mpmmu.locks_granted");
  } else {
    e.held = false;
  }
}

void Mpmmu::start_transaction(sim::Cycle now) {
  assert(!req_q_.empty());
  const Flit req = req_q_.pop();
  cur_ = Transaction{};
  cur_.type = req.type;
  cur_.src = req.src_id;
  cur_.addr = req.data;
  stats_.inc("mpmmu.transactions");

  switch (req.type) {
    case FlitType::kSingleRead:
      busy_until_ =
          now + cfg_.engine_overhead + memory_read_latency(cur_.addr, 1);
      state_ = State::kMemAccess;
      stats_.inc("mpmmu.single_reads");
      break;
    case FlitType::kBlockRead:
      busy_until_ = now + cfg_.engine_overhead +
                    memory_read_latency(cur_.addr, mem::kWordsPerLine);
      state_ = State::kMemAccess;
      stats_.inc("mpmmu.block_reads");
      break;
    case FlitType::kSingleWrite:
    case FlitType::kBlockWrite:
      cur_.words_expected =
          req.type == FlitType::kSingleWrite ? 1 : mem::kWordsPerLine;
      // Fig. 4(a): grant the sender; its payload will arrive in Pif-Data.
      reply_q_.push_back(make_reply(cur_.src, req.type, FlitSubType::kAck, 0,
                                    0, cur_.addr, now));
      state_ = State::kWriteCollect;
      stats_.inc(req.type == FlitType::kSingleWrite ? "mpmmu.single_writes"
                                                    : "mpmmu.block_writes");
      break;
    case FlitType::kLock:
      handle_lock(cur_, now);
      busy_until_ = now + cfg_.engine_overhead;
      state_ = State::kMemAccess;
      break;
    case FlitType::kUnlock:
      handle_unlock(cur_, now);
      busy_until_ = now + cfg_.engine_overhead;
      state_ = State::kMemAccess;
      break;
    case FlitType::kMessage:
      throw std::runtime_error("MPMMU cannot serve Message flits: " +
                               req.to_string());
  }
}

void Mpmmu::finish_mem_access(sim::Cycle now) {
  switch (cur_.type) {
    case FlitType::kSingleRead: {
      const mem::Addr a = mem::word_align(cur_.addr);
      std::uint32_t v;
      if (cfg_.use_cache) {
        auto r = cache_.read_word(a);
        assert(r.has_value() && "line was touched during latency accounting");
        v = *r;
      } else {
        v = store_.read_word(a);
      }
      reply_q_.push_back(make_reply(cur_.src, FlitType::kSingleRead,
                                    FlitSubType::kData, 0, 0, v, now));
      break;
    }
    case FlitType::kBlockRead: {
      const mem::Addr base = mem::line_align(cur_.addr);
      for (int i = 0; i < mem::kWordsPerLine; ++i) {
        const mem::Addr a = base + static_cast<mem::Addr>(i) * mem::kWordBytes;
        std::uint32_t v;
        if (cfg_.use_cache) {
          auto r = cache_.read_word(a);
          assert(r.has_value());
          v = *r;
        } else {
          v = store_.read_word(a);
        }
        reply_q_.push_back(make_reply(
            cur_.src, FlitType::kBlockRead, FlitSubType::kData,
            static_cast<std::uint8_t>(i),
            static_cast<std::uint8_t>(mem::kWordsPerLine - 1), v, now));
      }
      break;
    }
    case FlitType::kSingleWrite:
    case FlitType::kBlockWrite: {
      // Payload fully collected; commit it, then send the final Ack.
      const mem::Addr base = cur_.type == FlitType::kSingleWrite
                                 ? mem::word_align(cur_.addr)
                                 : mem::line_align(cur_.addr);
      for (int i = 0; i < cur_.words_expected; ++i) {
        const mem::Addr a = base + static_cast<mem::Addr>(i) * mem::kWordBytes;
        const std::uint32_t v = cur_.data[static_cast<std::size_t>(i)];
        if (cfg_.use_cache &&
            cfg_.cache.policy == mem::WritePolicy::kWriteBack) {
          const bool ok = cache_.write_word(a, v);
          assert(ok && "line was allocated during latency accounting");
          (void)ok;
        } else {
          store_.write_word(a, v);
          if (cfg_.use_cache) cache_.write_word(a, v);  // update-on-hit
        }
      }
      reply_q_.push_back(make_reply(cur_.src, cur_.type, FlitSubType::kAck, 0,
                                    0, cur_.addr, now));
      break;
    }
    case FlitType::kLock:
    case FlitType::kUnlock:
      break;  // bookkeeping done at dispatch; replies already queued
    case FlitType::kMessage:
      break;  // unreachable
  }
  state_ = State::kSendReply;
}

void Mpmmu::push_reply(sim::Cycle now) {
  (void)now;
  if (reply_q_.empty()) return;
  auto& inject = net_.inject(node_id_);
  if (!inject.can_push()) return;  // producer hook re-wakes us
  inject.push(reply_q_.front());
  reply_q_.pop_front();
  stats_.inc("mpmmu.reply_flits_out");
}

void Mpmmu::tick(sim::Cycle now) {
  drain_network(now);

  switch (state_) {
    case State::kIdle:
      if (!req_q_.empty()) start_transaction(now);
      break;
    case State::kMemAccess:
      if (now >= busy_until_) finish_mem_access(now);
      break;
    case State::kSendReply:
      // Pipelined mode: the outgoing FIFO drains on its own; the engine
      // is free for the next token immediately (§IV "MPMMU optimization").
      if (reply_q_.empty() || cfg_.pipelined_replies) {
        state_ = State::kIdle;
        if (!req_q_.empty()) start_transaction(now);
      }
      break;
    case State::kWriteCollect:
      // Consume one payload word per cycle from Pif-Data (Fig. 2 timing).
      if (!data_q_.empty()) {
        const Flit f = data_q_.pop();
        assert(f.src_id == cur_.src &&
               "request/data protocol admits one write payload at a time");
        assert(f.seq_num < cur_.words_expected);
        cur_.data[f.seq_num] = f.data;
        cur_.received_mask |= 1u << f.seq_num;
        const std::uint32_t all =
            (1u << cur_.words_expected) - 1;
        if (cur_.received_mask == all) {
          // Writes pay the same engine decode/dispatch occupancy as reads.
          busy_until_ = now + cfg_.engine_overhead +
                        memory_write_latency(cur_.addr, cur_.words_expected);
          state_ = State::kMemAccess;
        }
      }
      break;
  }

  push_reply(now);

  // Re-arm: timed waits use wake_at; queue-driven work self-wakes when we
  // know there is more to do next cycle.
  if (state_ == State::kMemAccess && busy_until_ > now) {
    scheduler().wake_at(*this, busy_until_);
  } else if (!reply_q_.empty() || !req_q_.empty() ||
             (state_ == State::kWriteCollect && !data_q_.empty()) ||
             state_ == State::kSendReply ||
             (state_ == State::kMemAccess && busy_until_ <= now)) {
    wake();
  }
}

}  // namespace medea::mpmmu
