#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

#include "sim/frame_pool.h"

/// \file task.h
/// Minimal coroutine task type used to write "software" for simulated cores.
///
/// The paper runs real C code (the Jacobi kernel, eMPI) on Xtensa cores
/// inside the SystemC model.  Our substitute is a C++20 coroutine: a core
/// program is a Task<> that co_awaits typed hardware operations (loads,
/// stores, message-passing sends/receives, compute delays).  The owning
/// ProcessingElement resumes the coroutine exactly when the modelled
/// hardware would have retired the operation, so program-visible timing is
/// cycle-accurate while the program text stays as readable as the paper's
/// pseudo-code.
///
/// Task<T> supports:
///  * lazy start (the PE decides when the program begins running),
///  * co_await composition with symmetric transfer (eMPI primitives are
///    themselves coroutines used by application code),
///  * exception propagation to the awaiter / owner,
///  * an on_done owner hook so the PE knows the program terminated.
///
/// Hot-path notes: frames are allocated through the thread-local
/// sim::FramePool (class-specific operator new/delete on the promise), so
/// the per-step coroutine churn of the eMPI/Jacobi programs recycles a
/// few warm size classes instead of hitting malloc; and the owner hook is
/// a raw (function pointer, context) pair — unlike the std::function it
/// replaced, arming it never allocates.

namespace medea::sim {

template <typename T>
class Task;

/// Owner-notification hook fired when a root task runs to completion.
/// A capture-less lambda converts implicitly: pass the owner as `ctx`.
using TaskDoneFn = void (*)(void* ctx);

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;  // resumed at final_suspend
  TaskDoneFn on_done = nullptr;          // owner notification (root tasks)
  void* on_done_ctx = nullptr;
  std::exception_ptr error;

  /// Coroutine frames recycle through the thread-local FramePool; the
  /// sized delete guarantees the frame returns to its exact size class.
  static void* operator new(std::size_t n) {
    return FramePool::tls().allocate(n);
  }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::tls().deallocate(p, n);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.on_done != nullptr) p.on_done(p.on_done_ctx);
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine computing a T (or nothing for T = void).
template <typename T = void>
class Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    T value{};
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return !h_ || h_.done(); }

  /// Begin execution (root tasks only; awaited tasks start via co_await).
  void start() {
    assert(h_ && !h_.done());
    h_.resume();
  }

  /// Owner hook fired when the coroutine runs to completion.  `fn` is a
  /// plain function pointer (capture-less lambdas convert); `ctx` is
  /// handed back verbatim — typically the owning component.
  void set_on_done(TaskDoneFn fn, void* ctx) {
    assert(h_);
    h_.promise().on_done = fn;
    h_.promise().on_done_ctx = ctx;
  }

  void rethrow_if_error() const {
    if (h_ && h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

  /// Retrieve the result after completion.
  T result() const {
    rethrow_if_error();
    return h_.promise().value;
  }

  /// co_await support: start the child, resume parent at child completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
        return std::move(h.promise().value);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

/// void specialisation.
template <>
class Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return !h_ || h_.done(); }

  void start() {
    assert(h_ && !h_.done());
    h_.resume();
  }

  void set_on_done(TaskDoneFn fn, void* ctx) {
    assert(h_);
    h_.promise().on_done = fn;
    h_.promise().on_done_ctx = ctx;
  }

  void rethrow_if_error() const {
    if (h_ && h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace medea::sim
