#include "sim/telemetry.h"

#include "sim/domain.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

namespace medea::telemetry {

// ---------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------

const Series* Timeline::find(const std::string& name) const {
  for (const Series& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::uint64_t> Timeline::reconstruct(const Series& s) const {
  std::vector<std::uint64_t> out(num_windows(), 0);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    const std::size_t w = s.first_window + i;
    if (w >= out.size()) break;
    if (s.cumulative) {
      acc += s.values[i];
      out[w] = acc;
    } else {
      out[w] = s.values[i];
    }
  }
  // A cumulative counter holds its last value through trailing windows
  // where it happened to be sampled (values shorter than windows can't
  // occur — every snapshot records every live series — but guard anyway).
  return out;
}

// ---------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------

Sampler::Sampler(sim::Cycle sample_every) : every_(sample_every) {
  tl_.sample_every = sample_every;
}

void Sampler::add_stats(std::string prefix, const sim::StatSet& stats) {
  stat_sources_.push_back({std::move(prefix), &stats});
}

void Sampler::add_counter(std::string name,
                          std::function<std::uint64_t()> probe) {
  probes_.push_back({std::move(name), true, std::move(probe)});
}

void Sampler::add_gauge(std::string name,
                        std::function<std::uint64_t()> probe) {
  probes_.push_back({std::move(name), false, std::move(probe)});
}

void Sampler::attach(sim::Scheduler& sched) {
  sched_ = &sched;
  sim::Scheduler* s = &sched;
  add_counter("sched.wake_requests", [s] { return s->wake_requests(); });
  add_counter("sched.wakes_deduped", [s] { return s->wakes_deduped(); });
  add_counter("sched.bucket_pushes", [s] { return s->bucket_pushes(); });
  add_counter("sched.overflow_pushes", [s] { return s->overflow_pushes(); });
  add_counter("sched.commit_pushes", [s] { return s->commit_pushes(); });
  add_counter("sched.commits_deduped", [s] { return s->commits_deduped(); });
  add_counter("sched.active_cycles", [s] { return s->active_cycles(); });
  add_gauge("sched.queued",
            [s] { return static_cast<std::uint64_t>(s->queued()); });
  add_gauge("sched.ring_bits",
            [s] { return static_cast<std::uint64_t>(s->ring_bits_chosen()); });
  // First boundary at one full window, then on_cycle self-paces.  A
  // sample_every of 0 means "manual snapshots only": never hook.
  if (every_ > 0) sched.set_cycle_hook(this, every_);
}

void Sampler::attach(sim::SimDomain& dom) {
  if (!dom.sharded()) {
    // Single-shard fallback: identical wiring (and identical series) to
    // a plain scheduler.
    attach(dom.shard(0));
    return;
  }
  dom_ = &dom;
  sim::SimDomain* d = &dom;
  // The same kernel pressure series, summed across shards.  The
  // wake/dedup/active sums are bit-identical to the single-thread
  // kernels; the bucket/overflow/commit series are kernel-dependent
  // (they already differ between calendar and heap).
  add_counter("sched.wake_requests", [d] { return d->wake_requests(); });
  add_counter("sched.wakes_deduped", [d] { return d->wakes_deduped(); });
  add_counter("sched.bucket_pushes", [d] { return d->bucket_pushes(); });
  add_counter("sched.overflow_pushes", [d] { return d->overflow_pushes(); });
  add_counter("sched.commit_pushes", [d] { return d->commit_pushes(); });
  add_counter("sched.commits_deduped", [d] { return d->commits_deduped(); });
  add_counter("sched.active_cycles", [d] { return d->active_cycles(); });
  add_gauge("sched.queued",
            [d] { return static_cast<std::uint64_t>(d->queued()); });
  add_gauge("sched.ring_bits", [d] {
    return static_cast<std::uint64_t>(d->shard(0).ring_bits_chosen());
  });
  if (every_ > 0) dom.set_cycle_hook(this, every_);
}

sim::Cycle Sampler::on_cycle(sim::Cycle now) {
  snapshot(now);
  if (every_ == 0) return sim::kNeverCycle;
  // Next multiple of every_ strictly after now (the kernel skips idle
  // cycles, so `now` may already be several windows past the last
  // boundary; one snapshot summarises the gap).
  return (now / every_ + 1) * every_;
}

void Sampler::snapshot(sim::Cycle now) {
  if (finished_) return;
  if (!tl_.sample_cycles.empty() && tl_.sample_cycles.back() >= now) return;
  const std::size_t window = tl_.sample_cycles.size();
  tl_.sample_cycles.push_back(now);
  for (const StatSource& src : stat_sources_) {
    for (const auto& [name, value] : src.stats->counters()) {
      record(src.prefix + name, true, value, window);
    }
    for (const auto& [name, acc] : src.stats->accumulators()) {
      record(src.prefix + name + ".count", true, acc.count(), window);
      record(src.prefix + name + ".sum", true,
             static_cast<std::uint64_t>(acc.sum()), window);
    }
  }
  for (const Probe& p : probes_) {
    record(p.name, p.cumulative, p.fn(), window);
  }
  // Pad series that vanished from a source (StatSets never erase
  // counters, so this is only reachable if a source was destroyed —
  // which registration forbids — but keep every series rectangular).
  for (Series& s : tl_.series) {
    if (s.first_window + s.values.size() < window + 1) {
      s.values.resize(window + 1 - s.first_window, 0);
    }
  }
}

void Sampler::record(const std::string& name, bool cumulative,
                     std::uint64_t value, std::size_t window) {
  auto it = state_.find(name);
  if (it == state_.end()) {
    tl_.series.push_back(Series{name, cumulative, window, {}});
    it = state_.emplace(name, SeriesState{tl_.series.size() - 1, 0}).first;
  }
  Series& s = tl_.series[it->second.index];
  if (cumulative) {
    // Deltas, not absolutes: windowed rates fall out directly and the
    // JSON stays small (most counters move little per window).
    s.values.push_back(value - it->second.last);
    it->second.last = value;
  } else {
    s.values.push_back(value);
  }
}

void Sampler::finish(sim::Cycle end) {
  if (finished_) return;
  if (tl_.sample_cycles.empty() || tl_.sample_cycles.back() < end) {
    snapshot(end);
  }
  finished_ = true;
  if (sched_ != nullptr) {
    sched_->set_cycle_hook(nullptr);
    sched_ = nullptr;
  }
  if (dom_ != nullptr) {
    dom_->set_cycle_hook(nullptr);
    dom_ = nullptr;
  }
  // Name-sorted series give exporters (and diffs of exports) a stable
  // order regardless of registration/discovery order.
  std::sort(tl_.series.begin(), tl_.series.end(),
            [](const Series& a, const Series& b) { return a.name < b.name; });
}

// ---------------------------------------------------------------------
// HostProfiler / ProfileScope
// ---------------------------------------------------------------------

// The host profiler measures wall-clock spans of the *simulator
// process* (Perfetto host track); simulated time never reads it.
using HostClock = std::chrono::steady_clock;  // lint:allow(banned-time-source)

struct HostProfiler::Impl {
  HostClock::time_point epoch;
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  std::vector<HostSpan> spans;
  std::uint32_t next_tid = 0;
};

namespace {
thread_local std::uint32_t t_tid = ~std::uint32_t{0};
}  // namespace

HostProfiler::HostProfiler() : impl_(new Impl) {
  // Host-track epoch, not simulated time.
  impl_->epoch = HostClock::now();
}

HostProfiler& HostProfiler::instance() {
  static HostProfiler p;
  return p;
}

bool HostProfiler::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void HostProfiler::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t HostProfiler::now_us() const {
  // Host-track timestamp, not simulated time.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          HostClock::now() - impl_->epoch)
          .count());
}

std::uint32_t HostProfiler::thread_id() {
  if (t_tid == ~std::uint32_t{0}) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    t_tid = impl_->next_tid++;
  }
  return t_tid;
}

void HostProfiler::record(HostSpan span) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->spans.push_back(std::move(span));
}

std::vector<HostSpan> HostProfiler::spans() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->spans;
}

void HostProfiler::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->spans.clear();
}

ProfileScope::ProfileScope(std::string name, std::string category)
    : name_(std::move(name)), category_(std::move(category)) {
  HostProfiler& p = HostProfiler::instance();
  if (p.enabled()) {
    armed_ = true;
    start_us_ = p.now_us();
  }
}

ProfileScope::~ProfileScope() {
  if (!armed_) return;
  HostProfiler& p = HostProfiler::instance();
  HostSpan span;
  span.name = std::move(name_);
  span.category = std::move(category_);
  span.start_us = start_us_;
  span.dur_us = p.now_us() - start_us_;
  span.tid = p.thread_id();
  p.record(std::move(span));
}

}  // namespace medea::telemetry
