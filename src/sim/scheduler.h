#pragma once

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.h"

/// \file scheduler.h
/// The cycle-accurate discrete-event kernel at the bottom of MEDEA.
///
/// The paper models every block as a synchronous SystemC module clocked by
/// a single clock.  We reproduce those semantics with an event-driven
/// kernel so that cycles in which no component has work are skipped
/// entirely; this is what makes the 168-point design-space sweep of the
/// paper's Section III affordable on one machine.
///
/// Semantics contract (matches RTL intuition):
///  * A component's tick(now) sees only state committed in cycles < now.
///  * Values pushed into channels during tick(now) become visible to
///    consumers at cycle now+1 (two-phase staged commit).
///  * A component may receive spurious ticks; tick() must be idempotent
///    when there is no work to do.
///  * wake() during a tick may only target strictly future cycles.
///
/// Event-queue structure (SchedulerConfig): almost every wake in this
/// model targets `now+1` (FIFO commits, self-re-arming engines), so the
/// default kernel is a hierarchical calendar queue — a power-of-two ring
/// of per-cycle buckets, each an intrusive singly-linked list threaded
/// through the components themselves, making the dominant wake an O(1)
/// pointer bump with zero allocation.  Far-future wakes (DDR-scale
/// delays, idle-period jumps) overflow into the old binary heap, which
/// stays selectable as the whole kernel for differential testing.
/// Dispatch order is bit-identical between the two kernels: within a
/// cycle, components tick in wake-request (FIFO seq) order, and every
/// overflow entry for a cycle predates every bucket entry for it.

namespace medea::sim {

class Scheduler;
class Component;

/// Periodic observer of simulated-time progress, for telemetry sampling.
///
/// The scheduler calls on_cycle(now) at the top of any dispatched cycle
/// that has reached the cycle the hook last asked for (before any
/// component ticks, so the hook sees only state committed in cycles
/// < now).  The return value is the next cycle of interest; returning
/// kNeverCycle mutes the hook.  Because the check rides the run loop's
/// existing cycle advance — one integer compare per *dispatched cycle*,
/// nothing per wake or per event — an unset hook costs effectively zero
/// on the kernel hot path, which is what lets telemetry stay compiled in
/// everywhere and be enabled per run.
class CycleHook {
 public:
  virtual ~CycleHook() = default;
  virtual Cycle on_cycle(Cycle now) = 0;
};

namespace detail {

/// Intrusive calendar-bucket link.  Every Component embeds one node (the
/// common case: at most one pending wake), and the scheduler keeps a
/// recycled pool of spill nodes for components with several wakes in
/// flight at once (e.g. a timed operation plus an engine self-wake).
struct WakeNode {
  Component* comp = nullptr;
  WakeNode* next = nullptr;
  bool pooled = false;  ///< false: embedded in its component
  bool active = false;  ///< embedded node currently linked in a bucket
};

}  // namespace detail

/// Base class for every clocked hardware model.
class Component {
 public:
  Component(Scheduler& sched, std::string name);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// One clock cycle of work.  Called only on cycles for which the
  /// component was woken (by itself, by a channel, or by another block).
  virtual void tick(Cycle now) = 0;

  const std::string& name() const { return name_; }
  Scheduler& scheduler() const { return sched_; }

 protected:
  /// Request a tick at now+delta (delta >= 1 while the clock is running).
  void wake(Cycle delta = 1);

 private:
  friend class Scheduler;
  Scheduler& sched_;
  std::string name_;
  Cycle last_ticked_ = kNeverCycle;  // dedup guard for same-cycle wakes
  Cycle last_wake_cycle_ = 0;        // push-time dedup stamp (see wake_at)
  detail::WakeNode hook_;            // intrusive calendar-bucket hook
};

/// Anything with staged state that must be made visible at end of cycle.
class Committable {
 public:
  virtual ~Committable() = default;
  virtual void commit() = 0;
};

/// The simulation kernel.
class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& cfg = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  const SchedulerConfig& config() const { return cfg_; }

  Cycle now() const { return now_; }

  /// Total cycles in which at least one component ticked.
  std::uint64_t active_cycles() const { return active_cycles_; }

  /// Schedule component c to tick at absolute cycle `at`.
  /// While dispatching a cycle, `at` must be strictly in the future.
  ///
  /// Duplicate wakes for the same (component, future cycle) are deduped
  /// at push time via a per-component last-wake stamp, so a hot FIFO
  /// fan-in (N channels committing into one router in the same cycle)
  /// costs one push instead of N.  A second dedup layer at pop time
  /// (Component::last_ticked_) covers the remaining `at == now` path.
  void wake_at(Component& c, Cycle at);

  /// Pressure counters: total wake_at() requests and how many were
  /// absorbed by the push-time dedup (never reached a queue).
  std::uint64_t wake_requests() const { return wake_requests_; }
  std::uint64_t wakes_deduped() const { return wakes_deduped_; }
  std::uint64_t heap_pushes() const { return wake_requests_ - wakes_deduped_; }

  /// Where the surviving pushes landed: calendar-ring buckets (the O(1)
  /// near-future fast path) vs the overflow binary heap.  In the legacy
  /// kBinaryHeap kernel every push counts as an overflow push.
  std::uint64_t bucket_pushes() const { return bucket_pushes_; }
  std::uint64_t overflow_pushes() const { return overflow_pushes_; }

  /// Register a staged object for commit at the end of the current cycle.
  /// Idempotent per cycle only if the caller guards; cheap either way.
  /// Fifo guards with an epoch stamp (one registration per FIFO per
  /// cycle, however many pushes/pops hit it) and reports the absorbed
  /// duplicates through note_commit_dedup().
  void defer_commit(Committable& c) {
    commit_list_.push_back(&c);
    ++commit_pushes_;
  }

  /// A caller-side guard (e.g. Fifo's epoch stamp) absorbed a duplicate
  /// same-cycle commit registration.
  void note_commit_dedup() { ++commits_deduped_; }

  /// Commit-list pressure: registrations that reached the list vs
  /// duplicates absorbed by caller-side epoch stamps.
  std::uint64_t commit_pushes() const { return commit_pushes_; }
  std::uint64_t commits_deduped() const { return commits_deduped_; }

  /// Entries currently queued across both tiers (calendar ring +
  /// overflow heap) — the "event queue occupancy" telemetry gauge.
  std::size_t queued() const { return ring_count_ + heap_.size(); }

  /// Install (or clear, with nullptr) the periodic cycle hook.  `first`
  /// is the first cycle of interest; after that the hook's own return
  /// values drive the cadence.
  void set_cycle_hook(CycleHook* hook, Cycle first = 0) {
    hook_ = hook;
    hook_next_ = hook == nullptr ? kNeverCycle : first;
  }

  /// Run until the event queues empty or `limit` is passed.
  /// Returns true if the system went idle (queues drained), false if the
  /// cycle limit stopped the run (useful as a livelock/deadlock guard).
  bool run(Cycle limit = kNeverCycle);

  /// Convenience: run with a hard limit and abort (assert/throw) if the
  /// limit is reached.  Used by tests and by MedeaSystem::run().
  void run_or_throw(Cycle limit);

  /// Abort the run loop at the end of the current cycle.
  void request_stop() { stop_requested_ = true; }

  bool idle() const { return ring_count_ == 0 && heap_.empty(); }

  /// Optional trace sink; null disables tracing.
  void set_trace(std::ostream* os) { trace_ = os; }
  std::ostream* trace() const { return trace_; }
  bool tracing() const { return trace_ != nullptr; }

 private:
  struct Event {
    Cycle cycle;
    std::uint64_t seq;  // FIFO order among same-cycle events => determinism
    Component* component;
    bool operator>(const Event& o) const {
      return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
    }
  };

  /// Head/tail of one calendar bucket's intrusive FIFO list.
  struct Bucket {
    detail::WakeNode* head = nullptr;
    detail::WakeNode* tail = nullptr;
  };

  void push_bucket(Component& c, Cycle at);
  void push_heap(Component& c, Cycle at);
  detail::WakeNode* acquire_node(Component& c);
  void release_node(detail::WakeNode* n);
  /// Earliest non-empty ring cycle in [now_, now_ + ring size), or
  /// kNeverCycle.  A bitmap word scan, so idle gaps cost ~ring/64 tests.
  Cycle next_ring_cycle() const;
  void drain_bucket(Cycle t);

  SchedulerConfig cfg_;
  bool use_calendar_ = true;
  Cycle now_ = 0;
  bool dispatching_ = false;
  bool stop_requested_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t active_cycles_ = 0;
  std::uint64_t wake_requests_ = 0;
  std::uint64_t wakes_deduped_ = 0;
  std::uint64_t bucket_pushes_ = 0;
  std::uint64_t overflow_pushes_ = 0;
  std::uint64_t commit_pushes_ = 0;
  std::uint64_t commits_deduped_ = 0;

  // Telemetry hook: hook_next_ is kNeverCycle whenever hook_ is null, so
  // the disabled case is a single always-false compare in run().
  CycleHook* hook_ = nullptr;
  Cycle hook_next_ = kNeverCycle;

  // Calendar tier: ring of buckets indexed by (cycle & ring_mask_), an
  // occupancy bitmap for next-event scans, and the spill-node pool.
  std::size_t ring_mask_ = 0;
  std::size_t ring_count_ = 0;  ///< nodes currently linked in buckets
  std::vector<Bucket> ring_;
  std::vector<std::uint64_t> ring_bitmap_;
  std::vector<std::unique_ptr<detail::WakeNode[]>> node_blocks_;
  detail::WakeNode* free_nodes_ = nullptr;

  // Overflow tier (the whole kernel under kBinaryHeap).
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;

  std::vector<Committable*> commit_list_;
  std::vector<Committable*> commit_batch_;
  std::vector<Component*> dispatch_batch_;
  std::ostream* trace_ = nullptr;
};

}  // namespace medea::sim
