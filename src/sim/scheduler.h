#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.h"

/// \file scheduler.h
/// The cycle-accurate discrete-event kernel at the bottom of MEDEA.
///
/// The paper models every block as a synchronous SystemC module clocked by
/// a single clock.  We reproduce those semantics with an event-driven
/// kernel so that cycles in which no component has work are skipped
/// entirely; this is what makes the 168-point design-space sweep of the
/// paper's Section III affordable on one machine.
///
/// Semantics contract (matches RTL intuition):
///  * A component's tick(now) sees only state committed in cycles < now.
///  * Values pushed into channels during tick(now) become visible to
///    consumers at cycle now+1 (two-phase staged commit).
///  * A component may receive spurious ticks; tick() must be idempotent
///    when there is no work to do.
///  * wake() during a tick may only target strictly future cycles.
///
/// Event-queue structure (SchedulerConfig): almost every wake in this
/// model targets `now+1` (FIFO commits, self-re-arming engines), so the
/// default kernel is a hierarchical calendar queue — a power-of-two ring
/// of per-cycle buckets, each an intrusive singly-linked list threaded
/// through the components themselves, making the dominant wake an O(1)
/// pointer bump with zero allocation.  Far-future wakes (DDR-scale
/// delays, idle-period jumps) overflow into the old binary heap, which
/// stays selectable as the whole kernel for differential testing.
/// Dispatch order is bit-identical between every kernel (calendar,
/// binary heap, and the sharded executor in sim/domain.h): within a
/// cycle the gathered batch is sorted by component construction order —
/// a canonical order that is identical however the wake requests arrived
/// and however the model is partitioned across shards.  The contract
/// already makes within-cycle tick order unobservable (staged commits),
/// so the canonical order changes no simulation result; it exists so
/// observer event streams (delivery logs, flit traces) are comparable
/// bit-for-bit across kernels.

namespace medea::sim {

class Scheduler;
class Component;

/// Periodic observer of simulated-time progress, for telemetry sampling.
///
/// The scheduler calls on_cycle(now) at the top of any dispatched cycle
/// that has reached the cycle the hook last asked for (before any
/// component ticks, so the hook sees only state committed in cycles
/// < now).  The return value is the next cycle of interest; returning
/// kNeverCycle mutes the hook.  Because the check rides the run loop's
/// existing cycle advance — one integer compare per *dispatched cycle*,
/// nothing per wake or per event — an unset hook costs effectively zero
/// on the kernel hot path, which is what lets telemetry stay compiled in
/// everywhere and be enabled per run.
class CycleHook {
 public:
  virtual ~CycleHook() = default;
  virtual Cycle on_cycle(Cycle now) = 0;
};

namespace detail {

/// Intrusive calendar-bucket link.  Every Component embeds one node (the
/// common case: at most one pending wake), and the scheduler keeps a
/// recycled pool of spill nodes for components with several wakes in
/// flight at once (e.g. a timed operation plus an engine self-wake).
struct WakeNode {
  Component* comp = nullptr;
  WakeNode* next = nullptr;
  bool pooled = false;  ///< false: embedded in its component
  bool active = false;  ///< embedded node currently linked in a bucket
};

}  // namespace detail

/// Base class for every clocked hardware model.
class Component {
 public:
  Component(Scheduler& sched, std::string name);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// One clock cycle of work.  Called only on cycles for which the
  /// component was woken (by itself, by a channel, or by another block).
  virtual void tick(Cycle now) = 0;

  const std::string& name() const { return name_; }
  Scheduler& scheduler() const { return sched_; }

 protected:
  /// Request a tick at now+delta (delta >= 1 while the clock is running).
  void wake(Cycle delta = 1);

  /// Global construction sequence number — the canonical within-cycle
  /// dispatch order (see the file comment).  Shard schedulers created by
  /// one SimDomain share a single counter, so the order is global across
  /// the whole partitioned model.
  std::uint64_t order() const { return order_; }

 private:
  friend class Scheduler;
  Scheduler& sched_;
  std::string name_;
  std::uint64_t order_;              // canonical dispatch order key
  Cycle last_ticked_ = kNeverCycle;  // dedup guard for same-cycle wakes
  Cycle last_wake_cycle_ = 0;        // push-time dedup stamp (see wake_at)
  detail::WakeNode hook_;            // intrusive calendar-bucket hook
};

/// Anything with staged state that must be made visible at end of cycle.
class Committable {
 public:
  virtual ~Committable() = default;
  virtual void commit() = 0;
};

/// The simulation kernel.
class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& cfg = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  const SchedulerConfig& config() const { return cfg_; }

  Cycle now() const { return now_; }

  /// Total cycles in which at least one component ticked.
  std::uint64_t active_cycles() const { return active_cycles_; }

  /// Schedule component c to tick at absolute cycle `at`.
  /// While dispatching a cycle, `at` must be strictly in the future.
  ///
  /// Duplicate wakes for the same (component, future cycle) are deduped
  /// at push time via a per-component last-wake stamp, so a hot FIFO
  /// fan-in (N channels committing into one router in the same cycle)
  /// costs one push instead of N.  A second dedup layer at pop time
  /// (Component::last_ticked_) covers the remaining `at == now` path.
  void wake_at(Component& c, Cycle at);

  /// Pressure counters: total wake_at() requests and how many were
  /// absorbed by the push-time dedup (never reached a queue).
  std::uint64_t wake_requests() const { return wake_requests_; }
  std::uint64_t wakes_deduped() const { return wakes_deduped_; }
  std::uint64_t heap_pushes() const { return wake_requests_ - wakes_deduped_; }

  /// Where the surviving pushes landed: calendar-ring buckets (the O(1)
  /// near-future fast path) vs the overflow binary heap.  In the legacy
  /// kBinaryHeap kernel every push counts as an overflow push.
  std::uint64_t bucket_pushes() const { return bucket_pushes_; }
  std::uint64_t overflow_pushes() const { return overflow_pushes_; }

  /// Effective log2 ring size after clamping / auto-sizing (0 under the
  /// kBinaryHeap kernel, which has no ring).
  std::uint32_t ring_bits_chosen() const { return ring_bits_chosen_; }

  /// Observed wake-horizon histogram: bucket k counts surviving pushes
  /// whose horizon (at - now) had bit_width k, i.e. fell in
  /// [2^(k-1), 2^k); bucket 0 counts zero-horizon pushes (at == now,
  /// legal between runs).  The basis for ring auto-sizing calibration.
  const std::array<std::uint64_t, 65>& wake_horizon_histogram() const {
    return horizon_hist_;
  }

  /// Smallest ring_bits (clamped to [6, 20]) whose ring would have
  /// absorbed at least `coverage` of the observed wake horizons — what
  /// SchedulerConfig::horizon_hint should be tuned toward.
  std::uint32_t suggested_ring_bits(double coverage = 0.999) const;

  /// Register a staged object for commit at the end of the current cycle.
  /// Idempotent per cycle only if the caller guards; cheap either way.
  /// Fifo guards with an epoch stamp (one registration per FIFO per
  /// cycle, however many pushes/pops hit it) and reports the absorbed
  /// duplicates through note_commit_dedup().
  void defer_commit(Committable& c) {
    commit_list_.push_back(&c);
    ++commit_pushes_;
  }

  /// A caller-side guard (e.g. Fifo's epoch stamp) absorbed a duplicate
  /// same-cycle commit registration.
  void note_commit_dedup() { ++commits_deduped_; }

  /// Commit-list pressure: registrations that reached the list vs
  /// duplicates absorbed by caller-side epoch stamps.
  std::uint64_t commit_pushes() const { return commit_pushes_; }
  std::uint64_t commits_deduped() const { return commits_deduped_; }

  /// Entries currently queued across both tiers (calendar ring +
  /// overflow heap) — the "event queue occupancy" telemetry gauge.
  std::size_t queued() const { return ring_count_ + heap_.size(); }

  /// Install (or clear, with nullptr) the periodic cycle hook.  `first`
  /// is the first cycle of interest; after that the hook's own return
  /// values drive the cadence.
  void set_cycle_hook(CycleHook* hook, Cycle first = 0) {
    hook_ = hook;
    hook_next_ = hook == nullptr ? kNeverCycle : first;
  }

  /// Run until the event queues empty or `limit` is passed.
  /// Returns true if the system went idle (queues drained), false if the
  /// cycle limit stopped the run (useful as a livelock/deadlock guard).
  bool run(Cycle limit = kNeverCycle);

  /// Convenience: run with a hard limit and abort (assert/throw) if the
  /// limit is reached.  Used by tests and by MedeaSystem::run().
  void run_or_throw(Cycle limit);

  /// Abort the run loop at the end of the current cycle.
  void request_stop() { stop_requested_ = true; }

  bool idle() const { return ring_count_ == 0 && heap_.empty(); }

  // ------------------------------------------------------------------
  // Sharded-executor interface (sim::SimDomain).  A SimDomain drives
  // several shard schedulers in lockstep: per global cycle it asks each
  // shard for its next event time, min-reduces across shards, then has
  // due shards dispatch_cycle(t) and idle shards fast_forward(t).  The
  // single-thread run() loop is built from the same pieces, so the two
  // execution modes cannot drift apart.
  // ------------------------------------------------------------------

  /// Earliest pending event time across both tiers (kNeverCycle: idle).
  Cycle next_event_cycle() const {
    Cycle t = use_calendar_ ? next_ring_cycle() : kNeverCycle;
    if (!heap_.empty() && heap_.top().cycle < t) t = heap_.top().cycle;
    return t;
  }

  /// Dispatch one cycle: gather the batch woken for `t` (which must be
  /// next_event_cycle()), tick it in canonical component order, and run
  /// the end-of-cycle commit phase.  Does not fire the cycle hook — the
  /// caller (run() or the SimDomain) owns hook cadence.
  void dispatch_cycle(Cycle t);

  /// Advance now() to `t` without dispatching (every pending event is
  /// known to be later than `t`).  The sharded executor uses this to
  /// keep an idle shard's clock in lockstep so that wakes delivered by
  /// the cross-shard drain phase (at t+1) satisfy the monotonicity
  /// invariants and stay inside the calendar ring's horizon window.
  void fast_forward(Cycle t) {
    assert(t >= now_);
    assert(next_event_cycle() > t);
    now_ = t;
  }

  bool stop_requested() const { return stop_requested_; }
  void reset_stop() { stop_requested_ = false; }

  /// Redirect the component-construction order counter (the canonical
  /// dispatch key) to shared storage.  A SimDomain points every shard at
  /// one counter *before any component is built*, making construction
  /// order global across the partitioned model.
  void adopt_order_counter(std::uint64_t* counter) {
    order_counter_ = counter;
  }
  std::uint64_t next_component_order() { return (*order_counter_)++; }

  /// Optional trace sink; null disables tracing.
  void set_trace(std::ostream* os) { trace_ = os; }
  std::ostream* trace() const { return trace_; }
  bool tracing() const { return trace_ != nullptr; }

 private:
  struct Event {
    Cycle cycle;
    std::uint64_t seq;  // FIFO order among same-cycle events => determinism
    Component* component;
    bool operator>(const Event& o) const {
      return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
    }
  };

  /// Head/tail of one calendar bucket's intrusive FIFO list.
  struct Bucket {
    detail::WakeNode* head = nullptr;
    detail::WakeNode* tail = nullptr;
  };

  void push_bucket(Component& c, Cycle at);
  void push_heap(Component& c, Cycle at);
  detail::WakeNode* acquire_node(Component& c);
  void release_node(detail::WakeNode* n);
  /// Earliest non-empty ring cycle in [now_, now_ + ring size), or
  /// kNeverCycle.  A bitmap word scan, so idle gaps cost ~ring/64 tests.
  Cycle next_ring_cycle() const;
  void drain_bucket(Cycle t);

  SchedulerConfig cfg_;
  bool use_calendar_ = true;
  std::uint32_t ring_bits_chosen_ = 0;
  Cycle now_ = 0;
  bool dispatching_ = false;
  bool stop_requested_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t order_counter_storage_ = 0;
  std::uint64_t* order_counter_ = &order_counter_storage_;
  std::uint64_t active_cycles_ = 0;
  std::uint64_t wake_requests_ = 0;
  std::uint64_t wakes_deduped_ = 0;
  std::uint64_t bucket_pushes_ = 0;
  std::uint64_t overflow_pushes_ = 0;
  std::uint64_t commit_pushes_ = 0;
  std::uint64_t commits_deduped_ = 0;
  std::array<std::uint64_t, 65> horizon_hist_{};

  // Telemetry hook: hook_next_ is kNeverCycle whenever hook_ is null, so
  // the disabled case is a single always-false compare in run().
  CycleHook* hook_ = nullptr;
  Cycle hook_next_ = kNeverCycle;

  // Calendar tier: ring of buckets indexed by (cycle & ring_mask_), an
  // occupancy bitmap for next-event scans, and the spill-node pool.
  std::size_t ring_mask_ = 0;
  std::size_t ring_count_ = 0;  ///< nodes currently linked in buckets
  std::vector<Bucket> ring_;
  std::vector<std::uint64_t> ring_bitmap_;
  std::vector<std::unique_ptr<detail::WakeNode[]>> node_blocks_;
  detail::WakeNode* free_nodes_ = nullptr;

  // Overflow tier (the whole kernel under kBinaryHeap).
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;

  std::vector<Committable*> commit_list_;
  std::vector<Committable*> commit_batch_;
  std::vector<Component*> dispatch_batch_;
  std::ostream* trace_ = nullptr;
};

}  // namespace medea::sim
