#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.h"

/// \file scheduler.h
/// The cycle-accurate discrete-event kernel at the bottom of MEDEA.
///
/// The paper models every block as a synchronous SystemC module clocked by
/// a single clock.  We reproduce those semantics with an event-driven
/// kernel so that cycles in which no component has work are skipped
/// entirely; this is what makes the 168-point design-space sweep of the
/// paper's Section III affordable on one machine.
///
/// Semantics contract (matches RTL intuition):
///  * A component's tick(now) sees only state committed in cycles < now.
///  * Values pushed into channels during tick(now) become visible to
///    consumers at cycle now+1 (two-phase staged commit).
///  * A component may receive spurious ticks; tick() must be idempotent
///    when there is no work to do.
///  * wake() during a tick may only target strictly future cycles.

namespace medea::sim {

class Scheduler;

/// Base class for every clocked hardware model.
class Component {
 public:
  Component(Scheduler& sched, std::string name);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// One clock cycle of work.  Called only on cycles for which the
  /// component was woken (by itself, by a channel, or by another block).
  virtual void tick(Cycle now) = 0;

  const std::string& name() const { return name_; }
  Scheduler& scheduler() const { return sched_; }

 protected:
  /// Request a tick at now+delta (delta >= 1 while the clock is running).
  void wake(Cycle delta = 1);

 private:
  friend class Scheduler;
  Scheduler& sched_;
  std::string name_;
  Cycle last_ticked_ = kNeverCycle;  // dedup guard for same-cycle wakes
  Cycle last_wake_cycle_ = 0;        // push-time dedup stamp (see wake_at)
};

/// Anything with staged state that must be made visible at end of cycle.
class Committable {
 public:
  virtual ~Committable() = default;
  virtual void commit() = 0;
};

/// The simulation kernel.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Cycle now() const { return now_; }

  /// Total cycles in which at least one component ticked.
  std::uint64_t active_cycles() const { return active_cycles_; }

  /// Schedule component c to tick at absolute cycle `at`.
  /// While dispatching a cycle, `at` must be strictly in the future.
  ///
  /// Duplicate wakes for the same (component, future cycle) are deduped
  /// at push time via a per-component last-wake stamp, so a hot FIFO
  /// fan-in (N channels committing into one router in the same cycle)
  /// costs one heap push instead of N.  A second dedup layer at pop time
  /// (Component::last_ticked_) covers the remaining `at == now` path.
  void wake_at(Component& c, Cycle at);

  /// Heap-pressure counters: total wake_at() requests and how many were
  /// absorbed by the push-time dedup (never reached the heap).
  std::uint64_t wake_requests() const { return wake_requests_; }
  std::uint64_t wakes_deduped() const { return wakes_deduped_; }
  std::uint64_t heap_pushes() const { return wake_requests_ - wakes_deduped_; }

  /// Register a staged object for commit at the end of the current cycle.
  /// Idempotent per cycle only if the caller guards; cheap either way.
  void defer_commit(Committable& c) { commit_list_.push_back(&c); }

  /// Run until the event heap empties or `limit` is passed.
  /// Returns true if the system went idle (heap drained), false if the
  /// cycle limit stopped the run (useful as a livelock/deadlock guard).
  bool run(Cycle limit = kNeverCycle);

  /// Convenience: run with a hard limit and abort (assert/throw) if the
  /// limit is reached.  Used by tests and by MedeaSystem::run().
  void run_or_throw(Cycle limit);

  /// Abort the run loop at the end of the current cycle.
  void request_stop() { stop_requested_ = true; }

  bool idle() const { return heap_.empty(); }

  /// Optional trace sink; null disables tracing.
  void set_trace(std::ostream* os) { trace_ = os; }
  std::ostream* trace() const { return trace_; }
  bool tracing() const { return trace_ != nullptr; }

 private:
  struct Event {
    Cycle cycle;
    std::uint64_t seq;  // FIFO order among same-cycle events => determinism
    Component* component;
    bool operator>(const Event& o) const {
      return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
    }
  };

  Cycle now_ = 0;
  bool dispatching_ = false;
  bool stop_requested_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t active_cycles_ = 0;
  std::uint64_t wake_requests_ = 0;
  std::uint64_t wakes_deduped_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::vector<Committable*> commit_list_;
  std::vector<Committable*> commit_batch_;
  std::vector<Component*> dispatch_batch_;
  std::ostream* trace_ = nullptr;
};

}  // namespace medea::sim
