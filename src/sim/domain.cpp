#include "sim/domain.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

namespace medea::sim {

namespace {
/// Runaway guard: more shards than this is never useful for the fabric
/// sizes this model targets, and each shard is a full scheduler.
constexpr int kMaxShards = 64;
}  // namespace

int SimDomain::resolve_shards(const SchedulerConfig& cfg, int max_useful) {
  if (cfg.queue != SchedulerConfig::EventQueue::kShardedCalendar) return 1;
  int n = cfg.num_shards != 0
              ? static_cast<int>(cfg.num_shards)
              : static_cast<int>(std::thread::hardware_concurrency());
  if (n < 1) n = 1;
  if (max_useful > 0) n = std::min(n, max_useful);
  return std::min(n, kMaxShards);
}

SimDomain::SimDomain(const SchedulerConfig& cfg, int max_useful_shards)
    : cfg_(cfg) {
  const int n = resolve_shards(cfg_, max_useful_shards);
  SchedulerConfig shard_cfg = cfg_;
  if (shard_cfg.queue == SchedulerConfig::EventQueue::kShardedCalendar) {
    shard_cfg.queue = SchedulerConfig::EventQueue::kCalendar;
  }
  shards_.reserve(static_cast<std::size_t>(n));
  drains_.resize(static_cast<std::size_t>(n));
  local_next_.resize(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Scheduler>(shard_cfg));
    // One construction-order counter across all shards: the canonical
    // within-cycle dispatch key is global, so per-shard event streams
    // concatenate into exactly the single-kernel order.
    shards_.back()->adopt_order_counter(&order_counter_);
  }
}

SimDomain::~SimDomain() = default;

bool SimDomain::idle() const {
  for (const auto& s : shards_) {
    if (!s->idle()) return false;
  }
  return true;
}

void SimDomain::set_cycle_hook(CycleHook* hook, Cycle first) {
  // Registration-time API: no worker thread is running, so the caller
  // exclusively owns both the tables and the serial-phase state.
  setup_.assert_held();
  serial_.assert_held();
  if (!sharded()) {
    shards_[0]->set_cycle_hook(hook, first);
    return;
  }
  hook_ = hook;
  hook_next_ = hook == nullptr ? kNeverCycle : first;
}

void SimDomain::add_shard_drain(int s, std::function<void(Cycle)> fn) {
  setup_.assert_held();  // registration time, before run()
  drains_[static_cast<std::size_t>(s)].push_back(std::move(fn));
}

void SimDomain::add_cycle_end(std::function<void(Cycle)> fn) {
  setup_.assert_held();  // registration time, before run()
  cycle_end_.push_back(std::move(fn));
}

void SimDomain::add_pre_sample(std::function<void()> fn) {
  setup_.assert_held();  // registration time, before run()
  pre_sample_.push_back(std::move(fn));
}

#define MEDEA_DOMAIN_SUM(counter)                       \
  std::uint64_t total = 0;                              \
  for (const auto& s : shards_) total += s->counter();  \
  return total

std::uint64_t SimDomain::wake_requests() const {
  MEDEA_DOMAIN_SUM(wake_requests);
}
std::uint64_t SimDomain::wakes_deduped() const {
  MEDEA_DOMAIN_SUM(wakes_deduped);
}
std::uint64_t SimDomain::bucket_pushes() const {
  MEDEA_DOMAIN_SUM(bucket_pushes);
}
std::uint64_t SimDomain::overflow_pushes() const {
  MEDEA_DOMAIN_SUM(overflow_pushes);
}
std::uint64_t SimDomain::commit_pushes() const {
  MEDEA_DOMAIN_SUM(commit_pushes);
}
std::uint64_t SimDomain::commits_deduped() const {
  MEDEA_DOMAIN_SUM(commits_deduped);
}
std::size_t SimDomain::queued() const { MEDEA_DOMAIN_SUM(queued); }

#undef MEDEA_DOMAIN_SUM

void SimDomain::barrier_wait(std::uint64_t* wait_ns) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  const auto n = static_cast<std::uint32_t>(shards_.size());
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) == n - 1) {
    // Last arrival: reset the count and release the generation.
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    return;
  }
  // Host-time metric only (barrier_wait_ns, the load-imbalance gauge):
  // never feeds simulated state.
  const auto spin_start =
      std::chrono::steady_clock::now();  // lint:allow(banned-time-source)
  std::uint32_t spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    if (++spins >= 4096) {
      spins = 0;
      std::this_thread::yield();
    }
  }
  *wait_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() -  // lint:allow(banned-time-source)
          spin_start)
          .count());
}

bool SimDomain::run(Cycle limit) {
  if (!sharded()) return shards_[0]->run(limit);
  return run_sharded(limit);
}

void SimDomain::run_or_throw(Cycle limit) {
  if (!run(limit)) {
    throw std::runtime_error(
        "SimDomain::run_or_throw: cycle limit " + std::to_string(limit) +
        " reached at cycle " + std::to_string(now()) +
        " without the system going idle (deadlock or livelock?)");
  }
}

bool SimDomain::run_sharded(Cycle limit) {
  // No worker is running yet: the caller owns the serial state.
  serial_.assert_held();
  stop_flag_ = false;
  for (auto& s : shards_) s->reset_stop();
  const int n = num_shards();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n - 1));
  for (int s = 1; s < n; ++s) {
    workers.emplace_back([this, s, limit] { shard_loop(s, limit); });
  }
  const bool went_idle = shard_loop(0, limit);
  for (auto& w : workers) w.join();
  return went_idle;
}

bool SimDomain::shard_loop(int s, Cycle limit) {
  Scheduler& sch = shard(s);
  // The registration tables were frozen before the workers spawned;
  // every shard reads them (shared) for the whole run.
  setup_.assert_shared();
  auto& my_drains = drains_[static_cast<std::size_t>(s)];
  std::uint64_t wait_ns = 0;
  bool went_idle = true;

  for (;;) {
    // --- publish phase: post this shard's next-event time ------------
    // Each shard exclusively owns its own padded slot here; the token's
    // granularity is the whole slot vector, acquired around the
    // single-slot write.
    publish_.acquire();
    local_next_[static_cast<std::size_t>(s)].value = sch.next_event_cycle();
    publish_.release();
    barrier_wait(&wait_ns);

    // Every shard computes the same min over the published times (the
    // decision is replicated, not communicated, so no extra barrier).
    // The slots are stable until the next publish window, so this
    // shard's dispatch-or-fast-forward decision is read here too.
    publish_.acquire_shared();
    Cycle t = kNeverCycle;
    for (const PaddedCycle& c : local_next_) t = std::min(t, c.value);
    const bool due = local_next_[static_cast<std::size_t>(s)].value == t;
    publish_.release_shared();

    // --- serial phase (shard 0 only) ----------------------------------
    if (s == 0) {
      serial_.acquire();
      // End-of-cycle work owed for the previous global cycle: flush the
      // cross-shard observer buffers in shard order — which, with
      // contiguous node bands, is exactly the canonical global event
      // order — while every other shard is parked at the next barrier.
      if (pending_flush_ != kNeverCycle) {
        for (auto& fn : cycle_end_) fn(pending_flush_);
        pending_flush_ = kNeverCycle;
      }
      for (const auto& sh : shards_) {
        if (sh->stop_requested()) stop_flag_ = true;
      }
      if (!stop_flag_ && t != kNeverCycle && t <= limit) {
        now_ = t;
        ++active_cycles_;
        if (t >= hook_next_) [[unlikely]] {
          for (auto& fn : pre_sample_) fn();
          hook_next_ = hook_->on_cycle(t);
        }
        if (!cycle_end_.empty()) pending_flush_ = t;
      }
      serial_.release();
    }
    barrier_wait(&wait_ns);

    // All shards take the same exit, on the same iteration.  The serial
    // state is read-stable until shard 0's next serial window.
    serial_.acquire_shared();
    const bool stopped = stop_flag_;
    serial_.release_shared();
    if (t == kNeverCycle || stopped) break;  // idle (or stopped): true
    if (t > limit) {
      went_idle = false;
      break;
    }

    // --- parallel phase: dispatch or fast-forward, then drain ---------
    if (due) {
      sch.dispatch_cycle(t);
    } else {
      sch.fast_forward(t);
    }
    barrier_wait(&wait_ns);
    // Incoming mailboxes: deliver flits committed by neighbor shards
    // this cycle (visible at t+1, like any committed push).
    for (auto& fn : my_drains) fn(t);
  }

  barrier_wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
  return went_idle;
}

}  // namespace medea::sim
