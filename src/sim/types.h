#pragma once

#include <cstdint>

/// \file types.h
/// Fundamental scalar types shared by every MEDEA simulation module.

namespace medea::sim {

/// Simulation time, measured in clock cycles of the single system clock.
/// The paper's SystemC model is fully synchronous; so is this kernel.
using Cycle = std::uint64_t;

/// Sentinel for "no scheduled time".
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/// Event-queue selection for the discrete-event kernel.
///
/// The calendar queue is the default: a power-of-two ring of per-cycle
/// buckets absorbs every near-future wake (the overwhelming majority are
/// `now+1`) as an O(1) pointer bump, with a binary heap kept only as an
/// overflow tier for far-future events (DDR-refresh-scale delays).  The
/// pure binary heap remains selectable so differential tests can run the
/// same seed through both kernels and assert bit-identical behaviour.
struct SchedulerConfig {
  enum class EventQueue : std::uint8_t {
    kCalendar,    ///< two-tier calendar queue + overflow heap (default)
    kBinaryHeap,  ///< legacy single binary heap (reference kernel)
  };

  EventQueue queue = EventQueue::kCalendar;

  /// log2 of the calendar ring size in cycles.  Wakes within
  /// 2^ring_bits cycles of `now` land in a bucket; anything further out
  /// goes to the overflow heap.  Clamped to [6, 20] by the Scheduler.
  std::uint32_t ring_bits = 10;

  bool operator==(const SchedulerConfig&) const = default;
};

}  // namespace medea::sim
