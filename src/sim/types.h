#pragma once

#include <cstdint>

/// \file types.h
/// Fundamental scalar types shared by every MEDEA simulation module.

namespace medea::sim {

/// Simulation time, measured in clock cycles of the single system clock.
/// The paper's SystemC model is fully synchronous; so is this kernel.
using Cycle = std::uint64_t;

/// Sentinel for "no scheduled time".
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/// Event-queue selection for the discrete-event kernel.
///
/// The calendar queue is the default: a power-of-two ring of per-cycle
/// buckets absorbs every near-future wake (the overwhelming majority are
/// `now+1`) as an O(1) pointer bump, with a binary heap kept only as an
/// overflow tier for far-future events (DDR-refresh-scale delays).  The
/// pure binary heap remains selectable so differential tests can run the
/// same seed through both kernels and assert bit-identical behaviour.
/// kShardedCalendar partitions the model across per-thread calendar
/// schedulers synchronized at cycle boundaries (sim::SimDomain); code
/// paths that cannot shard (full-system apps, the XY baseline) fall back
/// transparently to one calendar shard, so the selection is always safe.
struct SchedulerConfig {
  enum class EventQueue : std::uint8_t {
    kCalendar,         ///< two-tier calendar queue + overflow heap (default)
    kBinaryHeap,       ///< legacy single binary heap (reference kernel)
    kShardedCalendar,  ///< per-thread calendar shards, lockstep cycle barrier
  };

  EventQueue queue = EventQueue::kCalendar;

  /// log2 of the calendar ring size in cycles.  Wakes within
  /// 2^ring_bits cycles of `now` land in a bucket; anything further out
  /// goes to the overflow heap.  Clamped to [6, 20] by the Scheduler.
  /// 0 = size automatically from horizon_hint (below).
  std::uint32_t ring_bits = 10;

  /// Sizing hint for ring_bits == 0: the longest wake horizon (cycles
  /// into the future) the model is expected to use routinely.  The
  /// scheduler picks the smallest ring covering 2x the hint, so the
  /// common wakes stay O(1) bucket pushes with slack for jitter; 0 means
  /// "no idea", which sizes the ring at the former fixed default (2^10).
  /// Runs export the observed wake-horizon histogram
  /// (Scheduler::suggested_ring_bits) so the hint can be calibrated.
  Cycle horizon_hint = 0;

  /// kShardedCalendar only: number of parallel shards.  0 = auto from
  /// std::thread::hardware_concurrency().  Clamped by the model's useful
  /// parallelism (a W x H torus shards by rows, so at most H shards).
  std::uint32_t num_shards = 0;

  bool operator==(const SchedulerConfig&) const = default;
};

}  // namespace medea::sim
