#pragma once

#include <cstdint>

/// \file types.h
/// Fundamental scalar types shared by every MEDEA simulation module.

namespace medea::sim {

/// Simulation time, measured in clock cycles of the single system clock.
/// The paper's SystemC model is fully synchronous; so is this kernel.
using Cycle = std::uint64_t;

/// Sentinel for "no scheduled time".
inline constexpr Cycle kNeverCycle = ~Cycle{0};

}  // namespace medea::sim
