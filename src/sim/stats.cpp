#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace medea::sim {

std::uint64_t LatencyHistogram::representative(int i) {
  if (i < 2 * kSubBuckets) return static_cast<std::uint64_t>(i);
  const int g = (i - 2 * kSubBuckets) / kSubBuckets + 1;
  const int m = (i - 2 * kSubBuckets) % kSubBuckets + kSubBuckets;
  const std::uint64_t lo = static_cast<std::uint64_t>(m) << g;
  return lo + (std::uint64_t{1} << (g - 1));  // bucket midpoint
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample, 1-based (q=0 -> first, q=1 -> last).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(representative(i), min_, max_);
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
}

void LatencyHistogram::clear() { *this = LatencyHistogram{}; }

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << '=' << v << '\n';
  for (const auto& [k, a] : accs_) {
    os << k << ": n=" << a.count() << " mean=" << a.mean() << " min=" << a.min()
       << " max=" << a.max() << '\n';
  }
  return os.str();
}

}  // namespace medea::sim
