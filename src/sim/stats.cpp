#include "sim/stats.h"

#include <sstream>

namespace medea::sim {

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << '=' << v << '\n';
  for (const auto& [k, a] : accs_) {
    os << k << ": n=" << a.count() << " mean=" << a.mean() << " min=" << a.min()
       << " max=" << a.max() << '\n';
  }
  return os.str();
}

}  // namespace medea::sim
