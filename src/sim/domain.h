#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/scheduler.h"
#include "sim/types.h"

/// \file domain.h
/// The sharded parallel simulation kernel: several calendar-queue
/// Scheduler shards driven in lockstep, one global cycle at a time.
///
/// Graphite-style cycle-level distribution: the model is partitioned
/// into per-thread shards (a torus shards by row bands — see
/// noc::Network), each shard owns its components and runs its own
/// calendar queue, and shards synchronize at every active cycle with a
/// sense-reversing spin barrier.  Cross-shard channels are split into a
/// producer-side FIFO whose commit relays into a per-edge SPSC mailbox
/// (Fifo::set_relay) and a consumer-side FIFO filled by the domain's
/// drain phase (Fifo::push_committed) — a flit crossing the boundary at
/// cycle c is delivered before the neighbor shard dispatches c+1, which
/// is exactly the shared-FIFO visibility rule.
///
/// One global cycle runs in three barrier-separated phases:
///
///   publish   each shard posts its next-event time; barrier
///   serial    shard 0 alone: flush the previous cycle's cross-shard
///             observer events (in shard order = canonical component
///             order), min-reduce the global next cycle t, fire the
///             cycle hook for t; barrier
///   parallel  due shards dispatch_cycle(t), idle shards
///             fast_forward(t); barrier; each shard drains its incoming
///             mailboxes (push_committed + consumer wakes at t+1)
///
/// Every phase boundary is a full acquire/release barrier, so the
/// mailboxes and per-shard state need no atomics of their own — writers
/// and readers of any location are always separated by a barrier, which
/// is also what makes the kernel ThreadSanitizer-clean.
///
/// That barrier-ownership discipline is machine-checked at compile time
/// (clang -Wthread-safety, the MEDEA_THREAD_SAFETY build option) with
/// three capability tokens (see core/thread_annotations.h):
///
///   setup_    the registration tables (drains_, cycle_end_,
///             pre_sample_, hook_) — written only before run() spawns
///             workers, read shared by every shard during the run
///   publish_  the padded next-event slots — each shard exclusively
///             writes its own slot in the publish window, every shard
///             reads all slots after the publish barrier
///   serial_   the lockstep clock and end-of-cycle state (now_,
///             active_cycles_, hook_next_, pending_flush_, stop_flag_)
///             — exclusively owned by shard 0 between the publish and
///             serial barriers, read shared by all after the serial
///             barrier, and owned by the external caller whenever no
///             worker thread is running
///
/// Determinism: the global cycle sequence is a pure min-reduction of
/// per-shard next-event times; within a cycle each shard ticks in the
/// canonical component-construction order (shared across shards via one
/// order counter) and cross-shard effects land at t+1 regardless of
/// which thread got where first.  Results — cycle counts, delivery
/// logs, stats, flit traces — are bit-identical to the single-thread
/// calendar kernel; test_scheduler_diff enforces it on every registry
/// workload.
///
/// Worker threads are spawned per run() call (a run is seconds of work;
/// thread startup is microseconds) and joined before run() returns, so
/// the domain is externally single-threaded.

namespace medea::sim {

class SimDomain {
 public:
  /// Build the shard set for `cfg`.  The shard count is
  /// resolve_shards(cfg, max_useful_shards); anything other than
  /// kShardedCalendar, and models that cannot shard (pass
  /// max_useful_shards = 1), get exactly one shard — the transparent
  /// single-thread fallback.  Shard schedulers run the calendar kernel
  /// under kShardedCalendar and the configured kernel otherwise, so a
  /// 1-shard domain is bit-identical to a plain Scheduler.
  explicit SimDomain(const SchedulerConfig& cfg, int max_useful_shards = 0);
  ~SimDomain();

  SimDomain(const SimDomain&) = delete;
  SimDomain& operator=(const SimDomain&) = delete;

  /// Shard count `cfg` resolves to: 1 unless kShardedCalendar, else
  /// num_shards (0 = std::thread::hardware_concurrency), clamped to
  /// [1, max_useful] (0 = unclamped) and a sanity cap of 64.
  static int resolve_shards(const SchedulerConfig& cfg, int max_useful);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool sharded() const { return shards_.size() > 1; }
  Scheduler& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const Scheduler& shard(int s) const {
    return *shards_[static_cast<std::size_t>(s)];
  }

  /// Last dispatched global cycle (the lockstep clock).
  Cycle now() const {
    // Invariant: external reads happen only while no worker is running
    // (run() joins before returning), or from the serial phase.
    serial_.assert_shared();
    return sharded() ? now_ : shards_[0]->now();
  }

  /// Global cycles in which at least one shard ticked — the exact
  /// analogue of Scheduler::active_cycles() and bit-identical to it.
  std::uint64_t active_cycles() const {
    serial_.assert_shared();  // same invariant as now()
    return sharded() ? active_cycles_ : shards_[0]->active_cycles();
  }

  bool idle() const;

  /// Run until every shard drains or `limit` is passed; same contract
  /// as Scheduler::run (false = the cycle limit stopped the run).
  bool run(Cycle limit = kNeverCycle);
  void run_or_throw(Cycle limit);

  /// Cycle hook with Scheduler::set_cycle_hook semantics, fired once
  /// per global cycle from the serial phase (so it observes
  /// end-of-previous-cycle state across every shard).
  void set_cycle_hook(CycleHook* hook, Cycle first = 0);

  // ------------------------------------------------------------------
  // Cross-shard services (registered at model construction time)
  // ------------------------------------------------------------------

  /// Per-shard drain-phase work: deliver shard `s`'s incoming mailboxes
  /// for the cycle just dispatched.  Runs on shard s's thread, after
  /// every shard's commits and before any shard's next dispatch.
  void add_shard_drain(int s, std::function<void(Cycle)> fn);

  /// Serial end-of-cycle work (observer fan-in flush, in registration
  /// order): runs on shard 0's thread once per active global cycle,
  /// while every other shard is parked at a barrier.
  void add_cycle_end(std::function<void(Cycle)> fn);

  /// Serial pre-hook work (e.g. merging per-shard StatSets so a
  /// telemetry sampler reads coherent aggregates): runs immediately
  /// before the cycle hook fires, and only then — an unsampled run
  /// never pays for it.
  void add_pre_sample(std::function<void()> fn);

  // ------------------------------------------------------------------
  // Aggregated kernel counters (sums over shards; the wake/dedup/active
  // counters are kernel-independent and bit-match the single-thread
  // kernels — see workload::add_sched_stats)
  // ------------------------------------------------------------------

  std::uint64_t wake_requests() const;
  std::uint64_t wakes_deduped() const;
  std::uint64_t bucket_pushes() const;
  std::uint64_t overflow_pushes() const;
  std::uint64_t commit_pushes() const;
  std::uint64_t commits_deduped() const;
  std::size_t queued() const;

  /// Wall-clock nanoseconds threads spent spinning at cycle barriers,
  /// summed over shards (the bench's load-imbalance metric).
  std::uint64_t barrier_wait_ns() const {
    return barrier_wait_ns_.load(std::memory_order_relaxed);
  }

 private:
  bool run_sharded(Cycle limit);
  /// One shard's run loop; returns true when the run ended idle.
  bool shard_loop(int s, Cycle limit);
  void barrier_wait(std::uint64_t* wait_ns);

  // Ownership tokens for clang's thread-safety analysis (see the file
  // comment for the phase protocol each one encodes).  Zero-size, every
  // operation on them compiles to nothing.
  core::Capability setup_;    ///< registration tables, frozen at run()
  core::Capability publish_;  ///< padded next-event slots
  core::Capability serial_;   ///< lockstep clock + end-of-cycle state

  SchedulerConfig cfg_;
  std::vector<std::unique_ptr<Scheduler>> shards_;
  std::uint64_t order_counter_ = 0;

  Cycle now_ MEDEA_GUARDED_BY(serial_) = 0;
  std::uint64_t active_cycles_ MEDEA_GUARDED_BY(serial_) = 0;
  CycleHook* hook_ MEDEA_GUARDED_BY(setup_) = nullptr;
  Cycle hook_next_ MEDEA_GUARDED_BY(serial_) = kNeverCycle;

  std::vector<std::vector<std::function<void(Cycle)>>> drains_
      MEDEA_GUARDED_BY(setup_);
  std::vector<std::function<void(Cycle)>> cycle_end_ MEDEA_GUARDED_BY(setup_);
  std::vector<std::function<void()>> pre_sample_ MEDEA_GUARDED_BY(setup_);

  // Sense-reversing spin barrier (generation counter + arrival count).
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> barrier_wait_ns_{0};

  /// Per-shard next-event times, published before each barrier.  Padded
  /// to cache lines so publishing doesn't bounce one line between every
  /// shard.
  struct alignas(64) PaddedCycle {
    Cycle value = kNeverCycle;
  };
  std::vector<PaddedCycle> local_next_ MEDEA_GUARDED_BY(publish_);

  // Written only by shard 0 in the serial phase, read by all after the
  // following barrier.
  Cycle pending_flush_ MEDEA_GUARDED_BY(serial_) =
      kNeverCycle;  ///< cycle whose end work is owed
  bool stop_flag_ MEDEA_GUARDED_BY(serial_) = false;
};

}  // namespace medea::sim
