#pragma once

#include <cassert>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/scheduler.h"
#include "sim/types.h"

/// \file fifo.h
/// Synchronous single-producer/single-consumer FIFO channel.
///
/// This is the universal interconnect primitive of the model: NoC links,
/// the TIE message-passing ports, the pif2NoC arbiter queues and the
/// MPMMU's Pif-Request / Pif-Data / outgoing queues are all Fifo<T>.
///
/// Timing semantics (hardware-faithful):
///  * push() during cycle T becomes visible to the consumer at T+1.
///  * pop() during cycle T removes the element immediately from the
///    consumer's view, but the slot is returned to the producer's free
///    space only at T+1 (as a registered occupancy counter would).
///  * The consumer is woken automatically when data arrives; the producer
///    is woken automatically when a full FIFO gains space.
///
/// These rules make simulation results independent of the order in which
/// components tick within a cycle.

namespace medea::sim {

template <typename T>
class Fifo : public Committable {
 public:
  /// capacity == 0 means unbounded (used for modelling ideal sinks and
  /// for test instrumentation; real MEDEA queues are always bounded).
  Fifo(Scheduler& sched, std::string name, std::size_t capacity)
      : sched_(sched), name_(std::move(name)), capacity_(capacity) {}

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }

  /// Component to wake when staged data commits (new data visible).
  void set_consumer(Component* c) { consumer_ = c; }
  /// Component to wake when a full FIFO frees space.
  void set_producer(Component* c) { producer_ = c; }
  Component* consumer() const { return consumer_; }

  // ------------------------------------------------------------------
  // Shard-boundary relay (sim::SimDomain cross-shard links)
  // ------------------------------------------------------------------

  /// Boundary-relay hook: when set, commit() hands the cycle's staged
  /// batch to `fn` (a mailbox append on the producer shard) instead of
  /// appending to the committed queue and waking the consumer.  The
  /// consumer-side half of the split link receives the batch next via
  /// push_committed() in the domain's drain phase, which reproduces the
  /// shared-FIFO timing exactly (push at T -> visible at T+1).
  ///
  /// Only sound for channels whose producer never observes occupancy
  /// (the deflection fabric's links: no back-pressure, can_push() is an
  /// assert) — a relayed FIFO's committed queue stays empty, so
  /// producer_occupancy() undercounts in-flight entries.
  using RelayFn = void (*)(void* ctx, std::vector<T>& staged);
  void set_relay(RelayFn fn, void* ctx) {
    relay_ = fn;
    relay_ctx_ = ctx;
  }

  /// Consumer-side delivery of relayed entries: append directly to the
  /// committed queue (the domain drain phase runs strictly between
  /// cycles, standing in for the producer shard's commit()).  The caller
  /// wakes the consumer; this keeps the wake on the consumer's own
  /// scheduler.
  void push_committed(T v) {
    assert(capacity_ == 0 || q_.size() < capacity_);
    q_.push_back(std::move(v));
  }

  // ------------------------------------------------------------------
  // Producer interface
  // ------------------------------------------------------------------

  /// Occupancy from the producer's point of view: committed entries
  /// (including ones popped this cycle, whose slots free at commit)
  /// plus entries staged this cycle.
  std::size_t producer_occupancy() const {
    return q_.size() + popped_this_cycle_ + staged_.size();
  }

  bool can_push() const {
    const bool ok = capacity_ == 0 || producer_occupancy() < capacity_;
    // Remember that a producer found us full so commit() can wake it as
    // soon as space appears; this prevents missed-wakeup hangs.
    if (!ok) push_blocked_ = true;
    return ok;
  }

  /// Stage one element; visible to the consumer next cycle.
  void push(T v) {
    assert(can_push() && "Fifo::push on full FIFO");
    arm_commit();
    staged_.push_back(std::move(v));
  }

  // ------------------------------------------------------------------
  // Consumer interface
  // ------------------------------------------------------------------

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  const T& front() const {
    assert(!q_.empty());
    return q_.front();
  }

  /// Committed entry `i` (0 = front), without popping.  Routers use this
  /// to announce newly visible inject-queue entries to a lifecycle
  /// observer; it never touches staged data, so peeking cannot perturb
  /// timing.
  const T& peek(std::size_t i) const {
    assert(i < q_.size());
    return q_[i];
  }

  T pop() {
    assert(!q_.empty());
    T v = std::move(q_.front());
    q_.pop_front();
    ++popped_this_cycle_;
    arm_commit();
    return v;
  }

  // ------------------------------------------------------------------
  // Committable
  // ------------------------------------------------------------------

  void commit() override {
    if (relay_ != nullptr) {
      // Boundary link: the staged batch crosses to the consumer shard's
      // mailbox; the drain phase over there delivers it and issues the
      // consumer wake this branch skips.
      if (!staged_.empty()) relay_(relay_ctx_, staged_);
      staged_.clear();
      popped_this_cycle_ = 0;
      commit_stamp_ = kNeverCycle;
      return;
    }
    const bool gained_data = !staged_.empty();
    for (auto& v : staged_) q_.push_back(std::move(v));
    staged_.clear();
    popped_this_cycle_ = 0;
    commit_stamp_ = kNeverCycle;
    if (gained_data && consumer_ != nullptr) {
      sched_.wake_at(*consumer_, sched_.now() + 1);
    }
    if (push_blocked_ && producer_ != nullptr &&
        (capacity_ == 0 || q_.size() < capacity_)) {
      push_blocked_ = false;
      sched_.wake_at(*producer_, sched_.now() + 1);
    }
  }

 private:
  /// Epoch-stamp commit-list dedup: a busy FIFO takes several pushes and
  /// pops per cycle (a router pops four links and pushes four), but must
  /// appear on the scheduler's commit list once.  Stamping the arming
  /// cycle dedups without searching the list; the duplicates absorbed
  /// here are counted scheduler-wide (Scheduler::commits_deduped) and
  /// exported through telemetry.  commit() resets the stamp so a FIFO
  /// re-armed in the same cycle from outside the run loop (test setup
  /// code) can never lose its registration.
  void arm_commit() {
    const Cycle now = sched_.now();
    if (commit_stamp_ == now) {
      sched_.note_commit_dedup();
      return;
    }
    commit_stamp_ = now;
    sched_.defer_commit(*this);
  }

  Scheduler& sched_;
  std::string name_;
  std::size_t capacity_;
  std::deque<T> q_;
  std::vector<T> staged_;
  std::size_t popped_this_cycle_ = 0;
  Cycle commit_stamp_ = kNeverCycle;
  mutable bool push_blocked_ = false;
  Component* consumer_ = nullptr;
  Component* producer_ = nullptr;
  RelayFn relay_ = nullptr;
  void* relay_ctx_ = nullptr;
};

}  // namespace medea::sim
