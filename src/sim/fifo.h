#pragma once

#include <cassert>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/scheduler.h"
#include "sim/types.h"

/// \file fifo.h
/// Synchronous single-producer/single-consumer FIFO channel.
///
/// This is the universal interconnect primitive of the model: NoC links,
/// the TIE message-passing ports, the pif2NoC arbiter queues and the
/// MPMMU's Pif-Request / Pif-Data / outgoing queues are all Fifo<T>.
///
/// Timing semantics (hardware-faithful):
///  * push() during cycle T becomes visible to the consumer at T+1.
///  * pop() during cycle T removes the element immediately from the
///    consumer's view, but the slot is returned to the producer's free
///    space only at T+1 (as a registered occupancy counter would).
///  * The consumer is woken automatically when data arrives; the producer
///    is woken automatically when a full FIFO gains space.
///
/// These rules make simulation results independent of the order in which
/// components tick within a cycle.
///
/// ## Ownership (clang -Wthread-safety)
///
/// A Fifo belongs to exactly one shard: every member is touched only
/// from the owning shard's scheduler context (its dispatch and commit
/// phases), or from the external thread while no run is in flight.
/// That ownership is encoded in the `owner_` capability token: mutators
/// assert exclusive ownership, const readers assert shared.  The only
/// cross-shard path is the boundary relay — commit() hands the staged
/// batch to the relay hook, which appends it to a SimDomain mailbox
/// (noc::Network::ShardChannel); the consumer-side half is a *different*
/// Fifo on the consumer's shard, filled via push_committed() from the
/// consumer shard's own drain phase.  Neither half is ever shared
/// between threads; the mailbox in between is barrier-handed-off and
/// carries its own capability.

namespace medea::sim {

template <typename T>
class Fifo : public Committable {
 public:
  /// capacity == 0 means unbounded (used for modelling ideal sinks and
  /// for test instrumentation; real MEDEA queues are always bounded).
  Fifo(Scheduler& sched, std::string name, std::size_t capacity)
      : sched_(sched), name_(std::move(name)), capacity_(capacity) {}

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }

  /// Component to wake when staged data commits (new data visible).
  void set_consumer(Component* c) {
    owner_.assert_held();  // wiring time: model construction, pre-run
    consumer_ = c;
  }
  /// Component to wake when a full FIFO frees space.
  void set_producer(Component* c) {
    owner_.assert_held();  // wiring time: model construction, pre-run
    producer_ = c;
  }
  Component* consumer() const {
    owner_.assert_shared();
    return consumer_;
  }

  // ------------------------------------------------------------------
  // Shard-boundary relay (sim::SimDomain cross-shard links)
  // ------------------------------------------------------------------

  /// Boundary-relay hook: when set, commit() hands the cycle's staged
  /// batch to `fn` (a mailbox append on the producer shard) instead of
  /// appending to the committed queue and waking the consumer.  The
  /// consumer-side half of the split link receives the batch next via
  /// push_committed() in the domain's drain phase, which reproduces the
  /// shared-FIFO timing exactly (push at T -> visible at T+1).
  ///
  /// Only sound for channels whose producer never observes occupancy
  /// (the deflection fabric's links: no back-pressure, can_push() is an
  /// assert) — a relayed FIFO's committed queue stays empty, so
  /// producer_occupancy() undercounts in-flight entries.
  using RelayFn = void (*)(void* ctx, std::vector<T>& staged);
  void set_relay(RelayFn fn, void* ctx) {
    owner_.assert_held();  // wiring time: model construction, pre-run
    relay_ = fn;
    relay_ctx_ = ctx;
  }

  /// Consumer-side delivery of relayed entries: append directly to the
  /// committed queue (the domain drain phase runs strictly between
  /// cycles, standing in for the producer shard's commit()).  The caller
  /// wakes the consumer; this keeps the wake on the consumer's own
  /// scheduler.
  void push_committed(T v) {
    // Drain phase of the owning (consumer) shard: runs strictly between
    // global cycles, standing in for the producer shard's commit().
    owner_.assert_held();
    assert(capacity_ == 0 || q_.size() < capacity_);
    q_.push_back(std::move(v));
  }

  // ------------------------------------------------------------------
  // Producer interface
  // ------------------------------------------------------------------

  /// Occupancy from the producer's point of view: committed entries
  /// (including ones popped this cycle, whose slots free at commit)
  /// plus entries staged this cycle.
  std::size_t producer_occupancy() const {
    owner_.assert_shared();
    return q_.size() + popped_this_cycle_ + staged_.size();
  }

  bool can_push() const {
    owner_.assert_held();  // writes the missed-wakeup latch below
    const bool ok = capacity_ == 0 || producer_occupancy() < capacity_;
    // Remember that a producer found us full so commit() can wake it as
    // soon as space appears; this prevents missed-wakeup hangs.
    if (!ok) push_blocked_ = true;
    return ok;
  }

  /// Stage one element; visible to the consumer next cycle.
  void push(T v) {
    owner_.assert_held();  // producer runs on the owning shard
    assert(can_push() && "Fifo::push on full FIFO");
    arm_commit();
    staged_.push_back(std::move(v));
  }

  // ------------------------------------------------------------------
  // Consumer interface
  // ------------------------------------------------------------------

  bool empty() const {
    owner_.assert_shared();
    return q_.empty();
  }
  std::size_t size() const {
    owner_.assert_shared();
    return q_.size();
  }

  const T& front() const {
    owner_.assert_shared();
    assert(!q_.empty());
    return q_.front();
  }

  /// Committed entry `i` (0 = front), without popping.  Routers use this
  /// to announce newly visible inject-queue entries to a lifecycle
  /// observer; it never touches staged data, so peeking cannot perturb
  /// timing.
  const T& peek(std::size_t i) const {
    owner_.assert_shared();
    assert(i < q_.size());
    return q_[i];
  }

  T pop() {
    owner_.assert_held();  // consumer runs on the owning shard
    assert(!q_.empty());
    T v = std::move(q_.front());
    q_.pop_front();
    ++popped_this_cycle_;
    arm_commit();
    return v;
  }

  // ------------------------------------------------------------------
  // Committable
  // ------------------------------------------------------------------

  void commit() override {
    // Commit phase of the owning shard's scheduler, or (for a relayed
    // boundary link) the producer shard handing its batch to the
    // mailbox — either way, this shard's execution context.
    owner_.assert_held();
    if (relay_ != nullptr) {
      // Boundary link: the staged batch crosses to the consumer shard's
      // mailbox; the drain phase over there delivers it and issues the
      // consumer wake this branch skips.
      if (!staged_.empty()) relay_(relay_ctx_, staged_);
      staged_.clear();
      popped_this_cycle_ = 0;
      commit_stamp_ = kNeverCycle;
      return;
    }
    const bool gained_data = !staged_.empty();
    for (auto& v : staged_) q_.push_back(std::move(v));
    staged_.clear();
    popped_this_cycle_ = 0;
    commit_stamp_ = kNeverCycle;
    if (gained_data && consumer_ != nullptr) {
      sched_.wake_at(*consumer_, sched_.now() + 1);
    }
    if (push_blocked_ && producer_ != nullptr &&
        (capacity_ == 0 || q_.size() < capacity_)) {
      push_blocked_ = false;
      sched_.wake_at(*producer_, sched_.now() + 1);
    }
  }

 private:
  /// Epoch-stamp commit-list dedup: a busy FIFO takes several pushes and
  /// pops per cycle (a router pops four links and pushes four), but must
  /// appear on the scheduler's commit list once.  Stamping the arming
  /// cycle dedups without searching the list; the duplicates absorbed
  /// here are counted scheduler-wide (Scheduler::commits_deduped) and
  /// exported through telemetry.  commit() resets the stamp so a FIFO
  /// re-armed in the same cycle from outside the run loop (test setup
  /// code) can never lose its registration.
  void arm_commit() MEDEA_REQUIRES(owner_) {
    const Cycle now = sched_.now();
    if (commit_stamp_ == now) {
      sched_.note_commit_dedup();
      return;
    }
    commit_stamp_ = now;
    sched_.defer_commit(*this);
  }

  /// The owning shard's execution context (see the file comment).
  core::Capability owner_;

  Scheduler& sched_;
  std::string name_;
  std::size_t capacity_;
  std::deque<T> q_ MEDEA_GUARDED_BY(owner_);
  std::vector<T> staged_ MEDEA_GUARDED_BY(owner_);
  std::size_t popped_this_cycle_ MEDEA_GUARDED_BY(owner_) = 0;
  Cycle commit_stamp_ MEDEA_GUARDED_BY(owner_) = kNeverCycle;
  mutable bool push_blocked_ MEDEA_GUARDED_BY(owner_) = false;
  Component* consumer_ MEDEA_GUARDED_BY(owner_) = nullptr;
  Component* producer_ MEDEA_GUARDED_BY(owner_) = nullptr;
  RelayFn relay_ MEDEA_GUARDED_BY(owner_) = nullptr;
  void* relay_ctx_ MEDEA_GUARDED_BY(owner_) = nullptr;
};

}  // namespace medea::sim
