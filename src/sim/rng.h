#pragma once

#include <cstdint>

/// \file rng.h
/// Deterministic pseudo-random number generation for the simulator.
///
/// Simulation results must be reproducible: identical configuration and
/// seed always yield identical cycle counts.  We therefore never use
/// std::random_device or hash-ordering-dependent choices; every stochastic
/// decision (e.g. deflection-routing tie-breaks) draws from one of these
/// explicitly seeded generators.

namespace medea::sim {

/// SplitMix64: tiny, fast generator used to expand a user seed into
/// stream seeds.  Reference: Steele, Lea, Flood, "Fast Splittable
/// Pseudorandom Number Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the simulator's workhorse generator.
/// Public-domain algorithm by Blackman & Vigna.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  constexpr std::uint32_t next_below(std::uint32_t bound) {
    // Lemire's multiply-shift rejection-free mapping is fine here: the
    // tiny modulo bias (bound << 2^64) is irrelevant for tie-breaking.
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace medea::sim
