#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/types.h"

/// \file telemetry.h
/// Cycle-domain time-series sampling and host-side phase profiling.
///
/// Every metric the simulator produced before this subsystem was a
/// single end-of-run scalar, which hides transient congestion, warmup
/// drift and saturation onset entirely.  The Sampler turns any StatSet
/// (router fabrics, caches, the scheduler's own pressure counters, the
/// measurement controller) into a compact columnar time series: every N
/// simulated cycles it snapshots each registered counter and stores the
/// per-window *delta*, so a window's rate is delta / window_cycles and
/// the absolute value round-trips by prefix sum (Timeline::reconstruct).
///
/// Sampling is driven by the scheduler's CycleHook — a compare on the
/// run loop's existing cycle advance — so a run without a sampler pays
/// nothing on the wake/dispatch hot path, and a sampled run pays one
/// StatSet walk per window, never per event.  Snapshot times are
/// simulated cycles, so timelines are bit-deterministic across reruns.
///
/// The host side mirrors this: ProfileScope is an RAII wall-clock span
/// (trace decode, transform, simulate, drain, export...) collected by
/// the process-wide HostProfiler; workload/timeline.h renders both the
/// cycle-domain series and the host spans into one Chrome/Perfetto
/// trace-event JSON so a whole run opens in chrome://tracing.

namespace medea::sim {
class SimDomain;
}  // namespace medea::sim

namespace medea::telemetry {

/// One sampled metric: name plus one value per snapshot window.
/// Cumulative series (counters) store per-window deltas; gauge series
/// (queue occupancies) store the value observed at each snapshot.
/// A series discovered mid-run (StatSet counters are created lazily)
/// starts at `first_window`; earlier windows are implicitly zero.
struct Series {
  std::string name;
  bool cumulative = true;
  std::size_t first_window = 0;
  std::vector<std::uint64_t> values;

  bool operator==(const Series&) const = default;
};

/// A finished sampling run: the snapshot cycles (window right edges)
/// and every series, name-sorted.  Window w covers simulated cycles
/// (sample_cycles[w-1], sample_cycles[w]], with window 0 starting at
/// cycle 0.  The event-driven kernel skips idle cycles, so snapshot
/// cycles land on the first *dispatched* cycle at or after each
/// sample_every boundary — windows are therefore near-uniform under
/// load and stretch across idle gaps.
struct Timeline {
  sim::Cycle sample_every = 0;
  std::vector<sim::Cycle> sample_cycles;
  std::vector<Series> series;

  bool empty() const { return sample_cycles.empty(); }
  std::size_t num_windows() const { return sample_cycles.size(); }

  /// Series by exact name; nullptr when absent.
  const Series* find(const std::string& name) const;

  /// Simulated cycles covered by window w (>= 1 for every valid w).
  sim::Cycle window_cycles(std::size_t w) const {
    return sample_cycles[w] - (w == 0 ? 0 : sample_cycles[w - 1]);
  }

  /// Absolute per-window values: prefix-summed deltas for cumulative
  /// series, the raw samples for gauges; zero before first_window.
  /// Inverse of the delta encoding (tests round-trip through it).
  std::vector<std::uint64_t> reconstruct(const Series& s) const;

  bool operator==(const Timeline&) const = default;
};

/// Snapshots registered stat sources every `sample_every` simulated
/// cycles into a Timeline.  Typical lifecycle:
///
///   telemetry::Sampler sampler(1024);
///   sampler.add_stats("", net.stats());     // every counter + accumulator
///   sampler.attach(sched);                  // sched.* probes + cycle hook
///   ... run the simulation ...
///   sampler.finish(sched.now());            // tail window + detach
///   const telemetry::Timeline& tl = sampler.timeline();
///
/// StatSet sources are walked by reference at snapshot time, so
/// counters created after registration (StatSets grow lazily) appear as
/// new series from the window in which they first show up.
class Sampler final : public sim::CycleHook {
 public:
  explicit Sampler(sim::Cycle sample_every);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Register a StatSet: every counter becomes a cumulative series
  /// named `prefix + counter_name`, every accumulator a pair of
  /// cumulative series (`.count`, `.sum`) so exporters can derive
  /// windowed means (e.g. per-window average flit latency).
  void add_stats(std::string prefix, const sim::StatSet& stats);

  /// Register a single probe: cumulative (delta-encoded counter) or
  /// gauge (sampled absolute value, e.g. a queue occupancy).
  void add_counter(std::string name, std::function<std::uint64_t()> probe);
  void add_gauge(std::string name, std::function<std::uint64_t()> probe);

  /// Hook this sampler into the scheduler's run loop and register the
  /// kernel's own pressure series: sched.wake_requests/wakes_deduped/
  /// bucket_pushes/overflow_pushes/commit_pushes/commits_deduped
  /// (cumulative) and sched.queued/ring_bits (gauges).
  void attach(sim::Scheduler& sched);

  /// Same wiring over a sharded simulation domain: the pressure series
  /// are summed across shards and the hook fires from the domain's
  /// serial phase (after the per-shard stat merge), so sampled sharded
  /// runs stay deterministic.  Falls through to the Scheduler overload
  /// for single-shard domains.
  void attach(sim::SimDomain& dom);

  /// CycleHook: snapshot and return the next sample boundary.
  sim::Cycle on_cycle(sim::Cycle now) override;

  /// Record one snapshot row at `now` (idempotent per cycle).
  void snapshot(sim::Cycle now);

  /// Capture the final partial window at `end`, detach from the
  /// scheduler and name-sort the series.  Idempotent.
  void finish(sim::Cycle end);

  sim::Cycle sample_every() const { return every_; }
  const Timeline& timeline() const { return tl_; }
  Timeline take() { return std::move(tl_); }

 private:
  struct StatSource {
    std::string prefix;
    const sim::StatSet* stats;
  };
  struct Probe {
    std::string name;
    bool cumulative;
    std::function<std::uint64_t()> fn;
  };
  struct SeriesState {
    std::size_t index;   ///< into tl_.series
    std::uint64_t last;  ///< previous absolute value (cumulative only)
  };

  void record(const std::string& name, bool cumulative, std::uint64_t value,
              std::size_t window);

  sim::Cycle every_;
  sim::Scheduler* sched_ = nullptr;
  sim::SimDomain* dom_ = nullptr;
  bool finished_ = false;
  std::vector<StatSource> stat_sources_;
  std::vector<Probe> probes_;
  std::map<std::string, SeriesState> state_;
  Timeline tl_;
};

// ---------------------------------------------------------------------
// Host-side phase profiling (wall clock, not simulated cycles)
// ---------------------------------------------------------------------

/// One completed host-side span, microseconds since HostProfiler start.
struct HostSpan {
  std::string name;      ///< e.g. "run:uniform", "trace.load"
  std::string category;  ///< trace-event "cat": "sim", "io", "sweep"...
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;  ///< stable per-thread id for the trace
};

/// Process-wide collector of host spans.  Disabled by default: an
/// unarmed ProfileScope costs one relaxed atomic load, so the scopes
/// stay compiled into the engine, the sweep driver and the CLIs and are
/// switched on only when someone wants a Perfetto export.
class HostProfiler {
 public:
  static HostProfiler& instance();

  bool enabled() const;
  void set_enabled(bool on);

  /// Microseconds since the profiler singleton was created.
  std::uint64_t now_us() const;

  /// Stable small integer for the calling thread.
  std::uint32_t thread_id();

  void record(HostSpan span);

  std::vector<HostSpan> spans() const;
  void clear();

 private:
  HostProfiler();
  struct Impl;
  Impl* impl_;
};

/// RAII wall-clock span recorded into HostProfiler::instance() at
/// destruction — when the profiler is enabled; otherwise free.
class ProfileScope {
 public:
  explicit ProfileScope(std::string name, std::string category = "host");
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  std::string name_;
  std::string category_;
  std::uint64_t start_us_ = 0;
  bool armed_ = false;
};

}  // namespace medea::telemetry
