#include "sim/scheduler.h"

#include <ostream>
#include <stdexcept>

namespace medea::sim {

Component::Component(Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {}

void Component::wake(Cycle delta) { sched_.wake_at(*this, sched_.now() + delta); }

void Scheduler::wake_at(Component& c, Cycle at) {
  assert(at != kNeverCycle);
  if (dispatching_) {
    // Synchronous design: nothing scheduled mid-cycle may land in the
    // same cycle, or tick ordering would become observable.
    assert(at > now_ && "wake_at during dispatch must target a future cycle");
  } else {
    assert(at >= now_);
  }
  ++wake_requests_;
  // Push-time dedup: if this component already has a heap entry for the
  // same strictly-future cycle, skip the push entirely.  The stamp is
  // sound because an event for cycle `at` leaves the heap only once
  // now_ reaches `at`, after which every new wake must target a cycle
  // > now_ >= at and can never alias the stale stamp.  `at == now_`
  // wakes (legal between runs) bypass the dedup: their heap entry may
  // already have been consumed this cycle, so skipping could lose the
  // wake — the pop-time last_ticked_ guard handles those instead.
  if (at > now_ && c.last_wake_cycle_ == at) {
    ++wakes_deduped_;
    return;
  }
  c.last_wake_cycle_ = at;
  heap_.push(Event{at, seq_++, &c});
}

bool Scheduler::run(Cycle limit) {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    const Cycle t = heap_.top().cycle;
    if (t > limit) return false;
    now_ = t;
    ++active_cycles_;

    // Gather every component woken for this cycle, then dispatch.  The
    // gather/dispatch split guarantees that wake_at() calls made inside
    // tick() (which must target t+1 or later) never join this batch.
    dispatch_batch_.clear();
    while (!heap_.empty() && heap_.top().cycle == t) {
      Component* c = heap_.top().component;
      heap_.pop();
      if (c->last_ticked_ == t) continue;  // dedup same-cycle wakes
      c->last_ticked_ = t;
      dispatch_batch_.push_back(c);
    }

    dispatching_ = true;
    for (Component* c : dispatch_batch_) c->tick(t);
    dispatching_ = false;

    // End-of-cycle commit: staged channel pushes/pops become visible,
    // which may wake consumers/producers at t+1.
    commit_batch_.swap(commit_list_);
    for (Committable* c : commit_batch_) c->commit();
    commit_batch_.clear();
  }
  return true;
}

void Scheduler::run_or_throw(Cycle limit) {
  if (!run(limit)) {
    throw std::runtime_error(
        "Scheduler::run_or_throw: cycle limit " + std::to_string(limit) +
        " reached at cycle " + std::to_string(now_) +
        " without the system going idle (deadlock or livelock?)");
  }
}

}  // namespace medea::sim
