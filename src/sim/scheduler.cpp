#include "sim/scheduler.h"

#include <algorithm>
#include <bit>
#include <ostream>
#include <stdexcept>

namespace medea::sim {

namespace {
/// Spill nodes are allocated in blocks and recycled forever; a block of
/// 64 keeps the steady-state allocation count at "a handful per run".
constexpr std::size_t kNodeBlockSize = 64;
}  // namespace

Component::Component(Scheduler& sched, std::string name)
    : sched_(sched),
      name_(std::move(name)),
      order_(sched.next_component_order()) {
  hook_.comp = this;
}

void Component::wake(Cycle delta) {
  sched_.wake_at(*this, sched_.now() + delta);
}

Scheduler::Scheduler(const SchedulerConfig& cfg) : cfg_(cfg) {
  if (cfg_.ring_bits == 0) {
    // Auto-size from the caller's horizon hint: the smallest ring
    // covering twice the hint (slack for jitter), the former fixed
    // default when no hint was given.
    cfg_.ring_bits =
        cfg_.horizon_hint == 0
            ? 10
            : static_cast<std::uint32_t>(std::bit_width(cfg_.horizon_hint)) + 1;
  }
  cfg_.ring_bits = std::clamp<std::uint32_t>(cfg_.ring_bits, 6, 20);
  // A sharded config reaching a plain Scheduler is the single-shard
  // fallback (full-system apps, the XY baseline, shard schedulers
  // themselves): it runs the calendar kernel.
  use_calendar_ = cfg_.queue != SchedulerConfig::EventQueue::kBinaryHeap;
  if (use_calendar_) {
    ring_bits_chosen_ = cfg_.ring_bits;
    const std::size_t ring_size = std::size_t{1} << cfg_.ring_bits;
    ring_mask_ = ring_size - 1;
    ring_.resize(ring_size);
    ring_bitmap_.resize(ring_size / 64, 0);
  }
}

std::uint32_t Scheduler::suggested_ring_bits(double coverage) const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : horizon_hist_) total += n;
  if (total == 0) return 6;
  const auto target = static_cast<std::uint64_t>(
      coverage * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < horizon_hist_.size(); ++b) {
    seen += horizon_hist_[b];
    if (seen >= target) return std::clamp<std::uint32_t>(b, 6, 20);
  }
  return 20;
}

Scheduler::~Scheduler() = default;

detail::WakeNode* Scheduler::acquire_node(Component& c) {
  // Fast path: the component's embedded hook, free whenever the
  // component has no other wake pending in the ring.
  if (!c.hook_.active) {
    c.hook_.active = true;
    c.hook_.next = nullptr;
    return &c.hook_;
  }
  if (free_nodes_ == nullptr) {
    auto block = std::make_unique<detail::WakeNode[]>(kNodeBlockSize);
    for (std::size_t i = 0; i < kNodeBlockSize; ++i) {
      block[i].pooled = true;
      block[i].next = free_nodes_;
      free_nodes_ = &block[i];
    }
    node_blocks_.push_back(std::move(block));
  }
  detail::WakeNode* n = free_nodes_;
  free_nodes_ = n->next;
  n->comp = &c;
  n->next = nullptr;
  return n;
}

void Scheduler::release_node(detail::WakeNode* n) {
  if (n->pooled) {
    n->next = free_nodes_;
    free_nodes_ = n;
  } else {
    n->active = false;
  }
}

void Scheduler::push_bucket(Component& c, Cycle at) {
  detail::WakeNode* n = acquire_node(c);
  const std::size_t slot = static_cast<std::size_t>(at) & ring_mask_;
  Bucket& b = ring_[slot];
  if (b.tail == nullptr) {
    b.head = b.tail = n;
    ring_bitmap_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  } else {
    b.tail->next = n;
    b.tail = n;
  }
  ++ring_count_;
  ++bucket_pushes_;
}

void Scheduler::push_heap(Component& c, Cycle at) {
  heap_.push(Event{at, seq_++, &c});
  ++overflow_pushes_;
}

void Scheduler::wake_at(Component& c, Cycle at) {
  assert(at != kNeverCycle);
  if (dispatching_) {
    // Synchronous design: nothing scheduled mid-cycle may land in the
    // same cycle, or tick ordering would become observable.
    assert(at > now_ && "wake_at during dispatch must target a future cycle");
  } else {
    assert(at >= now_);
  }
  ++wake_requests_;
  // Push-time dedup: if this component already has a queued entry for
  // the same strictly-future cycle, skip the push entirely.  The stamp
  // is sound because an entry for cycle `at` leaves its queue only once
  // now_ reaches `at`, after which every new wake must target a cycle
  // > now_ >= at and can never alias the stale stamp.  `at == now_`
  // wakes (legal between runs) bypass the dedup: their entry may
  // already have been consumed this cycle, so skipping could lose the
  // wake — the pop-time last_ticked_ guard handles those instead.
  if (at > now_ && c.last_wake_cycle_ == at) {
    ++wakes_deduped_;
    return;
  }
  c.last_wake_cycle_ = at;
  // Wake-horizon histogram (ring auto-sizing calibration): one
  // bit_width per surviving push, far off the critical path next to the
  // queue insert below.
  ++horizon_hist_[std::bit_width(at - now_)];
  // Route by horizon: wakes within the calendar ring become an O(1)
  // bucket append; anything further out (or the whole load, under the
  // legacy kernel) goes through the binary heap.
  if (use_calendar_ && at - now_ <= ring_mask_) {
    push_bucket(c, at);
  } else {
    push_heap(c, at);
  }
}

Cycle Scheduler::next_ring_cycle() const {
  if (ring_count_ == 0) return kNeverCycle;
  // Every linked node targets a cycle in [now_, now_ + ring size), so
  // the set bit with the smallest circular distance from now_'s slot is
  // the next event.  Scan words outward from that slot; the bits below
  // it in the starting word belong to the wrapped far end and are
  // checked last.
  const std::size_t nwords = ring_bitmap_.size();
  const std::size_t base = static_cast<std::size_t>(now_ & ring_mask_);
  const std::size_t w0 = base >> 6;
  const unsigned shift = static_cast<unsigned>(base & 63);
  const auto cycle_of = [&](std::size_t bit) {
    return now_ + ((bit - base) & ring_mask_);
  };
  std::uint64_t word = ring_bitmap_[w0] & (~std::uint64_t{0} << shift);
  if (word != 0) {
    return cycle_of((w0 << 6) +
                    static_cast<std::size_t>(std::countr_zero(word)));
  }
  for (std::size_t k = 1; k < nwords; ++k) {
    const std::size_t w = (w0 + k) & (nwords - 1);
    if (ring_bitmap_[w] != 0) {
      return cycle_of(
          (w << 6) +
          static_cast<std::size_t>(std::countr_zero(ring_bitmap_[w])));
    }
  }
  if (shift != 0) {
    word = ring_bitmap_[w0] & ~(~std::uint64_t{0} << shift);
    if (word != 0) {
      return cycle_of((w0 << 6) +
                      static_cast<std::size_t>(std::countr_zero(word)));
    }
  }
  assert(false && "ring_count_ > 0 but occupancy bitmap is empty");
  return kNeverCycle;
}

void Scheduler::drain_bucket(Cycle t) {
  const std::size_t slot = static_cast<std::size_t>(t) & ring_mask_;
  Bucket& b = ring_[slot];
  detail::WakeNode* n = b.head;
  if (n == nullptr) return;
  b.head = b.tail = nullptr;
  ring_bitmap_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (n != nullptr) {
    Component* c = n->comp;
    detail::WakeNode* next = n->next;
    release_node(n);
    --ring_count_;
    if (c->last_ticked_ != t) {  // dedup same-cycle wakes
      c->last_ticked_ = t;
      dispatch_batch_.push_back(c);
    }
    n = next;
  }
}

void Scheduler::dispatch_cycle(Cycle t) {
  now_ = t;
  ++active_cycles_;

  // Gather every component woken for this cycle, then dispatch.  The
  // gather/dispatch split guarantees that wake_at() calls made inside
  // tick() (which must target t+1 or later) never join this batch.
  dispatch_batch_.clear();
  while (!heap_.empty() && heap_.top().cycle == t) {
    Component* c = heap_.top().component;
    heap_.pop();
    if (c->last_ticked_ == t) continue;  // dedup same-cycle wakes
    c->last_ticked_ = t;
    dispatch_batch_.push_back(c);
  }
  if (use_calendar_) drain_bucket(t);

  // Canonical within-cycle order: sort by component construction
  // sequence (see the file comment in scheduler.h).  The batch arrives
  // mostly sorted (wakes are dominated by the previous cycle's commit
  // sweep, which itself ran in canonical order), so the sort is cheap.
  std::sort(dispatch_batch_.begin(), dispatch_batch_.end(),
            [](const Component* a, const Component* b) {
              return a->order() < b->order();
            });

  dispatching_ = true;
  for (Component* c : dispatch_batch_) c->tick(t);
  dispatching_ = false;

  // End-of-cycle commit: staged channel pushes/pops become visible,
  // which may wake consumers/producers at t+1.
  commit_batch_.swap(commit_list_);
  for (Committable* c : commit_batch_) c->commit();
  commit_batch_.clear();
}

bool Scheduler::run(Cycle limit) {
  stop_requested_ = false;
  while (!stop_requested_) {
    const Cycle t = next_event_cycle();
    if (t == kNeverCycle) break;  // both tiers drained: idle
    if (t > limit) return false;
    now_ = t;

    // Telemetry sampling point: fires before any component ticks, so
    // the hook observes end-of-previous-cycle state.  Disabled hooks
    // keep hook_next_ at kNeverCycle and cost only this compare.
    if (t >= hook_next_) [[unlikely]] {
      hook_next_ = hook_->on_cycle(t);
    }

    dispatch_cycle(t);
  }
  return true;
}

void Scheduler::run_or_throw(Cycle limit) {
  if (!run(limit)) {
    throw std::runtime_error(
        "Scheduler::run_or_throw: cycle limit " + std::to_string(limit) +
        " reached at cycle " + std::to_string(now_) +
        " without the system going idle (deadlock or livelock?)");
  }
}

}  // namespace medea::sim
