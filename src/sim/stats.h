#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

#include "sim/types.h"

/// \file stats.h
/// Lightweight named-counter statistics used by all hardware models.
///
/// Every component owns (or shares) a StatSet; counters are created lazily
/// on first use and are cheap to bump.  A StatSet can be merged into
/// another, which the system level uses to aggregate per-PE statistics.
///
/// Hot paths (router/cache/arbiter tick functions) should not pay a
/// string-keyed map lookup per event: counter() / accumulator() return
/// stable references (std::map nodes never move) that components resolve
/// once at construction and bump directly every cycle.

namespace medea::sim {

/// Integer counter type behind StatSet::counter() handles.
using Stat = std::uint64_t;

/// Simple accumulator for a stream of samples (e.g. packet latencies).
class Accumulator {
 public:
  void add(double v) {
    count_ += 1;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  void merge(const Accumulator& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming log-linear histogram for latency-style integer samples
/// (HdrHistogram's bucketing idea, sized for cycle counts).
///
/// Values below 2*kSubBuckets are counted exactly; above that, each
/// power-of-two octave is split into kSubBuckets linear sub-buckets, so
/// the relative quantization error of any reported quantile is bounded
/// by 1/(2*kSubBuckets) (~1.6%).  Recording is O(1) with no allocation,
/// the footprint is a fixed ~15 kB table, and two histograms merge by
/// bucket-wise addition — exactly what the measurement controller needs
/// to stream per-flit latencies out of a multi-million-event run and
/// still answer p50/p99/p999 deterministically.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 32 per octave
  /// Exact region [0, 2*kSubBuckets) + one group of kSubBuckets per
  /// remaining octave of the 64-bit value range.
  static constexpr int kBuckets =
      2 * kSubBuckets + (63 - kSubBucketBits) * kSubBuckets;

  void record(std::uint64_t v) {
    count_ += 1;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    buckets_[index_of(v)] += 1;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile q in [0, 1] (the representative value of the
  /// bucket holding the ceil(q*count)-th sample, clamped to the exact
  /// observed [min, max]).  0 when empty.
  std::uint64_t quantile(double q) const;

  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p99() const { return quantile(0.99); }
  std::uint64_t p999() const { return quantile(0.999); }

  void merge(const LatencyHistogram& o);
  void clear();

  /// Worst-case relative quantization error of quantile() for values
  /// outside the exact region (tests size their tolerance from this).
  static constexpr double max_relative_error() {
    return 1.0 / (2.0 * kSubBuckets);
  }

 private:
  static int index_of(std::uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<int>(v);
    // v >= 64: split its octave [2^e, 2^{e+1}) into kSubBuckets linear
    // sub-buckets of width 2^g each (mantissa m = v >> g in [32, 64)).
    const int e = 63 - std::countl_zero(v);
    const int g = e - kSubBucketBits;  // >= 1
    const int m = static_cast<int>(v >> g);
    return 2 * kSubBuckets + (g - 1) * kSubBuckets + (m - kSubBuckets);
  }

  /// Midpoint of the value range bucket i covers (exact for the exact
  /// region).
  static std::uint64_t representative(int i);

  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// A named bag of counters and accumulators.
///
/// std::map (not unordered_map) keeps iteration order deterministic so
/// that printed reports are stable run-to-run.
class StatSet {
 public:
  /// Bump an integer counter by delta (creates it at zero when absent).
  void inc(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  /// Set a counter to an absolute value.
  void set(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }

  /// Current value of a counter (zero when never touched).
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Stable reference to a counter (created at zero when absent).
  /// std::map node addresses never move, so the handle stays valid for
  /// the StatSet's lifetime (clear() invalidates it).  Resolve once in a
  /// constructor, bump per tick — no per-event string lookup.
  Stat& counter(const std::string& name) { return counters_[name]; }

  /// Record a sample into a named accumulator.
  void sample(const std::string& name, double v) { accs_[name].add(v); }

  /// Stable reference to an accumulator (same contract as counter()).
  Accumulator& accumulator(const std::string& name) { return accs_[name]; }

  const Accumulator& acc(const std::string& name) const {
    static const Accumulator kEmpty;
    auto it = accs_.find(name);
    return it == accs_.end() ? kEmpty : it->second;
  }

  void merge(const StatSet& o) {
    for (const auto& [k, v] : o.counters_) counters_[k] += v;
    for (const auto& [k, a] : o.accs_) accs_[k].merge(a);
  }

  void clear() {
    counters_.clear();
    accs_.clear();
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Accumulator>& accumulators() const {
    return accs_;
  }

  /// Render as "name=value" lines, for debugging and reports.
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Accumulator> accs_;
};

}  // namespace medea::sim
