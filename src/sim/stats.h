#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/types.h"

/// \file stats.h
/// Lightweight named-counter statistics used by all hardware models.
///
/// Every component owns (or shares) a StatSet; counters are created lazily
/// on first use and are cheap to bump.  A StatSet can be merged into
/// another, which the system level uses to aggregate per-PE statistics.
///
/// Hot paths (router/cache/arbiter tick functions) should not pay a
/// string-keyed map lookup per event: counter() / accumulator() return
/// stable references (std::map nodes never move) that components resolve
/// once at construction and bump directly every cycle.

namespace medea::sim {

/// Integer counter type behind StatSet::counter() handles.
using Stat = std::uint64_t;

/// Simple accumulator for a stream of samples (e.g. packet latencies).
class Accumulator {
 public:
  void add(double v) {
    count_ += 1;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  void merge(const Accumulator& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A named bag of counters and accumulators.
///
/// std::map (not unordered_map) keeps iteration order deterministic so
/// that printed reports are stable run-to-run.
class StatSet {
 public:
  /// Bump an integer counter by delta (creates it at zero when absent).
  void inc(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  /// Set a counter to an absolute value.
  void set(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }

  /// Current value of a counter (zero when never touched).
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Stable reference to a counter (created at zero when absent).
  /// std::map node addresses never move, so the handle stays valid for
  /// the StatSet's lifetime (clear() invalidates it).  Resolve once in a
  /// constructor, bump per tick — no per-event string lookup.
  Stat& counter(const std::string& name) { return counters_[name]; }

  /// Record a sample into a named accumulator.
  void sample(const std::string& name, double v) { accs_[name].add(v); }

  /// Stable reference to an accumulator (same contract as counter()).
  Accumulator& accumulator(const std::string& name) { return accs_[name]; }

  const Accumulator& acc(const std::string& name) const {
    static const Accumulator kEmpty;
    auto it = accs_.find(name);
    return it == accs_.end() ? kEmpty : it->second;
  }

  void merge(const StatSet& o) {
    for (const auto& [k, v] : o.counters_) counters_[k] += v;
    for (const auto& [k, a] : o.accs_) accs_[k].merge(a);
  }

  void clear() {
    counters_.clear();
    accs_.clear();
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Accumulator>& accumulators() const {
    return accs_;
  }

  /// Render as "name=value" lines, for debugging and reports.
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Accumulator> accs_;
};

}  // namespace medea::sim
