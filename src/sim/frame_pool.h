#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>

/// \file frame_pool.h
/// Size-bucketed free-list allocator for coroutine frames.
///
/// Every simulated "program step" in this model is a C++20 coroutine —
/// the PE programs themselves plus every eMPI primitive they co_await —
/// and by default each frame is a malloc/free round trip.  On the
/// PE-dense configs (the paper's 15-core design points) that churn is a
/// measurable slice of wall time, so sim::Task<> routes its promise
/// allocation here instead: frames are rounded up to a 64-byte size
/// class and recycled through per-class free lists.
///
/// The pool is thread-local (FramePool::tls()), which makes it lock-free
/// and lets every dse::run_sweep worker thread keep its own warm pool
/// across the design points it simulates.  Frames freed on a different
/// thread than the one that allocated them simply migrate to the freeing
/// thread's pool — all blocks are plain ::operator new storage, so
/// ownership transfer is safe.  Frames larger than kMaxPooledBytes (rare:
/// deeply-stacked locals) pass through to the global heap untouched.
///
/// Instrumented: hits/misses/recycles and retained bytes are cheap
/// counters that the benches export, making the ROADMAP "coroutine
/// allocation churn" item measurable PR over PR.

namespace medea::sim {

class FramePool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      ///< allocations served from a free list
    std::uint64_t misses = 0;    ///< allocations that went to ::operator new
    std::uint64_t oversize = 0;  ///< frames > kMaxPooledBytes (passthrough)
    std::uint64_t recycled = 0;  ///< frames returned to a free list
    std::uint64_t bytes_retained = 0;  ///< free-list bytes currently held
  };

  static constexpr std::size_t kGranuleBytes = 64;
  static constexpr std::size_t kMaxPooledBytes = 4096;

  /// The calling thread's pool (created on first use, torn down — free
  /// lists released to the heap — at thread exit).
  static FramePool& tls() {
    static thread_local FramePool pool;
    return pool;
  }

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool() { trim(); }

  void* allocate(std::size_t n) {
    const std::size_t rounded = round_up(n);
    if (rounded > kMaxPooledBytes) {
      ++stats_.oversize;
      return ::operator new(n);
    }
    const std::size_t b = bucket_of(rounded);
    if (FreeNode* node = free_[b]; node != nullptr) {
      free_[b] = node->next;
      ++stats_.hits;
      stats_.bytes_retained -= rounded;
      return node;
    }
    ++stats_.misses;
    return ::operator new(rounded);
  }

  void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t rounded = round_up(n);
    if (rounded > kMaxPooledBytes) {
      ::operator delete(p);
      return;
    }
    const std::size_t b = bucket_of(rounded);
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[b];
    free_[b] = node;
    ++stats_.recycled;
    stats_.bytes_retained += rounded;
  }

  const Stats& stats() const { return stats_; }

  /// Release every free-listed block back to the heap (memory pressure
  /// relief and leak-checker hygiene; outstanding frames are untouched).
  void trim() noexcept {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      FreeNode* node = free_[b];
      free_[b] = nullptr;
      while (node != nullptr) {
        FreeNode* next = node->next;
        ::operator delete(node);
        node = next;
      }
    }
    stats_.bytes_retained = 0;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kNumBuckets = kMaxPooledBytes / kGranuleBytes;

  static constexpr std::size_t round_up(std::size_t n) {
    // n == 0 maps to the smallest class (a zero would underflow
    // bucket_of); coroutine frames are never empty, but the API is
    // public and must not index free_[SIZE_MAX].
    if (n == 0) return kGranuleBytes;
    return (n + kGranuleBytes - 1) & ~(kGranuleBytes - 1);
  }
  static constexpr std::size_t bucket_of(std::size_t rounded) {
    return rounded / kGranuleBytes - 1;
  }

  std::array<FreeNode*, kNumBuckets> free_{};
  Stats stats_;
};

}  // namespace medea::sim
