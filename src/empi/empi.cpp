#include "empi/empi.h"

#include <algorithm>
#include <stdexcept>

namespace medea::empi {

using pe::kMaxMpPacketWords;
using pe::ProcessingElement;

sim::Task<> send(ProcessingElement& self, int dst_node,
                 std::vector<std::uint32_t> words) {
  if (words.empty()) words.push_back(0);  // header-only token
  for (std::size_t off = 0; off < words.size();
       off += static_cast<std::size_t>(kMaxMpPacketWords)) {
    const auto n = std::min<std::size_t>(
        static_cast<std::size_t>(kMaxMpPacketWords), words.size() - off);
    std::vector<std::uint32_t> frag(words.begin() + static_cast<long>(off),
                                    words.begin() + static_cast<long>(off + n));
    co_await self.mp_send(dst_node, std::move(frag));
  }
}

sim::Task<std::vector<std::uint32_t>> receive(ProcessingElement& self,
                                              int src_node, int n_words) {
  if (n_words < 0) throw std::invalid_argument("empi::receive: n_words < 0");
  const int expected = n_words == 0 ? 1 : n_words;  // empty => one token
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(expected));
  while (static_cast<int>(out.size()) < expected) {
    auto r = co_await self.mp_recv(src_node);
    out.insert(out.end(), r.words.begin(), r.words.end());
  }
  if (static_cast<int>(out.size()) != expected) {
    throw std::runtime_error("empi::receive: message size mismatch");
  }
  if (n_words == 0) out.clear();
  co_return out;
}

sim::Task<> send_doubles(ProcessingElement& self, int dst_node,
                         const std::vector<double>& values) {
  std::vector<std::uint32_t> words;
  words.reserve(values.size() * 2);
  for (double v : values) {
    words.push_back(mem::double_lo(v));
    words.push_back(mem::double_hi(v));
  }
  co_await send(self, dst_node, std::move(words));
}

sim::Task<std::vector<double>> receive_doubles(ProcessingElement& self,
                                               int src_node, int n_values) {
  auto words = co_await receive(self, src_node, n_values * 2);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n_values));
  for (std::size_t i = 0; i + 1 < words.size(); i += 2) {
    out.push_back(mem::make_double(words[i], words[i + 1]));
  }
  co_return out;
}

sim::Task<> barrier(ProcessingElement& self, const std::vector<int>& members) {
  // Note: plain assert() inside a coroutine trips a GCC 12 bug
  // ("array used as initializer" from __PRETTY_FUNCTION__), so throw.
  if (members.empty()) {
    throw std::invalid_argument("empi::barrier: empty membership");
  }
  const int master = *std::min_element(members.begin(), members.end());
  // Built without a braced initializer list and outside the co_await
  // expressions: GCC 12 mishandles initializer_list backing arrays in
  // coroutine frames (compile error in co_await operands, miscompiled
  // code for locals at -O2).
  const std::vector<std::uint32_t> token(1, 0xBA44u);
  if (self.node_id() == master) {
    // Gather: one token from every other member, in node-id order.  The
    // TIE landing area buffers early arrivals, so a fixed order is fine.
    for (int m : members) {
      if (m == master) continue;
      co_await self.mp_recv(m);
    }
    // Release broadcast.
    for (int m : members) {
      if (m == master) continue;
      co_await self.mp_send(m, token);
    }
  } else {
    co_await self.mp_send(master, token);
    co_await self.mp_recv(master);
  }
}

}  // namespace medea::empi
