#pragma once

#include <cstdint>
#include <vector>

#include "mem/memory_map.h"
#include "pe/processing_element.h"
#include "sim/task.h"

/// \file empi.h
/// embedded-MPI (eMPI): the paper's MPI subset over the TIE port (§II-E).
///
/// "With just three basic primitives, MPI_send(), MPI_receive() and
///  MPI_barrier() for synchronization, a direct communication between
///  cores is possible totally avoiding in some cases the access to the
///  global-memory."
///
/// The hardware logic packet carries at most four 32-bit words (2-bit
/// BURST field), so eMPI fragments longer messages into a stream of logic
/// packets and reassembles them at the receiver; flit sequence numbers and
/// the TIE landing-area slots keep each fragment intact, and per-peer
/// in-order delivery keeps the stream intact.
///
/// Ranks used by this API are *node ids* (each PE's position on the NoC);
/// the application layer maps its own rank numbering onto node ids.
///
/// All primitives are coroutines running on the calling PE and consume
/// simulated time exactly as the hardware would (one flit per cycle
/// through the TIE port, real NoC traversal, real blocking).

namespace medea::empi {

/// Send `words` to dst_node.  Blocks (in simulated time) until every flit
/// has left the TIE port; fragments of 4 words ride separate logic
/// packets.  An empty message sends one header-only packet of one word.
sim::Task<> send(pe::ProcessingElement& self, int dst_node,
                 std::vector<std::uint32_t> words);

/// Receive a message of exactly `n_words` from src_node (blocking).
sim::Task<std::vector<std::uint32_t>> receive(pe::ProcessingElement& self,
                                              int src_node, int n_words);

/// Convenience: doubles are carried as two words each.
sim::Task<> send_doubles(pe::ProcessingElement& self, int dst_node,
                         const std::vector<double>& values);
sim::Task<std::vector<double>> receive_doubles(pe::ProcessingElement& self,
                                               int src_node, int n_values);

/// Barrier across `members` (node ids, which must include self).  The
/// lowest node id acts as master: it gathers one token from every other
/// member, then broadcasts the release.  Pure message passing — no
/// shared-memory traffic at all, which is the crux of the paper's hybrid
/// speedup.
sim::Task<> barrier(pe::ProcessingElement& self,
                    const std::vector<int>& members);

}  // namespace medea::empi
