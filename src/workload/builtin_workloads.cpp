/// The built-in workload set: both full-system applications (all
/// programming-model variants), the four synthetic NoC patterns, and
/// trace replay — everything behind the one registry the sweeps, the
/// benches and the CLI share.

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "apps/alltoall.h"
#include "apps/jacobi.h"
#include "apps/reduction.h"
#include "core/system.h"
#include "noc/traffic.h"
#include "noc/xy_network.h"
#include "workload/replay.h"
#include "workload/workload.h"
#include "workload/xform/transform.h"

namespace medea::workload {
namespace {

// ---------------------------------------------------------------------
// Full-system applications
// ---------------------------------------------------------------------

class JacobiWorkload final : public Workload {
 public:
  JacobiWorkload(std::string name, apps::JacobiVariant variant,
                 std::string description)
      : name_(std::move(name)),
        variant_(variant),
        description_(std::move(description)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }

  WorkloadResult run(const WorkloadParams& p,
                     noc::FlitObserver* observer) const override {
    core::MedeaConfig cfg = p.config;
    cfg.workload = name_;
    cfg.seed = p.seed;
    core::MedeaSystem sys(cfg);
    if (observer != nullptr) sys.network().set_observer(observer);

    apps::JacobiParams jp;
    jp.n = p.size > 0 ? p.size : 30;
    jp.warmup_iterations = p.warmup_iterations;
    jp.timed_iterations = p.iterations;
    jp.variant = variant_;
    jp.verify = p.verify;
    const apps::JacobiResult res = apps::run_jacobi(sys, jp);

    WorkloadResult r;
    r.cycles = res.total_cycles;
    r.metric = res.cycles_per_iteration;
    r.metric_name = "cycles_per_iteration";
    r.stats = sys.aggregate_stats();
    r.flits_delivered = r.stats.get("noc.flits_delivered");
    r.verified_ok = !jp.verify || res.max_abs_error == 0.0;
    return r;
  }

 private:
  std::string name_;
  apps::JacobiVariant variant_;
  std::string description_;
};

class ReductionWorkload final : public Workload {
 public:
  ReductionWorkload(std::string name, apps::ReductionVariant variant,
                    std::string description)
      : name_(std::move(name)),
        variant_(variant),
        description_(std::move(description)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }

  WorkloadResult run(const WorkloadParams& p,
                     noc::FlitObserver* observer) const override {
    core::MedeaConfig cfg = p.config;
    cfg.workload = name_;
    cfg.seed = p.seed;
    core::MedeaSystem sys(cfg);
    if (observer != nullptr) sys.network().set_observer(observer);

    apps::ReductionParams rp;
    rp.elements = p.size > 0 ? p.size : 1024;
    rp.repeats = p.iterations;
    rp.variant = variant_;
    const apps::ReductionResult res = apps::run_reduction(sys, rp);

    WorkloadResult r;
    r.cycles = res.total_cycles;
    r.metric = res.cycles_per_round;
    r.metric_name = "cycles_per_round";
    r.stats = sys.aggregate_stats();
    r.flits_delivered = r.stats.get("noc.flits_delivered");
    // The MP variant accumulates in rank order (exact); the SM variant's
    // order follows lock grants, so it gets the documented tolerance.
    r.verified_ok = !p.verify || res.abs_error <= 1e-9;
    return r;
  }

 private:
  std::string name_;
  apps::ReductionVariant variant_;
  std::string description_;
};

// ---------------------------------------------------------------------
// NoC-only synthetic traffic
// ---------------------------------------------------------------------

class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(noc::TrafficPattern pattern)
      : pattern_(pattern) {}

  std::string name() const override { return noc::to_string(pattern_); }
  std::string description() const override {
    switch (pattern_) {
      case noc::TrafficPattern::kUniformRandom:
        return "synthetic NoC traffic: uniform-random destinations";
      case noc::TrafficPattern::kHotspot:
        return "synthetic NoC traffic: all nodes target one hotspot";
      case noc::TrafficPattern::kTranspose:
        return "synthetic NoC traffic: (x,y)->(y,x) permutation";
      case noc::TrafficPattern::kNeighbor:
        return "synthetic NoC traffic: nearest-neighbour ring";
      case noc::TrafficPattern::kBitReversal:
        return "synthetic NoC traffic: node i -> bit-reverse(i) (FFT "
               "butterfly permutation)";
    }
    return "synthetic NoC traffic";
  }
  bool noc_only() const override { return true; }

  TraceNetConfig net_config(const WorkloadParams& p) const override {
    if (p.network == "xy") {
      return TraceNetConfig::from(p.xy_router, p.xy_torus_wrap);
    }
    return TraceNetConfig::from(p.config.router);
  }

  WorkloadResult run(const WorkloadParams& p,
                     noc::FlitObserver* observer) const override {
    noc::TrafficConfig tc;
    tc.pattern = pattern_;
    tc.injection_rate = p.injection_rate;
    tc.flits_per_node = p.flits_per_node;
    tc.hotspot_node = p.hotspot_node;
    tc.seed = p.seed;

    // Synthetic patterns drive either fabric (p.network); stat keys and
    // the latency accumulator just carry the fabric's prefix.
    sim::Scheduler sched(p.config.scheduler);
    const noc::TorusGeometry geom(p.config.noc_width, p.config.noc_height);
    int received = 0;
    WorkloadResult r;
    if (p.network == "xy") {
      noc::XyNetwork net(sched, geom, p.xy_router, p.xy_torus_wrap);
      if (observer != nullptr) net.set_observer(observer);
      received = noc::run_traffic(sched, net, tc);
      r.metric = net.stats().acc("xynoc.latency").mean();
      r.stats = net.stats();
      r.flits_delivered = r.stats.get("xynoc.flits_delivered");
    } else if (p.network == "deflection") {
      noc::Network net(sched, geom, p.config.router, p.seed);
      if (observer != nullptr) net.set_observer(observer);
      received = noc::run_traffic(sched, net, tc);
      r.metric = net.stats().acc("noc.latency").mean();
      r.stats = net.stats();
      r.flits_delivered = r.stats.get("noc.flits_delivered");
    } else {
      throw std::invalid_argument(
          "synthetic workload: unknown network '" + p.network +
          "' (expected \"deflection\" or \"xy\")");
    }
    r.cycles = sched.now();
    r.metric_name = "avg_flit_latency";
    r.verified_ok = static_cast<std::uint64_t>(received) == r.flits_delivered;
    return r;
  }

 private:
  noc::TrafficPattern pattern_;
};

// ---------------------------------------------------------------------
// All-to-all exchange (full system)
// ---------------------------------------------------------------------

class AlltoallWorkload final : public Workload {
 public:
  std::string name() const override { return "alltoall"; }
  std::string description() const override {
    return "personalized all-to-all exchange over eMPI (ring schedule; "
           "every core sends a distinct chunk to every other core)";
  }

  WorkloadResult run(const WorkloadParams& p,
                     noc::FlitObserver* observer) const override {
    core::MedeaConfig cfg = p.config;
    cfg.workload = name();
    cfg.seed = p.seed;
    core::MedeaSystem sys(cfg);
    if (observer != nullptr) sys.network().set_observer(observer);

    apps::AlltoallParams ap;
    ap.words_per_pair = p.size > 0 ? p.size : 8;
    ap.repeats = p.iterations;
    const apps::AlltoallResult res = apps::run_alltoall(sys, ap);

    WorkloadResult r;
    r.cycles = res.total_cycles;
    r.metric = res.cycles_per_round;
    r.metric_name = "cycles_per_round";
    r.stats = sys.aggregate_stats();
    r.flits_delivered = r.stats.get("noc.flits_delivered");
    // Receivers verify every word against the (src,dst,i) reference on
    // every run; p.verify only decides whether the result gates on it.
    r.verified_ok = !p.verify || res.verified_ok;
    return r;
  }
};

// ---------------------------------------------------------------------
// Trace replay
// ---------------------------------------------------------------------

class ReplayWorkload final : public Workload {
 public:
  std::string name() const override { return "replay"; }
  std::string description() const override {
    return "re-inject a recorded flit trace into a bare NoC (fast-forward "
           "mode; requires trace_path, honors trace_scale)";
  }
  bool noc_only() const override { return true; }

  /// The replay NoC takes its geometry from the trace header, not from
  /// the params config (recorders must be sized accordingly).
  std::pair<int, int> noc_dims(const WorkloadParams& p) const override {
    const TraceMeta meta = load_trace_meta(require_path(p));
    return {meta.width, meta.height};
  }

  /// Re-recording a replay keeps the original header's fabric.
  TraceNetConfig net_config(const WorkloadParams& p) const override {
    return load_trace_meta(require_path(p)).net;
  }

  WorkloadResult run(const WorkloadParams& p,
                     noc::FlitObserver* observer) const override {
    const std::shared_ptr<const Trace> trace_ptr =
        load_cached(require_path(p), p.trace_scale);
    const Trace& trace = *trace_ptr;

    sim::Scheduler sched(p.config.scheduler);
    // Seed the NoC from the trace header, not the replay params: with
    // random_tie_break routers the recorded deflection choices depend on
    // the recorded seed, and bit-identical replay depends on matching it.
    const noc::TorusGeometry geom(trace.meta.width, trace.meta.height);
    ReplayResult res;
    WorkloadResult r;
    if (trace.meta.version >= 2 &&
        trace.meta.net.kind == TraceNetKind::kBufferedXy) {
      // The header says which fabric recorded the trace; rebuild exactly
      // that one (the params' deflection RouterConfig does not apply).
      noc::XyNetwork net(sched, geom, trace.meta.net.xy_router_config(),
                         trace.meta.net.torus_wrap);
      if (observer != nullptr) net.set_observer(observer);
      res = run_replay(sched, net, trace, kReplayLimit,
                       p.force_replay_config);
      r.stats = net.stats();
    } else {
      // Deflection replay runs on the params' RouterConfig; for v2
      // traces the replayer refuses a config that differs from the
      // recording unless p.force_replay_config makes it explicit.
      noc::Network net(sched, geom, p.config.router, trace.meta.seed);
      if (observer != nullptr) net.set_observer(observer);
      res = run_replay(sched, net, trace, kReplayLimit,
                       p.force_replay_config);
      r.stats = net.stats();
    }

    r.cycles = res.cycles;
    r.metric = static_cast<double>(res.last_delivery_cycle);
    r.metric_name = "last_delivery_cycle";
    r.flits_delivered = res.flits_delivered;
    // Every recorded flit must come out of the network again.
    r.verified_ok = res.flits_delivered == trace.events.size();
    return r;
  }

 private:
  static constexpr sim::Cycle kReplayLimit = 50'000'000;

  static const std::string& require_path(const WorkloadParams& p) {
    if (p.trace_path.empty()) {
      throw std::invalid_argument(
          "replay workload: params.trace_path must name a recorded trace");
    }
    return p.trace_path;
  }

  /// Traces are immutable once recorded, and a DSE sweep replays the
  /// same file — at the same handful of rate scales — at every design
  /// point from many threads.  Cache parsed (and scaled) traces by
  /// (path, scale) so a 168-cell sweep decodes the file once and runs
  /// each RateScale pass once, not once per cell.
  std::shared_ptr<const Trace> load_cached(const std::string& path,
                                           double scale) const {
    const CacheKey key{path, scale};
    {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      const auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    std::shared_ptr<const Trace> fresh;
    if (scale == 1.0) {
      fresh = std::make_shared<const Trace>(load_trace(path));
    } else {
      const auto base = load_cached(path, 1.0);
      fresh = std::make_shared<const Trace>(
          xform::RateScale(scale).apply(*base));
    }
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    // A sweep touches a few (path, scale) combos; a pathological caller
    // cycling through many files should not accumulate them forever.
    if (cache_.size() >= 16) cache_.clear();
    return cache_.emplace(key, std::move(fresh)).first->second;
  }

  using CacheKey = std::pair<std::string, double>;
  mutable std::mutex cache_mutex_;
  mutable std::map<CacheKey, std::shared_ptr<const Trace>> cache_;
};

}  // namespace

namespace detail {

void register_builtins(WorkloadRegistry& reg) {
  reg.add(std::make_unique<JacobiWorkload>(
      "jacobi", apps::JacobiVariant::kHybridMp,
      "Jacobi 2-D Laplace solver, hybrid message-passing variant (the "
      "paper's benchmark)"));
  reg.add(std::make_unique<JacobiWorkload>(
      "jacobi-sync", apps::JacobiVariant::kHybridSyncOnly,
      "Jacobi solver: shared-memory data exchange, message-passing "
      "synchronization"));
  reg.add(std::make_unique<JacobiWorkload>(
      "jacobi-sm", apps::JacobiVariant::kPureSharedMemory,
      "Jacobi solver: pure shared memory with lock-based barriers"));
  reg.add(std::make_unique<ReductionWorkload>(
      "reduction", apps::ReductionVariant::kMessagePassing,
      "parallel dot product, message-passing gather+broadcast"));
  reg.add(std::make_unique<ReductionWorkload>(
      "reduction-sm", apps::ReductionVariant::kSharedMemory,
      "parallel dot product, lock-protected shared accumulator"));
  reg.add(std::make_unique<AlltoallWorkload>());
  for (noc::TrafficPattern pat :
       {noc::TrafficPattern::kUniformRandom, noc::TrafficPattern::kHotspot,
        noc::TrafficPattern::kTranspose, noc::TrafficPattern::kNeighbor,
        noc::TrafficPattern::kBitReversal}) {
    reg.add(std::make_unique<SyntheticWorkload>(pat));
  }
  reg.add(std::make_unique<ReplayWorkload>());
}

}  // namespace detail
}  // namespace medea::workload
