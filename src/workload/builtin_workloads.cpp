/// The built-in workload set: both full-system applications (all
/// programming-model variants), the four synthetic NoC patterns, and
/// trace replay — everything behind the one registry the sweeps, the
/// benches and the CLI share.

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "apps/alltoall.h"
#include "apps/jacobi.h"
#include "apps/reduction.h"
#include "core/system.h"
#include "noc/traffic.h"
#include "noc/xy_network.h"
#include "workload/measure.h"
#include "workload/replay.h"
#include "workload/workload.h"
#include "workload/xform/transform.h"

namespace medea::workload {
namespace {

/// The engaged section, or kind-appropriate defaults when the caller
/// left it out (a disengaged section is "defaults", not an error).
template <typename Section>
Section section_or_default(const std::optional<Section>& s) {
  return s.has_value() ? *s : Section{};
}

/// Memory-system series for app-workload timelines: the MPMMU's request
/// stream, its local cache, and every core's PE + L1 counters (prefixed
/// "core<rank>." so the per-core streams stay distinguishable).  A no-op
/// unless the run attached a sampler, so untimed runs pay nothing.
void add_memory_telemetry(ScopedTelemetry& telemetry, core::MedeaSystem& sys) {
  telemetry.add("", sys.mpmmu().stats());
  telemetry.add("mpmmu.", sys.mpmmu().cache().stats());
  for (int r = 0; r < sys.num_cores(); ++r) {
    const std::string prefix = "core" + std::to_string(r) + ".";
    telemetry.add(prefix, sys.core(r).stats());
    telemetry.add(prefix, sys.core(r).cache().stats());
  }
}

/// Kernel pressure counters merged into every run's stats.  Only the
/// kernel-*independent* ones belong here: the differential tests compare
/// full counter maps across event-queue kernels (heap, calendar, sharded
/// at any shard count), so bucket_pushes/overflow_pushes (two-tier
/// placement) and commit_pushes/commits_deduped (a split boundary link
/// arms its TX and RX halves separately) stay out — all four remain
/// visible as timeline series via Sampler::attach().
void add_sched_stats(const sim::Scheduler& sched, sim::StatSet& stats) {
  stats.set("sched.wake_requests", sched.wake_requests());
  stats.set("sched.wakes_deduped", sched.wakes_deduped());
  stats.set("sched.active_cycles", sched.active_cycles());
}

/// Sharded-domain overload: shard sums for the wake counters (each wake
/// request lands on exactly one shard, so the sums bit-match the
/// single-thread kernels) and the global active-cycle count.
void add_sched_stats(const sim::SimDomain& dom, sim::StatSet& stats) {
  stats.set("sched.wake_requests", dom.wake_requests());
  stats.set("sched.wakes_deduped", dom.wakes_deduped());
  stats.set("sched.active_cycles", dom.active_cycles());
}

// ---------------------------------------------------------------------
// Full-system applications
// ---------------------------------------------------------------------

class JacobiWorkload final : public Workload {
 public:
  JacobiWorkload(std::string name, apps::JacobiVariant variant,
                 std::string description)
      : name_(std::move(name)),
        variant_(variant),
        description_(std::move(description)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  WorkloadKind kind() const override { return WorkloadKind::kApp; }

  RunResult run(const RunRequest& req, RunContext& ctx) const override {
    const AppParams ap = section_or_default(req.app);
    core::MedeaConfig cfg = req.machine;
    cfg.workload = name_;
    cfg.seed = req.seed;
    core::MedeaSystem sys(cfg);
    if (noc::FlitObserver* o = ctx.observer()) sys.network().set_observer(o);
    ScopedTelemetry telemetry(ctx, sys.scheduler(), sys.network().stats());
    add_memory_telemetry(telemetry, sys);

    apps::JacobiParams jp;
    jp.n = ap.size > 0 ? ap.size : 30;
    jp.warmup_iterations = ap.warmup_iterations;
    jp.timed_iterations = ap.iterations;
    jp.variant = variant_;
    jp.verify = req.verify;
    const apps::JacobiResult res = apps::run_jacobi(sys, jp);

    RunResult r;
    r.cycles = res.total_cycles;
    r.metric = res.cycles_per_iteration;
    r.metric_name = "cycles_per_iteration";
    r.stats = sys.aggregate_stats();
    add_sched_stats(sys.scheduler(), r.stats);
    r.flits_delivered = r.stats.get("noc.flits_delivered");
    r.verified_ok = !jp.verify || res.max_abs_error == 0.0;
    return r;
  }

 private:
  std::string name_;
  apps::JacobiVariant variant_;
  std::string description_;
};

class ReductionWorkload final : public Workload {
 public:
  ReductionWorkload(std::string name, apps::ReductionVariant variant,
                    std::string description)
      : name_(std::move(name)),
        variant_(variant),
        description_(std::move(description)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  WorkloadKind kind() const override { return WorkloadKind::kApp; }

  RunResult run(const RunRequest& req, RunContext& ctx) const override {
    const AppParams ap = section_or_default(req.app);
    core::MedeaConfig cfg = req.machine;
    cfg.workload = name_;
    cfg.seed = req.seed;
    core::MedeaSystem sys(cfg);
    if (noc::FlitObserver* o = ctx.observer()) sys.network().set_observer(o);
    ScopedTelemetry telemetry(ctx, sys.scheduler(), sys.network().stats());
    add_memory_telemetry(telemetry, sys);

    apps::ReductionParams rp;
    rp.elements = ap.size > 0 ? ap.size : 1024;
    rp.repeats = ap.iterations;
    rp.variant = variant_;
    const apps::ReductionResult res = apps::run_reduction(sys, rp);

    RunResult r;
    r.cycles = res.total_cycles;
    r.metric = res.cycles_per_round;
    r.metric_name = "cycles_per_round";
    r.stats = sys.aggregate_stats();
    add_sched_stats(sys.scheduler(), r.stats);
    r.flits_delivered = r.stats.get("noc.flits_delivered");
    // The MP variant accumulates in rank order (exact); the SM variant's
    // order follows lock grants, so it gets the documented tolerance.
    r.verified_ok = !req.verify || res.abs_error <= 1e-9;
    return r;
  }

 private:
  std::string name_;
  apps::ReductionVariant variant_;
  std::string description_;
};

// ---------------------------------------------------------------------
// NoC-only synthetic traffic
// ---------------------------------------------------------------------

class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(noc::TrafficPattern pattern)
      : pattern_(pattern) {}

  std::string name() const override { return noc::to_string(pattern_); }
  std::string description() const override {
    switch (pattern_) {
      case noc::TrafficPattern::kUniformRandom:
        return "synthetic NoC traffic: uniform-random destinations";
      case noc::TrafficPattern::kHotspot:
        return "synthetic NoC traffic: all nodes target one hotspot";
      case noc::TrafficPattern::kTranspose:
        return "synthetic NoC traffic: (x,y)->(y,x) permutation";
      case noc::TrafficPattern::kNeighbor:
        return "synthetic NoC traffic: nearest-neighbour ring";
      case noc::TrafficPattern::kBitReversal:
        return "synthetic NoC traffic: node i -> bit-reverse(i) (FFT "
               "butterfly permutation)";
    }
    return "synthetic NoC traffic";
  }
  WorkloadKind kind() const override { return WorkloadKind::kSynthetic; }

  TraceNetConfig net_config(const RunRequest& req) const override {
    const SyntheticParams sp = section_or_default(req.synthetic);
    if (sp.network == "xy") {
      return TraceNetConfig::from(sp.xy_router, sp.xy_torus_wrap);
    }
    return TraceNetConfig::from(req.machine.router);
  }

  RunResult run(const RunRequest& req, RunContext& ctx) const override {
    const SyntheticParams sp = section_or_default(req.synthetic);
    noc::TrafficConfig tc;
    tc.pattern = pattern_;
    tc.injection_rate = sp.injection_rate;
    tc.process = sp.process;
    tc.flits_per_node = sp.flits_per_node;
    tc.hotspot_node = sp.hotspot_node;
    tc.seed = req.seed;

    // Synthetic patterns drive either fabric (sp.network); stat keys and
    // the latency accumulator just carry the fabric's prefix.
    const noc::TorusGeometry geom(req.machine.noc_width,
                                  req.machine.noc_height);
    RunResult r;
    if (sp.network == "xy") {
      // The XY baseline shares buffered queues across the whole fabric
      // and never shards; a kShardedCalendar config transparently runs
      // the calendar kernel single-threaded here.
      sim::Scheduler sched(req.machine.scheduler);
      noc::XyNetwork net(sched, geom, sp.xy_router, sp.xy_torus_wrap);
      run_on(sched, net, tc, req, ctx, r, "xynoc.");
      r.cycles = sched.now();
    } else if (sp.network == "deflection") {
      // Row bands cap useful shards at the torus height; anything the
      // config resolves beyond one shard runs the lockstep parallel
      // kernel, bit-identical to the single-thread run.
      sim::SimDomain dom(req.machine.scheduler, geom.height());
      noc::Network net(dom, geom, req.machine.router, req.seed);
      run_on(dom, net, tc, req, ctx, r, "noc.");
      r.cycles = dom.now();
    } else {
      throw std::invalid_argument(
          "synthetic workload: unknown network '" + sp.network +
          "' (expected \"deflection\" or \"xy\")");
    }
    return r;
  }

 private:
  /// One synthetic run on fabric Net driven by Exec (a Scheduler or a
  /// SimDomain — the run helpers, telemetry attachment and sched-stat
  /// export all overload on it): the classic fixed-budget drain, or —
  /// when the request asks for it — a phased warmup/measure/drain run
  /// driven through the measurement controller (validation guarantees
  /// ctx.measure is set whenever measurement.phased is).
  template <typename Exec, typename Net>
  static void run_on(Exec& exec, Net& net, const noc::TrafficConfig& tc,
                     const RunRequest& req, RunContext& ctx, RunResult& r,
                     const std::string& prefix) {
    if (noc::FlitObserver* o = ctx.observer()) net.set_observer(o);
    ScopedTelemetry telemetry(ctx, exec, net.stats());
    if (req.measurement.phased) {
      const MeasurementResult m =
          run_phased_traffic(exec, net, tc, req.measurement, *ctx.measure);
      r.metric = m.latency.mean;
      r.metric_name = "measured_avg_flit_latency";
      r.stats = net.stats();
      r.flits_delivered = r.stats.get(prefix + "flits_delivered");
      // A phased run is sound when every measured flit made it out.
      r.verified_ok = m.drained;
    } else {
      const int received = noc::run_traffic(exec, net, tc);
      r.metric = net.stats().acc(prefix + "latency").mean();
      r.metric_name = "avg_flit_latency";
      r.stats = net.stats();
      r.flits_delivered =
          r.stats.get(prefix + "flits_delivered");
      r.verified_ok =
          static_cast<std::uint64_t>(received) == r.flits_delivered;
    }
    add_sched_stats(exec, r.stats);
  }

  noc::TrafficPattern pattern_;
};

// ---------------------------------------------------------------------
// All-to-all exchange (full system)
// ---------------------------------------------------------------------

class AlltoallWorkload final : public Workload {
 public:
  std::string name() const override { return "alltoall"; }
  std::string description() const override {
    return "personalized all-to-all exchange over eMPI (ring schedule; "
           "every core sends a distinct chunk to every other core)";
  }
  WorkloadKind kind() const override { return WorkloadKind::kApp; }

  RunResult run(const RunRequest& req, RunContext& ctx) const override {
    const AppParams ap = section_or_default(req.app);
    core::MedeaConfig cfg = req.machine;
    cfg.workload = name();
    cfg.seed = req.seed;
    core::MedeaSystem sys(cfg);
    if (noc::FlitObserver* o = ctx.observer()) sys.network().set_observer(o);
    ScopedTelemetry telemetry(ctx, sys.scheduler(), sys.network().stats());
    add_memory_telemetry(telemetry, sys);

    apps::AlltoallParams aap;
    aap.words_per_pair = ap.size > 0 ? ap.size : 8;
    aap.repeats = ap.iterations;
    const apps::AlltoallResult res = apps::run_alltoall(sys, aap);

    RunResult r;
    r.cycles = res.total_cycles;
    r.metric = res.cycles_per_round;
    r.metric_name = "cycles_per_round";
    r.stats = sys.aggregate_stats();
    add_sched_stats(sys.scheduler(), r.stats);
    r.flits_delivered = r.stats.get("noc.flits_delivered");
    // Receivers verify every word against the (src,dst,i) reference on
    // every run; req.verify only decides whether the result gates on it.
    r.verified_ok = !req.verify || res.verified_ok;
    return r;
  }
};

// ---------------------------------------------------------------------
// Trace replay
// ---------------------------------------------------------------------

class ReplayWorkload final : public Workload {
 public:
  std::string name() const override { return "replay"; }
  std::string description() const override {
    return "re-inject a recorded flit trace into a bare NoC (fast-forward "
           "mode; requires replay.trace_path, honors replay.trace_scale)";
  }
  WorkloadKind kind() const override { return WorkloadKind::kReplay; }

  /// The replay NoC takes its geometry from the trace header, not from
  /// the machine config (recorders must be sized accordingly).
  std::pair<int, int> noc_dims(const RunRequest& req) const override {
    const TraceMeta meta = load_trace_meta(require_path(req));
    return {meta.width, meta.height};
  }

  /// Re-recording a replay keeps the original header's fabric.
  TraceNetConfig net_config(const RunRequest& req) const override {
    return load_trace_meta(require_path(req)).net;
  }

  RunResult run(const RunRequest& req, RunContext& ctx) const override {
    const ReplayParams rp = section_or_default(req.replay);
    const std::shared_ptr<const Trace> trace_ptr =
        load_cached(require_path(req), rp.trace_scale);
    const Trace& trace = *trace_ptr;

    // Seed the NoC from the trace header, not the replay params: with
    // random_tie_break routers the recorded deflection choices depend on
    // the recorded seed, and bit-identical replay depends on matching it.
    const noc::TorusGeometry geom(trace.meta.width, trace.meta.height);
    ReplayResult res;
    RunResult r;
    if (trace.meta.version >= 2 &&
        trace.meta.net.kind == TraceNetKind::kBufferedXy) {
      // The header says which fabric recorded the trace; rebuild exactly
      // that one (the machine's deflection RouterConfig does not apply).
      // The XY fabric never shards (see SyntheticWorkload).
      sim::Scheduler sched(req.machine.scheduler);
      noc::XyNetwork net(sched, geom, trace.meta.net.xy_router_config(),
                         trace.meta.net.torus_wrap);
      if (noc::FlitObserver* o = ctx.observer()) net.set_observer(o);
      ScopedTelemetry telemetry(ctx, sched, net.stats());
      res = run_replay(sched, net, trace, kReplayLimit, rp.force_config);
      r.stats = net.stats();
      add_sched_stats(sched, r.stats);
    } else {
      // Deflection replay runs on the machine's RouterConfig; for v2
      // traces the replayer refuses a config that differs from the
      // recording unless rp.force_config makes it explicit.  Replays
      // shard like synthetic traffic: per-node injectors/sinks live on
      // their node's shard.
      sim::SimDomain dom(req.machine.scheduler, geom.height());
      noc::Network net(dom, geom, req.machine.router, trace.meta.seed);
      if (noc::FlitObserver* o = ctx.observer()) net.set_observer(o);
      ScopedTelemetry telemetry(ctx, dom, net.stats());
      res = run_replay(dom, net, trace, kReplayLimit, rp.force_config);
      r.stats = net.stats();
      add_sched_stats(dom, r.stats);
    }

    r.cycles = res.cycles;
    r.metric = static_cast<double>(res.last_delivery_cycle);
    r.metric_name = "last_delivery_cycle";
    r.flits_delivered = res.flits_delivered;
    // Every recorded flit must come out of the network again.
    r.verified_ok = res.flits_delivered == trace.events.size();
    return r;
  }

 private:
  static constexpr sim::Cycle kReplayLimit = 50'000'000;

  static const std::string& require_path(const RunRequest& req) {
    if (!req.replay.has_value() || req.replay->trace_path.empty()) {
      throw std::invalid_argument(
          "replay workload: replay.trace_path must name a recorded trace");
    }
    return req.replay->trace_path;
  }

  /// Traces are immutable once recorded, and a DSE sweep replays the
  /// same file — at the same handful of rate scales — at every design
  /// point from many threads.  Cache parsed (and scaled) traces by
  /// (path, scale) so a 168-cell sweep decodes the file once and runs
  /// each RateScale pass once, not once per cell.
  std::shared_ptr<const Trace> load_cached(const std::string& path,
                                           double scale) const {
    const CacheKey key{path, scale};
    {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      const auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    std::shared_ptr<const Trace> fresh;
    if (scale == 1.0) {
      fresh = std::make_shared<const Trace>(load_trace(path));
    } else {
      const auto base = load_cached(path, 1.0);
      fresh = std::make_shared<const Trace>(
          xform::RateScale(scale).apply(*base));
    }
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    // A sweep touches a few (path, scale) combos; a pathological caller
    // cycling through many files should not accumulate them forever.
    if (cache_.size() >= 16) cache_.clear();
    return cache_.emplace(key, std::move(fresh)).first->second;
  }

  using CacheKey = std::pair<std::string, double>;
  mutable std::mutex cache_mutex_;
  mutable std::map<CacheKey, std::shared_ptr<const Trace>> cache_;
};

}  // namespace

namespace detail {

void register_builtins(WorkloadRegistry& reg) {
  reg.add(std::make_unique<JacobiWorkload>(
      "jacobi", apps::JacobiVariant::kHybridMp,
      "Jacobi 2-D Laplace solver, hybrid message-passing variant (the "
      "paper's benchmark)"));
  reg.add(std::make_unique<JacobiWorkload>(
      "jacobi-sync", apps::JacobiVariant::kHybridSyncOnly,
      "Jacobi solver: shared-memory data exchange, message-passing "
      "synchronization"));
  reg.add(std::make_unique<JacobiWorkload>(
      "jacobi-sm", apps::JacobiVariant::kPureSharedMemory,
      "Jacobi solver: pure shared memory with lock-based barriers"));
  reg.add(std::make_unique<ReductionWorkload>(
      "reduction", apps::ReductionVariant::kMessagePassing,
      "parallel dot product, message-passing gather+broadcast"));
  reg.add(std::make_unique<ReductionWorkload>(
      "reduction-sm", apps::ReductionVariant::kSharedMemory,
      "parallel dot product, lock-protected shared accumulator"));
  reg.add(std::make_unique<AlltoallWorkload>());
  for (noc::TrafficPattern pat :
       {noc::TrafficPattern::kUniformRandom, noc::TrafficPattern::kHotspot,
        noc::TrafficPattern::kTranspose, noc::TrafficPattern::kNeighbor,
        noc::TrafficPattern::kBitReversal}) {
    reg.add(std::make_unique<SyntheticWorkload>(pat));
  }
  reg.add(std::make_unique<ReplayWorkload>());
}

}  // namespace detail
}  // namespace medea::workload
