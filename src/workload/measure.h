#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/flit.h"
#include "noc/traffic.h"
#include "sim/domain.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/types.h"

/// \file measure.h
/// Traffic-manager-grade measurement: warmup -> measurement -> drain
/// phasing, per-flit injection->ejection latency distributions and
/// offered-vs-accepted throughput, collected through the existing
/// FlitObserver hook so every fabric that can be traced can be measured
/// — no router changes (booksim2's TrafficManager methodology, layered
/// over the workload registry).
///
/// Two modes share one controller:
///
///  * whole-run collection (any workload, the default): the controller
///    rides along as a passive observer and the measurement window is
///    the entire run — percentiles for free on apps and trace replays;
///  * phased runs (rate-controlled synthetic traffic): the driver below
///    runs a warmup phase (fixed-length or steady-state-detected),
///    opens the window for `measure_cycles`, then stops injection and
///    drains until every in-window flit has ejected, so the reported
///    tail latencies are not truncated by the end of the run.
///
/// Only flits *injected inside the window* contribute to the histogram
/// and to accepted throughput; warmup and drain traffic keeps the
/// fabric loaded but is never measured.

namespace medea::workload {

/// Measurement knobs, embedded in RunRequest (see workload.h).
struct MeasurementParams {
  /// Collect per-flit latency + throughput for the run (any workload).
  bool collect = true;

  /// Phased warmup/measure/drain run (synthetic workloads only —
  /// validation rejects it elsewhere; see validate_request()).
  bool phased = false;

  /// Warmup length when auto_warmup is off.
  sim::Cycle warmup_cycles = 1000;
  /// Detect steady state instead of trusting warmup_cycles: warmup ends
  /// once the mean latency of consecutive `warmup_step`-cycle windows
  /// stabilizes within `steady_tolerance` twice in a row (capped at
  /// max_warmup).
  bool auto_warmup = false;
  sim::Cycle warmup_step = 256;
  double steady_tolerance = 0.05;
  sim::Cycle max_warmup = 32768;

  /// Length of the measurement window.
  sim::Cycle measure_cycles = 4096;
  /// Extra cycles allowed for the drain phase before giving up (a
  /// saturated fabric may never drain; `drained` reports which).
  sim::Cycle drain_limit = 1'000'000;

  bool operator==(const MeasurementParams&) const = default;
};

/// Latency distribution summary extracted from a LatencyHistogram.
/// Quantiles carry the histogram's bounded quantization error
/// (sim::LatencyHistogram::max_relative_error()).
struct LatencyStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t min = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;

  bool operator==(const LatencyStats&) const = default;
};

/// What one measured run produced.  For whole-run collection the window
/// is [0, run end]; for phased runs it is (warmup_end, measure_end].
struct MeasurementResult {
  LatencyStats latency;  ///< flits injected inside the window

  /// Offered load in flits/node/cycle over the window (phased runs:
  /// from endpoint attempt counters, including refused offers;
  /// whole-run: equals injected throughput).
  double offered_load = 0.0;
  /// In-window-injected flits that ejected, per node per cycle of
  /// window.  Tracks offered_load below saturation, plateaus above it.
  double accepted_throughput = 0.0;

  sim::Cycle warmup_end = 0;   ///< window opens after this cycle
  sim::Cycle measure_end = 0;  ///< window closes at this cycle
  sim::Cycle run_cycles = 0;   ///< total simulated cycles incl. drain

  std::uint64_t injected = 0;   ///< flits injected inside the window
  std::uint64_t delivered = 0;  ///< of those, how many ejected
  /// True when every in-window flit ejected before drain_limit (phased)
  /// or the run completed (whole-run).  False means the latency tail is
  /// truncated — the classic past-saturation signature.
  bool drained = true;

  bool operator==(const MeasurementResult&) const = default;
};

/// FlitObserver that streams per-flit latencies into a histogram,
/// classifying each flit by its inject cycle against the current
/// measurement window.  Forwards every event to an optional secondary
/// observer first, so recording a trace and measuring it are one run.
class MeasurementController final : public noc::FlitObserver {
 public:
  /// `num_nodes` normalizes throughput; `forward` (optional) receives
  /// every event untouched (e.g. a TraceRecorder).
  MeasurementController(const MeasurementParams& params, int num_nodes,
                        noc::FlitObserver* forward = nullptr);

  void on_inject(sim::Cycle now, int node, const noc::Flit& f) override;
  void on_deliver(sim::Cycle now, int node, const noc::Flit& f) override;

  // --- phase control (the phased driver below) ---
  /// Open the measurement window: flits with inject_cycle > `now` count.
  void begin_window(sim::Cycle now);
  /// Close the window: flits injected after `now` are drain traffic.
  void end_window(sim::Cycle now);
  /// In-window flits still in flight (drain terminates when 0).
  std::uint64_t in_flight() const { return injected_ - delivered_; }

  // --- steady-state detection support ---
  /// Mean latency of deliveries since the last reset_probe(); NaN when
  /// no delivery landed in the probe window.
  double probe_mean() const;
  void reset_probe();

  /// Phased runs: offered load measured from endpoint attempt counters.
  void set_offered_load(double load) { offered_override_ = load; }

  /// Close a still-open window at `end_cycle` (whole-run mode) and
  /// freeze totals.  Idempotent; phased drivers call it after drain.
  void finalize(sim::Cycle end_cycle, bool drained);

  /// Summary of the finalized run.
  MeasurementResult result() const;

  const sim::LatencyHistogram& histogram() const { return hist_; }

 private:
  bool in_window(sim::Cycle inject_cycle) const {
    return inject_cycle > warmup_end_ && inject_cycle <= measure_end_;
  }

  MeasurementParams params_;
  int num_nodes_;
  noc::FlitObserver* forward_;

  sim::Cycle warmup_end_ = 0;                 // window opens after this
  sim::Cycle measure_end_ = sim::kNeverCycle;  // open until closed
  sim::Cycle run_cycles_ = 0;
  bool finalized_ = false;
  bool drained_ = true;

  sim::LatencyHistogram hist_;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  double offered_override_ = -1.0;  // < 0: derive from injected_

  // steady-state probe window
  double probe_sum_ = 0.0;
  std::uint64_t probe_count_ = 0;
};

/// Drive one phased (warmup -> measure -> drain) synthetic-traffic run
/// on fabric N (Network or XyNetwork).  Endpoints run with unlimited
/// budget; `mc` must be the observer already attached to `net`.
/// Returns the finalized result (also available via mc.result()).
template <typename N>
MeasurementResult run_phased_traffic(sim::Scheduler& sched, N& net,
                                     const noc::TrafficConfig& cfg,
                                     const MeasurementParams& mp,
                                     MeasurementController& mc) {
  noc::TrafficConfig unlimited = cfg;
  unlimited.flits_per_node = -1;
  std::vector<std::unique_ptr<noc::TrafficEndpoint<N>>> eps;
  eps.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (int i = 0; i < net.num_nodes(); ++i) {
    eps.push_back(
        std::make_unique<noc::TrafficEndpoint<N>>(sched, net, i, unlimited));
  }
  const auto total_attempts = [&eps] {
    std::uint64_t n = 0;
    for (const auto& e : eps) n += e->attempts();
    return n;
  };

  // Warmup: fixed-length, or stepped with steady-state detection (two
  // consecutive probe windows whose mean latency moved less than the
  // tolerance).  Endpoints self-wake every cycle, so run(t) always
  // advances exactly to t.
  sim::Cycle warmup_end = 0;
  if (mp.auto_warmup) {
    double prev = std::nan("");
    int stable = 0;
    while (warmup_end < mp.max_warmup && stable < 2) {
      warmup_end += mp.warmup_step;
      sched.run(warmup_end);
      const double m = mc.probe_mean();
      mc.reset_probe();
      if (!std::isnan(prev) && !std::isnan(m) &&
          std::fabs(m - prev) <= mp.steady_tolerance * prev) {
        ++stable;
      } else {
        stable = 0;
      }
      prev = m;
    }
  } else {
    warmup_end = mp.warmup_cycles;
    sched.run(warmup_end);
  }

  // Measurement window.
  const std::uint64_t attempts_before = total_attempts();
  mc.begin_window(warmup_end);
  const sim::Cycle measure_end = warmup_end + mp.measure_cycles;
  sched.run(measure_end);
  mc.end_window(measure_end);
  const std::uint64_t attempts_in_window = total_attempts() - attempts_before;
  mc.set_offered_load(static_cast<double>(attempts_in_window) /
                      static_cast<double>(net.num_nodes()) /
                      static_cast<double>(mp.measure_cycles));

  // Drain: stop offering, let the fabric empty.  run() returns true on
  // idle (every flit — measured or not — ejected and consumed).
  for (auto& e : eps) e->stop_injecting();
  const bool idle = sched.run(measure_end + mp.drain_limit);
  mc.finalize(sched.now(), idle && mc.in_flight() == 0);
  return mc.result();
}

/// Sharded variant of the phased driver: endpoints are constructed on
/// their node's shard scheduler and the SimDomain runs each phase.
/// Observer events reach `mc` from the domain's serial flush in
/// canonical order, and every flush owed for a phase has happened by the
/// time run() returns, so window boundaries land on exactly the flits
/// they do single-threaded — the phased path is bit-identical too.
template <typename N>
MeasurementResult run_phased_traffic(sim::SimDomain& dom, N& net,
                                     const noc::TrafficConfig& cfg,
                                     const MeasurementParams& mp,
                                     MeasurementController& mc) {
  noc::TrafficConfig unlimited = cfg;
  unlimited.flits_per_node = -1;
  std::vector<std::unique_ptr<noc::TrafficEndpoint<N>>> eps;
  eps.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (int i = 0; i < net.num_nodes(); ++i) {
    eps.push_back(std::make_unique<noc::TrafficEndpoint<N>>(net.sched_of(i),
                                                            net, i,
                                                            unlimited));
  }
  const auto total_attempts = [&eps] {
    std::uint64_t n = 0;
    for (const auto& e : eps) n += e->attempts();
    return n;
  };

  sim::Cycle warmup_end = 0;
  if (mp.auto_warmup) {
    double prev = std::nan("");
    int stable = 0;
    while (warmup_end < mp.max_warmup && stable < 2) {
      warmup_end += mp.warmup_step;
      dom.run(warmup_end);
      const double m = mc.probe_mean();
      mc.reset_probe();
      if (!std::isnan(prev) && !std::isnan(m) &&
          std::fabs(m - prev) <= mp.steady_tolerance * prev) {
        ++stable;
      } else {
        stable = 0;
      }
      prev = m;
    }
  } else {
    warmup_end = mp.warmup_cycles;
    dom.run(warmup_end);
  }

  const std::uint64_t attempts_before = total_attempts();
  mc.begin_window(warmup_end);
  const sim::Cycle measure_end = warmup_end + mp.measure_cycles;
  dom.run(measure_end);
  mc.end_window(measure_end);
  const std::uint64_t attempts_in_window = total_attempts() - attempts_before;
  mc.set_offered_load(static_cast<double>(attempts_in_window) /
                      static_cast<double>(net.num_nodes()) /
                      static_cast<double>(mp.measure_cycles));

  for (auto& e : eps) e->stop_injecting();
  const bool idle = dom.run(measure_end + mp.drain_limit);
  net.refresh_stats();
  mc.finalize(dom.now(), idle && mc.in_flight() == 0);
  return mc.result();
}

}  // namespace medea::workload
