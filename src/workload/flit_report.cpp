#include "workload/flit_report.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "noc/coord.h"

namespace medea::workload {

namespace {

std::string coord_str(std::uint16_t node, int width) {
  if (width <= 0) return std::to_string(node);
  noc::Coord c{static_cast<std::uint8_t>(node % width),
               static_cast<std::uint8_t>(node / width)};
  return c.to_string();
}

/// kNeverCycle-aware cycle rendering: -1 for "never observed".
std::string cycle_or_missing(sim::Cycle c) {
  return c == sim::kNeverCycle ? std::string("-1") : std::to_string(c);
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

struct DecompositionMeans {
  double source_queue = 0.0;
  double network = 0.0;
  double eject_wait = 0.0;
  double total = 0.0;
  std::uint64_t complete = 0;
};

DecompositionMeans decomposition_means(const telemetry::FlitTrace& ft) {
  DecompositionMeans m;
  for (const telemetry::TracedFlit& f : ft.flits) {
    if (!f.complete) continue;
    const telemetry::LatencyDecomposition d = ft.decompose(f);
    m.source_queue += static_cast<double>(d.source_queue);
    m.network += static_cast<double>(d.network);
    m.eject_wait += static_cast<double>(d.eject_wait);
    m.total += static_cast<double>(d.total());
    ++m.complete;
  }
  if (m.complete > 0) {
    const double n = static_cast<double>(m.complete);
    m.source_queue /= n;
    m.network /= n;
    m.eject_wait /= n;
    m.total /= n;
  }
  return m;
}

}  // namespace

std::string format_flit_trace_json(const telemetry::FlitTrace& ft,
                                   const TimelineMeta& meta, int worst_k) {
  const DecompositionMeans dm = decomposition_means(ft);
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"medea-flittrace-v1\",\n";
  os << "  \"workload\": \"" << meta.workload << "\",\n";
  os << "  \"seed\": " << meta.seed << ",\n";
  os << "  \"noc\": {\"width\": " << ft.width << ", \"height\": " << ft.height
     << "},\n";
  os << "  \"sample_every\": " << ft.sample_every << ",\n";
  os << "  \"run_cycles\": " << ft.run_cycles << ",\n";
  os << "  \"packets_seen\": " << ft.packets_seen << ",\n";
  os << "  \"packets_traced\": " << ft.flits.size() << ",\n";
  os << "  \"packets_complete\": " << dm.complete << ",\n";
  os << "  \"total_hops\": " << ft.hop_cycle.size() << ",\n";
  os << "  \"total_deflections\": " << ft.total_deflections() << ",\n";
  os << "  \"max_deflections\": " << ft.max_deflections() << ",\n";
  os << "  \"latency\": {\"mean_source_queue\": " << fmt_double(dm.source_queue)
     << ", \"mean_network\": " << fmt_double(dm.network)
     << ", \"mean_eject_wait\": " << fmt_double(dm.eject_wait)
     << ", \"mean_total\": " << fmt_double(dm.total) << "},\n";

  const auto hist = [&](const std::map<std::uint32_t, std::uint64_t>& h) {
    std::ostringstream e;
    e << "[";
    bool first = true;
    for (const auto& [k, v] : h) {
      e << (first ? "" : ", ") << "[" << k << ", " << v << "]";
      first = false;
    }
    e << "]";
    return std::move(e).str();
  };
  os << "  \"hop_histogram\": " << hist(ft.hop_histogram()) << ",\n";
  os << "  \"deflection_histogram\": " << hist(ft.deflection_histogram())
     << ",\n";

  // Per-link utilization: for each direction one row-major WxH grid of
  // traversal counts out of that node on that port (and the deflected
  // subset) — the spatial congestion picture.
  const auto grids = [&](const std::vector<std::uint64_t>& links) {
    std::ostringstream e;
    e << "[";
    for (int d = 0; d < noc::kNumDirs; ++d) {
      e << (d ? ", " : "") << "[";
      for (int n = 0; n < ft.num_nodes(); ++n) {
        e << (n ? "," : "")
          << links[static_cast<std::size_t>(n) * noc::kNumDirs +
                   static_cast<std::size_t>(d)];
      }
      e << "]";
    }
    e << "]";
    return std::move(e).str();
  };
  os << "  \"links\": {\"dirs\": [\"N\", \"E\", \"S\", \"W\"], \"flits\": "
     << grids(ft.link_flits()) << ", \"deflected\": "
     << grids(ft.link_deflections()) << "},\n";

  os << "  \"worst\": [";
  bool first = true;
  for (const telemetry::TracedFlit* f : ft.worst(worst_k)) {
    const telemetry::LatencyDecomposition d = ft.decompose(*f);
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"uid\": " << f->uid << ", \"src\": " << f->src
       << ", \"dst\": " << f->dst
       << ", \"enqueue\": " << cycle_or_missing(f->enqueue_cycle)
       << ", \"inject\": " << f->inject_cycle
       << ", \"deliver\": " << f->deliver_cycle
       << ", \"latency\": " << (f->deliver_cycle - f->inject_cycle)
       << ", \"source_queue\": " << d.source_queue
       << ", \"network\": " << d.network
       << ", \"eject_wait\": " << d.eject_wait << ", \"hops\": " << f->hop_count
       << ", \"deflections\": " << f->deflections << ", \"chain\": [";
    for (std::uint32_t i = 0; i < f->hop_count; ++i) {
      const telemetry::TracedHop h = ft.hop(f->first_hop + i);
      os << (i ? ", " : "") << "[" << h.cycle << "," << h.node << ","
         << static_cast<int>(h.port) << "," << static_cast<int>(h.deflected)
         << "]";
    }
    os << "]}";
  }
  os << "\n  ],\n";

  // Full columnar tables — the machine-readable ground truth analyzers
  // consume (sampling bounds their size; the worst/summary sections
  // above are derivable from these).
  const auto column = [&](const char* name, auto getter, bool last = false) {
    os << "    \"" << name << "\": [";
    for (std::size_t i = 0; i < ft.flits.size(); ++i) {
      os << (i ? "," : "") << getter(ft.flits[i]);
    }
    os << "]" << (last ? "\n" : ",\n");
  };
  os << "  \"packets\": {\n";
  column("uid", [](const auto& f) { return std::to_string(f.uid); });
  column("src", [](const auto& f) { return std::to_string(f.src); });
  column("dst", [](const auto& f) { return std::to_string(f.dst); });
  column("enqueue",
         [](const auto& f) { return cycle_or_missing(f.enqueue_cycle); });
  column("inject",
         [](const auto& f) { return cycle_or_missing(f.inject_cycle); });
  column("deliver",
         [](const auto& f) { return cycle_or_missing(f.deliver_cycle); });
  column("first_hop",
         [](const auto& f) { return std::to_string(f.first_hop); });
  column("hop_count",
         [](const auto& f) { return std::to_string(f.hop_count); });
  column("deflections",
         [](const auto& f) { return std::to_string(f.deflections); });
  column("complete",
         [](const auto& f) { return std::string(f.complete ? "1" : "0"); },
         true);
  os << "  },\n";

  const auto hop_column = [&](const char* name, auto getter,
                              bool last = false) {
    os << "    \"" << name << "\": [";
    for (std::size_t i = 0; i < ft.hop_cycle.size(); ++i) {
      os << (i ? "," : "") << getter(i);
    }
    os << "]" << (last ? "\n" : ",\n");
  };
  os << "  \"hops\": {\n";
  hop_column("cycle", [&](std::size_t i) { return ft.hop_cycle[i]; });
  hop_column("node", [&](std::size_t i) { return ft.hop_node[i]; });
  hop_column("port",
             [&](std::size_t i) { return static_cast<int>(ft.hop_port[i]); });
  hop_column(
      "deflected",
      [&](std::size_t i) { return static_cast<int>(ft.hop_deflected[i]); },
      true);
  os << "  }\n";
  os << "}\n";
  return std::move(os).str();
}

std::string format_worst_flits(const telemetry::FlitTrace& ft, int k) {
  const DecompositionMeans dm = decomposition_means(ft);
  std::ostringstream os;
  os << "flit-trace forensics: " << ft.flits.size() << " packets traced ("
     << ft.packets_seen << " seen, 1-in-" << ft.sample_every << "), "
     << dm.complete << " complete, " << ft.hop_cycle.size() << " hops, "
     << ft.total_deflections() << " deflections (max/packet "
     << ft.max_deflections() << ")\n";
  os << "mean latency " << fmt_double(dm.total) << " = source-queue "
     << fmt_double(dm.source_queue) << " + network " << fmt_double(dm.network)
     << " + eject-wait " << fmt_double(dm.eject_wait) << " cycles\n";

  const auto worst = ft.worst(k);
  os << "\nworst " << worst.size() << " packets by inject->deliver latency:\n";
  int rank = 0;
  for (const telemetry::TracedFlit* f : worst) {
    const telemetry::LatencyDecomposition d = ft.decompose(*f);
    os << "#" << ++rank << " uid " << f->uid << "  "
       << coord_str(f->src, ft.width) << " -> " << coord_str(f->dst, ft.width)
       << "  latency " << (f->deliver_cycle - f->inject_cycle) << " (queue "
       << d.source_queue << " + network " << d.network << " + eject "
       << d.eject_wait << ")  hops " << f->hop_count << "  deflections "
       << f->deflections << "\n";
    for (std::uint32_t i = 0; i < f->hop_count; ++i) {
      const telemetry::TracedHop h = ft.hop(f->first_hop + i);
      os << "    t=" << h.cycle << "  " << coord_str(h.node, ft.width) << " "
         << noc::to_string(static_cast<noc::Dir>(h.port)) << "->"
         << (h.deflected != 0 ? "  DEFLECTED" : "") << "\n";
    }
    os << "    t=" << f->deliver_cycle << "  delivered at "
       << coord_str(f->dst, ft.width) << "\n";
  }
  return std::move(os).str();
}

}  // namespace medea::workload
