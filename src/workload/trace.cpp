#include "workload/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "noc/coord.h"

namespace medea::workload {

namespace {

constexpr char kMagic[4] = {'M', 'D', 'T', 'R'};

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Bounds-checked LEB128 reader over [data, data+size).
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos >= size) throw std::runtime_error("trace: truncated varint");
      if (shift >= 64) throw std::runtime_error("trace: varint overflow");
      const std::uint8_t b = data[pos++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  /// varint that must fit the target integer type.
  template <typename T>
  T varint_as(const char* what) {
    const std::uint64_t v = varint();
    if (v > static_cast<std::uint64_t>(std::numeric_limits<T>::max())) {
      throw std::runtime_error(std::string("trace: field out of range: ") +
                               what);
    }
    return static_cast<T>(v);
  }
};

}  // namespace

int coord_bits_for(int width, int height) {
  const int m = std::max(width, height) - 1;
  const int bits = std::bit_width(static_cast<unsigned>(m > 0 ? m : 0));
  return bits > 0 ? bits : 1;
}

std::vector<std::uint8_t> serialize_trace(const Trace& t) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + t.meta.workload.size() + t.events.size() * 8);
  // Byte-wise append: gcc-12 -O3 misfires stringop-overflow on
  // vector::insert from a constexpr char[4].
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  out.push_back(kTraceVersion);
  put_varint(out, static_cast<std::uint64_t>(t.meta.width));
  put_varint(out, static_cast<std::uint64_t>(t.meta.height));
  put_varint(out, static_cast<std::uint64_t>(t.meta.coord_bits));
  put_varint(out, t.meta.seed);
  put_varint(out, t.meta.total_cycles);
  put_varint(out, t.meta.workload.size());
  out.insert(out.end(), t.meta.workload.begin(), t.meta.workload.end());
  put_varint(out, t.events.size());
  sim::Cycle prev = 0;
  for (const TraceEvent& e : t.events) {
    if (e.cycle < prev) {
      throw std::runtime_error("trace: events not sorted by cycle");
    }
    put_varint(out, e.cycle - prev);
    prev = e.cycle;
    put_varint(out, e.src);
    put_varint(out, e.dst);
    put_varint(out, e.size);
    put_varint(out, e.uid);
    put_varint(out, e.payload);
  }
  return out;
}

namespace {

/// Parse and validate the header (magic, version, meta fields), leaving
/// the reader positioned at the event count.
TraceMeta parse_meta(Reader& r) {
  if (r.size < 5 || std::memcmp(r.data, kMagic, 4) != 0) {
    throw std::runtime_error("trace: bad magic (not a MEDEA trace)");
  }
  r.pos = 4;
  const std::uint8_t version = r.data[r.pos++];
  if (version != kTraceVersion) {
    throw std::runtime_error("trace: unsupported version " +
                             std::to_string(version));
  }
  TraceMeta m;
  m.width = r.varint_as<int>("width");
  m.height = r.varint_as<int>("height");
  m.coord_bits = r.varint_as<int>("coord_bits");
  m.seed = r.varint();
  m.total_cycles = r.varint();
  if (m.width < 1 || m.height < 1) {
    throw std::runtime_error("trace: invalid geometry");
  }
  if (m.coord_bits < 1 || m.coord_bits > 8 ||
      m.coord_bits < coord_bits_for(m.width, m.height)) {
    throw std::runtime_error("trace: invalid coord_bits");
  }
  const auto name_len = r.varint_as<std::uint32_t>("workload name length");
  if (r.pos + name_len > r.size) {
    throw std::runtime_error("trace: truncated workload name");
  }
  m.workload.assign(reinterpret_cast<const char*>(r.data + r.pos), name_len);
  r.pos += name_len;
  return m;
}

}  // namespace

Trace parse_trace(const std::uint8_t* data, std::size_t size) {
  Reader r{data, size};
  Trace t;
  t.meta = parse_meta(r);

  const std::uint64_t count = r.varint();
  const int num_nodes = t.meta.width * t.meta.height;
  // Each event is at least 6 bytes; a count larger than the remaining
  // bytes allow is corrupt (and would otherwise trigger a huge reserve).
  if (count > (r.size - r.pos)) {
    throw std::runtime_error("trace: event count exceeds file size");
  }
  t.events.reserve(count);
  sim::Cycle cycle = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    cycle += r.varint();
    e.cycle = cycle;
    e.src = r.varint_as<std::uint16_t>("src");
    e.dst = r.varint_as<std::uint16_t>("dst");
    e.size = r.varint_as<std::uint16_t>("size");
    e.uid = r.varint_as<std::uint32_t>("uid");
    e.payload = r.varint();
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      throw std::runtime_error("trace: node id outside the recorded torus");
    }
    t.events.push_back(e);
  }
  if (r.pos != r.size) {
    throw std::runtime_error("trace: trailing bytes after last event");
  }
  return t;
}

void save_trace(const Trace& t, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_trace(t);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("trace: cannot open for writing: " + path);
  }
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) throw std::runtime_error("trace: write failed: " + path);
}

namespace {

std::vector<std::uint8_t> read_file(const std::string& path,
                                    std::size_t at_most) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("trace: cannot open: " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[64 * 1024];
  std::size_t n;
  while (bytes.size() < at_most &&
         (n = std::fread(buf, 1, std::min(sizeof buf, at_most - bytes.size()),
                         f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw std::runtime_error("trace: read failed: " + path);
  return bytes;
}

}  // namespace

Trace load_trace(const std::string& path) {
  const auto bytes =
      read_file(path, std::numeric_limits<std::size_t>::max());
  return parse_trace(bytes.data(), bytes.size());
}

TraceMeta load_trace_meta(const std::string& path) {
  // The header is a handful of varints plus the workload name; 4 kB is
  // orders of magnitude more than any real header needs.
  const auto bytes = read_file(path, 4096);
  Reader r{bytes.data(), bytes.size()};
  return parse_meta(r);
}

TraceRecorder::TraceRecorder(int width, int height)
    : width_(width),
      height_(height),
      coord_bits_(coord_bits_for(width, height)) {}

void TraceRecorder::on_inject(sim::Cycle now, int node, const noc::Flit& f) {
  TraceEvent e;
  e.cycle = now;
  e.src = static_cast<std::uint16_t>(node);
  e.dst = static_cast<std::uint16_t>(f.dst.y * width_ + f.dst.x);
  e.size = static_cast<std::uint16_t>(f.burst_size + 1);
  e.uid = f.uid;
  e.payload = noc::encode_flit(f, coord_bits_);
  events_.push_back(e);
}

Trace TraceRecorder::take(sim::Cycle total_cycles, std::string workload,
                          std::uint64_t seed) {
  Trace t;
  t.meta.width = width_;
  t.meta.height = height_;
  t.meta.coord_bits = coord_bits_;
  t.meta.seed = seed;
  t.meta.total_cycles = total_cycles;
  t.meta.workload = std::move(workload);
  t.events = std::move(events_);
  events_.clear();
  return t;
}

}  // namespace medea::workload
