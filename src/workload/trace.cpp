#include "workload/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "noc/coord.h"

namespace medea::workload {

namespace {

constexpr char kMagic[4] = {'M', 'D', 'T', 'R'};

// v2 fabric-flags bits; anything above kFlagsKnownMask is from a future
// writer we cannot interpret safely.
constexpr std::uint64_t kFlagRandomTieBreak = 1u << 0;
constexpr std::uint64_t kFlagTorusWrap = 1u << 1;
constexpr std::uint64_t kFlagsKnownMask = kFlagRandomTieBreak | kFlagTorusWrap;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Bounds-checked LEB128 reader over [data, data+size).
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos >= size) throw std::runtime_error("trace: truncated varint");
      if (shift >= 64) throw std::runtime_error("trace: varint overflow");
      const std::uint8_t b = data[pos++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  /// varint that must fit the target integer type.
  template <typename T>
  T varint_as(const char* what) {
    const std::uint64_t v = varint();
    if (v > static_cast<std::uint64_t>(std::numeric_limits<T>::max())) {
      throw std::runtime_error(std::string("trace: field out of range: ") +
                               what);
    }
    return static_cast<T>(v);
  }
};

}  // namespace

const char* to_string(TraceNetKind k) {
  switch (k) {
    case TraceNetKind::kDeflection: return "deflection";
    case TraceNetKind::kBufferedXy: return "buffered-xy";
  }
  return "?";
}

TraceNetConfig TraceNetConfig::from(const noc::RouterConfig& rc) {
  TraceNetConfig n;
  n.kind = TraceNetKind::kDeflection;
  n.eject_per_cycle = rc.eject_per_cycle;
  n.inject_queue_depth = rc.inject_queue_depth;
  n.eject_queue_depth = rc.eject_queue_depth;
  n.random_tie_break = rc.random_tie_break;
  return n;
}

TraceNetConfig TraceNetConfig::from(const noc::XyRouterConfig& rc,
                                    bool torus_wrap) {
  TraceNetConfig n;
  n.kind = TraceNetKind::kBufferedXy;
  n.eject_per_cycle = rc.eject_per_cycle;
  n.inject_queue_depth = rc.inject_queue_depth;
  n.eject_queue_depth = rc.eject_queue_depth;
  n.input_buffer_depth = rc.input_buffer_depth;
  n.torus_wrap = torus_wrap;
  return n;
}

noc::RouterConfig TraceNetConfig::router_config() const {
  noc::RouterConfig rc;
  rc.eject_per_cycle = eject_per_cycle;
  rc.inject_queue_depth = inject_queue_depth;
  rc.eject_queue_depth = eject_queue_depth;
  rc.random_tie_break = random_tie_break;
  return rc;
}

noc::XyRouterConfig TraceNetConfig::xy_router_config() const {
  noc::XyRouterConfig rc;
  rc.input_buffer_depth = input_buffer_depth;
  rc.eject_per_cycle = eject_per_cycle;
  rc.inject_queue_depth = inject_queue_depth;
  rc.eject_queue_depth = eject_queue_depth;
  return rc;
}

std::string TraceNetConfig::describe() const {
  std::string s = to_string(kind);
  s += " eject/cyc=";
  s += std::to_string(eject_per_cycle);
  s += " injq=";
  s += std::to_string(inject_queue_depth);
  s += " ejq=";
  s += std::to_string(eject_queue_depth);
  if (kind == TraceNetKind::kBufferedXy) {
    s += " bufdepth=";
    s += std::to_string(input_buffer_depth);
    s += torus_wrap ? " torus" : " mesh";
  } else if (random_tie_break) {
    s += " random-ties";
  }
  return s;
}

std::string to_string(const TraceEvent& e) {
  std::string s = "cycle=";
  s += std::to_string(e.cycle);
  s += " src=";
  s += std::to_string(e.src);
  s += " dst=";
  s += std::to_string(e.dst);
  s += " size=";
  s += std::to_string(e.size);
  s += " uid=";
  s += std::to_string(e.uid);
  char buf[32];
  std::snprintf(buf, sizeof buf, " payload=0x%llx",
                static_cast<unsigned long long>(e.payload));
  s += buf;
  return s;
}

int coord_bits_for(int width, int height) {
  const int m = std::max(width, height) - 1;
  const int bits = std::bit_width(static_cast<unsigned>(m > 0 ? m : 0));
  return bits > 0 ? bits : 1;
}

std::vector<std::uint8_t> serialize_trace(const Trace& t) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + t.meta.workload.size() + t.events.size() * 8);
  // Byte-wise append: gcc-12 -O3 misfires stringop-overflow on
  // vector::insert from a constexpr char[4].
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  // Write the version the meta carries: a v1-parsed trace stays v1 on
  // re-save.  Its fabric config was never recorded, and upgrading would
  // stamp fabricated defaults that replay would then *enforce* — the
  // exact accident the v2 config check exists to prevent.  Only a fresh
  // recording (TraceRecorder stamps kTraceVersion) produces v2.
  if (t.meta.version < kTraceVersionV1 || t.meta.version > kTraceVersion) {
    throw std::runtime_error("trace: cannot serialize unknown version " +
                             std::to_string(t.meta.version));
  }
  out.push_back(t.meta.version);
  put_varint(out, static_cast<std::uint64_t>(t.meta.width));
  put_varint(out, static_cast<std::uint64_t>(t.meta.height));
  put_varint(out, static_cast<std::uint64_t>(t.meta.coord_bits));
  put_varint(out, t.meta.seed);
  put_varint(out, t.meta.total_cycles);
  put_varint(out, t.meta.workload.size());
  out.insert(out.end(), t.meta.workload.begin(), t.meta.workload.end());
  if (t.meta.version >= 2) {
    const TraceNetConfig& n = t.meta.net;
    put_varint(out, static_cast<std::uint64_t>(n.kind));
    put_varint(out, static_cast<std::uint64_t>(n.eject_per_cycle));
    put_varint(out, static_cast<std::uint64_t>(n.inject_queue_depth));
    put_varint(out, static_cast<std::uint64_t>(n.eject_queue_depth));
    put_varint(out, static_cast<std::uint64_t>(n.input_buffer_depth));
    put_varint(out, (n.random_tie_break ? kFlagRandomTieBreak : 0) |
                        (n.torus_wrap ? kFlagTorusWrap : 0));
    put_varint(out, 0);  // extension length (reserved)
  }
  put_varint(out, t.events.size());
  sim::Cycle prev = 0;
  for (const TraceEvent& e : t.events) {
    if (e.cycle < prev) {
      throw std::runtime_error("trace: events not sorted by cycle");
    }
    put_varint(out, e.cycle - prev);
    prev = e.cycle;
    put_varint(out, e.src);
    put_varint(out, e.dst);
    put_varint(out, e.size);
    put_varint(out, e.uid);
    put_varint(out, e.payload);
  }
  return out;
}

namespace {

/// Parse and validate the header (magic, version, meta fields, the v2
/// fabric block), leaving the reader positioned at the event count.
TraceMeta parse_meta(Reader& r) {
  if (r.size < 5 || std::memcmp(r.data, kMagic, 4) != 0) {
    throw std::runtime_error("trace: bad magic (not a MEDEA trace)");
  }
  r.pos = 4;
  const std::uint8_t version = r.data[r.pos++];
  if (version < kTraceVersionV1 || version > kTraceVersion) {
    throw std::runtime_error(
        "trace: unsupported version " + std::to_string(version) +
        " (this build reads versions " + std::to_string(kTraceVersionV1) +
        ".." + std::to_string(kTraceVersion) + ")");
  }
  TraceMeta m;
  m.version = version;
  m.width = r.varint_as<int>("width");
  m.height = r.varint_as<int>("height");
  m.coord_bits = r.varint_as<int>("coord_bits");
  m.seed = r.varint();
  m.total_cycles = r.varint();
  if (m.width < 1 || m.height < 1) {
    throw std::runtime_error("trace: invalid geometry");
  }
  if (m.coord_bits < 1 || m.coord_bits > 8 ||
      m.coord_bits < coord_bits_for(m.width, m.height)) {
    throw std::runtime_error("trace: invalid coord_bits");
  }
  const auto name_len = r.varint_as<std::uint32_t>("workload name length");
  if (r.pos + name_len > r.size) {
    throw std::runtime_error("trace: truncated workload name");
  }
  m.workload.assign(reinterpret_cast<const char*>(r.data + r.pos), name_len);
  r.pos += name_len;
  if (version >= 2) {
    const std::uint64_t kind = r.varint();
    if (kind > static_cast<std::uint64_t>(TraceNetKind::kBufferedXy)) {
      throw std::runtime_error("trace: unknown network kind " +
                               std::to_string(kind));
    }
    m.net.kind = static_cast<TraceNetKind>(kind);
    m.net.eject_per_cycle = r.varint_as<int>("eject_per_cycle");
    m.net.inject_queue_depth = r.varint_as<int>("inject_queue_depth");
    m.net.eject_queue_depth = r.varint_as<int>("eject_queue_depth");
    m.net.input_buffer_depth = r.varint_as<int>("input_buffer_depth");
    if (m.net.eject_per_cycle < 1 || m.net.inject_queue_depth < 1 ||
        m.net.eject_queue_depth < 1 || m.net.input_buffer_depth < 1) {
      throw std::runtime_error("trace: invalid fabric config (queue depth "
                               "or bandwidth below 1)");
    }
    const std::uint64_t flags = r.varint();
    if ((flags & ~kFlagsKnownMask) != 0) {
      throw std::runtime_error("trace: unknown fabric flags 0x" +
                               std::to_string(flags));
    }
    m.net.random_tie_break = (flags & kFlagRandomTieBreak) != 0;
    m.net.torus_wrap = (flags & kFlagTorusWrap) != 0;
    const std::uint64_t ext_len = r.varint();
    if (ext_len > r.size - r.pos) {
      throw std::runtime_error("trace: truncated header extension");
    }
    r.pos += ext_len;  // reserved for forward-compatible additions
  }
  return m;
}

}  // namespace

Trace parse_trace(const std::uint8_t* data, std::size_t size) {
  Reader r{data, size};
  Trace t;
  t.meta = parse_meta(r);

  const std::uint64_t count = r.varint();
  const int num_nodes = t.meta.width * t.meta.height;
  // Each event is at least 6 bytes; a count larger than the remaining
  // bytes allow is corrupt (and would otherwise trigger a huge reserve).
  if (count > (r.size - r.pos)) {
    throw std::runtime_error("trace: event count exceeds file size");
  }
  t.events.reserve(count);
  sim::Cycle cycle = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    cycle += r.varint();
    e.cycle = cycle;
    e.src = r.varint_as<std::uint16_t>("src");
    e.dst = r.varint_as<std::uint16_t>("dst");
    e.size = r.varint_as<std::uint16_t>("size");
    e.uid = r.varint_as<std::uint32_t>("uid");
    e.payload = r.varint();
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      throw std::runtime_error("trace: node id outside the recorded torus");
    }
    t.events.push_back(e);
  }
  if (r.pos != r.size) {
    throw std::runtime_error("trace: trailing bytes after last event");
  }
  return t;
}

void save_trace(const Trace& t, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_trace(t);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("trace: cannot open for writing: " + path);
  }
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) throw std::runtime_error("trace: write failed: " + path);
}

namespace {

std::vector<std::uint8_t> read_file(const std::string& path,
                                    std::size_t at_most) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("trace: cannot open: " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[64 * 1024];
  std::size_t n;
  while (bytes.size() < at_most &&
         (n = std::fread(buf, 1, std::min(sizeof buf, at_most - bytes.size()),
                         f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw std::runtime_error("trace: read failed: " + path);
  return bytes;
}

}  // namespace

Trace load_trace(const std::string& path) {
  const auto bytes =
      read_file(path, std::numeric_limits<std::size_t>::max());
  return parse_trace(bytes.data(), bytes.size());
}

TraceMeta load_trace_meta(const std::string& path) {
  // The header is a handful of varints plus the workload name; 4 kB is
  // orders of magnitude more than any real header needs.
  const auto bytes = read_file(path, 4096);
  Reader r{bytes.data(), bytes.size()};
  return parse_meta(r);
}

void validate_trace(const Trace& t) {
  const TraceMeta& m = t.meta;
  if (m.width < 1 || m.height < 1) {
    throw std::runtime_error("trace validation: invalid geometry");
  }
  const int num_nodes = m.width * m.height;
  if (m.coord_bits < coord_bits_for(m.width, m.height) || m.coord_bits > 8) {
    throw std::runtime_error("trace validation: coord_bits too narrow for "
                             "the geometry");
  }
  if (m.net.eject_per_cycle < 1 || m.net.inject_queue_depth < 1 ||
      m.net.eject_queue_depth < 1 || m.net.input_buffer_depth < 1) {
    throw std::runtime_error("trace validation: invalid fabric config");
  }
  sim::Cycle prev = 0;
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const TraceEvent& e = t.events[i];
    const std::string at = " (event " + std::to_string(i) + ": " +
                           to_string(e) + ")";
    if (e.cycle < prev) {
      throw std::runtime_error("trace validation: events not sorted" + at);
    }
    prev = e.cycle;
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      throw std::runtime_error("trace validation: node id outside the torus" +
                               at);
    }
    if (e.size < 1 || e.size > noc::kMaxPacketFlits) {
      throw std::runtime_error("trace validation: packet size out of range" +
                               at);
    }
    // The wire word must agree with the event's endpoints: its dst
    // coordinate re-linearizes to e.dst, and (for fabrics small enough
    // for the 8-bit SRCID field) its src id matches e.src.
    const noc::Flit f = noc::decode_flit(e.payload, m.coord_bits);
    if (f.dst.x >= m.width || f.dst.y >= m.height ||
        f.dst.y * m.width + f.dst.x != e.dst) {
      throw std::runtime_error(
          "trace validation: payload dst disagrees with event dst" + at);
    }
    if (f.src_id != static_cast<std::uint8_t>(e.src & 0xFF)) {
      throw std::runtime_error(
          "trace validation: payload src id disagrees with event src" + at);
    }
  }
  // On-disk round-trip: what we would write must parse back losslessly.
  const auto bytes = serialize_trace(t);
  if (parse_trace(bytes.data(), bytes.size()) != t) {
    throw std::runtime_error(
        "trace validation: serialize/parse round-trip is not lossless");
  }
}

TraceRecorder::TraceRecorder(int width, int height)
    : width_(width),
      height_(height),
      coord_bits_(coord_bits_for(width, height)) {}

void TraceRecorder::on_inject(sim::Cycle now, int node, const noc::Flit& f) {
  TraceEvent e;
  e.cycle = now;
  e.src = static_cast<std::uint16_t>(node);
  e.dst = static_cast<std::uint16_t>(f.dst.y * width_ + f.dst.x);
  e.size = static_cast<std::uint16_t>(f.burst_size + 1);
  e.uid = f.uid;
  e.payload = noc::encode_flit(f, coord_bits_);
  events_.push_back(e);
}

Trace TraceRecorder::take(sim::Cycle total_cycles, std::string workload,
                          std::uint64_t seed) {
  Trace t;
  t.meta.width = width_;
  t.meta.height = height_;
  t.meta.coord_bits = coord_bits_;
  t.meta.seed = seed;
  t.meta.total_cycles = total_cycles;
  t.meta.workload = std::move(workload);
  t.meta.net = net_;
  t.events = std::move(events_);
  events_.clear();
  return t;
}

}  // namespace medea::workload
