#include "workload/workload.h"

#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

namespace medea::workload {

namespace detail {
// Implemented in builtin_workloads.cpp; called once by the registry
// constructor so the built-in set is always available.
void register_builtins(WorkloadRegistry& reg);
}  // namespace detail

const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kApp: return "a full-system app";
    case WorkloadKind::kSynthetic: return "a synthetic pattern";
    case WorkloadKind::kReplay: return "a trace replay";
  }
  return "?";
}

WorkloadRegistry::WorkloadRegistry() { detail::register_builtins(*this); }

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry reg;
  return reg;
}

void WorkloadRegistry::add(std::unique_ptr<Workload> w) {
  const std::string name = w->name();
  const auto [it, inserted] = by_name_.emplace(name, std::move(w));
  if (!inserted) {
    throw std::invalid_argument("WorkloadRegistry: duplicate workload name '" +
                                name + "'");
  }
}

const Workload* WorkloadRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

const Workload& WorkloadRegistry::at(const std::string& name) const {
  if (const Workload* w = find(name)) return *w;
  std::string known;
  for (const auto& [n, w] : by_name_) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("WorkloadRegistry: unknown workload '" + name +
                              "' (known: " + known + ")");
}

std::vector<const Workload*> WorkloadRegistry::list() const {
  std::vector<const Workload*> out;
  out.reserve(by_name_.size());
  for (const auto& [n, w] : by_name_) out.push_back(w.get());
  return out;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [n, w] : by_name_) out.push_back(n);
  return out;
}

void validate_request(const RunRequest& req, const Workload& w) {
  const WorkloadKind k = w.kind();
  const auto misapplied = [&](const std::string& section,
                              const std::string& knobs) {
    throw std::invalid_argument(
        "workload '" + w.name() + "' is " + to_string(k) + ": the " + section +
        " section (" + knobs +
        ") does not apply and would be silently ignored — drop it or pick a "
        "matching workload");
  };
  if (req.synthetic.has_value() && k != WorkloadKind::kSynthetic) {
    misapplied("synthetic",
               "injection_rate/process/flits_per_node/hotspot_node/network");
  }
  if (req.app.has_value() && k != WorkloadKind::kApp) {
    misapplied("app", "size/iterations/warmup_iterations");
  }
  if (req.replay.has_value() && k != WorkloadKind::kReplay) {
    misapplied("replay", "trace_path/trace_scale/force_config");
  }
  if (k == WorkloadKind::kReplay &&
      (!req.replay.has_value() || req.replay->trace_path.empty())) {
    throw std::invalid_argument(
        "replay workload: replay.trace_path must name a recorded trace");
  }
  const MeasurementParams& m = req.measurement;
  if (m.phased && k != WorkloadKind::kSynthetic) {
    throw std::invalid_argument(
        "measurement.phased drives rate-controlled synthetic traffic, but "
        "workload '" +
        w.name() + "' is " + to_string(k));
  }
  if (m.phased) {
    if (m.measure_cycles == 0) {
      throw std::invalid_argument(
          "measurement.measure_cycles must be > 0 for a phased run");
    }
    if (m.auto_warmup && m.warmup_step == 0) {
      throw std::invalid_argument(
          "measurement.warmup_step must be > 0 when auto_warmup is on");
    }
    if (m.steady_tolerance < 0.0) {
      throw std::invalid_argument(
          "measurement.steady_tolerance must be >= 0");
    }
  }
}

RunResult run_workload(const Workload& w, const RunRequest& req,
                       noc::FlitObserver* observer) {
  validate_request(req, w);
  // The sampler outlives the workload's scheduler use: workloads attach
  // it via ctx.attach_telemetry(), the engine collects the timeline.
  std::optional<telemetry::Sampler> sampler;
  if (req.telemetry.sample_every > 0) {
    sampler.emplace(req.telemetry.sample_every);
  }
  const auto finish_timeline = [&](RunResult& r) {
    if (!sampler.has_value()) return;
    sampler->finish(r.cycles);
    r.timeline = sampler->take();
  };
  const bool measuring = req.measurement.collect || req.measurement.phased;
  const bool tracing = req.flit_trace.sample_every > 0;
  // noc_dims is only consulted when something needs the geometry (replay
  // workloads answer it from the trace header, which costs a file load).
  int width = 0, height = 0;
  if (measuring || tracing) std::tie(width, height) = w.noc_dims(req);
  std::optional<telemetry::FlitTracer> tracer;
  if (tracing) {
    tracer.emplace(req.flit_trace.sample_every, width, height);
  }
  const auto finish_trace = [&](RunResult& r) {
    if (!tracer.has_value()) return;
    tracer->finalize(r.cycles);
    r.flit_trace = tracer->take();
  };
  // When tracing, every observer hangs off one tee (events arrive in
  // add() order: controller, caller's observer, tracer — the same order
  // the measurement controller's forward chain produced).  Without a
  // tracer the pre-existing single-chain wiring is kept as-is.
  std::optional<MeasurementController> mc;
  if (measuring) {
    mc.emplace(req.measurement, width * height,
               tracing ? nullptr : observer);
  }
  noc::FlitObserverTee tee;
  RunContext ctx{observer, mc ? &*mc : nullptr,
                 sampler ? &*sampler : nullptr};
  if (tracing) {
    if (mc) tee.add(&*mc);
    tee.add(observer);
    tee.add(&*tracer);
    ctx.fabric_override = &tee;
  }
  RunResult r = w.run(req, ctx);
  if (mc) {
    // Whole-run mode: the window is the entire run.  Phased runs were
    // finalized by the driver already (finalize is idempotent).
    mc->finalize(r.cycles, true);
    r.measurement = mc->result();
  }
  finish_timeline(r);
  finish_trace(r);
  return r;
}

RunResult run_by_name(const std::string& name, const RunRequest& req,
                      noc::FlitObserver* observer) {
  return run_workload(WorkloadRegistry::instance().at(name), req, observer);
}

RunResult run_configured(const RunRequest& req, noc::FlitObserver* observer) {
  return run_by_name(req.machine.workload, req, observer);
}

Trace record_workload(const std::string& name, const RunRequest& req,
                      RunResult* result) {
  const Workload& w = WorkloadRegistry::instance().at(name);
  const auto [width, height] = w.noc_dims(req);
  TraceRecorder rec(width, height);
  rec.set_net_config(w.net_config(req));
  RunResult res = run_workload(w, req, &rec);
  Trace t = rec.take(res.cycles, name, req.seed);
  if (result != nullptr) *result = std::move(res);
  return t;
}

}  // namespace medea::workload
