#include "workload/workload.h"

#include <stdexcept>
#include <utility>

namespace medea::workload {

namespace detail {
// Implemented in builtin_workloads.cpp; called once by the registry
// constructor so the built-in set is always available.
void register_builtins(WorkloadRegistry& reg);
}  // namespace detail

WorkloadRegistry::WorkloadRegistry() { detail::register_builtins(*this); }

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry reg;
  return reg;
}

void WorkloadRegistry::add(std::unique_ptr<Workload> w) {
  const std::string name = w->name();
  const auto [it, inserted] = by_name_.emplace(name, std::move(w));
  if (!inserted) {
    throw std::invalid_argument("WorkloadRegistry: duplicate workload name '" +
                                name + "'");
  }
}

const Workload* WorkloadRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

const Workload& WorkloadRegistry::at(const std::string& name) const {
  if (const Workload* w = find(name)) return *w;
  std::string known;
  for (const auto& [n, w] : by_name_) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("WorkloadRegistry: unknown workload '" + name +
                              "' (known: " + known + ")");
}

std::vector<const Workload*> WorkloadRegistry::list() const {
  std::vector<const Workload*> out;
  out.reserve(by_name_.size());
  for (const auto& [n, w] : by_name_) out.push_back(w.get());
  return out;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [n, w] : by_name_) out.push_back(n);
  return out;
}

WorkloadResult run_by_name(const std::string& name, const WorkloadParams& p,
                           noc::FlitObserver* observer) {
  return WorkloadRegistry::instance().at(name).run(p, observer);
}

WorkloadResult run_configured(const WorkloadParams& p,
                              noc::FlitObserver* observer) {
  return run_by_name(p.config.workload, p, observer);
}

Trace record_workload(const std::string& name, const WorkloadParams& p,
                      WorkloadResult* result) {
  const Workload& w = WorkloadRegistry::instance().at(name);
  const auto [width, height] = w.noc_dims(p);
  TraceRecorder rec(width, height);
  rec.set_net_config(w.net_config(p));
  WorkloadResult res = w.run(p, &rec);
  Trace t = rec.take(res.cycles, name, p.seed);
  if (result != nullptr) *result = std::move(res);
  return t;
}

}  // namespace medea::workload
