#include "workload/measure.h"

namespace medea::workload {

MeasurementController::MeasurementController(const MeasurementParams& params,
                                             int num_nodes,
                                             noc::FlitObserver* forward)
    : params_(params), num_nodes_(num_nodes), forward_(forward) {}

void MeasurementController::on_inject(sim::Cycle now, int node,
                                      const noc::Flit& f) {
  if (forward_ != nullptr) forward_->on_inject(now, node, f);
  if (in_window(f.inject_cycle)) ++injected_;
}

void MeasurementController::on_deliver(sim::Cycle now, int node,
                                       const noc::Flit& f) {
  if (forward_ != nullptr) forward_->on_deliver(now, node, f);
  const std::uint64_t latency = now - f.inject_cycle;
  probe_sum_ += static_cast<double>(latency);
  ++probe_count_;
  if (in_window(f.inject_cycle)) {
    hist_.record(latency);
    ++delivered_;
  }
}

void MeasurementController::begin_window(sim::Cycle now) {
  // The controller comes up with the window open from cycle 0 (whole-run
  // mode).  A phased driver opening the real window must discard
  // everything the warmup phase accumulated under that default.
  warmup_end_ = now;
  measure_end_ = sim::kNeverCycle;
  hist_.clear();
  injected_ = 0;
  delivered_ = 0;
}

void MeasurementController::end_window(sim::Cycle now) { measure_end_ = now; }

double MeasurementController::probe_mean() const {
  if (probe_count_ == 0) return std::nan("");
  return probe_sum_ / static_cast<double>(probe_count_);
}

void MeasurementController::reset_probe() {
  probe_sum_ = 0.0;
  probe_count_ = 0;
}

void MeasurementController::finalize(sim::Cycle end_cycle, bool drained) {
  if (finalized_) return;
  finalized_ = true;
  run_cycles_ = end_cycle;
  if (measure_end_ == sim::kNeverCycle) measure_end_ = end_cycle;
  drained_ = drained;
}

MeasurementResult MeasurementController::result() const {
  MeasurementResult r;
  r.latency.count = hist_.count();
  r.latency.mean = hist_.mean();
  r.latency.min = hist_.min();
  r.latency.p50 = hist_.p50();
  r.latency.p99 = hist_.p99();
  r.latency.p999 = hist_.p999();
  r.latency.max = hist_.max();
  r.warmup_end = warmup_end_;
  r.measure_end = measure_end_;
  r.run_cycles = run_cycles_;
  r.injected = injected_;
  r.delivered = delivered_;
  r.drained = drained_;
  const double window =
      static_cast<double>(measure_end_ - warmup_end_);
  if (window > 0.0 && num_nodes_ > 0) {
    const double nodes = static_cast<double>(num_nodes_);
    r.accepted_throughput = static_cast<double>(delivered_) / nodes / window;
    r.offered_load = offered_override_ >= 0.0
                         ? offered_override_
                         : static_cast<double>(injected_) / nodes / window;
  }
  return r;
}

}  // namespace medea::workload
